// Unit tests for fpm::measure: statistics, Student-t, reliability loop.
#include <gtest/gtest.h>

#include <cmath>

#include "fpm/common/error.hpp"
#include "fpm/common/rng.hpp"
#include "fpm/measure/reliable.hpp"
#include "fpm/measure/stats.hpp"
#include "fpm/measure/timer.hpp"

namespace fpm::measure {
namespace {

TEST(RunningStats, MatchesClosedFormMoments) {
    RunningStats stats;
    const double values[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    for (const double v : values) {
        stats.add(v);
    }
    EXPECT_EQ(stats.count(), 8U);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    // Sample variance with n-1 denominator: sum of squared devs = 32.
    EXPECT_DOUBLE_EQ(stats.variance(), 32.0 / 7.0);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
    RunningStats stats;
    stats.add(3.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(stats.summary().ci95_half, 0.0);
}

TEST(RunningStats, ClearResets) {
    RunningStats stats;
    stats.add(1.0);
    stats.add(2.0);
    stats.clear();
    EXPECT_EQ(stats.count(), 0U);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
    RunningStats stats;
    const double offset = 1e12;
    for (int i = 0; i < 100; ++i) {
        stats.add(offset + (i % 2 == 0 ? 1.0 : -1.0));
    }
    EXPECT_NEAR(stats.mean(), offset, 1e-3);
    EXPECT_NEAR(stats.variance(), 100.0 / 99.0, 1e-6);
}

TEST(StudentT, KnownCriticalValues) {
    EXPECT_DOUBLE_EQ(student_t_975(1), 12.706);
    EXPECT_DOUBLE_EQ(student_t_975(10), 2.228);
    EXPECT_DOUBLE_EQ(student_t_975(30), 2.042);
    EXPECT_DOUBLE_EQ(student_t_975(1000), 1.960);
    EXPECT_DOUBLE_EQ(student_t_975(0), 0.0);
}

TEST(StudentT, MonotoneDecreasingInDf) {
    double previous = student_t_975(1);
    for (std::size_t df = 2; df <= 200; ++df) {
        const double current = student_t_975(df);
        EXPECT_LE(current, previous + 1e-12) << "df=" << df;
        previous = current;
    }
}

TEST(Summary, RelativeError) {
    RunningStats stats;
    stats.add(10.0);
    stats.add(10.0);
    const Summary s = stats.summary();
    EXPECT_DOUBLE_EQ(s.relative_error(), 0.0);  // zero stddev

    RunningStats noisy;
    noisy.add(9.0);
    noisy.add(11.0);
    EXPECT_GT(noisy.summary().relative_error(), 0.0);
}

TEST(Reliable, ConstantSampleConvergesAtMinRepetitions) {
    std::size_t calls = 0;
    const auto result = measure_until_reliable([&]() {
        ++calls;
        return 0.5;
    });
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(calls, 3U);  // default min_repetitions
    EXPECT_DOUBLE_EQ(result.summary.mean, 0.5);
}

TEST(Reliable, NoisySampleNeedsMoreRepetitions) {
    Rng rng(5);
    ReliabilityOptions options;
    options.target_relative_error = 0.02;
    options.max_repetitions = 200;
    std::size_t calls = 0;
    const auto result = measure_until_reliable(
        [&]() {
            ++calls;
            return rng.lognormal(0.0, 0.08);
        },
        options);
    EXPECT_TRUE(result.converged);
    EXPECT_GT(calls, 3U);
    EXPECT_LE(result.summary.relative_error(), 0.02);
}

TEST(Reliable, GivesUpAtMaxRepetitions) {
    Rng rng(6);
    ReliabilityOptions options;
    options.target_relative_error = 1e-9;  // unreachable with noise
    options.max_repetitions = 10;
    std::size_t calls = 0;
    const auto result = measure_until_reliable(
        [&]() {
            ++calls;
            return rng.lognormal(0.0, 0.3);
        },
        options);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(calls, 10U);
    EXPECT_EQ(result.summary.count, 10U);
}

TEST(Reliable, SingleRepetitionPolicy) {
    ReliabilityOptions options;
    options.min_repetitions = 1;
    options.max_repetitions = 1;
    std::size_t calls = 0;
    const auto result = measure_until_reliable(
        [&]() {
            ++calls;
            return 1.0;
        },
        options);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(calls, 1U);
}

TEST(Reliable, RejectsNonPositiveTiming) {
    EXPECT_THROW(measure_until_reliable([]() { return 0.0; }), fpm::Error);
    EXPECT_THROW(measure_until_reliable([]() { return -1.0; }), fpm::Error);
}

TEST(Reliable, RejectsBadOptions) {
    ReliabilityOptions options;
    options.min_repetitions = 0;
    EXPECT_THROW(measure_until_reliable([]() { return 1.0; }, options),
                 fpm::Error);
    options = {};
    options.max_repetitions = 1;
    options.min_repetitions = 5;
    EXPECT_THROW(measure_until_reliable([]() { return 1.0; }, options),
                 fpm::Error);
    options = {};
    options.target_relative_error = 0.0;
    EXPECT_THROW(measure_until_reliable([]() { return 1.0; }, options),
                 fpm::Error);
}

TEST(Timer, MeasuresElapsedTime) {
    WallTimer timer;
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) {
        sink += std::sqrt(static_cast<double>(i));
    }
    EXPECT_GT(timer.elapsed(), 0.0);
    (void)sink;
}

TEST(Timer, ScopedTimerAccumulates) {
    double total = 0.0;
    {
        ScopedTimer scoped(total);
        volatile int sink = 0;
        for (int i = 0; i < 1000; ++i) {
            sink += i;
        }
        (void)sink;
    }
    EXPECT_GT(total, 0.0);
    const double first = total;
    {
        ScopedTimer scoped(total);
    }
    EXPECT_GE(total, first);
}

} // namespace
} // namespace fpm::measure

// Tests for the simulated application runner: timing structure, contention
// wiring, communication modelling and the per-process expansion of Fig. 6.
#include <gtest/gtest.h>

#include <numeric>

#include "fpm/app/matmul_sim.hpp"
#include "fpm/part/fpm_partitioner.hpp"
#include "fpm/part/integer.hpp"

namespace fpm::app {
namespace {

class MatmulSimTest : public ::testing::Test {
protected:
    sim::HybridNode node_{sim::ig_platform(), {}};

    static std::vector<std::int64_t> even_areas(std::size_t devices,
                                                std::int64_t n) {
        std::vector<std::int64_t> areas(devices, n * n / static_cast<std::int64_t>(devices));
        std::int64_t leftover = n * n - std::accumulate(areas.begin(), areas.end(),
                                                        std::int64_t{0});
        for (std::int64_t i = 0; i < leftover; ++i) {
            ++areas[static_cast<std::size_t>(i) % devices];
        }
        return areas;
    }
};

TEST_F(MatmulSimTest, CpuOnlyHomogeneousRun) {
    const DeviceSet set = cpu_only_devices(node_);
    const auto areas = even_areas(set.devices.size(), 40);
    const auto result = run_simulated_app(node_, set, areas, 40);

    EXPECT_GT(result.total_time, 0.0);
    EXPECT_GT(result.comm_time, 0.0);
    EXPECT_NEAR(result.total_time, result.compute_time + result.comm_time, 1e-9);
    // Equal sockets, equal areas: all devices take the same time.
    for (std::size_t i = 1; i < result.device_iter_time.size(); ++i) {
        EXPECT_NEAR(result.device_iter_time[i], result.device_iter_time[0],
                    0.05 * result.device_iter_time[0]);
    }
    // Paper's Table II scale: ~90-100 s for n = 40 on 24 cores.
    EXPECT_GT(result.total_time, 60.0);
    EXPECT_LT(result.total_time, 140.0);
}

TEST_F(MatmulSimTest, CommunicationToggle) {
    const DeviceSet set = cpu_only_devices(node_);
    const auto areas = even_areas(set.devices.size(), 20);
    SimAppOptions with_comm;
    SimAppOptions without_comm;
    without_comm.include_comm = false;
    const auto a = run_simulated_app(node_, set, areas, 20, with_comm);
    const auto b = run_simulated_app(node_, set, areas, 20, without_comm);
    EXPECT_GT(a.total_time, b.total_time);
    EXPECT_DOUBLE_EQ(b.comm_time, 0.0);
    EXPECT_DOUBLE_EQ(a.compute_time, b.compute_time);
}

TEST_F(MatmulSimTest, SingleGpuRunExercisesOutOfCore) {
    const DeviceSet set = single_gpu_devices(node_, 1, sim::KernelVersion::kV2);
    const std::int64_t n = 60;  // 3600 blocks: out of core for the GTX680
    const auto result = run_simulated_app(node_, set, {n * n}, n);
    EXPECT_GT(result.total_time, 0.0);
    // A single process has no one to talk to.
    EXPECT_DOUBLE_EQ(result.comm_time, 0.0);
}

TEST_F(MatmulSimTest, GpuContentionAppliedInHybridRuns) {
    // The same GPU rectangle runs slower inside the hybrid set (cores of
    // its socket are busy) than the idle-socket kernel timing.
    const DeviceSet hybrid = hybrid_devices(node_);

    std::size_t gtx = hybrid.devices.size();
    for (std::size_t i = 0; i < hybrid.devices.size(); ++i) {
        if (hybrid.devices[i].kind == DeviceKind::kGpu &&
            hybrid.devices[i].gpu_index == 1) {
            gtx = i;
        }
    }
    ASSERT_LT(gtx, hybrid.devices.size());

    const std::int64_t n = 40;
    std::vector<std::int64_t> areas(hybrid.devices.size(), 0);
    areas[gtx] = 800;
    // Spread the rest over the CPU sockets so they are genuinely busy.
    std::int64_t rest = n * n - 800;
    for (std::size_t i = 0; i < areas.size() && rest > 0; ++i) {
        if (hybrid.devices[i].kind == DeviceKind::kCpuSocket) {
            const std::int64_t take = std::min<std::int64_t>(rest, 250);
            areas[i] = take;
            rest -= take;
        }
    }
    ASSERT_EQ(rest, 0);

    const auto hybrid_result = run_simulated_app(node_, hybrid, areas, n);
    const part::Rect rect = hybrid_result.layout.rects[gtx];
    const double idle = node_.gpu_sim(1)
                            .time_invocation(rect.w, rect.h,
                                             sim::KernelVersion::kV3)
                            .total_s;
    EXPECT_GT(hybrid_result.device_iter_time[gtx], 1.05 * idle);
}

TEST_F(MatmulSimTest, DeviceComputeTimesScaleWithIterations) {
    const DeviceSet set = cpu_only_devices(node_);
    const auto areas = even_areas(set.devices.size(), 24);
    const auto result = run_simulated_app(node_, set, areas, 24);
    for (std::size_t i = 0; i < set.devices.size(); ++i) {
        EXPECT_NEAR(result.device_compute_time[i],
                    result.device_iter_time[i] * 24.0, 1e-9);
    }
}

TEST_F(MatmulSimTest, PerProcessExpansionMatchesPaperRankOrder) {
    const DeviceSet set = hybrid_devices(node_);
    std::vector<double> device_times(set.devices.size());
    // Give each device a recognisable time: GPUs 1.0/2.0, sockets 0.1*s.
    for (std::size_t i = 0; i < set.devices.size(); ++i) {
        const Device& d = set.devices[i];
        device_times[i] = (d.kind == DeviceKind::kGpu)
                              ? 1.0 + static_cast<double>(d.gpu_index)
                              : 0.1 * static_cast<double>(d.socket + 1);
    }
    const auto times = per_process_times(set, device_times);
    ASSERT_EQ(times.size(), 24U);

    // Rank 0: Tesla C870 host process (gpu_index 0 on socket 0) -> 1.0.
    EXPECT_DOUBLE_EQ(times[0], 1.0);
    // Ranks 1-5: socket 0 cores.
    for (std::size_t r = 1; r <= 5; ++r) {
        EXPECT_DOUBLE_EQ(times[r], 0.1);
    }
    // Rank 6: GTX680 host process -> 2.0.
    EXPECT_DOUBLE_EQ(times[6], 2.0);
    for (std::size_t r = 7; r <= 11; ++r) {
        EXPECT_DOUBLE_EQ(times[r], 0.2);
    }
    // Sockets 2 and 3: 6 cores each.
    for (std::size_t r = 12; r <= 17; ++r) {
        EXPECT_DOUBLE_EQ(times[r], 0.3);
    }
    for (std::size_t r = 18; r <= 23; ++r) {
        EXPECT_DOUBLE_EQ(times[r], 0.4);
    }
}

TEST_F(MatmulSimTest, Validation) {
    const DeviceSet set = cpu_only_devices(node_);
    EXPECT_THROW(run_simulated_app(node_, set, {1, 2}, 10), fpm::Error);
    EXPECT_THROW(run_simulated_app(node_, set, even_areas(4, 10), 0),
                 fpm::Error);
    EXPECT_THROW(per_process_times(set, std::vector<double>{1.0}), fpm::Error);
}

TEST_F(MatmulSimTest, LayoutReturnedWithResult) {
    const DeviceSet set = cpu_only_devices(node_);
    const auto areas = even_areas(set.devices.size(), 16);
    const auto result = run_simulated_app(node_, set, areas, 16);
    EXPECT_EQ(result.layout.n, 16);
    EXPECT_NO_THROW(result.layout.validate());
}

} // namespace
} // namespace fpm::app

// Tests for fpm::obs — metrics primitives (counter, gauge, log-bucket
// histogram), the process-global registry under a 16-thread hammer, and
// the span tracer's Chrome trace_event JSON export (round-trip through a
// minimal parser, including nesting of child spans inside parents).
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fpm/obs/metrics.hpp"
#include "fpm/obs/trace.hpp"
#include "stress_harness.hpp"

namespace fpm::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal Chrome-trace reader: enough JSON to round-trip our exporter.
// ---------------------------------------------------------------------------

struct ParsedEvent {
    std::string name;
    std::string ph;
    double ts = 0.0;   // microseconds
    double dur = 0.0;  // microseconds
    std::int64_t tid = -1;
    bool has_arg = false;
    std::uint64_t arg = 0;
};

/// Extracts the string value following `"key":` inside `object`.
std::string string_field(const std::string& object, const std::string& key) {
    const std::string needle = "\"" + key + "\":";
    const auto at = object.find(needle);
    if (at == std::string::npos) {
        return {};
    }
    auto from = object.find('"', at + needle.size());
    EXPECT_NE(from, std::string::npos) << object;
    ++from;
    const auto to = object.find('"', from);
    EXPECT_NE(to, std::string::npos) << object;
    return object.substr(from, to - from);
}

double number_field(const std::string& object, const std::string& key,
                    double fallback) {
    const std::string needle = "\"" + key + "\":";
    const auto at = object.find(needle);
    if (at == std::string::npos) {
        return fallback;
    }
    return std::strtod(object.c_str() + at + needle.size(), nullptr);
}

/// Splits the traceEvents array into top-level `{...}` objects and
/// decodes the fields our exporter writes.  EXPECT-fails on anything
/// structurally off (unterminated array/object, missing fields).
std::vector<ParsedEvent> parse_chrome_trace(const std::string& json) {
    std::vector<ParsedEvent> events;
    const auto array_at = json.find("\"traceEvents\":[");
    EXPECT_NE(array_at, std::string::npos) << json.substr(0, 200);
    if (array_at == std::string::npos) {
        return events;
    }
    std::size_t i = array_at + std::string("\"traceEvents\":[").size();
    int depth = 0;
    std::size_t object_start = 0;
    for (; i < json.size(); ++i) {
        const char ch = json[i];
        if (ch == '{') {
            if (depth++ == 0) {
                object_start = i;
            }
        } else if (ch == '}') {
            EXPECT_GT(depth, 0);
            if (--depth == 0) {
                const std::string object =
                    json.substr(object_start, i - object_start + 1);
                ParsedEvent event;
                event.name = string_field(object, "name");
                event.ph = string_field(object, "ph");
                event.ts = number_field(object, "ts", -1.0);
                event.dur = number_field(object, "dur", -1.0);
                event.tid =
                    static_cast<std::int64_t>(number_field(object, "tid", -1.0));
                event.has_arg = object.find("\"args\"") != std::string::npos;
                if (event.has_arg) {
                    event.arg = static_cast<std::uint64_t>(
                        number_field(object, "v", 0.0));
                }
                events.push_back(std::move(event));
            }
        } else if (ch == ']' && depth == 0) {
            return events;  // end of traceEvents
        }
    }
    ADD_FAILURE() << "unterminated traceEvents array";
    return events;
}

// ---------------------------------------------------------------------------
// Metrics primitives
// ---------------------------------------------------------------------------

TEST(CounterTest, AddsAndResets) {
    Counter counter;
    EXPECT_EQ(counter.value(), 0U);
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 42U);
    counter.reset();
    EXPECT_EQ(counter.value(), 0U);
}

TEST(GaugeTest, TracksLevelAndHighWatermark) {
    Gauge gauge;
    gauge.set(5);
    gauge.add(3);
    EXPECT_EQ(gauge.value(), 8);
    EXPECT_EQ(gauge.max(), 8);
    gauge.add(-6);
    EXPECT_EQ(gauge.value(), 2);
    EXPECT_EQ(gauge.max(), 8);  // watermark sticks
    gauge.reset();
    EXPECT_EQ(gauge.value(), 0);
    EXPECT_EQ(gauge.max(), 0);
}

TEST(HistogramTest, QuantilesWithinLogBucketError) {
    Histogram histogram;
    EXPECT_EQ(histogram.snapshot().count, 0U);

    // 1..1000 microseconds, uniformly: p50 ~ 500us, p95 ~ 950us.
    for (int i = 1; i <= 1000; ++i) {
        histogram.record(static_cast<double>(i) * 1e-6);
    }
    const HistogramSnapshot snapshot = histogram.snapshot();
    EXPECT_EQ(snapshot.count, 1000U);
    EXPECT_DOUBLE_EQ(snapshot.min, 1e-6);
    EXPECT_DOUBLE_EQ(snapshot.max, 1e-3);
    EXPECT_NEAR(snapshot.sum, 500.5 * 1e-3, 1e-9);
    // Log buckets guarantee <= ~9% relative error per observation.
    EXPECT_NEAR(snapshot.p50, 500e-6, 0.1 * 500e-6);
    EXPECT_NEAR(snapshot.p95, 950e-6, 0.1 * 950e-6);
    EXPECT_NEAR(snapshot.p99, 990e-6, 0.1 * 990e-6);
    EXPECT_LE(snapshot.p50, snapshot.p95);
    EXPECT_LE(snapshot.p95, snapshot.p99);

    histogram.reset();
    EXPECT_EQ(histogram.snapshot().count, 0U);
}

TEST(HistogramTest, ClampsPathologicalValues) {
    Histogram histogram;
    histogram.record(0.0);
    histogram.record(-3.0);
    histogram.record(std::nan(""));
    histogram.record(1e12);  // beyond the top octave
    const HistogramSnapshot snapshot = histogram.snapshot();
    EXPECT_EQ(snapshot.count, 4U);
    // Quantiles stay inside the observed [min, max] window.
    EXPECT_GE(snapshot.p99, snapshot.min);
    EXPECT_LE(snapshot.p99, snapshot.max);
}

TEST(HistogramTest, SingleValueQuantilesAreExact) {
    Histogram histogram;
    histogram.record(0.125);
    const HistogramSnapshot snapshot = histogram.snapshot();
    // min/max clamping makes a single observation exact.
    EXPECT_DOUBLE_EQ(snapshot.p50, 0.125);
    EXPECT_DOUBLE_EQ(snapshot.p99, 0.125);
}

TEST(MetricsRegistryTest, StableReferencesAndSnapshot) {
    auto& registry = MetricsRegistry::global();
    Counter& counter = registry.counter("test.obs.registry.counter");
    Gauge& gauge = registry.gauge("test.obs.registry.gauge");
    Histogram& histogram = registry.histogram("test.obs.registry.histogram");
    counter.reset();
    gauge.reset();
    histogram.reset();

    EXPECT_EQ(&registry.counter("test.obs.registry.counter"), &counter);
    EXPECT_EQ(&registry.gauge("test.obs.registry.gauge"), &gauge);
    EXPECT_EQ(&registry.histogram("test.obs.registry.histogram"), &histogram);

    counter.add(7);
    gauge.set(9);
    histogram.record(0.5);
    const auto snapshot = registry.snapshot();
    EXPECT_EQ(snapshot.counters.at("test.obs.registry.counter"), 7U);
    EXPECT_EQ(snapshot.gauges.at("test.obs.registry.gauge"), 9);
    EXPECT_EQ(snapshot.histograms.at("test.obs.registry.histogram").count, 1U);
}

// The concurrency suite (also run under sanitizers / -L stress): 16
// threads hammer one counter, one gauge, one histogram and the registry
// lookup path; totals must come out exact for the counted instruments.
TEST(ObsStress, SixteenThreadMetricsHammer) {
    auto& registry = MetricsRegistry::global();
    Counter& counter = registry.counter("test.obs.hammer.counter");
    Gauge& gauge = registry.gauge("test.obs.hammer.gauge");
    Histogram& histogram = registry.histogram("test.obs.hammer.histogram");
    counter.reset();
    gauge.reset();
    histogram.reset();

    constexpr std::size_t kThreads = 16;
    constexpr std::size_t kOpsPerThread = 20'000;
    fpm::test::run_concurrently(kThreads, [&](std::size_t t) {
        for (std::size_t i = 0; i < kOpsPerThread; ++i) {
            counter.add();
            gauge.add(1);
            gauge.add(-1);
            histogram.record(1e-6 * static_cast<double>(1 + (i + t) % 1000));
            // Lookup path under contention must return the same instrument.
            if (i % 256 == 0) {
                EXPECT_EQ(&registry.counter("test.obs.hammer.counter"),
                          &counter);
            }
        }
    });

    EXPECT_EQ(counter.value(), kThreads * kOpsPerThread);
    EXPECT_EQ(gauge.value(), 0);
    EXPECT_GE(gauge.max(), 1);
    const auto snapshot = histogram.snapshot();
    EXPECT_EQ(snapshot.count, kThreads * kOpsPerThread);
    EXPECT_GE(snapshot.p50, snapshot.min);
    EXPECT_LE(snapshot.p99, snapshot.max);
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

TEST(SpanTest, DisabledTracingRecordsNothing) {
    disable_tracing();
    const std::uint64_t dropped_before = trace_events_dropped();
    {
        Span span("test.obs.disabled");
    }
    std::ostringstream out;
    write_chrome_trace(out);
    EXPECT_EQ(out.str().find("test.obs.disabled"), std::string::npos);
    EXPECT_EQ(trace_events_dropped(), dropped_before);
}

TEST(SpanTest, ChromeTraceJsonRoundTripsWithNesting) {
    enable_tracing("/tmp/fpmpart_test_obs_trace.json");
    {
        Span parent("test.obs.parent", 64);
        for (int i = 0; i < 3; ++i) {
            Span child("test.obs.child");
        }
    }
    disable_tracing();

    std::ostringstream out;
    const std::size_t written = write_chrome_trace(out);
    EXPECT_GE(written, 4U);
    const std::string json = out.str();
    const auto events = parse_chrome_trace(json);
    EXPECT_EQ(events.size(), written);

    const ParsedEvent* parent = nullptr;
    std::vector<const ParsedEvent*> children;
    for (const auto& event : events) {
        EXPECT_EQ(event.ph, "X") << event.name;  // complete events only
        EXPECT_GE(event.ts, 0.0) << event.name;
        EXPECT_GE(event.dur, 0.0) << event.name;
        EXPECT_GE(event.tid, 0) << event.name;
        if (event.name == "test.obs.parent") {
            parent = &event;
        } else if (event.name == "test.obs.child") {
            children.push_back(&event);
        }
    }
    ASSERT_NE(parent, nullptr);
    ASSERT_EQ(children.size(), 3U);
    EXPECT_TRUE(parent->has_arg);
    EXPECT_EQ(parent->arg, 64U);

    // Nesting: every child interval lies inside the parent interval, on
    // the same thread, and the parent is at least as long as each child.
    for (const ParsedEvent* child : children) {
        EXPECT_EQ(child->tid, parent->tid);
        EXPECT_GE(child->ts, parent->ts);
        EXPECT_LE(child->ts + child->dur, parent->ts + parent->dur + 1e-3);
        EXPECT_LE(child->dur, parent->dur);
    }
}

TEST(SpanTest, FlushWritesConfiguredPath) {
    const std::string path = "/tmp/fpmpart_test_obs_flush.json";
    std::remove(path.c_str());
    enable_tracing(path);
    {
        Span span("test.obs.flush");
    }
    const std::size_t written = flush_trace();
    disable_tracing();
    EXPECT_GE(written, 1U);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_NE(content.str().find("test.obs.flush"), std::string::npos);
    std::remove(path.c_str());
}

// 16 threads record spans concurrently while one flusher repeatedly
// exports — the tracer's release/acquire publication must keep this
// clean under TSan (ctest -L stress).
TEST(ObsStress, SixteenThreadSpanHammerWithConcurrentFlush) {
    enable_tracing("/tmp/fpmpart_test_obs_span_hammer.json");
    std::atomic<bool> stop{false};
    std::thread flusher([&stop]() {
        while (!stop.load(std::memory_order_relaxed)) {
            std::ostringstream sink;
            write_chrome_trace(sink);
        }
    });

    constexpr std::size_t kThreads = 16;
    constexpr std::size_t kSpansPerThread = 2'000;
    fpm::test::run_concurrently(kThreads, [&](std::size_t t) {
        for (std::size_t i = 0; i < kSpansPerThread; ++i) {
            Span span("test.obs.hammer.span", t);
        }
    });
    stop.store(true, std::memory_order_relaxed);
    flusher.join();
    disable_tracing();

    std::ostringstream out;
    write_chrome_trace(out);
    const auto events = parse_chrome_trace(out.str());
    std::size_t hammer_events = 0;
    for (const auto& event : events) {
        if (event.name == "test.obs.hammer.span") {
            ++hammer_events;
        }
    }
    // Everything recorded (or accounted for as dropped on full buffers).
    EXPECT_GE(hammer_events + trace_events_dropped(),
              kThreads * kSpansPerThread);
}

} // namespace
} // namespace fpm::obs

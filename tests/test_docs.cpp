// Docs-consistency checks: the runbook, the protocol spec, the
// adaptation guide and the benchmarking guide are kept honest against
// the code they describe.  Every ServeConfig knob and every STATS field
// must be documented in docs/operations.md, every protocol verb must
// appear in docs/protocol.md, every AdaptConfig knob in
// docs/adaptation.md, and every fpmpart_bench flag plus every
// BENCH_loadgen.json field in docs/benchmarking.md.  The source tree's
// location is baked in via FPMPART_SOURCE_DIR at configure time.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fpm/loadgen/report.hpp"
#include "fpm/serve/error.hpp"
#include "fpm/serve/protocol.hpp"
#include "fpm/serve/request_engine.hpp"

namespace {

std::string read_file(const std::string& relative) {
    const std::string path = std::string(FPMPART_SOURCE_DIR) + "/" + relative;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing file: " << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

bool identifier(const std::string& token) {
    if (token.empty() || std::isdigit(static_cast<unsigned char>(token[0]))) {
        return false;
    }
    for (const char c : token) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
            return false;
        }
    }
    return true;
}

/// Extracts member names from a plain aggregate header: any line of the
/// form `<type> <name> = <default>;` (modulo trailing comments) yields
/// <name>.  Deliberately simple — it only has to keep up with
/// serve_config.hpp, and a false negative fails loudly below.
std::vector<std::string> struct_fields(const std::string& source) {
    std::vector<std::string> fields;
    std::istringstream lines(source);
    std::string line;
    while (std::getline(lines, line)) {
        const auto first = line.find_first_not_of(" \t");
        if (first == std::string::npos) {
            continue;
        }
        const char lead = line[first];
        if (lead == '/' || lead == '#' || lead == '}' || lead == '{') {
            continue;
        }
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            continue;
        }
        // Last whitespace-separated token before the '='.
        std::istringstream head(line.substr(0, eq));
        std::string token;
        std::string name;
        while (head >> token) {
            name = token;
        }
        if (identifier(name)) {
            fields.push_back(name);
        }
    }
    return fields;
}

/// Every distinct `"--flag"` string literal in a tool source — the
/// flags the tool binds (plus the ones its error messages name, which
/// are the same set).
std::vector<std::string> flag_literals(const std::string& source) {
    std::vector<std::string> flags;
    for (auto pos = source.find("\"--"); pos != std::string::npos;
         pos = source.find("\"--", pos + 1)) {
        auto end = pos + 1;
        while (end < source.size() &&
               (std::isalnum(static_cast<unsigned char>(source[end])) ||
                source[end] == '-')) {
            ++end;
        }
        const std::string flag = source.substr(pos + 1, end - pos - 1);
        if (flag.size() > 2 &&
            std::find(flags.begin(), flags.end(), flag) == flags.end()) {
            flags.push_back(flag);
        }
    }
    return flags;
}

/// Every distinct `"key":` object key of a JSON document.
std::vector<std::string> json_keys(const std::string& json) {
    std::vector<std::string> keys;
    std::size_t pos = 0;
    while ((pos = json.find('"', pos)) != std::string::npos) {
        const auto close = json.find('"', pos + 1);
        if (close == std::string::npos) {
            break;
        }
        if (close + 1 < json.size() && json[close + 1] == ':') {
            const std::string key = json.substr(pos + 1, close - pos - 1);
            if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
                keys.push_back(key);
            }
        }
        pos = close + 1;
    }
    return keys;
}

TEST(DocsConsistency, OperationsRunbookCoversEveryServeConfigKnob) {
    const std::string header =
        read_file("src/serve/include/fpm/serve/serve_config.hpp");
    const std::string runbook = read_file("docs/operations.md");
    const std::vector<std::string> fields = struct_fields(header);
    // Guard the extractor itself: ServeConfig has had >= 13 knobs since
    // the retry block landed.  If this trips, the heuristic regressed.
    EXPECT_GE(fields.size(), 13u);
    for (const std::string& field : fields) {
        EXPECT_NE(runbook.find(field), std::string::npos)
            << "ServeConfig::" << field << " is not documented in "
            << "docs/operations.md";
    }
    // The reactor pool's operator surface: the flags and the load-balance
    // mechanism must be named, and the cache_shards engine knob (which
    // lives in RequestEngine::Options, outside ServeConfig) too.
    for (const char* token :
         {"--reactors", "--cache-shards", "SO_REUSEPORT", "cache_shards"}) {
        EXPECT_NE(runbook.find(token), std::string::npos)
            << "'" << token << "' is not documented in docs/operations.md";
    }
}

TEST(DocsConsistency, OperationsRunbookCoversEveryStatsField) {
    const std::string runbook = read_file("docs/operations.md");
    const fpm::serve::Response stats =
        fpm::serve::make_stats_reply(fpm::serve::EngineStats{}, 0);
    ASSERT_FALSE(stats.stats.empty());
    for (const auto& field : stats.stats) {
        EXPECT_NE(runbook.find(field.name), std::string::npos)
            << "STATS field '" << field.name << "' is not documented in "
            << "docs/operations.md";
    }
}

TEST(DocsConsistency, OperationsRunbookCoversEnvironmentVariables) {
    const std::string runbook = read_file("docs/operations.md");
    for (const char* name : {"FPMPART_FAULTS", "FPMPART_TRACE"}) {
        EXPECT_NE(runbook.find(name), std::string::npos)
            << name << " is not documented in docs/operations.md";
    }
    // The well-known injection points must all be listed by name.
    for (const char* point :
         {"serve.accept", "serve.recv", "serve.send", "serve.cache",
          "serve.compute", "serve.reload", "rt.dispatch", "adapt.ingest",
          "adapt.refine", "adapt.publish", "store.append", "store.fsync",
          "store.snapshot", "repl.handshake", "repl.send", "repl.apply"}) {
        EXPECT_NE(runbook.find(point), std::string::npos)
            << "fault point '" << point
            << "' is not documented in docs/operations.md";
    }
}

TEST(DocsConsistency, ProtocolSpecTabulatesEveryErrorToken) {
    // The wire error tokens are a closed, append-only compatibility
    // surface: every ErrorCode's token must appear in the protocol
    // spec's taxonomy table.  Walk the enum until error_token() reports
    // a code the build does not know (the enum is dense from 0).
    const std::string spec = read_file("docs/protocol.md");
    const std::vector<fpm::serve::ErrorCode> codes = {
        fpm::serve::ErrorCode::kInternal,
        fpm::serve::ErrorCode::kBusy,
        fpm::serve::ErrorCode::kUnsupportedVerb,
        fpm::serve::ErrorCode::kFeedbackDisabled,
        fpm::serve::ErrorCode::kBadRequest,
        fpm::serve::ErrorCode::kStoreUnavailable,
        fpm::serve::ErrorCode::kReadOnly,
    };
    for (const auto code : codes) {
        const std::string token(fpm::serve::error_token(code));
        ASSERT_FALSE(token.empty());
        EXPECT_NE(spec.find("`" + token + "`"), std::string::npos)
            << "error token '" << token
            << "' is missing from the docs/protocol.md taxonomy table";
    }
    // The grammar itself and the open HEALTH shape.
    for (const char* text :
         {"ERR <token> [<message>]", "ServerHealth", "ErrorCode",
          "recovered_generation"}) {
        EXPECT_NE(spec.find(text), std::string::npos)
            << "'" << text << "' is not documented in docs/protocol.md";
    }
}

TEST(DocsConsistency, OperationsRunbookCoversTheDurableStore) {
    const std::string runbook = read_file("docs/operations.md");
    for (const char* token :
         {"--store", "--store-fsync", "--store-snapshot-every",
          "fpm::store", "wal-", "snapshot-", "fpmmodel v2",
          "store_unavailable", "kill -9", "ci/crash_recovery.sh",
          "recovered generation"}) {
        EXPECT_NE(runbook.find(token), std::string::npos)
            << "'" << token << "' is not documented in docs/operations.md";
    }
}

TEST(DocsConsistency, ProtocolSpecCoversEveryVerbAndHealthField) {
    const std::string spec = read_file("docs/protocol.md");
    for (const char* verb :
         {"PING", "LOAD", "PARTITION", "FEEDBACK", "MODELS", "STATS",
          "HEALTH", "QUIT"}) {
        EXPECT_NE(spec.find(verb), std::string::npos)
            << "verb " << verb << " is not documented in docs/protocol.md";
    }
    for (const char* token :
         {"OK PONG", "OK HEALTH", "OK PARTITION", "OK FEEDBACK", "ERR ",
          "degraded=", "live=", "ready=", "faults=", "coalesced=",
          "reliable=", "republished=", "feedback not enabled",
          "unknown command", "cache_shards=", "reactors=",
          "ServerStats"}) {
        EXPECT_NE(spec.find(token), std::string::npos)
            << "token '" << token << "' is not documented in docs/protocol.md";
    }
}

TEST(DocsConsistency, ProtocolSpecCoversTheReplVerbs) {
    // v6: the replication sub-protocol and the read_only rejection are
    // part of the wire contract and must be specified.
    const std::string spec = read_file("docs/protocol.md");
    for (const char* token :
         {"REPL HELLO", "OK REPL STREAM", "OK REPL SNAP", "REPL FRAME",
          "REPL SNAP bytes=", "REPL PING", "committed=", "pos=",
          "`read_only`", "role=", "repl_lag_frames=", "repl_lag_seconds=",
          "repl_source=", "repl_applied_generation=",
          "docs/replication.md"}) {
        EXPECT_NE(spec.find(token), std::string::npos)
            << "'" << token << "' is not documented in docs/protocol.md";
    }
}

TEST(DocsConsistency, ReplicationGuideCoversTheSubsystem) {
    const std::string guide = read_file("docs/replication.md");
    // Topology + handshake + lag semantics + the failover runbook: the
    // operator-facing surface of fpm::repl, kept honest by name.
    for (const char* token :
         {"WAL shipping", "REPL HELLO", "REPL FRAME", "REPL SNAP",
          "REPL PING", "snapshot transfer", "seal point",
          "--repl-listen", "--replica-of", "read_only",
          "repl_lag_frames", "repl_lag_seconds", "repl_source",
          "repl_applied_generation", "role=replica", "failover",
          "promotion", "repl.handshake", "repl.send", "repl.apply",
          "ci/repl_drill.sh", "heartbeat", "ReplicationLog",
          "Replicator", "thread-per-follower"}) {
        EXPECT_NE(guide.find(token), std::string::npos)
            << "'" << token << "' is not documented in docs/replication.md";
    }
    // The runbook cross-links the replication guide and names the new
    // serving flags so an operator lands in the right place.
    const std::string runbook = read_file("docs/operations.md");
    for (const char* token :
         {"docs/replication.md", "--replica-of", "--repl-listen",
          "ci/repl_drill.sh"}) {
        EXPECT_NE(runbook.find(token), std::string::npos)
            << "'" << token << "' is not documented in docs/operations.md";
    }
}

TEST(DocsConsistency, AdaptationGuideCoversEveryAdaptConfigKnob) {
    const std::string header =
        read_file("src/adapt/include/fpm/adapt/adapt_config.hpp");
    const std::string guide = read_file("docs/adaptation.md");
    const std::vector<std::string> fields = struct_fields(header);
    // Guard the extractor: AdaptConfig carries >= 10 knobs.  If this
    // trips, the heuristic (or the header's plain-aggregate shape)
    // regressed.
    EXPECT_GE(fields.size(), 10u);
    for (const std::string& field : fields) {
        EXPECT_NE(guide.find(field), std::string::npos)
            << "AdaptConfig::" << field << " is not documented in "
            << "docs/adaptation.md";
    }
    // The feedback grammar, drift machinery and runbook sections.
    for (const char* token :
         {"FEEDBACK", "CUSUM", "adapt.ingest", "adapt.refine",
          "adapt.publish", "--adapt", "fpmpart_feedback"}) {
        EXPECT_NE(guide.find(token), std::string::npos)
            << "docs/adaptation.md does not mention '" << token << "'";
    }
}

TEST(DocsConsistency, AdaptStatsFieldsAreDocumented) {
    // The adapt_* STATS fields live in both the runbook (operator view)
    // and the adaptation guide (semantics).
    const std::string runbook = read_file("docs/operations.md");
    const std::string guide = read_file("docs/adaptation.md");
    for (const char* field :
         {"adapt_samples", "adapt_reliable", "adapt_drift",
          "adapt_republished", "adapt_model_version"}) {
        EXPECT_NE(runbook.find(field), std::string::npos)
            << "STATS field '" << field << "' missing from operations.md";
        EXPECT_NE(guide.find(field), std::string::npos)
            << "STATS field '" << field << "' missing from adaptation.md";
    }
}

TEST(DocsConsistency, BenchmarkingGuideCoversEveryBenchFlag) {
    const std::string tool = read_file("tools/fpmpart_bench.cpp");
    const std::string guide = read_file("docs/benchmarking.md");
    const std::vector<std::string> flags = flag_literals(tool);
    // Guard the extractor: fpmpart_bench binds > 20 flags.  If this
    // trips, the heuristic (or the tool) regressed.
    EXPECT_GE(flags.size(), 15u);
    for (const std::string& flag : flags) {
        EXPECT_NE(guide.find("`" + flag), std::string::npos)
            << "fpmpart_bench flag '" << flag
            << "' is not documented in docs/benchmarking.md";
    }
    // --trace is bound through FlagTable::trace(), so it never appears
    // as a literal in the tool source; the guide must still list it.
    EXPECT_NE(guide.find("`--trace"), std::string::npos);
}

TEST(DocsConsistency, BenchmarkingGuideCoversEveryReportField) {
    // Render a default Report: to_json() always emits every field, so
    // its keys are the full BENCH_loadgen.json surface.
    const std::string guide = read_file("docs/benchmarking.md");
    const std::vector<std::string> keys =
        json_keys(fpm::loadgen::Report{}.to_json());
    // Guard the extractor: the schema carries > 25 distinct keys
    // (top level + latency digest + the four verb slices).
    EXPECT_GE(keys.size(), 25u);
    for (const std::string& key : keys) {
        EXPECT_NE(guide.find("`" + key + "`"), std::string::npos)
            << "BENCH_loadgen.json field '" << key
            << "' is not documented in docs/benchmarking.md";
    }
    // The methodology the numbers depend on must be spelled out, and
    // the gate workflow must be findable from the guide.
    for (const char* token :
         {"fpmpart-loadgen-v1", "coordinated omission",
          "scheduled == sent + dropped", "ci/perf_gate.sh",
          "bench/baselines/serve_smoke.json", "FPMPART_PERF_TOLERANCE",
          "FPMPART_PERF_UPDATE"}) {
        EXPECT_NE(guide.find(token), std::string::npos)
            << "'" << token << "' is not documented in docs/benchmarking.md";
    }
}

TEST(DocsConsistency, ReadmeLinksTheDocs) {
    const std::string readme = read_file("README.md");
    EXPECT_NE(readme.find("docs/protocol.md"), std::string::npos);
    EXPECT_NE(readme.find("docs/operations.md"), std::string::npos);
    EXPECT_NE(readme.find("docs/adaptation.md"), std::string::npos);
    EXPECT_NE(readme.find("docs/benchmarking.md"), std::string::npos);
    EXPECT_NE(readme.find("docs/replication.md"), std::string::npos);
}

TEST(DocsConsistency, DesignDocDescribesTheCurrentArchitecture) {
    const std::string design = read_file("DESIGN.md");
    for (const char* token :
         {"fpm::fault", "epoll", "reactor", "degraded", "RequestEngine",
          "fpm::adapt", "FEEDBACK", "SO_REUSEPORT", "num_reactors",
          "cache_shards", "fpm::store", "write-ahead", "put observer",
          "ErrorCode"}) {
        EXPECT_NE(design.find(token), std::string::npos)
            << "DESIGN.md does not mention '" << token << "'";
    }
    // The PR-1 thread-per-connection server is gone; the design doc must
    // not still describe it.
    EXPECT_EQ(design.find("thread-per-connection"), std::string::npos)
        << "DESIGN.md still describes the retired thread-per-connection "
        << "server";
    // The reactor pool is described as a *single* shared-nothing loop per
    // reactor, never as the old one-loop-total architecture.
    EXPECT_EQ(design.find("is a **single-threaded epoll reactor**"),
              std::string::npos)
        << "DESIGN.md still describes the retired one-reactor server";
}

} // namespace

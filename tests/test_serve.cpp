// Tests for the partition service: model registry versioning, LRU cache,
// wire protocol, request engine (cache + single-flight dedup) and the
// socket server/client integration — including the acceptance scenario:
// >= 32 concurrent requests over >= 2 model sets whose responses must
// match the direct library call bit-for-bit, with cache hits making
// repeated queries measurably faster than cold ones.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fpm/core/model_io.hpp"
#include "fpm/fault/fault.hpp"
#include "fpm/measure/timer.hpp"
#include "fpm/obs/trace.hpp"
#include "fpm/serve/client.hpp"
#include "fpm/serve/model_registry.hpp"
#include "fpm/serve/partition_cache.hpp"
#include "fpm/serve/protocol.hpp"
#include "fpm/serve/request_engine.hpp"
#include "fpm/serve/server.hpp"
#include "stress_harness.hpp"

namespace fpm::serve {
namespace {

using core::SpeedFunction;
using core::SpeedPoint;

/// Deterministic synthetic device set; `points_per_model` controls how
/// expensive a cold partition is (the envelopes resample every segment).
std::vector<SpeedFunction> synthetic_models(std::size_t devices,
                                            std::size_t points_per_model,
                                            double peak_scale) {
    std::vector<SpeedFunction> models;
    for (std::size_t d = 0; d < devices; ++d) {
        std::vector<SpeedPoint> points;
        const double peak = peak_scale * (40.0 + 17.0 * static_cast<double>(d));
        const double cliff = 900.0 + 400.0 * static_cast<double>(d);
        const double x_max = 6000.0;
        for (std::size_t p = 0; p < points_per_model; ++p) {
            const double x = 4.0 + (x_max - 4.0) * static_cast<double>(p) /
                                       static_cast<double>(points_per_model - 1);
            const double ramp = x / (x + 25.0);
            const double speed = (x < cliff ? peak : 0.45 * peak) * ramp;
            points.push_back(SpeedPoint{x, speed});
        }
        models.emplace_back(std::move(points),
                            "dev" + std::to_string(d) + "s" +
                                std::to_string(devices));
    }
    return models;
}

std::shared_ptr<const PartitionPlan> plan_of(double balanced = 1.0) {
    auto plan = std::make_shared<PartitionPlan>();
    plan->balanced_time = balanced;
    return plan;
}

TEST(Fingerprint, ContentDeterminesHash) {
    const auto a = synthetic_models(3, 16, 1.0);
    const auto b = synthetic_models(3, 16, 1.0);
    const auto c = synthetic_models(3, 16, 1.1);
    EXPECT_EQ(fingerprint_models(a), fingerprint_models(b));
    EXPECT_NE(fingerprint_models(a), fingerprint_models(c));
    EXPECT_NE(fingerprint_models(a),
              fingerprint_models(synthetic_models(4, 16, 1.0)));
}

TEST(Fingerprint, IndependentOfRegistryName) {
    ModelRegistry registry;
    const auto first = registry.put("alpha", synthetic_models(2, 8, 1.0));
    const auto second = registry.put("beta", synthetic_models(2, 8, 1.0));
    EXPECT_EQ(first->fingerprint, second->fingerprint);
    EXPECT_NE(first->generation, second->generation);
}

TEST(ModelRegistryTest, VersioningAndHotReload) {
    ModelRegistry registry;
    const auto v1 = registry.put("hybrid", synthetic_models(3, 8, 1.0));
    EXPECT_EQ(registry.size(), 1U);
    EXPECT_EQ(registry.get("hybrid")->generation, v1->generation);

    // Hot reload installs a new generation; the old snapshot stays valid
    // for whoever still holds it (in-flight requests).
    const auto v2 = registry.put("hybrid", synthetic_models(3, 8, 2.0));
    EXPECT_GT(v2->generation, v1->generation);
    EXPECT_EQ(registry.size(), 1U);
    EXPECT_EQ(registry.get("hybrid")->generation, v2->generation);
    EXPECT_EQ(v1->models.size(), 3U);  // old snapshot untouched
    EXPECT_NE(v1->fingerprint, v2->fingerprint);
}

TEST(ModelRegistryTest, Validation) {
    ModelRegistry registry;
    EXPECT_THROW(registry.put("", synthetic_models(1, 8, 1.0)), fpm::Error);
    EXPECT_THROW(registry.put("has space", synthetic_models(1, 8, 1.0)),
                 fpm::Error);
    EXPECT_THROW(registry.put("has,comma", synthetic_models(1, 8, 1.0)),
                 fpm::Error);
    EXPECT_THROW(registry.put("ok", {}), fpm::Error);
    EXPECT_THROW(registry.get("missing"), fpm::Error);
    EXPECT_EQ(registry.find("missing"), nullptr);
}

TEST(PartitionCacheTest, LruEvictionAndCounters) {
    PartitionCache cache(2);
    const PlanKey k1{1, 10, Algorithm::kFpm, true};
    const PlanKey k2{1, 20, Algorithm::kFpm, true};
    const PlanKey k3{1, 30, Algorithm::kFpm, true};

    EXPECT_EQ(cache.get(k1), nullptr);  // miss
    cache.put(k1, plan_of(1.0));
    cache.put(k2, plan_of(2.0));
    EXPECT_NE(cache.get(k1), nullptr);  // hit, k1 now most recent
    cache.put(k3, plan_of(3.0));        // evicts k2 (least recent)
    EXPECT_EQ(cache.get(k2), nullptr);
    EXPECT_NE(cache.get(k3), nullptr);

    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 2U);
    EXPECT_EQ(stats.misses, 2U);
    EXPECT_EQ(stats.evictions, 1U);
    EXPECT_EQ(stats.size, 2U);

    cache.clear();
    EXPECT_EQ(cache.stats().size, 0U);
    EXPECT_THROW(PartitionCache(0), fpm::Error);
}

TEST(PartitionCacheTest, ShardingKeepsSemanticsAndSumsCounters) {
    // 3 stripes round up to 4 (power of two); every key of one
    // fingerprint lands on one stripe, so invalidation is single-shard.
    PartitionCache cache(8, 3);
    EXPECT_EQ(cache.shard_count(), 4U);

    constexpr std::uint64_t kFingerprints[] = {11, 22, 33, 44, 55};
    for (const std::uint64_t fp : kFingerprints) {
        cache.put(PlanKey{fp, 10, Algorithm::kFpm, true}, plan_of(1.0));
        cache.put(PlanKey{fp, 20, Algorithm::kFpm, true}, plan_of(2.0));
        EXPECT_NE(cache.get(PlanKey{fp, 10, Algorithm::kFpm, true}), nullptr);
        EXPECT_EQ(cache.get(PlanKey{fp, 99, Algorithm::kFpm, true}), nullptr);
    }

    // Per-shard counters sum field-wise to the global view.
    const auto global = cache.stats();
    const auto shards = cache.shard_stats();
    ASSERT_EQ(shards.size(), cache.shard_count());
    CacheStats sum;
    for (const auto& shard : shards) {
        sum.hits += shard.hits;
        sum.misses += shard.misses;
        sum.evictions += shard.evictions;
        sum.size += shard.size;
    }
    EXPECT_EQ(sum.hits, global.hits);
    EXPECT_EQ(sum.misses, global.misses);
    EXPECT_EQ(sum.evictions, global.evictions);
    EXPECT_EQ(sum.size, global.size);
    EXPECT_EQ(global.hits, 5U);
    EXPECT_EQ(global.misses, 5U);

    // Invalidating one fingerprint leaves every other one servable.
    cache.erase_fingerprint(33);
    EXPECT_EQ(cache.get(PlanKey{33, 10, Algorithm::kFpm, true}), nullptr);
    EXPECT_EQ(cache.get(PlanKey{33, 20, Algorithm::kFpm, true}), nullptr);
    EXPECT_NE(cache.get(PlanKey{22, 10, Algorithm::kFpm, true}), nullptr);
    EXPECT_NE(cache.get(PlanKey{44, 20, Algorithm::kFpm, true}), nullptr);

    EXPECT_THROW(PartitionCache(8, 0), fpm::Error);
}

TEST(PartitionCacheTest, KeyOrderingDiscriminatesEveryField) {
    const PlanKey base{7, 10, Algorithm::kFpm, true};
    PlanKey other = base;
    other.fingerprint = 8;
    EXPECT_NE(base, other);
    other = base;
    other.algorithm = Algorithm::kCpm;
    EXPECT_NE(base, other);
    other = base;
    other.with_layout = false;
    EXPECT_NE(base, other);
}

TEST(Protocol, AlgorithmNamesRoundTrip) {
    for (const Algorithm algorithm :
         {Algorithm::kFpm, Algorithm::kCpm, Algorithm::kEven}) {
        EXPECT_EQ(part::parse_algorithm(part::to_string(algorithm)), algorithm);
    }
    EXPECT_EQ(part::parse_algorithm("nope"), std::nullopt);
}

TEST(Protocol, DecodeRequest) {
    EXPECT_EQ(Request::decode("PING").kind, Request::Kind::kPing);
    EXPECT_EQ(Request::decode("QUIT").kind, Request::Kind::kQuit);
    EXPECT_EQ(Request::decode("STATS").kind, Request::Kind::kStats);
    EXPECT_EQ(Request::decode("MODELS").kind, Request::Kind::kModels);

    const Request load = Request::decode("LOAD hybrid /tmp/m.csv");
    EXPECT_EQ(load.kind, Request::Kind::kLoad);
    EXPECT_EQ(load.name, "hybrid");
    EXPECT_EQ(load.path, "/tmp/m.csv");

    const Request p = Request::decode("PARTITION hybrid 60 cpm nolayout");
    EXPECT_EQ(p.kind, Request::Kind::kPartition);
    EXPECT_EQ(p.partition.model_set, "hybrid");
    EXPECT_EQ(p.partition.n, 60);
    EXPECT_EQ(p.partition.algorithm, Algorithm::kCpm);
    EXPECT_FALSE(p.partition.with_layout);

    EXPECT_THROW(Request::decode(""), fpm::Error);
    EXPECT_THROW(Request::decode("FROB"), fpm::Error);
    EXPECT_THROW(Request::decode("PING extra"), fpm::Error);
    EXPECT_THROW(Request::decode("LOAD onlyname"), fpm::Error);
    EXPECT_THROW(Request::decode("PARTITION hybrid"), fpm::Error);
    EXPECT_THROW(Request::decode("PARTITION hybrid abc fpm"), fpm::Error);
    EXPECT_THROW(Request::decode("PARTITION hybrid 60x fpm"), fpm::Error);
    EXPECT_THROW(Request::decode("PARTITION hybrid -5 fpm"), fpm::Error);
    EXPECT_THROW(Request::decode("PARTITION hybrid 60 magic"), fpm::Error);
    EXPECT_THROW(Request::decode("PARTITION hybrid 60 fpm wat"), fpm::Error);
}

TEST(Protocol, RequestEncodeDecodeRoundTrip) {
    const char* lines[] = {"PING", "QUIT", "STATS", "MODELS",
                           "LOAD hybrid /tmp/m.csv",
                           "PARTITION hybrid 60 cpm nolayout",
                           "PARTITION hybrid 48 fpm"};
    for (const char* line : lines) {
        const Request request = Request::decode(line);
        EXPECT_EQ(request.encode(), line);
        // decode(encode()) is the identity on kinds.
        EXPECT_EQ(Request::decode(request.encode()).kind, request.kind);
    }
}

TEST(Protocol, ResponseEncodeDecodeRoundTrip) {
    {
        const Response error = Response::make_error("it\nbroke");
        // v5: legacy free text classifies as internal, newline sanitized.
        EXPECT_EQ(error.encode(), "ERR internal it broke");
        const Response decoded = Response::decode(error.encode());
        EXPECT_EQ(decoded.kind, Response::Kind::kError);
        EXPECT_EQ(decoded.error_code, ErrorCode::kInternal);
        EXPECT_EQ(decoded.error, "it broke");
    }
    {
        // A message-less typed error is the bare token on the wire and
        // round-trips to itself (`error` is never empty).
        const Response busy = Response::make_error(ErrorCode::kBusy);
        EXPECT_EQ(busy.encode(), "ERR busy");
        const Response decoded = Response::decode(busy.encode());
        EXPECT_EQ(decoded.error_code, ErrorCode::kBusy);
        EXPECT_EQ(decoded.error, "busy");
        EXPECT_EQ(decoded.encode(), "ERR busy");
    }
    {
        Response pong;
        pong.kind = Response::Kind::kPong;
        pong.version = kProtocolVersion;
        const Response decoded = Response::decode(pong.encode());
        EXPECT_EQ(decoded.kind, Response::Kind::kPong);
        EXPECT_EQ(decoded.version, kProtocolVersion);
    }
    {
        Response loaded;
        loaded.kind = Response::Kind::kLoaded;
        loaded.loaded = LoadedReply{"hybrid", 3, 7, 0xdeadbeefcafef00dULL};
        const Response decoded = Response::decode(loaded.encode());
        EXPECT_EQ(decoded.kind, Response::Kind::kLoaded);
        EXPECT_EQ(decoded.loaded.name, "hybrid");
        EXPECT_EQ(decoded.loaded.models, 3U);
        EXPECT_EQ(decoded.loaded.generation, 7U);
        EXPECT_EQ(decoded.loaded.fingerprint, 0xdeadbeefcafef00dULL);
    }
    {
        Response models;
        models.kind = Response::Kind::kModels;
        models.sets = {ModelSetInfo{"a", 1, 2}, ModelSetInfo{"b", 3, 4}};
        const Response decoded = Response::decode(models.encode());
        ASSERT_EQ(decoded.sets.size(), 2U);
        EXPECT_EQ(decoded.sets[1].name, "b");
        EXPECT_EQ(decoded.sets[1].generation, 3U);
        EXPECT_EQ(decoded.sets[1].models, 4U);
    }
    EXPECT_THROW(Response::decode("OK WAT"), fpm::Error);
    EXPECT_THROW(Response::decode("nope"), fpm::Error);
}

TEST(Protocol, HandleLineBasics) {
    ModelRegistry registry;
    registry.put("tiny", synthetic_models(2, 8, 1.0));
    RequestEngine engine(registry, {.workers = 2, .cache_capacity = 8});

    EXPECT_EQ(handle_line(engine, "PING"),
              "OK PONG v" + std::to_string(kProtocolVersion));
    EXPECT_EQ(handle_line(engine, "QUIT"), "OK BYE");
    EXPECT_EQ(handle_line(engine, "BOGUS").rfind("ERR ", 0), 0U);
    EXPECT_EQ(handle_line(engine, "PARTITION missing 10 fpm").rfind("ERR ", 0),
              0U);

    const std::string models = handle_line(engine, "MODELS");
    EXPECT_NE(models.find("OK MODELS count=1"), std::string::npos);
    EXPECT_NE(models.find("tiny:"), std::string::npos);

    const std::string reply = handle_line(engine, "PARTITION tiny 16 fpm");
    const PartitionReply parsed = parse_partition_reply(reply);
    EXPECT_EQ(parsed.model, "tiny");
    EXPECT_EQ(parsed.n, 16);
    EXPECT_EQ(parsed.blocks.size(), 2U);
    EXPECT_EQ(parsed.rects.size(), 2U);

    // Two PARTITION lines hit the engine (the failed one still counts);
    // the STATS reply round-trips into the typed ServerStats view.
    const Response stats_response =
        Response::decode(handle_line(engine, "STATS"));
    ASSERT_EQ(stats_response.kind, Response::Kind::kStats);
    const ServerStats stats = ServerStats::from_fields(stats_response.stats);
    EXPECT_EQ(stats.requests, 2U);
    EXPECT_EQ(stats.computed, 1U);

    // Per-algorithm latency quantiles: only the fpm request completed.
    const AlgorithmStats& fpm_lat =
        stats.by_algorithm[static_cast<std::size_t>(Algorithm::kFpm)];
    EXPECT_EQ(fpm_lat.count, 1U);
    EXPECT_GT(fpm_lat.p50_us, 0.0);
    EXPECT_GE(fpm_lat.p95_us, fpm_lat.p50_us);
    EXPECT_GE(fpm_lat.p99_us, fpm_lat.p95_us);
    EXPECT_EQ(stats.by_algorithm[static_cast<std::size_t>(Algorithm::kCpm)]
                  .count,
              0U);
    EXPECT_EQ(stats.by_algorithm[static_cast<std::size_t>(Algorithm::kEven)]
                  .count,
              0U);
    EXPECT_TRUE(stats.extras.empty()) << stats.extras.begin()->first;

    EXPECT_THROW(parse_partition_reply("ERR kaput"), fpm::Error);
    EXPECT_THROW(parse_partition_reply("OK PONG"), fpm::Error);
}

TEST(RequestEngineTest, MatchesDirectLibraryCallBitForBit) {
    ModelRegistry registry;
    const auto set = registry.put("hybrid", synthetic_models(4, 24, 1.0));
    RequestEngine engine(registry, {.workers = 2, .cache_capacity = 32});

    for (const Algorithm algorithm :
         {Algorithm::kFpm, Algorithm::kCpm, Algorithm::kEven}) {
        for (const bool with_layout : {true, false}) {
            const PartitionRequest request{"hybrid", 48, algorithm,
                                           with_layout};
            const auto response = engine.execute(request);
            const PartitionPlan direct = RequestEngine::compute_plan(
                *set, request.n, algorithm, with_layout);

            ASSERT_NE(response.plan, nullptr);
            EXPECT_EQ(response.plan->blocks, direct.blocks);
            EXPECT_EQ(response.plan->balanced_time, direct.balanced_time);
            EXPECT_EQ(response.plan->makespan, direct.makespan);
            EXPECT_EQ(response.plan->comm_cost, direct.comm_cost);
            EXPECT_EQ(response.plan->generation, set->generation);
            ASSERT_EQ(response.plan->layout.rects.size(),
                      direct.layout.rects.size());
            for (std::size_t i = 0; i < direct.layout.rects.size(); ++i) {
                EXPECT_EQ(response.plan->layout.rects[i].col0,
                          direct.layout.rects[i].col0);
                EXPECT_EQ(response.plan->layout.rects[i].row0,
                          direct.layout.rects[i].row0);
                EXPECT_EQ(response.plan->layout.rects[i].w,
                          direct.layout.rects[i].w);
                EXPECT_EQ(response.plan->layout.rects[i].h,
                          direct.layout.rects[i].h);
            }
            if (with_layout) {
                std::int64_t covered = 0;
                for (const auto blocks : response.plan->blocks) {
                    covered += blocks;
                }
                EXPECT_EQ(covered, request.n * request.n);
            }
        }
    }
}

TEST(RequestEngineTest, CachesRepeatsAndTracksGenerations) {
    ModelRegistry registry;
    registry.put("hybrid", synthetic_models(3, 16, 1.0));
    RequestEngine engine(registry, {.workers = 2, .cache_capacity = 32});
    const PartitionRequest request{"hybrid", 40, Algorithm::kFpm, true};

    const auto cold = engine.execute(request);
    EXPECT_FALSE(cold.cache_hit);
    const auto warm = engine.execute(request);
    EXPECT_TRUE(warm.cache_hit);
    EXPECT_EQ(warm.plan.get(), cold.plan.get());  // same shared plan

    auto stats = engine.stats();
    EXPECT_EQ(stats.requests, 2U);
    EXPECT_EQ(stats.computed, 1U);
    EXPECT_GE(stats.cache.hits, 1U);

    // Hot reload with different content: the old cache entry no longer
    // matches (fingerprint key), so the next request recomputes against
    // the new snapshot.
    registry.put("hybrid", synthetic_models(3, 16, 2.0));
    const auto reloaded = engine.execute(request);
    EXPECT_FALSE(reloaded.cache_hit);
    EXPECT_GT(reloaded.plan->generation, cold.plan->generation);

    // Reload with *identical* content keeps the cache warm.
    registry.put("hybrid", synthetic_models(3, 16, 2.0));
    const auto still_warm = engine.execute(request);
    EXPECT_TRUE(still_warm.cache_hit);
}

TEST(RequestEngineTest, RejectsBadRequests) {
    ModelRegistry registry;
    registry.put("ok", synthetic_models(2, 8, 1.0));
    RequestEngine engine(registry, {.workers = 1, .cache_capacity = 4});
    EXPECT_THROW(engine.execute({"missing", 10, Algorithm::kFpm, true}),
                 fpm::Error);
    EXPECT_THROW(engine.execute({"ok", 0, Algorithm::kFpm, true}), fpm::Error);
    EXPECT_THROW(engine.execute({"ok", -3, Algorithm::kFpm, true}), fpm::Error);
}

TEST(RequestEngineTest, SingleFlightCoalescesIdenticalRequests) {
    ModelRegistry registry;
    // Expensive models so the storm genuinely overlaps the computation.
    registry.put("big", synthetic_models(6, 600, 1.0));
    RequestEngine engine(registry, {.workers = 4, .cache_capacity = 32});

    constexpr std::size_t kClients = 16;
    const PartitionRequest request{"big", 64, Algorithm::kFpm, true};
    std::vector<std::shared_ptr<const PartitionPlan>> plans(kClients);
    fpm::test::run_concurrently(kClients, [&](std::size_t i) {
        plans[i] = engine.execute(request).plan;
    });

    for (const auto& plan : plans) {
        ASSERT_NE(plan, nullptr);
        EXPECT_EQ(plan.get(), plans[0].get());  // everyone shares one plan
    }
    const auto stats = engine.stats();
    EXPECT_EQ(stats.requests, kClients);
    // The cache re-check under the in-flight lock makes this exact: one
    // computation, every other request a cache hit or a coalesced waiter.
    EXPECT_EQ(stats.computed, 1U);
    EXPECT_EQ(stats.coalesced + stats.cache.hits, kClients - 1);
    EXPECT_EQ(stats.latency.count, kClients);
    // Per-algorithm latency histogram saw every request (all were fpm).
    EXPECT_EQ(stats.latency_by_algorithm[static_cast<std::size_t>(
                  Algorithm::kFpm)].count,
              kClients);
    EXPECT_EQ(stats.latency_by_algorithm[static_cast<std::size_t>(
                  Algorithm::kCpm)].count,
              0U);
}

TEST(RequestEngineTest, SubmitRunsOnPool) {
    ModelRegistry registry;
    registry.put("hybrid", synthetic_models(3, 16, 1.0));
    RequestEngine engine(registry, {.workers = 4, .cache_capacity = 32});

    std::vector<std::future<PartitionResponse>> futures;
    for (int i = 0; i < 24; ++i) {
        futures.push_back(engine.submit(
            {"hybrid", 16 + (i % 6) * 8, Algorithm::kFpm, true}));
    }
    for (auto& future : futures) {
        const auto response = future.get();
        ASSERT_NE(response.plan, nullptr);
        EXPECT_GT(response.plan->makespan, 0.0);
    }
    EXPECT_EQ(engine.stats().requests, 24U);
}

// ---------------------------------------------------------------------------
// Acceptance integration: socket server, >= 32 concurrent requests over
// two model sets, bit-for-bit agreement with the direct library call,
// cache hits > 0 and warm queries measurably faster than cold ones.
// ---------------------------------------------------------------------------
TEST(ServeIntegration, ConcurrentClientsMatchDirectLibraryCalls) {
    const std::string alpha_csv = "/tmp/fpmpart_serve_alpha.csv";
    const std::string beta_csv = "/tmp/fpmpart_serve_beta.csv";
    core::save_speed_functions_csv(alpha_csv, synthetic_models(4, 200, 1.0));
    core::save_speed_functions_csv(beta_csv, synthetic_models(3, 200, 1.7));

    ModelRegistry registry;
    registry.load_csv("alpha", alpha_csv);
    registry.load_csv("beta", beta_csv);
    RequestEngine engine(registry, {.workers = 4, .cache_capacity = 256});
    SocketServer server(engine);
    server.start();
    ASSERT_GT(server.port(), 0);

    constexpr std::size_t kClients = 32;
    const std::int64_t ns[] = {24, 30, 36, 42, 48, 54, 60, 66};
    const Algorithm algorithms[] = {Algorithm::kFpm, Algorithm::kCpm,
                                    Algorithm::kEven};
    std::vector<PartitionReply> replies(kClients);
    std::vector<PartitionRequest> requests(kClients);
    for (std::size_t i = 0; i < kClients; ++i) {
        requests[i] = PartitionRequest{(i % 2 == 0) ? "alpha" : "beta",
                                       ns[i % 8], algorithms[i % 3], true};
    }

    fpm::test::run_concurrently(kClients, [&](std::size_t i) {
        ServeClient client("127.0.0.1", server.port());
        replies[i] = client.partition(requests[i]);
    });

    // Every wire response must equal the direct library call bit-for-bit.
    for (std::size_t i = 0; i < kClients; ++i) {
        const auto set = registry.get(requests[i].model_set);
        const PartitionPlan direct = RequestEngine::compute_plan(
            *set, requests[i].n, requests[i].algorithm, true);
        const PartitionReply& reply = replies[i];
        EXPECT_EQ(reply.model, requests[i].model_set) << i;
        EXPECT_EQ(reply.generation, set->generation) << i;
        EXPECT_EQ(reply.blocks, direct.blocks) << i;
        EXPECT_EQ(reply.balanced_time, direct.balanced_time) << i;
        EXPECT_EQ(reply.makespan, direct.makespan) << i;
        EXPECT_EQ(reply.comm_cost, direct.comm_cost) << i;
        ASSERT_EQ(reply.rects.size(), direct.layout.rects.size()) << i;
        for (std::size_t r = 0; r < reply.rects.size(); ++r) {
            EXPECT_EQ(reply.rects[r].col0, direct.layout.rects[r].col0);
            EXPECT_EQ(reply.rects[r].row0, direct.layout.rects[r].row0);
            EXPECT_EQ(reply.rects[r].w, direct.layout.rects[r].w);
            EXPECT_EQ(reply.rects[r].h, direct.layout.rects[r].h);
        }
    }
    EXPECT_GE(server.connections_accepted(), kClients);

    // The 32 requests covered 24 distinct (set, n, algo) combinations; a
    // second identical pass over one connection must be served from the
    // cache and report it.
    const auto before = engine.stats();
    {
        ServeClient client("127.0.0.1", server.port());
        for (std::size_t i = 0; i < kClients; ++i) {
            const PartitionReply warm = client.partition(requests[i]);
            EXPECT_TRUE(warm.cached) << i;
            EXPECT_EQ(warm.blocks, replies[i].blocks) << i;
        }
    }
    const auto after = engine.stats();
    EXPECT_GT(after.cache.hits, before.cache.hits);
    EXPECT_GT(after.cache.hits, 0U);

    // Warm queries must be measurably faster than cold ones: time a
    // batch of never-seen sizes against the same batch repeated.
    const std::int64_t cold_ns[] = {25, 31, 37, 43, 49, 55, 61, 67};
    measure::WallTimer timer;
    for (const std::int64_t n : cold_ns) {
        engine.execute({"alpha", n, Algorithm::kFpm, true});
    }
    const double cold_seconds = timer.elapsed();
    double warm_seconds = std::numeric_limits<double>::infinity();
    for (int repeat = 0; repeat < 3; ++repeat) {  // min over repeats
        timer.reset();
        for (const std::int64_t n : cold_ns) {
            const auto warm = engine.execute({"alpha", n, Algorithm::kFpm,
                                              true});
            EXPECT_TRUE(warm.cache_hit);
        }
        warm_seconds = std::min(warm_seconds, timer.elapsed());
    }
    EXPECT_LT(warm_seconds * 2.0, cold_seconds)
        << "cold=" << cold_seconds << "s warm=" << warm_seconds << "s";

    server.stop();
    EXPECT_FALSE(server.running());
    std::remove(alpha_csv.c_str());
    std::remove(beta_csv.c_str());
}

TEST(ServeIntegration, WireLoadStatsAndQuit) {
    const std::string csv = "/tmp/fpmpart_serve_load.csv";
    core::save_speed_functions_csv(csv, synthetic_models(2, 12, 1.0));

    ModelRegistry registry;
    RequestEngine engine(registry, {.workers = 2, .cache_capacity = 16});
    SocketServer server(engine);
    server.start();

    ServeClient client("127.0.0.1", server.port());
    client.ping();

    // Hot-load a model set over the wire, then use it.
    const std::string loaded = client.request("LOAD wired " + csv);
    EXPECT_EQ(loaded.rfind("OK LOADED name=wired models=2", 0), 0U) << loaded;
    const PartitionReply reply =
        client.partition({"wired", 20, Algorithm::kFpm, true});
    EXPECT_EQ(reply.blocks.size(), 2U);

    // Typed STATS round trip: the hot-loaded registry entry is counted.
    const ServerStats stats = client.stats();
    EXPECT_EQ(stats.models, 1U);
    EXPECT_EQ(stats.reactors, 1U);

    // Malformed input answers ERR but keeps the connection usable.
    EXPECT_EQ(client.request("PARTITION nope 10 fpm").rfind("ERR ", 0), 0U);
    client.ping();

    EXPECT_EQ(client.request("QUIT"), "OK BYE");
    EXPECT_THROW(client.request("PING"), fpm::Error);  // server hung up

    server.stop();
    std::remove(csv.c_str());
}

/// Binds a loopback listener on an ephemeral port (never accepts unless
/// the test does so itself); returns {fd, port}.
std::pair<int, std::uint16_t> loopback_listener() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    EXPECT_EQ(::listen(fd, 4), 0);
    socklen_t len = sizeof addr;
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    return {fd, ntohs(addr.sin_port)};
}

TEST(ServeClientTest, RecvTimeoutOnServerThatAcceptsButNeverReplies) {
    const auto [fd, port] = loopback_listener();

    ServeConfig config;
    config.connect_timeout = 2.0;
    config.recv_timeout = 0.2;
    ServeClient client("127.0.0.1", port, config);  // lands in the backlog

    measure::WallTimer timer;
    try {
        (void)client.request("PING");
        FAIL() << "expected a timeout error";
    } catch (const fpm::Error& e) {
        EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos)
            << e.what();
    }
    EXPECT_LT(timer.elapsed(), 2.0);  // bounded, not hanging forever
    ::close(fd);
}

TEST(ServeClientTest, RejectsProtocolVersionMismatch) {
    const auto [fd, port] = loopback_listener();
    std::thread impostor([fd = fd]() {
        const int conn = ::accept(fd, nullptr, nullptr);
        if (conn < 0) {
            return;
        }
        char buffer[256];
        (void)::recv(conn, buffer, sizeof buffer, 0);
        const char reply[] = "OK PONG v1\n";
        (void)::send(conn, reply, sizeof reply - 1, MSG_NOSIGNAL);
        ::close(conn);
    });

    ServeClient client("127.0.0.1", port);
    try {
        client.ping();
        FAIL() << "expected a protocol version error";
    } catch (const fpm::Error& e) {
        EXPECT_NE(std::string(e.what()).find("protocol version mismatch"),
                  std::string::npos)
            << e.what();
    }
    impostor.join();
    ::close(fd);
}

TEST(ServeIntegration, ExportsChromeTraceOfServedRequests) {
    const std::string trace_path = "/tmp/fpmpart_serve_trace.json";
    std::remove(trace_path.c_str());
    obs::enable_tracing(trace_path);
    {
        ModelRegistry registry;
        registry.put("traced", synthetic_models(3, 32, 1.0));
        RequestEngine engine(registry, {.workers = 2, .cache_capacity = 16});
        for (int i = 0; i < 4; ++i) {
            engine.execute({"traced", 24 + 4 * i, Algorithm::kFpm, true});
        }
        engine.execute({"traced", 24, Algorithm::kFpm, true});  // cache hit
    }
    obs::flush_trace();
    obs::disable_tracing();

    std::ifstream in(trace_path);
    ASSERT_TRUE(in.is_open()) << trace_path;
    std::stringstream content;
    content << in.rdbuf();
    const std::string json = content.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("serve.execute"), std::string::npos);
    EXPECT_NE(json.find("serve.compute"), std::string::npos);
    EXPECT_NE(json.find("part.fpm_partition"), std::string::npos);
    std::remove(trace_path.c_str());
}

TEST(ServeIntegration, ClientReportsRoundTripTime) {
    ModelRegistry registry;
    registry.put("hybrid", synthetic_models(2, 8, 1.0));
    RequestEngine engine(registry, {.workers = 2, .cache_capacity = 16});
    SocketServer server(engine);
    server.start();

    ServeClient client("127.0.0.1", server.port());
    EXPECT_EQ(client.last_rtt_seconds(), 0.0);  // nothing measured yet

    measure::WallTimer timer;
    client.ping();
    const double outer = timer.elapsed();
    const double ping_rtt = client.last_rtt_seconds();
    EXPECT_GT(ping_rtt, 0.0);
    // The start/stop hug the socket round trip, so the outer timer —
    // which also covers encode/decode — can only read larger.
    EXPECT_LE(ping_rtt, outer);

    // Server-side time is part of the measurement: a 30 ms delay
    // injected into the compute path puts a hard floor under the RTT.
    fault::install(fault::FaultPlan::parse("seed=1,serve.compute=1:delay:30"));
    (void)client.partition({"hybrid", 48, Algorithm::kFpm, true});
    fault::uninstall();
    EXPECT_GE(client.last_rtt_seconds(), 0.030);

    server.stop();
}

} // namespace
} // namespace fpm::serve

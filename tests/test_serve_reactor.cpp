// Tests for the serve reactor's connection lifecycle: request
// pipelining (many lines in flight per connection, responses strictly in
// request order, bit-for-bit equal to the direct library call under 64
// concurrent pipelined clients), slow-loris eviction by the idle-timeout
// timer wheel, max_connections admission control, graceful drain of
// in-flight requests on stop(), and the reactor fields surfaced through
// STATS.  The ServeReactorPool suite reruns the parity and admission
// workloads against a 4-reactor SO_REUSEPORT pool — replies must stay
// bit-for-bit identical at every reactor count, the max_connections
// budget must stay global, drain must complete on every reactor, and
// the STATS aggregation invariant (per-shard cache counters summing to
// the global ones) must hold.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "fpm/measure/timer.hpp"
#include "fpm/serve/client.hpp"
#include "fpm/serve/model_registry.hpp"
#include "fpm/serve/protocol.hpp"
#include "fpm/serve/reactor_metrics.hpp"
#include "fpm/serve/request_engine.hpp"
#include "fpm/serve/server.hpp"
#include "stress_harness.hpp"

namespace fpm::serve {
namespace {

using core::SpeedFunction;
using core::SpeedPoint;

/// Deterministic synthetic device set (same family as test_serve.cpp).
std::vector<SpeedFunction> synthetic_models(std::size_t devices,
                                            std::size_t points_per_model,
                                            double peak_scale) {
    std::vector<SpeedFunction> models;
    for (std::size_t d = 0; d < devices; ++d) {
        std::vector<SpeedPoint> points;
        const double peak = peak_scale * (40.0 + 17.0 * static_cast<double>(d));
        const double cliff = 900.0 + 400.0 * static_cast<double>(d);
        const double x_max = 6000.0;
        for (std::size_t p = 0; p < points_per_model; ++p) {
            const double x = 4.0 + (x_max - 4.0) * static_cast<double>(p) /
                                       static_cast<double>(points_per_model - 1);
            const double ramp = x / (x + 25.0);
            const double speed = (x < cliff ? peak : 0.45 * peak) * ramp;
            points.push_back(SpeedPoint{x, speed});
        }
        models.emplace_back(std::move(points),
                            "dev" + std::to_string(d) + "s" +
                                std::to_string(devices));
    }
    return models;
}

std::string partition_line(const std::string& model, std::int64_t n,
                           Algorithm algorithm) {
    Request request;
    request.kind = Request::Kind::kPartition;
    request.partition = PartitionRequest{model, n, algorithm, true};
    return request.encode();
}

// ---------------------------------------------------------------------------
// 64 concurrent pipelined clients, responses bit-for-bit vs the direct
// library call and strictly in request order — at any reactor count.
// ---------------------------------------------------------------------------
void pipelined_parity_against_direct(std::size_t num_reactors) {
    ModelRegistry registry;
    const auto alpha = registry.put("alpha", synthetic_models(4, 200, 1.0));
    const auto beta = registry.put("beta", synthetic_models(3, 200, 1.7));
    RequestEngine engine(registry, {.workers = 4, .cache_capacity = 256});
    ServeConfig config;
    config.num_reactors = num_reactors;
    SocketServer server(engine, config);
    server.start();
    ASSERT_EQ(server.num_reactors(), num_reactors);

    const ReactorMetrics& metrics = ReactorMetrics::get();
    const std::uint64_t pipelined_before = metrics.pipelined.value();

    constexpr std::size_t kClients = 64;
    constexpr std::size_t kRequestsPerClient = 8;
    const std::int64_t ns[] = {24, 30, 36, 42, 48, 54, 60, 66};
    const Algorithm algorithms[] = {Algorithm::kFpm, Algorithm::kCpm,
                                    Algorithm::kEven};

    // Every client pipelines its whole batch (plus QUIT) in one write.
    std::vector<std::vector<PartitionRequest>> requests(kClients);
    std::vector<std::vector<std::string>> replies(kClients);
    for (std::size_t i = 0; i < kClients; ++i) {
        for (std::size_t j = 0; j < kRequestsPerClient; ++j) {
            const std::size_t mix = i + j;
            requests[i].push_back(PartitionRequest{
                (mix % 2 == 0) ? "alpha" : "beta", ns[mix % 8],
                algorithms[mix % 3], true});
        }
    }

    fpm::test::run_concurrently(kClients, [&](std::size_t i) {
        ServeClient client("127.0.0.1", server.port());
        std::vector<std::string> lines;
        for (const auto& request : requests[i]) {
            lines.push_back(partition_line(request.model_set, request.n,
                                           request.algorithm));
        }
        lines.push_back("QUIT");
        replies[i] = client.pipeline(lines);
    });

    // Direct library answers, one per distinct (set, n, algorithm).
    std::map<std::tuple<std::string, std::int64_t, int>, PartitionPlan>
        direct;
    for (const auto& batch : requests) {
        for (const auto& request : batch) {
            const auto key = std::make_tuple(
                request.model_set, request.n,
                static_cast<int>(request.algorithm));
            if (direct.find(key) == direct.end()) {
                const auto& set =
                    request.model_set == "alpha" ? alpha : beta;
                direct.emplace(key,
                               RequestEngine::compute_plan(
                                   *set, request.n, request.algorithm, true));
            }
        }
    }

    for (std::size_t i = 0; i < kClients; ++i) {
        ASSERT_EQ(replies[i].size(), kRequestsPerClient + 1) << i;
        EXPECT_EQ(replies[i].back(), "OK BYE") << i;
        for (std::size_t j = 0; j < kRequestsPerClient; ++j) {
            const auto& request = requests[i][j];
            const PartitionReply reply =
                parse_partition_reply(replies[i][j]);
            const PartitionPlan& expected = direct.at(std::make_tuple(
                request.model_set, request.n,
                static_cast<int>(request.algorithm)));
            // In-order: the j-th reply answers the j-th request.
            EXPECT_EQ(reply.model, request.model_set) << i << "," << j;
            EXPECT_EQ(reply.n, request.n) << i << "," << j;
            EXPECT_EQ(reply.algorithm, request.algorithm) << i << "," << j;
            // Bit-for-bit vs the direct library call.
            EXPECT_EQ(reply.blocks, expected.blocks) << i << "," << j;
            EXPECT_EQ(reply.balanced_time, expected.balanced_time)
                << i << "," << j;
            EXPECT_EQ(reply.makespan, expected.makespan) << i << "," << j;
            EXPECT_EQ(reply.comm_cost, expected.comm_cost) << i << "," << j;
            ASSERT_EQ(reply.rects.size(), expected.layout.rects.size())
                << i << "," << j;
            for (std::size_t r = 0; r < reply.rects.size(); ++r) {
                EXPECT_EQ(reply.rects[r].col0, expected.layout.rects[r].col0);
                EXPECT_EQ(reply.rects[r].row0, expected.layout.rects[r].row0);
                EXPECT_EQ(reply.rects[r].w, expected.layout.rects[r].w);
                EXPECT_EQ(reply.rects[r].h, expected.layout.rects[r].h);
            }
        }
    }

    EXPECT_GE(server.connections_accepted(), kClients);
    // The batches genuinely pipelined: requests arrived while earlier
    // ones were still in flight.
    EXPECT_GT(metrics.pipelined.value(), pipelined_before);

    // The typed STATS surface reports the pool size while it runs.
    {
        ServeClient probe("127.0.0.1", server.port());
        const ServerStats stats = probe.stats();
        EXPECT_EQ(stats.reactors, num_reactors);
        EXPECT_GE(stats.requests, kClients * kRequestsPerClient);
    }

    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(ServeReactor, PipelinedClientsMatchDirectLibraryCalls) {
    pipelined_parity_against_direct(1);
}

TEST(ServeReactorPool, FourReactorsMatchDirectLibraryCallsBitForBit) {
    pipelined_parity_against_direct(4);
}

// ---------------------------------------------------------------------------
// Responses interleave inline commands and pool-computed partitions but
// always come back in request order on one connection.
// ---------------------------------------------------------------------------
TEST(ServeReactor, MixedPipelineKeepsRequestOrder) {
    ModelRegistry registry;
    registry.put("hybrid", synthetic_models(3, 64, 1.0));
    RequestEngine engine(registry, {.workers = 2, .cache_capacity = 32});
    SocketServer server(engine);
    server.start();

    ServeClient client("127.0.0.1", server.port());
    const std::vector<std::string> lines = {
        "PING",
        partition_line("hybrid", 32, Algorithm::kFpm),
        "BOGUS",
        partition_line("hybrid", 40, Algorithm::kCpm),
        "PING",
        "STATS",
    };
    const auto replies = client.pipeline(lines);
    ASSERT_EQ(replies.size(), lines.size());
    EXPECT_EQ(replies[0], "OK PONG v" + std::to_string(kProtocolVersion));
    EXPECT_EQ(parse_partition_reply(replies[1]).n, 32);
    EXPECT_EQ(replies[2].rfind("ERR ", 0), 0U) << replies[2];
    const PartitionReply second = parse_partition_reply(replies[3]);
    EXPECT_EQ(second.n, 40);
    EXPECT_EQ(second.algorithm, Algorithm::kCpm);
    EXPECT_EQ(replies[4], "OK PONG v" + std::to_string(kProtocolVersion));
    EXPECT_EQ(replies[5].rfind("OK STATS ", 0), 0U) << replies[5];

    // The reactor's lifecycle fields travel through STATS, fully typed:
    // every known field lands in ServerStats, nothing leaks to extras.
    const Response stats_response = Response::decode(replies[5]);
    ASSERT_EQ(stats_response.kind, Response::Kind::kStats);
    const ServerStats stats = ServerStats::from_fields(stats_response.stats);
    EXPECT_GE(stats.open_conns, 1);
    EXPECT_GE(stats.q2r_p50_us, 0.0);
    EXPECT_EQ(stats.reactors, 1U);
    EXPECT_EQ(stats.cache_shards, 1U);  // default single-stripe cache
    EXPECT_TRUE(stats.extras.empty()) << stats.extras.begin()->first;

    server.stop();
}

// ---------------------------------------------------------------------------
// Slow loris: a connection that trickles a partial line and then stalls
// is evicted by the timer wheel after idle_timeout.
// ---------------------------------------------------------------------------
TEST(ServeReactor, SlowLorisEvictedByIdleTimeout) {
    ModelRegistry registry;
    registry.put("hybrid", synthetic_models(2, 16, 1.0));
    RequestEngine engine(registry, {.workers = 1, .cache_capacity = 8});
    ServeConfig config;
    config.idle_timeout = 0.3;
    SocketServer server(engine, config);
    server.start();

    const ReactorMetrics& metrics = ReactorMetrics::get();
    const std::uint64_t evictions_before = metrics.idle_timeouts.value();

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    // A partial request line, then silence — never a newline.
    ASSERT_GT(::send(fd, "PARTIT", 6, MSG_NOSIGNAL), 0);

    const timeval tv{5, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    measure::WallTimer timer;
    char byte;
    const ssize_t n = ::recv(fd, &byte, 1, 0);  // blocks until eviction
    const double waited = timer.elapsed();
    EXPECT_EQ(n, 0) << "expected EOF from the server, got errno="
                    << std::strerror(errno);
    EXPECT_LT(waited, 3.0) << "eviction took too long";
    EXPECT_GT(metrics.idle_timeouts.value(), evictions_before);
    ::close(fd);

    // A live client is unaffected as long as it keeps talking.
    ServeClient client("127.0.0.1", server.port());
    client.ping();
    server.stop();
}

// ---------------------------------------------------------------------------
// Admission control: connections beyond max_connections get a typed
// `ERR busy` and are closed; admitted ones keep working.  The budget is
// global — with a reactor pool, the kernel may spread the connections
// over different reactors and the cap must still hold pool-wide.
// ---------------------------------------------------------------------------
void admission_budget_is_enforced(std::size_t num_reactors) {
    ModelRegistry registry;
    registry.put("hybrid", synthetic_models(2, 16, 1.0));
    RequestEngine engine(registry, {.workers = 1, .cache_capacity = 8});
    ServeConfig config;
    config.max_connections = 2;
    config.num_reactors = num_reactors;
    SocketServer server(engine, config);
    server.start();

    const ReactorMetrics& metrics = ReactorMetrics::get();
    const std::uint64_t rejected_before = metrics.rejected.value();

    ServeClient first("127.0.0.1", server.port());
    ServeClient second("127.0.0.1", server.port());
    first.ping();   // round trips guarantee both connections are
    second.ping();  // registered before the third arrives

    const std::size_t accepted_before = server.connections_accepted();
    ServeClient third("127.0.0.1", server.port());
    EXPECT_EQ(third.request("PING"), "ERR busy");
    EXPECT_THROW((void)third.request("PING"), fpm::Error);  // closed

    EXPECT_EQ(metrics.rejected.value(), rejected_before + 1);
    // Rejects are not accepts.
    EXPECT_EQ(server.connections_accepted(), accepted_before);
    EXPECT_EQ(server.open_connections(), 2U);

    // The admitted connections still work, and a freed slot is reusable.
    first.ping();
    EXPECT_EQ(second.request("QUIT"), "OK BYE");
    for (int attempt = 0;; ++attempt) {
        // The server notices second's hangup asynchronously.
        ServeClient retry("127.0.0.1", server.port());
        try {
            retry.ping();
            break;
        } catch (const fpm::Error&) {
            ASSERT_LT(attempt, 100) << "slot never freed";
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
    }
    server.stop();
}

TEST(ServeReactor, MaxConnectionsRejectsWithBusy) {
    admission_budget_is_enforced(1);
}

TEST(ServeReactorPool, MaxConnectionsBudgetIsGlobalAcrossReactors) {
    admission_budget_is_enforced(4);
}

// ---------------------------------------------------------------------------
// Graceful drain: stop() lets an in-flight partition finish and flushes
// its response before closing the connection.
// ---------------------------------------------------------------------------
TEST(ServeReactor, GracefulDrainCompletesInFlightRequests) {
    ModelRegistry registry;
    // Expensive enough that stop() lands mid-compute.
    registry.put("big", synthetic_models(6, 600, 1.0));
    RequestEngine engine(registry, {.workers = 2, .cache_capacity = 8});
    SocketServer server(engine);
    server.start();

    const std::uint64_t requests_before = engine.stats().requests;
    std::string reply_line;
    std::thread client_thread([&]() {
        ServeClient client("127.0.0.1", server.port());
        client.send_lines({partition_line("big", 64, Algorithm::kFpm)});
        reply_line = client.read_replies(1)[0];
    });

    // Wait until the request is genuinely in flight on the engine.
    for (int i = 0; i < 500 && engine.stats().requests == requests_before;
         ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_GT(engine.stats().requests, requests_before)
        << "request never reached the engine";

    server.stop();  // drain: must flush the in-flight response first
    client_thread.join();

    const PartitionReply reply = parse_partition_reply(reply_line);
    EXPECT_EQ(reply.model, "big");
    EXPECT_EQ(reply.n, 64);
    EXPECT_FALSE(server.running());
    EXPECT_EQ(server.open_connections(), 0U);
}

// ---------------------------------------------------------------------------
// A dead peer mid-write is counted, not swallowed: the reactor's send
// path closes the connection and bumps serve.reactor.send_failures (or
// the peer's hangup is seen first and the connection is reaped — either
// way the reactor survives and the connection goes away).
// ---------------------------------------------------------------------------
TEST(ServeReactor, PeerHangupDoesNotWedgeTheReactor) {
    ModelRegistry registry;
    registry.put("big", synthetic_models(6, 600, 1.0));
    RequestEngine engine(registry, {.workers = 2, .cache_capacity = 8});
    SocketServer server(engine);
    server.start();

    {
        // Submit a slow partition, then vanish before the reply.
        ServeClient client("127.0.0.1", server.port());
        client.send_lines({partition_line("big", 72, Algorithm::kFpm)});
    }  // destructor closes the socket with the request still computing

    // The reactor must reap the connection and keep serving.
    for (int attempt = 0; server.open_connections() > 0 && attempt < 500;
         ++attempt) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(server.open_connections(), 0U);
    ServeClient survivor("127.0.0.1", server.port());
    survivor.ping();
    server.stop();
}

// ---------------------------------------------------------------------------
// Graceful drain under load across the pool: with requests in flight on
// several connections (the kernel spreads them over the reactors),
// stop() must flush every response before any connection closes.
// ---------------------------------------------------------------------------
TEST(ServeReactorPool, GracefulDrainCompletesInFlightOnEveryReactor) {
    ModelRegistry registry;
    registry.put("big", synthetic_models(6, 600, 1.0));
    RequestEngine engine(registry, {.workers = 4, .cache_capacity = 32});
    ServeConfig config;
    config.num_reactors = 4;
    SocketServer server(engine, config);
    server.start();

    constexpr std::size_t kClients = 8;
    const std::uint64_t requests_before = engine.stats().requests;
    std::vector<std::string> reply_lines(kClients);
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i]() {
            ServeClient client("127.0.0.1", server.port());
            // Distinct n per client: no coalescing, every request is its
            // own in-flight computation when stop() lands.
            client.send_lines({partition_line(
                "big", 48 + 8 * static_cast<std::int64_t>(i),
                Algorithm::kFpm)});
            reply_lines[i] = client.read_replies(1)[0];
        });
    }

    // Wait until every request is genuinely in flight on the engine.
    for (int i = 0;
         i < 1000 && engine.stats().requests < requests_before + kClients;
         ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_GE(engine.stats().requests, requests_before + kClients)
        << "requests never reached the engine";

    server.stop();  // must drain all reactors, not just one
    for (auto& thread : clients) {
        thread.join();
    }

    for (std::size_t i = 0; i < kClients; ++i) {
        const PartitionReply reply = parse_partition_reply(reply_lines[i]);
        EXPECT_EQ(reply.model, "big") << i;
        EXPECT_EQ(reply.n, 48 + 8 * static_cast<std::int64_t>(i)) << i;
    }
    EXPECT_FALSE(server.running());
    EXPECT_EQ(server.open_connections(), 0U);
}

// ---------------------------------------------------------------------------
// STATS aggregation invariants: the per-shard cache counters sum
// field-wise to the global ones, and the typed STATS reply reports the
// pool size and stripe count the server was configured with.
// ---------------------------------------------------------------------------
TEST(ServeReactorPool, StatsAggregationSumsShardsToGlobalCounters) {
    // Striping is keyed on the model-set fingerprint (all plans of one
    // set share a stripe so invalidation stays single-shard), so several
    // sets are needed to populate several stripes.
    ModelRegistry registry;
    const std::vector<std::string> sets = {"s0", "s1", "s2", "s3", "s4",
                                           "s5", "s6", "s7"};
    for (std::size_t i = 0; i < sets.size(); ++i) {
        registry.put(sets[i], synthetic_models(3, 64, 1.0 + 0.1 *
                                                          static_cast<double>(i)));
    }
    RequestEngine engine(registry, {.workers = 2,
                                    .cache_capacity = 64,
                                    .cache_shards = 4});
    ServeConfig config;
    config.num_reactors = 4;
    SocketServer server(engine, config);
    server.start();

    // Two passes over distinct requests: first misses, second hits,
    // spread over the stripes by the model-set fingerprints.
    ServeClient client("127.0.0.1", server.port());
    for (int pass = 0; pass < 2; ++pass) {
        std::vector<std::string> lines;
        for (const auto& set : sets) {
            for (std::int64_t n = 24; n <= 32; n += 4) {
                lines.push_back(partition_line(set, n, Algorithm::kFpm));
            }
        }
        const auto replies = client.pipeline(lines);
        for (const auto& reply : replies) {
            EXPECT_EQ(reply.rfind("OK PARTITION ", 0), 0U) << reply;
        }
    }

    const EngineStats engine_stats = engine.stats();
    ASSERT_EQ(engine_stats.cache_shards, 4U);
    ASSERT_EQ(engine_stats.cache_by_shard.size(), 4U);
    CacheStats sum;
    for (const CacheStats& shard : engine_stats.cache_by_shard) {
        sum.hits += shard.hits;
        sum.misses += shard.misses;
        sum.evictions += shard.evictions;
        sum.size += shard.size;
    }
    EXPECT_EQ(sum.hits, engine_stats.cache.hits);
    EXPECT_EQ(sum.misses, engine_stats.cache.misses);
    EXPECT_EQ(sum.evictions, engine_stats.cache.evictions);
    EXPECT_EQ(sum.size, engine_stats.cache.size);
    EXPECT_GT(engine_stats.cache.hits, 0U);    // second pass hit
    EXPECT_GT(engine_stats.cache.misses, 0U);  // first pass missed
    // 8 distinct set fingerprints over 4 stripes: more than one used.
    std::size_t populated = 0;
    for (const CacheStats& shard : engine_stats.cache_by_shard) {
        populated += shard.size > 0 ? 1 : 0;
    }
    EXPECT_GE(populated, 2U);

    // The same invariants through the wire, typed.
    const ServerStats stats = client.stats();
    EXPECT_EQ(stats.reactors, 4U);
    EXPECT_EQ(stats.cache_shards, 4U);
    EXPECT_EQ(stats.hits, engine_stats.cache.hits);
    EXPECT_EQ(stats.misses, engine_stats.cache.misses);
    EXPECT_EQ(stats.cache_size, engine_stats.cache.size);
    EXPECT_TRUE(stats.extras.empty()) << stats.extras.begin()->first;

    server.stop();
}

} // namespace
} // namespace fpm::serve

// Tests for the simulated CPU socket model and node-level CPU coupling.
#include <gtest/gtest.h>

#include "fpm/common/math.hpp"
#include "fpm/sim/cpu_model.hpp"
#include "fpm/sim/node.hpp"

namespace fpm::sim {
namespace {

SocketModel ig_socket(Precision precision = Precision::kSingle) {
    return SocketModel(ig_platform().sockets[0], precision, 640);
}

TEST(SocketModel, RejectsBadArguments) {
    const SocketModel model = ig_socket();
    EXPECT_THROW(model.core_rate(0.0, 1), fpm::Error);
    EXPECT_THROW(model.core_rate(10.0, 0), fpm::Error);
    EXPECT_THROW(model.core_rate(10.0, 7), fpm::Error);  // socket has 6 cores
    EXPECT_THROW(SocketModel(SocketSpec{}, Precision::kSingle, 0), fpm::Error);
}

TEST(SocketModel, PerCoreRateDecreasesWithActiveCores) {
    const SocketModel model = ig_socket();
    double previous = model.core_rate(100.0, 1);
    for (unsigned c = 2; c <= 6; ++c) {
        const double rate = model.core_rate(100.0, c);
        EXPECT_LT(rate, previous) << "cores=" << c;
        previous = rate;
    }
}

TEST(SocketModel, SocketRateIncreasesWithActiveCores) {
    // More cores = more total speed, even though each core slows (the
    // paper: maximum socket performance with all cores busy).
    const SocketModel model = ig_socket();
    double previous = 0.0;
    for (unsigned c = 1; c <= 6; ++c) {
        const double rate = model.socket_rate(600.0, c);
        EXPECT_GT(rate, previous) << "cores=" << c;
        previous = rate;
    }
}

TEST(SocketModel, SubLinearScaling) {
    const SocketModel model = ig_socket();
    const double one = model.socket_rate(100.0, 1);
    const double six = model.socket_rate(600.0, 6);
    EXPECT_LT(six, 6.0 * one);
    EXPECT_GT(six, 4.0 * one);
}

TEST(SocketModel, SmallProblemRamp) {
    const SocketModel model = ig_socket();
    // Tiny problems run below half the plateau rate per core.
    EXPECT_LT(model.core_rate(0.5, 1), 0.5 * model.core_rate(500.0, 1));
}

TEST(SocketModel, SixCoreSocketLandsInPaperBand) {
    // Fig. 2 band: roughly 60-120 GFlops for s5/s6 in single precision.
    const SocketModel model = ig_socket();
    for (double x : {300.0, 600.0, 900.0, 1200.0}) {
        const double s6 = model.socket_rate(x, 6) / 1e9;
        const double s5 = model.socket_rate(x / 6.0 * 5.0, 5) / 1e9;
        EXPECT_GT(s6, 60.0);
        EXPECT_LT(s6, 120.0);
        EXPECT_GT(s6, s5);
    }
}

TEST(SocketModel, DoublePrecisionHalvesRate) {
    const SocketModel sp = ig_socket(Precision::kSingle);
    const SocketModel dp = ig_socket(Precision::kDouble);
    EXPECT_NEAR(dp.socket_rate(600.0, 6) / sp.socket_rate(600.0, 6), 0.5, 1e-9);
}

TEST(SocketModel, KernelTimeConsistentWithRate) {
    const SocketModel model = ig_socket();
    const double x = 300.0;
    const double t = model.kernel_time(x, 6);
    const double flops = gemm_update_flops(x, 640.0);
    EXPECT_NEAR(t, flops / model.socket_rate(x, 6), 1e-12);
}

TEST(SocketModel, KernelTimeMonotoneInProblemSize) {
    const SocketModel model = ig_socket();
    double previous = 0.0;
    for (double x = 10.0; x <= 2000.0; x *= 1.3) {
        const double t = model.kernel_time(x, 6);
        EXPECT_GT(t, previous);
        previous = t;
    }
}

TEST(HybridNode, CpuContentionFromCoactiveGpu) {
    const HybridNode node(ig_platform(), {});
    const double alone = node.cpu_kernel_time(0, 5, 300.0, false);
    const double shared = node.cpu_kernel_time(0, 5, 300.0, true);
    // CPU is "not so much affected": slower, but by less than 5 %.
    EXPECT_GT(shared, alone);
    EXPECT_LT(shared / alone, 1.05);
}

TEST(HybridNode, MeasurementNoiseIsDeterministicPerSeed) {
    HybridNode a(ig_platform(), {.noise_sigma = 0.05, .noise_seed = 99});
    HybridNode b(ig_platform(), {.noise_sigma = 0.05, .noise_seed = 99});
    for (int i = 0; i < 5; ++i) {
        EXPECT_DOUBLE_EQ(a.measure_cpu_kernel(0, 6, 100.0),
                         b.measure_cpu_kernel(0, 6, 100.0));
    }
}

TEST(HybridNode, NoiseAveragesToExactTime) {
    HybridNode node(ig_platform(), {.noise_sigma = 0.03});
    const double exact = node.cpu_kernel_time(1, 6, 200.0);
    double sum = 0.0;
    const int reps = 400;
    for (int i = 0; i < reps; ++i) {
        sum += node.measure_cpu_kernel(1, 6, 200.0);
    }
    EXPECT_NEAR(sum / reps / exact, 1.0, 0.02);
}

TEST(HybridNode, ZeroNoiseMeasurementsAreExact) {
    HybridNode node(ig_platform(), {});
    EXPECT_DOUBLE_EQ(node.measure_cpu_kernel(0, 6, 100.0),
                     node.cpu_kernel_time(0, 6, 100.0));
}

TEST(NodeSpec, ValidationCatchesBadGpuAttachment) {
    NodeSpec spec = ig_platform();
    spec.gpus[0].socket_index = 9;
    EXPECT_THROW(HybridNode(spec, {}), fpm::Error);
}

TEST(NodeSpec, IgPlatformMatchesTableI) {
    const NodeSpec spec = ig_platform();
    ASSERT_EQ(spec.sockets.size(), 4U);
    EXPECT_EQ(spec.total_cores(), 24U);
    ASSERT_EQ(spec.gpus.size(), 2U);
    EXPECT_EQ(spec.gpus[1].gpu.name, "GeForce GTX680");
    EXPECT_EQ(spec.gpus[0].gpu.name, "Tesla C870");
    EXPECT_DOUBLE_EQ(spec.gpus[1].gpu.device_memory_mib, 2048.0);
    EXPECT_DOUBLE_EQ(spec.gpus[0].gpu.device_memory_mib, 1536.0);
    EXPECT_EQ(spec.gpus[1].gpu.dma_engines, 2U);
    EXPECT_EQ(spec.gpus[0].gpu.dma_engines, 1U);
}

} // namespace
} // namespace fpm::sim

// Tests for the column-based 2-D partitioning: exact cover, area fidelity,
// communication-cost optimality of the DP, and degenerate inputs.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "fpm/common/rng.hpp"
#include "fpm/part/column2d.hpp"

namespace fpm::part {
namespace {

std::vector<std::int64_t> random_areas(std::int64_t n, std::size_t devices,
                                       std::uint64_t seed) {
    // Random positive weights normalised to n*n with largest remainder.
    fpm::Rng rng(seed);
    std::vector<double> weights(devices);
    for (auto& w : weights) {
        w = rng.uniform(0.2, 5.0);
    }
    const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
    std::vector<std::int64_t> areas(devices, 0);
    std::int64_t assigned = 0;
    for (std::size_t i = 0; i + 1 < devices; ++i) {
        areas[i] = static_cast<std::int64_t>(weights[i] / sum *
                                             static_cast<double>(n * n));
        assigned += areas[i];
    }
    areas[devices - 1] = n * n - assigned;
    return areas;
}

TEST(Column2D, SingleDeviceGetsWholeMatrix) {
    const std::vector<std::int64_t> areas = {100};
    const ColumnLayout layout = column_partition(10, areas);
    EXPECT_EQ(layout.rects[0].w, 10);
    EXPECT_EQ(layout.rects[0].h, 10);
    EXPECT_EQ(layout.comm_cost(), 20);
    EXPECT_EQ(layout.columns.size(), 1U);
}

TEST(Column2D, EqualDevicesFormSquarishGrid) {
    // 4 equal devices on a 10x10 matrix: 2 columns of 2 beats 1 column of
    // 4 and 4 columns of 1 (cost 2*(5+5)*2 = 40 vs 4*(10+2.5) wide/flat).
    const std::vector<std::int64_t> areas = {25, 25, 25, 25};
    const ColumnLayout layout = column_partition(10, areas);
    EXPECT_EQ(layout.columns.size(), 2U);
    EXPECT_EQ(layout.comm_cost(), 40);
    for (const auto& rect : layout.rects) {
        EXPECT_EQ(rect.w, 5);
        EXPECT_EQ(rect.h, 5);
    }
}

TEST(Column2D, ZeroAreaDevicesGetEmptyRects) {
    const std::vector<std::int64_t> areas = {0, 100, 0};
    const ColumnLayout layout = column_partition(10, areas);
    EXPECT_EQ(layout.rects[0].area(), 0);
    EXPECT_EQ(layout.rects[2].area(), 0);
    EXPECT_EQ(layout.rects[1].area(), 100);
}

TEST(Column2D, Validation) {
    EXPECT_THROW(column_partition(0, std::vector<std::int64_t>{1}), fpm::Error);
    EXPECT_THROW(column_partition(10, std::vector<std::int64_t>{}), fpm::Error);
    EXPECT_THROW(column_partition(10, std::vector<std::int64_t>{50, 49}),
                 fpm::Error);  // sums to 99, not 100
    EXPECT_THROW(column_partition(10, std::vector<std::int64_t>{101, -1}),
                 fpm::Error);
}

TEST(Column2D, AreasCloseToRequested) {
    const std::int64_t n = 60;
    const auto areas = random_areas(n, 6, 42);
    const ColumnLayout layout = column_partition(n, areas);
    const auto actual = layout.actual_areas();
    for (std::size_t i = 0; i < areas.size(); ++i) {
        // Rounding to whole rows/columns perturbs each device's area by at
        // most about one row plus one column of its rectangle.
        const double slack =
            static_cast<double>(layout.rects[i].w + layout.rects[i].h + 2);
        EXPECT_NEAR(static_cast<double>(actual[i]),
                    static_cast<double>(areas[i]), slack)
            << "device " << i;
    }
}

TEST(Column2D, CommCostNotWorseThanSingleColumn) {
    // The DP explores the single-column arrangement, so its result can
    // never cost more.
    const std::int64_t n = 40;
    const auto areas = random_areas(n, 5, 7);
    const ColumnLayout layout = column_partition(n, areas);

    std::int64_t single_column_cost = 0;
    for (const auto area : areas) {
        if (area > 0) {
            // Width n, height area/n.
            single_column_cost +=
                n + (area + n - 1) / n;
        }
    }
    EXPECT_LE(layout.comm_cost(), single_column_cost + 5);
}

TEST(Column2D, MatchesPaperScaleDeviceCounts) {
    // A hybrid-node-like split: 2 GPUs with big shares + 4 sockets.
    const std::int64_t n = 60;
    std::vector<std::int64_t> areas = {1627, 657, 295, 295, 342, 342};
    const std::int64_t sum =
        std::accumulate(areas.begin(), areas.end(), std::int64_t{0});
    areas[0] += n * n - sum;  // absorb rounding into the big device
    const ColumnLayout layout = column_partition(n, areas);
    layout.validate();
    // The largest device must get the squarest rectangle: aspect within 3x.
    const Rect big = layout.rects[0];
    const double aspect = static_cast<double>(std::max(big.w, big.h)) /
                          static_cast<double>(std::min(big.w, big.h));
    EXPECT_LT(aspect, 3.0);
}

// Parameterized exact-cover sweep.
using LayoutParam = std::tuple<int, int, std::uint64_t>;

class ColumnSweep : public ::testing::TestWithParam<LayoutParam> {};

TEST_P(ColumnSweep, ExactCoverAndConsistency) {
    const auto [n, devices, seed] = GetParam();
    const auto areas = random_areas(n, devices, seed);
    const ColumnLayout layout = column_partition(n, areas);

    // validate() checks cover + disjointness; must not throw.
    EXPECT_NO_THROW(layout.validate());

    // Column bookkeeping consistent with rectangles.
    std::int64_t width_sum = 0;
    for (std::size_t c = 0; c < layout.columns.size(); ++c) {
        width_sum += layout.column_widths[c];
        std::int64_t height_sum = 0;
        for (const std::size_t device : layout.columns[c]) {
            EXPECT_EQ(layout.rects[device].w, layout.column_widths[c]);
            height_sum += layout.rects[device].h;
        }
        EXPECT_EQ(height_sum, n);
    }
    EXPECT_EQ(width_sum, n);

    // Total area conserved.
    const auto actual = layout.actual_areas();
    EXPECT_EQ(std::accumulate(actual.begin(), actual.end(), std::int64_t{0}),
              static_cast<std::int64_t>(n) * n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ColumnSweep,
    ::testing::Combine(::testing::Values(4, 10, 40, 64),
                       ::testing::Values(1, 2, 3, 6, 8),
                       ::testing::Values(1U, 2U, 3U)));

TEST(Column2D, ManyEqualTinyDevices) {
    // p = n devices of one row each: must still cover exactly.
    const std::int64_t n = 8;
    std::vector<std::int64_t> areas(8, 8);
    const ColumnLayout layout = column_partition(n, areas);
    layout.validate();
}

TEST(Column2D, DeviceCountBeyondRowsStillFeasibleViaColumns) {
    // 12 devices on an 8x8 matrix: no single column can host them all,
    // but multiple columns can.
    const std::int64_t n = 8;
    std::vector<std::int64_t> areas(12, 5);
    areas[0] += 64 - 60;
    const ColumnLayout layout = column_partition(n, areas);
    layout.validate();
    EXPECT_GE(layout.columns.size(), 2U);
}

} // namespace
} // namespace fpm::part

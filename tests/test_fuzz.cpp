// Seeded fuzz/property tests across the partitioning stack: randomly
// generated device populations and workloads must uphold the library's
// invariants, and the column-layout DP must match an exhaustive oracle on
// small instances.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "fpm/common/rng.hpp"
#include "fpm/part/column2d.hpp"
#include "fpm/part/fpm_partitioner.hpp"
#include "fpm/part/integer.hpp"

namespace fpm::part {
namespace {

using core::SpeedFunction;
using core::SpeedPoint;

/// A random plausible speed function: ramp to a peak, optional cliff,
/// optional capacity bound.
SpeedFunction random_model(Rng& rng, std::string name) {
    const double peak = rng.uniform(5.0, 500.0);
    const double ramp_half = rng.uniform(0.5, 20.0);
    const bool has_cliff = rng.uniform() < 0.4;
    const double cliff_at = rng.uniform(50.0, 2000.0);
    const double cliff_keep = rng.uniform(0.2, 0.7);
    const bool bounded = rng.uniform() < 0.2;
    const double bound = rng.uniform(500.0, 4000.0);

    std::vector<SpeedPoint> points;
    for (double x = 2.0; x <= 4000.0; x *= 1.6) {
        if (bounded && x > bound) {
            break;
        }
        double speed = peak * x / (x + ramp_half);
        if (has_cliff && x > cliff_at) {
            speed *= cliff_keep;
        }
        points.push_back(SpeedPoint{x, speed});
    }
    if (points.size() < 2) {
        points = {SpeedPoint{1.0, peak}, SpeedPoint{2.0, peak}};
    }
    return SpeedFunction(std::move(points), std::move(name),
                         bounded ? bound
                                 : std::numeric_limits<double>::infinity());
}

TEST(FuzzPartition, InvariantsHoldAcrossRandomPopulations) {
    Rng rng(20120924);  // CLUSTER 2012 conference date
    for (int trial = 0; trial < 60; ++trial) {
        const std::size_t devices = 1 + rng.uniform_int(0, 7);
        std::vector<SpeedFunction> models;
        double capacity = 0.0;
        for (std::size_t i = 0; i < devices; ++i) {
            models.push_back(random_model(rng, "d" + std::to_string(i)));
            capacity += models.back().max_problem();
            if (std::isinf(capacity)) {
                capacity = std::numeric_limits<double>::infinity();
            }
        }
        const double total =
            std::min(rng.uniform(1.0, 6000.0),
                     std::isinf(capacity) ? 6000.0 : 0.95 * capacity);

        const auto result = partition_fpm(models, total);
        // Conservation.
        ASSERT_NEAR(result.partition.total(), total, 1e-5 * total)
            << "trial " << trial;
        for (std::size_t i = 0; i < devices; ++i) {
            // Non-negativity and capacity.
            ASSERT_GE(result.partition.share[i], 0.0) << "trial " << trial;
            ASSERT_LE(result.partition.share[i],
                      models[i].max_problem() * (1.0 + 1e-9))
                << "trial " << trial;
        }
        // The true makespan never exceeds the balanced-time estimate by
        // much (monotone-envelope slack only).
        const double span = makespan(models, result.partition.share);
        ASSERT_LE(span, result.balanced_time * 1.25 + 1e-9)
            << "trial " << trial;
    }
}

TEST(FuzzPartition, IntegerRoundingPreservesEverything) {
    Rng rng(777);
    for (int trial = 0; trial < 60; ++trial) {
        const std::size_t devices = 1 + rng.uniform_int(0, 5);
        std::vector<SpeedFunction> models;
        for (std::size_t i = 0; i < devices; ++i) {
            models.push_back(random_model(rng, "d" + std::to_string(i)));
        }
        double capacity = 0.0;
        for (const auto& model : models) {
            capacity += model.max_problem();
            if (std::isinf(capacity)) {
                capacity = std::numeric_limits<double>::infinity();
                break;
            }
        }
        const auto total = static_cast<std::int64_t>(
            std::min(rng.uniform(1.0, 3000.0),
                     std::isinf(capacity) ? 3000.0 : 0.9 * capacity));
        if (total < 1) {
            continue;
        }
        const auto continuous = partition_fpm(models, static_cast<double>(total));
        const auto blocks = round_partition(continuous.partition, total, models);
        ASSERT_EQ(blocks.total(), total) << "trial " << trial;
        for (std::size_t i = 0; i < devices; ++i) {
            ASSERT_GE(blocks.blocks[i], 0);
            ASSERT_LE(static_cast<double>(blocks.blocks[i]),
                      models[i].max_problem() + 1e-9);
        }
    }
}

/// Exhaustive oracle for the column-layout DP: minimal continuous
/// half-perimeter cost over ALL contiguous compositions of the sorted
/// devices into columns.
double brute_force_column_cost(const std::vector<double>& sorted_areas,
                               double n) {
    const std::size_t m = sorted_areas.size();
    double best = std::numeric_limits<double>::infinity();
    // Enumerate compositions via bitmask of cut positions.
    const std::size_t masks = 1U << (m - 1);
    for (std::size_t mask = 0; mask < masks; ++mask) {
        double cost = 0.0;
        std::size_t begin = 0;
        bool feasible = true;
        for (std::size_t i = 0; i <= m - 1; ++i) {
            const bool cut = (i == m - 1) || ((mask >> i) & 1U);
            if (!cut) {
                continue;
            }
            const std::size_t end = i + 1;
            const std::size_t count = end - begin;
            if (static_cast<double>(count) > n) {
                feasible = false;
                break;
            }
            double area = 0.0;
            for (std::size_t k = begin; k < end; ++k) {
                area += sorted_areas[k];
            }
            cost += static_cast<double>(count) * area / n + n;
            begin = end;
        }
        if (feasible) {
            best = std::min(best, cost);
        }
    }
    return best;
}

TEST(FuzzColumn2D, DpMatchesExhaustiveOracle) {
    Rng rng(424242);
    for (int trial = 0; trial < 40; ++trial) {
        const std::int64_t n = 4 + rng.uniform_int(0, 8);
        const std::size_t devices = 2 + rng.uniform_int(0, 3);

        // Random positive areas summing to n*n.
        std::vector<std::int64_t> areas(devices, 1);
        std::int64_t remaining = n * n - static_cast<std::int64_t>(devices);
        for (std::size_t i = 0; i + 1 < devices && remaining > 0; ++i) {
            const std::int64_t take = rng.uniform_int(0, remaining);
            areas[i] += take;
            remaining -= take;
        }
        areas[devices - 1] += remaining;

        const ColumnLayout layout = column_partition(n, areas);
        layout.validate();

        // The DP's *continuous* cost must equal the oracle; reconstruct it
        // from the column structure (continuous widths).
        std::vector<double> sorted_areas;
        for (const auto area : areas) {
            sorted_areas.push_back(static_cast<double>(area));
        }
        std::sort(sorted_areas.rbegin(), sorted_areas.rend());
        const double oracle =
            brute_force_column_cost(sorted_areas, static_cast<double>(n));

        double dp_cost = 0.0;
        for (std::size_t c = 0; c < layout.columns.size(); ++c) {
            double column_area = 0.0;
            for (const std::size_t device : layout.columns[c]) {
                column_area += static_cast<double>(areas[device]);
            }
            dp_cost += static_cast<double>(layout.columns[c].size()) *
                           column_area / static_cast<double>(n) +
                       static_cast<double>(n);
        }
        ASSERT_NEAR(dp_cost, oracle, 1e-6 * oracle)
            << "trial " << trial << " n=" << n << " devices=" << devices;
    }
}

TEST(FuzzColumn2D, IntegerCostTracksContinuousCost) {
    // The integerised half-perimeter sum stays within a small additive
    // margin of the continuous DP cost (rounding shifts each rectangle by
    // at most one row/column).
    Rng rng(99);
    for (int trial = 0; trial < 30; ++trial) {
        const std::int64_t n = 10 + rng.uniform_int(0, 50);
        const std::size_t devices = 2 + rng.uniform_int(0, 6);
        std::vector<std::int64_t> areas(devices, 1);
        std::int64_t remaining = n * n - static_cast<std::int64_t>(devices);
        for (std::size_t i = 0; i + 1 < devices && remaining > 0; ++i) {
            const std::int64_t take = rng.uniform_int(0, remaining);
            areas[i] += take;
            remaining -= take;
        }
        areas[devices - 1] += remaining;

        const ColumnLayout layout = column_partition(n, areas);
        double continuous_cost = 0.0;
        for (std::size_t c = 0; c < layout.columns.size(); ++c) {
            double column_area = 0.0;
            for (const std::size_t device : layout.columns[c]) {
                column_area += static_cast<double>(areas[device]);
            }
            continuous_cost += static_cast<double>(layout.columns[c].size()) *
                                   column_area / static_cast<double>(n) +
                               static_cast<double>(n);
        }
        ASSERT_LE(static_cast<double>(layout.comm_cost()),
                  continuous_cost + 2.0 * static_cast<double>(devices))
            << "trial " << trial;
    }
}

} // namespace
} // namespace fpm::part

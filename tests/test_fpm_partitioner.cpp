// Tests for the FPM-based geometric partitioner (Lastovetsky & Reddy):
// conservation, balance, optimality against brute force, capacity limits
// and degenerate inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "fpm/core/speed_function.hpp"
#include "fpm/part/fpm_partitioner.hpp"
#include "fpm/part/integer.hpp"

namespace fpm::part {
namespace {

using core::SpeedFunction;
using core::SpeedPoint;

std::vector<SpeedFunction> two_constant_devices() {
    return {SpeedFunction::constant(10.0, "slow"),
            SpeedFunction::constant(30.0, "fast")};
}

TEST(FpmPartitioner, ConstantSpeedsReduceToProportional) {
    const auto models = two_constant_devices();
    const auto result = partition_fpm(models, 400.0);
    EXPECT_NEAR(result.partition.share[0], 100.0, 1e-6);
    EXPECT_NEAR(result.partition.share[1], 300.0, 1e-6);
    EXPECT_NEAR(result.balanced_time, 10.0, 1e-6);
}

TEST(FpmPartitioner, SharesSumToTotal) {
    const std::vector<SpeedFunction> models = {
        SpeedFunction({{10.0, 5.0}, {100.0, 20.0}, {500.0, 18.0}}, "a"),
        SpeedFunction({{10.0, 50.0}, {300.0, 80.0}}, "b"),
        SpeedFunction::constant(7.0, "c"),
    };
    for (double total : {1.0, 57.0, 333.3, 4096.0}) {
        const auto result = partition_fpm(models, total);
        EXPECT_NEAR(result.partition.total(), total, 1e-6 * total)
            << "total=" << total;
        for (const double share : result.partition.share) {
            EXPECT_GE(share, 0.0);
        }
    }
}

TEST(FpmPartitioner, EqualisesExecutionTimes) {
    const std::vector<SpeedFunction> models = {
        SpeedFunction({{10.0, 5.0}, {100.0, 20.0}, {500.0, 25.0}}, "a"),
        SpeedFunction({{10.0, 40.0}, {400.0, 90.0}}, "b"),
    };
    const auto result = partition_fpm(models, 600.0);
    const double t0 = models[0].time(result.partition.share[0]);
    const double t1 = models[1].time(result.partition.share[1]);
    EXPECT_NEAR(t0, t1, 0.05 * std::max(t0, t1));
    EXPECT_NEAR(result.balanced_time, std::max(t0, t1),
                0.05 * std::max(t0, t1));
}

TEST(FpmPartitioner, NearOptimalAgainstBruteForce) {
    // Discretised exhaustive search over all splits of 200 blocks between
    // two non-trivial devices; the geometric solution's makespan must be
    // within a hair of the discrete optimum.
    const std::vector<SpeedFunction> models = {
        SpeedFunction({{5.0, 8.0}, {50.0, 30.0}, {200.0, 26.0}}, "cpu"),
        SpeedFunction({{5.0, 60.0}, {80.0, 90.0}, {120.0, 40.0}}, "gpu"),
    };
    const std::int64_t total = 200;

    double best = 1e300;
    for (std::int64_t x = 0; x <= total; ++x) {
        const std::vector<double> shares = {static_cast<double>(x),
                                            static_cast<double>(total - x)};
        best = std::min(best, makespan(models, shares));
    }

    const auto result = partition_fpm(models, static_cast<double>(total));
    const double achieved = makespan(models, result.partition.share);
    EXPECT_LE(achieved, best * 1.02);
}

TEST(FpmPartitioner, BoundedDeviceSaturatesAtCapacity) {
    const std::vector<SpeedFunction> models = {
        SpeedFunction({{10.0, 100.0}, {50.0, 100.0}}, "gpu", 60.0),  // cap 60
        SpeedFunction::constant(1.0, "cpu"),
    };
    const auto result = partition_fpm(models, 200.0);
    EXPECT_LE(result.partition.share[0], 60.0 + 1e-9);
    EXPECT_NEAR(result.partition.total(), 200.0, 1e-6);
    // The slow CPU carries the overflow even though it is 100x slower.
    EXPECT_GE(result.partition.share[1], 140.0 - 1e-6);
}

TEST(FpmPartitioner, ThrowsWhenCapacityInsufficient) {
    const std::vector<SpeedFunction> models = {
        SpeedFunction({{10.0, 10.0}}, "g1", 50.0),
        SpeedFunction({{10.0, 10.0}}, "g2", 30.0),
    };
    EXPECT_THROW(partition_fpm(models, 100.0), fpm::Error);
    EXPECT_NO_THROW(partition_fpm(models, 80.0));
}

TEST(FpmPartitioner, SingleDeviceTakesAll) {
    const std::vector<SpeedFunction> models = {SpeedFunction::constant(3.0)};
    const auto result = partition_fpm(models, 42.0);
    EXPECT_NEAR(result.partition.share[0], 42.0, 1e-9);
    EXPECT_NEAR(result.balanced_time, 14.0, 1e-6);
}

TEST(FpmPartitioner, ZeroTotal) {
    const auto models = two_constant_devices();
    const auto result = partition_fpm(models, 0.0);
    EXPECT_DOUBLE_EQ(result.partition.total(), 0.0);
    EXPECT_DOUBLE_EQ(result.balanced_time, 0.0);
}

TEST(FpmPartitioner, Validation) {
    EXPECT_THROW(partition_fpm({}, 10.0), fpm::Error);
    const auto models = two_constant_devices();
    EXPECT_THROW(partition_fpm(models, -5.0), fpm::Error);
    FpmPartitionOptions options;
    options.tolerance = 0.0;
    EXPECT_THROW(partition_fpm(models, 10.0, options), fpm::Error);
}

TEST(FpmPartitioner, HandlesCliffDevices) {
    // A GPU-like device whose speed collapses past a memory limit: the
    // partitioner must not overload it (the paper's central claim).
    std::vector<SpeedPoint> gpu_points;
    for (double x = 10.0; x <= 1000.0; x += 30.0) {
        const double speed = (x <= 500.0) ? 90.0 : 25.0;
        gpu_points.push_back(SpeedPoint{x, speed});
    }
    const std::vector<SpeedFunction> models = {
        SpeedFunction(gpu_points, "gpu"),
        SpeedFunction::constant(30.0, "cpu"),
    };

    // Small problem: GPU is 3x the CPU, gets ~75 %.
    const auto small = partition_fpm(models, 400.0);
    EXPECT_GT(small.partition.share[0], 0.70 * 400.0);

    // Large problem: the balanced solution stops overloading the GPU.
    const auto large = partition_fpm(models, 1600.0);
    const double t_gpu = models[0].time(large.partition.share[0]);
    const double t_cpu = models[1].time(large.partition.share[1]);
    EXPECT_NEAR(t_gpu, t_cpu, 0.1 * std::max(t_gpu, t_cpu));
    // A CPM model built at small sizes (speed 90) would give the GPU 75 %
    // = 1200 blocks, taking 1200/25 = 48 s vs the balanced ~29 s.
    EXPECT_LT(std::max(t_gpu, t_cpu), 35.0);
}

TEST(FpmPartitioner, ManyDevicesStressAndConservation) {
    std::vector<SpeedFunction> models;
    for (int i = 0; i < 24; ++i) {
        models.push_back(
            SpeedFunction::constant(1.0 + static_cast<double>(i % 7)));
    }
    const auto result = partition_fpm(models, 10000.0);
    EXPECT_NEAR(result.partition.total(), 10000.0, 1e-3);
    // Faster devices get strictly more.
    EXPECT_GT(result.partition.share[6], result.partition.share[0]);
}

TEST(FpmPartitioner, FixedOverheadsShiftWorkAway) {
    // Two equal-speed devices, one with a heavy per-invocation overhead:
    // the balanced solution gives the cheap device strictly more.
    const std::vector<SpeedFunction> models = {
        SpeedFunction::constant(10.0, "cheap"),
        SpeedFunction::constant(10.0, "expensive"),
    };
    FpmPartitionOptions options;
    options.fixed_overheads = {0.0, 4.0};
    const auto result = partition_fpm(models, 200.0, options);
    EXPECT_NEAR(result.partition.total(), 200.0, 1e-6);
    EXPECT_GT(result.partition.share[0], result.partition.share[1] + 30.0);
    // Completion times (overhead + work) equalise.
    const double t0 = result.partition.share[0] / 10.0;
    const double t1 = 4.0 + result.partition.share[1] / 10.0;
    EXPECT_NEAR(t0, t1, 0.05 * t0);
}

TEST(FpmPartitioner, OverheadCanIdleADeviceEntirely) {
    // A tiny problem: the GPU-like device's launch overhead alone exceeds
    // what the cheap device needs for the whole workload.
    const std::vector<SpeedFunction> models = {
        SpeedFunction::constant(10.0, "cpu"),
        SpeedFunction::constant(100.0, "gpu"),
    };
    FpmPartitionOptions options;
    options.fixed_overheads = {0.0, 10.0};
    const auto result = partition_fpm(models, 5.0, options);  // 0.5 s on cpu
    EXPECT_NEAR(result.partition.share[0], 5.0, 1e-6);
    EXPECT_NEAR(result.partition.share[1], 0.0, 1e-6);
}

TEST(FpmPartitioner, OverheadValidation) {
    const auto models = two_constant_devices();
    FpmPartitionOptions options;
    options.fixed_overheads = {1.0};  // wrong length
    EXPECT_THROW(partition_fpm(models, 10.0, options), fpm::Error);
    options.fixed_overheads = {0.0, -1.0};
    EXPECT_THROW(partition_fpm(models, 10.0, options), fpm::Error);
}

TEST(FpmPartitioner, IterationsReported) {
    const auto models = two_constant_devices();
    const auto result = partition_fpm(models, 100.0);
    EXPECT_GE(result.iterations, 1U);
    EXPECT_LE(result.iterations, 200U);
}

} // namespace
} // namespace fpm::part

// Integration tests: the full pipeline of the paper on the simulated
// hybrid node — build FPMs/CPMs, partition, run the application — and the
// paper's qualitative claims (section VI).
#include <gtest/gtest.h>

#include <numeric>

#include "fpm/app/matmul_sim.hpp"
#include "fpm/part/fpm_partitioner.hpp"
#include "fpm/part/integer.hpp"

namespace fpm::app {
namespace {

core::FpmBuildOptions fast_fpm_options(double x_max) {
    core::FpmBuildOptions options;
    options.x_min = 4.0;
    options.x_max = x_max;
    options.initial_points = 12;
    options.max_points = 36;
    options.reliability.min_repetitions = 1;
    options.reliability.max_repetitions = 1;
    return options;
}

class IntegrationTest : public ::testing::Test {
protected:
    sim::HybridNode node_{sim::ig_platform(), {}};

    std::vector<std::int64_t> fpm_partition(std::int64_t n,
                                            const std::vector<core::SpeedFunction>& fpms) {
        const auto continuous =
            part::partition_fpm(fpms, static_cast<double>(n * n));
        return part::round_partition(continuous.partition, n * n, fpms).blocks;
    }

    std::vector<std::int64_t> cpm_partition(std::int64_t n,
                                            const std::vector<double>& speeds) {
        const auto continuous =
            part::partition_cpm(speeds, static_cast<double>(n * n));
        return part::round_largest_remainder(continuous, n * n).blocks;
    }

    std::vector<std::int64_t> even_partition(std::size_t devices, std::int64_t n) {
        const auto continuous =
            part::partition_homogeneous(devices, static_cast<double>(n * n));
        return part::round_largest_remainder(continuous, n * n).blocks;
    }
};

TEST_F(IntegrationTest, FpmPartitionBalancesHybridNode) {
    const DeviceSet set = hybrid_devices(node_);
    const auto fpms = build_device_fpms(node_, set, fast_fpm_options(5200.0));
    const std::int64_t n = 60;
    const auto blocks = fpm_partition(n, fpms);

    EXPECT_EQ(std::accumulate(blocks.begin(), blocks.end(), std::int64_t{0}),
              n * n);

    const auto result = run_simulated_app(node_, set, blocks, n);
    // All devices finish within a tight band of the straggler.
    const double makespan = *std::max_element(result.device_iter_time.begin(),
                                              result.device_iter_time.end());
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        if (blocks[i] > 0) {
            EXPECT_GT(result.device_iter_time[i], 0.75 * makespan)
                << set.devices[i].name;
        }
    }
}

TEST_F(IntegrationTest, CpmOverloadsGpuBeyondMemoryLimit) {
    // Table III: the CPM (built at the even share of a small problem)
    // assigns the GTX680 proportionally more than the FPM once the
    // problem exceeds its device memory; its blocks-to-S6 ratio stays
    // near the in-core speed ratio (~8-9x at n = 70) while the FPM ratio
    // falls to the out-of-core ratio (~4-6x).
    const DeviceSet set = hybrid_devices(node_);
    const auto fpms = build_device_fpms(node_, set, fast_fpm_options(5200.0));

    std::size_t gtx = 0;
    std::size_t s6 = 0;
    for (std::size_t i = 0; i < set.devices.size(); ++i) {
        if (set.devices[i].name == "GeForce GTX680") {
            gtx = i;
        }
        if (set.devices[i].kind == DeviceKind::kCpuSocket &&
            set.devices[i].cores == 6) {
            s6 = i;
        }
    }

    const std::int64_t n = 70;
    const auto cpm_speeds = build_device_cpms(node_, set, static_cast<double>(n * n));
    const auto cpm_blocks = cpm_partition(n, cpm_speeds);
    const auto fpm_blocks = fpm_partition(n, fpms);

    const double cpm_ratio = static_cast<double>(cpm_blocks[gtx]) /
                             static_cast<double>(cpm_blocks[s6]);
    const double fpm_ratio = static_cast<double>(fpm_blocks[gtx]) /
                             static_cast<double>(fpm_blocks[s6]);
    EXPECT_GT(cpm_ratio, 1.3 * fpm_ratio);
    EXPECT_GT(cpm_ratio, 7.0);
    EXPECT_LT(fpm_ratio, 6.5);
}

TEST_F(IntegrationTest, FpmBeatsCpmAndHomogeneousAtLargeSizes) {
    // Fig. 7: homogeneous worst, CPM fails past the memory cliff, FPM
    // best; ~30 % / ~45 % reductions in the large range.
    const DeviceSet set = hybrid_devices(node_);
    const auto fpms = build_device_fpms(node_, set, fast_fpm_options(5200.0));

    const std::int64_t n = 70;
    const auto cpm_speeds = build_device_cpms(node_, set, static_cast<double>(n * n));

    const auto t_even =
        run_simulated_app(node_, set, even_partition(set.devices.size(), n), n)
            .total_time;
    const auto t_cpm =
        run_simulated_app(node_, set, cpm_partition(n, cpm_speeds), n)
            .total_time;
    const auto t_fpm =
        run_simulated_app(node_, set, fpm_partition(n, fpms), n).total_time;

    EXPECT_LT(t_fpm, t_cpm);
    EXPECT_LT(t_cpm, t_even);
    EXPECT_LT(t_fpm, 0.85 * t_cpm);   // paper: ~30 % better
    EXPECT_LT(t_fpm, 0.70 * t_even);  // paper: ~45 % better
}

TEST_F(IntegrationTest, CpmMatchesFpmWhileProblemsAreSmall) {
    // Fig. 7: for small problems both model-based partitionings balance.
    const DeviceSet set = hybrid_devices(node_);
    const auto fpms = build_device_fpms(node_, set, fast_fpm_options(5200.0));

    const std::int64_t n = 30;  // everything fits the GTX680's memory
    const auto cpm_speeds = build_device_cpms(node_, set, static_cast<double>(n * n));
    const auto t_cpm =
        run_simulated_app(node_, set, cpm_partition(n, cpm_speeds), n)
            .total_time;
    const auto t_fpm =
        run_simulated_app(node_, set, fpm_partition(n, fpms), n).total_time;
    EXPECT_NEAR(t_cpm / t_fpm, 1.0, 0.12);
}

TEST_F(IntegrationTest, TableIIOrderingReproduced) {
    // Hybrid-FPM < min(CPUs-only, GTX680-only) for every paper size, and
    // the CPU/GPU crossover lands between n = 50 and n = 60.
    const DeviceSet cpu_set = cpu_only_devices(node_);
    const DeviceSet gpu_set = single_gpu_devices(node_, 1, sim::KernelVersion::kV2);
    const DeviceSet hybrid_set = hybrid_devices(node_);
    const auto fpms = build_device_fpms(node_, hybrid_set, fast_fpm_options(5200.0));

    double previous_gpu_advantage = 1e9;
    for (const std::int64_t n : {40, 50, 60, 70}) {
        const auto t_cpu =
            run_simulated_app(node_, cpu_set,
                              even_partition(cpu_set.devices.size(), n), n)
                .total_time;
        const auto t_gpu =
            run_simulated_app(node_, gpu_set, {n * n}, n).total_time;
        const auto t_hybrid =
            run_simulated_app(node_, hybrid_set, fpm_partition(n, fpms),
                              n)
                .total_time;

        EXPECT_LT(t_hybrid, t_cpu) << "n=" << n;
        EXPECT_LT(t_hybrid, t_gpu) << "n=" << n;

        const double gpu_advantage = t_cpu / t_gpu;
        EXPECT_LT(gpu_advantage, previous_gpu_advantage) << "n=" << n;
        previous_gpu_advantage = gpu_advantage;

        if (n <= 50) {
            EXPECT_GT(gpu_advantage, 1.0) << "GPU should win at n=" << n;
        }
        if (n >= 60) {
            EXPECT_LT(gpu_advantage, 1.0) << "CPUs should win at n=" << n;
        }
    }
}

TEST_F(IntegrationTest, PipelineWorksUnderMeasurementNoise) {
    sim::HybridNode noisy(sim::ig_platform(), {.noise_sigma = 0.04});
    const DeviceSet set = hybrid_devices(noisy);

    core::FpmBuildOptions options = fast_fpm_options(5200.0);
    options.reliability.min_repetitions = 3;
    options.reliability.max_repetitions = 30;
    options.reliability.target_relative_error = 0.02;
    const auto fpms = build_device_fpms(noisy, set, options);

    const std::int64_t n = 60;
    const auto continuous = part::partition_fpm(fpms, static_cast<double>(n * n));
    const auto blocks = part::round_partition(continuous.partition, n * n, fpms);
    const auto result = run_simulated_app(noisy, set, blocks.blocks, n);

    // Balance within 20 % despite noisy models.
    const double makespan = *std::max_element(result.device_iter_time.begin(),
                                              result.device_iter_time.end());
    for (std::size_t i = 0; i < set.devices.size(); ++i) {
        if (blocks.blocks[i] > 0) {
            EXPECT_GT(result.device_iter_time[i], 0.6 * makespan)
                << set.devices[i].name;
        }
    }
}

} // namespace
} // namespace fpm::app

// Tests for the baseline performance models (CPM, LPM) and their builders.
#include <gtest/gtest.h>

#include <cmath>

#include "fpm/core/models.hpp"

namespace fpm::core {
namespace {

/// Synthetic kernel with exactly linear time t(x) = alpha + beta * x.
class LinearBench final : public KernelBenchmark {
public:
    LinearBench(double alpha, double beta) : alpha_(alpha), beta_(beta) {}
    [[nodiscard]] std::string name() const override { return "linear"; }
    double run(double x) override {
        ++calls_;
        return alpha_ + beta_ * x;
    }
    std::size_t calls() const { return calls_; }

private:
    double alpha_;
    double beta_;
    std::size_t calls_ = 0;
};

/// Kernel with a constant-speed profile and a capacity bound.
class BoundedBench final : public KernelBenchmark {
public:
    explicit BoundedBench(double speed, double max) : speed_(speed), max_(max) {}
    [[nodiscard]] std::string name() const override { return "bounded"; }
    double run(double x) override { return x / speed_; }
    [[nodiscard]] double max_problem() const override { return max_; }

private:
    double speed_;
    double max_;
};

measure::ReliabilityOptions quick() {
    measure::ReliabilityOptions options;
    options.min_repetitions = 1;
    options.max_repetitions = 1;
    return options;
}

TEST(ConstantModel, TimeAndConversion) {
    const ConstantModel model{5.0, "dev"};
    EXPECT_DOUBLE_EQ(model.time(10.0), 2.0);
    const SpeedFunction fn = model.to_speed_function();
    EXPECT_DOUBLE_EQ(fn.speed(123.0), 5.0);
    EXPECT_EQ(fn.name(), "dev");
}

TEST(BuildCpm, RecoversConstantSpeed) {
    BoundedBench bench(8.0, 1e9);
    const ConstantModel model = build_cpm(bench, 100.0, quick());
    EXPECT_NEAR(model.speed, 8.0, 1e-9);
    EXPECT_EQ(model.name, "bounded");
}

TEST(BuildCpm, RespectsMaxProblem) {
    BoundedBench bench(8.0, 50.0);
    EXPECT_THROW(build_cpm(bench, 100.0, quick()), fpm::Error);
    EXPECT_NO_THROW(build_cpm(bench, 50.0, quick()));
}

TEST(BuildCpmEvenShare, EveryDeviceMeasuredAtEvenShare) {
    LinearBench fast(0.0, 0.01);   // speed 100
    LinearBench slow(0.0, 0.05);   // speed 20
    const auto models =
        build_cpm_even_share({&fast, &slow}, 200.0, quick());
    ASSERT_EQ(models.size(), 2U);
    EXPECT_NEAR(models[0].speed, 100.0, 1e-9);
    EXPECT_NEAR(models[1].speed, 20.0, 1e-9);
}

TEST(BuildCpmEvenShare, ClampsToCapacity) {
    BoundedBench small(10.0, 30.0);  // cannot run the even share of 100
    BoundedBench big(10.0, 1e9);
    const auto models = build_cpm_even_share({&small, &big}, 200.0, quick());
    EXPECT_NEAR(models[0].speed, 10.0, 1e-9);  // measured at its cap
}

TEST(BuildCpmEvenShare, Validation) {
    EXPECT_THROW(build_cpm_even_share({}, 100.0, quick()), fpm::Error);
    LinearBench bench(0.0, 0.01);
    EXPECT_THROW(build_cpm_even_share({&bench, nullptr}, 100.0, quick()),
                 fpm::Error);
}

TEST(BuildLpm, RecoversExactLinearModel) {
    LinearBench bench(0.125, 0.03);
    const LinearModel model =
        build_lpm(bench, {10.0, 50.0, 100.0, 200.0}, quick());
    EXPECT_NEAR(model.alpha, 0.125, 1e-9);
    EXPECT_NEAR(model.beta, 0.03, 1e-9);
    EXPECT_NEAR(model.time(400.0), 0.125 + 12.0, 1e-6);
}

TEST(BuildLpm, ClampsNegativeAlpha) {
    // A super-linear device makes the fitted intercept negative; the model
    // clamps it (overheads cannot be negative).
    class SuperLinear final : public KernelBenchmark {
    public:
        [[nodiscard]] std::string name() const override { return "sl"; }
        double run(double x) override { return 1e-4 * x * x + 0.01 * x; }
    } bench;
    const LinearModel model = build_lpm(bench, {10.0, 100.0, 400.0}, quick());
    EXPECT_GE(model.alpha, 0.0);
    EXPECT_GT(model.beta, 0.0);
}

TEST(BuildLpm, Validation) {
    LinearBench bench(0.1, 0.01);
    EXPECT_THROW(build_lpm(bench, {10.0}, quick()), fpm::Error);
    EXPECT_THROW(build_lpm(bench, {10.0, -5.0}, quick()), fpm::Error);
    EXPECT_THROW(build_lpm(bench, {10.0, 10.0}, quick()), fpm::Error);  // degenerate
}

TEST(LinearModel, SpeedFunctionSampling) {
    const LinearModel model{1.0, 0.1, "lpm"};
    const SpeedFunction fn = model.to_speed_function(10.0, 1000.0, 16);
    // speed(x) = x / (1 + 0.1 x): increasing towards 10.
    EXPECT_NEAR(fn.speed(10.0), 5.0, 1e-9);
    EXPECT_GT(fn.speed(1000.0), fn.speed(10.0));
    EXPECT_LT(fn.speed(1000.0), 10.0);
    EXPECT_EQ(fn.points().size(), 16U);
    EXPECT_THROW(model.to_speed_function(10.0, 5.0), fpm::Error);
}

TEST(BuildModels, ReliabilityLoopIsUsed) {
    LinearBench bench(0.0, 0.01);
    measure::ReliabilityOptions options;  // default: min 3 repetitions
    build_cpm(bench, 100.0, options);
    EXPECT_GE(bench.calls(), 3U);
}

} // namespace
} // namespace fpm::core

// Tests for the dynamic task-queue comparator: conservation, adaptation to
// heterogeneity and to time-varying load, and the static/dynamic trade-off
// the paper's related-work section describes.
#include <gtest/gtest.h>

#include <numeric>

#include "fpm/app/dynamic_sched.hpp"
#include "fpm/app/matmul_sim.hpp"
#include "fpm/common/math.hpp"
#include "fpm/part/fpm_partitioner.hpp"
#include "fpm/part/integer.hpp"

namespace fpm::app {
namespace {

class DynamicSchedTest : public ::testing::Test {
protected:
    sim::HybridNode node_{sim::ig_platform(), {}};
};

TEST_F(DynamicSchedTest, AllTasksExecuted) {
    const DeviceSet set = hybrid_devices(node_);
    DynamicOptions options;
    options.granularity = 5;
    const std::int64_t n = 20;
    const auto result = run_dynamic_app(node_, set, n, options);

    const std::int64_t tiles_per_side = ceil_div(n, options.granularity);
    const std::int64_t expected = n * tiles_per_side * tiles_per_side;
    EXPECT_EQ(std::accumulate(result.task_count.begin(),
                              result.task_count.end(), std::int64_t{0}),
              expected);
    EXPECT_GT(result.total_time, 0.0);
}

TEST_F(DynamicSchedTest, FasterDevicesPullMoreTasks) {
    const DeviceSet set = hybrid_devices(node_);
    const auto result = run_dynamic_app(node_, set, 24);

    std::size_t gtx = 0;
    std::size_t s6 = 0;
    for (std::size_t i = 0; i < set.devices.size(); ++i) {
        if (set.devices[i].name == "GeForce GTX680") {
            gtx = i;
        }
        if (set.devices[i].kind == DeviceKind::kCpuSocket &&
            set.devices[i].cores == 6) {
            s6 = i;
        }
    }
    EXPECT_GT(result.task_count[gtx], 2 * result.task_count[s6]);
}

TEST_F(DynamicSchedTest, GranularityTradeOff) {
    // One giant task per iteration serialises the whole node; moderate
    // tiles spread the load; tiny tiles lose kernel efficiency (the
    // small-problem ramp) — the same trade-off as the blocking factor.
    const DeviceSet set = cpu_only_devices(node_);
    const std::int64_t n = 16;
    auto run_with = [&](std::int64_t g) {
        DynamicOptions options;
        options.granularity = g;
        options.charge_migration = false;
        return run_dynamic_app(node_, set, n, options).total_time;
    };
    const double t_serial = run_with(16);   // 1 task/iteration
    const double t_medium = run_with(8);    // 4 tasks over 4 sockets
    const double t_tiny = run_with(1);      // 256 inefficient tasks
    EXPECT_LT(t_medium, 0.5 * t_serial);
    EXPECT_GT(t_tiny, t_medium);
}

TEST_F(DynamicSchedTest, MigrationCostHurts) {
    const DeviceSet set = hybrid_devices(node_);
    DynamicOptions with;
    with.granularity = 2;
    with.charge_migration = true;
    DynamicOptions without = with;
    without.charge_migration = false;
    const auto t_with = run_dynamic_app(node_, set, 16, with).total_time;
    const auto t_without = run_dynamic_app(node_, set, 16, without).total_time;
    EXPECT_GT(t_with, t_without);
}

TEST_F(DynamicSchedTest, StaticPerturbedMatchesSimulatedAppWhenUnperturbed) {
    const DeviceSet set = cpu_only_devices(node_);
    const std::int64_t n = 12;
    std::vector<std::int64_t> areas(4, n * n / 4);
    const double static_time =
        run_static_app_perturbed(node_, set, areas, n);
    SimAppOptions options;
    options.include_comm = false;
    const double app_time =
        run_simulated_app(node_, set, areas, n, options).total_time;
    EXPECT_NEAR(static_time, app_time, 1e-9 * app_time);
}

TEST_F(DynamicSchedTest, StaticWinsOnDedicatedPlatform) {
    // No external load: the FPM-partitioned static run beats the dynamic
    // scheduler, which pays migration on every task (the paper's argument
    // for static partitioning on dedicated platforms).
    const DeviceSet set = hybrid_devices(node_);
    const std::int64_t n = 30;

    core::FpmBuildOptions model_options;
    model_options.x_min = 4.0;
    model_options.x_max = 1000.0;
    model_options.reliability.min_repetitions = 1;
    model_options.reliability.max_repetitions = 1;
    sim::HybridNode& node = node_;
    const auto fpms = build_device_fpms(node, set, model_options);
    const auto continuous =
        part::partition_fpm(fpms, static_cast<double>(n) * n);
    const auto blocks = part::round_partition(continuous.partition, n * n, fpms);

    const double static_time =
        run_static_app_perturbed(node_, set, blocks.blocks, n);
    DynamicOptions options;
    options.granularity = 3;
    const double dynamic_time =
        run_dynamic_app(node_, set, n, options).total_time;
    EXPECT_LT(static_time, dynamic_time);
}

TEST_F(DynamicSchedTest, DynamicAdaptsToLoadChange) {
    // A socket loses 70 % of its speed halfway through: the static
    // partition (sized for the unloaded machine) stalls on the straggler;
    // the dynamic queue reroutes tasks.
    const DeviceSet set = cpu_only_devices(node_);
    const std::int64_t n = 24;
    std::vector<std::int64_t> areas(4, n * n / 4);

    const double unperturbed =
        run_static_app_perturbed(node_, set, areas, n);
    const SpeedModulation modulation = [&](std::size_t device, double time) {
        return (device == 0 && time > unperturbed / 4.0) ? 0.2 : 1.0;
    };

    const double static_time =
        run_static_app_perturbed(node_, set, areas, n, modulation);
    DynamicOptions options;
    options.granularity = 6;
    options.charge_migration = true;
    const double dynamic_time =
        run_dynamic_app(node_, set, n, options, modulation).total_time;

    EXPECT_GT(static_time, 1.5 * unperturbed);  // static suffers
    EXPECT_LT(dynamic_time, static_time);       // dynamic adapts
}

TEST_F(DynamicSchedTest, Validation) {
    const DeviceSet set = cpu_only_devices(node_);
    EXPECT_THROW(run_dynamic_app(node_, set, 0), fpm::Error);
    DynamicOptions bad;
    bad.granularity = 0;
    EXPECT_THROW(run_dynamic_app(node_, set, 4, bad), fpm::Error);
    EXPECT_THROW(
        run_static_app_perturbed(node_, set, {1, 2}, 4),
        fpm::Error);
    // Modulation outside (0, 1] rejected.
    EXPECT_THROW(run_dynamic_app(node_, set, 4, {},
                                 [](std::size_t, double) { return 1.5; }),
                 fpm::Error);
}

} // namespace
} // namespace fpm::app

// fpm::store crash-recovery suite: WAL framing (CRC, torn-tail
// truncation, self-healing appends), ModelStore write-ahead veto
// semantics through the registry put observer, snapshot + rotation + GC,
// the store.append/store.fsync/store.snapshot fault points, a real
// fork()+SIGKILL crash test whose recovered registry must serve
// bit-for-bit identical plans at the pre-crash generation, and a chaos
// run with every store fault armed against the live serve stack — zero
// torn replies, and post-chaos recovery must reproduce the served state
// exactly.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fpm/core/model_io.hpp"
#include "fpm/fault/fault.hpp"
#include "fpm/obs/metrics.hpp"
#include "fpm/serve/client.hpp"
#include "fpm/serve/error.hpp"
#include "fpm/serve/model_registry.hpp"
#include "fpm/serve/protocol.hpp"
#include "fpm/serve/request_engine.hpp"
#include "fpm/serve/server.hpp"
#include "fpm/store/model_store.hpp"
#include "fpm/store/wal.hpp"
#include "stress_harness.hpp"

namespace fpm::store {
namespace {

namespace fs = std::filesystem;
using core::SpeedFunction;
using core::SpeedPoint;
using serve::ErrorCode;
using serve::ModelRegistry;
using serve::ServiceError;

/// Deterministic synthetic device set (same family as test_serve.cpp);
/// `seed` perturbs the speeds so successive generations differ.
std::vector<SpeedFunction> synthetic_models(std::size_t devices,
                                            std::size_t points_per_model,
                                            double seed) {
    std::vector<SpeedFunction> models;
    for (std::size_t d = 0; d < devices; ++d) {
        std::vector<SpeedPoint> points;
        const double peak =
            (1.0 + 0.05 * seed) * (40.0 + 17.0 * static_cast<double>(d));
        const double cliff = 900.0 + 400.0 * static_cast<double>(d);
        const double x_max = 6000.0;
        for (std::size_t p = 0; p < points_per_model; ++p) {
            const double x = 4.0 + (x_max - 4.0) * static_cast<double>(p) /
                                       static_cast<double>(points_per_model - 1);
            const double ramp = x / (x + 25.0);
            const double speed = (x < cliff ? peak : 0.45 * peak) * ramp;
            points.push_back(SpeedPoint{x, speed});
        }
        models.emplace_back(std::move(points), "dev" + std::to_string(d));
    }
    return models;
}

/// Fresh store directory under /tmp, removed on scope exit.
struct TempDir {
    TempDir() {
        char tmpl[] = "/tmp/fpmpart_store_XXXXXX";
        const char* made = ::mkdtemp(tmpl);
        EXPECT_NE(made, nullptr);
        path = made != nullptr ? made : "/tmp/fpmpart_store_fallback";
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string path;
};

/// Uninstalls any leftover fault plan when a test exits.
struct FaultGuard {
    ~FaultGuard() { fault::uninstall(); }
};

std::uint64_t file_size(const std::string& path) {
    return static_cast<std::uint64_t>(fs::file_size(path));
}

void append_raw(const std::string& path, std::string_view bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
}

/// Store-directory census: (wal segment count, snapshot count, tmp count).
struct DirCensus {
    std::size_t segments = 0;
    std::size_t snapshots = 0;
    std::size_t tmps = 0;
};

DirCensus census(const std::string& dir) {
    DirCensus c;
    for (const auto& entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
            ++c.tmps;
        } else if (name.rfind("wal-", 0) == 0) {
            ++c.segments;
        } else if (name.rfind("snapshot-", 0) == 0) {
            ++c.snapshots;
        }
    }
    return c;
}

// ---------------------------------------------------------------------------
// WAL framing
// ---------------------------------------------------------------------------

TEST(Wal, Crc32MatchesTheIeeeReferenceVector) {
    // The canonical CRC-32 check value ("123456789" -> 0xCBF43926).
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(crc32("", 0), 0u);
}

TEST(Wal, FramesAreLengthCrcPayload) {
    const std::string frame = encode_frame("abc");
    ASSERT_EQ(frame.size(), 8u + 3u);
    const auto u32 = [&](std::size_t at) {
        return static_cast<std::uint32_t>(
                   static_cast<unsigned char>(frame[at])) |
               static_cast<std::uint32_t>(
                   static_cast<unsigned char>(frame[at + 1])) << 8 |
               static_cast<std::uint32_t>(
                   static_cast<unsigned char>(frame[at + 2])) << 16 |
               static_cast<std::uint32_t>(
                   static_cast<unsigned char>(frame[at + 3])) << 24;
    };
    EXPECT_EQ(u32(0), 3u);                 // little-endian payload length
    EXPECT_EQ(u32(4), crc32("abc", 3));    // little-endian payload CRC
    EXPECT_EQ(frame.substr(8), "abc");
}

TEST(Wal, AppendReplayRoundTrip) {
    TempDir dir;
    const std::string path = dir.path + "/wal-000001.log";
    const std::vector<std::string> payloads = {"first", "", "third record",
                                               std::string(4096, 'x')};
    WalFile wal;
    wal.open(path, 0);
    std::uint64_t expected = 0;
    for (const std::string& payload : payloads) {
        expected += wal.append(payload);
        EXPECT_EQ(wal.committed_bytes(), expected);
    }
    wal.close();

    const auto replay = replay_wal(path, false);
    EXPECT_EQ(replay.truncated_bytes, 0u);
    EXPECT_EQ(replay.payloads, payloads);
}

TEST(Wal, TornTailIsReportedAndRepairTruncatesIt) {
    TempDir dir;
    const std::string path = dir.path + "/wal-000001.log";
    WalFile wal;
    wal.open(path, 0);
    wal.append("alpha");
    wal.append("beta");
    const std::uint64_t committed = wal.committed_bytes();
    wal.close();

    // A crash mid-append: a frame header promising more bytes than exist.
    append_raw(path, std::string("\x40\x00\x00\x00\x99\x99", 6));
    ASSERT_GT(file_size(path), committed);

    const auto peek = replay_wal(path, false);
    EXPECT_EQ(peek.payloads, (std::vector<std::string>{"alpha", "beta"}));
    EXPECT_EQ(peek.truncated_bytes, 6u);
    EXPECT_GT(file_size(path), committed);  // repair=false never writes

    const auto repaired = replay_wal(path, true);
    EXPECT_EQ(repaired.payloads.size(), 2u);
    EXPECT_EQ(repaired.truncated_bytes, 6u);
    EXPECT_EQ(file_size(path), committed);

    const auto clean = replay_wal(path, false);
    EXPECT_EQ(clean.truncated_bytes, 0u);
    EXPECT_EQ(clean.payloads.size(), 2u);
}

TEST(Wal, CrcCorruptionEndsTheReplayAtTheLastGoodRecord) {
    TempDir dir;
    const std::string path = dir.path + "/wal-000001.log";
    WalFile wal;
    wal.open(path, 0);
    wal.append("keep me");
    const std::uint64_t boundary = wal.committed_bytes();
    wal.append("corrupt me");
    wal.close();

    // Flip one payload byte of the second record (header stays intact,
    // so only the CRC check can catch it).
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(static_cast<std::streamoff>(boundary) + 8);
    file.put('X');
    file.close();

    const auto replay = replay_wal(path, true);
    EXPECT_EQ(replay.payloads, (std::vector<std::string>{"keep me"}));
    EXPECT_GT(replay.truncated_bytes, 0u);
    EXPECT_EQ(file_size(path), boundary);
}

TEST(Wal, FailedAppendSelfHealsAtTheNextAppend) {
    FaultGuard guard;
    TempDir dir;
    const std::string path = dir.path + "/wal-000001.log";
    WalFile wal;
    wal.open(path, 0);
    wal.append("durable");
    const std::uint64_t committed = wal.committed_bytes();

    fault::install(fault::FaultPlan::parse("seed=1,store.append=1"));
    EXPECT_THROW(wal.append("lost"), ServiceError);
    EXPECT_EQ(wal.committed_bytes(), committed);
    EXPECT_GT(file_size(path), committed);  // deliberately torn half-frame

    fault::uninstall();
    wal.append("after the failure");
    wal.close();

    const auto replay = replay_wal(path, false);
    EXPECT_EQ(replay.truncated_bytes, 0u);
    EXPECT_EQ(replay.payloads,
              (std::vector<std::string>{"durable", "after the failure"}));
}

// ---------------------------------------------------------------------------
// FsyncPolicy parsing
// ---------------------------------------------------------------------------

TEST(StoreOptionsTest, FsyncPolicyParsesItsOwnToString) {
    EXPECT_EQ(parse_fsync_policy("always"), FsyncPolicy::kAlways);
    EXPECT_EQ(parse_fsync_policy("never"), FsyncPolicy::kNever);
    EXPECT_EQ(to_string(FsyncPolicy::kAlways), "always");
    EXPECT_EQ(to_string(FsyncPolicy::kNever), "never");
    EXPECT_THROW((void)parse_fsync_policy("sometimes"), fpm::Error);
    EXPECT_THROW((void)parse_fsync_policy(""), fpm::Error);
}

// ---------------------------------------------------------------------------
// ModelStore: attach / append / recover
// ---------------------------------------------------------------------------

TEST(ModelStoreTest, RecoversExactGenerationsAndFingerprintsAfterAbandon) {
    TempDir dir;
    std::vector<std::uint64_t> fingerprints;
    std::uint64_t next_generation = 0;
    {
        ModelRegistry registry;
        ModelStore store(dir.path);
        const auto fresh = store.recover(registry);
        EXPECT_EQ(fresh.recovered_generation, 0u);
        EXPECT_EQ(fresh.sets, 0u);
        store.attach(registry);

        registry.put("alpha", synthetic_models(2, 24, 1.0));
        registry.put("beta", synthetic_models(3, 24, 2.0));
        registry.put("alpha", synthetic_models(2, 24, 3.0));  // reload
        for (const auto& set : registry.snapshot()) {
            fingerprints.push_back(set->fingerprint);
        }
        next_generation = registry.next_generation();
        EXPECT_EQ(next_generation, 4u);
        store.abandon();  // simulated kill -9: no final snapshot
    }
    {
        ModelRegistry recovered;
        ModelStore store(dir.path);
        const auto report = store.recover(recovered);
        EXPECT_EQ(report.recovered_generation, 3u);
        EXPECT_EQ(report.wal_records, 3u);
        EXPECT_EQ(report.truncated_bytes, 0u);
        EXPECT_EQ(report.sets, 2u);
        EXPECT_EQ(store.last_recovery().recovered_generation, 3u);

        // Same names, same fingerprints, same per-set generations, and
        // the registry's counter resumes past the crash point.
        ASSERT_EQ(recovered.size(), 2u);
        std::vector<std::uint64_t> got;
        for (const auto& set : recovered.snapshot()) {
            got.push_back(set->fingerprint);
        }
        EXPECT_EQ(got, fingerprints);
        EXPECT_EQ(recovered.get("alpha")->generation, 3u);
        EXPECT_EQ(recovered.get("beta")->generation, 2u);
        EXPECT_EQ(recovered.next_generation(), next_generation);
        store.abandon();
    }
}

TEST(ModelStoreTest, AttachMirrorsPreloadedRegistryContent) {
    TempDir dir;
    {
        // Content loaded *before* attach (the --models path) must become
        // durable at attach time, not silently stay RAM-only.
        ModelRegistry registry;
        registry.put("preloaded", synthetic_models(2, 16, 1.0));
        ModelStore store(dir.path);
        store.recover(registry);
        store.attach(registry);
        EXPECT_EQ(store.stats().appended, 1u);
        store.abandon();
    }
    ModelRegistry recovered;
    ModelStore store(dir.path);
    const auto report = store.recover(recovered);
    EXPECT_EQ(report.sets, 1u);
    EXPECT_NE(recovered.find("preloaded"), nullptr);
    store.abandon();
}

TEST(ModelStoreTest, TornWalTailTruncatesCleanlyOnRecovery) {
    TempDir dir;
    std::string segment;
    {
        ModelRegistry registry;
        ModelStore store(dir.path);
        store.recover(registry);
        store.attach(registry);
        registry.put("alpha", synthetic_models(2, 16, 1.0));
        registry.put("alpha", synthetic_models(2, 16, 2.0));
        registry.put("alpha", synthetic_models(2, 16, 3.0));
        char name[32];
        std::snprintf(name, sizeof name, "wal-%06llu.log",
                      static_cast<unsigned long long>(store.stats().segment));
        segment = dir.path + "/" + name;
        store.abandon();
    }
    // A crash mid-append leaves a torn frame after generation 3.
    append_raw(segment, std::string("\xff\xff\x00\x00half", 8));

    ModelRegistry recovered;
    ModelStore store(dir.path);
    const auto report = store.recover(recovered);
    EXPECT_EQ(report.recovered_generation, 3u);
    EXPECT_EQ(report.truncated_bytes, 8u);
    EXPECT_EQ(recovered.get("alpha")->generation, 3u);

    // The tail was physically repaired: appends extend a clean prefix.
    store.attach(recovered);
    recovered.put("alpha", synthetic_models(2, 16, 4.0));
    store.abandon();

    ModelRegistry again;
    ModelStore second(dir.path);
    const auto final_report = second.recover(again);
    EXPECT_EQ(final_report.truncated_bytes, 0u);
    EXPECT_EQ(final_report.recovered_generation, 4u);
    second.abandon();
}

TEST(ModelStoreTest, SnapshotCompactsRotatesAndCollectsGarbage) {
    TempDir dir;
    std::vector<std::uint64_t> fingerprints;
    {
        ModelRegistry registry;
        StoreOptions options;
        options.snapshot_every = 2;
        ModelStore store(dir.path, options);
        store.recover(registry);
        store.attach(registry);
        for (int round = 0; round < 5; ++round) {
            registry.put("alpha", synthetic_models(2, 16, 1.0 + round));
        }
        // 5 appends with snapshot_every=2 -> snapshots at 2 and 4, each
        // rotating to a fresh segment and GCing everything it covers.
        EXPECT_EQ(store.stats().snapshots, 2u);
        EXPECT_EQ(store.stats().segment, 3u);
        const auto on_disk = census(dir.path);
        EXPECT_EQ(on_disk.snapshots, 1u);  // older snapshot GC'd
        EXPECT_EQ(on_disk.segments, 1u);   // covered segments GC'd
        EXPECT_EQ(on_disk.tmps, 0u);
        for (const auto& set : registry.snapshot()) {
            fingerprints.push_back(set->fingerprint);
        }
        store.abandon();
    }
    ModelRegistry recovered;
    ModelStore store(dir.path);
    const auto report = store.recover(recovered);
    EXPECT_EQ(report.snapshot_generation, 4u);
    EXPECT_EQ(report.wal_records, 1u);  // generation 5 replayed from the WAL
    EXPECT_EQ(report.recovered_generation, 5u);
    std::vector<std::uint64_t> got;
    for (const auto& set : recovered.snapshot()) {
        got.push_back(set->fingerprint);
    }
    EXPECT_EQ(got, fingerprints);
    store.abandon();
}

TEST(ModelStoreTest, GracefulStopTakesAFinalSnapshotThatCoversEverything) {
    TempDir dir;
    {
        ModelRegistry registry;
        StoreOptions options;
        options.snapshot_every = 0;  // auto-snapshots off
        ModelStore store(dir.path, options);
        store.recover(registry);
        store.attach(registry);
        registry.put("alpha", synthetic_models(2, 16, 1.0));
        registry.put("beta", synthetic_models(2, 16, 2.0));
        store.stop();

        // After stop() the observer is detached: puts commit without the
        // store and must not crash or log.
        registry.put("gamma", synthetic_models(2, 16, 3.0));
        EXPECT_EQ(store.stats().appended, 2u);
    }
    ModelRegistry recovered;
    ModelStore store(dir.path);
    const auto report = store.recover(recovered);
    EXPECT_EQ(report.snapshot_generation, 2u);
    EXPECT_EQ(report.wal_records, 0u);
    EXPECT_EQ(report.sets, 2u);
    EXPECT_EQ(recovered.find("gamma"), nullptr);  // post-stop put, by design
    store.abandon();
}

// ---------------------------------------------------------------------------
// Fault points: write-ahead veto semantics
// ---------------------------------------------------------------------------

TEST(ModelStoreFaults, AppendFaultVetoesThePublishAndLeavesNoTrace) {
    FaultGuard guard;
    TempDir dir;
    ModelRegistry registry;
    ModelStore store(dir.path);
    store.recover(registry);
    store.attach(registry);
    registry.put("alpha", synthetic_models(2, 16, 1.0));
    const std::uint64_t fingerprint = registry.get("alpha")->fingerprint;
    const std::uint64_t next = registry.next_generation();

    fault::install(fault::FaultPlan::parse("seed=3,store.append=1"));
    try {
        registry.put("alpha", synthetic_models(2, 16, 9.0));
        FAIL() << "expected the store veto to propagate";
    } catch (const ServiceError& e) {
        EXPECT_EQ(e.code(), ErrorCode::kStoreUnavailable);
    }
    // Vetoed: previous snapshot and generation counter fully intact.
    EXPECT_EQ(registry.get("alpha")->fingerprint, fingerprint);
    EXPECT_EQ(registry.next_generation(), next);

    fault::uninstall();
    const auto set = registry.put("alpha", synthetic_models(2, 16, 2.0));
    EXPECT_EQ(set->generation, next);
    store.abandon();

    // The torn half-frame the injected failure left was overwritten by
    // the successful append; recovery sees generations 1 and 2 only.
    ModelRegistry recovered;
    ModelStore second(dir.path);
    const auto report = second.recover(recovered);
    EXPECT_EQ(report.recovered_generation, next);
    EXPECT_EQ(report.wal_records, 2u);
    EXPECT_EQ(recovered.get("alpha")->fingerprint, set->fingerprint);
    second.abandon();
}

TEST(ModelStoreFaults, FsyncFaultRollsTheRecordBackBeforeVetoing) {
    FaultGuard guard;
    TempDir dir;
    ModelRegistry registry;
    ModelStore store(dir.path);
    store.recover(registry);
    store.attach(registry);
    registry.put("alpha", synthetic_models(2, 16, 1.0));
    char name[32];
    std::snprintf(name, sizeof name, "wal-%06llu.log",
                  static_cast<unsigned long long>(store.stats().segment));
    const std::string segment = dir.path + "/" + name;
    const std::uint64_t committed = file_size(segment);

    fault::install(fault::FaultPlan::parse("seed=4,store.fsync=1"));
    try {
        registry.put("alpha", synthetic_models(2, 16, 9.0));
        FAIL() << "expected the fsync veto to propagate";
    } catch (const ServiceError& e) {
        EXPECT_EQ(e.code(), ErrorCode::kStoreUnavailable);
    }
    // The un-synced record was truncated away, not left as a valid frame
    // that recovery would replay despite the failed acknowledgement.
    EXPECT_EQ(file_size(segment), committed);
    EXPECT_EQ(store.stats().appended, 1u);
    fault::uninstall();
    store.abandon();
}

TEST(ModelStoreFaults, SnapshotFaultAbandonsTheTempFileAndKeepsAppending) {
    FaultGuard guard;
    TempDir dir;
    ModelRegistry registry;
    StoreOptions options;
    options.snapshot_every = 0;
    ModelStore store(dir.path, options);
    store.recover(registry);
    store.attach(registry);
    registry.put("alpha", synthetic_models(2, 16, 1.0));

    fault::install(fault::FaultPlan::parse("seed=5,store.snapshot=1"));
    EXPECT_THROW(store.snapshot(), ServiceError);
    fault::uninstall();
    // The injected crash point is between the temp write and the
    // rename: no published snapshot, the temp file left for recovery.
    EXPECT_EQ(census(dir.path).snapshots, 0u);
    EXPECT_EQ(census(dir.path).tmps, 1u);

    // The store keeps working on the old segment after the failure.
    registry.put("alpha", synthetic_models(2, 16, 2.0));
    store.snapshot();
    EXPECT_EQ(census(dir.path).snapshots, 1u);
    store.abandon();

    ModelRegistry recovered;
    ModelStore second(dir.path);
    const auto report = second.recover(recovered);
    EXPECT_EQ(report.snapshot_generation, 2u);
    EXPECT_EQ(report.recovered_generation, 2u);
    EXPECT_EQ(census(dir.path).tmps, 0u);  // recovery sweeps *.tmp
    second.abandon();
}

TEST(ModelStoreTest, CorruptSnapshotFallsBackToTheOlderOneplusWal) {
    TempDir dir;
    std::uint64_t expected_fingerprint = 0;
    {
        ModelRegistry registry;
        StoreOptions options;
        options.snapshot_every = 0;
        ModelStore store(dir.path, options);
        store.recover(registry);
        store.attach(registry);
        registry.put("alpha", synthetic_models(2, 16, 1.0));
        store.snapshot();  // snapshot at generation 1
        registry.put("alpha", synthetic_models(2, 16, 2.0));
        expected_fingerprint = registry.get("alpha")->fingerprint;
        store.abandon();
    }
    // Corrupt the (only) snapshot: recovery must reject it and rebuild
    // from the WAL alone...
    for (const auto& entry : fs::directory_iterator(dir.path)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("snapshot-", 0) == 0) {
            append_raw(entry.path().string(), "garbage tail");
        }
    }
    // ...except the generation-1 segment was GC'd by the snapshot, so
    // only generation 2's record survives — still the newest state.
    ModelRegistry recovered;
    ModelStore store(dir.path);
    const auto report = store.recover(recovered);
    EXPECT_EQ(report.snapshot_generation, 0u);
    EXPECT_EQ(report.recovered_generation, 2u);
    EXPECT_EQ(recovered.get("alpha")->fingerprint, expected_fingerprint);
    store.abandon();
}

// ---------------------------------------------------------------------------
// The crash test: fork, publish N generations, SIGKILL, recover, and
// serve bit-for-bit identical plans at the recovered generation.
// ---------------------------------------------------------------------------

TEST(ModelStoreCrash, Kill9AfterNRepublishesRecoversGenerationN) {
    constexpr int kGenerations = 6;
    TempDir dir;
    int ready_pipe[2];
    ASSERT_EQ(pipe(ready_pipe), 0);

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Child: publish kGenerations through the attached store (fsync
        // always, so every acknowledged publish is durable), report
        // readiness, then wait to be SIGKILLed mid-flight.
        ::close(ready_pipe[0]);
        int status = 1;
        try {
            ModelRegistry registry;
            ModelStore store(dir.path);
            store.recover(registry);
            store.attach(registry);
            for (int g = 1; g <= kGenerations; ++g) {
                registry.put("hybrid",
                             synthetic_models(3, 48, static_cast<double>(g)));
            }
            status = 0;
        } catch (...) {
        }
        const char byte = status == 0 ? '+' : '-';
        (void)!::write(ready_pipe[1], &byte, 1);
        ::pause();       // hold the store open until the SIGKILL lands
        ::_exit(status);  // not reached
    }

    ::close(ready_pipe[1]);
    char byte = 0;
    ASSERT_EQ(::read(ready_pipe[0], &byte, 1), 1);
    ::close(ready_pipe[0]);
    ASSERT_EQ(byte, '+') << "child failed to publish";
    ASSERT_EQ(::kill(child, SIGKILL), 0);
    int wait_status = 0;
    ASSERT_EQ(::waitpid(child, &wait_status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(wait_status));
    ASSERT_EQ(WTERMSIG(wait_status), SIGKILL);

    // Restart against the same --store dir.
    ModelRegistry recovered;
    ModelStore store(dir.path);
    const auto report = store.recover(recovered);
    EXPECT_EQ(report.recovered_generation,
              static_cast<std::uint64_t>(kGenerations));
    EXPECT_EQ(report.truncated_bytes, 0u);  // fsync'd appends, clean tail
    ASSERT_EQ(recovered.size(), 1u);

    // The recovered snapshot is the pre-crash one: same fingerprint,
    // same generation, and plans computed from it are bit-for-bit
    // identical to plans from the directly-built models.
    const auto last = synthetic_models(3, 48, kGenerations);
    const auto set = recovered.get("hybrid");
    EXPECT_EQ(set->generation, static_cast<std::uint64_t>(kGenerations));
    EXPECT_EQ(set->fingerprint, serve::fingerprint_models(last));
    serve::ModelSet direct;
    direct.name = "hybrid";
    direct.models = last;
    for (const std::int64_t n : {24, 96, 1024}) {
        const auto recovered_plan = serve::RequestEngine::compute_plan(
            *set, n, serve::Algorithm::kFpm, true);
        const auto direct_plan = serve::RequestEngine::compute_plan(
            direct, n, serve::Algorithm::kFpm, true);
        EXPECT_EQ(recovered_plan.blocks, direct_plan.blocks);
        EXPECT_EQ(recovered_plan.makespan, direct_plan.makespan);
    }

    // The STATS surface reports the recovered generation.
    serve::RequestEngine engine(recovered, {.workers = 1});
    const auto stats = serve::ServerStats::from_fields(
        serve::make_stats_reply(engine.stats(), recovered.size()).stats);
    EXPECT_EQ(stats.recovered_generation,
              static_cast<std::uint64_t>(kGenerations));
    store.abandon();
}

// ---------------------------------------------------------------------------
// Chaos: store.* faults armed against the live serve stack.  Every
// reply must decode cleanly (zero torn replies); store vetoes surface
// as typed store_unavailable errors; and after the dust settles a
// recovery from the same directory reproduces the served registry.
// ---------------------------------------------------------------------------

TEST(ModelStoreChaos, StoreFaultsNeverTearRepliesAndRecoveryMatches) {
    FaultGuard guard;
    TempDir dir;

    // A model CSV for the LOAD mutations the chaos clients fire.
    const std::string csv = dir.path + "/chaos_models.csv";
    core::save_speed_functions_csv(csv, synthetic_models(3, 32, 1.0));

    ModelRegistry registry;
    StoreOptions options;
    options.snapshot_every = 2;  // exercise the snapshot path mid-chaos
    ModelStore store(dir.path, options);
    store.recover(registry);
    store.attach(registry);
    registry.put("alpha", synthetic_models(3, 32, 1.0));

    serve::RequestEngine engine(registry,
                                {.workers = 2, .cache_capacity = 64});
    serve::SocketServer server(engine);
    server.start();

    fault::install(fault::FaultPlan::parse(
        "seed=99,store.append=0.3,store.fsync=0.2,store.snapshot=0.5"));

    constexpr std::size_t kClients = 4;
    constexpr std::size_t kRequests = 120;
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> store_errors{0};
    std::atomic<std::uint64_t> torn{0};

    fpm::test::run_concurrently(kClients, [&](std::size_t client_index) {
        serve::ServeConfig config;
        config.max_retries = 0;
        serve::ServeClient client("127.0.0.1", server.port(), config);
        for (std::size_t i = 0; i < kRequests; ++i) {
            const bool mutate = i % 3 == 0;
            const std::string line =
                mutate ? "LOAD set" + std::to_string(client_index) + " " + csv
                       : "PARTITION alpha 64 fpm";
            serve::Response response;
            try {
                response = serve::Response::decode(client.request(line));
            } catch (const fpm::Error&) {
                torn.fetch_add(1);  // transport failure or undecodable line
                return;
            }
            switch (response.kind) {
            case serve::Response::Kind::kError:
                if (response.error.empty()) {
                    torn.fetch_add(1);
                } else if (response.error_code ==
                           ErrorCode::kStoreUnavailable) {
                    store_errors.fetch_add(1);
                } else {
                    torn.fetch_add(1);  // only store vetoes are expected
                }
                break;
            case serve::Response::Kind::kLoaded:
            case serve::Response::Kind::kPartition:
                ok.fetch_add(1);
                break;
            default:
                torn.fetch_add(1);
                break;
            }
        }
    });

    fault::uninstall();
    server.stop();

    EXPECT_EQ(torn.load(), 0u);
    EXPECT_GT(ok.load(), 0u);
    EXPECT_GT(store_errors.load(), 0u)
        << "fault plan never fired; the chaos run proved nothing";

    // Durability invariant: whatever the clients were told committed is
    // exactly what a restart recovers — vetoed publishes left no trace.
    std::map<std::string, std::uint64_t> served;
    for (const auto& set : registry.snapshot()) {
        served[set->name] = set->fingerprint;
    }
    const std::uint64_t next = registry.next_generation();
    store.abandon();  // crash-style close: no final snapshot

    ModelRegistry recovered;
    ModelStore second(dir.path);
    second.recover(recovered);
    std::map<std::string, std::uint64_t> on_disk;
    for (const auto& set : recovered.snapshot()) {
        on_disk[set->name] = set->fingerprint;
    }
    EXPECT_EQ(on_disk, served);
    EXPECT_EQ(recovered.next_generation(), next);
    second.abandon();
}

} // namespace
} // namespace fpm::store

// Tests for the two-parameter FPM: bilinear interpolation, clamping, the
// builder, and its use as the shape oracle of the iterative partitioner.
#include <gtest/gtest.h>

#include <cmath>

#include "fpm/core/speed_surface.hpp"
#include "fpm/part/iterative.hpp"
#include "fpm/sim/node.hpp"

namespace fpm::core {
namespace {

SpeedSurface simple_surface() {
    // speeds(w, h) laid out heights-major over w in {1, 3}, h in {2, 6}:
    //   (1,2)=10 (3,2)=30
    //   (1,6)=20 (3,6)=60
    return SpeedSurface({1.0, 3.0}, {2.0, 6.0}, {10.0, 30.0, 20.0, 60.0},
                        "simple");
}

TEST(SpeedSurface, ExactAtKnots) {
    const SpeedSurface s = simple_surface();
    EXPECT_DOUBLE_EQ(s.speed(1.0, 2.0), 10.0);
    EXPECT_DOUBLE_EQ(s.speed(3.0, 2.0), 30.0);
    EXPECT_DOUBLE_EQ(s.speed(1.0, 6.0), 20.0);
    EXPECT_DOUBLE_EQ(s.speed(3.0, 6.0), 60.0);
}

TEST(SpeedSurface, BilinearMidpoints) {
    const SpeedSurface s = simple_surface();
    EXPECT_DOUBLE_EQ(s.speed(2.0, 2.0), 20.0);  // mid-w on bottom edge
    EXPECT_DOUBLE_EQ(s.speed(1.0, 4.0), 15.0);  // mid-h on left edge
    EXPECT_DOUBLE_EQ(s.speed(2.0, 4.0), 30.0);  // centre
}

TEST(SpeedSurface, ClampedOutsideGrid) {
    const SpeedSurface s = simple_surface();
    EXPECT_DOUBLE_EQ(s.speed(0.5, 1.0), 10.0);
    EXPECT_DOUBLE_EQ(s.speed(10.0, 10.0), 60.0);
}

TEST(SpeedSurface, TimeAndSquareSpeed) {
    const SpeedSurface s = simple_surface();
    EXPECT_DOUBLE_EQ(s.time(3.0, 2.0), 6.0 / 30.0);
    // square_speed(4) = speed(2, 2) = 20.
    EXPECT_DOUBLE_EQ(s.square_speed(4.0), 20.0);
}

TEST(SpeedSurface, Validation) {
    EXPECT_THROW(SpeedSurface({1.0}, {1.0, 2.0}, {1, 1}, ""), fpm::Error);
    EXPECT_THROW(SpeedSurface({1.0, 2.0}, {1.0, 2.0}, {1, 1, 1}, ""),
                 fpm::Error);
    EXPECT_THROW(SpeedSurface({2.0, 1.0}, {1.0, 2.0}, {1, 1, 1, 1}, ""),
                 fpm::Error);
    EXPECT_THROW(SpeedSurface({1.0, 2.0}, {1.0, 2.0}, {1, 0, 1, 1}, ""),
                 fpm::Error);
    const SpeedSurface s = simple_surface();
    EXPECT_THROW(s.speed(0.0, 1.0), fpm::Error);
}

TEST(SpeedSurface, BuilderComputesSpeedsFromTimes) {
    // Kernel whose time is exactly w*h / (w + h): speed = w + h.
    const auto surface = SpeedSurface::build(
        [](double w, double h) { return w * h / (w + h); },
        {1.0, 2.0, 4.0}, {1.0, 3.0}, "sum");
    EXPECT_NEAR(surface.speed(2.0, 3.0), 5.0, 1e-9);
    EXPECT_NEAR(surface.speed(4.0, 1.0), 5.0, 1e-9);
    EXPECT_THROW(SpeedSurface::build(nullptr, {1.0, 2.0}, {1.0, 2.0}, ""),
                 fpm::Error);
}

TEST(SpeedSurface, CapturesGpuShapeSensitivity) {
    // Build a surface of the simulated GTX680's v3 kernel and verify it
    // distinguishes shapes the area-only (square) model cannot: a very
    // wide rectangle of the same area is slower out of core (more pivot
    // row, shorter chunks).
    sim::HybridNode node(sim::ig_platform(), {});
    const auto kernel = [&](double w, double h) {
        return node.gpu_sim(1)
            .time_invocation(static_cast<std::int64_t>(std::lround(w)),
                             static_cast<std::int64_t>(std::lround(h)),
                             sim::KernelVersion::kV3)
            .total_s;
    };
    std::vector<double> axis;
    for (double v = 8.0; v <= 96.0; v *= std::sqrt(2.0)) {
        axis.push_back(std::round(v));
    }
    const auto surface = SpeedSurface::build(kernel, axis, axis, "gtx680-v3");

    // Same out-of-core area (~3600), different shapes.
    const double square = surface.time(60.0, 60.0);
    const double wide = surface.time(90.0, 40.0);
    const double exact_square = kernel(60.0, 60.0);
    const double exact_wide = kernel(90.0, 40.0);
    // Surface tracks both shapes within ~12 %.
    EXPECT_NEAR(square / exact_square, 1.0, 0.12);
    EXPECT_NEAR(wide / exact_wide, 1.0, 0.12);
    // And the shape effect it encodes matches the simulator's direction.
    EXPECT_EQ(wide > square, exact_wide > exact_square);
}

TEST(SpeedSurface, FeedsTheIterativePartitionerAsShapeOracle) {
    // Two synthetic devices with opposite shape preferences; the surfaces
    // drive the iterative partitioner's oracle directly.
    const auto prefers_tall = SpeedSurface::build(
        [](double w, double h) { return w * h / (50.0 + 5.0 * h - w); },
        {1.0, 8.0, 32.0}, {1.0, 8.0, 32.0}, "tall");
    const auto prefers_wide = SpeedSurface::build(
        [](double w, double h) { return w * h / (50.0 + 5.0 * w - h); },
        {1.0, 8.0, 32.0}, {1.0, 8.0, 32.0}, "wide");

    const std::vector<SpeedFunction> area_models = {
        SpeedFunction::constant(prefers_tall.square_speed(64.0), "tall"),
        SpeedFunction::constant(prefers_wide.square_speed(64.0), "wide"),
    };
    const part::RectTimeFn oracle = [&](std::size_t device,
                                        const part::Rect& rect) {
        const auto& surface = device == 0 ? prefers_tall : prefers_wide;
        return surface.time(static_cast<double>(rect.w),
                            static_cast<double>(rect.h));
    };
    const auto result = part::partition_iterative(area_models, 12, oracle);
    EXPECT_EQ(result.blocks.total(), 144);
    EXPECT_GT(result.makespan, 0.0);
    EXPECT_NO_THROW(result.layout.validate());
}

} // namespace
} // namespace fpm::core

// Tests for the FPM core representation: piecewise-linear speed functions
// and their monotone execution-time envelopes.
#include <gtest/gtest.h>

#include <cmath>

#include "fpm/core/speed_function.hpp"

namespace fpm::core {
namespace {

SpeedFunction ramp_function() {
    // Speed grows 10 -> 40 between x = 10 and x = 100.
    return SpeedFunction({{10.0, 10.0}, {40.0, 25.0}, {100.0, 40.0}}, "ramp");
}

TEST(SpeedFunction, InterpolatesExactlyAtKnots) {
    const SpeedFunction fn = ramp_function();
    EXPECT_DOUBLE_EQ(fn.speed(10.0), 10.0);
    EXPECT_DOUBLE_EQ(fn.speed(40.0), 25.0);
    EXPECT_DOUBLE_EQ(fn.speed(100.0), 40.0);
}

TEST(SpeedFunction, LinearBetweenKnots) {
    const SpeedFunction fn = ramp_function();
    EXPECT_DOUBLE_EQ(fn.speed(25.0), 17.5);  // halfway 10->40
    EXPECT_DOUBLE_EQ(fn.speed(70.0), 32.5);  // halfway 40->100
}

TEST(SpeedFunction, ClampedExtrapolation) {
    const SpeedFunction fn = ramp_function();
    EXPECT_DOUBLE_EQ(fn.speed(1.0), 10.0);
    EXPECT_DOUBLE_EQ(fn.speed(1000.0), 40.0);
}

TEST(SpeedFunction, TimeDefinition) {
    const SpeedFunction fn = ramp_function();
    EXPECT_DOUBLE_EQ(fn.time(0.0), 0.0);
    EXPECT_DOUBLE_EQ(fn.time(40.0), 40.0 / 25.0);
    EXPECT_DOUBLE_EQ(fn.time(200.0), 200.0 / 40.0);
}

TEST(SpeedFunction, BoundedDeviceHasInfiniteTimeBeyondMax) {
    const SpeedFunction fn({{10.0, 10.0}, {100.0, 20.0}}, "gpu", 150.0);
    EXPECT_TRUE(std::isfinite(fn.time(150.0)));
    EXPECT_TRUE(std::isinf(fn.time(151.0)));
    EXPECT_THROW(fn.speed(151.0), fpm::Error);
}

TEST(SpeedFunction, PointsSortedOnConstruction) {
    const SpeedFunction fn({{100.0, 40.0}, {10.0, 10.0}}, "unsorted");
    EXPECT_DOUBLE_EQ(fn.points().front().x, 10.0);
    EXPECT_DOUBLE_EQ(fn.points().back().x, 100.0);
}

TEST(SpeedFunction, Validation) {
    EXPECT_THROW(SpeedFunction(std::vector<SpeedPoint>{}), fpm::Error);
    EXPECT_THROW(SpeedFunction({{0.0, 5.0}}), fpm::Error);     // x must be > 0
    EXPECT_THROW(SpeedFunction({{1.0, 0.0}}), fpm::Error);     // speed > 0
    EXPECT_THROW(SpeedFunction({{1.0, 5.0}, {1.0, 6.0}}), fpm::Error);  // dup x
    const SpeedFunction fn = ramp_function();
    EXPECT_THROW(fn.speed(0.0), fpm::Error);
    EXPECT_THROW(fn.time(-1.0), fpm::Error);
}

TEST(SpeedFunction, ConstantFactory) {
    const SpeedFunction fn = SpeedFunction::constant(12.0, "cpm");
    EXPECT_DOUBLE_EQ(fn.speed(1.0), 12.0);
    EXPECT_DOUBLE_EQ(fn.speed(1e6), 12.0);
    EXPECT_DOUBLE_EQ(fn.time(24.0), 2.0);
    EXPECT_THROW(SpeedFunction::constant(0.0), fpm::Error);
}

TEST(SpeedFunction, GflopsConversion) {
    const SpeedFunction fn = SpeedFunction::constant(2.0);  // 2 blocks/s
    // 2 blocks/s * 2*b^3 flops per block, b = 10 -> 4000 flops/s.
    EXPECT_DOUBLE_EQ(fn.gflops(5.0, 10), 4000.0 / 1e9);
}

TEST(MonotoneTime, MatchesTimeForWellBehavedFunctions) {
    const SpeedFunction fn = ramp_function();
    const MonotoneTime envelope(fn);
    for (double x = 1.0; x <= 100.0; x += 7.3) {
        EXPECT_NEAR(envelope.time(x), fn.time(x), 0.02 * fn.time(x)) << x;
    }
}

TEST(MonotoneTime, InvertRoundTrip) {
    const SpeedFunction fn = ramp_function();
    const MonotoneTime envelope(fn);
    for (double x = 2.0; x <= 100.0; x += 4.9) {
        const double t = envelope.time(x);
        const double back = envelope.invert(t);
        EXPECT_NEAR(back, x, 0.25) << "x=" << x;
    }
}

TEST(MonotoneTime, InvertIsMonotone) {
    const SpeedFunction fn = ramp_function();
    const MonotoneTime envelope(fn);
    double previous = 0.0;
    for (double t = 0.0; t <= envelope.max_time(); t += envelope.max_time() / 37) {
        const double x = envelope.invert(t);
        EXPECT_GE(x, previous - 1e-9);
        previous = x;
    }
}

TEST(MonotoneTime, EnvelopeFlattensNonMonotoneTime) {
    // A super-linear speed cliff makes raw time non-monotone: speed drops
    // hard at x = 50 (e.g. the GPU memory limit), then the device is so
    // slow that t(60) > t(50), but right before the drop, t briefly
    // decreases going backwards.  The envelope must be non-decreasing.
    const SpeedFunction fn({{10.0, 10.0}, {49.0, 50.0}, {51.0, 5.0}}, "cliff");
    const MonotoneTime envelope(fn);
    double previous = 0.0;
    for (double x = 0.0; x <= 51.0; x += 0.5) {
        const double t = envelope.time(x);
        EXPECT_GE(t, previous - 1e-12) << "x=" << x;
        previous = t;
    }
}

TEST(MonotoneTime, InvertHonoursCapacityBound) {
    const SpeedFunction fn({{10.0, 10.0}, {100.0, 20.0}}, "gpu", 120.0);
    const MonotoneTime envelope(fn);
    EXPECT_DOUBLE_EQ(envelope.max_problem(), 120.0);
    // Beyond the max feasible time, the device saturates at its capacity.
    EXPECT_DOUBLE_EQ(envelope.invert(1e9), 120.0);
    EXPECT_DOUBLE_EQ(envelope.invert(0.0), 0.0);
}

TEST(MonotoneTime, UnboundedFunctionExtendsPastLastKnot) {
    const SpeedFunction fn = ramp_function();  // unbounded
    const MonotoneTime envelope(fn);
    EXPECT_TRUE(std::isinf(envelope.max_problem()));
    // Beyond the measured range, time extrapolates at the clamped speed
    // (40 blocks/s), so x = 200 takes 5 s and invert(5) = 200.
    EXPECT_NEAR(envelope.time(200.0), 5.0, 1e-9);
    EXPECT_NEAR(envelope.invert(5.0), 200.0, 1e-9);
}

} // namespace
} // namespace fpm::core

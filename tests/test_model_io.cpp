// Tests for model persistence: CSV round-trips, the versioned `fpmmodel`
// magic header (v2 written, headerless v1 still read, newer rejected),
// ParseError line/column diagnostics, schema validation and failure
// injection with malformed files.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "fpm/core/model_io.hpp"

namespace fpm::core {
namespace {

class ModelIoTest : public ::testing::Test {
protected:
    std::string path_ = "/tmp/fpmpart_model_io_test.csv";

    void TearDown() override { std::remove(path_.c_str()); }

    void write_file(const std::string& content) {
        std::ofstream out(path_);
        out << content;
    }
};

TEST_F(ModelIoTest, RoundTripPreservesEverything) {
    const std::vector<SpeedFunction> models = {
        SpeedFunction({{10.0, 5.5}, {100.0, 20.25}, {500.0, 18.125}}, "socket0"),
        SpeedFunction({{8.0, 900.0}, {1206.0, 950.0}}, "gtx680", 1206.0),
        SpeedFunction::constant(42.0, "cpm-device"),
    };
    save_speed_functions_csv(path_, models);
    const auto loaded = load_speed_functions_csv(path_);

    ASSERT_EQ(loaded.size(), models.size());
    for (std::size_t i = 0; i < models.size(); ++i) {
        EXPECT_EQ(loaded[i].name(), models[i].name());
        ASSERT_EQ(loaded[i].points().size(), models[i].points().size());
        for (std::size_t p = 0; p < models[i].points().size(); ++p) {
            EXPECT_DOUBLE_EQ(loaded[i].points()[p].x, models[i].points()[p].x);
            EXPECT_DOUBLE_EQ(loaded[i].points()[p].speed,
                             models[i].points()[p].speed);
        }
        if (std::isfinite(models[i].max_problem())) {
            EXPECT_DOUBLE_EQ(loaded[i].max_problem(), models[i].max_problem());
        } else {
            EXPECT_TRUE(std::isinf(loaded[i].max_problem()));
        }
    }
}

TEST_F(ModelIoTest, RoundTripIsBitExactForAwkwardDoubles) {
    // Values with no short decimal form: writing at default ostream
    // precision (~6 digits) would corrupt them.  Persistence must use
    // max_digits10 so every double survives the CSV round trip exactly.
    const double third = 1.0 / 3.0;
    const double pi = 3.14159265358979323846;
    const double tiny_sum = 0.1 + 0.2;  // 0.30000000000000004
    const std::vector<SpeedFunction> models = {
        SpeedFunction({{third, 123456.789012345678},
                       {pi, 1e17 / 3.0},
                       {97.0 / 7.0, tiny_sum}},
                      "awkward", 1e6 * pi),
    };
    save_speed_functions_csv(path_, models);
    const auto loaded = load_speed_functions_csv(path_);

    ASSERT_EQ(loaded.size(), 1U);
    ASSERT_EQ(loaded[0].points().size(), models[0].points().size());
    for (std::size_t p = 0; p < models[0].points().size(); ++p) {
        // Exact equality, not near-equality: bit-for-bit round trip.
        EXPECT_EQ(loaded[0].points()[p].x, models[0].points()[p].x);
        EXPECT_EQ(loaded[0].points()[p].speed, models[0].points()[p].speed);
    }
    EXPECT_EQ(loaded[0].max_problem(), models[0].max_problem());
}

TEST_F(ModelIoTest, LoadedModelInterpolatesIdentically) {
    const std::vector<SpeedFunction> models = {
        SpeedFunction({{10.0, 10.0}, {40.0, 25.0}, {100.0, 40.0}}, "ramp"),
    };
    save_speed_functions_csv(path_, models);
    const auto loaded = load_speed_functions_csv(path_);
    for (double x = 5.0; x <= 150.0; x += 7.0) {
        EXPECT_DOUBLE_EQ(loaded[0].speed(x), models[0].speed(x)) << x;
    }
}

TEST_F(ModelIoTest, SaveValidation) {
    EXPECT_THROW(save_speed_functions_csv(path_, {}), fpm::Error);
    EXPECT_THROW(save_speed_functions_csv(
                     "/nonexistent-dir/m.csv",
                     {SpeedFunction::constant(1.0, "a")}),
                 fpm::Error);
    EXPECT_THROW(
        save_speed_functions_csv(path_, {SpeedFunction::constant(1.0, "a,b")}),
        fpm::Error);
}

TEST_F(ModelIoTest, MissingFileThrows) {
    EXPECT_THROW(load_speed_functions_csv("/tmp/does-not-exist-fpmpart.csv"),
                 fpm::Error);
}

TEST_F(ModelIoTest, BadHeaderThrows) {
    write_file("nope,nope\n");
    EXPECT_THROW(load_speed_functions_csv(path_), fpm::Error);
}

TEST_F(ModelIoTest, MalformedRowThrows) {
    write_file("name,max_problem,x,speed\ndev,inf,10\n");
    EXPECT_THROW(load_speed_functions_csv(path_), fpm::Error);
    write_file("name,max_problem,x,speed\ndev,inf,abc,5\n");
    EXPECT_THROW(load_speed_functions_csv(path_), fpm::Error);
}

TEST_F(ModelIoTest, EmptyBodyThrows) {
    write_file("name,max_problem,x,speed\n");
    EXPECT_THROW(load_speed_functions_csv(path_), fpm::Error);
}

TEST_F(ModelIoTest, InvalidPointsRejectedByModelInvariants) {
    // Negative speed violates the SpeedFunction contract on load.
    write_file("name,max_problem,x,speed\ndev,inf,10,-5\n");
    EXPECT_THROW(load_speed_functions_csv(path_), fpm::Error);
    // Duplicate x likewise.
    write_file("name,max_problem,x,speed\ndev,inf,10,5\ndev,inf,10,6\n");
    EXPECT_THROW(load_speed_functions_csv(path_), fpm::Error);
}

TEST_F(ModelIoTest, BlankLinesIgnored) {
    write_file("name,max_problem,x,speed\ndev,inf,10,5\n\ndev,inf,20,6\n");
    const auto loaded = load_speed_functions_csv(path_);
    ASSERT_EQ(loaded.size(), 1U);
    EXPECT_EQ(loaded[0].points().size(), 2U);
}

TEST_F(ModelIoTest, WritesTheV2MagicHeader) {
    save_speed_functions_csv(path_, {SpeedFunction::constant(1.0, "dev")});
    std::ifstream in(path_);
    std::string first_line;
    ASSERT_TRUE(std::getline(in, first_line));
    EXPECT_EQ(first_line, std::string(kModelFileMagic) + " v" +
                              std::to_string(kModelFormatVersion));
}

TEST_F(ModelIoTest, HeaderlessV1FilesStillLoad) {
    write_file("name,max_problem,x,speed\ndev,inf,10,5\ndev,inf,20,6\n");
    const auto loaded = load_speed_functions_csv(path_);
    ASSERT_EQ(loaded.size(), 1U);
    EXPECT_EQ(loaded[0].points().size(), 2U);
}

TEST_F(ModelIoTest, NewerFormatVersionsAreRejectedNotMisparsed) {
    write_file("fpmmodel v" + std::to_string(kModelFormatVersion + 1) +
               "\nname,max_problem,x,speed\ndev,inf,10,5\n");
    try {
        (void)load_speed_functions_csv(path_);
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 1U);
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
}

TEST_F(ModelIoTest, ParseErrorPinpointsLineAndColumn) {
    // Row 3 of the file (header, good row, bad row); the non-numeric
    // speed sits in CSV column 4.
    write_file("fpmmodel v2\nname,max_problem,x,speed\ndev,inf,10,5\n"
               "dev,inf,20,bogus\n");
    try {
        (void)load_speed_functions_csv(path_);
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.origin(), path_);
        EXPECT_EQ(e.line(), 4U);
        EXPECT_EQ(e.column(), 4U);
        EXPECT_NE(std::string(e.what()).find(path_), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("4"), std::string::npos);
    }
}

TEST_F(ModelIoTest, StreamEntryPointsRoundTripAndLabelTheOrigin) {
    // The durable store embeds model text in WAL records through the
    // stream API; the caller-supplied origin labels its diagnostics.
    const std::vector<SpeedFunction> models = {
        SpeedFunction({{10.0, 5.5}, {100.0, 20.25}}, "socket0"),
        SpeedFunction({{8.0, 900.0}, {1206.0, 950.0}}, "gtx680", 1206.0),
    };
    std::ostringstream out;
    write_speed_functions(out, models);

    std::istringstream in(out.str());
    const auto loaded = read_speed_functions(in, "wal record");
    ASSERT_EQ(loaded.size(), 2U);
    EXPECT_EQ(loaded[0].name(), "socket0");
    EXPECT_EQ(loaded[1].name(), "gtx680");

    std::istringstream bad("fpmmodel v2\nname,max_problem,x,speed\nd,inf,1\n");
    try {
        (void)read_speed_functions(bad, "wal record");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.origin(), "wal record");
        EXPECT_NE(std::string(e.what()).find("wal record"),
                  std::string::npos);
    }
}

TEST_F(ModelIoTest, ScaledCopy) {
    const SpeedFunction fn({{10.0, 4.0}, {20.0, 8.0}}, "dev", 30.0);
    const SpeedFunction doubled = fn.scaled(2.0);
    EXPECT_DOUBLE_EQ(doubled.speed(10.0), 8.0);
    EXPECT_DOUBLE_EQ(doubled.speed(20.0), 16.0);
    EXPECT_DOUBLE_EQ(doubled.max_problem(), 30.0);
    EXPECT_EQ(doubled.name(), "dev");
    EXPECT_THROW(fn.scaled(0.0), fpm::Error);
}

} // namespace
} // namespace fpm::core

// End-to-end numerical tests of the heterogeneous parallel column-based
// matrix multiplication with real arithmetic: the partitioned product must
// match a plain GEMM for arbitrary layouts, including GPU devices routed
// through the out-of-core executor.
#include <gtest/gtest.h>

#include "fpm/app/matmul_real.hpp"
#include "fpm/blas/gemm.hpp"
#include "fpm/common/rng.hpp"
#include "fpm/part/column2d.hpp"

namespace fpm::app {
namespace {

constexpr std::size_t kBlock = 8;

blas::Matrix<float> random_matrix(std::size_t n, std::uint64_t seed) {
    blas::Matrix<float> m(n, n);
    Rng rng(seed);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            m(r, c) = static_cast<float>(rng.uniform(-1.0, 1.0));
        }
    }
    return m;
}

void expect_matches_reference(const part::ColumnLayout& layout,
                              const std::vector<RealDevice>& devices,
                              std::uint64_t seed) {
    const std::size_t elems = static_cast<std::size_t>(layout.n) * kBlock;
    const auto a = random_matrix(elems, seed);
    const auto b = random_matrix(elems, seed + 1);
    blas::Matrix<float> c(elems, elems, 0.0F);
    blas::Matrix<float> expected(elems, elems, 0.0F);

    const auto report =
        run_real_matmul(layout, devices, kBlock, a.view(), b.view(), c.view());
    blas::gemm<float>(a.view(), b.view(), expected.view());

    EXPECT_LT(blas::max_abs_diff<float>(c.view(), expected.view()),
              1e-3 * static_cast<double>(layout.n));
    EXPECT_GT(report.seconds, 0.0);
}

TEST(MatmulReal, SingleCpuDevice) {
    const part::ColumnLayout layout =
        part::column_partition(4, std::vector<std::int64_t>{16});
    expect_matches_reference(layout, {RealDevice{2, false, 0.0, {}}}, 11);
}

TEST(MatmulReal, FourCpuDevices) {
    const part::ColumnLayout layout =
        part::column_partition(6, std::vector<std::int64_t>{9, 9, 9, 9});
    std::vector<RealDevice> devices(4, RealDevice{1, false, 0.0, {}});
    expect_matches_reference(layout, devices, 13);
}

TEST(MatmulReal, HeterogeneousAreas) {
    const part::ColumnLayout layout =
        part::column_partition(8, std::vector<std::int64_t>{40, 12, 8, 4});
    std::vector<RealDevice> devices(4, RealDevice{1, false, 0.0, {}});
    devices[0].threads = 3;
    expect_matches_reference(layout, devices, 17);
}

TEST(MatmulReal, GpuDeviceInCore) {
    const part::ColumnLayout layout =
        part::column_partition(6, std::vector<std::int64_t>{24, 12});
    std::vector<RealDevice> devices(2);
    devices[0].is_gpu = true;
    devices[0].gpu_capacity_blocks = 100.0;  // fits entirely
    devices[0].gpu_version = sim::KernelVersion::kV2;
    devices[1].threads = 2;
    expect_matches_reference(layout, devices, 19);
}

TEST(MatmulReal, GpuDeviceOutOfCoreAllVersions) {
    for (const auto version :
         {sim::KernelVersion::kV1, sim::KernelVersion::kV2,
          sim::KernelVersion::kV3}) {
        const part::ColumnLayout layout =
            part::column_partition(8, std::vector<std::int64_t>{48, 16});
        std::vector<RealDevice> devices(2);
        devices[0].is_gpu = true;
        devices[0].gpu_capacity_blocks = 22.0;  // forces several chunks
        devices[0].gpu_version = version;
        devices[1].threads = 1;
        expect_matches_reference(layout, devices,
                                 23 + static_cast<std::uint64_t>(version));
    }
}

TEST(MatmulReal, HybridTwoGpusFourCpus) {
    // A miniature of the paper's hybrid node: 2 "GPUs" + 4 CPU sockets.
    const part::ColumnLayout layout = part::column_partition(
        10, std::vector<std::int64_t>{40, 16, 11, 11, 11, 11});
    std::vector<RealDevice> devices(6);
    devices[0].is_gpu = true;
    devices[0].gpu_capacity_blocks = 34.0;
    devices[0].gpu_version = sim::KernelVersion::kV3;
    devices[1].is_gpu = true;
    devices[1].gpu_capacity_blocks = 28.0;
    devices[1].gpu_version = sim::KernelVersion::kV2;
    for (std::size_t i = 2; i < 6; ++i) {
        devices[i].threads = 1;
    }
    expect_matches_reference(layout, devices, 29);
}

TEST(MatmulReal, ZeroAreaDeviceIsIdle) {
    const part::ColumnLayout layout =
        part::column_partition(4, std::vector<std::int64_t>{16, 0});
    std::vector<RealDevice> devices(2, RealDevice{1, false, 0.0, {}});
    expect_matches_reference(layout, devices, 31);
}

TEST(MatmulReal, GpuTrafficReported) {
    const part::ColumnLayout layout =
        part::column_partition(6, std::vector<std::int64_t>{30, 6});
    std::vector<RealDevice> devices(2);
    devices[0].is_gpu = true;
    devices[0].gpu_capacity_blocks = 20.0;
    devices[0].gpu_version = sim::KernelVersion::kV2;
    devices[1].threads = 1;

    const std::size_t elems = 6 * kBlock;
    const auto a = random_matrix(elems, 37);
    const auto b = random_matrix(elems, 38);
    blas::Matrix<float> c(elems, elems, 0.0F);
    const auto report =
        run_real_matmul(layout, devices, kBlock, a.view(), b.view(), c.view());

    EXPECT_GT(report.gpu_traffic[0].upload_c_blocks, 0.0);
    EXPECT_GT(report.gpu_traffic[0].upload_pivot_blocks, 0.0);
    EXPECT_DOUBLE_EQ(report.gpu_traffic[1].upload_c_blocks, 0.0);  // CPU device
    ASSERT_EQ(report.device_compute_seconds.size(), 2U);
    EXPECT_GT(report.device_compute_seconds[0], 0.0);
}

TEST(MatmulReal, InfeasibleGpuCapacitySurfacesError) {
    // A capacity too small for even one double-buffered band: the GPU
    // rank fails, the error propagates, and no rank deadlocks.
    const part::ColumnLayout layout =
        part::column_partition(8, std::vector<std::int64_t>{48, 16});
    std::vector<RealDevice> devices(2);
    devices[0].is_gpu = true;
    devices[0].gpu_capacity_blocks = 8.0;  // < one aligned band for v2
    devices[0].gpu_version = sim::KernelVersion::kV2;
    devices[1].threads = 1;

    const std::size_t elems = 8 * kBlock;
    const auto a = random_matrix(elems, 41);
    const auto b = random_matrix(elems, 42);
    blas::Matrix<float> c(elems, elems, 0.0F);
    EXPECT_THROW(
        run_real_matmul(layout, devices, kBlock, a.view(), b.view(), c.view()),
        fpm::Error);
}

TEST(MatmulReal, ShapeValidation) {
    const part::ColumnLayout layout =
        part::column_partition(4, std::vector<std::int64_t>{16});
    const std::vector<RealDevice> devices(1);
    blas::Matrix<float> wrong(3 * kBlock, 3 * kBlock);
    blas::Matrix<float> right(4 * kBlock, 4 * kBlock);
    EXPECT_THROW(run_real_matmul(layout, devices, kBlock, wrong.view(),
                                 right.view(), right.view()),
                 fpm::Error);
    const std::vector<RealDevice> too_many(2);
    EXPECT_THROW(run_real_matmul(layout, too_many, kBlock, right.view(),
                                 right.view(), right.view()),
                 fpm::Error);
}

} // namespace
} // namespace fpm::app

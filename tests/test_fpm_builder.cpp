// Tests for the empirical FPM builder: grid placement, adaptive refinement
// around performance cliffs, and integration with the reliability loop.
#include <gtest/gtest.h>

#include <cmath>

#include "fpm/common/rng.hpp"
#include "fpm/core/fpm_builder.hpp"
#include "fpm/core/kernel_bench.hpp"
#include "fpm/sim/node.hpp"

namespace fpm::core {
namespace {

/// Synthetic device whose speed halves abruptly at x = 500 (a memory
/// cliff), with an analytic form the tests can compare against.
class CliffBench final : public KernelBenchmark {
public:
    [[nodiscard]] std::string name() const override { return "cliff"; }
    double run(double x) override {
        ++calls_;
        return x / speed(x);
    }
    static double speed(double x) { return x < 500.0 ? 100.0 : 50.0; }
    std::size_t calls() const { return calls_; }

private:
    std::size_t calls_ = 0;
};

FpmBuildOptions quick_options(double x_min = 4.0, double x_max = 2000.0) {
    FpmBuildOptions options;
    options.x_min = x_min;
    options.x_max = x_max;
    options.initial_points = 8;
    options.max_points = 32;
    options.reliability.min_repetitions = 1;
    options.reliability.max_repetitions = 1;
    return options;
}

TEST(FpmBuilder, CoversRequestedRange) {
    CliffBench bench;
    const SpeedFunction fn = build_fpm(bench, quick_options());
    EXPECT_NEAR(fn.points().front().x, 4.0, 1e-9);
    EXPECT_NEAR(fn.points().back().x, 2000.0, 1e-6);
    EXPECT_EQ(fn.name(), "cliff");
}

TEST(FpmBuilder, RefinementLocalisesTheCliff) {
    CliffBench bench;
    const SpeedFunction fn = build_fpm(bench, quick_options());

    // The interpolated model must track the true speed closely on both
    // sides of the cliff; without refinement the geometric grid would
    // interpolate across it with a large error band.
    EXPECT_NEAR(fn.speed(300.0), 100.0, 5.0);
    EXPECT_NEAR(fn.speed(1200.0), 50.0, 2.5);

    // The transition interval pinned down by refinement must be narrow:
    // find the knots bracketing the cliff.
    double below = 0.0;
    double above = 1e18;
    for (const auto& point : fn.points()) {
        if (point.speed > 90.0 && point.x > below) {
            below = point.x;
        }
        if (point.speed < 60.0 && point.x < above) {
            above = point.x;
        }
    }
    EXPECT_LT(above - below, 200.0)
        << "cliff bracket [" << below << ", " << above << "] too wide";
}

TEST(FpmBuilder, RespectsMaxPoints) {
    CliffBench bench;
    FpmBuildOptions options = quick_options();
    options.max_points = 10;
    const SpeedFunction fn = build_fpm(bench, options);
    EXPECT_LE(fn.points().size(), 10U);
}

TEST(FpmBuilder, SmoothDeviceNeedsNoRefinement) {
    class SmoothBench final : public KernelBenchmark {
    public:
        [[nodiscard]] std::string name() const override { return "smooth"; }
        double run(double x) override {
            ++calls;
            return x / 80.0;
        }
        std::size_t calls = 0;
    } bench;
    FpmBuildOptions options = quick_options();
    const SpeedFunction fn = build_fpm(bench, options);
    EXPECT_EQ(fn.points().size(), options.initial_points);
    // Initial grid + one midpoint probe per initial segment.
    EXPECT_EQ(bench.calls, options.initial_points + (options.initial_points - 1));
}

TEST(FpmBuilder, LinearGridOption) {
    CliffBench bench;
    FpmBuildOptions options = quick_options(100.0, 800.0);
    options.geometric_grid = false;
    options.initial_points = 8;
    options.max_points = 8;  // no refinement: pure grid
    const SpeedFunction fn = build_fpm(bench, options);
    ASSERT_EQ(fn.points().size(), 8U);
    const double step = fn.points()[1].x - fn.points()[0].x;
    EXPECT_NEAR(step, 100.0, 1e-9);
}

TEST(FpmBuilder, HonoursDeviceMaxProblem) {
    class BoundedBench final : public KernelBenchmark {
    public:
        [[nodiscard]] std::string name() const override { return "bounded"; }
        double run(double x) override { return x / 10.0; }
        [[nodiscard]] double max_problem() const override { return 300.0; }
    } bench;
    const SpeedFunction fn = build_fpm(bench, quick_options(4.0, 2000.0));
    EXPECT_LE(fn.points().back().x, 300.0 + 1e-9);
    EXPECT_DOUBLE_EQ(fn.max_problem(), 300.0);
}

TEST(FpmBuilder, OptionValidation) {
    CliffBench bench;
    FpmBuildOptions options = quick_options();
    options.x_min = 0.0;
    EXPECT_THROW(build_fpm(bench, options), fpm::Error);
    options = quick_options();
    options.x_max = options.x_min;
    EXPECT_THROW(build_fpm(bench, options), fpm::Error);
    options = quick_options();
    options.initial_points = 1;
    EXPECT_THROW(build_fpm(bench, options), fpm::Error);
    options = quick_options();
    options.max_points = options.initial_points - 1;
    EXPECT_THROW(build_fpm(bench, options), fpm::Error);
}

TEST(FpmBuilder, RangeBeyondDeviceCapacityThrows) {
    class TinyBench final : public KernelBenchmark {
    public:
        [[nodiscard]] std::string name() const override { return "tiny"; }
        double run(double x) override { return x; }
        [[nodiscard]] double max_problem() const override { return 2.0; }
    } bench;
    EXPECT_THROW(build_fpm(bench, quick_options(4.0, 100.0)), fpm::Error);
}

TEST(FpmBuilder, NoisyMeasurementsStillProduceUsableModel) {
    // Simulated GTX680 with 3 % measurement noise: the reliability loop
    // averages it out and the model lands near the exact curve.
    sim::HybridNode noisy(sim::ig_platform(), {.noise_sigma = 0.03});
    sim::HybridNode exact(sim::ig_platform(), {});
    SimGpuKernelBench bench(noisy, 1, sim::KernelVersion::kV2);

    FpmBuildOptions options = quick_options(8.0, 3000.0);
    options.reliability.min_repetitions = 3;
    options.reliability.max_repetitions = 40;
    options.reliability.target_relative_error = 0.02;
    const SpeedFunction fn = build_fpm(bench, options);

    for (double x : {100.0, 700.0, 2500.0}) {
        const double exact_speed =
            x / exact.gpu_kernel_time(1, x, sim::KernelVersion::kV2);
        EXPECT_NEAR(fn.speed(x) / exact_speed, 1.0, 0.12) << "x=" << x;
    }
}

TEST(FpmBuilder, CapturesGpuMemoryCliffOnSimulatedNode) {
    sim::HybridNode node(sim::ig_platform(), {});
    SimGpuKernelBench bench(node, 1, sim::KernelVersion::kV2);
    const SpeedFunction fn = build_fpm(bench, quick_options(8.0, 4000.0));
    const double cap = node.gpu_model(1).capacity_blocks();
    EXPECT_GT(fn.speed(cap * 0.7), 1.5 * fn.speed(cap * 2.0));
}

} // namespace
} // namespace fpm::core

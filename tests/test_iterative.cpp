// Tests for the shape-aware iterative partitioner: convergence, the
// never-worse-than-one-shot guarantee, and correction of models that
// mispredict on non-square rectangles.
#include <gtest/gtest.h>

#include <cmath>

#include "fpm/common/rng.hpp"
#include "fpm/part/iterative.hpp"
#include "fpm/sim/node.hpp"

namespace fpm::part {
namespace {

using core::SpeedFunction;

/// Shape oracle that matches the area models exactly (no shape effect).
RectTimeFn area_only_oracle(std::vector<SpeedFunction> models) {
    return [models = std::move(models)](std::size_t device, const Rect& rect) {
        return models[device].time(static_cast<double>(rect.area()));
    };
}

TEST(Iterative, NoShapeEffectConvergesImmediately) {
    const std::vector<SpeedFunction> models = {
        SpeedFunction::constant(10.0, "a"),
        SpeedFunction::constant(30.0, "b"),
    };
    const auto result =
        partition_iterative(models, 20, area_only_oracle(models));
    EXPECT_TRUE(result.converged);
    EXPECT_LE(result.rounds, 2U);
    EXPECT_EQ(result.blocks.total(), 400);
    // Proportional split survives the loop.
    EXPECT_NEAR(static_cast<double>(result.blocks.blocks[1]) /
                    static_cast<double>(result.blocks.blocks[0]),
                3.0, 0.2);
}

TEST(Iterative, CorrectsShapeSensitiveDevice) {
    // Device 0 is area-fast but pays a heavy penalty on wide rectangles
    // (akin to a GPU whose pivot-row traffic scales with width); the area
    // model alone overloads it.
    const std::vector<SpeedFunction> models = {
        SpeedFunction::constant(40.0, "wide-penalised"),
        SpeedFunction::constant(20.0, "steady"),
    };
    const RectTimeFn oracle = [&](std::size_t device, const Rect& rect) {
        const double area_time =
            models[device].time(static_cast<double>(rect.area()));
        if (device == 0) {
            // +4 % per block of width: wide rectangles are slow.
            return area_time * (1.0 + 0.04 * static_cast<double>(rect.w));
        }
        return area_time;
    };

    const std::int64_t n = 24;
    const auto one_shot = [&]() {
        const auto continuous =
            partition_fpm(models, static_cast<double>(n) * n);
        const auto blocks = round_partition(continuous.partition, n * n, models);
        const auto layout = column_partition(n, blocks.blocks);
        double worst = 0.0;
        for (std::size_t i = 0; i < layout.rects.size(); ++i) {
            if (layout.rects[i].area() > 0) {
                worst = std::max(worst, oracle(i, layout.rects[i]));
            }
        }
        return worst;
    }();

    const auto refined = partition_iterative(models, n, oracle);
    EXPECT_LE(refined.makespan, one_shot + 1e-12);
    EXPECT_LT(refined.makespan, 0.95 * one_shot)
        << "refinement should visibly rebalance a 4%/width-block penalty";
    EXPECT_EQ(refined.blocks.total(), n * n);
    EXPECT_NO_THROW(refined.layout.validate());
}

TEST(Iterative, NeverWorseThanFirstRound) {
    // Even with an adversarial non-monotone oracle the best-seen layout is
    // returned.
    const std::vector<SpeedFunction> models = {
        SpeedFunction::constant(10.0, "a"),
        SpeedFunction::constant(10.0, "b"),
        SpeedFunction::constant(10.0, "c"),
    };
    fpm::Rng rng(3);
    const RectTimeFn oracle = [&models, &rng](std::size_t device,
                                              const Rect& rect) mutable {
        return models[device].time(static_cast<double>(rect.area())) *
               rng.uniform(0.8, 1.25);
    };
    const auto result = partition_iterative(models, 12, oracle);
    EXPECT_GT(result.makespan, 0.0);
    EXPECT_EQ(result.blocks.total(), 144);
}

TEST(Iterative, HonoursMaxRounds) {
    const std::vector<SpeedFunction> models = {
        SpeedFunction::constant(10.0, "a"),
        SpeedFunction::constant(20.0, "b"),
    };
    // An oracle that keeps oscillating prevents convergence.
    int flip = 0;
    const RectTimeFn oracle = [&](std::size_t device, const Rect& rect) {
        ++flip;
        const double wobble = (flip % 2 == 0) ? 1.3 : 0.7;
        return models[device].time(static_cast<double>(rect.area())) * wobble;
    };
    IterativeOptions options;
    options.max_rounds = 3;
    options.convergence_tolerance = 1e-9;
    const auto result = partition_iterative(models, 10, oracle, options);
    EXPECT_LE(result.rounds, 3U);
}

TEST(Iterative, Validation) {
    const std::vector<SpeedFunction> models = {SpeedFunction::constant(1.0)};
    EXPECT_THROW(partition_iterative({}, 10, area_only_oracle(models)),
                 fpm::Error);
    EXPECT_THROW(partition_iterative(models, 0, area_only_oracle(models)),
                 fpm::Error);
    EXPECT_THROW(partition_iterative(models, 10, nullptr), fpm::Error);
    IterativeOptions options;
    options.max_rounds = 0;
    EXPECT_THROW(partition_iterative(models, 10, area_only_oracle(models),
                                     options),
                 fpm::Error);
}

TEST(Iterative, SimulatedHybridNodeEndToEnd) {
    // The real use: area FPMs of the simulated node + the simulator as the
    // shape oracle.  The loop must terminate and produce a valid layout
    // whose makespan is within a whisker of the area-based one (shapes on
    // this platform are near-square, as the paper argues).
    sim::HybridNode node(sim::ig_platform(), {});
    const std::vector<SpeedFunction> models = {
        // Hand-sampled area models of the two GPUs + two sockets.
        SpeedFunction({{100.0, 350.0}, {800.0, 380.0}, {2000.0, 250.0}}, "g1"),
        SpeedFunction({{100.0, 90.0}, {800.0, 95.0}}, "g2"),
        SpeedFunction({{100.0, 45.0}, {800.0, 46.0}}, "s0"),
        SpeedFunction({{100.0, 45.0}, {800.0, 46.0}}, "s1"),
    };
    const RectTimeFn oracle = [&node](std::size_t device, const Rect& rect) {
        if (device == 0) {
            return node.gpu_sim(1)
                .time_invocation(rect.w, rect.h, sim::KernelVersion::kV3)
                .total_s;
        }
        if (device == 1) {
            return node.gpu_sim(0)
                .time_invocation(rect.w, rect.h, sim::KernelVersion::kV3)
                .total_s;
        }
        return node.cpu_kernel_time(device - 2, 6,
                                    static_cast<double>(rect.area()));
    };
    const auto result = partition_iterative(models, 40, oracle);
    EXPECT_EQ(result.blocks.total(), 1600);
    EXPECT_GT(result.makespan, 0.0);
    EXPECT_NO_THROW(result.layout.validate());
}

} // namespace
} // namespace fpm::part

// Round-trip and fuzz-ish decode coverage for every v4 protocol message
// type (FEEDBACK and the adapt_* STATS fields arrived in v4; a v3 `OK
// PONG v3` line must still decode so version mismatches surface as a
// typed error, not a parse failure).  The wire spec these tests pin down is docs/protocol.md; the
// invariant under fuzzing is that decode() either succeeds or throws
// fpm::Error — truncated, oversized or garbage input must never crash,
// hang, or escape as a different exception type.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fpm/common/error.hpp"
#include "fpm/common/rng.hpp"
#include "fpm/serve/protocol.hpp"

namespace {

using namespace fpm;
using namespace fpm::serve;

// Decoding `line` must either produce a value or throw fpm::Error.
// Returns true when it decoded.
bool request_decodes(const std::string& line) {
    try {
        (void)Request::decode(line);
        return true;
    } catch (const Error&) {
        return false;
    }
}

bool response_decodes(const std::string& line) {
    try {
        (void)Response::decode(line);
        return true;
    } catch (const Error&) {
        return false;
    }
}

PartitionReply sample_partition_reply(bool degraded, bool with_rects) {
    PartitionReply reply;
    reply.model = "hybrid";
    reply.generation = 7;
    reply.n = 640;
    reply.algorithm = Algorithm::kFpm;
    reply.cached = true;
    reply.coalesced = false;
    reply.degraded = degraded;
    reply.balanced_time = 0.12345678901234567;
    reply.makespan = 1e-9;
    reply.comm_cost = 4242;
    reply.blocks = {100, 250, 290};
    if (with_rects) {
        reply.rects = {part::Rect{0, 0, 100, 640}, part::Rect{100, 0, 250, 640},
                       part::Rect{350, 0, 290, 640}};
    }
    return reply;
}

// ---------------------------------------------------------------------------
// Request round trips
// ---------------------------------------------------------------------------

TEST(ProtocolRequest, EveryKindRoundTrips) {
    std::vector<Request> requests;

    Request ping;  // default
    requests.push_back(ping);

    Request quit;
    quit.kind = Request::Kind::kQuit;
    requests.push_back(quit);

    Request stats;
    stats.kind = Request::Kind::kStats;
    requests.push_back(stats);

    Request health;
    health.kind = Request::Kind::kHealth;
    requests.push_back(health);

    Request models;
    models.kind = Request::Kind::kModels;
    requests.push_back(models);

    Request load;
    load.kind = Request::Kind::kLoad;
    load.name = "hybrid";
    load.path = "/tmp/models.csv";
    requests.push_back(load);

    Request partition;
    partition.kind = Request::Kind::kPartition;
    partition.partition.model_set = "hybrid";
    partition.partition.n = 512;
    partition.partition.algorithm = Algorithm::kCpm;
    requests.push_back(partition);

    Request nolayout = partition;
    nolayout.partition.with_layout = false;
    nolayout.partition.algorithm = Algorithm::kEven;
    requests.push_back(nolayout);

    Request feedback;
    feedback.kind = Request::Kind::kFeedback;
    feedback.feedback.model_set = "hybrid";
    feedback.feedback.device = 2;
    feedback.feedback.problem_size = 1536.5;
    feedback.feedback.seconds = 0.12345678901234567;
    requests.push_back(feedback);

    for (const Request& request : requests) {
        const std::string line = request.encode();
        const Request decoded = Request::decode(line);
        EXPECT_EQ(decoded.kind, request.kind) << line;
        EXPECT_EQ(decoded.encode(), line) << line;
    }
}

TEST(ProtocolRequest, RejectsMalformedLines) {
    const std::vector<std::string> bad = {
        "",
        "   ",
        "BOGUS",
        "PING extra",
        "QUIT now",
        "STATS verbose",
        "HEALTH deep",
        "MODELS all",
        "LOAD onlyname",
        "LOAD name path extra",
        "PARTITION",
        "PARTITION set",
        "PARTITION set 10",
        "PARTITION set 10 wat",
        "PARTITION set abc fpm",
        "PARTITION set 0 fpm",
        "PARTITION set -5 fpm",
        "PARTITION set 10 fpm badopt",
        "PARTITION set 10 fpm nolayout extra",
        "partition set 10 fpm",  // verbs are case-sensitive
        "FEEDBACK",
        "FEEDBACK set",
        "FEEDBACK set 0 100",
        "FEEDBACK set 0 100 1.5 extra",
        "FEEDBACK set -1 100 1.5",   // negative device
        "FEEDBACK set 0 0 1.5",      // zero size
        "FEEDBACK set 0 100 0",      // zero time
        "FEEDBACK set 0 100 -2",     // negative time
        "FEEDBACK set zero 100 1.5", // non-numeric device
        "feedback set 0 100 1.5",
    };
    for (const std::string& line : bad) {
        EXPECT_FALSE(request_decodes(line)) << "accepted: " << line;
    }
}

TEST(ProtocolRequest, FeedbackDoublesRoundTripBitForBit) {
    Request request;
    request.kind = Request::Kind::kFeedback;
    request.feedback.model_set = "hybrid";
    request.feedback.device = 1;
    request.feedback.problem_size = 0.1 + 0.2;  // not exactly 0.3
    request.feedback.seconds = 1.0 / 3.0;
    const Request decoded = Request::decode(request.encode());
    EXPECT_EQ(decoded.feedback.model_set, "hybrid");
    EXPECT_EQ(decoded.feedback.device, 1);
    EXPECT_EQ(decoded.feedback.problem_size, request.feedback.problem_size);
    EXPECT_EQ(decoded.feedback.seconds, request.feedback.seconds);
    EXPECT_EQ(decoded.encode(), request.encode());
}

// ---------------------------------------------------------------------------
// Response round trips
// ---------------------------------------------------------------------------

TEST(ProtocolResponse, ErrorRoundTrips) {
    const Response error = Response::make_error("it\nbroke\rbadly");
    const std::string line = error.encode();
    EXPECT_EQ(line.find('\n'), std::string::npos);
    const Response decoded = Response::decode(line);
    EXPECT_EQ(decoded.kind, Response::Kind::kError);
    EXPECT_EQ(decoded.error, "it broke badly");
}

TEST(ProtocolResponse, PongByeRoundTrip) {
    Response pong;
    pong.kind = Response::Kind::kPong;
    pong.version = kProtocolVersion;
    const Response decoded_pong = Response::decode(pong.encode());
    EXPECT_EQ(decoded_pong.kind, Response::Kind::kPong);
    EXPECT_EQ(decoded_pong.version, kProtocolVersion);

    Response bye;
    bye.kind = Response::Kind::kBye;
    EXPECT_EQ(Response::decode(bye.encode()).kind, Response::Kind::kBye);
}

TEST(ProtocolResponse, LoadedRoundTrips) {
    Response loaded;
    loaded.kind = Response::Kind::kLoaded;
    loaded.loaded.name = "hybrid";
    loaded.loaded.models = 5;
    loaded.loaded.generation = 12;
    loaded.loaded.fingerprint = 0xdeadbeefcafef00dULL;
    const Response decoded = Response::decode(loaded.encode());
    EXPECT_EQ(decoded.kind, Response::Kind::kLoaded);
    EXPECT_EQ(decoded.loaded.name, "hybrid");
    EXPECT_EQ(decoded.loaded.models, 5u);
    EXPECT_EQ(decoded.loaded.generation, 12u);
    EXPECT_EQ(decoded.loaded.fingerprint, 0xdeadbeefcafef00dULL);
}

TEST(ProtocolResponse, ModelsRoundTripsEmptyAndFull) {
    Response empty;
    empty.kind = Response::Kind::kModels;
    const Response decoded_empty = Response::decode(empty.encode());
    EXPECT_EQ(decoded_empty.kind, Response::Kind::kModels);
    EXPECT_TRUE(decoded_empty.sets.empty());

    Response full;
    full.kind = Response::Kind::kModels;
    full.sets = {ModelSetInfo{"cpu", 1, 2}, ModelSetInfo{"hybrid", 9, 4}};
    const Response decoded = Response::decode(full.encode());
    ASSERT_EQ(decoded.sets.size(), 2u);
    EXPECT_EQ(decoded.sets[0].name, "cpu");
    EXPECT_EQ(decoded.sets[1].generation, 9u);
    EXPECT_EQ(decoded.sets[1].models, 4u);
}

TEST(ProtocolResponse, StatsRoundTrips) {
    Response stats;
    stats.kind = Response::Kind::kStats;
    stats.stats = {{"requests", "10"}, {"q2r_p50_us", "1.5"}, {"empty", ""}};
    const Response decoded = Response::decode(stats.encode());
    ASSERT_EQ(decoded.stats.size(), 3u);
    EXPECT_EQ(decoded.stats[0].name, "requests");
    EXPECT_EQ(decoded.stats[0].value, "10");
    EXPECT_EQ(decoded.stats[2].value, "");
}

TEST(ProtocolResponse, HealthRoundTrips) {
    Response health;
    health.kind = Response::Kind::kHealth;
    health.health.live = true;
    health.health.ready = false;
    health.health.models = 0;
    health.health.faults_injected = 42;
    health.health.degraded = 7;
    const Response decoded = Response::decode(health.encode());
    EXPECT_EQ(decoded.kind, Response::Kind::kHealth);
    EXPECT_TRUE(decoded.health.live);
    EXPECT_FALSE(decoded.health.ready);
    EXPECT_EQ(decoded.health.models, 0u);
    EXPECT_EQ(decoded.health.faults_injected, 42u);
    EXPECT_EQ(decoded.health.degraded, 7u);
}

TEST(ProtocolResponse, PartitionRoundTripsAllFlagCombinations) {
    for (const bool degraded : {false, true}) {
        for (const bool with_rects : {false, true}) {
            Response response;
            response.kind = Response::Kind::kPartition;
            response.partition = sample_partition_reply(degraded, with_rects);
            const std::string line = response.encode();
            const Response decoded = Response::decode(line);
            ASSERT_EQ(decoded.kind, Response::Kind::kPartition) << line;
            const PartitionReply& parsed = decoded.partition;
            EXPECT_EQ(parsed.model, "hybrid");
            EXPECT_EQ(parsed.generation, 7u);
            EXPECT_EQ(parsed.n, 640);
            EXPECT_EQ(parsed.algorithm, Algorithm::kFpm);
            EXPECT_TRUE(parsed.cached);
            EXPECT_FALSE(parsed.coalesced);
            EXPECT_EQ(parsed.degraded, degraded);
            // %.17g framing must round-trip doubles bit-for-bit.
            EXPECT_EQ(parsed.balanced_time, 0.12345678901234567);
            EXPECT_EQ(parsed.makespan, 1e-9);
            EXPECT_EQ(parsed.comm_cost, 4242);
            EXPECT_EQ(parsed.blocks,
                      (std::vector<std::int64_t>{100, 250, 290}));
            EXPECT_EQ(parsed.rects.size(), with_rects ? 3u : 0u);
            // Re-encoding the decode is the identity on the wire.
            Response again;
            again.kind = Response::Kind::kPartition;
            again.partition = parsed;
            EXPECT_EQ(again.encode(), line);
        }
    }
}

// ---------------------------------------------------------------------------
// Truncation, garbage and oversized payloads
// ---------------------------------------------------------------------------

TEST(ProtocolResponse, FeedbackRoundTripsAllFlagCombinations) {
    for (int mask = 0; mask < 8; ++mask) {
        Response response;
        response.kind = Response::Kind::kFeedback;
        response.feedback.model_set = "hybrid";
        response.feedback.device = 3;
        response.feedback.samples = 17;
        response.feedback.reliable = (mask & 1) != 0;
        response.feedback.drift = (mask & 2) != 0;
        response.feedback.republished = (mask & 4) != 0;
        response.feedback.version = 9;
        const std::string line = response.encode();
        EXPECT_EQ(line.rfind("OK FEEDBACK set=hybrid", 0), 0u) << line;
        const Response decoded = Response::decode(line);
        ASSERT_EQ(decoded.kind, Response::Kind::kFeedback) << line;
        EXPECT_EQ(decoded.feedback.model_set, "hybrid");
        EXPECT_EQ(decoded.feedback.device, 3);
        EXPECT_EQ(decoded.feedback.samples, 17u);
        EXPECT_EQ(decoded.feedback.reliable, response.feedback.reliable);
        EXPECT_EQ(decoded.feedback.drift, response.feedback.drift);
        EXPECT_EQ(decoded.feedback.republished, response.feedback.republished);
        EXPECT_EQ(decoded.feedback.version, 9u);
        EXPECT_EQ(decoded.encode(), line);
    }
}

TEST(ProtocolResponse, PreV4ErrorLinesDecodeAsTypedErrors) {
    // What a v3 server answers when it sees FEEDBACK: must decode to
    // kError (so ServeClient can translate it), never throw.
    const Response response =
        Response::decode("ERR unknown command: FEEDBACK");
    EXPECT_EQ(response.kind, Response::Kind::kError);
    EXPECT_EQ(response.error, "unknown command: FEEDBACK");
}

TEST(ProtocolFuzz, EveryPrefixOfValidEncodingsIsHandled) {
    std::vector<std::string> lines;
    Request partition;
    partition.kind = Request::Kind::kPartition;
    partition.partition.model_set = "hybrid";
    partition.partition.n = 512;
    lines.push_back(partition.encode());
    Request load;
    load.kind = Request::Kind::kLoad;
    load.name = "a";
    load.path = "/p";
    lines.push_back(load.encode());
    Request feedback;
    feedback.kind = Request::Kind::kFeedback;
    feedback.feedback = {"hybrid", 1, 1024.0, 0.25};
    lines.push_back(feedback.encode());

    for (const std::string& line : lines) {
        for (std::size_t cut = 0; cut < line.size(); ++cut) {
            (void)request_decodes(line.substr(0, cut));  // must not crash
        }
    }

    std::vector<std::string> replies;
    Response part_reply;
    part_reply.kind = Response::Kind::kPartition;
    part_reply.partition = sample_partition_reply(true, true);
    replies.push_back(part_reply.encode());
    Response health;
    health.kind = Response::Kind::kHealth;
    replies.push_back(health.encode());
    Response loaded;
    loaded.kind = Response::Kind::kLoaded;
    loaded.loaded.name = "x";
    replies.push_back(loaded.encode());
    Response models;
    models.kind = Response::Kind::kModels;
    models.sets = {ModelSetInfo{"cpu", 1, 2}};
    replies.push_back(models.encode());
    replies.push_back("OK PONG v3");  // v3 liveness line still decodes
    replies.push_back("OK STATS a=1 b=2");
    Response feedback_reply;
    feedback_reply.kind = Response::Kind::kFeedback;
    feedback_reply.feedback.model_set = "hybrid";
    feedback_reply.feedback.samples = 3;
    feedback_reply.feedback.reliable = true;
    replies.push_back(feedback_reply.encode());

    for (const std::string& line : replies) {
        EXPECT_TRUE(response_decodes(line)) << line;
        for (std::size_t cut = 0; cut < line.size(); ++cut) {
            (void)response_decodes(line.substr(0, cut));  // must not crash
        }
    }
}

TEST(ProtocolFuzz, GarbageNeverEscapesAsNonError) {
    Rng rng(0xfadedfacadeULL);
    const std::string alphabet =
        "OK ERR PARTITION=|,:-0123456789abcdefghijklmnopqrstuvwxyz \t\x01\x7f";
    for (int i = 0; i < 2000; ++i) {
        std::string line;
        const int length = static_cast<int>(rng.uniform_int(0, 120));
        for (int j = 0; j < length; ++j) {
            line += alphabet[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(alphabet.size()) - 1))];
        }
        (void)request_decodes(line);   // fpm::Error or success, never a crash
        (void)response_decodes(line);
    }
}

TEST(ProtocolFuzz, MutatedPartitionRepliesAreHandled) {
    Response response;
    response.kind = Response::Kind::kPartition;
    response.partition = sample_partition_reply(false, true);
    const std::string line = response.encode();

    Rng rng(42);
    for (int i = 0; i < 2000; ++i) {
        std::string mutated = line;
        const std::size_t pos = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(line.size()) - 1));
        mutated[pos] = static_cast<char>(rng.uniform_int(32, 126));
        (void)response_decodes(mutated);  // must not crash
    }
}

TEST(ProtocolFuzz, OversizedPayloadsRoundTripOrError) {
    // A huge (but well-formed) block list round-trips intact.
    Response big;
    big.kind = Response::Kind::kPartition;
    big.partition = sample_partition_reply(false, false);
    big.partition.blocks.assign(10'000, 1);
    const Response decoded = Response::decode(big.encode());
    EXPECT_EQ(decoded.partition.blocks.size(), 10'000u);

    // Numeric overflow in a reply field is an error, not UB.
    EXPECT_FALSE(response_decodes(
        "OK PARTITION model=m gen=1 n=999999999999999999999999999 algo=fpm "
        "cached=0 coalesced=0 degraded=0 balanced=1 makespan=1 comm=1 "
        "blocks=1 layout=-"));

    // An absurdly long single token must not blow up the tokenizer.
    EXPECT_FALSE(request_decodes(std::string(1 << 16, 'A')));
}

TEST(ProtocolFuzz, WrongArityRepliesAreErrors) {
    const std::vector<std::string> bad = {
        "OK",
        "OK WHAT",
        "OK PONG",
        "OK PONG 3",        // missing the 'v'
        "OK BYE now",
        "OK LOADED name=x models=1 gen=1",              // missing fingerprint
        "OK MODELS count=2 sets=cpu:1:2",               // count mismatch
        "OK HEALTH live=1 ready=1 novalue",             // not key=value
        "OK PARTITION model=m gen=1 n=4 algo=fpm cached=0 coalesced=0 "
        "balanced=1 makespan=1 comm=1 blocks=1 layout=-",  // v2-era: no degraded
        "OK STATS novalue",
        "OK FEEDBACK set=s device=0 samples=1 reliable=0 drift=0 "
        "republished=0",  // missing version
        "OK FEEDBACK set=s device=0 samples=1 reliable=0 drift=0 "
        "republished=0 version=1 extra=1",
        "OK FEEDBACK set=s device=x samples=1 reliable=0 drift=0 "
        "republished=0 version=1",
    };
    for (const std::string& line : bad) {
        EXPECT_FALSE(response_decodes(line)) << "accepted: " << line;
    }
}

// ---------------------------------------------------------------------------
// Typed STATS: ServerStats::from_fields
// ---------------------------------------------------------------------------

TEST(ProtocolServerStats, FullStatsReplyParsesWithNoExtras) {
    // Every field the current revision emits must be *known* to the
    // typed parser: a field leaking into extras means make_stats_reply
    // and from_fields drifted apart.
    EngineStats engine;
    engine.requests = 12;
    engine.computed = 7;
    engine.coalesced = 2;
    engine.degraded = 1;
    engine.cache.hits = 3;
    engine.cache.misses = 9;
    engine.cache.evictions = 4;
    engine.cache.size = 5;
    engine.cache_shards = 8;
    const Response encoded = make_stats_reply(engine, 2);
    const Response decoded = Response::decode(encoded.encode());
    ASSERT_EQ(decoded.kind, Response::Kind::kStats);

    const ServerStats stats = ServerStats::from_fields(decoded.stats);
    EXPECT_EQ(stats.requests, 12u);
    EXPECT_EQ(stats.computed, 7u);
    EXPECT_EQ(stats.coalesced, 2u);
    EXPECT_EQ(stats.degraded, 1u);
    EXPECT_EQ(stats.hits, 3u);
    EXPECT_EQ(stats.misses, 9u);
    EXPECT_EQ(stats.evictions, 4u);
    EXPECT_EQ(stats.cache_size, 5u);
    EXPECT_EQ(stats.cache_shards, 8u);
    EXPECT_EQ(stats.models, 2u);
    EXPECT_TRUE(stats.extras.empty()) << stats.extras.begin()->first;
}

TEST(ProtocolServerStats, UnknownFieldsArePreservedInExtras) {
    const std::vector<StatField> fields = {
        {"requests", "5"},
        {"some_future_field", "42"},
        {"another", "x=y-ish"},
    };
    const ServerStats stats = ServerStats::from_fields(fields);
    EXPECT_EQ(stats.requests, 5u);
    ASSERT_EQ(stats.extras.size(), 2u);
    EXPECT_EQ(stats.extras.at("some_future_field"), "42");
    EXPECT_EQ(stats.extras.at("another"), "x=y-ish");
}

TEST(ProtocolServerStats, MalformedKnownValuesThrow) {
    for (const StatField& bad :
         {StatField{"requests", "abc"}, StatField{"requests", ""},
          StatField{"q2r_p50_us", "fast"}, StatField{"open_conns", "1x"},
          StatField{"reactors", "-"}, StatField{"cache_shards", "four"}}) {
        EXPECT_THROW((void)ServerStats::from_fields({bad}), fpm::Error)
            << bad.name << "=" << bad.value;
    }
}

TEST(ProtocolFuzz, RandomStatFieldsNeverEscapeAsNonError) {
    Rng rng(0x57a757a75ULL);
    const std::vector<std::string> names = {
        "requests",  "computed",  "hits",        "reactors", "cache_shards",
        "open_conns", "q2r_p50_us", "mystery", "fpm_count", "adapt_samples"};
    const std::string alphabet = "0123456789.-+eXz ";
    for (int i = 0; i < 2000; ++i) {
        std::vector<StatField> fields;
        const int count = static_cast<int>(rng.uniform_int(0, 6));
        for (int f = 0; f < count; ++f) {
            std::string value;
            const int length = static_cast<int>(rng.uniform_int(0, 10));
            for (int j = 0; j < length; ++j) {
                value += alphabet[static_cast<std::size_t>(rng.uniform_int(
                    0, static_cast<std::int64_t>(alphabet.size()) - 1))];
            }
            fields.push_back({names[static_cast<std::size_t>(rng.uniform_int(
                                  0,
                                  static_cast<std::int64_t>(names.size()) -
                                      1))],
                              value});
        }
        try {
            (void)ServerStats::from_fields(fields);
        } catch (const Error&) {
            // malformed known value: typed error, never a crash
        }
    }
}

// ---------------------------------------------------------------------------
// Request fingerprints
// ---------------------------------------------------------------------------

TEST(ProtocolFingerprint, StableAndDiscriminating) {
    Request a;
    a.kind = Request::Kind::kPartition;
    a.partition.model_set = "hybrid";
    a.partition.n = 512;
    Request b = a;
    EXPECT_EQ(request_fingerprint(a), request_fingerprint(b));

    b.partition.n = 513;
    EXPECT_NE(request_fingerprint(a), request_fingerprint(b));

    Request ping;
    EXPECT_NE(request_fingerprint(a), request_fingerprint(ping));

    Request feedback;
    feedback.kind = Request::Kind::kFeedback;
    feedback.feedback = {"hybrid", 0, 100.0, 1.0};
    Request feedback2 = feedback;
    EXPECT_EQ(request_fingerprint(feedback), request_fingerprint(feedback2));
    feedback2.feedback.seconds = 2.0;
    EXPECT_NE(request_fingerprint(feedback), request_fingerprint(feedback2));
}

} // namespace

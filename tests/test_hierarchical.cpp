// Tests for the two-level (cluster) partitioning extension: aggregate
// node models, conservation across both levels, and balance on
// heterogeneous clusters.
#include <gtest/gtest.h>

#include <numeric>

#include "fpm/app/cluster_app.hpp"
#include "fpm/part/hierarchical.hpp"

namespace fpm::part {
namespace {

using core::SpeedFunction;

AggregateOptions quick_options(double x_max = 2000.0) {
    AggregateOptions options;
    options.x_min = 4.0;
    options.x_max = x_max;
    options.points = 12;
    return options;
}

TEST(Aggregate, SingleDeviceAggregateMatchesDevice) {
    const std::vector<SpeedFunction> devices = {
        SpeedFunction({{10.0, 8.0}, {100.0, 20.0}, {1000.0, 18.0}}, "dev"),
    };
    const auto aggregate =
        aggregate_speed_function(devices, "node", quick_options());
    for (double x : {10.0, 50.0, 400.0, 1500.0}) {
        EXPECT_NEAR(aggregate.speed(x), devices[0].speed(x),
                    0.08 * devices[0].speed(x))
            << x;
    }
}

TEST(Aggregate, ConstantDevicesSumExactly) {
    const std::vector<SpeedFunction> devices = {
        SpeedFunction::constant(10.0, "a"),
        SpeedFunction::constant(30.0, "b"),
    };
    const auto aggregate =
        aggregate_speed_function(devices, "node", quick_options());
    for (double x : {10.0, 100.0, 1000.0}) {
        EXPECT_NEAR(aggregate.speed(x), 40.0, 0.5) << x;
    }
}

TEST(Aggregate, CapacityIsSumOfMembers) {
    const std::vector<SpeedFunction> devices = {
        SpeedFunction({{10.0, 8.0}}, "gpu", 100.0),
        SpeedFunction({{10.0, 4.0}}, "cpu", 50.0),
    };
    const auto aggregate =
        aggregate_speed_function(devices, "node", quick_options(140.0));
    EXPECT_DOUBLE_EQ(aggregate.max_problem(), 150.0);
}

TEST(Aggregate, GpuCliffPropagatesIntoNodeModel) {
    // A node with a cliff-GPU: the node-level speed must also fall once
    // the GPU saturates (at its balanced share, not the total).
    std::vector<core::SpeedPoint> gpu_points;
    for (double x = 10.0; x <= 2000.0; x += 50.0) {
        gpu_points.push_back({x, x < 500.0 ? 100.0 : 25.0});
    }
    const std::vector<SpeedFunction> devices = {
        SpeedFunction(gpu_points, "gpu"),
        SpeedFunction::constant(20.0, "cpu"),
    };
    const auto aggregate =
        aggregate_speed_function(devices, "node", quick_options());
    EXPECT_GT(aggregate.speed(300.0), 1.5 * aggregate.speed(1900.0));
}

TEST(Hierarchical, ConservesTotalsAtBothLevels) {
    const std::vector<std::vector<SpeedFunction>> nodes = {
        {SpeedFunction::constant(10.0, "a0"), SpeedFunction::constant(30.0, "a1")},
        {SpeedFunction::constant(20.0, "b0")},
        {SpeedFunction::constant(5.0, "c0"), SpeedFunction::constant(5.0, "c1"),
         SpeedFunction::constant(5.0, "c2")},
    };
    const std::int64_t total = 4321;
    const auto result = partition_hierarchical(nodes, total, quick_options());

    EXPECT_EQ(std::accumulate(result.node_blocks.begin(),
                              result.node_blocks.end(), std::int64_t{0}),
              total);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        EXPECT_EQ(std::accumulate(result.device_blocks[i].begin(),
                                  result.device_blocks[i].end(),
                                  std::int64_t{0}),
                  result.node_blocks[i])
            << "node " << i;
    }
}

TEST(Hierarchical, ProportionalForConstantNodes) {
    const std::vector<std::vector<SpeedFunction>> nodes = {
        {SpeedFunction::constant(40.0, "fast")},
        {SpeedFunction::constant(10.0, "slow")},
    };
    const auto result = partition_hierarchical(nodes, 1000, quick_options());
    EXPECT_NEAR(static_cast<double>(result.node_blocks[0]), 800.0, 20.0);
    EXPECT_NEAR(static_cast<double>(result.node_blocks[1]), 200.0, 20.0);
}

TEST(Hierarchical, BalancesHeterogeneousNodeTimes) {
    const std::vector<std::vector<SpeedFunction>> nodes = {
        {SpeedFunction({{10.0, 50.0}, {500.0, 90.0}, {1500.0, 40.0}}, "gpuish")},
        {SpeedFunction::constant(25.0, "cpu0"),
         SpeedFunction::constant(25.0, "cpu1")},
    };
    const auto result = partition_hierarchical(nodes, 2000, quick_options(2200.0));
    // Per-node completion times within 15 % of each other.
    double t0 = 0.0;
    double t1 = 0.0;
    t0 = nodes[0][0].time(static_cast<double>(result.device_blocks[0][0]));
    for (std::size_t d = 0; d < 2; ++d) {
        t1 = std::max(t1, nodes[1][d].time(static_cast<double>(
                              result.device_blocks[1][d])));
    }
    EXPECT_NEAR(t0, t1, 0.15 * std::max(t0, t1));
    EXPECT_NEAR(result.makespan, std::max(t0, t1), 1e-9);
}

TEST(Hierarchical, Validation) {
    EXPECT_THROW(partition_hierarchical({}, 100), fpm::Error);
    EXPECT_THROW(partition_hierarchical({{}}, 100), fpm::Error);
    const std::vector<std::vector<SpeedFunction>> nodes = {
        {SpeedFunction({{10.0, 1.0}}, "tiny", 50.0)},
    };
    EXPECT_THROW(partition_hierarchical(nodes, 100, quick_options(45.0)),
                 fpm::Error);
}

} // namespace
} // namespace fpm::part

namespace fpm::app {
namespace {

TEST(ClusterSim, SpecsAndValidation) {
    const auto homogeneous = sim::homogeneous_hybrid_cluster(4);
    EXPECT_EQ(homogeneous.nodes.size(), 4U);
    EXPECT_NO_THROW(homogeneous.validate());

    const auto heterogeneous = sim::heterogeneous_cluster();
    EXPECT_EQ(heterogeneous.nodes.size(), 3U);
    EXPECT_TRUE(heterogeneous.nodes[1].gpus.empty());
    EXPECT_EQ(heterogeneous.nodes[2].gpus.size(), 1U);
    EXPECT_NO_THROW(heterogeneous.validate());

    EXPECT_THROW(sim::homogeneous_hybrid_cluster(0), fpm::Error);
}

TEST(ClusterSim, BroadcastTimeScalesWithNodesAndBytes) {
    sim::HybridCluster two(sim::homogeneous_hybrid_cluster(2), {});
    sim::HybridCluster eight(sim::homogeneous_hybrid_cluster(8), {});
    EXPECT_GT(eight.broadcast_time(100.0), two.broadcast_time(100.0));
    EXPECT_GT(two.broadcast_time(200.0), two.broadcast_time(100.0));
    sim::HybridCluster one(sim::homogeneous_hybrid_cluster(1), {});
    EXPECT_DOUBLE_EQ(one.broadcast_time(100.0), 0.0);
}

TEST(ClusterSim, HierarchicalEndToEndOnHeterogeneousCluster) {
    sim::HybridCluster cluster(sim::heterogeneous_cluster(), {});
    auto sets = cluster_device_sets(cluster);

    core::FpmBuildOptions options;
    options.x_min = 4.0;
    options.x_max = 2600.0;
    options.initial_points = 10;
    options.max_points = 24;
    options.reliability.min_repetitions = 1;
    options.reliability.max_repetitions = 1;
    const auto models = cluster_device_fpms(cluster, sets, options);

    const std::int64_t n = 48;
    part::AggregateOptions agg;
    agg.x_max = 2500.0;
    const auto result =
        part::partition_hierarchical(models, n * n, agg);

    const auto app = run_simulated_cluster_app(cluster, sets,
                                               result.device_blocks, n);
    EXPECT_GT(app.total_time, 0.0);
    EXPECT_GT(app.comm_time, 0.0);

    // The full hybrid node must receive the largest share; all nodes
    // finish within a reasonable band of each other.
    EXPECT_GT(result.node_blocks[0], result.node_blocks[1]);
    EXPECT_GT(result.node_blocks[0], result.node_blocks[2]);
    const double worst = *std::max_element(app.node_iter_time.begin(),
                                           app.node_iter_time.end());
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
        EXPECT_GT(app.node_iter_time[i], 0.5 * worst) << "node " << i;
    }
}

TEST(ClusterSim, AppValidation) {
    sim::HybridCluster cluster(sim::homogeneous_hybrid_cluster(2), {});
    auto sets = cluster_device_sets(cluster);
    std::vector<std::vector<std::int64_t>> blocks(2);
    blocks[0].assign(sets[0].devices.size(), 0);
    blocks[1].assign(sets[1].devices.size(), 0);
    blocks[0][0] = 10;  // grand total 10 != n*n
    EXPECT_THROW(run_simulated_cluster_app(cluster, sets, blocks, 4),
                 fpm::Error);
}

} // namespace
} // namespace fpm::app

// Tests for the load-generation subsystem (fpm::loadgen): seeded
// schedule/stream determinism, closed-loop parity with the direct
// library call (every wire reply bit-for-bit equal to
// RequestEngine::compute_plan), open-loop drop accounting under an
// artificially slowed server (fault-injected compute delay), and the
// BENCH_loadgen.json schema being closed under to_json/from_json.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fpm/core/models.hpp"
#include "fpm/fault/fault.hpp"
#include "fpm/loadgen/report.hpp"
#include "fpm/loadgen/runner.hpp"
#include "fpm/loadgen/workload.hpp"
#include "fpm/serve/model_registry.hpp"
#include "fpm/serve/protocol.hpp"
#include "fpm/serve/request_engine.hpp"
#include "fpm/serve/server.hpp"

namespace fpm::loadgen {
namespace {

using core::SpeedFunction;
using core::SpeedPoint;

std::vector<SpeedFunction> synthetic_models(std::size_t devices,
                                            std::size_t points_per_model) {
    std::vector<SpeedFunction> models;
    for (std::size_t d = 0; d < devices; ++d) {
        std::vector<SpeedPoint> points;
        const double peak = 40.0 + 17.0 * static_cast<double>(d);
        for (std::size_t p = 0; p < points_per_model; ++p) {
            const double x = 4.0 + 6000.0 * static_cast<double>(p) /
                                       static_cast<double>(points_per_model - 1);
            points.push_back(SpeedPoint{x, peak * x / (x + 25.0)});
        }
        models.emplace_back(std::move(points), "dev" + std::to_string(d));
    }
    return models;
}

WorkloadSpec partition_spec(std::uint64_t seed) {
    WorkloadSpec spec;
    spec.model_sets = {"hybrid"};
    spec.seed = seed;
    return spec;
}

// ---------------------------------------------------------------------------
// Determinism: the stream and the schedule are pure functions of the
// seed, across runs and regardless of who asks for which index.
// ---------------------------------------------------------------------------

TEST(Workload, RequestStreamIsSeededAndIndexable) {
    const WorkloadSpec spec = partition_spec(7);
    for (std::uint64_t i = 0; i < 64; ++i) {
        EXPECT_EQ(nth_request(spec, i).encode(), nth_request(spec, i).encode());
    }
    // A different seed reshuffles the stream.
    const WorkloadSpec other = partition_spec(8);
    std::size_t differing = 0;
    for (std::uint64_t i = 0; i < 64; ++i) {
        differing +=
            nth_request(spec, i).encode() != nth_request(other, i).encode();
    }
    EXPECT_GT(differing, 0U);

    EXPECT_EQ(stream_fingerprint(spec, 64), stream_fingerprint(spec, 64));
    EXPECT_NE(stream_fingerprint(spec, 64), stream_fingerprint(spec, 63));
    EXPECT_NE(stream_fingerprint(spec, 64), stream_fingerprint(other, 64));
}

TEST(Workload, MixedVerbsFollowTheWeights) {
    WorkloadSpec spec = partition_spec(3);
    spec.stats_weight = 1.0;
    spec.health_weight = 1.0;
    std::map<Verb, std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 300; ++i) {
        ++seen[verb_of(nth_request(spec, i))];
    }
    EXPECT_GT(seen[Verb::kPartition], 0U);
    EXPECT_GT(seen[Verb::kStats], 0U);
    EXPECT_GT(seen[Verb::kHealth], 0U);
    EXPECT_EQ(seen[Verb::kFeedback], 0U);  // weight 0 never appears
}

TEST(Workload, InvalidSpecsAreRejected) {
    WorkloadSpec spec = partition_spec(1);
    spec.partition_weight = 0.0;
    EXPECT_THROW((void)nth_request(spec, 0), Error);  // all-zero mix
    spec = partition_spec(1);
    spec.model_sets.clear();
    EXPECT_THROW((void)nth_request(spec, 0), Error);  // no target sets
    spec = partition_spec(1);
    spec.n_min = 10;
    spec.n_max = 5;
    EXPECT_THROW((void)nth_request(spec, 0), Error);  // inverted range
}

TEST(Workload, ArrivalScheduleIsSeededAndPaced) {
    const auto a = arrival_schedule(Arrival::kPoisson, 500.0, 1.0, 42);
    const auto b = arrival_schedule(Arrival::kPoisson, 500.0, 1.0, 42);
    const auto c = arrival_schedule(Arrival::kPoisson, 500.0, 1.0, 43);
    EXPECT_EQ(a, b);  // bit-for-bit replay
    EXPECT_NE(a, c);
    // Rough Poisson sanity: mean gap 1/rps over a 1 s horizon.
    EXPECT_GT(a.size(), 350U);
    EXPECT_LT(a.size(), 700U);

    const auto uniform = arrival_schedule(Arrival::kUniform, 100.0, 1.0, 1);
    ASSERT_EQ(uniform.size(), 100U);
    EXPECT_DOUBLE_EQ(uniform[0], 0.0);
    EXPECT_NEAR(uniform[99] - uniform[98], 0.01, 1e-12);

    EXPECT_THROW((void)arrival_schedule(Arrival::kUniform, 0.0, 1.0, 1),
                 Error);
    EXPECT_THROW((void)arrival_schedule(Arrival::kUniform, 10.0, 0.0, 1),
                 Error);
}

// ---------------------------------------------------------------------------
// Closed loop: the generated stream served over the wire answers
// bit-for-bit what the direct library call computes.
// ---------------------------------------------------------------------------

TEST(ClosedLoop, RepliesMatchDirectLibraryCallBitForBit) {
    serve::ModelRegistry registry;
    registry.put("hybrid", synthetic_models(3, 32));
    serve::RequestEngine engine(registry, {.workers = 2, .cache_capacity = 64});
    serve::SocketServer server(engine);
    server.start();

    WorkloadSpec spec = partition_spec(11);
    spec.n_min = 16;
    spec.n_max = 48;

    LoadConfig cfg;
    cfg.port = server.port();
    cfg.mode = Mode::kClosed;
    cfg.connections = 4;
    cfg.requests = 64;  // fixed budget: the stream length is pinned
    std::map<std::uint64_t, std::string> replies;
    cfg.observer = [&replies](std::uint64_t index, const serve::Request&,
                              const std::string& reply) {
        replies[index] = reply;
    };

    const Report report = run(spec, cfg);
    server.stop();

    EXPECT_EQ(report.mode, "closed");
    EXPECT_EQ(report.sent, 64U);
    EXPECT_EQ(report.completed, 64U);
    EXPECT_EQ(report.errors, 0U);
    EXPECT_EQ(report.scheduled, report.sent + report.dropped);
    EXPECT_EQ(report.stream_fingerprint, stream_fingerprint(spec, 64));
    EXPECT_EQ(report.latency.count, 64U);
    EXPECT_GT(report.latency.p50_us, 0.0);
    EXPECT_GE(report.latency.p999_us, report.latency.p50_us);

    // Indices 0..63 each observed exactly once, and every wire reply
    // equals the direct library call on the same request.
    ASSERT_EQ(replies.size(), 64U);
    const auto set = registry.get("hybrid");
    for (const auto& [index, reply] : replies) {
        ASSERT_LT(index, 64U);
        const serve::Request request = nth_request(spec, index);
        const serve::PartitionReply served =
            serve::parse_partition_reply(reply);
        const serve::PartitionPlan direct = serve::RequestEngine::compute_plan(
            *set, request.partition.n, request.partition.algorithm, true);
        EXPECT_EQ(served.blocks, direct.blocks) << index;
        EXPECT_EQ(served.balanced_time, direct.balanced_time) << index;
        EXPECT_EQ(served.makespan, direct.makespan) << index;
        EXPECT_EQ(served.comm_cost, direct.comm_cost) << index;
    }
}

// ---------------------------------------------------------------------------
// Open loop: a server that cannot keep up turns arrivals into counted
// drops — never into silently deferred sends.
// ---------------------------------------------------------------------------

TEST(OpenLoop, SlowServerProducesCountedDrops) {
    serve::ModelRegistry registry;
    registry.put("hybrid", synthetic_models(3, 32));
    serve::RequestEngine engine(registry, {.workers = 2, .cache_capacity = 64});
    serve::SocketServer server(engine);
    server.start();

    // Every cold compute eats a deterministic 30 ms: at 400 req/s the
    // two engine workers can serve a small fraction of the offered load.
    fault::install(fault::FaultPlan::parse("seed=1,serve.compute=1:delay:30"));

    WorkloadSpec spec = partition_spec(5);
    LoadConfig cfg;
    cfg.port = server.port();
    cfg.mode = Mode::kOpen;
    cfg.arrival = Arrival::kUniform;
    cfg.target_rps = 400.0;
    cfg.duration_seconds = 0.5;
    cfg.connections = 2;
    cfg.max_outstanding = 4;

    const Report report = run(spec, cfg);
    fault::uninstall();
    server.stop();

    EXPECT_EQ(report.mode, "open");
    EXPECT_EQ(report.arrival, "uniform");
    EXPECT_EQ(report.scheduled, 200U);  // 400 rps * 0.5 s, uniform
    // The drop-accounting invariant, and the drops themselves.
    EXPECT_EQ(report.scheduled, report.sent + report.dropped);
    EXPECT_GT(report.dropped, 0U);
    EXPECT_GT(report.completed, 0U);
    EXPECT_EQ(report.errors, 0U);  // delays are latency, not failures
    // The offered stream is the whole schedule, drops included.
    EXPECT_EQ(report.stream_fingerprint,
              stream_fingerprint(spec, report.scheduled));
    // Latency is measured from the *scheduled* arrival, so the injected
    // service delay is a hard floor for every completed request.
    EXPECT_GE(report.latency.p50_us, 30e3);
}

// ---------------------------------------------------------------------------
// Report schema: closed under the to_json/from_json round trip, strict
// about schema and known fields, tolerant of unknown ones.
// ---------------------------------------------------------------------------

TEST(Report, JsonRoundTripIsExact) {
    Report report;
    report.mode = "open";
    report.arrival = "poisson";
    report.seed = 7;
    report.connections = 8;
    report.max_outstanding = 64;
    report.think_time_seconds = 0.001;
    report.duration_seconds = 10.0625;
    report.target_rps = 2000.0;
    report.achieved_rps = 1993.0387219134271;  // needs all 17 digits
    report.scheduled = 20001;
    report.sent = 19876;
    report.completed = 19870;
    report.errors = 3;
    report.degraded = 2;
    report.dropped = 125;
    report.stream_fingerprint = 0xdeadbeefcafebabeULL;
    report.latency = {19870,  812.5,        41.0, 90417.25,
                      640.25, 2310.0078125, 8000.5, 41210.033203125};
    report.by_verb[0] = {15000, 14995, 2, 2, report.latency};
    report.by_verb[2] = {4876, 4875, 1, 0, {}};

    const std::string json = report.to_json();
    EXPECT_NE(json.find("\"schema\": \"fpmpart-loadgen-v1\""),
              std::string::npos);
    const Report parsed = Report::from_json(json);
    EXPECT_EQ(parsed, report);
    // And the rendered document is itself a fixed point.
    EXPECT_EQ(parsed.to_json(), json);
}

TEST(Report, RejectsMalformedAndForeignDocuments) {
    const std::string json = Report().to_json();
    EXPECT_THROW((void)Report::from_json("{"), Error);
    EXPECT_THROW((void)Report::from_json("not json at all"), Error);

    std::string wrong_schema = json;
    wrong_schema.replace(wrong_schema.find("fpmpart-loadgen-v1"),
                         std::string("fpmpart-loadgen-v1").size(),
                         "fpmpart-loadgen-v0");
    EXPECT_THROW((void)Report::from_json(wrong_schema), Error);

    // A missing known field is an error...
    std::string missing = json;
    missing.replace(missing.find("\"sent\""), 6, "\"snet\"");
    EXPECT_THROW((void)Report::from_json(missing), Error);

    // ...but an unknown extra field is forward compatibility, not one.
    std::string extended = json;
    const std::string anchor = "\"seed\": ";
    extended.insert(extended.find(anchor), "\"added_in_v2\": 1,\n  ");
    EXPECT_EQ(Report::from_json(extended), Report::from_json(json));
}

TEST(Report, LatencyDigestConvertsSecondsToMicros) {
    obs::Histogram histogram;
    histogram.record(0.001);
    histogram.record(0.002);
    histogram.record(0.004);
    const LatencyReport latency =
        LatencyReport::from(histogram.snapshot());
    EXPECT_EQ(latency.count, 3U);
    EXPECT_NEAR(latency.mean_us, 2333.3, 5.0);
    EXPECT_NEAR(latency.min_us, 1000.0, 1e-6);
    EXPECT_NEAR(latency.max_us, 4000.0, 1e-6);
    // Log-bucket quantiles carry <= ~9 % relative error.
    EXPECT_NEAR(latency.p50_us, 2000.0, 200.0);
    EXPECT_GE(latency.p999_us, latency.p50_us);
}

} // namespace
} // namespace fpm::loadgen

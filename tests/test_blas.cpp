// Tests for the GEMM substrate: blocked/packed kernel vs the naive oracle
// across shapes, views, accumulation semantics and multithreading.
#include <gtest/gtest.h>

#include <tuple>

#include "fpm/blas/gemm.hpp"
#include "fpm/blas/matrix.hpp"
#include "fpm/common/rng.hpp"

namespace fpm::blas {
namespace {

template <typename T>
Matrix<T> random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
    Matrix<T> m(rows, cols);
    Rng rng(seed);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            m(r, c) = static_cast<T>(rng.uniform(-1.0, 1.0));
        }
    }
    return m;
}

TEST(Matrix, StorageAndIndexing) {
    Matrix<float> m(3, 4, 1.5F);
    EXPECT_EQ(m.rows(), 3U);
    EXPECT_EQ(m.cols(), 4U);
    EXPECT_EQ(m.size(), 12U);
    EXPECT_FLOAT_EQ(m(2, 3), 1.5F);
    m(1, 2) = -2.0F;
    EXPECT_FLOAT_EQ(m(1, 2), -2.0F);
}

TEST(Matrix, ViewsShareStorage) {
    Matrix<double> m(4, 4, 0.0);
    auto view = m.view();
    view(2, 2) = 7.0;
    EXPECT_DOUBLE_EQ(m(2, 2), 7.0);
}

TEST(Matrix, BlockViewAddressesSubrectangle) {
    Matrix<int> m(4, 6, 0);
    for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t c = 0; c < 6; ++c) {
            m(r, c) = static_cast<int>(10 * r + c);
        }
    }
    auto block = m.block(1, 2, 2, 3);
    EXPECT_EQ(block.rows(), 2U);
    EXPECT_EQ(block.cols(), 3U);
    EXPECT_EQ(block(0, 0), 12);
    EXPECT_EQ(block(1, 2), 24);
    block(0, 0) = -1;
    EXPECT_EQ(m(1, 2), -1);
}

TEST(Matrix, BlockOutOfRangeThrows) {
    Matrix<float> m(3, 3);
    EXPECT_THROW(m.block(1, 1, 3, 1), fpm::Error);
    EXPECT_THROW(m.block(0, 2, 1, 2), fpm::Error);
}

TEST(Matrix, MaxAbsDiff) {
    Matrix<float> a(2, 2, 1.0F);
    Matrix<float> b(2, 2, 1.0F);
    b(1, 1) = 1.5F;
    EXPECT_FLOAT_EQ(static_cast<float>(max_abs_diff<float>(a.view(), b.view())),
                    0.5F);
    Matrix<float> c(2, 3);
    EXPECT_THROW(max_abs_diff<float>(a.view(), c.view()), fpm::Error);
}

TEST(Gemm, ShapeMismatchThrows) {
    Matrix<float> a(2, 3);
    Matrix<float> b(4, 2);  // inner dim mismatch
    Matrix<float> c(2, 2);
    EXPECT_THROW(gemm<float>(a.view(), b.view(), c.view()), fpm::Error);
}

TEST(Gemm, TinyKnownProduct) {
    Matrix<double> a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 3;
    a(1, 1) = 4;
    Matrix<double> b(2, 2);
    b(0, 0) = 5;
    b(0, 1) = 6;
    b(1, 0) = 7;
    b(1, 1) = 8;
    Matrix<double> c(2, 2, 0.0);
    gemm<double>(a.view(), b.view(), c.view());
    EXPECT_DOUBLE_EQ(c(0, 0), 19);
    EXPECT_DOUBLE_EQ(c(0, 1), 22);
    EXPECT_DOUBLE_EQ(c(1, 0), 43);
    EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Gemm, AccumulatesIntoC) {
    Matrix<double> a = random_matrix<double>(5, 4, 1);
    Matrix<double> b = random_matrix<double>(4, 6, 2);
    Matrix<double> c(5, 6, 2.0);
    Matrix<double> expected(5, 6, 2.0);
    gemm_naive<double>(a.view(), b.view(), expected.view());
    gemm<double>(a.view(), b.view(), c.view());
    EXPECT_LT(max_abs_diff<double>(c.view(), expected.view()), 1e-12);
}

TEST(Gemm, AlphaScaling) {
    Matrix<double> a = random_matrix<double>(3, 3, 3);
    Matrix<double> b = random_matrix<double>(3, 3, 4);
    Matrix<double> c1(3, 3, 0.0);
    Matrix<double> c2(3, 3, 0.0);
    gemm_naive<double>(a.view(), b.view(), c1.view(), 2.5);
    gemm<double>(a.view(), b.view(), c2.view(), 2.5);
    EXPECT_LT(max_abs_diff<double>(c1.view(), c2.view()), 1e-12);
}

// Property sweep: the blocked kernel must agree with the oracle across
// shapes covering all fringe combinations of the micro-tile (4x8) and the
// packing panels.
using GemmShape = std::tuple<int, int, int>;

class GemmShapes : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmShapes, BlockedMatchesNaive) {
    const auto [m, n, k] = GetParam();
    auto a = random_matrix<float>(m, k, 100 + m);
    auto b = random_matrix<float>(k, n, 200 + n);
    Matrix<float> c(m, n, 0.5F);
    Matrix<float> expected(m, n, 0.5F);
    gemm_naive<float>(a.view(), b.view(), expected.view());
    gemm<float>(a.view(), b.view(), c.view());
    EXPECT_LT(max_abs_diff<float>(c.view(), expected.view()),
              1e-4 * static_cast<double>(k));
}

TEST_P(GemmShapes, MultithreadMatchesSingle) {
    const auto [m, n, k] = GetParam();
    auto a = random_matrix<float>(m, k, 300 + m);
    auto b = random_matrix<float>(k, n, 400 + n);
    Matrix<float> c1(m, n, 0.0F);
    Matrix<float> c4(m, n, 0.0F);
    gemm<float>(a.view(), b.view(), c1.view());
    gemm_multithread<float>(a.view(), b.view(), c4.view(), 4);
    EXPECT_LT(max_abs_diff<float>(c1.view(), c4.view()), 1e-4 * k);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{4, 8, 16},
                      GemmShape{5, 9, 17},   // fringe on every dimension
                      GemmShape{3, 7, 1},    // depth-1
                      GemmShape{1, 64, 32},  // single row
                      GemmShape{64, 1, 32},  // single column
                      GemmShape{33, 65, 67}, GemmShape{130, 140, 70},
                      GemmShape{129, 513, 257}));  // crosses MC/NC/KC panels

TEST(Gemm, SubviewOperandsWork) {
    // Multiply using non-contiguous views carved from larger matrices.
    auto big_a = random_matrix<float>(20, 20, 5);
    auto big_b = random_matrix<float>(20, 20, 6);
    Matrix<float> big_c(20, 20, 0.0F);
    auto a = big_a.view().block(2, 3, 8, 10);
    auto b = big_b.view().block(1, 4, 10, 6);
    auto c = big_c.view().block(5, 5, 8, 6);

    Matrix<float> expected(8, 6, 0.0F);
    gemm_naive<float>(ConstMatrixView<float>(a), ConstMatrixView<float>(b),
                      expected.view());
    gemm<float>(ConstMatrixView<float>(a), ConstMatrixView<float>(b), c);
    EXPECT_LT(max_abs_diff<float>(ConstMatrixView<float>(c), expected.view()),
              1e-3);
}

TEST(Gemm, MultithreadMoreThreadsThanRows) {
    auto a = random_matrix<float>(2, 16, 7);
    auto b = random_matrix<float>(16, 8, 8);
    Matrix<float> c(2, 8, 0.0F);
    Matrix<float> expected(2, 8, 0.0F);
    gemm_naive<float>(a.view(), b.view(), expected.view());
    gemm_multithread<float>(a.view(), b.view(), c.view(), 16);
    EXPECT_LT(max_abs_diff<float>(c.view(), expected.view()), 1e-4);
}

TEST(Gemm, ZeroThreadsRejected) {
    Matrix<float> a(2, 2);
    Matrix<float> b(2, 2);
    Matrix<float> c(2, 2);
    EXPECT_THROW(gemm_multithread<float>(a.view(), b.view(), c.view(), 0),
                 fpm::Error);
}

TEST(Gemm, FlopCount) {
    EXPECT_DOUBLE_EQ(gemm_flops(2, 3, 4), 48.0);
}

} // namespace
} // namespace fpm::blas

/// \file stress_harness.hpp
/// \brief Concurrency stress helpers shared by test_rt and test_serve.
///
/// run_concurrently() launches N threads, releases them through one
/// barrier so they genuinely contend, joins them all and rethrows the
/// first failure — the harness both suites use to hammer the runtime
/// primitives and the partition service.
#pragma once

#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "fpm/rt/barrier.hpp"

namespace fpm::test {

/// Runs fn(i) for i in [0, threads) on `threads` OS threads that start
/// simultaneously; waits for all of them.  The first exception thrown by
/// any thread is rethrown on the caller after every thread has joined.
inline void run_concurrently(std::size_t threads,
                             const std::function<void(std::size_t)>& fn) {
    rt::Barrier start_line(threads);
    std::mutex error_mutex;
    std::exception_ptr first_error;
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        pool.emplace_back([&, i]() {
            start_line.arrive_and_wait();
            try {
                fn(i);
            } catch (...) {
                std::lock_guard lock(error_mutex);
                if (!first_error) {
                    first_error = std::current_exception();
                }
            }
        });
    }
    for (auto& thread : pool) {
        thread.join();
    }
    if (first_error) {
        std::rethrow_exception(first_error);
    }
}

} // namespace fpm::test

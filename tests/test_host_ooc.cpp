// Numerical tests for the host reference executor of the out-of-core GPU
// kernel plans: versions 1-3 must compute exactly what a plain GEMM does,
// across repeated (serpentine) invocations, and their traffic counters
// must reflect the tail-reuse savings.
#include <gtest/gtest.h>

#include <tuple>

#include "fpm/app/host_ooc.hpp"
#include "fpm/blas/gemm.hpp"
#include "fpm/common/rng.hpp"

namespace fpm::app {
namespace {

constexpr std::size_t kBlock = 8;  // small blocks keep the tests fast

blas::Matrix<float> random_matrix(std::size_t rows, std::size_t cols,
                                  std::uint64_t seed) {
    blas::Matrix<float> m(rows, cols);
    Rng rng(seed);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            m(r, c) = static_cast<float>(rng.uniform(-1.0, 1.0));
        }
    }
    return m;
}

/// Runs `iterations` kernel invocations with fresh pivots through the
/// executor and through a plain GEMM; returns the max element difference.
double run_and_compare(sim::KernelVersion version, std::int64_t w_blocks,
                       std::int64_t h_blocks, double capacity_blocks,
                       int iterations) {
    const std::size_t w = w_blocks * kBlock;
    const std::size_t h = h_blocks * kBlock;

    blas::Matrix<float> c_actual(h, w, 0.0F);
    blas::Matrix<float> c_expected(h, w, 0.0F);
    HostOocExecutor executor(kBlock, capacity_blocks, version);

    for (int k = 0; k < iterations; ++k) {
        const auto a_col = random_matrix(h, kBlock, 100 + k);
        const auto b_row = random_matrix(kBlock, w, 200 + k);
        executor.invoke(a_col.view(), b_row.view(), c_actual.view());
        blas::gemm<float>(a_col.view(), b_row.view(), c_expected.view());
    }
    executor.flush(c_actual.view());
    return blas::max_abs_diff<float>(c_actual.view(), c_expected.view());
}

using OocCase = std::tuple<sim::KernelVersion, int, int, double, int>;

class HostOocNumerics : public ::testing::TestWithParam<OocCase> {};

TEST_P(HostOocNumerics, MatchesPlainGemm) {
    const auto [version, w, h, cap, iters] = GetParam();
    EXPECT_LT(run_and_compare(version, w, h, cap, iters), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HostOocNumerics,
    ::testing::Values(
        // In-core: whole C resident (v2/v3).
        OocCase{sim::KernelVersion::kV2, 4, 4, 100.0, 5},
        OocCase{sim::KernelVersion::kV3, 4, 4, 100.0, 5},
        // Version 1 always streams.
        OocCase{sim::KernelVersion::kV1, 4, 4, 100.0, 5},
        OocCase{sim::KernelVersion::kV1, 6, 7, 20.0, 4},
        // Out-of-core with several chunks, even and odd iteration counts
        // (the serpentine order flips between invocations).
        OocCase{sim::KernelVersion::kV2, 6, 8, 40.0, 4},
        OocCase{sim::KernelVersion::kV2, 6, 8, 40.0, 5},
        OocCase{sim::KernelVersion::kV3, 6, 8, 40.0, 5},
        OocCase{sim::KernelVersion::kV2, 5, 12, 30.0, 6},
        OocCase{sim::KernelVersion::kV3, 9, 9, 50.0, 3},
        // Tall and slim C rectangles.
        OocCase{sim::KernelVersion::kV2, 1, 16, 10.0, 4},
        OocCase{sim::KernelVersion::kV2, 16, 1, 60.0, 4}));

TEST(HostOoc, InCoreTrafficIsPivotsOnly) {
    const std::int64_t w = 4;
    const std::int64_t h = 4;
    HostOocExecutor executor(kBlock, 100.0, sim::KernelVersion::kV2);
    blas::Matrix<float> c(h * kBlock, w * kBlock, 0.0F);

    const int iters = 4;
    for (int k = 0; k < iters; ++k) {
        const auto a_col = random_matrix(h * kBlock, kBlock, k);
        const auto b_row = random_matrix(kBlock, w * kBlock, 50 + k);
        executor.invoke(a_col.view(), b_row.view(), c.view());
    }
    // One bootstrap upload of C, nothing else until flush.
    EXPECT_DOUBLE_EQ(executor.traffic().upload_c_blocks, 16.0);
    EXPECT_DOUBLE_EQ(executor.traffic().download_c_blocks, 0.0);
    EXPECT_DOUBLE_EQ(executor.traffic().upload_pivot_blocks,
                     static_cast<double>(iters) * (w + h));
    executor.flush(c.view());
    EXPECT_DOUBLE_EQ(executor.traffic().download_c_blocks, 16.0);
    EXPECT_EQ(executor.resident_chunks(), 0U);
}

TEST(HostOoc, TailReuseSavesTrafficVersusVersion1) {
    // Same out-of-core geometry, many iterations: v2 must move markedly
    // less C data than v1.
    const std::int64_t w = 6;
    const std::int64_t h = 8;
    const double cap = 40.0;
    const int iters = 6;

    auto total_c_traffic = [&](sim::KernelVersion version) {
        HostOocExecutor executor(kBlock, cap, version);
        blas::Matrix<float> c(h * kBlock, w * kBlock, 0.0F);
        for (int k = 0; k < iters; ++k) {
            const auto a_col = random_matrix(h * kBlock, kBlock, k);
            const auto b_row = random_matrix(kBlock, w * kBlock, 70 + k);
            executor.invoke(a_col.view(), b_row.view(), c.view());
        }
        executor.flush(c.view());
        return executor.traffic().upload_c_blocks +
               executor.traffic().download_c_blocks;
    };

    const double v1 = total_c_traffic(sim::KernelVersion::kV1);
    const double v2 = total_c_traffic(sim::KernelVersion::kV2);
    EXPECT_LT(v2, 0.8 * v1);
    // v1 streams everything every iteration: exactly 2 * area * iters.
    EXPECT_DOUBLE_EQ(v1, 2.0 * 48.0 * iters);
}

TEST(HostOoc, ResidencyNeverExceedsTwoChunks) {
    const std::int64_t w = 6;
    const std::int64_t h = 10;
    HostOocExecutor executor(kBlock, 30.0, sim::KernelVersion::kV2);
    blas::Matrix<float> c(h * kBlock, w * kBlock, 0.0F);
    for (int k = 0; k < 5; ++k) {
        const auto a_col = random_matrix(h * kBlock, kBlock, k);
        const auto b_row = random_matrix(kBlock, w * kBlock, 90 + k);
        executor.invoke(a_col.view(), b_row.view(), c.view());
        EXPECT_LE(executor.resident_chunks(), 2U);
    }
}

TEST(HostOoc, ShapeValidation) {
    HostOocExecutor executor(kBlock, 100.0, sim::KernelVersion::kV2);
    blas::Matrix<float> c(2 * kBlock, 2 * kBlock);
    blas::Matrix<float> bad_a(2 * kBlock, 2 * kBlock);  // A must be one block wide
    blas::Matrix<float> b_row(kBlock, 2 * kBlock);
    EXPECT_THROW(executor.invoke(bad_a.view(), b_row.view(), c.view()),
                 fpm::Error);
    blas::Matrix<float> a_col(2 * kBlock, kBlock);
    blas::Matrix<float> bad_b(kBlock, 3 * kBlock);  // wrong width
    EXPECT_THROW(executor.invoke(a_col.view(), bad_b.view(), c.view()),
                 fpm::Error);
}

TEST(HostOoc, ConstructorValidation) {
    EXPECT_THROW(HostOocExecutor(0, 10.0, sim::KernelVersion::kV2), fpm::Error);
    EXPECT_THROW(HostOocExecutor(kBlock, 0.0, sim::KernelVersion::kV2),
                 fpm::Error);
}

} // namespace
} // namespace fpm::app

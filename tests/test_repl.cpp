// fpm::repl suite: ReplicationLog position iteration at segment
// boundaries (exact-frame resume after WAL rotation, snapshot fallback
// when the segment was GC'd), primary → replica convergence over the
// wire (streaming and snapshot-transfer paths, bit-for-bit plan
// equality, replica-side durability), read-only write rejection, the
// typed STATS/HEALTH replication fields, client endpoint failover, a
// chaos run with every repl.* fault armed, and the headline
// fork()+SIGKILL drill: primary killed mid-stream, the replica serves
// the last acknowledged generation bit-for-bit and the failover client
// completes with zero torn replies.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fpm/adapt/adapt_config.hpp"
#include "fpm/adapt/engine.hpp"
#include "fpm/fault/fault.hpp"
#include "fpm/repl/replication_log.hpp"
#include "fpm/repl/replication_server.hpp"
#include "fpm/repl/replicator.hpp"
#include "fpm/serve/client.hpp"
#include "fpm/serve/error.hpp"
#include "fpm/serve/model_registry.hpp"
#include "fpm/serve/protocol.hpp"
#include "fpm/serve/repl_status.hpp"
#include "fpm/serve/request_engine.hpp"
#include "fpm/serve/server.hpp"
#include "fpm/store/model_store.hpp"

namespace fpm::repl {
namespace {

namespace fs = std::filesystem;
using core::SpeedFunction;
using core::SpeedPoint;
using serve::Endpoint;
using serve::ErrorCode;
using serve::ModelRegistry;
using serve::ReplStatus;
using serve::Request;
using serve::RequestEngine;
using serve::Response;
using serve::ServeClient;
using serve::ServeConfig;
using serve::ServiceError;
using serve::SocketServer;
using store::ModelStore;
using store::StoreOptions;

/// Deterministic synthetic device set (same family as test_store.cpp);
/// `seed` perturbs the speeds so successive generations differ.
std::vector<SpeedFunction> synthetic_models(std::size_t devices,
                                            std::size_t points_per_model,
                                            double seed) {
    std::vector<SpeedFunction> models;
    for (std::size_t d = 0; d < devices; ++d) {
        std::vector<SpeedPoint> points;
        const double peak =
            (1.0 + 0.05 * seed) * (40.0 + 17.0 * static_cast<double>(d));
        const double cliff = 900.0 + 400.0 * static_cast<double>(d);
        const double x_max = 6000.0;
        for (std::size_t p = 0; p < points_per_model; ++p) {
            const double x = 4.0 + (x_max - 4.0) * static_cast<double>(p) /
                                       static_cast<double>(points_per_model - 1);
            const double ramp = x / (x + 25.0);
            const double speed = (x < cliff ? peak : 0.45 * peak) * ramp;
            points.push_back(SpeedPoint{x, speed});
        }
        models.emplace_back(std::move(points), "dev" + std::to_string(d));
    }
    return models;
}

/// Fresh store directory under /tmp, removed on scope exit.
struct TempDir {
    TempDir() {
        char tmpl[] = "/tmp/fpmpart_repl_XXXXXX";
        const char* made = ::mkdtemp(tmpl);
        EXPECT_NE(made, nullptr);
        path = made != nullptr ? made : "/tmp/fpmpart_repl_fallback";
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string path;
};

/// Uninstalls any leftover fault plan when a test exits.
struct FaultGuard {
    ~FaultGuard() { fault::uninstall(); }
};

/// ReplStatus is process-global; tests that replicate must not leak
/// role=replica into later tests.
struct ReplStatusGuard {
    ReplStatusGuard() { ReplStatus::global().reset(); }
    ~ReplStatusGuard() { ReplStatus::global().reset(); }
};

/// Polls `pred` until it holds or `seconds` elapse (sanitizer runs are
/// slow, so callers pass generous deadlines).
bool wait_until(const std::function<bool()>& pred, double seconds = 30.0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(seconds);
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred()) {
            return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
}

/// A primary stack wired for replication: registry + durable store +
/// log + replication listener (and optionally a serve socket).
struct Primary {
    explicit Primary(const std::string& dir, std::uint64_t snapshot_every = 0,
                     double heartbeat = 0.05)
        : store(dir, make_options(snapshot_every)) {
        store.recover(registry);
        store.attach(registry);
        log = std::make_unique<ReplicationLog>(store);
        ReplServerConfig config;
        config.heartbeat_interval = heartbeat;
        server = std::make_unique<ReplicationServer>(*log, config);
    }
    ~Primary() {
        server->stop();
        log->stop();
        store.abandon();
    }

    static StoreOptions make_options(std::uint64_t snapshot_every) {
        StoreOptions options;
        options.snapshot_every = snapshot_every;
        return options;
    }

    ModelRegistry registry;
    ModelStore store;
    std::unique_ptr<ReplicationLog> log;
    std::unique_ptr<ReplicationServer> server;
};

/// A replica stack: its own durable store, a read-only engine and a
/// Replicator pointed at `source_port`.
struct Replica {
    Replica(const std::string& dir, std::uint16_t source_port)
        : store(dir), engine((recover(), registry),
                             {.workers = 2, .cache_capacity = 64}) {
        engine.set_read_only(true);
        ReplicatorConfig config;
        config.source = Endpoint{"127.0.0.1", source_port};
        config.transport.connect_timeout = 2.0;
        config.transport.recv_timeout = 2.0;
        config.transport.backoff_base = 0.01;
        config.transport.backoff_max = 0.05;
        replicator = std::make_unique<Replicator>(engine, &store, config);
        replicator->start();
    }
    ~Replica() {
        replicator->stop();
        store.abandon();
    }

    void recover() {
        store.recover(registry);
        store.attach(registry);
    }

    ModelRegistry registry;
    ModelStore store;
    RequestEngine engine;
    std::unique_ptr<Replicator> replicator;
};

std::uint64_t max_generation(const ModelRegistry& registry) {
    std::uint64_t top = 0;
    for (const auto& set : registry.snapshot()) {
        top = std::max(top, set->generation);
    }
    return top;
}

// ---------------------------------------------------------------------------
// ReplPosition
// ---------------------------------------------------------------------------

TEST(ReplPositionTest, ParsesItsOwnRendering) {
    const ReplPosition pos{3, 128};
    EXPECT_EQ(pos.to_string(), "3:128");
    EXPECT_EQ(ReplPosition::parse("3:128"), pos);
    EXPECT_EQ(ReplPosition::parse("0:0"), (ReplPosition{0, 0}));
    for (const char* bad : {"", "3", ":", "3:", ":128", "a:b", "3:12x"}) {
        EXPECT_THROW((void)ReplPosition::parse(bad), fpm::Error) << bad;
    }
}

// ---------------------------------------------------------------------------
// ReplicationLog: committed-frame iteration and live tailing
// ---------------------------------------------------------------------------

TEST(ReplicationLogTest, StreamsCommittedFramesInOrderThenTimesOut) {
    TempDir dir;
    ModelRegistry registry;
    StoreOptions options;
    options.snapshot_every = 0;
    ModelStore store(dir.path, options);
    store.recover(registry);
    store.attach(registry);
    registry.put("alpha", synthetic_models(2, 16, 1.0));
    registry.put("alpha", synthetic_models(2, 16, 2.0));

    ReplicationLog log(store);
    ReplPosition pos{1, 0};
    std::string payload;
    ASSERT_EQ(log.next(pos, payload, 1.0), ReplicationLog::Next::kFrame);
    auto record = store::decode_publish_record(payload, "test");
    EXPECT_EQ(record.name, "alpha");
    EXPECT_EQ(record.generation, 1u);
    ASSERT_EQ(log.next(pos, payload, 1.0), ReplicationLog::Next::kFrame);
    record = store::decode_publish_record(payload, "test");
    EXPECT_EQ(record.generation, 2u);
    EXPECT_EQ(record.fingerprint,
              serve::fingerprint_models(synthetic_models(2, 16, 2.0)));

    // Caught up: the position equals the commit point and next() waits.
    const auto [segment, committed] = store.wal_position();
    EXPECT_EQ(pos, (ReplPosition{segment, committed}));
    EXPECT_EQ(log.next(pos, payload, 0.02), ReplicationLog::Next::kTimeout);
    EXPECT_EQ(pos, (ReplPosition{segment, committed}));
    store.abandon();
}

TEST(ReplicationLogTest, TailingNextWakesOnCommit) {
    TempDir dir;
    ModelRegistry registry;
    StoreOptions options;
    options.snapshot_every = 0;
    ModelStore store(dir.path, options);
    store.recover(registry);
    store.attach(registry);
    ReplicationLog log(store);

    ReplPosition pos{1, 0};
    std::string payload;
    std::atomic<int> result{-1};
    std::thread tail([&] {
        result.store(static_cast<int>(log.next(pos, payload, 20.0)));
    });
    // Give the tail a moment to block at the (empty) commit point, then
    // publish: the commit hook must wake it well before the timeout.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    registry.put("alpha", synthetic_models(2, 16, 1.0));
    tail.join();
    EXPECT_EQ(result.load(),
              static_cast<int>(ReplicationLog::Next::kFrame));
    EXPECT_EQ(store::decode_publish_record(payload, "test").generation, 1u);
    store.abandon();
}

TEST(ReplicationLogTest, StopWakesBlockedReaders) {
    TempDir dir;
    ModelRegistry registry;
    ModelStore store(dir.path);
    store.recover(registry);
    store.attach(registry);
    ReplicationLog log(store);

    ReplPosition pos{1, 0};
    std::string payload;
    std::atomic<int> result{-1};
    std::thread tail([&] {
        result.store(static_cast<int>(log.next(pos, payload, 60.0)));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    log.stop();
    tail.join();
    EXPECT_EQ(result.load(),
              static_cast<int>(ReplicationLog::Next::kStopped));
    EXPECT_EQ(log.next(pos, payload, 1.0), ReplicationLog::Next::kStopped);
    store.abandon();
}

// ---------------------------------------------------------------------------
// ReplicationLog: segment boundaries
// ---------------------------------------------------------------------------

TEST(ReplicationLogTest, SealPointResumesExactlyAcrossRotationAndGc) {
    TempDir dir;
    ModelRegistry registry;
    StoreOptions options;
    options.snapshot_every = 0;
    ModelStore store(dir.path, options);
    store.recover(registry);
    store.attach(registry);
    registry.put("alpha", synthetic_models(2, 16, 1.0));
    registry.put("alpha", synthetic_models(2, 16, 2.0));

    ReplicationLog log(store);
    ReplPosition pos{1, 0};
    std::string payload;
    ASSERT_EQ(log.next(pos, payload, 1.0), ReplicationLog::Next::kFrame);
    ASSERT_EQ(log.next(pos, payload, 1.0), ReplicationLog::Next::kFrame);
    const ReplPosition caught_up = pos;

    // Rotation GCs segment 1, but a follower standing exactly at its
    // seal point has missed nothing: the position stays resumable and
    // the next frame arrives from segment 2 without a snapshot.
    store.snapshot();
    EXPECT_FALSE(fs::exists(store.segment_path(1)));
    EXPECT_EQ(store.last_seal(),
              std::make_pair(caught_up.segment, caught_up.offset));
    EXPECT_TRUE(log.position_available(caught_up));

    registry.put("alpha", synthetic_models(2, 16, 3.0));
    ASSERT_EQ(log.next(pos, payload, 1.0), ReplicationLog::Next::kFrame);
    EXPECT_EQ(pos.segment, 2u);
    const auto record = store::decode_publish_record(payload, "test");
    EXPECT_EQ(record.generation, 3u);
    store.abandon();
}

TEST(ReplicationLogTest, GcdSegmentOffTheSealPointIsAGap) {
    TempDir dir;
    ModelRegistry registry;
    StoreOptions options;
    options.snapshot_every = 0;
    ModelStore store(dir.path, options);
    store.recover(registry);
    store.attach(registry);
    registry.put("alpha", synthetic_models(2, 16, 1.0));
    registry.put("alpha", synthetic_models(2, 16, 2.0));
    store.snapshot();  // rotates to segment 2, GCs segment 1

    ReplicationLog log(store);
    // A follower that had only frame 1 of the GC'd segment: its frames
    // are gone for good — the handshake must refuse the resume so the
    // server falls back to a snapshot transfer.
    ReplPosition behind{1, 0};
    std::string payload;
    EXPECT_FALSE(log.position_available(behind));
    EXPECT_EQ(log.next(behind, payload, 0.05), ReplicationLog::Next::kGap);
    EXPECT_EQ(behind, (ReplPosition{1, 0}));

    // Future segments and the reserved segment 0 are gaps too.
    EXPECT_FALSE(log.position_available(ReplPosition{0, 0}));
    EXPECT_FALSE(log.position_available(ReplPosition{9, 0}));
    ReplPosition future{9, 0};
    EXPECT_EQ(log.next(future, payload, 0.05), ReplicationLog::Next::kGap);

    // The snapshot fallback hands exactly the live content plus the
    // resume position at the new segment's commit point.
    const auto snap = store.replication_snapshot();
    EXPECT_EQ(snap.payloads.size(), 1u);
    EXPECT_EQ(snap.next_generation, 3u);
    EXPECT_EQ(snap.segment, 2u);
    EXPECT_EQ(store::decode_publish_record(snap.payloads[0], "snap").generation,
              2u);
    store.abandon();
}

TEST(ReplicationLogTest, SealedSegmentStillOnDiskIsReadToItsEnd) {
    TempDir dir;
    ModelRegistry registry;
    StoreOptions options;
    options.snapshot_every = 0;
    ModelStore store(dir.path, options);
    store.recover(registry);
    store.attach(registry);
    registry.put("alpha", synthetic_models(2, 16, 1.0));
    registry.put("alpha", synthetic_models(2, 16, 2.0));

    // Preserve segment 1 across the rotation's GC, simulating a lazier
    // collector: a sealed-but-present segment must be read to its end
    // before the position advances to the next segment.
    const std::string segment1 = store.segment_path(1);
    const std::string stash = dir.path + "/stash.bin";
    ASSERT_TRUE(fs::copy_file(segment1, stash));
    store.snapshot();
    ASSERT_FALSE(fs::exists(segment1));
    ASSERT_TRUE(fs::copy_file(stash, segment1));
    registry.put("alpha", synthetic_models(2, 16, 3.0));

    ReplicationLog log(store);
    EXPECT_TRUE(log.position_available(ReplPosition{1, 0}));
    ReplPosition pos{1, 0};
    std::string payload;
    std::vector<std::uint64_t> generations;
    for (int i = 0; i < 3; ++i) {
        ASSERT_EQ(log.next(pos, payload, 1.0), ReplicationLog::Next::kFrame);
        generations.push_back(
            store::decode_publish_record(payload, "test").generation);
    }
    EXPECT_EQ(generations, (std::vector<std::uint64_t>{1, 2, 3}));
    EXPECT_EQ(pos.segment, 2u);
    EXPECT_EQ(log.next(pos, payload, 0.02), ReplicationLog::Next::kTimeout);
    store.abandon();
}

// ---------------------------------------------------------------------------
// End to end: primary → replica over the wire
// ---------------------------------------------------------------------------

TEST(ReplEndToEnd, ReplicaConvergesTailsAndServesIdenticalPlans) {
    ReplStatusGuard status_guard;
    TempDir primary_dir;
    TempDir replica_dir;
    Primary primary(primary_dir.path);
    primary.registry.put("alpha", synthetic_models(3, 32, 1.0));
    primary.registry.put("beta", synthetic_models(2, 24, 2.0));

    Replica replica(replica_dir.path, primary.server->port());
    ASSERT_TRUE(wait_until(
        [&] { return replica.replicator->applied_generation() >= 2; }))
        << "replica never caught up to the initial generations";

    // Live tail: publishes stream straight through (no reconnect).
    primary.registry.put("alpha", synthetic_models(3, 32, 3.0));
    ASSERT_TRUE(wait_until(
        [&] { return replica.replicator->applied_generation() >= 3; }));

    // Same names, generations, fingerprints and generation counter.
    ASSERT_EQ(replica.registry.size(), 2u);
    for (const auto& set : primary.registry.snapshot()) {
        const auto mirrored = replica.registry.find(set->name);
        ASSERT_NE(mirrored, nullptr) << set->name;
        EXPECT_EQ(mirrored->generation, set->generation);
        EXPECT_EQ(mirrored->fingerprint, set->fingerprint);
    }
    EXPECT_EQ(replica.registry.next_generation(),
              primary.registry.next_generation());

    // Bit-for-bit: plans computed from the replicated snapshot match the
    // primary's exactly.
    for (const std::int64_t n : {24, 96, 1024}) {
        const auto expected = RequestEngine::compute_plan(
            *primary.registry.get("alpha"), n, serve::Algorithm::kFpm, true);
        const auto got = RequestEngine::compute_plan(
            *replica.registry.get("alpha"), n, serve::Algorithm::kFpm, true);
        EXPECT_EQ(got.blocks, expected.blocks);
        EXPECT_EQ(got.makespan, expected.makespan);
    }

    // The replica's own WAL logged every applied record: a crash-style
    // restart of the replica store reproduces the replicated registry.
    EXPECT_GE(replica.store.stats().appended, 3u);
    replica.replicator->stop();
    ModelRegistry recovered;
    {
        // recover() requires a store that was not left mid-write; the
        // replica's store stays open, so recover from a fresh handle.
        ModelStore reopened(replica_dir.path);
        reopened.recover(recovered);
        reopened.abandon();
    }
    EXPECT_EQ(recovered.size(), 2u);
    EXPECT_EQ(recovered.get("alpha")->fingerprint,
              primary.registry.get("alpha")->fingerprint);
    EXPECT_EQ(recovered.next_generation(),
              primary.registry.next_generation());
}

TEST(ReplEndToEnd, FreshReplicaBehindGcGetsASnapshotTransfer) {
    ReplStatusGuard status_guard;
    TempDir primary_dir;
    TempDir replica_dir;
    // snapshot_every=2: by generation 4 the early segments are GC'd, so
    // a fresh replica (HELLO 0:0) cannot stream from the beginning.
    Primary primary(primary_dir.path, 2);
    for (int g = 1; g <= 4; ++g) {
        primary.registry.put("alpha",
                             synthetic_models(3, 32, static_cast<double>(g)));
    }
    ASSERT_FALSE(fs::exists(primary.store.segment_path(1)));

    Replica replica(replica_dir.path, primary.server->port());
    ASSERT_TRUE(wait_until(
        [&] { return replica.replicator->applied_generation() >= 4; }));
    EXPECT_GE(replica.replicator->snapshots_received(), 1u);
    EXPECT_GE(primary.server->snapshots_sent(), 1u);
    EXPECT_EQ(replica.registry.get("alpha")->fingerprint,
              primary.registry.get("alpha")->fingerprint);

    // The stream keeps tailing after the snapshot hand-off.
    primary.registry.put("alpha", synthetic_models(3, 32, 9.0));
    ASSERT_TRUE(wait_until(
        [&] { return replica.replicator->applied_generation() >= 5; }));
    EXPECT_EQ(replica.registry.get("alpha")->generation, 5u);
}

TEST(ReplEndToEnd, ReplicaAnswersWritesWithTypedReadOnlyErrors) {
    ReplStatusGuard status_guard;
    TempDir primary_dir;
    TempDir replica_dir;
    Primary primary(primary_dir.path);
    primary.registry.put("alpha", synthetic_models(3, 32, 1.0));

    Replica replica(replica_dir.path, primary.server->port());
    ASSERT_TRUE(wait_until(
        [&] { return replica.replicator->applied_generation() >= 1; }));

    SocketServer server(replica.engine);
    server.start();
    {
        ServeClient client("127.0.0.1", server.port());

        // Reads serve normally.
        const auto reply = client.partition({"alpha", 64, serve::Algorithm::kFpm,
                                             true});
        EXPECT_EQ(reply.model, "alpha");
        EXPECT_EQ(reply.generation, 1u);

        // LOAD: typed ERR read_only, registry untouched.
        const auto loaded = Response::decode(
            client.request("LOAD evil /tmp/nonexistent.csv"));
        ASSERT_EQ(loaded.kind, Response::Kind::kError);
        EXPECT_EQ(loaded.error_code, ErrorCode::kReadOnly);
        EXPECT_EQ(replica.registry.find("evil"), nullptr);

        // FEEDBACK: the typed helper surfaces the same code.
        try {
            (void)client.report_feedback({"alpha", 0, 1000.0, 2.0});
            FAIL() << "expected ERR read_only";
        } catch (const ServiceError& e) {
            EXPECT_EQ(e.code(), ErrorCode::kReadOnly);
        }

        // STATS/HEALTH carry the replica's role, source and progress.
        const auto stats = client.stats();
        EXPECT_EQ(stats.role, "replica");
        EXPECT_EQ(stats.repl_source,
                  "127.0.0.1:" + std::to_string(primary.server->port()));
        EXPECT_EQ(stats.repl_applied_generation, 1u);
        const auto health = client.health();
        EXPECT_EQ(health.role, "replica");
        EXPECT_EQ(health.repl_applied_generation, 1u);
    }
    server.stop();
}

// ---------------------------------------------------------------------------
// Typed STATS/HEALTH replication fields (setter table, extras, errors)
// ---------------------------------------------------------------------------

TEST(ReplTypedViews, StatsReplyCarriesTheReplStatusLetterbox) {
    ReplStatusGuard status_guard;
    ReplStatus::global().set_role("replica");
    ReplStatus::global().set_source("10.0.0.7:9111");
    ReplStatus::global().record_contact(12, 9);

    ModelRegistry registry;
    RequestEngine engine(registry, {.workers = 1, .cache_capacity = 4});
    const Response reply = serve::make_stats_reply(engine.stats(), 0);
    const auto stats = serve::ServerStats::from_fields(reply.stats);
    EXPECT_EQ(stats.role, "replica");
    EXPECT_EQ(stats.repl_source, "10.0.0.7:9111");
    EXPECT_EQ(stats.repl_lag_frames, 3u);
    EXPECT_EQ(stats.repl_applied_generation, 9u);
    EXPECT_GE(stats.repl_lag_seconds, 0.0);
    EXPECT_TRUE(stats.extras.empty());

    // record_applied() advances progress without touching the clock.
    ReplStatus::global().record_applied(12);
    const auto caught_up = ReplStatus::global().snapshot();
    EXPECT_EQ(caught_up.lag_frames, 0u);
    EXPECT_EQ(caught_up.applied_generation, 12u);
}

TEST(ReplTypedViews, HealthEncodeDecodeRoundTripsReplFields) {
    Response health;
    health.kind = Response::Kind::kHealth;
    health.health.live = true;
    health.health.ready = true;
    health.health.models = 2;
    health.health.role = "replica";
    health.health.repl_lag_frames = 5;
    health.health.repl_lag_seconds = 1.25;
    health.health.repl_source = "127.0.0.1:9000";
    health.health.repl_applied_generation = 41;

    const Response decoded = Response::decode(health.encode());
    ASSERT_EQ(decoded.kind, Response::Kind::kHealth);
    EXPECT_EQ(decoded.health.role, "replica");
    EXPECT_EQ(decoded.health.repl_lag_frames, 5u);
    EXPECT_DOUBLE_EQ(decoded.health.repl_lag_seconds, 1.25);
    EXPECT_EQ(decoded.health.repl_source, "127.0.0.1:9000");
    EXPECT_EQ(decoded.health.repl_applied_generation, 41u);
}

TEST(ReplTypedViews, UnknownFieldsLandInExtrasAndMalformedValuesThrow) {
    // Unknown keys are preserved verbatim (forward compat) — a v7 field
    // must survive a v6 decode untouched.
    const std::vector<serve::StatField> fields = {
        {"role", "replica"},
        {"repl_lag_frames", "7"},
        {"repl_quorum", "2/3"},  // unknown to this build
    };
    const auto stats = serve::ServerStats::from_fields(fields);
    EXPECT_EQ(stats.role, "replica");
    EXPECT_EQ(stats.repl_lag_frames, 7u);
    ASSERT_EQ(stats.extras.count("repl_quorum"), 1u);
    EXPECT_EQ(stats.extras.at("repl_quorum"), "2/3");

    const auto health = serve::ServerHealth::from_fields(fields);
    EXPECT_EQ(health.role, "replica");
    EXPECT_EQ(health.repl_lag_frames, 7u);
    EXPECT_EQ(health.extras.at("repl_quorum"), "2/3");

    // Known fields with malformed values fail loudly, never silently.
    for (const auto& bad : std::vector<serve::StatField>{
             {"repl_lag_frames", "many"},
             {"repl_lag_seconds", "soon"},
             {"repl_applied_generation", "-"},
             {"role", ""},
             {"repl_source", ""}}) {
        EXPECT_THROW((void)serve::ServerStats::from_fields({bad}), fpm::Error)
            << bad.name << "=" << bad.value;
        EXPECT_THROW((void)serve::ServerHealth::from_fields({bad}), fpm::Error)
            << bad.name << "=" << bad.value;
    }
}

// ---------------------------------------------------------------------------
// Client failover
// ---------------------------------------------------------------------------

TEST(ClientFailover, ConnectsPastADeadEndpointAndFailsOverMidStream) {
    ModelRegistry registry;
    registry.put("alpha", synthetic_models(2, 16, 1.0));
    RequestEngine engine(registry, {.workers = 2, .cache_capacity = 16});
    SocketServer primary(engine);
    primary.start();
    SocketServer backup(engine);
    backup.start();

    // A port nothing listens on: bind one, note it, close it.
    std::uint16_t dead_port = 0;
    {
        SocketServer probe(engine);
        probe.start();
        dead_port = probe.port();
        probe.stop();
    }

    ServeConfig config;
    config.max_retries = 3;
    config.backoff_base = 0.005;
    config.backoff_max = 0.02;

    // Connect-time failover: the dead endpoint is skipped in list order.
    {
        ServeClient client({Endpoint{"127.0.0.1", dead_port},
                            Endpoint{"127.0.0.1", backup.port()}},
                           config);
        EXPECT_EQ(client.failovers(), 1u);
        EXPECT_EQ(client.endpoint().port, backup.port());
        client.ping();
    }

    // Mid-stream failover: the active endpoint dies between requests and
    // call() reconnects against the next one transparently.
    ServeClient client({Endpoint{"127.0.0.1", primary.port()},
                        Endpoint{"127.0.0.1", backup.port()}},
                       config);
    Request request;
    request.kind = Request::Kind::kPartition;
    request.partition = {"alpha", 64, serve::Algorithm::kFpm, true};
    const Response before = client.call(request);
    ASSERT_EQ(before.kind, Response::Kind::kPartition);

    primary.stop();
    const Response after = client.call(request);
    ASSERT_EQ(after.kind, Response::Kind::kPartition);
    EXPECT_EQ(after.partition.blocks, before.partition.blocks);
    EXPECT_GE(client.failovers(), 1u);
    EXPECT_EQ(client.endpoint().port, backup.port());
    backup.stop();
}

TEST(ClientFailover, EndpointListParserAcceptsMixedForms) {
    const auto endpoints =
        serve::parse_endpoint_list("9001,node2:9002, 9003", "10.0.0.1");
    ASSERT_EQ(endpoints.size(), 3u);
    EXPECT_EQ(endpoints[0], (Endpoint{"10.0.0.1", 9001}));
    EXPECT_EQ(endpoints[1], (Endpoint{"node2", 9002}));
    EXPECT_EQ(endpoints[2], (Endpoint{"10.0.0.1", 9003}));
    for (const char* bad : {"", ",", "host:", ":9001", "host:notaport",
                            "70000"}) {
        EXPECT_THROW((void)serve::parse_endpoint_list(bad, "h"), fpm::Error)
            << bad;
    }
}

// ---------------------------------------------------------------------------
// Chaos: every repl.* fault armed; replication must converge anyway
// ---------------------------------------------------------------------------

TEST(ReplChaos, ArmedReplFaultsOnlyDelayConvergence) {
    FaultGuard fault_guard;
    ReplStatusGuard status_guard;
    TempDir primary_dir;
    TempDir replica_dir;
    Primary primary(primary_dir.path);
    primary.registry.put("alpha", synthetic_models(3, 24, 1.0));

    fault::install(fault::FaultPlan::parse(
        "seed=23,repl.handshake=0.5,repl.send=0.25,repl.apply=0.25"));
    Replica replica(replica_dir.path, primary.server->port());

    // Keep publishing until the replica has both survived at least one
    // injected failure and applied everything committed so far.
    std::uint64_t generation = 1;
    ASSERT_TRUE(wait_until(
        [&] {
            if (replica.replicator->reconnects() == 0 ||
                replica.replicator->applied_generation() < generation) {
                if (generation < 40) {
                    primary.registry.put(
                        "alpha", synthetic_models(
                                     3, 24, static_cast<double>(++generation)));
                }
                return false;
            }
            return true;
        },
        60.0))
        << "faults never both fired and healed (reconnects="
        << replica.replicator->reconnects()
        << ", applied=" << replica.replicator->applied_generation()
        << ", committed=" << generation << ")";

    // Disarm and verify clean convergence on the final content.
    fault::uninstall();
    primary.registry.put("alpha",
                         synthetic_models(3, 24, static_cast<double>(99)));
    ++generation;
    ASSERT_TRUE(wait_until([&] {
        return replica.replicator->applied_generation() ==
               primary.store.committed_generation();
    }));
    EXPECT_GE(replica.replicator->reconnects(), 1u);
    EXPECT_EQ(replica.registry.get("alpha")->fingerprint,
              primary.registry.get("alpha")->fingerprint);
    EXPECT_EQ(replica.registry.next_generation(),
              primary.registry.next_generation());
    EXPECT_EQ(max_generation(replica.registry), generation);
}

// ---------------------------------------------------------------------------
// The headline drill: fork a primary (serve + replication + adapt),
// stream mixed traffic through a failover client while adapt
// republishes, SIGKILL the primary, and verify the replica serves the
// last acknowledged generation bit-for-bit with zero torn replies.
// ---------------------------------------------------------------------------

TEST(ReplDrill, PrimarySigkillFailsOverToAConvergedReplica) {
    ReplStatusGuard status_guard;
    TempDir primary_dir;
    TempDir replica_dir;
    int port_pipe[2];
    ASSERT_EQ(::pipe(port_pipe), 0);

    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Child: the primary process — durable store, serve socket,
        // replication listener, online adaptation.  Reports its ports,
        // then serves until the SIGKILL lands.
        ::close(port_pipe[0]);
        try {
            ModelRegistry registry;
            ModelStore store(primary_dir.path);
            store.recover(registry);
            store.attach(registry);
            registry.put("hybrid", synthetic_models(3, 32, 1.0));
            RequestEngine engine(registry, {.workers = 2,
                                            .cache_capacity = 64});
            adapt::AdaptConfig adapt_config;
            adapt_config.min_samples = 2;
            adapt_config.drift_threshold = 0.05;
            adapt_config.cusum_limit = 0.1;
            adapt::AdaptEngine adapter(engine, adapt_config);
            ReplicationLog log(store);
            ReplServerConfig repl_config;
            repl_config.heartbeat_interval = 0.05;
            ReplicationServer repl_server(log, repl_config);
            SocketServer server(engine);
            server.start();
            const std::uint32_t ports[2] = {server.port(),
                                            repl_server.port()};
            if (::write(port_pipe[1], ports, sizeof ports) !=
                static_cast<ssize_t>(sizeof ports)) {
                ::_exit(2);
            }
            ::pause();  // hold everything open until the SIGKILL
        } catch (...) {
            ::_exit(1);
        }
        ::_exit(0);
    }

    ::close(port_pipe[1]);
    std::uint32_t ports[2] = {0, 0};
    ASSERT_EQ(::read(port_pipe[0], ports, sizeof ports),
              static_cast<ssize_t>(sizeof ports))
        << "primary child failed to start";
    ::close(port_pipe[0]);
    const auto serve_port = static_cast<std::uint16_t>(ports[0]);
    const auto repl_port = static_cast<std::uint16_t>(ports[1]);

    // Parent: the replica stack plus its own serve socket.
    Replica replica(replica_dir.path, repl_port);
    SocketServer replica_server(replica.engine);
    replica_server.start();

    // The failover client: primary first, replica second.
    ServeConfig client_config;
    client_config.max_retries = 4;
    client_config.backoff_base = 0.01;
    client_config.backoff_max = 0.05;
    client_config.connect_timeout = 2.0;
    client_config.recv_timeout = 5.0;
    ServeClient client({Endpoint{"127.0.0.1", serve_port},
                        Endpoint{"127.0.0.1", replica_server.port()}},
                       client_config);

    constexpr std::size_t kTotalRequests = 500;
    std::size_t issued = 0;
    std::size_t torn = 0;

    const auto issue_mixed = [&](std::size_t count, bool allow_read_only) {
        for (std::size_t i = 0; i < count; ++i, ++issued) {
            Request request;
            if (i % 7 == 3) {
                request.kind = Request::Kind::kStats;
            } else if (i % 7 == 5) {
                request.kind = Request::Kind::kHealth;
            } else {
                request.kind = Request::Kind::kPartition;
                request.partition = {"hybrid",
                                     16 + static_cast<std::int64_t>(i % 64),
                                     serve::Algorithm::kFpm, true};
            }
            try {
                const Response response = client.call(request);
                const bool expected_error =
                    response.kind == Response::Kind::kError &&
                    allow_read_only &&
                    response.error_code == ErrorCode::kReadOnly;
                if (response.kind == Response::Kind::kError &&
                    !expected_error) {
                    ++torn;
                }
            } catch (const fpm::Error&) {
                ++torn;  // transport failure the failover failed to mask
            }
        }
    };

    // Phase 1: mixed traffic against the live primary.
    issue_mixed(250, false);

    // Phase 2: feedback that disagrees with the served model (device 0
    // runs at half speed) until adapt republishes a refined generation.
    const SpeedFunction device0 = synthetic_models(3, 32, 1.0)[0];
    bool republished = false;
    for (int i = 0; i < 150 && !republished; ++i, ++issued) {
        Request request;
        request.kind = Request::Kind::kFeedback;
        request.feedback = {"hybrid", 0, 1000.0, 2.0 * device0.time(1000.0)};
        const Response response = client.call(request);
        ASSERT_EQ(response.kind, Response::Kind::kFeedback);
        republished = response.feedback.republished;
    }
    ASSERT_TRUE(republished) << "adapt never republished a generation";

    // The primary's committed generation (adapt only republishes on
    // ingest, so with feedback stopped this is stable).
    Request models_request;
    models_request.kind = Request::Kind::kModels;
    const Response models = client.call(models_request);
    ASSERT_EQ(models.kind, Response::Kind::kModels);
    ASSERT_EQ(models.sets.size(), 1u);
    const std::uint64_t last_acknowledged = models.sets[0].generation;
    EXPECT_GE(last_acknowledged, 2u);

    // Wait for full convergence, then record the primary's answers.
    ASSERT_TRUE(wait_until([&] {
        return replica.replicator->applied_generation() >= last_acknowledged;
    })) << "replica never acknowledged generation " << last_acknowledged;
    std::vector<serve::PartitionReply> expected;
    {
        ServeClient primary_only("127.0.0.1", serve_port);
        for (const std::int64_t n : {24, 96, 512}) {
            expected.push_back(
                primary_only.partition({"hybrid", n, serve::Algorithm::kFpm,
                                        true}));
        }
    }

    // The kill: primary gone mid-stream, replica takes over.
    ASSERT_EQ(::kill(child, SIGKILL), 0);
    int wait_status = 0;
    ASSERT_EQ(::waitpid(child, &wait_status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(wait_status));
    ASSERT_EQ(WTERMSIG(wait_status), SIGKILL);

    // Phase 3: the remaining traffic fails over to the replica.  Write
    // verbs now answer typed read_only errors; nothing may tear.
    ASSERT_GT(kTotalRequests, issued);
    issue_mixed(kTotalRequests - issued, true);
    EXPECT_EQ(issued, kTotalRequests);
    EXPECT_EQ(torn, 0u);
    EXPECT_GE(client.failovers(), 1u);
    EXPECT_EQ(client.endpoint().port, replica_server.port());

    // FEEDBACK against the replica is a typed read_only rejection.
    try {
        (void)client.report_feedback({"hybrid", 0, 1000.0, 2.0});
        FAIL() << "expected ERR read_only from the replica";
    } catch (const ServiceError& e) {
        EXPECT_EQ(e.code(), ErrorCode::kReadOnly);
    }

    // The replica's HEALTH reports the last acknowledged generation and
    // a staleness clock that started growing when the primary died.
    EXPECT_EQ(replica.replicator->applied_generation(), last_acknowledged);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    const auto health = client.health();
    EXPECT_EQ(health.role, "replica");
    EXPECT_EQ(health.repl_applied_generation, last_acknowledged);
    EXPECT_GT(health.repl_lag_seconds, 0.0);

    // PARTITION replies are bit-for-bit what the primary last served
    // (modulo cached=, which depends on each engine's cache history).
    for (const auto& want : expected) {
        const auto got = client.partition({want.model, want.n,
                                           want.algorithm, true});
        EXPECT_EQ(got.generation, want.generation);
        EXPECT_EQ(got.blocks, want.blocks);
        EXPECT_EQ(got.makespan, want.makespan);
        EXPECT_EQ(got.balanced_time, want.balanced_time);
        EXPECT_EQ(got.comm_cost, want.comm_cost);
        ASSERT_EQ(got.rects.size(), want.rects.size());
        for (std::size_t r = 0; r < want.rects.size(); ++r) {
            EXPECT_EQ(got.rects[r].col0, want.rects[r].col0);
            EXPECT_EQ(got.rects[r].row0, want.rects[r].row0);
            EXPECT_EQ(got.rects[r].w, want.rects[r].w);
            EXPECT_EQ(got.rects[r].h, want.rects[r].h);
        }
    }

    replica_server.stop();
}

} // namespace
} // namespace fpm::repl

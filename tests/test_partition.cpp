// Tests for the simple partitioners (homogeneous, CPM) and the
// makespan/imbalance evaluators.
#include <gtest/gtest.h>

#include <numeric>

#include "fpm/part/partition.hpp"

namespace fpm::part {
namespace {

TEST(Homogeneous, EqualShares) {
    const Partition1D p = partition_homogeneous(4, 100.0);
    ASSERT_EQ(p.share.size(), 4U);
    for (const double share : p.share) {
        EXPECT_DOUBLE_EQ(share, 25.0);
    }
    EXPECT_DOUBLE_EQ(p.total(), 100.0);
}

TEST(Homogeneous, Validation) {
    EXPECT_THROW(partition_homogeneous(0, 10.0), fpm::Error);
    EXPECT_THROW(partition_homogeneous(2, -1.0), fpm::Error);
    EXPECT_DOUBLE_EQ(partition_homogeneous(3, 0.0).total(), 0.0);
}

TEST(Cpm, ProportionalToSpeeds) {
    const std::vector<double> speeds = {10.0, 30.0, 60.0};
    const Partition1D p = partition_cpm(speeds, 200.0);
    EXPECT_DOUBLE_EQ(p.share[0], 20.0);
    EXPECT_DOUBLE_EQ(p.share[1], 60.0);
    EXPECT_DOUBLE_EQ(p.share[2], 120.0);
    EXPECT_DOUBLE_EQ(p.total(), 200.0);
}

TEST(Cpm, ZeroSpeedDeviceGetsNothing) {
    const std::vector<double> speeds = {0.0, 50.0};
    const Partition1D p = partition_cpm(speeds, 100.0);
    EXPECT_DOUBLE_EQ(p.share[0], 0.0);
    EXPECT_DOUBLE_EQ(p.share[1], 100.0);
}

TEST(Cpm, Validation) {
    EXPECT_THROW(partition_cpm(std::vector<double>{}, 10.0), fpm::Error);
    EXPECT_THROW(partition_cpm(std::vector<double>{-1.0, 2.0}, 10.0), fpm::Error);
    EXPECT_THROW(partition_cpm(std::vector<double>{0.0, 0.0}, 10.0), fpm::Error);
}

TEST(Cpm, BalancesConstantSpeedDevicesExactly) {
    // For genuinely constant-speed devices, proportional distribution is
    // the balanced optimum: every device finishes at the same time.
    const std::vector<double> speeds = {5.0, 7.5, 12.0, 40.0};
    const Partition1D p = partition_cpm(speeds, 1000.0);
    for (std::size_t i = 0; i < speeds.size(); ++i) {
        EXPECT_NEAR(p.share[i] / speeds[i], 1000.0 / (5.0 + 7.5 + 12.0 + 40.0),
                    1e-9);
    }
}

TEST(Makespan, MaxOverBusyDevices) {
    const std::vector<core::SpeedFunction> models = {
        core::SpeedFunction::constant(10.0),
        core::SpeedFunction::constant(5.0),
    };
    const std::vector<double> shares = {10.0, 20.0};
    EXPECT_DOUBLE_EQ(makespan(models, shares), 4.0);

    const std::vector<double> idle = {10.0, 0.0};
    EXPECT_DOUBLE_EQ(makespan(models, idle), 1.0);
}

TEST(Makespan, IntegerOverload) {
    const std::vector<core::SpeedFunction> models = {
        core::SpeedFunction::constant(4.0),
    };
    const std::vector<std::int64_t> shares = {8};
    EXPECT_DOUBLE_EQ(makespan(models, std::span<const std::int64_t>(shares)),
                     2.0);
}

TEST(Makespan, Validation) {
    const std::vector<core::SpeedFunction> models = {
        core::SpeedFunction::constant(4.0),
    };
    const std::vector<double> wrong_size = {1.0, 2.0};
    EXPECT_THROW(makespan(models, wrong_size), fpm::Error);
    const std::vector<double> negative = {-1.0};
    EXPECT_THROW(makespan(models, negative), fpm::Error);
}

TEST(Imbalance, ZeroForBalancedLoad) {
    const std::vector<core::SpeedFunction> models = {
        core::SpeedFunction::constant(10.0),
        core::SpeedFunction::constant(20.0),
    };
    const std::vector<double> balanced = {10.0, 20.0};  // both take 1 s
    EXPECT_NEAR(imbalance(models, balanced), 0.0, 1e-12);
}

TEST(Imbalance, DetectsStraggler) {
    const std::vector<core::SpeedFunction> models = {
        core::SpeedFunction::constant(10.0),
        core::SpeedFunction::constant(10.0),
    };
    const std::vector<double> skewed = {30.0, 10.0};  // 3 s vs 1 s
    EXPECT_NEAR(imbalance(models, skewed), 2.0 / 3.0, 1e-12);
}

TEST(Imbalance, AllIdleIsZero) {
    const std::vector<core::SpeedFunction> models = {
        core::SpeedFunction::constant(10.0),
    };
    const std::vector<double> idle = {0.0};
    EXPECT_DOUBLE_EQ(imbalance(models, idle), 0.0);
}

} // namespace
} // namespace fpm::part

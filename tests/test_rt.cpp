// Tests for the in-process runtime: thread pool, barrier, channel and the
// SPMD process group.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "fpm/rt/barrier.hpp"
#include "fpm/rt/channel.hpp"
#include "fpm/rt/process_group.hpp"
#include "fpm/rt/thread_pool.hpp"
#include "stress_harness.hpp"

namespace fpm::rt {
namespace {

TEST(ThreadPool, SubmitReturnsResults) {
    ThreadPool pool(3);
    auto future = pool.submit([]() { return 6 * 7; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
    ThreadPool pool(2);
    auto future = pool.submit([]() -> int { throw fpm::Error("boom"); });
    EXPECT_THROW(future.get(), fpm::Error);
}

TEST(ThreadPool, ManyTasksAllRun) {
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 200; ++i) {
        futures.push_back(pool.submit([&counter]() { ++counter; }));
    }
    for (auto& f : futures) {
        f.get();
    }
    EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(100);
    pool.parallel_for(10, 90, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i].load(), (i >= 10 && i < 90) ? 1 : 0) << i;
    }
}

TEST(ThreadPool, ParallelForEmptyRange) {
    ThreadPool pool(2);
    bool ran = false;
    pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(0, 50,
                                   [](std::size_t i) {
                                       if (i == 13) {
                                           throw fpm::Error("unlucky");
                                       }
                                   }),
                 fpm::Error);
}

TEST(ThreadPool, ZeroWorkersRejected) {
    EXPECT_THROW(ThreadPool(0), fpm::Error);
}

TEST(Barrier, SynchronisesRounds) {
    constexpr std::size_t kParties = 4;
    constexpr int kRounds = 25;
    Barrier barrier(kParties);
    std::atomic<int> phase_counter{0};
    std::vector<std::thread> threads;
    std::atomic<bool> ordering_violation{false};

    for (std::size_t p = 0; p < kParties; ++p) {
        threads.emplace_back([&]() {
            for (int round = 0; round < kRounds; ++round) {
                ++phase_counter;
                barrier.arrive_and_wait();
                // After the barrier, every party of this round has
                // incremented: the counter must be a multiple boundary.
                if (phase_counter.load() < (round + 1) * static_cast<int>(kParties)) {
                    ordering_violation = true;
                }
                barrier.arrive_and_wait();
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    EXPECT_FALSE(ordering_violation.load());
    EXPECT_EQ(phase_counter.load(), kRounds * static_cast<int>(kParties));
}

TEST(Barrier, SinglePartyNeverBlocks) {
    Barrier barrier(1);
    barrier.arrive_and_wait();
    barrier.arrive_and_wait();
    SUCCEED();
}

TEST(Channel, SendReceiveOrder) {
    Channel<int> channel;
    channel.send(1);
    channel.send(2);
    channel.send(3);
    EXPECT_EQ(channel.receive(), 1);
    EXPECT_EQ(channel.receive(), 2);
    EXPECT_EQ(channel.try_receive(), 3);
    EXPECT_EQ(channel.try_receive(), std::nullopt);
}

TEST(Channel, CloseWakesReceivers) {
    Channel<int> channel;
    std::optional<int> received = 42;
    std::thread receiver([&]() { received = channel.receive(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    channel.close();
    receiver.join();
    EXPECT_EQ(received, std::nullopt);
}

TEST(Channel, SendOnClosedThrows) {
    Channel<int> channel;
    channel.close();
    EXPECT_THROW(channel.send(1), fpm::Error);
    EXPECT_TRUE(channel.closed());
}

TEST(Channel, BoundedCapacityBlocksAndDrains) {
    Channel<int> channel(2);
    channel.send(1);
    channel.send(2);
    std::atomic<bool> third_sent{false};
    std::thread sender([&]() {
        channel.send(3);  // blocks until a receive frees a slot
        third_sent = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_FALSE(third_sent.load());
    EXPECT_EQ(channel.receive(), 1);
    sender.join();
    EXPECT_TRUE(third_sent.load());
}

TEST(Channel, CrossThreadThroughput) {
    Channel<int> channel(8);
    constexpr int kMessages = 500;
    std::int64_t sum = 0;
    std::thread consumer([&]() {
        while (auto value = channel.receive()) {
            sum += *value;
        }
    });
    for (int i = 1; i <= kMessages; ++i) {
        channel.send(i);
    }
    channel.close();
    consumer.join();
    EXPECT_EQ(sum, static_cast<std::int64_t>(kMessages) * (kMessages + 1) / 2);
}

TEST(ProcessGroup, RanksAndSize) {
    ProcessGroup group(5);
    std::vector<std::atomic<int>> seen(5);
    group.run([&](ProcessContext& context) {
        EXPECT_EQ(context.size(), 5U);
        ++seen[context.rank()];
    });
    for (auto& s : seen) {
        EXPECT_EQ(s.load(), 1);
    }
}

TEST(ProcessGroup, BroadcastDeliversRootValue) {
    ProcessGroup group(6);
    std::vector<double> received(6, -1.0);
    group.run([&](ProcessContext& context) {
        const double mine = static_cast<double>(context.rank()) * 10.0;
        received[context.rank()] = context.broadcast(mine, 3);
    });
    for (const double value : received) {
        EXPECT_DOUBLE_EQ(value, 30.0);
    }
}

TEST(ProcessGroup, SequentialBroadcastRounds) {
    ProcessGroup group(4);
    std::vector<double> sums(4, 0.0);
    group.run([&](ProcessContext& context) {
        for (std::size_t root = 0; root < 4; ++root) {
            sums[context.rank()] +=
                context.broadcast(static_cast<double>(context.rank() + 1), root);
        }
    });
    for (const double sum : sums) {
        EXPECT_DOUBLE_EQ(sum, 1.0 + 2.0 + 3.0 + 4.0);
    }
}

TEST(ProcessGroup, AllReduceMax) {
    ProcessGroup group(7);
    std::vector<double> results(7, 0.0);
    group.run([&](ProcessContext& context) {
        results[context.rank()] =
            context.all_reduce_max(static_cast<double>(context.rank()));
    });
    for (const double value : results) {
        EXPECT_DOUBLE_EQ(value, 6.0);
    }
}

TEST(ProcessGroup, CoreBindingBookkeeping) {
    ProcessGroup group(3);
    group.run([&](ProcessContext& context) {
        EXPECT_EQ(context.bound_core(), -1);
        context.bind_to_core(static_cast<unsigned>(context.rank() * 2));
        EXPECT_EQ(context.bound_core(), static_cast<int>(context.rank() * 2));
    });
}

TEST(ProcessGroup, ExceptionFromOneRankPropagates) {
    ProcessGroup group(3);
    EXPECT_THROW(group.run([&](ProcessContext& context) {
        if (context.rank() == 1) {
            throw fpm::Error("rank 1 failed");
        }
        // Other ranks must not deadlock on a barrier here; they simply
        // finish their work.
    }),
                 fpm::Error);
}

// Concurrency stress: the serve layer funnels every partition request
// through the pool and channels, so hammer them from many simultaneous
// producers and consumers (shared harness with test_serve).
TEST(Stress, ChannelManyProducersManyConsumers) {
    constexpr std::size_t kProducers = 8;
    constexpr std::size_t kConsumers = 8;
    constexpr int kPerProducer = 500;
    Channel<int> channel(16);
    std::atomic<std::int64_t> sum{0};
    std::atomic<std::int64_t> received{0};
    std::atomic<std::size_t> producers_left{kProducers};

    fpm::test::run_concurrently(kProducers + kConsumers, [&](std::size_t id) {
        if (id < kProducers) {
            for (int i = 1; i <= kPerProducer; ++i) {
                channel.send(i);
            }
            if (--producers_left == 0) {
                channel.close();
            }
        } else {
            while (auto value = channel.receive()) {
                sum += *value;
                ++received;
            }
        }
    });

    const std::int64_t per_producer =
        static_cast<std::int64_t>(kPerProducer) * (kPerProducer + 1) / 2;
    EXPECT_EQ(received.load(),
              static_cast<std::int64_t>(kProducers) * kPerProducer);
    EXPECT_EQ(sum.load(), static_cast<std::int64_t>(kProducers) * per_producer);
}

TEST(Stress, ThreadPoolSubmitStorm) {
    constexpr std::size_t kSubmitters = 12;
    static constexpr int kPerSubmitter = 200;
    ThreadPool pool(4);
    std::atomic<std::int64_t> executed{0};

    fpm::test::run_concurrently(kSubmitters, [&](std::size_t id) {
        std::vector<std::future<std::int64_t>> futures;
        futures.reserve(kPerSubmitter);
        for (int i = 0; i < kPerSubmitter; ++i) {
            futures.push_back(pool.submit([&executed, id, i]() {
                ++executed;
                return static_cast<std::int64_t>(id) * kPerSubmitter + i;
            }));
        }
        for (int i = 0; i < kPerSubmitter; ++i) {
            EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(),
                      static_cast<std::int64_t>(id) * kPerSubmitter + i);
        }
    });
    EXPECT_EQ(executed.load(),
              static_cast<std::int64_t>(kSubmitters) * kPerSubmitter);
}

TEST(Stress, ThreadPoolFeedsChannelPipeline) {
    // Producers submit pool tasks whose results stream through a channel
    // to concurrent consumers — the serve request/response shape.
    constexpr int kItems = 1000;
    ThreadPool pool(4);
    Channel<std::int64_t> results(8);
    std::atomic<std::int64_t> total{0};

    fpm::test::run_concurrently(4, [&](std::size_t id) {
        if (id == 0) {  // dispatcher
            std::vector<std::future<void>> futures;
            futures.reserve(kItems);
            for (int i = 1; i <= kItems; ++i) {
                futures.push_back(pool.submit(
                    [&results, i]() { results.send(i); }));
            }
            for (auto& future : futures) {
                future.get();
            }
            results.close();
        } else {  // consumers
            while (auto value = results.receive()) {
                total += *value;
            }
        }
    });
    EXPECT_EQ(total.load(),
              static_cast<std::int64_t>(kItems) * (kItems + 1) / 2);
}

TEST(ProcessGroup, Validation) {
    EXPECT_THROW(ProcessGroup(0), fpm::Error);
    ProcessGroup group(2);
    EXPECT_THROW(group.run(nullptr), fpm::Error);
}

} // namespace
} // namespace fpm::rt

// Tests for the stencil application family: real-kernel correctness, the
// simulated performance model's memory-bound / PCIe-cliff character, and
// the FPM pipeline's handling of a second, very different workload.
#include <gtest/gtest.h>

#include <numeric>

#include "fpm/app/stencil.hpp"
#include "fpm/common/rng.hpp"
#include "fpm/core/fpm_builder.hpp"
#include "fpm/core/stencil_bench.hpp"
#include "fpm/part/fpm_partitioner.hpp"
#include "fpm/part/integer.hpp"
#include "fpm/sim/stencil_model.hpp"

namespace fpm::app {
namespace {

blas::Matrix<float> random_grid(std::size_t rows, std::size_t cols,
                                std::uint64_t seed) {
    blas::Matrix<float> grid(rows, cols);
    Rng rng(seed);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            grid(r, c) = static_cast<float>(rng.uniform(0.0, 1.0));
        }
    }
    return grid;
}

TEST(StencilKernel, SweepAveragesNeighbours) {
    blas::Matrix<float> src(3, 3, 0.0F);
    src(0, 1) = 1.0F;
    src(1, 0) = 2.0F;
    src(1, 1) = 3.0F;
    src(1, 2) = 4.0F;
    src(2, 1) = 5.0F;
    blas::Matrix<float> dst(3, 3, -1.0F);
    stencil_sweep(src.view(), dst.view(), 1, 2);
    EXPECT_FLOAT_EQ(dst(1, 1), 0.2F * (1 + 2 + 3 + 4 + 5));
    // Boundary untouched.
    EXPECT_FLOAT_EQ(dst(0, 0), -1.0F);
}

TEST(StencilKernel, BoundaryHeldFixedByReference) {
    auto grid = random_grid(8, 9, 1);
    const auto before = grid;
    stencil_reference(grid, 5);
    for (std::size_t c = 0; c < grid.cols(); ++c) {
        EXPECT_FLOAT_EQ(grid(0, c), before(0, c));
        EXPECT_FLOAT_EQ(grid(7, c), before(7, c));
    }
    for (std::size_t r = 0; r < grid.rows(); ++r) {
        EXPECT_FLOAT_EQ(grid(r, 0), before(r, 0));
        EXPECT_FLOAT_EQ(grid(r, 8), before(r, 8));
    }
}

TEST(StencilKernel, ConvergesTowardsBoundaryMean) {
    // All-zero boundary pulls the interior to zero.
    blas::Matrix<float> grid(16, 16, 0.0F);
    for (std::size_t r = 1; r < 15; ++r) {
        for (std::size_t c = 1; c < 15; ++c) {
            grid(r, c) = 1.0F;
        }
    }
    stencil_reference(grid, 500);
    EXPECT_LT(grid(8, 8), 0.01F);
}

class StencilParallel : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StencilParallel, MatchesSerialReference) {
    const auto [devices, sweeps] = GetParam();
    const std::size_t rows = 26;
    const std::size_t cols = 19;

    auto parallel_grid = random_grid(rows, cols, 42);
    auto serial_grid = parallel_grid;

    // Uneven bands summing to the interior.
    std::vector<std::int64_t> bands(devices, 0);
    std::int64_t interior = static_cast<std::int64_t>(rows) - 2;
    for (int i = 0; i < devices; ++i) {
        bands[i] = interior / devices + (i < interior % devices ? 1 : 0);
    }
    std::vector<unsigned> threads(devices, 1);
    threads[0] = 2;

    const auto report =
        run_real_stencil(bands, threads, parallel_grid, sweeps);
    stencil_reference(serial_grid, sweeps);

    EXPECT_LT(blas::max_abs_diff<float>(parallel_grid.view(), serial_grid.view()),
              1e-6);
    EXPECT_EQ(report.device_seconds.size(), static_cast<std::size_t>(devices));
}

INSTANTIATE_TEST_SUITE_P(Bands, StencilParallel,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(0, 1, 4, 7)));

TEST(StencilParallel, ZeroRowBandIsAllowed) {
    auto grid = random_grid(10, 10, 3);
    auto reference = grid;
    const std::vector<std::int64_t> bands = {8, 0};
    const std::vector<unsigned> threads = {1, 1};
    run_real_stencil(bands, threads, grid, 3);
    stencil_reference(reference, 3);
    EXPECT_LT(blas::max_abs_diff<float>(grid.view(), reference.view()), 1e-6);
}

TEST(StencilParallel, Validation) {
    auto grid = random_grid(10, 10, 4);
    const std::vector<std::int64_t> wrong_sum = {5, 5};  // interior is 8
    const std::vector<unsigned> threads = {1, 1};
    EXPECT_THROW(run_real_stencil(wrong_sum, threads, grid, 1), fpm::Error);
    const std::vector<std::int64_t> bands = {8};
    EXPECT_THROW(run_real_stencil(bands, threads, grid, 1), fpm::Error);
}

} // namespace
} // namespace fpm::app

namespace fpm::sim {
namespace {

class StencilModelTest : public ::testing::Test {
protected:
    HybridNode node_{ig_platform(), {}};
    StencilSpec spec_{};
};

TEST_F(StencilModelTest, SocketIsMemoryBound) {
    // Adding cores beyond the bandwidth saturation point buys almost
    // nothing (unlike GEMM).
    const double t1 = stencil_cpu_sweep_time(node_, 0, 1, 2000.0, spec_);
    const double t6 = stencil_cpu_sweep_time(node_, 0, 6, 2000.0, spec_);
    EXPECT_LT(t6, t1);                // some gain (1 core is compute-bound)
    EXPECT_GT(t6, t1 / 4.0);          // far from linear scaling
}

TEST_F(StencilModelTest, GpuDominatesWhileResident) {
    const double resident = stencil_gpu_resident_rows(node_, 1, spec_);
    const double rows = resident * 0.5;
    const double gpu = stencil_gpu_sweep_time(node_, 1, rows, spec_);
    const double cpu = stencil_cpu_sweep_time(node_, 0, 6, rows, spec_);
    EXPECT_LT(gpu, cpu / 4.0);  // device bandwidth >> socket bandwidth
}

TEST_F(StencilModelTest, PcieCliffMakesGpuWorseThanSocket) {
    // Far out of core the GPU must stream most of the band over PCIe each
    // sweep and loses to a plain socket — a much harsher cliff than GEMM.
    const double resident = stencil_gpu_resident_rows(node_, 1, spec_);
    const double rows = resident * 8.0;
    const double gpu = stencil_gpu_sweep_time(node_, 1, rows, spec_);
    const double cpu = stencil_cpu_sweep_time(node_, 0, 6, rows, spec_);
    EXPECT_GT(gpu, cpu);
}

TEST_F(StencilModelTest, SweepTimeMonotoneInRows) {
    double previous = 0.0;
    for (double rows = 100.0; rows <= 200000.0; rows *= 1.7) {
        const double t = stencil_gpu_sweep_time(node_, 1, rows, spec_);
        EXPECT_GT(t, previous);
        previous = t;
    }
}

TEST_F(StencilModelTest, Validation) {
    EXPECT_THROW(stencil_cpu_sweep_time(node_, 9, 6, 100.0, spec_), fpm::Error);
    EXPECT_THROW(stencil_cpu_sweep_time(node_, 0, 0, 100.0, spec_), fpm::Error);
    EXPECT_THROW(stencil_cpu_sweep_time(node_, 0, 6, 0.0, spec_), fpm::Error);
    StencilSpec bad = spec_;
    bad.bandwidth_efficiency = 0.0;
    EXPECT_THROW(stencil_gpu_sweep_time(node_, 1, 100.0, bad), fpm::Error);
}

TEST_F(StencilModelTest, FpmPipelineBalancesStencilWorkload) {
    // End to end with the generic machinery: build stencil FPMs for the
    // GTX680 and the four sockets, partition a deep out-of-core grid, and
    // verify the GPU is NOT overloaded (its share must stay close to its
    // resident capacity, not its in-core speed ratio).
    core::SimGpuStencilBench gpu_bench(node_, 1, spec_);
    std::vector<core::SpeedFunction> models;

    core::FpmBuildOptions options;
    options.x_min = 64.0;
    options.x_max = 500000.0;
    options.initial_points = 12;
    options.max_points = 36;
    options.reliability.min_repetitions = 1;
    options.reliability.max_repetitions = 1;
    models.push_back(core::build_fpm(gpu_bench, options));
    for (std::size_t s = 0; s < node_.socket_count(); ++s) {
        core::SimCpuStencilBench cpu_bench(node_, s, 6, spec_);
        models.push_back(core::build_fpm(cpu_bench, options));
    }

    const std::int64_t total_rows = 400000;  // far beyond device memory
    const auto result =
        part::partition_fpm(models, static_cast<double>(total_rows));
    const auto blocks = part::round_partition(
        result.partition, total_rows, models);

    EXPECT_EQ(blocks.total(), total_rows);
    // A CPM calibrated in-core would hand the GPU its in-core speed share
    // (the device-bandwidth ratio, ~10x a socket); the FPM backs off to
    // the PCIe-limited marginal rate.
    std::vector<double> cpm_speeds;
    cpm_speeds.push_back(1000.0 / models[0].time(1000.0));  // in-core rate
    for (std::size_t s = 1; s < models.size(); ++s) {
        cpm_speeds.push_back(1000.0 / models[s].time(1000.0));
    }
    const auto cpm = part::partition_cpm(cpm_speeds,
                                         static_cast<double>(total_rows));
    EXPECT_GT(cpm.share[0], 2.5 * static_cast<double>(blocks.blocks[0]))
        << "the CPM would overload the GPU by >2.5x relative to the FPM";
    // And the sockets' loads equalise.
    EXPECT_NEAR(static_cast<double>(blocks.blocks[1]),
                static_cast<double>(blocks.blocks[4]),
                0.02 * static_cast<double>(blocks.blocks[1]));
}

} // namespace
} // namespace fpm::sim

// Tests for integer rounding of continuous partitions: largest-remainder
// conservation, capacity repair and the makespan-reducing local search.
#include <gtest/gtest.h>

#include "fpm/part/integer.hpp"

namespace fpm::part {
namespace {

using core::SpeedFunction;

TEST(LargestRemainder, PreservesTotalExactly) {
    Partition1D p;
    p.share = {10.4, 20.3, 30.3};  // sums to 61
    const auto rounded = round_largest_remainder(p, 61);
    EXPECT_EQ(rounded.total(), 61);
    // Each device within one block of its continuous share.
    EXPECT_NEAR(static_cast<double>(rounded.blocks[0]), 10.4, 1.0);
    EXPECT_NEAR(static_cast<double>(rounded.blocks[1]), 20.3, 1.0);
    EXPECT_NEAR(static_cast<double>(rounded.blocks[2]), 30.3, 1.0);
}

TEST(LargestRemainder, LargestFractionsWin) {
    Partition1D p;
    p.share = {1.9, 1.1, 1.0};  // sums to 4
    const auto rounded = round_largest_remainder(p, 4);
    EXPECT_EQ(rounded.blocks[0], 2);
    EXPECT_EQ(rounded.blocks[1], 1);
    EXPECT_EQ(rounded.blocks[2], 1);
}

TEST(LargestRemainder, ExactIntegersPassThrough) {
    Partition1D p;
    p.share = {5.0, 7.0, 0.0};
    const auto rounded = round_largest_remainder(p, 12);
    EXPECT_EQ(rounded.blocks[0], 5);
    EXPECT_EQ(rounded.blocks[1], 7);
    EXPECT_EQ(rounded.blocks[2], 0);
}

TEST(LargestRemainder, Validation) {
    Partition1D empty;
    EXPECT_THROW(round_largest_remainder(empty, 10), fpm::Error);
    Partition1D negative;
    negative.share = {-1.0, 2.0};
    EXPECT_THROW(round_largest_remainder(negative, 1), fpm::Error);
    Partition1D mismatched;
    mismatched.share = {1.0, 2.0};  // sums to 3, asked for 10
    EXPECT_THROW(round_largest_remainder(mismatched, 10), fpm::Error);
    Partition1D overfull;
    overfull.share = {6.0, 6.0};
    EXPECT_THROW(round_largest_remainder(overfull, 10), fpm::Error);
}

TEST(RoundPartition, KeepsSumAndRespectsCapacity) {
    const std::vector<SpeedFunction> models = {
        SpeedFunction({{1.0, 10.0}, {100.0, 10.0}}, "gpu", 50.0),
        SpeedFunction::constant(5.0, "cpu"),
    };
    Partition1D p;
    p.share = {49.6, 50.4};
    const auto rounded = round_partition(p, 100, models);
    EXPECT_EQ(rounded.total(), 100);
    EXPECT_LE(static_cast<double>(rounded.blocks[0]), 50.0);
}

TEST(RoundPartition, LocalSearchNeverWorsensMakespan) {
    const std::vector<SpeedFunction> models = {
        SpeedFunction::constant(3.0, "a"),
        SpeedFunction::constant(11.0, "b"),
        SpeedFunction::constant(23.0, "c"),
    };
    Partition1D p;
    // Deliberately unbalanced continuous shares that still sum to 100.
    p.share = {40.0, 30.0, 30.0};
    const auto naive = round_largest_remainder(p, 100);
    const auto refined = round_partition(p, 100, models);
    EXPECT_EQ(refined.total(), 100);
    EXPECT_LE(makespan(models, std::span<const std::int64_t>(refined.blocks)),
              makespan(models, std::span<const std::int64_t>(naive.blocks)) +
                  1e-12);
}

TEST(RoundPartition, LocalSearchFindsBalancedSolution) {
    const std::vector<SpeedFunction> models = {
        SpeedFunction::constant(1.0, "slow"),
        SpeedFunction::constant(9.0, "fast"),
    };
    Partition1D p;
    p.share = {50.0, 50.0};  // badly unbalanced starting point
    const auto refined = round_partition(p, 100, models);
    // Optimum: 10 / 90 (both take 10 s).
    const double t =
        makespan(models, std::span<const std::int64_t>(refined.blocks));
    EXPECT_NEAR(t, 10.0, 1.0);
}

TEST(RoundPartition, CapacityOverflowRepaired) {
    const std::vector<SpeedFunction> models = {
        SpeedFunction({{1.0, 100.0}}, "gpu", 10.0),
        SpeedFunction::constant(1.0, "cpu"),
    };
    Partition1D p;
    p.share = {10.6, 9.4};  // remainder rounding could push gpu to 11 > cap
    const auto rounded = round_partition(p, 20, models);
    EXPECT_EQ(rounded.total(), 20);
    EXPECT_LE(rounded.blocks[0], 10);
}

TEST(RoundPartition, ImpossibleCapacityThrows) {
    const std::vector<SpeedFunction> models = {
        SpeedFunction({{1.0, 10.0}}, "g1", 5.0),
        SpeedFunction({{1.0, 10.0}}, "g2", 5.0),
    };
    Partition1D p;
    p.share = {5.0, 5.0};
    EXPECT_NO_THROW(round_partition(p, 10, models));

    // A genuinely infeasible total: no redistribution can fit 10 blocks
    // into capacities 5 + 4.
    const std::vector<SpeedFunction> tight = {
        SpeedFunction({{1.0, 10.0}}, "g1", 5.0),
        SpeedFunction({{1.0, 10.0}}, "g2", 4.0),
    };
    Partition1D overflow;
    overflow.share = {6.0, 4.0};
    EXPECT_THROW(round_partition(overflow, 10, tight), fpm::Error);

    // A repairable overflow moves the excess to the device with room.
    const auto repaired = round_partition(overflow, 10, models);
    EXPECT_EQ(repaired.blocks[0], 5);
    EXPECT_EQ(repaired.blocks[1], 5);
}

TEST(RoundPartition, ZeroBlocksForZeroShares) {
    const std::vector<SpeedFunction> models = {
        SpeedFunction::constant(1.0),
        SpeedFunction::constant(1.0),
    };
    Partition1D p;
    p.share = {0.0, 4.0};
    const auto rounded = round_partition(p, 4, models);
    EXPECT_EQ(rounded.blocks[0] + rounded.blocks[1], 4);
}

TEST(RoundPartition, MoreDevicesThanBlocks) {
    const std::vector<SpeedFunction> models = {
        SpeedFunction::constant(1.0), SpeedFunction::constant(1.0),
        SpeedFunction::constant(1.0), SpeedFunction::constant(1.0),
        SpeedFunction::constant(1.0)};
    Partition1D p;
    p.share = {0.4, 0.4, 0.4, 0.4, 0.4};
    const auto rounded = round_partition(p, 2, models);
    EXPECT_EQ(rounded.total(), 2);
    for (const auto blocks : rounded.blocks) {
        EXPECT_GE(blocks, 0);
        EXPECT_LE(blocks, 1);
    }
}

} // namespace
} // namespace fpm::part

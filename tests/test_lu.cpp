// Tests for the blocked LU application: factorisation correctness across
// shapes and device populations, pivot guards, and the simulated
// FPM-vs-homogeneous comparison.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "fpm/app/lu.hpp"
#include "fpm/common/rng.hpp"

namespace fpm::app {
namespace {

/// Random diagonally-dominant matrix (stable without pivoting).
blas::Matrix<float> random_dd_matrix(std::size_t n, std::uint64_t seed) {
    blas::Matrix<float> a(n, n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        float row_sum = 0.0F;
        for (std::size_t j = 0; j < n; ++j) {
            a(i, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
            row_sum += std::fabs(a(i, j));
        }
        a(i, i) = row_sum + 1.0F;
    }
    return a;
}

TEST(LuReference, FactorisesKnownMatrix) {
    // A = [[4, 3], [6, 3]]: L21 = 1.5, U = [[4, 3], [0, -1.5]].
    blas::Matrix<float> a(2, 2);
    a(0, 0) = 4;
    a(0, 1) = 3;
    a(1, 0) = 6;
    a(1, 1) = 3;
    lu_reference(a.view());
    EXPECT_FLOAT_EQ(a(1, 0), 1.5F);
    EXPECT_FLOAT_EQ(a(1, 1), -1.5F);
    EXPECT_FLOAT_EQ(a(0, 0), 4.0F);
    EXPECT_FLOAT_EQ(a(0, 1), 3.0F);
}

TEST(LuReference, ReconstructsOriginal) {
    const auto original = random_dd_matrix(24, 5);
    auto factors = original;
    lu_reference(factors.view());
    const auto product = lu_multiply_factors(factors);
    EXPECT_LT(blas::max_abs_diff<float>(product.view(), original.view()),
              1e-3);
}

TEST(LuReference, RejectsSingularMatrix) {
    blas::Matrix<float> a(2, 2, 0.0F);  // zero pivot immediately
    EXPECT_THROW(lu_reference(a.view()), fpm::Error);
    blas::Matrix<float> rect(2, 3);
    EXPECT_THROW(lu_reference(rect.view()), fpm::Error);
}

using LuCase = std::tuple<int, int, int>;  // blocks, block size, devices

class LuBlocked : public ::testing::TestWithParam<LuCase> {};

TEST_P(LuBlocked, MatchesUnblockedReference) {
    const auto [blocks, block, device_count] = GetParam();
    const std::size_t n = static_cast<std::size_t>(blocks) * block;
    const auto original = random_dd_matrix(n, 100 + n);

    auto blocked = original;
    std::vector<LuDevice> devices(device_count);
    for (int d = 0; d < device_count; ++d) {
        devices[d].threads = (d == 0) ? 2 : 1;
        devices[d].weight = 1.0 + static_cast<double>(d);
    }
    const auto report = lu_factor_blocked(blocked, block, devices);

    auto reference = original;
    lu_reference(reference.view());

    EXPECT_LT(blas::max_abs_diff<float>(blocked.view(), reference.view()),
              2e-3)
        << "blocks=" << blocks << " b=" << block;
    EXPECT_EQ(report.steps + 1, static_cast<std::size_t>(blocks));
    EXPECT_GT(report.panel_seconds, 0.0);

    // And the factors reproduce the original matrix.
    const auto product = lu_multiply_factors(blocked);
    EXPECT_LT(blas::max_abs_diff<float>(product.view(), original.view()),
              1e-2);
}

INSTANTIATE_TEST_SUITE_P(Shapes, LuBlocked,
                         ::testing::Values(LuCase{1, 8, 1}, LuCase{3, 8, 1},
                                           LuCase{4, 8, 2}, LuCase{4, 8, 4},
                                           LuCase{6, 4, 3}, LuCase{2, 16, 2},
                                           LuCase{5, 8, 5}));

TEST(LuBlocked, Validation) {
    blas::Matrix<float> a(10, 10, 1.0F);
    const std::vector<LuDevice> devices = {LuDevice{}};
    EXPECT_THROW(lu_factor_blocked(a, 3, devices), fpm::Error);  // 10 % 3
    blas::Matrix<float> square = random_dd_matrix(8, 1);
    EXPECT_THROW(lu_factor_blocked(square, 4, {}), fpm::Error);
    std::vector<LuDevice> bad = {LuDevice{1, 0.0}};
    EXPECT_THROW(lu_factor_blocked(square, 4, bad), fpm::Error);
}

TEST(LuSim, FpmBeatsHomogeneousOnHeterogeneousDevices) {
    const std::vector<core::SpeedFunction> models = {
        core::SpeedFunction({{10.0, 300.0}, {800.0, 400.0}, {2000.0, 150.0}},
                            "gpu"),
        core::SpeedFunction::constant(45.0, "s0"),
        core::SpeedFunction::constant(45.0, "s1"),
    };
    const auto fpm = lu_simulated_time(models, 40, true);
    const auto even = lu_simulated_time(models, 40, false);
    EXPECT_LT(fpm.total_time, even.total_time);
    EXPECT_DOUBLE_EQ(fpm.panel_time, even.panel_time);  // same critical path
    EXPECT_LT(fpm.update_time, 0.7 * even.update_time);
}

TEST(LuSim, PanelShareGrowsAsMatrixShrinks) {
    // Amdahl: for small matrices the serial panel dominates, capping the
    // benefit of any partitioning.
    const std::vector<core::SpeedFunction> models = {
        core::SpeedFunction::constant(100.0, "a"),
        core::SpeedFunction::constant(100.0, "b"),
    };
    const auto small = lu_simulated_time(models, 4, true);
    const auto large = lu_simulated_time(models, 64, true);
    EXPECT_GT(small.panel_time / small.total_time,
              large.panel_time / large.total_time);
}

TEST(LuSim, Validation) {
    EXPECT_THROW(lu_simulated_time({}, 10, true), fpm::Error);
    const std::vector<core::SpeedFunction> models = {
        core::SpeedFunction::constant(10.0)};
    EXPECT_THROW(lu_simulated_time(models, 0, true), fpm::Error);
}

} // namespace
} // namespace fpm::app

// fpm::fault chaos suite: spec parsing and deterministic replay of the
// injection layer, degraded-mode serving (stale plans, even-split
// fallback, coalesce deadlines), client retry/backoff + typed transport
// errors, the HEALTH endpoint, and the headline chaos test — randomized
// fault schedules against the pipelined reactor harness where every
// request must succeed bit-for-bit, come back as a well-formed degraded
// plan, or fail cleanly.  No hangs, no torn replies — at one reactor
// and across the 4-reactor SO_REUSEPORT pool with a sharded plan cache.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fpm/fault/fault.hpp"
#include "fpm/measure/timer.hpp"
#include "fpm/serve/client.hpp"
#include "fpm/serve/model_registry.hpp"
#include "fpm/serve/protocol.hpp"
#include "fpm/serve/request_engine.hpp"
#include "fpm/serve/server.hpp"
#include "stress_harness.hpp"

namespace fpm::serve {
namespace {

using core::SpeedFunction;
using core::SpeedPoint;

/// Deterministic synthetic device set (same family as test_serve.cpp).
std::vector<SpeedFunction> synthetic_models(std::size_t devices,
                                            std::size_t points_per_model,
                                            double peak_scale) {
    std::vector<SpeedFunction> models;
    for (std::size_t d = 0; d < devices; ++d) {
        std::vector<SpeedPoint> points;
        const double peak = peak_scale * (40.0 + 17.0 * static_cast<double>(d));
        const double cliff = 900.0 + 400.0 * static_cast<double>(d);
        const double x_max = 6000.0;
        for (std::size_t p = 0; p < points_per_model; ++p) {
            const double x = 4.0 + (x_max - 4.0) * static_cast<double>(p) /
                                       static_cast<double>(points_per_model - 1);
            const double ramp = x / (x + 25.0);
            const double speed = (x < cliff ? peak : 0.45 * peak) * ramp;
            points.push_back(SpeedPoint{x, speed});
        }
        models.emplace_back(std::move(points),
                            "dev" + std::to_string(d) + "f" +
                                std::to_string(devices));
    }
    return models;
}

std::string partition_line(const std::string& model, std::int64_t n,
                           Algorithm algorithm) {
    Request request;
    request.kind = Request::Kind::kPartition;
    request.partition = PartitionRequest{model, n, algorithm, true};
    return request.encode();
}

/// Uninstalls any leftover plan when a test exits (failure included).
struct FaultGuard {
    ~FaultGuard() { fault::uninstall(); }
};

std::uint64_t point_evaluated(const std::string& name) {
    return fault::point(name).evaluated();
}

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

TEST(FaultPlanParse, AcceptsTheDocumentedGrammar) {
    const auto plan = fault::FaultPlan::parse(
        "seed=42,a.b=0.5,c=0.1:fail,d=0.25:delay:250,,");
    EXPECT_EQ(plan.seed, 42u);
    ASSERT_EQ(plan.rules.size(), 3u);
    EXPECT_EQ(plan.rules[0].point, "a.b");
    EXPECT_DOUBLE_EQ(plan.rules[0].rate, 0.5);
    EXPECT_EQ(plan.rules[0].action, fault::Action::kFail);
    EXPECT_EQ(plan.rules[1].action, fault::Action::kFail);
    EXPECT_EQ(plan.rules[2].action, fault::Action::kDelay);
    EXPECT_EQ(plan.rules[2].delay_ms, 250u);

    EXPECT_TRUE(fault::FaultPlan::parse("").rules.empty());
}

TEST(FaultPlanParse, RejectsMalformedSpecs) {
    const std::vector<std::string> bad = {
        "a",                      // no '='
        "=0.5",                   // empty point name
        "a=",                     // empty rate
        "a=2",                    // rate > 1
        "a=-0.1",                 // rate < 0
        "a=x",                    // non-numeric rate
        "a=0.5:wat",              // unknown action
        "a=0.5:delay",            // delay without ms
        "a=0.5:delay:",           // empty ms
        "a=0.5:delay:12x",        // non-numeric ms
        "a=0.5:delay:99999999",   // > 60 s
        "seed=abc",               // non-numeric seed
    };
    for (const std::string& spec : bad) {
        EXPECT_THROW((void)fault::FaultPlan::parse(spec), fpm::Error)
            << "accepted: " << spec;
    }
}

// ---------------------------------------------------------------------------
// Deterministic replay + disabled behaviour
// ---------------------------------------------------------------------------

TEST(FaultPoint, SameSeedReplaysTheSameSchedule) {
    FaultGuard guard;
    const auto plan = fault::FaultPlan::parse("seed=7,unit.replay=0.3");
    auto& point = fault::point("unit.replay");

    fault::install(plan);
    ASSERT_TRUE(fault::enabled());
    std::vector<bool> first;
    int fired = 0;
    for (int i = 0; i < 200; ++i) {
        const bool hit = static_cast<bool>(point.fire());
        first.push_back(hit);
        fired += hit ? 1 : 0;
    }
    // Rate 0.3 over 200 draws: far from degenerate in either direction.
    EXPECT_GT(fired, 30);
    EXPECT_LT(fired, 90);

    fault::install(plan);  // resets arrival counters -> identical replay
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(static_cast<bool>(point.fire()), first[i]) << i;
    }

    // A different seed produces a different schedule.
    fault::install(fault::FaultPlan::parse("seed=8,unit.replay=0.3"));
    bool any_difference = false;
    for (int i = 0; i < 200; ++i) {
        any_difference |= static_cast<bool>(point.fire()) != first[i];
    }
    EXPECT_TRUE(any_difference);
}

TEST(FaultPoint, DisarmedFiresNothingAndCountsNothing) {
    fault::uninstall();
    auto& point = fault::point("unit.disarmed");
    const std::uint64_t evaluated_before = point.evaluated();
    for (int i = 0; i < 100; ++i) {
        const fault::Decision decision = point.fire();
        EXPECT_FALSE(static_cast<bool>(decision));
        EXPECT_EQ(decision.action, fault::Action::kNone);
    }
    EXPECT_EQ(point.evaluated(), evaluated_before);
    EXPECT_FALSE(fault::enabled());
}

TEST(FaultPoint, DelayActionSleepsInsideFire) {
    FaultGuard guard;
    fault::install(fault::FaultPlan::parse("unit.delay=1:delay:50"));
    auto& point = fault::point("unit.delay");
    measure::WallTimer timer;
    const fault::Decision decision = point.fire();
    const double elapsed = timer.elapsed();
    EXPECT_EQ(decision.action, fault::Action::kDelay);
    EXPECT_FALSE(static_cast<bool>(decision));  // delay is not a failure
    EXPECT_GE(elapsed, 0.040);
    EXPECT_GT(point.injected(), 0u);
}

TEST(FaultPoint, StatsReportConfiguredPoints) {
    FaultGuard guard;
    fault::install(fault::FaultPlan::parse("unit.stats=0.5"));
    (void)fault::point("unit.stats").fire();
    bool found = false;
    for (const auto& stats : fault::stats()) {
        if (stats.name == "unit.stats") {
            found = true;
            EXPECT_DOUBLE_EQ(stats.rate, 0.5);
            EXPECT_GT(stats.evaluated, 0u);
        }
    }
    EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Degraded-mode serving
// ---------------------------------------------------------------------------

TEST(FaultDegraded, StalePlanServesThroughComputeFailure) {
    FaultGuard guard;
    ModelRegistry registry;
    const auto v1 = registry.put("hybrid", synthetic_models(3, 64, 1.0));
    RequestEngine engine(registry, {.workers = 1, .cache_capacity = 16});
    const PartitionRequest request{"hybrid", 40, Algorithm::kFpm, true};

    const PartitionResponse warm = engine.execute(request);
    ASSERT_FALSE(warm.degraded);

    // Reload with different content (fingerprint changes, plan cache
    // misses) and make every compute fail: the stale plan must answer.
    registry.put("hybrid", synthetic_models(3, 64, 1.4));
    fault::install(fault::FaultPlan::parse("serve.compute=1"));

    const PartitionResponse degraded = engine.execute(request);
    EXPECT_TRUE(degraded.degraded);
    EXPECT_EQ(degraded.plan->blocks, warm.plan->blocks);
    EXPECT_EQ(degraded.plan->generation, v1->generation);
    EXPECT_EQ(engine.stats().degraded, 1u);

    // Back to normal: the fresh content computes and is not degraded.
    fault::uninstall();
    const PartitionResponse fresh = engine.execute(request);
    EXPECT_FALSE(fresh.degraded);
    EXPECT_NE(fresh.plan->generation, v1->generation);
}

TEST(FaultDegraded, EvenFallbackWhenNoStalePlanExists) {
    FaultGuard guard;
    ModelRegistry registry;
    const auto set = registry.put("solo", synthetic_models(2, 32, 1.0));
    RequestEngine engine(registry, {.workers = 1, .cache_capacity = 16});
    fault::install(fault::FaultPlan::parse("serve.compute=1"));

    const PartitionResponse response =
        engine.execute(PartitionRequest{"solo", 48, Algorithm::kFpm, true});
    EXPECT_TRUE(response.degraded);
    // The fallback is the constant-performance model: an even split,
    // bit-for-bit the direct kEven library call.
    const PartitionPlan direct =
        RequestEngine::compute_plan(*set, 48, Algorithm::kEven, true);
    EXPECT_EQ(response.plan->blocks, direct.blocks);
    EXPECT_EQ(response.plan->key.algorithm, Algorithm::kEven);
}

TEST(FaultDegraded, UnknownModelSetStillFailsCleanly) {
    ModelRegistry registry;
    registry.put("known", synthetic_models(2, 16, 1.0));
    RequestEngine engine(registry, {.workers = 1, .cache_capacity = 8});
    try {
        (void)engine.execute(PartitionRequest{"missing", 10, Algorithm::kFpm,
                                              true});
        FAIL() << "expected fpm::Error";
    } catch (const fpm::Error& e) {
        EXPECT_NE(std::string(e.what()).find("unknown model set"),
                  std::string::npos);
    }
    const std::string reply = handle_line(engine, "PARTITION missing 10 fpm");
    EXPECT_EQ(reply.rfind("ERR ", 0), 0u) << reply;
}

TEST(FaultDegraded, CoalescedWaiterDegradesPastDeadline) {
    FaultGuard guard;
    ModelRegistry registry;
    registry.put("hybrid", synthetic_models(3, 64, 1.0));
    RequestEngine engine(registry,
                         {.workers = 2,
                          .cache_capacity = 16,
                          .partition = {},
                          .degraded = true,
                          .coalesce_deadline = 0.05});
    const PartitionRequest request{"hybrid", 56, Algorithm::kFpm, true};

    // Warm the stale cache, then force a cache miss via reload.
    const PartitionResponse warm = engine.execute(request);
    registry.put("hybrid", synthetic_models(3, 64, 1.3));

    // The leader's compute stalls 400 ms inside the injection point;
    // the waiter times out at 50 ms and serves the stale plan.
    fault::install(fault::FaultPlan::parse("serve.compute=1:delay:400"));

    PartitionResponse leader_response;
    std::thread leader([&]() { leader_response = engine.execute(request); });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const PartitionResponse waiter = engine.execute(request);
    leader.join();

    EXPECT_TRUE(waiter.degraded);
    EXPECT_EQ(waiter.plan->blocks, warm.plan->blocks);
    EXPECT_FALSE(leader_response.degraded);  // the leader finished for real
}

TEST(FaultDegraded, RegistryReloadFaultLeavesOldSnapshot) {
    FaultGuard guard;
    ModelRegistry registry;
    const auto v1 = registry.put("hybrid", synthetic_models(2, 16, 1.0));
    fault::install(fault::FaultPlan::parse("serve.reload=1"));
    EXPECT_THROW((void)registry.put("hybrid", synthetic_models(2, 16, 2.0)),
                 fpm::Error);
    EXPECT_EQ(registry.get("hybrid")->generation, v1->generation);
    EXPECT_GT(point_evaluated("serve.reload"), 0u);
    fault::uninstall();
    EXPECT_GT(registry.put("hybrid", synthetic_models(2, 16, 2.0))->generation,
              v1->generation);
}

// ---------------------------------------------------------------------------
// HEALTH endpoint
// ---------------------------------------------------------------------------

TEST(FaultHealth, ReportsReadinessAndCounters) {
    ModelRegistry registry;
    RequestEngine engine(registry, {.workers = 1, .cache_capacity = 8});

    // Not ready while the registry is empty.
    const Response empty = Response::decode(handle_line(engine, "HEALTH"));
    ASSERT_EQ(empty.kind, Response::Kind::kHealth);
    EXPECT_TRUE(empty.health.live);
    EXPECT_FALSE(empty.health.ready);
    EXPECT_EQ(empty.health.models, 0u);

    registry.put("hybrid", synthetic_models(2, 16, 1.0));
    SocketServer server(engine);
    server.start();
    ServeClient client("127.0.0.1", server.port());
    const HealthReply health = client.health();
    EXPECT_TRUE(health.live);
    EXPECT_TRUE(health.ready);
    EXPECT_EQ(health.models, 1u);
    server.stop();
}

// ---------------------------------------------------------------------------
// Client transport errors: clean close vs truncation
// ---------------------------------------------------------------------------

namespace {

/// Minimal scripted server: accepts one connection, waits for any bytes,
/// writes `reply` verbatim and closes.
class ScriptedServer {
public:
    explicit ScriptedServer(std::string reply) : reply_(std::move(reply)) {
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                         sizeof addr),
                  0);
        EXPECT_EQ(::listen(listen_fd_, 1), 0);
        socklen_t len = sizeof addr;
        EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                                &len),
                  0);
        port_ = ntohs(addr.sin_port);
        thread_ = std::thread([this]() {
            const int fd = ::accept(listen_fd_, nullptr, nullptr);
            if (fd < 0) {
                return;
            }
            char buffer[256];
            (void)::recv(fd, buffer, sizeof buffer, 0);
            if (!reply_.empty()) {
                (void)::send(fd, reply_.data(), reply_.size(), MSG_NOSIGNAL);
            }
            ::close(fd);
        });
    }

    ~ScriptedServer() {
        thread_.join();
        ::close(listen_fd_);
    }

    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

private:
    std::string reply_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread thread_;
};

} // namespace

TEST(FaultClient, CleanCloseAndTruncationAreDistinctErrors) {
    {
        ScriptedServer closer("");  // close without any reply bytes
        ServeClient client("127.0.0.1", closer.port());
        try {
            (void)client.request("PING");
            FAIL() << "expected TransportError";
        } catch (const TransportError& e) {
            EXPECT_EQ(e.kind(), TransportError::Kind::kPeerClosed);
        }
    }
    {
        ScriptedServer torn("OK PONG v3");  // bytes but no newline, then close
        ServeClient client("127.0.0.1", torn.port());
        try {
            (void)client.request("PING");
            FAIL() << "expected TransportError";
        } catch (const TransportError& e) {
            EXPECT_EQ(e.kind(), TransportError::Kind::kTruncated);
            EXPECT_NE(std::string(e.what()).find("mid-reply"),
                      std::string::npos);
        }
    }
}

TEST(FaultClient, RetriesThroughBusyRejections) {
    ModelRegistry registry;
    registry.put("hybrid", synthetic_models(2, 16, 1.0));
    RequestEngine engine(registry, {.workers = 1, .cache_capacity = 8});
    ServeConfig config;
    config.max_connections = 1;
    SocketServer server(engine, config);
    server.start();

    auto occupant =
        std::make_unique<ServeClient>("127.0.0.1", server.port());
    occupant->ping();  // the only admission slot is now taken

    ServeConfig retrying = config;
    retrying.max_retries = 20;
    retrying.backoff_base = 0.02;
    retrying.backoff_max = 0.05;
    ServeClient patient("127.0.0.1", server.port(), retrying);

    // Free the slot while the patient client is backing off.
    std::thread release([&]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        occupant.reset();
    });
    Request ping;  // kPing default
    const Response response = patient.call(ping);
    release.join();
    EXPECT_EQ(response.kind, Response::Kind::kPong);

    server.stop();
}

// ---------------------------------------------------------------------------
// The chaos test: every injection point armed against the pipelined
// 16-client harness, >= 10k requests, and every single one must either
// match the direct library call bit-for-bit, be a well-formed degraded
// plan, or fail cleanly with a typed error.  Zero torn replies.
// ---------------------------------------------------------------------------

void chaos_pipelined_requests(std::size_t num_reactors,
                              std::size_t cache_shards) {
    FaultGuard guard;
    ModelRegistry registry;
    const auto alpha = registry.put("alpha", synthetic_models(4, 96, 1.0));
    RequestEngine engine(registry, {.workers = 4,
                                    .cache_capacity = 256,
                                    .cache_shards = cache_shards});
    ServeConfig server_config;
    server_config.num_reactors = num_reactors;
    SocketServer server(engine, server_config);
    server.start();

    const std::int64_t ns[] = {24, 30, 36, 42};
    const Algorithm algorithms[] = {Algorithm::kFpm, Algorithm::kCpm,
                                    Algorithm::kEven};

    // Direct library answers for every (n, algorithm) in the mix.  A
    // degraded reply reports the algorithm that actually produced it
    // (the stale plan's own, or kEven for the fallback), so every
    // well-formed reply — degraded or not — must match one of these.
    std::map<std::pair<std::int64_t, int>, PartitionPlan> direct;
    for (const std::int64_t n : ns) {
        for (const Algorithm algorithm : algorithms) {
            direct.emplace(
                std::make_pair(n, static_cast<int>(algorithm)),
                RequestEngine::compute_plan(*alpha, n, algorithm, true));
        }
    }

    const char* kPoints[] = {"serve.accept", "serve.recv", "serve.send",
                             "serve.cache",  "serve.compute", "rt.dispatch"};
    std::map<std::string, std::uint64_t> evaluated_before;
    for (const char* name : kPoints) {
        evaluated_before[name] = point_evaluated(name);
    }

    fault::install(fault::FaultPlan::parse(
        "seed=1234,serve.accept=0.01,serve.recv=0.015,serve.send=0.015,"
        "serve.cache=0.05,serve.compute=0.2,rt.dispatch=0.02"));

    constexpr std::size_t kClients = 16;
    constexpr std::size_t kBatches = 40;
    constexpr std::size_t kBatchSize = 16;  // 16 * 40 * 16 = 10240 requests

    std::atomic<std::uint64_t> ok_exact{0};
    std::atomic<std::uint64_t> ok_degraded{0};
    std::atomic<std::uint64_t> clean_errors{0};   // ERR lines, lost batches
    std::atomic<std::uint64_t> torn_replies{0};   // must stay zero

    // Validates one reply line for (n, algorithm); bumps the counters.
    const auto validate = [&](const std::string& line, std::int64_t n) {
        Response response;
        try {
            response = Response::decode(line);
        } catch (const fpm::Error&) {
            torn_replies.fetch_add(1);
            return;
        }
        if (response.kind == Response::Kind::kError) {
            clean_errors.fetch_add(1);
            EXPECT_FALSE(response.error.empty());
            return;
        }
        if (response.kind != Response::Kind::kPartition) {
            torn_replies.fetch_add(1);
            return;
        }
        const PartitionReply& reply = response.partition;
        const auto it = direct.find(
            std::make_pair(n, static_cast<int>(reply.algorithm)));
        if (it == direct.end() || reply.n != n) {
            torn_replies.fetch_add(1);
            return;
        }
        if (reply.blocks != it->second.blocks ||
            reply.makespan != it->second.makespan) {
            torn_replies.fetch_add(1);
            return;
        }
        (reply.degraded ? ok_degraded : ok_exact).fetch_add(1);
    };

    fpm::test::run_concurrently(kClients, [&](std::size_t client_index) {
        ServeConfig config;
        config.max_retries = 5;
        config.backoff_base = 0.002;
        config.backoff_max = 0.02;
        config.retry_seed = client_index;
        std::unique_ptr<ServeClient> client;
        const auto reconnect = [&]() {
            for (int attempt = 0;; ++attempt) {
                try {
                    client = std::make_unique<ServeClient>(
                        "127.0.0.1", server.port(), config);
                    return;
                } catch (const fpm::Error&) {
                    if (attempt > 50) {
                        throw;
                    }
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(5));
                }
            }
        };
        reconnect();

        for (std::size_t batch = 0; batch < kBatches; ++batch) {
            std::vector<std::int64_t> batch_ns;
            std::vector<std::string> lines;
            for (std::size_t j = 0; j < kBatchSize; ++j) {
                const std::size_t mix = client_index + batch * kBatchSize + j;
                batch_ns.push_back(ns[mix % 4]);
                lines.push_back(partition_line("alpha", ns[mix % 4],
                                               algorithms[mix % 3]));
            }
            if (client_index % 2 == 0) {
                // Typed path: one retrying call() per request.
                for (std::size_t j = 0; j < kBatchSize; ++j) {
                    try {
                        if (!client) {
                            reconnect();
                        }
                        const Response response =
                            client->call(Request::decode(lines[j]));
                        validate(response.encode(), batch_ns[j]);
                    } catch (const TransportError&) {
                        clean_errors.fetch_add(1);  // retries exhausted
                        client.reset();
                    }
                }
            } else {
                // Pipelined path: whole batch in one write, manual retry
                // (requests are idempotent, so a torn batch is re-sent).
                bool delivered = false;
                for (int attempt = 0; attempt < 5 && !delivered; ++attempt) {
                    try {
                        if (!client) {
                            reconnect();
                        }
                        const auto replies = client->pipeline(lines);
                        for (std::size_t j = 0; j < replies.size(); ++j) {
                            validate(replies[j], batch_ns[j]);
                        }
                        delivered = true;
                    } catch (const TransportError&) {
                        client.reset();
                    }
                }
                if (!delivered) {
                    clean_errors.fetch_add(kBatchSize);  // lost cleanly
                }
            }
        }
    });

    server.stop();
    fault::uninstall();

    const std::uint64_t total = ok_exact.load() + ok_degraded.load() +
                                clean_errors.load() + torn_replies.load();
    EXPECT_EQ(torn_replies.load(), 0u);
    EXPECT_GE(total, kClients * kBatches * kBatchSize);
    // The vast majority must actually succeed — retries absorb the
    // injected faults instead of surfacing them.
    EXPECT_GE(ok_exact.load() + ok_degraded.load(),
              kClients * kBatches * kBatchSize * 8 / 10);

    // Site/name consistency: every documented injection point was
    // genuinely compiled into the path the chaos run exercised.
    for (const char* name : kPoints) {
        EXPECT_GT(point_evaluated(name), evaluated_before[name])
            << "injection point never reached: " << name;
    }
    EXPECT_GT(fault::injected_total(), 0u);
}

TEST(FaultChaos, PipelinedRequestsSurviveInjectedFaults) {
    chaos_pipelined_requests(1, 1);
}

// Same schedule against the 4-reactor SO_REUSEPORT pool with a sharded
// plan cache: faults land on whichever reactor owns the connection, and
// the torn-reply count must still be exactly zero.
TEST(FaultChaos, FourReactorPoolSurvivesInjectedFaults) {
    chaos_pipelined_requests(4, 4);
}

} // namespace
} // namespace fpm::serve

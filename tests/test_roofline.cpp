// Tests for the Roofline utility (the paper's ref [7] comparison point).
#include <gtest/gtest.h>

#include "fpm/core/roofline.hpp"

namespace fpm::core {
namespace {

TEST(Roofline, AttainableIsMinOfBounds) {
    const Roofline device{1000.0, 100.0};  // ridge at 10 flops/byte
    EXPECT_DOUBLE_EQ(device.attainable_gflops(1.0), 100.0);   // memory-bound
    EXPECT_DOUBLE_EQ(device.attainable_gflops(5.0), 500.0);   // memory-bound
    EXPECT_DOUBLE_EQ(device.attainable_gflops(10.0), 1000.0); // ridge
    EXPECT_DOUBLE_EQ(device.attainable_gflops(64.0), 1000.0); // compute-bound
}

TEST(Roofline, MachineBalanceAndBoundClassification) {
    const Roofline device{1000.0, 100.0};
    EXPECT_DOUBLE_EQ(device.machine_balance(), 10.0);
    EXPECT_TRUE(device.memory_bound(2.0));
    EXPECT_FALSE(device.memory_bound(20.0));
}

TEST(Roofline, Validation) {
    const Roofline bad{0.0, 100.0};
    EXPECT_THROW(bad.attainable_gflops(1.0), fpm::Error);
    EXPECT_THROW(bad.machine_balance(), fpm::Error);
    const Roofline good{100.0, 10.0};
    EXPECT_THROW(good.attainable_gflops(0.0), fpm::Error);
}

TEST(GemmIntensity, SquareCaseClosedForm) {
    // m = n = k = s: 2s^3 / (4 s^2 B) = s / (2B).
    EXPECT_DOUBLE_EQ(gemm_intensity(100.0, 100.0, 100.0, 4.0), 100.0 / 8.0);
    EXPECT_THROW(gemm_intensity(0.0, 1.0, 1.0, 4.0), fpm::Error);
}

TEST(GemmIntensity, GrowsWithEveryDimension) {
    const double base = gemm_intensity(64, 64, 64, 4.0);
    EXPECT_GT(gemm_intensity(128, 64, 64, 4.0), base);
    EXPECT_GT(gemm_intensity(64, 128, 64, 4.0), base);
    EXPECT_GT(gemm_intensity(64, 64, 128, 4.0), base);
}

TEST(KernelUpdateIntensity, RankBUpdateIsKBound) {
    // The rank-b update's intensity saturates at k / element_bytes for
    // large areas (m = n >> k = b): 2m^2 b / (4(2mb + 2m^2)) -> b / 4.
    const double b = 640.0;
    const double small = kernel_update_intensity(4.0, b, 4.0);
    const double large = kernel_update_intensity(4000.0, b, 4.0);
    EXPECT_GT(large, small);
    EXPECT_LT(large, b / 4.0 * 1.01);
    EXPECT_GT(large, b / 4.0 * 0.9);  // close to the asymptote already
}

TEST(KernelUpdateIntensity, PaperKernelIsComputeBoundOnBothDevices) {
    // With b = 640 the application kernel is comfortably past the ridge
    // of both the socket and the GTX680 — which is why the paper's speed
    // functions plateau at compute-limited rates for large x.
    const double intensity = kernel_update_intensity(900.0, 640.0, 4.0);
    const Roofline socket{92.0, 12.8};
    const Roofline gtx680{1040.0, 192.3};
    EXPECT_FALSE(socket.memory_bound(intensity));
    EXPECT_FALSE(gtx680.memory_bound(intensity));
}

} // namespace
} // namespace fpm::core

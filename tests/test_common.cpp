// Unit tests for fpm::common: error handling, RNG, formatting, math.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "fpm/common/error.hpp"
#include "fpm/common/format.hpp"
#include "fpm/common/math.hpp"
#include "fpm/common/rng.hpp"

namespace fpm {
namespace {

TEST(Error, CheckThrowsWithMessageAndLocation) {
    try {
        FPM_CHECK(1 == 2, "one is not two");
        FAIL() << "expected fpm::Error";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("one is not two"), std::string::npos);
        EXPECT_NE(what.find("1 == 2"), std::string::npos);
        EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
    }
}

TEST(Error, CheckPassesSilently) {
    EXPECT_NO_THROW(FPM_CHECK(2 + 2 == 4, "math works"));
}

TEST(Error, AssertThrowsLogicError) {
    EXPECT_THROW(FPM_ASSERT(false), LogicError);
    EXPECT_NO_THROW(FPM_ASSERT(true));
}

TEST(Rng, DeterministicForSameSeed) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b()) {
            ++same;
        }
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntInclusiveBoundsAndCoverage) {
    Rng rng(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_int(2, 6);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 6);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5U);  // all values hit
    EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
    Rng rng(13);
    double sum = 0.0;
    double sum2 = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sum2 += v * v;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.03);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, LognormalIsPositive) {
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
    }
}

TEST(Rng, SplitProducesIndependentStream) {
    Rng parent(21);
    Rng child = parent.split();
    // Streams should not be identical.
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (parent() == child()) {
            ++same;
        }
    }
    EXPECT_LT(same, 2);
}

TEST(Format, HumanBytes) {
    EXPECT_EQ(human_bytes(512), "512 B");
    EXPECT_EQ(human_bytes(2048), "2.00 KiB");
    EXPECT_EQ(human_bytes(3 * 1024ULL * 1024ULL), "3.00 MiB");
    EXPECT_EQ(human_bytes(2ULL * 1024 * 1024 * 1024), "2.00 GiB");
}

TEST(Format, FixedAndGflopsAndSeconds) {
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(2.0, 0), "2");
    EXPECT_EQ(gflops(951.23), "951.2 GF/s");
    EXPECT_EQ(seconds(0.5e-4), "50.0 us");
    EXPECT_EQ(seconds(0.25), "250.00 ms");
    EXPECT_EQ(seconds(2.5), "2.50 s");
}

TEST(Format, Padding) {
    EXPECT_EQ(pad_left("ab", 5), "   ab");
    EXPECT_EQ(pad_right("ab", 5), "ab   ");
    EXPECT_EQ(pad_left("abcdef", 3), "abcdef");
}

TEST(Math, CeilDivAndRounding) {
    EXPECT_EQ(ceil_div(10, 3), 4);
    EXPECT_EQ(ceil_div(9, 3), 3);
    EXPECT_EQ(round_up(10, 4), 12);
    EXPECT_EQ(round_up(12, 4), 12);
    EXPECT_EQ(round_down(10, 4), 8);
    EXPECT_EQ(round_down(12, 4), 12);
}

TEST(Math, AlmostEqual) {
    EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(almost_equal(1.0, 1.001));
    EXPECT_TRUE(almost_equal(0.0, 1e-15));
}

TEST(Math, GemmUpdateFlops) {
    // One block of size b costs 2*b^3 flops.
    EXPECT_DOUBLE_EQ(gemm_update_flops(1.0, 10.0), 2000.0);
    EXPECT_DOUBLE_EQ(gemm_update_flops(3.0, 2.0), 48.0);
}

} // namespace
} // namespace fpm

// Tests for the simulated GPU model and the kernel-version simulator:
// the device-memory cliff, version ordering (v2 >= v1, v3 >= v2 out of
// core), DMA-engine effects and CPU/GPU contention.
#include <gtest/gtest.h>

#include "fpm/common/math.hpp"
#include "fpm/sim/gpu_kernel_sim.hpp"
#include "fpm/sim/node.hpp"

namespace fpm::sim {
namespace {

constexpr double kBlock = 640.0;

double speed_gflops(const HybridNode& node, std::size_t gpu, double x,
                    KernelVersion v, unsigned coactive = 0) {
    return gemm_update_flops(x, kBlock) / node.gpu_kernel_time(gpu, x, v, coactive) /
           1e9;
}

class GpuSimTest : public ::testing::Test {
protected:
    HybridNode node_{ig_platform(), {}};
    static constexpr std::size_t kGtx680 = 1;
    static constexpr std::size_t kC870 = 0;
};

TEST_F(GpuSimTest, CapacityMatchesDeviceMemory) {
    const double cap = node_.gpu_model(kGtx680).capacity_blocks();
    // 2 GiB * 0.92 usable / 1.6384 MB per block ~ 1206 blocks.
    EXPECT_NEAR(cap, 2048.0 * 1024 * 1024 * 0.92 / (640.0 * 640.0 * 4.0), 1.0);
    EXPECT_LT(node_.gpu_model(kC870).capacity_blocks(), cap);
}

TEST_F(GpuSimTest, TransferTimeLinearInBytesPlusLatency) {
    const GpuModel& gpu = node_.gpu_model(kGtx680);
    const double t1 = gpu.transfer_time(100.0, TransferPath::kPageable);
    const double t2 = gpu.transfer_time(200.0, TransferPath::kPageable);
    const double latency = gpu.spec().pcie_latency_s;
    EXPECT_NEAR(t2 - latency, 2.0 * (t1 - latency), 1e-12);
    EXPECT_DOUBLE_EQ(gpu.transfer_time(0.0, TransferPath::kPinned), 0.0);
}

TEST_F(GpuSimTest, KernelRateRampsToPeak) {
    const GpuModel& gpu = node_.gpu_model(kGtx680);
    EXPECT_LT(gpu.kernel_rate(1.0), 0.2 * gpu.kernel_rate(1000.0));
    EXPECT_NEAR(gpu.kernel_rate(10000.0) / 1e9,
                gpu.spec().peak_gflops_sp, 0.01 * gpu.spec().peak_gflops_sp);
}

TEST_F(GpuSimTest, Version2DoublesVersion1InCore) {
    // The paper: "the performance doubles when problem sizes fit in the
    // GPU memory" (C round-trips removed).
    const double v1 = speed_gflops(node_, kGtx680, 900.0, KernelVersion::kV1);
    const double v2 = speed_gflops(node_, kGtx680, 900.0, KernelVersion::kV2);
    EXPECT_GT(v2, 2.0 * v1);
}

TEST_F(GpuSimTest, MemoryCliffAtCapacity) {
    const double cap = node_.gpu_model(kGtx680).capacity_blocks();
    const double before = speed_gflops(node_, kGtx680, cap * 0.8, KernelVersion::kV2);
    const double after = speed_gflops(node_, kGtx680, cap * 2.0, KernelVersion::kV2);
    EXPECT_LT(after, 0.6 * before);  // hard performance drop past the limit
}

TEST_F(GpuSimTest, OverlapGainAround30PercentOutOfCore) {
    // Fig. 3: version 3 improves on version 2 by ~30 % on the GTX680 once
    // out of core.
    for (double x : {2500.0, 3600.0, 4900.0}) {
        const double v2 = speed_gflops(node_, kGtx680, x, KernelVersion::kV2);
        const double v3 = speed_gflops(node_, kGtx680, x, KernelVersion::kV3);
        const double gain = v3 / v2 - 1.0;
        EXPECT_GT(gain, 0.15) << "x=" << x;
        EXPECT_LT(gain, 0.55) << "x=" << x;
    }
}

TEST_F(GpuSimTest, InCoreVersion3EqualsVersion2) {
    const double v2 = speed_gflops(node_, kGtx680, 500.0, KernelVersion::kV2);
    const double v3 = speed_gflops(node_, kGtx680, 500.0, KernelVersion::kV3);
    EXPECT_DOUBLE_EQ(v2, v3);
}

TEST_F(GpuSimTest, SingleDmaEngineGainsLess) {
    // Tesla C870 (one DMA engine, no concurrent transfers) must profit
    // less from overlapping than the GTX680, relatively.
    auto relative_gain = [&](std::size_t gpu) {
        const double cap = node_.gpu_model(gpu).capacity_blocks();
        const double x = cap * 2.5;
        return speed_gflops(node_, gpu, x, KernelVersion::kV3) /
                   speed_gflops(node_, gpu, x, KernelVersion::kV2) -
               1.0;
    };
    EXPECT_GT(relative_gain(kGtx680), relative_gain(kC870));
    EXPECT_GT(relative_gain(kC870), 0.0);  // still an improvement
}

TEST_F(GpuSimTest, ContentionWithCpuCoresSlowsGpu) {
    // Fig. 5: the GPU loses 7-15 % when cores of its socket compute.
    for (double x : {800.0, 3000.0}) {
        const double idle = speed_gflops(node_, kGtx680, x, KernelVersion::kV3, 0);
        const double busy = speed_gflops(node_, kGtx680, x, KernelVersion::kV3, 5);
        const double drop = 1.0 - busy / idle;
        EXPECT_GT(drop, 0.05) << "x=" << x;
        EXPECT_LT(drop, 0.20) << "x=" << x;
    }
}

TEST_F(GpuSimTest, ContentionFactorBounds) {
    EXPECT_DOUBLE_EQ(node_.gpu_contention_factor(kGtx680, 0), 1.0);
    EXPECT_LT(node_.gpu_contention_factor(kGtx680, 5), 1.0);
    // Saturates at the socket's core count.
    EXPECT_DOUBLE_EQ(node_.gpu_contention_factor(kGtx680, 6),
                     node_.gpu_contention_factor(kGtx680, 60));
}

TEST_F(GpuSimTest, TimingBreakdownIsConsistent) {
    const auto timing =
        node_.gpu_sim(kGtx680).time_invocation(50, 50, KernelVersion::kV2);
    EXPECT_NEAR(timing.total_s, timing.compute_s + timing.h2d_s + timing.d2h_s,
                1e-12);
    EXPECT_GT(timing.h2d_s, 0.0);
    EXPECT_GT(timing.d2h_s, 0.0);  // out of core: C streams back
}

TEST_F(GpuSimTest, OverlappedTimingBeatsSerialSum) {
    const auto timing =
        node_.gpu_sim(kGtx680).time_invocation(60, 60, KernelVersion::kV3);
    EXPECT_LT(timing.total_s, timing.compute_s + timing.h2d_s + timing.d2h_s);
    EXPECT_GE(timing.total_s, timing.compute_s);  // compute is on one engine
    EXPECT_FALSE(timing.timeline.ops().empty());
}

TEST_F(GpuSimTest, SquareDims) {
    const auto [w1, h1] = square_dims(100.0);
    EXPECT_EQ(w1, 10);
    EXPECT_EQ(h1, 10);
    const auto [w2, h2] = square_dims(101.0);
    EXPECT_GE(static_cast<double>(w2) * static_cast<double>(h2), 101.0);
    EXPECT_LE(std::abs(w2 - h2), 1);
    EXPECT_THROW(square_dims(0.5), fpm::Error);
}

TEST_F(GpuSimTest, RateFactorValidation) {
    EXPECT_THROW(node_.gpu_sim(kGtx680).time_invocation(
                     10, 10, KernelVersion::kV2, /*rate_factor=*/0.0),
                 fpm::Error);
    EXPECT_THROW(node_.gpu_sim(kGtx680).time_invocation(
                     10, 10, KernelVersion::kV2, /*rate_factor=*/1.5),
                 fpm::Error);
}

TEST_F(GpuSimTest, DoublePrecisionRejectedOnC870) {
    // The G80-era Tesla C870 has no native FP64 (dp_ratio == 0).
    SimOptions options;
    options.precision = Precision::kDouble;
    EXPECT_THROW(HybridNode(ig_platform(), options), fpm::Error);
}

TEST_F(GpuSimTest, GpuMeasurementNoiseDeterminism) {
    HybridNode a(ig_platform(), {.noise_sigma = 0.04, .noise_seed = 5});
    HybridNode b(ig_platform(), {.noise_sigma = 0.04, .noise_seed = 5});
    for (int i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(a.measure_gpu_kernel(1, 700.0, KernelVersion::kV2),
                         b.measure_gpu_kernel(1, 700.0, KernelVersion::kV2));
    }
}

} // namespace
} // namespace fpm::sim

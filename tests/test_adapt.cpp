// fpm::adapt suite: streaming feedback ingestion under the library's
// statistical-reliability bar, monotone-safe model splicing with bounded
// updates, CUSUM drift detection, and the headline end-to-end scenario —
// a device slowing 2x mid-stream, detected from served-execution
// feedback alone, hot-republished, and the next served plan rebalancing
// to within tolerance of the oracle partition, bit-for-bit reproducible
// from a fixed seed.  Also covers the v4 FEEDBACK wire path, the clean
// typed error against a pre-v4 server, republish cache invalidation and
// chaos (adapt fault points armed: no hangs, no torn replies).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fpm/adapt/drift.hpp"
#include "fpm/adapt/engine.hpp"
#include "fpm/adapt/feedback.hpp"
#include "fpm/adapt/publisher.hpp"
#include "fpm/adapt/refiner.hpp"
#include "fpm/fault/fault.hpp"
#include "fpm/part/request.hpp"
#include "fpm/serve/client.hpp"
#include "fpm/serve/model_registry.hpp"
#include "fpm/serve/protocol.hpp"
#include "fpm/serve/request_engine.hpp"
#include "fpm/serve/server.hpp"
#include "fpm/sim/noise.hpp"

namespace fpm::adapt {
namespace {

using core::SpeedFunction;
using core::SpeedPoint;
using serve::Algorithm;
using serve::ModelRegistry;
using serve::RequestEngine;
using serve::Response;
using serve::ServeClient;
using serve::SocketServer;

/// Deterministic synthetic device set (same family as test_serve.cpp).
std::vector<SpeedFunction> synthetic_models(std::size_t devices,
                                            std::size_t points_per_model,
                                            double peak_scale) {
    std::vector<SpeedFunction> models;
    for (std::size_t d = 0; d < devices; ++d) {
        std::vector<SpeedPoint> points;
        const double peak = peak_scale * (40.0 + 17.0 * static_cast<double>(d));
        const double x_max = 6000.0;
        for (std::size_t p = 0; p < points_per_model; ++p) {
            const double x = 4.0 + (x_max - 4.0) * static_cast<double>(p) /
                                       static_cast<double>(points_per_model - 1);
            points.push_back(SpeedPoint{x, peak * x / (x + 25.0)});
        }
        models.emplace_back(std::move(points), "dev" + std::to_string(d));
    }
    return models;
}

/// Uninstalls any leftover fault plan when a test exits.
struct FaultGuard {
    ~FaultGuard() { fault::uninstall(); }
};

// ---------------------------------------------------------------------------
// FeedbackIngestor: bucketing and the reliability bar
// ---------------------------------------------------------------------------

TEST(AdaptIngestor, BucketsBecomeReliableAndAreConsumed) {
    AdaptConfig config;
    config.min_samples = 3;
    config.target_relative_error = 0.05;
    FeedbackIngestor ingestor(config);

    // Identical samples: reliable exactly at min_samples (zero variance).
    IngestResult result;
    for (int i = 0; i < 3; ++i) {
        result = ingestor.add(0, 1000.0, 2.0);
    }
    EXPECT_EQ(result.samples, 3u);
    EXPECT_TRUE(result.reliable);
    EXPECT_FALSE(result.forced);
    EXPECT_DOUBLE_EQ(result.speed, 500.0);
    EXPECT_DOUBLE_EQ(result.x, 1000.0);
    EXPECT_EQ(ingestor.total_samples(), 3u);

    // Consuming the bucket restarts its evidence from zero.
    ingestor.consume(result.key);
    EXPECT_EQ(ingestor.buckets(), 0u);
    result = ingestor.add(0, 1000.0, 2.0);
    EXPECT_EQ(result.samples, 1u);
    EXPECT_FALSE(result.reliable);
}

TEST(AdaptIngestor, DistinctDevicesAndSizeRegionsGetDistinctBuckets) {
    AdaptConfig config;
    FeedbackIngestor ingestor(config);
    const auto a = ingestor.add(0, 1000.0, 2.0);
    const auto b = ingestor.add(1, 1000.0, 2.0);
    const auto c = ingestor.add(0, 4000.0, 2.0);  // far-away size region
    EXPECT_NE(a.key, b.key);
    EXPECT_NE(a.key, c.key);
    EXPECT_EQ(ingestor.buckets(), 3u);

    // Nearby sizes share a region (resolution 0.25 => geometric bands;
    // 990 sits in 1000's band [1.25^30, 1.25^31) = [807.8, 1009.7)).
    const auto d = ingestor.add(0, 990.0, 2.0);
    EXPECT_EQ(d.key, a.key);
    EXPECT_EQ(d.samples, 2u);
}

TEST(AdaptIngestor, NoisyBucketIsForcedReliableAtMaxSamples) {
    AdaptConfig config;
    config.min_samples = 3;
    config.max_samples = 6;
    config.target_relative_error = 0.001;  // unreachable with this noise
    FeedbackIngestor ingestor(config);
    IngestResult result;
    for (int i = 0; i < 6; ++i) {
        const double seconds = (i % 2 == 0) ? 1.8 : 2.2;  // ~10% swing
        result = ingestor.add(0, 1000.0, seconds);
        if (i < 5) {
            EXPECT_FALSE(result.reliable) << "sample " << i;
        }
    }
    EXPECT_TRUE(result.reliable);
    EXPECT_TRUE(result.forced);
}

TEST(AdaptIngestor, BucketBudgetEvictsThinnestBucket) {
    AdaptConfig config;
    config.max_buckets = 2;
    FeedbackIngestor ingestor(config);
    ingestor.add(0, 100.0, 1.0);
    ingestor.add(0, 100.0, 1.0);  // device 0: two samples
    ingestor.add(1, 100.0, 1.0);  // device 1: one sample (thinnest)
    ingestor.add(2, 100.0, 1.0);  // evicts device 1's bucket
    EXPECT_EQ(ingestor.buckets(), 2u);
    // Device 1 restarts from zero; device 0 kept its evidence.
    EXPECT_EQ(ingestor.add(1, 100.0, 1.0).samples, 1u);
}

TEST(AdaptIngestor, RejectsNonsenseSamplesAndConfig) {
    AdaptConfig config;
    FeedbackIngestor ingestor(config);
    EXPECT_THROW(ingestor.add(-1, 100.0, 1.0), Error);
    EXPECT_THROW(ingestor.add(0, 0.0, 1.0), Error);
    EXPECT_THROW(ingestor.add(0, 100.0, 0.0), Error);

    AdaptConfig bad;
    bad.min_samples = 5;
    bad.max_samples = 3;
    EXPECT_THROW(FeedbackIngestor{bad}, Error);
}

// ---------------------------------------------------------------------------
// SpeedFunction::spliced: monotone-interpolation safety
// ---------------------------------------------------------------------------

TEST(AdaptSplice, ReplacesNearbyPointsAndStaysSorted) {
    const SpeedFunction fn({{100.0, 10.0}, {200.0, 20.0}, {400.0, 30.0}},
                           "dev");
    // 210 is within 10% of 200: the old point is replaced, not joined.
    const SpeedFunction spliced = fn.spliced(210.0, 25.0, 0.1);
    ASSERT_EQ(spliced.points().size(), 3u);
    EXPECT_DOUBLE_EQ(spliced.points()[0].x, 100.0);
    EXPECT_DOUBLE_EQ(spliced.points()[1].x, 210.0);
    EXPECT_DOUBLE_EQ(spliced.points()[1].speed, 25.0);
    EXPECT_DOUBLE_EQ(spliced.points()[2].x, 400.0);
    EXPECT_TRUE(std::is_sorted(
        spliced.points().begin(), spliced.points().end(),
        [](const SpeedPoint& a, const SpeedPoint& b) { return a.x < b.x; }));
    EXPECT_EQ(spliced.name(), "dev");

    // Far from every knot: the point is inserted, nothing replaced.
    EXPECT_EQ(fn.spliced(300.0, 26.0, 0.1).points().size(), 4u);

    // Invalid splices are rejected outright.
    EXPECT_THROW(fn.spliced(0.0, 10.0), Error);
    EXPECT_THROW(fn.spliced(100.0, -1.0), Error);
    EXPECT_THROW(fn.spliced(100.0, 10.0, -0.5), Error);
}

TEST(AdaptSplice, HonoursMaxProblemBound) {
    const SpeedFunction bounded({{100.0, 10.0}, {200.0, 20.0}}, "gpu", 300.0);
    EXPECT_THROW(bounded.spliced(301.0, 15.0), Error);
    const auto at_cap = bounded.spliced(300.0, 15.0);
    EXPECT_DOUBLE_EQ(at_cap.max_problem(), 300.0);
    EXPECT_DOUBLE_EQ(at_cap.points().back().speed, 15.0);
}

// ---------------------------------------------------------------------------
// OnlineRefiner: bounded updates and the deadband
// ---------------------------------------------------------------------------

TEST(AdaptRefiner, ClampsStepAndSkipsDeadband) {
    AdaptConfig config;
    config.max_speed_step = 0.5;
    config.min_speed_change = 0.02;
    const OnlineRefiner refiner(config);
    auto models = synthetic_models(2, 16, 1.0);
    const double predicted = models[0].speed(1000.0);

    // An implausible 10x slowdown is clamped to a half-step.
    auto result = refiner.refine(models, 0, 1000.0, predicted / 10.0);
    EXPECT_TRUE(result.applied);
    EXPECT_DOUBLE_EQ(result.model_speed, predicted);
    EXPECT_NEAR(result.applied_speed, predicted * 0.5, 1e-12);
    EXPECT_NEAR(models[0].speed(1000.0), predicted * 0.5, 1e-9);

    // A within-deadband wobble is ignored entirely.
    auto fresh = synthetic_models(2, 16, 1.0);
    result = refiner.refine(fresh, 1, 1000.0,
                            fresh[1].speed(1000.0) * 1.01);
    EXPECT_FALSE(result.applied);
    EXPECT_NEAR(result.relative_error, 0.01, 1e-9);

    EXPECT_THROW(refiner.refine(models, 7, 1000.0, 1.0), Error);
}

// ---------------------------------------------------------------------------
// DriftDetector: threshold + CUSUM
// ---------------------------------------------------------------------------

TEST(AdaptDrift, CusumFiresOnSustainedErrorOnly) {
    AdaptConfig config;
    config.drift_threshold = 0.1;
    config.cusum_limit = 0.25;
    DriftDetector detector(config);

    // Small errors never accumulate: the CUSUM decays to zero.
    for (int i = 0; i < 20; ++i) {
        const auto decision = detector.observe(0, 0.02);
        EXPECT_FALSE(decision.drift);
        EXPECT_FALSE(decision.republish);
    }
    EXPECT_DOUBLE_EQ(detector.cusum(0), 0.0);

    // Sustained 20% error: drift immediately, republish on the 3rd
    // window (0.1 excess per window against a 0.25 limit).
    EXPECT_TRUE(detector.observe(0, 0.2).drift);
    EXPECT_FALSE(detector.observe(0, 0.2).republish);
    EXPECT_TRUE(detector.observe(0, 0.2).republish);

    // Devices are independent; reset clears everything.
    EXPECT_DOUBLE_EQ(detector.cusum(1), 0.0);
    detector.reset();
    EXPECT_DOUBLE_EQ(detector.cusum(0), 0.0);
    EXPECT_THROW(detector.observe(0, -0.1), Error);
}

// ---------------------------------------------------------------------------
// Republish invalidation: fingerprint-keyed plans must not survive
// ---------------------------------------------------------------------------

TEST(AdaptInvalidate, EraseFingerprintDropsAllShapesOfThatContent) {
    serve::PartitionCache cache(16);
    auto make_plan = [](std::uint64_t fingerprint, std::int64_t n,
                        Algorithm algorithm) {
        auto plan = std::make_shared<serve::PartitionPlan>();
        plan->key = serve::PlanKey{fingerprint, n, algorithm, true};
        return plan;
    };
    for (std::int64_t n : {8, 16, 32}) {
        cache.put(serve::PlanKey{111, n, Algorithm::kFpm, true},
                  make_plan(111, n, Algorithm::kFpm));
    }
    cache.put(serve::PlanKey{111, 8, Algorithm::kEven, false},
              make_plan(111, 8, Algorithm::kEven));
    cache.put(serve::PlanKey{222, 8, Algorithm::kFpm, true},
              make_plan(222, 8, Algorithm::kFpm));

    EXPECT_EQ(cache.erase_fingerprint(111), 4u);
    EXPECT_EQ(cache.stats().size, 1u);
    EXPECT_NE(cache.get(serve::PlanKey{222, 8, Algorithm::kFpm, true}),
              nullptr);
    EXPECT_EQ(cache.erase_fingerprint(111), 0u);  // idempotent
}

TEST(AdaptInvalidate, RepublishForcesRecomputeOfCachedPlans) {
    ModelRegistry registry;
    const auto before = registry.put("hybrid", synthetic_models(3, 24, 1.0));
    RequestEngine engine(registry, {.workers = 2, .cache_capacity = 64});

    (void)engine.execute({"hybrid", 40, Algorithm::kFpm, true});
    const auto cached = engine.execute({"hybrid", 40, Algorithm::kFpm, true});
    EXPECT_TRUE(cached.cache_hit);

    // Republish changed content under the same name (what the publisher
    // does): the cached plan keyed on the old fingerprint must go.
    ModelPublisher publisher(engine);
    auto refined = synthetic_models(3, 24, 1.0);
    refined[0] = refined[0].scaled(0.5);
    const auto after =
        publisher.publish("hybrid", std::move(refined), before->fingerprint);
    EXPECT_NE(after->fingerprint, before->fingerprint);
    EXPECT_GT(after->generation, before->generation);

    const auto recomputed =
        engine.execute({"hybrid", 40, Algorithm::kFpm, true});
    EXPECT_FALSE(recomputed.cache_hit);
    EXPECT_EQ(recomputed.plan->generation, after->generation);
    EXPECT_NE(recomputed.plan->blocks, cached.plan->blocks);
}

// ---------------------------------------------------------------------------
// End-to-end: device slows 2x mid-stream, the loop notices and rebalances
// ---------------------------------------------------------------------------

struct ScenarioOutcome {
    std::vector<std::int64_t> final_blocks;
    std::uint64_t republishes = 0;
    std::uint64_t reliable_windows = 0;
    double final_true_makespan = 0.0;
};

/// Serves PARTITION + FEEDBACK rounds against an in-process engine.
/// Device 0's *real* speed halves after `slow_after` rounds; the served
/// models only learn about it through feedback.
ScenarioOutcome run_drift_scenario(std::uint64_t seed) {
    constexpr std::int64_t kN = 48;
    constexpr int kRounds = 24;
    constexpr int kSlowAfter = 4;
    constexpr std::size_t kDevices = 3;

    ModelRegistry registry;
    registry.put("hybrid", synthetic_models(kDevices, 24, 1.0));
    RequestEngine engine(registry, {.workers = 2, .cache_capacity = 64});

    AdaptConfig config;
    config.min_samples = 3;
    config.target_relative_error = 0.05;
    config.drift_threshold = 0.1;
    config.cusum_limit = 0.25;
    AdaptEngine adapter(engine, config);

    // Ground truth starts equal to the served models...
    std::vector<SpeedFunction> truth = synthetic_models(kDevices, 24, 1.0);

    sim::NoiseModel noise(0.01, seed);
    std::vector<sim::NoiseModel> streams;
    for (std::size_t d = 0; d < kDevices; ++d) {
        streams.push_back(noise.split());
    }

    ScenarioOutcome outcome;
    std::vector<std::int64_t> blocks;
    for (int round = 0; round < kRounds; ++round) {
        if (round == kSlowAfter) {
            // ...until device 0 silently halves mid-stream (thermal
            // throttling, a contending tenant — the serve side cannot see
            // why, only the feedback).
            truth[0] = truth[0].scaled(0.5);
        }
        const auto response =
            engine.execute({"hybrid", kN, Algorithm::kFpm, true});
        blocks = response.plan->blocks;
        for (std::size_t d = 0; d < kDevices; ++d) {
            if (blocks[d] <= 0) {
                continue;
            }
            const double x = static_cast<double>(blocks[d]);
            for (std::uint64_t s = 0; s < config.min_samples; ++s) {
                const double seconds = streams[d].apply(truth[d].time(x));
                const auto reply = adapter.ingest(
                    {"hybrid", static_cast<std::int64_t>(d), x, seconds});
                outcome.reliable_windows += reply.reliable ? 1 : 0;
                outcome.republishes += reply.republished ? 1 : 0;
            }
        }
    }

    outcome.final_blocks = blocks;
    for (std::size_t d = 0; d < kDevices; ++d) {
        outcome.final_true_makespan =
            std::max(outcome.final_true_makespan,
                     truth[d].time(static_cast<double>(blocks[d])));
    }
    return outcome;
}

TEST(AdaptEndToEnd, DriftIsDetectedRepublishedAndRebalanced) {
    const ScenarioOutcome outcome = run_drift_scenario(1234);
    EXPECT_GE(outcome.reliable_windows, 1u);
    ASSERT_GE(outcome.republishes, 1u)
        << "sustained 2x drift never triggered a republish";

    // Oracle: the partition the library computes when handed the true
    // post-slowdown models directly.
    auto truth = synthetic_models(3, 24, 1.0);
    truth[0] = truth[0].scaled(0.5);
    const auto oracle = part::partition({truth, 48, Algorithm::kFpm, true});
    ASSERT_GT(oracle.makespan, 0.0);

    // The adapted plan's *true* makespan lands within 5% of the oracle's.
    EXPECT_LE(outcome.final_true_makespan, oracle.makespan * 1.05)
        << "adapted plan still skewed after republish";

    // And the adapted plan moved real work off the slowed device.
    const auto stale = part::partition(
        {synthetic_models(3, 24, 1.0), 48, Algorithm::kFpm, true});
    EXPECT_LT(outcome.final_blocks[0], stale.blocks[0]);
}

TEST(AdaptEndToEnd, ReplayIsBitForBitDeterministic) {
    const ScenarioOutcome first = run_drift_scenario(7);
    const ScenarioOutcome second = run_drift_scenario(7);
    EXPECT_EQ(first.final_blocks, second.final_blocks);
    EXPECT_EQ(first.republishes, second.republishes);
    EXPECT_EQ(first.reliable_windows, second.reliable_windows);
    EXPECT_DOUBLE_EQ(first.final_true_makespan, second.final_true_makespan);
}

// ---------------------------------------------------------------------------
// External reloads invalidate accumulated evidence
// ---------------------------------------------------------------------------

TEST(AdaptEngineTest, ExternalReloadResyncsWorkingModels) {
    ModelRegistry registry;
    registry.put("hybrid", synthetic_models(2, 16, 1.0));
    RequestEngine engine(registry, {.workers = 1, .cache_capacity = 16});
    AdaptConfig config;
    config.min_samples = 3;
    AdaptEngine adapter(engine, config);

    // Two samples of evidence, then an operator hot reload.
    (void)adapter.ingest({"hybrid", 0, 1000.0, 2.0});
    (void)adapter.ingest({"hybrid", 0, 1000.0, 2.0});
    registry.put("hybrid", synthetic_models(2, 16, 2.0));

    // The stale evidence must not complete a reliable window against the
    // new content: the bucket restarts at one sample.
    const auto reply = adapter.ingest({"hybrid", 0, 1000.0, 2.0});
    EXPECT_EQ(reply.samples, 1u);
    EXPECT_FALSE(reply.reliable);
    EXPECT_EQ(adapter.stats().resyncs, 1u);
}

TEST(AdaptEngineTest, RejectsUnknownSetsAndBadDevices) {
    ModelRegistry registry;
    registry.put("hybrid", synthetic_models(2, 16, 1.0));
    RequestEngine engine(registry, {.workers = 1, .cache_capacity = 16});
    AdaptEngine adapter(engine, AdaptConfig{});
    EXPECT_THROW((void)adapter.ingest({"missing", 0, 100.0, 1.0}), Error);
    EXPECT_THROW((void)adapter.ingest({"hybrid", 2, 100.0, 1.0}), Error);
    EXPECT_THROW((void)adapter.ingest({"hybrid", 0, -5.0, 1.0}), Error);
}

// ---------------------------------------------------------------------------
// Wire path: FEEDBACK over the reactor, STATS surfacing, enable/disable
// ---------------------------------------------------------------------------

TEST(AdaptWire, FeedbackRoundTripAndStatsCounters) {
    ModelRegistry registry;
    registry.put("hybrid", synthetic_models(2, 16, 1.0));
    RequestEngine engine(registry, {.workers = 2, .cache_capacity = 16});
    AdaptConfig config;
    config.min_samples = 2;
    AdaptEngine adapter(engine, config);

    SocketServer server(engine);
    server.start();
    {
        ServeClient client("127.0.0.1", server.port());
        auto reply = client.report_feedback({"hybrid", 0, 1000.0, 2.0});
        EXPECT_EQ(reply.model_set, "hybrid");
        EXPECT_EQ(reply.device, 0);
        EXPECT_EQ(reply.samples, 1u);
        EXPECT_FALSE(reply.reliable);
        reply = client.report_feedback({"hybrid", 0, 1000.0, 2.0});
        EXPECT_EQ(reply.samples, 2u);
        EXPECT_TRUE(reply.reliable);
        EXPECT_GE(reply.version, 1u);

        // STATS must carry every adapt_* field, and samples must count.
        const auto stats =
            Response::decode(client.request("STATS"));
        ASSERT_EQ(stats.kind, Response::Kind::kStats);
        std::uint64_t samples_seen = 0;
        std::size_t adapt_fields = 0;
        for (const auto& field : stats.stats) {
            if (field.name.rfind("adapt_", 0) == 0) {
                ++adapt_fields;
            }
            if (field.name == "adapt_samples") {
                samples_seen = std::stoull(field.value);
            }
        }
        EXPECT_GE(adapt_fields, 5u) << "expected adapt_samples, "
                                       "adapt_reliable, adapt_drift, "
                                       "adapt_republished, adapt_model_version";
        EXPECT_GE(samples_seen, 2u);
    }
    server.stop();
}

TEST(AdaptWire, FeedbackWithoutAdapterIsACleanTypedError) {
    ModelRegistry registry;
    registry.put("hybrid", synthetic_models(2, 16, 1.0));
    RequestEngine engine(registry, {.workers = 1, .cache_capacity = 16});
    EXPECT_FALSE(engine.feedback_enabled());

    const std::string reply =
        serve::handle_line(engine, "FEEDBACK hybrid 0 1000 2.0");
    EXPECT_EQ(reply.rfind("ERR ", 0), 0u) << reply;
    EXPECT_NE(reply.find("feedback not enabled"), std::string::npos) << reply;

    // Installing and destroying an adapter enables and disables cleanly.
    {
        AdaptEngine adapter(engine, AdaptConfig{});
        EXPECT_TRUE(engine.feedback_enabled());
        EXPECT_EQ(serve::handle_line(engine, "FEEDBACK hybrid 0 1000 2.0")
                      .rfind("OK FEEDBACK", 0),
                  0u);
    }
    EXPECT_FALSE(engine.feedback_enabled());
}

// ---------------------------------------------------------------------------
// Pre-v4 server: clean typed unsupported-verb error, not a truncation
// ---------------------------------------------------------------------------

namespace {

/// Minimal scripted server: accepts one connection, waits for any bytes,
/// writes `reply` verbatim and closes.
class ScriptedServer {
public:
    explicit ScriptedServer(std::string reply) : reply_(std::move(reply)) {
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                         sizeof addr),
                  0);
        EXPECT_EQ(::listen(listen_fd_, 1), 0);
        socklen_t len = sizeof addr;
        EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                                &len),
                  0);
        port_ = ntohs(addr.sin_port);
        thread_ = std::thread([this]() {
            const int fd = ::accept(listen_fd_, nullptr, nullptr);
            if (fd < 0) {
                return;
            }
            char buffer[256];
            (void)::recv(fd, buffer, sizeof buffer, 0);
            if (!reply_.empty()) {
                (void)::send(fd, reply_.data(), reply_.size(), MSG_NOSIGNAL);
            }
            ::close(fd);
        });
    }

    ~ScriptedServer() {
        thread_.join();
        ::close(listen_fd_);
    }

    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

private:
    std::string reply_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread thread_;
};

} // namespace

TEST(AdaptWire, PreV4ServerAnswersTypedUnsupportedVerbError) {
    // A v3 server does not know FEEDBACK and answers its normal
    // unknown-command ERR line — a complete, well-framed reply.  The
    // client must surface that as a typed unsupported-verb error, never
    // as a transport/truncation failure.
    ScriptedServer v3("ERR unknown command: FEEDBACK\n");
    ServeClient client("127.0.0.1", v3.port());
    try {
        (void)client.report_feedback({"hybrid", 0, 1000.0, 2.0});
        FAIL() << "expected an unsupported-verb error";
    } catch (const serve::TransportError& e) {
        FAIL() << "transport error leaked through: " << e.what();
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("unsupported verb"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find(
                      "v" + std::to_string(serve::kProtocolVersion)),
                  std::string::npos)
            << e.what();
    }
}

// ---------------------------------------------------------------------------
// Chaos: adapt fault points armed, zero torn replies
// ---------------------------------------------------------------------------

TEST(AdaptChaos, InjectedAdaptFaultsNeverTearTheWire) {
    FaultGuard guard;
    ModelRegistry registry;
    registry.put("hybrid", synthetic_models(3, 16, 1.0));
    RequestEngine engine(registry, {.workers = 3, .cache_capacity = 32});
    AdaptConfig config;
    config.min_samples = 2;
    config.drift_threshold = 0.05;
    config.cusum_limit = 0.1;
    AdaptEngine adapter(engine, config);

    fault::install(fault::FaultPlan::parse(
        "seed=9,adapt.ingest=0.2,adapt.refine=0.3,adapt.publish=0.5,"
        "serve.compute=0.1"));

    SocketServer server(engine);
    server.start();
    std::uint64_t ok = 0;
    std::uint64_t err = 0;
    {
        ServeClient client("127.0.0.1", server.port());
        const auto truth = synthetic_models(3, 16, 1.0);
        std::vector<std::string> lines;
        for (int round = 0; round < 40; ++round) {
            lines.clear();
            for (std::int64_t d = 0; d < 3; ++d) {
                serve::Request request;
                request.kind = serve::Request::Kind::kFeedback;
                const double x = 500.0 + 100.0 * static_cast<double>(d);
                // Drifting samples so refine/publish paths actually run.
                request.feedback = {"hybrid", d, x,
                                    truth[static_cast<std::size_t>(d)]
                                            .time(x) *
                                        (1.5 + 0.01 * round)};
                lines.push_back(request.encode());
            }
            serve::Request partition;
            partition.kind = serve::Request::Kind::kPartition;
            partition.partition = {"hybrid", 30 + round % 4, Algorithm::kFpm,
                                   true};
            lines.push_back(partition.encode());

            // Every pipelined reply must decode as a complete typed
            // message: OK or ERR, never torn, never hung.
            const auto replies = client.pipeline(lines);
            ASSERT_EQ(replies.size(), lines.size());
            for (const auto& line : replies) {
                const auto response = Response::decode(line);
                if (response.kind == Response::Kind::kError) {
                    ++err;
                    EXPECT_FALSE(response.error.empty());
                } else {
                    ++ok;
                }
            }
        }
    }
    server.stop();
    EXPECT_GT(ok, 0u);
    EXPECT_GT(err, 0u) << "fault plan never fired; chaos proved nothing";
    EXPECT_GT(fault::point("adapt.ingest").injected(), 0u);
}

// ---------------------------------------------------------------------------
// Hot-path guard: feedback ingestion never blocks PARTITION serving
// ---------------------------------------------------------------------------

TEST(AdaptStress, PartitionsKeepServingUnderConcurrentFeedback) {
    ModelRegistry registry;
    registry.put("hybrid", synthetic_models(3, 16, 1.0));
    RequestEngine engine(registry, {.workers = 4, .cache_capacity = 64});
    AdaptConfig config;
    config.drift_threshold = 1e9;  // ingest-only: no republish churn
    AdaptEngine adapter(engine, config);

    SocketServer server(engine);
    server.start();
    std::atomic<bool> stop{false};
    std::thread feeder([&] {
        ServeClient noisy("127.0.0.1", server.port());
        while (!stop.load(std::memory_order_relaxed)) {
            (void)noisy.report_feedback({"hybrid", 1, 750.0, 0.5});
        }
    });
    {
        ServeClient client("127.0.0.1", server.port());
        const auto expected =
            engine.execute({"hybrid", 52, Algorithm::kFpm, true});
        for (int i = 0; i < 200; ++i) {
            const auto reply =
                client.partition({"hybrid", 52, Algorithm::kFpm, true});
            ASSERT_EQ(reply.blocks, expected.plan->blocks)
                << "feedback traffic changed a PARTITION answer";
        }
    }
    stop.store(true, std::memory_order_relaxed);
    feeder.join();
    server.stop();
    EXPECT_GT(adapter.stats().samples, 0u);
}

} // namespace
} // namespace fpm::adapt

// Tests for the device-set configurations of the hybrid node and the
// contention-aware benchmark factory.
#include <gtest/gtest.h>

#include "fpm/app/device_set.hpp"

namespace fpm::app {
namespace {

class DeviceSetTest : public ::testing::Test {
protected:
    sim::HybridNode node_{sim::ig_platform(), {}};
};

TEST_F(DeviceSetTest, CpuOnlyHasFourFullSockets) {
    const DeviceSet set = cpu_only_devices(node_);
    ASSERT_EQ(set.devices.size(), 4U);
    for (const auto& device : set.devices) {
        EXPECT_EQ(device.kind, DeviceKind::kCpuSocket);
        EXPECT_EQ(device.cores, 6U);
    }
    EXPECT_EQ(set.process_count(), 24U);
    EXPECT_FALSE(set.gpu_on_socket(0));
}

TEST_F(DeviceSetTest, SingleGpuConfiguration) {
    const DeviceSet set = single_gpu_devices(node_, 1);
    ASSERT_EQ(set.devices.size(), 1U);
    EXPECT_EQ(set.devices[0].kind, DeviceKind::kGpu);
    EXPECT_EQ(set.devices[0].name, "GeForce GTX680");
    EXPECT_EQ(set.devices[0].socket, 1U);
    EXPECT_EQ(set.process_count(), 1U);
    EXPECT_THROW(single_gpu_devices(node_, 7), fpm::Error);
}

TEST_F(DeviceSetTest, HybridMatchesPaperConfiguration) {
    // The paper: 22 CPU cores + 2 GPUs, the remaining 2 cores dedicated.
    const DeviceSet set = hybrid_devices(node_);
    ASSERT_EQ(set.devices.size(), 6U);  // 2 GPUs + 4 sockets

    unsigned cpu_cores = 0;
    unsigned gpus = 0;
    for (const auto& device : set.devices) {
        if (device.kind == DeviceKind::kCpuSocket) {
            cpu_cores += device.cores;
        } else {
            ++gpus;
        }
    }
    EXPECT_EQ(cpu_cores, 22U);
    EXPECT_EQ(gpus, 2U);
    EXPECT_EQ(set.process_count(), 24U);

    // Sockets 0 and 1 host GPUs -> 5 compute cores each (the S5 devices);
    // sockets 2 and 3 keep 6 (the S6 devices).
    EXPECT_EQ(set.cpu_cores_on_socket(0), 5U);
    EXPECT_EQ(set.cpu_cores_on_socket(1), 5U);
    EXPECT_EQ(set.cpu_cores_on_socket(2), 6U);
    EXPECT_EQ(set.cpu_cores_on_socket(3), 6U);
    EXPECT_TRUE(set.gpu_on_socket(0));
    EXPECT_TRUE(set.gpu_on_socket(1));
    EXPECT_FALSE(set.gpu_on_socket(2));
}

TEST_F(DeviceSetTest, BenchFactoryWiresContention) {
    const DeviceSet hybrid = hybrid_devices(node_);
    // Find the S5 socket device on socket 0 and the GPU on socket 0.
    std::size_t s5_index = hybrid.devices.size();
    std::size_t gpu_index = hybrid.devices.size();
    for (std::size_t i = 0; i < hybrid.devices.size(); ++i) {
        const Device& d = hybrid.devices[i];
        if (d.kind == DeviceKind::kCpuSocket && d.socket == 0) {
            s5_index = i;
        }
        if (d.kind == DeviceKind::kGpu && d.socket == 0) {
            gpu_index = i;
        }
    }
    ASSERT_LT(s5_index, hybrid.devices.size());
    ASSERT_LT(gpu_index, hybrid.devices.size());

    auto cpu_bench = make_device_bench(node_, hybrid, s5_index);
    auto gpu_bench = make_device_bench(node_, hybrid, gpu_index);

    // The hybrid CPU bench reflects GPU co-activity: slightly slower than
    // an exclusive measurement of the same 5 cores.
    const double exclusive = node_.cpu_kernel_time(0, 5, 300.0, false);
    EXPECT_GT(cpu_bench->run(300.0), exclusive);

    // The hybrid GPU bench reflects 5 co-active CPU cores.
    const double idle_gpu = node_.gpu_kernel_time(0, 300.0, sim::KernelVersion::kV3, 0);
    EXPECT_GT(gpu_bench->run(300.0), idle_gpu);
    EXPECT_THROW(make_device_bench(node_, hybrid, 99), fpm::Error);
}

TEST_F(DeviceSetTest, BuildDeviceFpmsProducesOneModelPerDevice) {
    const DeviceSet set = cpu_only_devices(node_);
    core::FpmBuildOptions options;
    options.x_min = 4.0;
    options.x_max = 400.0;
    options.initial_points = 4;
    options.max_points = 8;
    options.reliability.min_repetitions = 1;
    options.reliability.max_repetitions = 1;
    const auto models = build_device_fpms(node_, set, options);
    ASSERT_EQ(models.size(), set.devices.size());
    for (const auto& model : models) {
        EXPECT_GT(model.speed(100.0), 0.0);
    }
    // Identical sockets produce identical models.
    EXPECT_DOUBLE_EQ(models[0].speed(200.0), models[1].speed(200.0));
}

TEST_F(DeviceSetTest, BuildDeviceCpmsEvenShare) {
    const DeviceSet set = hybrid_devices(node_);
    const auto speeds = build_device_cpms(node_, set, 1600.0);
    ASSERT_EQ(speeds.size(), set.devices.size());
    // The GTX680 constant dwarfs every socket constant when measured at
    // the even share of a small problem (it fits in device memory there).
    double gtx = 0.0;
    double socket_max = 0.0;
    for (std::size_t i = 0; i < speeds.size(); ++i) {
        if (set.devices[i].name == "GeForce GTX680") {
            gtx = speeds[i];
        }
        if (set.devices[i].kind == DeviceKind::kCpuSocket) {
            socket_max = std::max(socket_max, speeds[i]);
        }
    }
    EXPECT_GT(gtx, 5.0 * socket_max);
}

TEST_F(DeviceSetTest, ProcessCountHelpers) {
    Device gpu;
    gpu.kind = DeviceKind::kGpu;
    gpu.cores = 1;
    EXPECT_EQ(gpu.process_count(), 1U);
    Device socket;
    socket.kind = DeviceKind::kCpuSocket;
    socket.cores = 6;
    EXPECT_EQ(socket.process_count(), 6U);
}

} // namespace
} // namespace fpm::app

// Tests for the discrete-event timeline used by the overlap simulator.
#include <gtest/gtest.h>

#include "fpm/sim/timeline.hpp"

namespace fpm::sim {
namespace {

TEST(Timeline, EmptyTimelineHasZeroMakespan) {
    Timeline tl;
    EXPECT_DOUBLE_EQ(tl.makespan(), 0.0);
}

TEST(Timeline, SequentialOpsOnOneResource) {
    Timeline tl;
    const auto r = tl.add_resource("engine");
    tl.add_op(r, 1.0);
    tl.add_op(r, 2.0);
    tl.add_op(r, 0.5);
    EXPECT_DOUBLE_EQ(tl.makespan(), 3.5);
    EXPECT_DOUBLE_EQ(tl.busy_time(r), 3.5);
}

TEST(Timeline, IndependentResourcesRunConcurrently) {
    Timeline tl;
    const auto a = tl.add_resource("a");
    const auto b = tl.add_resource("b");
    tl.add_op(a, 3.0);
    tl.add_op(b, 2.0);
    EXPECT_DOUBLE_EQ(tl.makespan(), 3.0);
}

TEST(Timeline, DependencyDelaysStart) {
    Timeline tl;
    const auto a = tl.add_resource("a");
    const auto b = tl.add_resource("b");
    const auto first = tl.add_op(a, 2.0);
    const auto second = tl.add_op(b, 1.0, {first});
    EXPECT_DOUBLE_EQ(tl.op(second).start, 2.0);
    EXPECT_DOUBLE_EQ(tl.makespan(), 3.0);
}

TEST(Timeline, DiamondDependencies) {
    Timeline tl;
    const auto r0 = tl.add_resource("r0");
    const auto r1 = tl.add_resource("r1");
    const auto r2 = tl.add_resource("r2");
    const auto root = tl.add_op(r0, 1.0);
    const auto left = tl.add_op(r1, 2.0, {root});
    const auto right = tl.add_op(r2, 3.0, {root});
    const auto join = tl.add_op(r0, 1.0, {left, right});
    EXPECT_DOUBLE_EQ(tl.op(join).start, 4.0);
    EXPECT_DOUBLE_EQ(tl.makespan(), 5.0);
}

TEST(Timeline, PipelinePattern) {
    // Classic 2-stage pipeline: transfers (1s) feeding computes (2s).
    // Steady state is compute-bound: makespan = first transfer + N*compute.
    Timeline tl;
    const auto dma = tl.add_resource("dma");
    const auto compute = tl.add_resource("compute");
    Timeline::OpId prev_comp = 0;
    for (int i = 0; i < 4; ++i) {
        const auto tx = tl.add_op(dma, 1.0);
        const std::vector<Timeline::OpId> deps =
            (i == 0) ? std::vector<Timeline::OpId>{tx}
                     : std::vector<Timeline::OpId>{tx, prev_comp};
        prev_comp = tl.add_op(compute, 2.0, deps);
    }
    EXPECT_DOUBLE_EQ(tl.makespan(), 1.0 + 4 * 2.0);
}

TEST(Timeline, FifoOrderPerResource) {
    // Submission order is execution order within one resource, even when a
    // later op has no dependencies.
    Timeline tl;
    const auto r = tl.add_resource("engine");
    const auto other = tl.add_resource("other");
    const auto blocker = tl.add_op(other, 5.0);
    tl.add_op(r, 1.0, {blocker});  // waits until t=5
    const auto late = tl.add_op(r, 1.0);
    EXPECT_DOUBLE_EQ(tl.op(late).start, 6.0);
}

TEST(Timeline, Validation) {
    Timeline tl;
    EXPECT_THROW(tl.add_op(0, 1.0), fpm::Error);  // no resources yet
    const auto r = tl.add_resource("r");
    EXPECT_THROW(tl.add_op(r, -1.0), fpm::Error);
    EXPECT_THROW(tl.add_op(r, 1.0, {42}), fpm::Error);  // dep not submitted
    EXPECT_THROW(tl.op(7), fpm::Error);
    EXPECT_THROW(tl.busy_time(3), fpm::Error);
}

TEST(Timeline, ZeroDurationOpsAllowed) {
    Timeline tl;
    const auto r = tl.add_resource("r");
    const auto a = tl.add_op(r, 0.0);
    const auto b = tl.add_op(r, 1.0, {a});
    EXPECT_DOUBLE_EQ(tl.op(b).start, 0.0);
}

TEST(Timeline, GanttRendersEveryResourceRow) {
    Timeline tl;
    const auto a = tl.add_resource("alpha");
    const auto b = tl.add_resource("b");
    tl.add_op(a, 1.0, {}, "X");
    tl.add_op(b, 2.0, {}, "Y");
    const std::string gantt = tl.render_gantt(40);
    EXPECT_NE(gantt.find("alpha"), std::string::npos);
    EXPECT_NE(gantt.find('X'), std::string::npos);
    EXPECT_NE(gantt.find('Y'), std::string::npos);
    // Two rows -> two newlines at least.
    EXPECT_GE(std::count(gantt.begin(), gantt.end(), '\n'), 2);
}

TEST(Timeline, GanttEmptySchedule) {
    Timeline tl;
    tl.add_resource("r");
    EXPECT_NE(tl.render_gantt().find("empty"), std::string::npos);
}

TEST(Timeline, ResourceNamesAndCount) {
    Timeline tl;
    const auto r = tl.add_resource("dma0");
    EXPECT_EQ(tl.resource_name(r), "dma0");
    EXPECT_EQ(tl.resource_count(), 1U);
}

} // namespace
} // namespace fpm::sim

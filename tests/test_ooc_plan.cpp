// Property tests for the out-of-core tiling plans: exact coverage,
// capacity respect, alignment, residency flags and version semantics.
#include <gtest/gtest.h>

#include <tuple>

#include "fpm/sim/ooc_plan.hpp"

namespace fpm::sim {
namespace {

OocPlanRequest make_request(std::int64_t w, std::int64_t h, double cap,
                            KernelVersion v, bool reversed = false) {
    OocPlanRequest request;
    request.width_blocks = w;
    request.height_blocks = h;
    request.capacity_blocks = cap;
    request.version = v;
    request.reversed = reversed;
    return request;
}

TEST(OocPlan, InCoreSingleChunkForV2) {
    const auto plan = build_ooc_plan(make_request(20, 20, 1000.0, KernelVersion::kV2));
    EXPECT_TRUE(plan.in_core);
    ASSERT_EQ(plan.chunks.size(), 1U);
    EXPECT_TRUE(plan.chunks[0].skip_upload);
    EXPECT_TRUE(plan.chunks[0].skip_download);
    EXPECT_DOUBLE_EQ(plan.upload_c_blocks(), 0.0);
    EXPECT_DOUBLE_EQ(plan.download_c_blocks(), 0.0);
    EXPECT_DOUBLE_EQ(plan.upload_pivot_blocks(), 40.0);
}

TEST(OocPlan, Version1AlwaysStreamsEvenWhenFitting) {
    const auto plan = build_ooc_plan(make_request(20, 20, 1000.0, KernelVersion::kV1));
    EXPECT_FALSE(plan.in_core);
    EXPECT_DOUBLE_EQ(plan.upload_c_blocks(), 400.0);
    EXPECT_DOUBLE_EQ(plan.download_c_blocks(), 400.0);
}

TEST(OocPlan, InCoreBoundaryIncludesPivots) {
    // x + h + w <= cap is the in-core condition: area 400 + 40 = 440.
    EXPECT_TRUE(build_ooc_plan(make_request(20, 20, 440.0, KernelVersion::kV2)).in_core);
    EXPECT_FALSE(
        build_ooc_plan(make_request(20, 20, 439.0, KernelVersion::kV2)).in_core);
}

TEST(OocPlan, TailReuseSavesTwoChunksEachWay) {
    // Deep out-of-core: many chunks; exactly two chunk uploads and two
    // chunk downloads are skipped per invocation (the paper's "save two
    // transfers in each direction").
    const auto plan = build_ooc_plan(make_request(60, 60, 1200.0, KernelVersion::kV2));
    ASSERT_GT(plan.chunks.size(), 4U);
    std::size_t skipped_up = 0;
    std::size_t skipped_down = 0;
    for (const auto& chunk : plan.chunks) {
        skipped_up += chunk.skip_upload ? 1 : 0;
        skipped_down += chunk.skip_download ? 1 : 0;
    }
    EXPECT_EQ(skipped_up, 2U);
    EXPECT_EQ(skipped_down, 2U);
    // The skipped uploads are the first chunks in update order, the
    // skipped downloads the last ones.
    EXPECT_TRUE(plan.chunks.front().skip_upload);
    EXPECT_TRUE(plan.chunks[1].skip_upload);
    EXPECT_TRUE(plan.chunks.back().skip_download);
    EXPECT_TRUE(plan.chunks[plan.chunks.size() - 2].skip_download);
}

TEST(OocPlan, ReversedOrderFlipsChunks) {
    const auto fwd =
        build_ooc_plan(make_request(60, 60, 1200.0, KernelVersion::kV2, false));
    const auto rev =
        build_ooc_plan(make_request(60, 60, 1200.0, KernelVersion::kV2, true));
    ASSERT_EQ(fwd.chunks.size(), rev.chunks.size());
    EXPECT_EQ(fwd.chunks.front().row_begin, 0);
    EXPECT_EQ(rev.chunks.front().row_end, 60);
    // The serpentine property: the reversed plan touches first what the
    // forward plan touched last.
    EXPECT_EQ(rev.chunks.front().row_begin, fwd.chunks.back().row_begin);
}

TEST(OocPlan, InfeasibleCapacityThrows) {
    // Capacity below one row of C plus pivots.
    EXPECT_THROW(build_ooc_plan(make_request(100, 100, 50.0, KernelVersion::kV2)),
                 fpm::Error);
    EXPECT_THROW(build_ooc_plan(make_request(10, 10, 0.0, KernelVersion::kV2)),
                 fpm::Error);
}

TEST(OocPlan, RejectsDegenerateShapes) {
    EXPECT_THROW(build_ooc_plan(make_request(0, 10, 100.0, KernelVersion::kV2)),
                 fpm::Error);
    EXPECT_THROW(build_ooc_plan(make_request(10, -1, 100.0, KernelVersion::kV2)),
                 fpm::Error);
}

TEST(OocPlan, AlignmentSnapsChunkRows) {
    // block_size 48: rows*48 must be a multiple of 32 => rows multiple of 2.
    OocPlanRequest request = make_request(40, 40, 700.0, KernelVersion::kV2);
    request.block_size = 48;
    request.align_elements = 32;
    const auto plan = build_ooc_plan(request);
    ASSERT_FALSE(plan.in_core);
    for (std::size_t i = 0; i + 1 < plan.chunks.size(); ++i) {
        EXPECT_EQ(plan.chunks[i].rows() * 48 % 32, 0)
            << "chunk " << i << " rows=" << plan.chunks[i].rows();
    }
}

TEST(OocPlan, AlignmentSkippedWhenInfeasible) {
    // Tight capacity where snapping to the alignment multiple would make
    // the chunk empty: feasibility wins.
    OocPlanRequest request = make_request(8, 9, 30.0, KernelVersion::kV1);
    request.block_size = 3;    // multiple m = 32/gcd(3,32) = 32 rows
    request.align_elements = 32;
    const auto plan = build_ooc_plan(request);
    EXPECT_GE(plan.chunks.size(), 1U);  // still built, unaligned
}

TEST(OocPlan, TrafficConservation) {
    const auto plan = build_ooc_plan(make_request(50, 70, 900.0, KernelVersion::kV2));
    // Upload + skipped = total area (every chunk either moves or stays).
    double skipped_up = 0.0;
    for (const auto& chunk : plan.chunks) {
        if (chunk.skip_upload) {
            skipped_up += static_cast<double>(chunk.rows() * 50);
        }
    }
    EXPECT_DOUBLE_EQ(plan.upload_c_blocks() + skipped_up, plan.total_area_blocks());
}

// Parameterized coverage sweep across shapes, capacities and versions.
using PlanParam = std::tuple<int, int, double, KernelVersion, bool>;

class OocPlanSweep : public ::testing::TestWithParam<PlanParam> {};

TEST_P(OocPlanSweep, StructuralInvariants) {
    const auto [w, h, cap, version, reversed] = GetParam();
    const auto plan = build_ooc_plan(make_request(w, h, cap, version, reversed));

    // validate() performs the exact-cover checks; must not throw.
    EXPECT_NO_THROW(plan.validate());

    // Total chunk area equals the full Ci area.
    std::int64_t covered = 0;
    for (const auto& chunk : plan.chunks) {
        covered += chunk.rows() * w;
    }
    EXPECT_EQ(covered, static_cast<std::int64_t>(w) * h);

    // Version 1 never skips transfers.
    if (version == KernelVersion::kV1) {
        for (const auto& chunk : plan.chunks) {
            EXPECT_FALSE(chunk.skip_upload);
            EXPECT_FALSE(chunk.skip_download);
        }
    }

    // Device-memory footprint honoured: the working set (two buffers for
    // v2/v3, one for v1, plus pivots) fits the capacity.
    if (!plan.in_core) {
        const double buffers = (version == KernelVersion::kV1) ? 1.0 : 2.0;
        const double rows = static_cast<double>(plan.chunks.front().rows());
        EXPECT_LE(buffers * (rows * w + rows) + w, cap + 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OocPlanSweep,
    ::testing::Combine(::testing::Values(1, 7, 40, 64),
                       ::testing::Values(1, 13, 60),
                       ::testing::Values(300.0, 1206.0, 5000.0),
                       ::testing::Values(KernelVersion::kV1, KernelVersion::kV2,
                                         KernelVersion::kV3),
                       ::testing::Bool()));

TEST(OocPlan, VersionNames) {
    EXPECT_STREQ(to_string(KernelVersion::kV1), "version 1");
    EXPECT_STREQ(to_string(KernelVersion::kV2), "version 2");
    EXPECT_STREQ(to_string(KernelVersion::kV3), "version 3");
}

} // namespace
} // namespace fpm::sim

// Tests for the tracing/reporting helpers: tables, CSV, ASCII charts.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "fpm/common/error.hpp"
#include "fpm/trace/ascii_chart.hpp"
#include "fpm/trace/csv.hpp"
#include "fpm/trace/table.hpp"

namespace fpm::trace {
namespace {

TEST(Table, RendersHeaderRuleAndRows) {
    Table table({"Matrix", "CPUs (sec)", "Hybrid (sec)"});
    table.row().cell("40 x 40").cell(99.5, 1).cell(26.6, 1);
    table.row().cell("50 x 50").cell(195.4, 1).cell(77.8, 1);
    const std::string out = table.render();

    EXPECT_NE(out.find("Matrix"), std::string::npos);
    EXPECT_NE(out.find("99.5"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
    // Four lines: header, rule, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, ColumnsAligned) {
    Table table({"a", "bbbb"});
    table.row().cell(std::int64_t{1}).cell(std::int64_t{2});
    table.row().cell(std::int64_t{100}).cell(std::int64_t{20000});
    const std::string out = table.render();
    std::istringstream stream(out);
    std::string line;
    std::size_t width = 0;
    while (std::getline(stream, line)) {
        if (width == 0) {
            width = line.size();
        }
        EXPECT_EQ(line.size(), width) << line;
    }
}

TEST(Table, NumericCellsRightAligned) {
    Table table({"value"});
    table.row().cell(std::int64_t{7});
    table.row().cell(std::int64_t{12345});
    const std::string out = table.render();
    EXPECT_NE(out.find("    7"), std::string::npos);
}

TEST(Table, RowWidthValidated) {
    Table table({"a", "b"});
    EXPECT_THROW(table.add_row({"only-one"}), fpm::Error);
    EXPECT_THROW(Table({}), fpm::Error);
}

TEST(Csv, WritesAndEscapes) {
    const std::string path = "/tmp/fpmpart_test_csv.csv";
    {
        CsvWriter csv(path);
        csv.write_row(std::vector<std::string>{"x", "speed", "note"});
        csv.write_row(std::vector<double>{1.5, 900.0, 3.0});
        csv.write_row(std::vector<std::string>{"a,b", "he said \"hi\"", "line\nbreak"});
    }
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("x,speed,note"), std::string::npos);
    EXPECT_NE(content.find("1.5,900,3"), std::string::npos);
    EXPECT_NE(content.find("\"a,b\""), std::string::npos);
    EXPECT_NE(content.find("\"he said \"\"hi\"\"\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(Csv, UnwritablePathThrows) {
    EXPECT_THROW(CsvWriter("/nonexistent-dir/foo.csv"), fpm::Error);
}

TEST(Chart, RendersSeriesMarksAndLegend) {
    Series s1{"socket s6", '*', {0.0, 300.0, 600.0}, {60.0, 90.0, 93.0}};
    Series s2{"socket s5", '+', {0.0, 300.0, 600.0}, {50.0, 76.0, 79.0}};
    ChartOptions options;
    options.x_label = "matrix blocks";
    options.y_label = "Speed (GFlops)";
    const std::string out = render_chart({s1, s2}, options);

    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find('+'), std::string::npos);
    EXPECT_NE(out.find("socket s6"), std::string::npos);
    EXPECT_NE(out.find("Speed (GFlops)"), std::string::npos);
    EXPECT_NE(out.find("matrix blocks"), std::string::npos);
    // Axis bounds printed.
    EXPECT_NE(out.find("93.0"), std::string::npos);
    EXPECT_NE(out.find("600"), std::string::npos);
}

TEST(Chart, SinglePointSeries) {
    Series s{"dot", 'o', {5.0}, {10.0}};
    EXPECT_NE(render_chart({s}).find('o'), std::string::npos);
}

TEST(Chart, Validation) {
    EXPECT_THROW(render_chart({}), fpm::Error);
    Series bad{"bad", '*', {1.0, 2.0}, {1.0}};
    EXPECT_THROW(render_chart({bad}), fpm::Error);
    Series empty{"empty", '*', {}, {}};
    EXPECT_THROW(render_chart({empty}), fpm::Error);
    Series ok{"ok", '*', {1.0}, {1.0}};
    ChartOptions tiny;
    tiny.width = 4;
    EXPECT_THROW(render_chart({ok}, tiny), fpm::Error);
}

TEST(Chart, AutoYMin) {
    Series s{"s", '*', {0.0, 1.0}, {100.0, 101.0}};
    ChartOptions options;
    options.auto_y_min = true;
    const std::string out = render_chart({s}, options);
    EXPECT_NE(out.find("100.0"), std::string::npos);
}

} // namespace
} // namespace fpm::trace

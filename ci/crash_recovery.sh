#!/usr/bin/env bash
# Crash-recovery job for the durable model store: configures (once) and
# builds the ASan+UBSan tree, then runs every test labelled `store` —
# the WAL framing, torn-tail/corrupt-snapshot recovery, write-ahead
# veto, fork()+SIGKILL crash and store-fault chaos suites — under the
# sanitizers.  This is the exact command documented in
# docs/operations.md; keep the two in sync.
#
# Usage: ci/crash_recovery.sh [build-dir]   (default: build-asan)
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${1:-$repo/build-asan}"
jobs="${FPMPART_BUILD_JOBS:-2}"

if [ ! -f "$build/CMakeCache.txt" ]; then
  cmake -B "$build" -S "$repo" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFPMPART_SANITIZE=address,undefined
fi

cmake --build "$build" -j "$jobs"
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir "$build" -L store --output-on-failure -j 1

#!/usr/bin/env bash
# Replication drill for fpm::repl: configures (once) and builds the
# ASan+UBSan tree, then runs every test labelled `repl` — the
# ReplicationLog boundary suites, snapshot-transfer and read-only
# serving tests, the repl.* fault-point chaos drill and the
# fork()+SIGKILL primary-failover drill — under the sanitizers.  This
# is the exact command documented in docs/operations.md and
# docs/replication.md; keep them in sync.
#
# Usage: ci/repl_drill.sh [build-dir]   (default: build-asan)
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${1:-$repo/build-asan}"
jobs="${FPMPART_BUILD_JOBS:-2}"

if [ ! -f "$build/CMakeCache.txt" ]; then
  cmake -B "$build" -S "$repo" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFPMPART_SANITIZE=address,undefined
fi

cmake --build "$build" -j "$jobs"
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir "$build" -L repl --output-on-failure -j 1

#!/usr/bin/env bash
# Perf regression gate for the serve stack: builds fpmpart_bench, runs
# the pinned smoke workload twice (1 reactor, then 4 reactors) against
# the same spawned server stack, and compares each run against the
# checked-in baseline bench/baselines/serve_smoke.json.  fpmpart_bench
# itself does the comparison (--baseline/--tolerance) and exits 3 on a
# regression, so this script needs no JSON tooling.
#
# The smoke workload is closed-loop with a fixed request budget: the
# latency numbers are pure client round trips (no arrival-schedule
# jitter), which keeps the tail quantiles stable enough to gate on.
# Methodology and the report schema: docs/benchmarking.md.
#
# Usage: ci/perf_gate.sh [build-dir]       (default: build)
#
#   FPMPART_PERF_TOLERANCE   allowed fractional regression (default 0.6;
#                            0.6 = rate may drop 60%, latency rise 60%)
#   FPMPART_PERF_UPDATE=1    re-measure the baseline instead of gating
#                            (run on a quiet machine, then commit it)
#   FPMPART_BUILD_JOBS       build parallelism (default 2)
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${1:-$repo/build}"
jobs="${FPMPART_BUILD_JOBS:-2}"
tol="${FPMPART_PERF_TOLERANCE:-0.6}"
baseline="$repo/bench/baselines/serve_smoke.json"

if [ ! -f "$build/CMakeCache.txt" ]; then
  cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$build" -j "$jobs" --target fpmpart_bench fpmpart_model

models="$build/perf_gate_models.csv"
"$build/tools/fpmpart_model" --source sim --config hybrid \
  --out "$models" >/dev/null

# The pinned smoke workload: every knob fixed, so a run differs from the
# baseline only by machine and code.  Keep in sync with
# docs/benchmarking.md and regenerate the baseline when changing it.
smoke() { # <reactors> <out-file> [gate flags...]
  local reactors="$1" out="$2"
  shift 2
  "$build/tools/fpmpart_bench" \
    --models hybrid="$models" --reactors "$reactors" --threads 4 \
    --mode closed --connections 4 --requests 4000 --seed 7 \
    --mix 8:1:1:0 --n-min 16 --n-max 96 \
    --out "$out" "$@"
}

if [ "${FPMPART_PERF_UPDATE:-0}" = "1" ]; then
  echo "== perf gate: re-measuring baseline (1 reactor) =="
  smoke 1 "$baseline"
  echo "baseline updated: $baseline (review and commit it)"
  exit 0
fi

echo "== perf gate: 1 reactor vs $baseline (tolerance $tol) =="
smoke 1 "$build/BENCH_loadgen_r1.json" --baseline "$baseline" --tolerance "$tol"

echo "== perf gate: 4 reactors vs $baseline (tolerance $tol) =="
smoke 4 "$build/BENCH_loadgen_r4.json" --baseline "$baseline" --tolerance "$tol"

echo "perf gate: OK"

#!/usr/bin/env bash
# ThreadSanitizer job for the serving stack: configures (once) and
# builds the TSan tree, then runs every test labelled `serve`, `store`
# or `repl` — the reactor-pool, protocol, fault-injection, adaptation,
# durable-store and replication suites — under TSan.  This is the
# exact command documented in docs/operations.md; keep the two in
# sync.
#
# Usage: ci/tsan_serve.sh [build-dir]   (default: build-tsan)
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${1:-$repo/build-tsan}"
jobs="${FPMPART_BUILD_JOBS:-2}"

if [ ! -f "$build/CMakeCache.txt" ]; then
  cmake -B "$build" -S "$repo" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
fi

cmake --build "$build" -j "$jobs"
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir "$build" -L "serve|store|repl" --output-on-failure -j 1

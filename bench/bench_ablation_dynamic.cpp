// Ablation A5 — static FPM partitioning vs dynamic task-queue scheduling
// (the paper's related-work trade-off, made quantitative):
//
//  * dedicated platform: static wins — no migration, full data locality,
//    provably-near-optimal balance from the models;
//  * non-dedicated platform (a socket loses most of its speed partway
//    through): the static partition stalls on the straggler while the
//    dynamic queue reroutes tasks around it.
#include <cstdio>

#include "bench_common.hpp"
#include "fpm/app/dynamic_sched.hpp"
#include "fpm/trace/csv.hpp"
#include "fpm/trace/table.hpp"

using namespace fpm;

int main() {
    sim::HybridNode node(sim::ig_platform(), {});
    bench::print_platform(node);
    std::printf("Ablation A5 — static FPM partitioning vs dynamic task-queue "
                "scheduling (n = 40)\n\n");

    bench::HybridPipeline pipeline(node);
    const app::DeviceSet& set = pipeline.set();
    const std::int64_t n = 40;
    const auto fpm_blocks = pipeline.fpm_blocks(n);

    // --- dedicated platform -------------------------------------------
    const double static_dedicated =
        app::run_static_app_perturbed(node, set, fpm_blocks, n);

    trace::Table table({"strategy", "granularity", "dedicated (s)",
                        "perturbed (s)"});
    trace::CsvWriter csv("ablation_dynamic.csv");
    csv.write_row(std::vector<std::string>{"strategy", "granularity",
                                           "dedicated_s", "perturbed_s"});

    // --- non-dedicated: socket 3 drops to 25 % after a quarter of the
    //     unperturbed runtime -------------------------------------------
    std::size_t loaded_device = 0;
    for (std::size_t i = 0; i < set.devices.size(); ++i) {
        if (set.devices[i].kind == app::DeviceKind::kCpuSocket &&
            set.devices[i].socket == 3) {
            loaded_device = i;
        }
    }
    const app::SpeedModulation modulation = [&](std::size_t device,
                                                double time) {
        return (device == loaded_device && time > static_dedicated / 4.0)
                   ? 0.25
                   : 1.0;
    };
    const double static_perturbed =
        app::run_static_app_perturbed(node, set, fpm_blocks, n, modulation);

    table.row().cell("static FPM").cell("-").cell(static_dedicated, 1)
        .cell(static_perturbed, 1);
    csv.write_row(std::vector<std::string>{
        "static", "-", fixed(static_dedicated, 3), fixed(static_perturbed, 3)});

    double best_dynamic_dedicated = 1e300;
    double best_dynamic_perturbed = 1e300;
    for (const std::int64_t g : {2L, 4L, 8L}) {
        app::DynamicOptions options;
        options.granularity = g;
        const double dedicated =
            app::run_dynamic_app(node, set, n, options).total_time;
        const double perturbed =
            app::run_dynamic_app(node, set, n, options, modulation).total_time;
        table.row().cell("dynamic queue").cell(g).cell(dedicated, 1)
            .cell(perturbed, 1);
        csv.write_row(std::vector<std::string>{"dynamic", std::to_string(g),
                                               fixed(dedicated, 3),
                                               fixed(perturbed, 3)});
        best_dynamic_dedicated = std::min(best_dynamic_dedicated, dedicated);
        best_dynamic_perturbed = std::min(best_dynamic_perturbed, perturbed);
    }
    table.print();
    std::printf("\n");

    bool ok = true;
    ok &= bench::shape_check("ablation_dynamic.static_wins_dedicated",
                             static_dedicated < best_dynamic_dedicated,
                             "static " + fixed(static_dedicated, 1) +
                                 " s < best dynamic " +
                                 fixed(best_dynamic_dedicated, 1) + " s");
    ok &= bench::shape_check("ablation_dynamic.dynamic_wins_perturbed",
                             best_dynamic_perturbed < static_perturbed,
                             "best dynamic " + fixed(best_dynamic_perturbed, 1) +
                                 " s < static " + fixed(static_perturbed, 1) +
                                 " s under load change");
    ok &= bench::shape_check("ablation_dynamic.static_hurt_by_load",
                             static_perturbed > 1.3 * static_dedicated,
                             "static degrades " +
                                 fixed(static_perturbed / static_dedicated, 2) +
                                 "x when a socket is loaded");
    std::printf("\nraw series written to ablation_dynamic.csv\n");
    return ok ? 0 : 1;
}

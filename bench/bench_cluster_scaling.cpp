// Extension E1 — hierarchical FPM partitioning on clusters of hybrid
// nodes (the lineage of the paper's ref [6]):
//
//  (a) strong scaling of a fixed problem on 1..8 identical hybrid nodes,
//      with interconnect broadcasts eroding the parallel efficiency;
//  (b) a heterogeneous 3-node cluster (full hybrid + CPU-only + small),
//      where node-level aggregate FPMs beat an even inter-node split.
#include <cstdio>

#include "bench_common.hpp"
#include "fpm/app/cluster_app.hpp"
#include "fpm/part/hierarchical.hpp"
#include "fpm/trace/csv.hpp"
#include "fpm/trace/table.hpp"

using namespace fpm;

namespace {

core::FpmBuildOptions model_options() {
    core::FpmBuildOptions options;
    options.x_min = 4.0;
    options.x_max = 5300.0;
    options.initial_points = 12;
    options.max_points = 32;
    options.reliability.min_repetitions = 1;
    options.reliability.max_repetitions = 1;
    return options;
}

} // namespace

int main() {
    std::printf("Extension E1 — hierarchical FPM partitioning on clusters\n\n");

    // ---------------- (a) strong scaling ------------------------------
    std::printf("(a) strong scaling, n = 70 (4900 blocks), identical hybrid "
                "nodes, 10 GbE\n\n");
    trace::Table scaling({"nodes", "exec time (s)", "speedup", "efficiency %",
                          "comm share %"});
    trace::CsvWriter csv("cluster_scaling.csv");
    csv.write_row(std::vector<std::string>{"nodes", "exec_s", "speedup",
                                           "efficiency", "comm_share"});
    const std::int64_t n = 70;
    double t1 = 0.0;
    std::vector<double> times;
    for (const std::size_t node_count : {1UL, 2UL, 4UL, 8UL}) {
        sim::HybridCluster cluster(
            sim::homogeneous_hybrid_cluster(node_count), {});
        auto sets = app::cluster_device_sets(cluster);
        const auto models =
            app::cluster_device_fpms(cluster, sets, model_options());
        part::AggregateOptions agg;
        agg.x_max = 5200.0;
        const auto partitioned =
            part::partition_hierarchical(models, n * n, agg);
        const auto result = app::run_simulated_cluster_app(
            cluster, sets, partitioned.device_blocks, n);

        if (node_count == 1) {
            t1 = result.total_time;
        }
        const double speedup = t1 / result.total_time;
        const double efficiency =
            100.0 * speedup / static_cast<double>(node_count);
        const double comm_share =
            100.0 * result.comm_time / result.total_time;
        scaling.row().cell(static_cast<std::int64_t>(node_count))
            .cell(result.total_time, 1).cell(speedup, 2).cell(efficiency, 1)
            .cell(comm_share, 1);
        csv.write_row(std::vector<double>{static_cast<double>(node_count),
                                          result.total_time, speedup,
                                          efficiency, comm_share});
        times.push_back(result.total_time);
    }
    scaling.print();
    std::printf("\n");

    bool ok = true;
    ok &= bench::shape_check("cluster.monotone_speedup",
                             times[1] < times[0] && times[2] < times[1] &&
                                 times[3] < times[2],
                             "more nodes, less time");
    ok &= bench::shape_check("cluster.sublinear_efficiency",
                             times[3] > times[0] / 8.0,
                             "8-node efficiency below 100% (interconnect)");

    // ---------------- (b) heterogeneous cluster -----------------------
    std::printf("(b) heterogeneous 3-node cluster, n = 60\n\n");
    sim::HybridCluster hetero(sim::heterogeneous_cluster(), {});
    auto sets = app::cluster_device_sets(hetero);
    const auto models = app::cluster_device_fpms(hetero, sets, model_options());

    const std::int64_t hn = 60;
    part::AggregateOptions agg;
    agg.x_max = 3700.0;
    const auto fpm_partitioned =
        part::partition_hierarchical(models, hn * hn, agg);
    const auto fpm_result = app::run_simulated_cluster_app(
        hetero, sets, fpm_partitioned.device_blocks, hn);

    // Even inter-node split (FPM still used within each node): the
    // traditional approach when node heterogeneity is ignored.
    std::vector<std::vector<std::int64_t>> even_blocks(hetero.node_count());
    std::int64_t remaining = hn * hn;
    for (std::size_t i = 0; i < hetero.node_count(); ++i) {
        const std::int64_t share =
            (i + 1 == hetero.node_count())
                ? remaining
                : hn * hn / static_cast<std::int64_t>(hetero.node_count());
        remaining -= share;
        const auto intra = part::partition_fpm(
            models[i], static_cast<double>(share));
        even_blocks[i] =
            part::round_partition(intra.partition, share, models[i]).blocks;
    }
    const auto even_result =
        app::run_simulated_cluster_app(hetero, sets, even_blocks, hn);

    trace::Table hetero_table({"inter-node algorithm", "node0", "node1",
                               "node2", "exec time (s)"});
    auto node_total = [](const std::vector<std::int64_t>& blocks) {
        std::int64_t sum = 0;
        for (const auto b : blocks) {
            sum += b;
        }
        return sum;
    };
    hetero_table.row().cell("even split")
        .cell(node_total(even_blocks[0])).cell(node_total(even_blocks[1]))
        .cell(node_total(even_blocks[2])).cell(even_result.total_time, 1);
    hetero_table.row().cell("hierarchical FPM")
        .cell(fpm_partitioned.node_blocks[0])
        .cell(fpm_partitioned.node_blocks[1])
        .cell(fpm_partitioned.node_blocks[2])
        .cell(fpm_result.total_time, 1);
    hetero_table.print();
    std::printf("\n");

    ok &= bench::shape_check("cluster.fpm_beats_even_split",
                             fpm_result.total_time < 0.9 * even_result.total_time,
                             fixed(fpm_result.total_time, 1) + " s vs " +
                                 fixed(even_result.total_time, 1) +
                                 " s on the heterogeneous cluster");
    ok &= bench::shape_check("cluster.big_node_gets_most",
                             fpm_partitioned.node_blocks[0] >
                                 fpm_partitioned.node_blocks[1],
                             "full hybrid node outweighs the CPU-only node");
    std::printf("\nraw series written to cluster_scaling.csv\n");
    return ok ? 0 : 1;
}

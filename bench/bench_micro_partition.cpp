// google-benchmark micro-benchmarks of the partitioning algorithms
// themselves: FPM geometric bisection, integer refinement and the 2-D
// column layout, across device counts.
#include <benchmark/benchmark.h>

#include "fpm/common/rng.hpp"
#include "fpm/part/column2d.hpp"
#include "fpm/part/fpm_partitioner.hpp"
#include "fpm/part/integer.hpp"

namespace {

using fpm::core::SpeedFunction;
using fpm::core::SpeedPoint;

std::vector<SpeedFunction> synthetic_devices(std::size_t count) {
    std::vector<SpeedFunction> models;
    fpm::Rng rng(count);
    for (std::size_t i = 0; i < count; ++i) {
        std::vector<SpeedPoint> points;
        const double peak = rng.uniform(20.0, 900.0);
        const double cliff = rng.uniform(400.0, 3000.0);
        for (double x = 8.0; x <= 5000.0; x *= 1.5) {
            const double speed =
                (x < cliff ? peak : 0.4 * peak) * x / (x + 10.0);
            points.push_back(SpeedPoint{x, speed});
        }
        models.emplace_back(std::move(points), "dev" + std::to_string(i));
    }
    return models;
}

void BM_FpmPartition(benchmark::State& state) {
    const auto models = synthetic_devices(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        const auto result = fpm::part::partition_fpm(models, 4900.0);
        benchmark::DoNotOptimize(result.partition.share.data());
    }
}
BENCHMARK(BM_FpmPartition)->Arg(2)->Arg(6)->Arg(24)->Arg(96);

void BM_RoundPartition(benchmark::State& state) {
    const auto models = synthetic_devices(static_cast<std::size_t>(state.range(0)));
    const auto continuous = fpm::part::partition_fpm(models, 4900.0);
    for (auto _ : state) {
        const auto rounded =
            fpm::part::round_partition(continuous.partition, 4900, models);
        benchmark::DoNotOptimize(rounded.blocks.data());
    }
}
BENCHMARK(BM_RoundPartition)->Arg(6)->Arg(24);

void BM_ColumnLayout(benchmark::State& state) {
    const auto devices = static_cast<std::size_t>(state.range(0));
    const std::int64_t n = 70;
    const auto models = synthetic_devices(devices);
    const auto continuous =
        fpm::part::partition_fpm(models, static_cast<double>(n) * n);
    const auto blocks =
        fpm::part::round_partition(continuous.partition, n * n, models);
    for (auto _ : state) {
        const auto layout = fpm::part::column_partition(n, blocks.blocks);
        benchmark::DoNotOptimize(layout.rects.data());
    }
}
BENCHMARK(BM_ColumnLayout)->Arg(2)->Arg(6)->Arg(24);

void BM_MonotoneEnvelope(benchmark::State& state) {
    const auto models = synthetic_devices(1);
    for (auto _ : state) {
        const fpm::core::MonotoneTime envelope(models[0]);
        benchmark::DoNotOptimize(envelope.invert(1.0));
    }
}
BENCHMARK(BM_MonotoneEnvelope);

} // namespace

BENCHMARK_MAIN();

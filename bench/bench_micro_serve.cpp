// google-benchmark micro-benchmarks of the partition service: cold
// partition computes, cached lookups, single-connection socket round
// trips and multi-threaded engine throughput — the serving-path numbers
// the ROADMAP's traffic goals are measured against.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "fpm/fault/fault.hpp"
#include "fpm/serve/client.hpp"
#include "fpm/serve/protocol.hpp"
#include "fpm/serve/model_registry.hpp"
#include "fpm/serve/request_engine.hpp"
#include "fpm/serve/server.hpp"

namespace {

using fpm::core::SpeedFunction;
using fpm::core::SpeedPoint;
using namespace fpm::serve;

std::vector<SpeedFunction> synthetic_models(std::size_t devices,
                                            std::size_t points_per_model) {
    std::vector<SpeedFunction> models;
    for (std::size_t d = 0; d < devices; ++d) {
        std::vector<SpeedPoint> points;
        const double peak = 50.0 + 20.0 * static_cast<double>(d);
        const double cliff = 1000.0 + 500.0 * static_cast<double>(d);
        for (std::size_t p = 0; p < points_per_model; ++p) {
            const double x =
                4.0 + 6000.0 * static_cast<double>(p) /
                          static_cast<double>(points_per_model - 1);
            const double speed =
                (x < cliff ? peak : 0.5 * peak) * x / (x + 20.0);
            points.push_back(SpeedPoint{x, speed});
        }
        models.emplace_back(std::move(points), "dev" + std::to_string(d));
    }
    return models;
}

struct ServeFixture {
    ModelRegistry registry;
    RequestEngine engine;

    ServeFixture()
        : engine(registry, {.workers = 4, .cache_capacity = 4096}) {
        registry.put("hybrid", synthetic_models(6, 48));
    }
};

ServeFixture& fixture() {
    static ServeFixture instance;
    return instance;
}

// Full pipeline per iteration: distinct n values defeat the cache.
void BM_EngineColdPartition(benchmark::State& state) {
    auto& f = fixture();
    std::int64_t n = 16;
    for (auto _ : state) {
        n = 16 + (n + 1) % 4096;  // walks past any cache capacity reuse
        const auto response =
            f.engine.execute({"hybrid", n, Algorithm::kFpm, true});
        benchmark::DoNotOptimize(response.plan.get());
    }
}
BENCHMARK(BM_EngineColdPartition);

// Cache-hit path: the steady state of a hot key.
void BM_EngineCachedPartition(benchmark::State& state) {
    auto& f = fixture();
    f.engine.execute({"hybrid", 60, Algorithm::kFpm, true});  // warm it
    for (auto _ : state) {
        const auto response =
            f.engine.execute({"hybrid", 60, Algorithm::kFpm, true});
        benchmark::DoNotOptimize(response.plan.get());
    }
}
BENCHMARK(BM_EngineCachedPartition);

// The disarmed fault layer: a fire() on an unconfigured point must cost
// one relaxed atomic load, nothing more.  This is the overhead every
// hot-path site (cache lookup, recv, send) pays in production, so the
// budget is "indistinguishable from free" next to the ~us cache hit.
void BM_FaultPointDisabled(benchmark::State& state) {
    fpm::fault::uninstall();
    auto& point = fpm::fault::point("bench.disabled");
    for (auto _ : state) {
        benchmark::DoNotOptimize(static_cast<bool>(point.fire()));
    }
}
BENCHMARK(BM_FaultPointDisabled);

// The cache-hit path with the fault layer armed elsewhere (a rule on a
// point the path never passes): shows arming is pay-per-site, not a
// global slowdown.
void BM_EngineCachedPartitionFaultsArmed(benchmark::State& state) {
    auto& f = fixture();
    fpm::fault::install(
        fpm::fault::FaultPlan::parse("bench.elsewhere=0.5"));
    f.engine.execute({"hybrid", 61, Algorithm::kFpm, true});  // warm it
    for (auto _ : state) {
        const auto response =
            f.engine.execute({"hybrid", 61, Algorithm::kFpm, true});
        benchmark::DoNotOptimize(response.plan.get());
    }
    fpm::fault::uninstall();
}
BENCHMARK(BM_EngineCachedPartitionFaultsArmed);

// Contended engine throughput: every bench thread hammers a small key
// set, mixing cache hits with coalesced and cold requests.
void BM_EngineConcurrentMixedKeys(benchmark::State& state) {
    auto& f = fixture();
    std::int64_t i = state.thread_index();
    for (auto _ : state) {
        const std::int64_t n = 40 + (i++ % 8) * 4;
        const auto response =
            f.engine.execute({"hybrid", n, Algorithm::kFpm, true});
        benchmark::DoNotOptimize(response.plan.get());
    }
}
BENCHMARK(BM_EngineConcurrentMixedKeys)->Threads(1)->Threads(4)->Threads(8);

// One full wire round trip (cached server-side after the first lap).
void BM_SocketPartitionRoundTrip(benchmark::State& state) {
    auto& f = fixture();
    SocketServer server(f.engine);
    server.start();
    {
        ServeClient client("127.0.0.1", server.port());
        for (auto _ : state) {
            const auto reply =
                client.partition({"hybrid", 52, Algorithm::kFpm, true});
            benchmark::DoNotOptimize(reply.blocks.data());
        }
    }
    server.stop();
}
BENCHMARK(BM_SocketPartitionRoundTrip);

std::string cached_partition_line() {
    Request request;
    request.kind = Request::Kind::kPartition;
    request.partition = PartitionRequest{"hybrid", 52, Algorithm::kFpm, true};
    return request.encode();
}

// The pre-reactor wire pattern, scaled out: Arg(N) connections, each
// doing strict one-request-per-round-trip in lockstep phases.  This is
// the baseline the reactor's pipelining is measured against.
void BM_SocketRoundTripPerRequest(benchmark::State& state) {
    auto& f = fixture();
    ServeConfig config;
    config.max_connections = 256;
    SocketServer server(f.engine, config);
    server.start();
    const auto conns = static_cast<std::size_t>(state.range(0));
    const std::string line = cached_partition_line();
    {
        std::vector<std::unique_ptr<ServeClient>> clients;
        for (std::size_t c = 0; c < conns; ++c) {
            clients.push_back(
                std::make_unique<ServeClient>("127.0.0.1", server.port()));
        }
        clients.front()->request(line);  // warm the cache
        for (auto _ : state) {
            for (auto& client : clients) {
                // One request in flight per connection at any time —
                // the reply gates the next request, like the old
                // blocking handler loop's clients.
                benchmark::DoNotOptimize(client->request(line));
            }
        }
    }
    server.stop();
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(conns));
}
BENCHMARK(BM_SocketRoundTripPerRequest)->Arg(1)->Arg(64);

// Reactor pipelining: every connection keeps a 32-deep batch in flight;
// items/s here vs BM_SocketRoundTripPerRequest/64 is the headline
// request-throughput win of the event-driven redesign.  The second arg
// is the reactor-pool size — items/s at reactors:1/2/4 under 64
// connections is the scaling curve the multi-reactor redesign is
// measured against (expect ~flat on a single-core host; the kernel
// load-balances SO_REUSEPORT accepts only when cores back the loops).
void BM_SocketPipelinedThroughput(benchmark::State& state) {
    auto& f = fixture();
    ServeConfig config;
    config.max_connections = 256;
    config.num_reactors = static_cast<std::size_t>(state.range(1));
    SocketServer server(f.engine, config);
    server.start();
    const auto conns = static_cast<std::size_t>(state.range(0));
    constexpr std::size_t kBatch = 32;
    const std::vector<std::string> batch(kBatch, cached_partition_line());
    {
        std::vector<std::unique_ptr<ServeClient>> clients;
        for (std::size_t c = 0; c < conns; ++c) {
            clients.push_back(
                std::make_unique<ServeClient>("127.0.0.1", server.port()));
        }
        clients.front()->request(batch.front());  // warm the cache
        for (auto _ : state) {
            for (auto& client : clients) {
                client->send_lines(batch);  // all batches in flight at once
            }
            for (auto& client : clients) {
                benchmark::DoNotOptimize(client->read_replies(kBatch));
            }
        }
    }
    server.stop();
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(conns * kBatch));
}
BENCHMARK(BM_SocketPipelinedThroughput)
    ->ArgNames({"conns", "reactors"})
    ->Args({1, 1})
    ->Args({8, 1})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 4});

// Protocol overhead alone.
void BM_SocketPingRoundTrip(benchmark::State& state) {
    auto& f = fixture();
    SocketServer server(f.engine);
    server.start();
    {
        ServeClient client("127.0.0.1", server.port());
        for (auto _ : state) {
            client.ping();
        }
    }
    server.stop();
}
BENCHMARK(BM_SocketPingRoundTrip);

} // namespace

// Machine-readable output by default: unless the caller passes an
// explicit --benchmark_out, results land in BENCH_serve.json (cwd, or
// the path named by FPMPART_BENCH_JSON) alongside the console table,
// so CI and the perf-tracking scripts never have to scrape stdout.
int main(int argc, char** argv) {
    std::vector<char*> args(argv, argv + argc);
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) {
            has_out = true;
        }
    }
    std::string out_flag;
    std::string format_flag = "--benchmark_out_format=json";
    if (!has_out) {
        const char* path = std::getenv("FPMPART_BENCH_JSON");
        out_flag = std::string("--benchmark_out=") +
                   (path != nullptr ? path : "BENCH_serve.json");
        args.push_back(out_flag.data());
        args.push_back(format_flag.data());
    }
    int args_count = static_cast<int>(args.size());
    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

// Ablation A4 — the linear performance model (LPM, refs [3]/[4] of the
// paper) as a third baseline between CPM and FPM: t(x) = alpha + beta*x
// fitted per device.  A linear fit calibrated across the whole range
// averages the GPU's in-core and out-of-core regimes; it behaves better
// than the CPM at large sizes but cannot match the FPM near the memory
// cliff, where the time function is genuinely non-linear.
#include <cstdio>

#include "bench_common.hpp"
#include "fpm/core/models.hpp"
#include "fpm/trace/csv.hpp"
#include "fpm/trace/table.hpp"

using namespace fpm;

int main() {
    sim::HybridNode node(sim::ig_platform(), {});
    bench::print_platform(node);
    std::printf("Ablation A4 — homogeneous vs CPM vs LPM vs FPM partitioning\n\n");

    bench::HybridPipeline pipeline(node);
    const auto& set = pipeline.set();

    // Fit one LPM per device over a spread of sizes.
    measure::ReliabilityOptions quick;
    quick.min_repetitions = 1;
    quick.max_repetitions = 1;
    std::vector<core::SpeedFunction> lpm_models;
    for (std::size_t i = 0; i < set.devices.size(); ++i) {
        auto bench = app::make_device_bench(node, set, i);
        const auto lpm = core::build_lpm(
            *bench, {100.0, 500.0, 1200.0, 2500.0, 4000.0}, quick);
        lpm_models.push_back(lpm.to_speed_function(4.0, 5200.0));
    }

    trace::Table table({"n", "Homogeneous (s)", "CPM (s)", "LPM (s)", "FPM (s)"});
    trace::CsvWriter csv("ablation_lpm.csv");
    csv.write_row(std::vector<std::string>{"n", "even_s", "cpm_s", "lpm_s",
                                           "fpm_s"});

    double lpm70 = 0.0;
    double cpm70 = 0.0;
    double fpm70 = 0.0;
    for (std::int64_t n = 20; n <= 80; n += 10) {
        const double even = pipeline.run(pipeline.even_blocks(n), n).total_time;
        const double cpm = pipeline.run(pipeline.cpm_blocks(n), n).total_time;

        const auto lpm_cont =
            part::partition_fpm(lpm_models, static_cast<double>(n) * n);
        const auto lpm_blocks =
            part::round_partition(lpm_cont.partition, n * n, lpm_models);
        const double lpm = pipeline.run(lpm_blocks.blocks, n).total_time;

        const double fpm = pipeline.run(pipeline.fpm_blocks(n), n).total_time;

        table.row().cell(n).cell(even, 1).cell(cpm, 1).cell(lpm, 1).cell(fpm, 1);
        csv.write_row(std::vector<double>{static_cast<double>(n), even, cpm,
                                          lpm, fpm});
        if (n == 70) {
            lpm70 = lpm;
            cpm70 = cpm;
            fpm70 = fpm;
        }
    }
    table.print();
    std::printf("\n");

    bool ok = true;
    ok &= bench::shape_check("ablation_lpm.lpm_beats_cpm_large", lpm70 < cpm70,
                             "n=70: LPM " + fixed(lpm70, 1) + " s < CPM " +
                                 fixed(cpm70, 1) + " s");
    ok &= bench::shape_check("ablation_lpm.fpm_beats_lpm", fpm70 <= lpm70 * 1.01,
                             "n=70: FPM " + fixed(fpm70, 1) + " s <= LPM " +
                                 fixed(lpm70, 1) + " s");
    std::printf("\nraw series written to ablation_lpm.csv\n");
    return ok ? 0 : 1;
}

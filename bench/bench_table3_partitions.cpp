// Reproduces Table III: the block counts the CPM- and FPM-based
// partitioning algorithms assign to each device of the hybrid node
// (G1 = GeForce GTX680, G2 = Tesla C870, S5 = sockets with a dedicated
// core, S6 = full sockets) for n in {40, 50, 60, 70}.
//
// Shape criteria (paper): the CPM keeps the GTX680-to-S6 ratio near the
// in-core speed ratio (~8x at n = 70, an overload); the FPM ratio falls
// to the out-of-core ratio (~4-6x), and the FPM assignment never exceeds
// what the GPU can digest in balanced time.
#include <cstdio>

#include "bench_common.hpp"
#include "fpm/trace/csv.hpp"
#include "fpm/trace/table.hpp"

using namespace fpm;

int main() {
    sim::HybridNode node(sim::ig_platform(), {});
    bench::print_platform(node);
    std::printf("Table III — heterogeneous data partitioning on the hybrid node\n\n");

    bench::HybridPipeline pipeline(node);
    const auto& set = pipeline.set();

    const std::size_t g1 = bench::find_device(
        set, [](const app::Device& d) { return d.name == "GeForce GTX680"; });
    const std::size_t g2 = bench::find_device(
        set, [](const app::Device& d) { return d.name == "Tesla C870"; });
    const std::size_t s5 = bench::find_device(set, [](const app::Device& d) {
        return d.kind == app::DeviceKind::kCpuSocket && d.cores == 5;
    });
    const std::size_t s6 = bench::find_device(set, [](const app::Device& d) {
        return d.kind == app::DeviceKind::kCpuSocket && d.cores == 6;
    });

    trace::Table table({"Matrix (blks)", "CPM G1", "CPM G2", "CPM S5", "CPM S6",
                        "FPM G1", "FPM G2", "FPM S5", "FPM S6"});
    trace::CsvWriter csv("table3_partitions.csv");
    csv.write_row(std::vector<std::string>{"n", "cpm_g1", "cpm_g2", "cpm_s5",
                                           "cpm_s6", "fpm_g1", "fpm_g2",
                                           "fpm_s5", "fpm_s6"});

    double ratios[4][2] = {};
    std::int64_t fpm_g1_blocks[4] = {};
    for (std::size_t r = 0; r < 4; ++r) {
        const std::int64_t n = 40 + 10 * static_cast<std::int64_t>(r);
        const auto cpm = pipeline.cpm_blocks(n);
        const auto fpm = pipeline.fpm_blocks(n);
        table.row()
            .cell(std::to_string(n) + " x " + std::to_string(n))
            .cell(cpm[g1]).cell(cpm[g2]).cell(cpm[s5]).cell(cpm[s6])
            .cell(fpm[g1]).cell(fpm[g2]).cell(fpm[s5]).cell(fpm[s6]);
        csv.write_row(std::vector<double>{
            static_cast<double>(n), static_cast<double>(cpm[g1]),
            static_cast<double>(cpm[g2]), static_cast<double>(cpm[s5]),
            static_cast<double>(cpm[s6]), static_cast<double>(fpm[g1]),
            static_cast<double>(fpm[g2]), static_cast<double>(fpm[s5]),
            static_cast<double>(fpm[s6])});
        ratios[r][0] = static_cast<double>(cpm[g1]) / static_cast<double>(cpm[s6]);
        ratios[r][1] = static_cast<double>(fpm[g1]) / static_cast<double>(fpm[s6]);
        fpm_g1_blocks[r] = fpm[g1];
    }
    table.print();
    std::printf("\npaper reference (FPM row, n=70): G1=2250 G2=806 S5=425 S6=504\n\n");

    bool ok = true;
    ok &= bench::shape_check("table3.cpm_overloads_gpu", ratios[3][0] > 7.0,
                             "CPM G1/S6 = " + fixed(ratios[3][0], 1) +
                                 " at n=70 (paper ~8)");
    ok &= bench::shape_check("table3.fpm_backs_off", ratios[3][1] < 6.5,
                             "FPM G1/S6 = " + fixed(ratios[3][1], 1) +
                                 " at n=70 (paper ~4.5)");
    ok &= bench::shape_check("table3.ratio_gap",
                             ratios[3][0] > 1.3 * ratios[3][1],
                             "CPM ratio exceeds FPM ratio by >30% at n=70");
    // The FPM's G1 share grows with n but sub-linearly in n^2 once the
    // memory cliff is passed.
    const double growth = static_cast<double>(fpm_g1_blocks[3]) /
                          static_cast<double>(fpm_g1_blocks[0]);
    ok &= bench::shape_check("table3.fpm_sublinear_growth",
                             growth < (4900.0 / 1600.0),
                             "G1 blocks grow " + fixed(growth, 2) +
                                 "x from n=40 to n=70 (< 3.06x area growth)");
    std::printf("\nraw series written to table3_partitions.csv\n");
    return ok ? 0 : 1;
}

// Reproduces Table II: execution time of the parallel matrix
// multiplication on three configurations of the hybrid node —
// 24 CPU cores (homogeneous distribution), GeForce GTX680 + dedicated
// core, and the FPM-partitioned hybrid (22 cores + 2 GPUs).
//
// Shape criteria (paper): the GPU beats the 24 cores while the problem
// (mostly) fits its device memory (n = 40, 50) and loses beyond it
// (n = 60, 70); the hybrid-FPM configuration is fastest everywhere.
// Note: the GPU-only column runs kernel version 2 — the serial
// out-of-core kernel — which is what the paper's effective Table II GPU
// rates (453 -> 324 GFlops) correspond to; the overlapped version 3
// appears in the Fig. 3 reproduction (see EXPERIMENTS.md).
#include <cstdio>

#include "bench_common.hpp"
#include "fpm/trace/csv.hpp"
#include "fpm/trace/table.hpp"

using namespace fpm;

int main() {
    sim::HybridNode node(sim::ig_platform(), {});
    bench::print_platform(node);
    std::printf("Table II — execution time of parallel matrix multiplication\n\n");

    const app::DeviceSet cpu_set = app::cpu_only_devices(node);
    const app::DeviceSet gpu_set =
        app::single_gpu_devices(node, 1, sim::KernelVersion::kV2);
    bench::HybridPipeline pipeline(node);

    struct PaperRow {
        std::int64_t n;
        double cpus;
        double gtx680;
        double hybrid;
    };
    const PaperRow paper[] = {{40, 99.5, 74.2, 26.6},
                              {50, 195.4, 162.7, 77.8},
                              {60, 300.1, 316.8, 114.4},
                              {70, 491.6, 554.8, 226.1}};

    trace::Table table({"Matrix", "CPUs (sec)", "GTX680 (sec)",
                        "Hybrid-FPM (sec)", "paper CPUs", "paper GTX680",
                        "paper Hybrid"});
    trace::CsvWriter csv("table2_exec_time.csv");
    csv.write_row(std::vector<std::string>{"n", "cpus_s", "gtx680_s",
                                           "hybrid_fpm_s"});

    double measured[4][3] = {};
    for (std::size_t r = 0; r < 4; ++r) {
        const std::int64_t n = paper[r].n;

        // Column 2: homogeneous distribution over 24 cores (4 sockets).
        const auto even = part::round_largest_remainder(
            part::partition_homogeneous(cpu_set.devices.size(),
                                        static_cast<double>(n) * n),
            n * n);
        const double t_cpu =
            app::run_simulated_app(node, cpu_set, even.blocks, n).total_time;

        // Column 3: everything on the GTX680 + its dedicated core.
        const double t_gpu =
            app::run_simulated_app(node, gpu_set, {n * n}, n).total_time;

        // Column 4: FPM-partitioned hybrid.
        const double t_hybrid = pipeline.run(pipeline.fpm_blocks(n), n).total_time;

        measured[r][0] = t_cpu;
        measured[r][1] = t_gpu;
        measured[r][2] = t_hybrid;
        table.row()
            .cell(std::to_string(n) + " x " + std::to_string(n))
            .cell(t_cpu, 1)
            .cell(t_gpu, 1)
            .cell(t_hybrid, 1)
            .cell(paper[r].cpus, 1)
            .cell(paper[r].gtx680, 1)
            .cell(paper[r].hybrid, 1);
        csv.write_row(std::vector<double>{static_cast<double>(n), t_cpu, t_gpu,
                                          t_hybrid});
    }
    table.print();
    std::printf("\n");

    bool ok = true;
    ok &= bench::shape_check("table2.gpu_wins_small",
                             measured[0][1] < measured[0][0] &&
                                 measured[1][1] < measured[1][0],
                             "GTX680 beats 24 cores at n=40,50");
    ok &= bench::shape_check("table2.cpus_win_large",
                             measured[2][1] > measured[2][0] &&
                                 measured[3][1] > measured[3][0],
                             "24 cores beat GTX680 at n=60,70");
    bool hybrid_best = true;
    for (auto& row : measured) {
        hybrid_best &= row[2] < row[0] && row[2] < row[1];
    }
    ok &= bench::shape_check("table2.hybrid_always_best", hybrid_best,
                             "Hybrid-FPM fastest at every size");
    // Absolute scale within 2x of the paper on every cell.
    bool scale_ok = true;
    const double paper_cells[4][3] = {{99.5, 74.2, 26.6},
                                      {195.4, 162.7, 77.8},
                                      {300.1, 316.8, 114.4},
                                      {491.6, 554.8, 226.1}};
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 3; ++c) {
            const double ratio = measured[r][c] / paper_cells[r][c];
            scale_ok &= ratio > 0.5 && ratio < 2.0;
        }
    }
    ok &= bench::shape_check("table2.absolute_scale", scale_ok,
                             "every cell within 2x of the paper");
    std::printf("\nraw series written to table2_exec_time.csv\n");
    return ok ? 0 : 1;
}

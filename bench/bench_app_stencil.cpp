// Extension E2 — a second application family through the same pipeline:
// iterative 5-point Jacobi stencil on the hybrid node.
//
// The paper claims the FPM approach works for *any* data-parallel
// application; the stencil stresses it in the opposite regime from GEMM:
// CPUs are memory-bound (core count barely matters) and a GPU falls off a
// PCIe cliff the moment the grid exceeds device memory — its marginal
// speed out of core drops BELOW a socket's.  A CPM calibrated in core
// therefore overloads the GPU catastrophically; the FPM tracks the cliff.
#include <cstdio>

#include "bench_common.hpp"
#include "fpm/core/stencil_bench.hpp"
#include "fpm/sim/stencil_model.hpp"
#include "fpm/trace/ascii_chart.hpp"
#include "fpm/trace/csv.hpp"
#include "fpm/trace/table.hpp"

using namespace fpm;

namespace {

/// Per-sweep makespan of a row distribution (device 0 = GTX680,
/// devices 1..4 = full sockets).
double sweep_makespan(const sim::HybridNode& node, const sim::StencilSpec& spec,
                      const std::vector<double>& rows) {
    double worst = 0.0;
    if (rows[0] > 0.0) {
        worst = sim::stencil_gpu_sweep_time(node, 1, rows[0], spec);
    }
    for (std::size_t s = 0; s < 4; ++s) {
        if (rows[1 + s] > 0.0) {
            worst = std::max(worst, sim::stencil_cpu_sweep_time(
                                        node, s, 6, rows[1 + s], spec));
        }
    }
    return worst;
}

} // namespace

int main() {
    sim::HybridNode node(sim::ig_platform(), {});
    bench::print_platform(node);
    const sim::StencilSpec spec;
    std::printf("Extension E2 — 5-point Jacobi stencil (grid width %lld "
                "cells, single precision)\n\n",
                static_cast<long long>(spec.cols));

    // Speed functions via the generic pipeline.
    core::FpmBuildOptions options = bench::bench_fpm_options(600000.0);
    options.x_min = 64.0;
    std::vector<core::SpeedFunction> models;
    core::SimGpuStencilBench gpu_bench(node, 1, spec);
    models.push_back(core::build_fpm(gpu_bench, options));
    for (std::size_t s = 0; s < node.socket_count(); ++s) {
        core::SimCpuStencilBench cpu_bench(node, s, 6, spec);
        models.push_back(core::build_fpm(cpu_bench, options));
    }

    // The GPU's stencil speed function: dramatic cliff at residency.
    const double resident = sim::stencil_gpu_resident_rows(node, 1, spec);
    std::printf("GTX680 resident capacity: %.0f rows\n\n", resident);
    trace::Series gpu_series{"GTX680 (rows/s, millions)", 'g', {}, {}};
    trace::Series cpu_series{"socket s6 (rows/s, millions)", 's', {}, {}};
    trace::CsvWriter csv("app_stencil.csv");
    csv.write_row(std::vector<std::string>{"rows", "gpu_rows_per_s",
                                           "socket_rows_per_s"});
    for (double rows = 2000.0; rows <= 120000.0; rows += 4000.0) {
        const double gpu_rate = rows / models[0].time(rows) / 1e6;
        const double cpu_rate = rows / models[1].time(rows) / 1e6;
        gpu_series.xs.push_back(rows);
        gpu_series.ys.push_back(gpu_rate);
        cpu_series.xs.push_back(rows);
        cpu_series.ys.push_back(cpu_rate);
        csv.write_row(std::vector<double>{rows, gpu_rate * 1e6, cpu_rate * 1e6});
    }
    std::printf("%s\n", trace::render_chart({gpu_series, cpu_series},
                                            {.width = 72,
                                             .height = 16,
                                             .x_label = "rows assigned",
                                             .y_label = "sweep rate (M rows/s)"})
                            .c_str());

    // Partition a deep out-of-core grid three ways.
    const std::int64_t total_rows = 400000;
    const auto fpm_cont =
        part::partition_fpm(models, static_cast<double>(total_rows));
    const auto fpm_blocks =
        part::round_partition(fpm_cont.partition, total_rows, models);

    std::vector<double> cpm_speeds;
    for (const auto& model : models) {
        cpm_speeds.push_back(1000.0 / model.time(1000.0));  // in-core constants
    }
    const auto cpm_cont =
        part::partition_cpm(cpm_speeds, static_cast<double>(total_rows));
    const auto even_cont = part::partition_homogeneous(
        models.size(), static_cast<double>(total_rows));

    auto to_rows = [](const part::Partition1D& partition) {
        return partition.share;
    };
    std::vector<double> fpm_rows;
    for (const auto blocks : fpm_blocks.blocks) {
        fpm_rows.push_back(static_cast<double>(blocks));
    }
    const double t_fpm = sweep_makespan(node, spec, fpm_rows);
    const double t_cpm = sweep_makespan(node, spec, to_rows(cpm_cont));
    const double t_even = sweep_makespan(node, spec, to_rows(even_cont));

    trace::Table table({"algorithm", "GPU rows", "rows/socket", "sweep time (s)"});
    table.row().cell("homogeneous").cell(even_cont.share[0], 0)
        .cell(even_cont.share[1], 0).cell(t_even, 3);
    table.row().cell("CPM (in-core constants)").cell(cpm_cont.share[0], 0)
        .cell(cpm_cont.share[1], 0).cell(t_cpm, 3);
    table.row().cell("FPM").cell(static_cast<double>(fpm_blocks.blocks[0]), 0)
        .cell(static_cast<double>(fpm_blocks.blocks[1]), 0).cell(t_fpm, 3);
    table.print();
    std::printf("\n");

    bool ok = true;
    const double gpu_in = models[0].speed(resident * 0.5);
    const double gpu_out = models[0].speed(resident * 6.0);
    ok &= bench::shape_check("app_stencil.pcie_cliff",
                             gpu_in > 3.0 * gpu_out,
                             "GPU rate falls " + fixed(gpu_in / gpu_out, 1) +
                                 "x past device memory");
    const double socket_out = models[1].speed(resident * 6.0);
    ok &= bench::shape_check("app_stencil.gpu_marginal_below_socket",
                             gpu_out < socket_out,
                             "out-of-core GPU is slower than one socket");
    ok &= bench::shape_check("app_stencil.fpm_best",
                             t_fpm < t_cpm && t_fpm < t_even,
                             "FPM " + fixed(t_fpm, 3) + " s vs CPM " +
                                 fixed(t_cpm, 3) + " s vs even " +
                                 fixed(t_even, 3) + " s");
    ok &= bench::shape_check("app_stencil.cpm_overload",
                             t_cpm > 2.0 * t_fpm,
                             "the in-core CPM overloads the GPU " +
                                 fixed(t_cpm / t_fpm, 1) + "x");
    std::printf("\nraw series written to app_stencil.csv\n");
    return ok ? 0 : 1;
}

/// \file bench_common.hpp
/// \brief Shared plumbing for the paper-reproduction benches.
///
/// Every bench prints the simulated platform banner (Table I), the
/// reproduced artefact, and one or more machine-greppable shape-check
/// lines `SHAPE <name>: PASS|FAIL (<detail>)` that EXPERIMENTS.md is
/// compiled from.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "fpm/app/device_set.hpp"
#include "fpm/common/format.hpp"
#include "fpm/common/math.hpp"
#include "fpm/core/fpm_builder.hpp"
#include "fpm/sim/node.hpp"

namespace fpm::bench {

/// Prints the Table I banner for the simulated node.
inline void print_platform(const sim::HybridNode& node) {
    const auto& spec = node.spec();
    std::printf("Simulated platform: %s (paper Table I)\n", spec.hostname.c_str());
    std::printf("  CPU: %zu x %u-core %s @ %.1f GHz, %.0f GiB/socket\n",
                spec.sockets.size(), spec.sockets[0].cores,
                spec.sockets[0].name.c_str(), spec.sockets[0].clock_ghz,
                spec.sockets[0].memory_gib);
    for (std::size_t g = 0; g < spec.gpus.size(); ++g) {
        const auto& gpu = spec.gpus[g].gpu;
        std::printf("  GPU: %-15s %4u cores @ %4.0f MHz, %4.0f MiB, %.1f GB/s"
                    " (socket %u, %u DMA engine%s)\n",
                    gpu.name.c_str(), gpu.cuda_cores, gpu.clock_mhz,
                    gpu.device_memory_mib, gpu.device_mem_bandwidth_gbs,
                    spec.gpus[g].socket_index, gpu.dma_engines,
                    gpu.dma_engines == 1 ? "" : "s");
    }
    std::printf("  blocking factor b = %zu, single precision\n\n",
                node.options().block_size);
}

/// One shape-check result line; returns the pass flag so main() can set
/// the exit code.
inline bool shape_check(const std::string& name, bool pass,
                        const std::string& detail) {
    std::printf("SHAPE %s: %s (%s)\n", name.c_str(), pass ? "PASS" : "FAIL",
                detail.c_str());
    return pass;
}

/// Speed in GFlop/s for a kernel of `area` blocks timed at `seconds`.
inline double to_gflops(double area_blocks, double seconds,
                        std::size_t block_size = 640) {
    return gemm_update_flops(area_blocks, static_cast<double>(block_size)) /
           seconds / 1e9;
}

/// FPM build options used by the table/figure benches: noise-free
/// simulator, single repetition, dense enough to pin the memory cliff.
inline core::FpmBuildOptions bench_fpm_options(double x_max) {
    core::FpmBuildOptions options;
    options.x_min = 4.0;
    options.x_max = x_max;
    options.initial_points = 14;
    options.max_points = 44;
    options.refine_tolerance = 0.04;
    options.reliability.min_repetitions = 1;
    options.reliability.max_repetitions = 1;
    return options;
}

/// Finds the first device index matching a predicate; throws if absent.
template <typename Pred>
std::size_t find_device(const app::DeviceSet& set, Pred&& pred) {
    for (std::size_t i = 0; i < set.devices.size(); ++i) {
        if (pred(set.devices[i])) {
            return i;
        }
    }
    throw Error("device not found in set");
}

} // namespace fpm::bench

#include "fpm/app/matmul_sim.hpp"
#include "fpm/part/fpm_partitioner.hpp"
#include "fpm/part/integer.hpp"

namespace fpm::bench {

/// The full partitioning pipeline on the hybrid device set, shared by the
/// Table II/III and Fig. 6/7 benches: FPMs built once (they are valid for
/// the whole problem-size range — the point of the functional model), CPM
/// constants rebuilt per problem size from the even-share measurement.
class HybridPipeline {
public:
    explicit HybridPipeline(sim::HybridNode& node, double x_max = 5200.0)
        : node_(node), set_(app::hybrid_devices(node)),
          fpms_(app::build_device_fpms(node, set_, bench_fpm_options(x_max))) {}

    [[nodiscard]] const app::DeviceSet& set() const { return set_; }
    [[nodiscard]] const std::vector<core::SpeedFunction>& fpms() const {
        return fpms_;
    }

    [[nodiscard]] std::vector<std::int64_t> fpm_blocks(std::int64_t n) const {
        const auto continuous =
            part::partition_fpm(fpms_, static_cast<double>(n) * n);
        return part::round_partition(continuous.partition, n * n, fpms_).blocks;
    }

    [[nodiscard]] std::vector<std::int64_t> cpm_blocks(std::int64_t n) const {
        const auto speeds = app::build_device_cpms(
            node_, set_, static_cast<double>(n) * n);
        const auto continuous =
            part::partition_cpm(speeds, static_cast<double>(n) * n);
        return part::round_largest_remainder(continuous, n * n).blocks;
    }

    [[nodiscard]] std::vector<std::int64_t> even_blocks(std::int64_t n) const {
        const auto continuous = part::partition_homogeneous(
            set_.devices.size(), static_cast<double>(n) * n);
        return part::round_largest_remainder(continuous, n * n).blocks;
    }

    [[nodiscard]] app::SimAppResult run(const std::vector<std::int64_t>& blocks,
                                        std::int64_t n) const {
        return app::run_simulated_app(node_, set_, blocks, n);
    }

private:
    sim::HybridNode& node_;
    app::DeviceSet set_;
    std::vector<core::SpeedFunction> fpms_;
};

} // namespace fpm::bench

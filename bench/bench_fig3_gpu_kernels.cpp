// Reproduces Fig. 3: speed functions of the GeForce GTX680 for the three
// kernel versions — version 1 (C round-trips every call), version 2
// (C resident / out-of-core tiling past the device-memory limit) and
// version 3 (double-buffered overlap) — plus the memory-limit marker.
//
// Shape criteria (paper): v2 roughly doubles v1 while the problem fits in
// device memory; a hard drop at the memory limit; v3 improves on v2 by
// around 30 % out of core; the Tesla C870 (single DMA engine) gains less.
#include <cstdio>

#include "bench_common.hpp"
#include "fpm/core/kernel_bench.hpp"
#include "fpm/trace/ascii_chart.hpp"
#include "fpm/trace/csv.hpp"
#include "fpm/trace/table.hpp"

using namespace fpm;

int main() {
    sim::HybridNode node(sim::ig_platform(), {});
    bench::print_platform(node);
    std::printf("Fig. 3 — GeForce GTX680 kernel versions 1/2/3\n\n");

    constexpr std::size_t kGtx = 1;
    constexpr std::size_t kC870 = 0;
    const double cap = node.gpu_model(kGtx).capacity_blocks();

    // Build the three FPMs through the standard pipeline.
    std::vector<core::SpeedFunction> models;
    for (const auto version : {sim::KernelVersion::kV1, sim::KernelVersion::kV2,
                               sim::KernelVersion::kV3}) {
        core::SimGpuKernelBench bench(node, kGtx, version);
        models.push_back(core::build_fpm(bench, bench::bench_fpm_options(4200.0)));
    }

    trace::Table table({"Matrix blocks (b x b)", "version 1", "version 2",
                        "version 3", ""});
    trace::Series s1{"version 1", '1', {}, {}};
    trace::Series s2{"version 2", '2', {}, {}};
    trace::Series s3{"version 3", '3', {}, {}};
    trace::CsvWriter csv("fig3_gpu_kernels.csv");
    csv.write_row(std::vector<std::string>{"x_blocks", "v1_gflops", "v2_gflops",
                                           "v3_gflops"});

    bool limit_marked = false;
    for (double x = 100.0; x <= 4200.0; x += 100.0) {
        const double v1 = models[0].gflops(x, 640);
        const double v2 = models[1].gflops(x, 640);
        const double v3 = models[2].gflops(x, 640);
        std::string marker;
        if (!limit_marked && x + 100.0 > cap && x <= cap) {
            marker = "<- memory limit";
            limit_marked = true;
        }
        table.row().cell(static_cast<std::int64_t>(x)).cell(v1, 1).cell(v2, 1)
            .cell(v3, 1).cell(marker);
        s1.xs.push_back(x);
        s1.ys.push_back(v1);
        s2.xs.push_back(x);
        s2.ys.push_back(v2);
        s3.xs.push_back(x);
        s3.ys.push_back(v3);
        csv.write_row(std::vector<double>{x, v1, v2, v3});
    }
    table.print();
    std::printf("\n(memory limit at x = %.0f blocks)\n\n", cap);
    std::printf("%s\n", trace::render_chart({s2, s3, s1},
                                            {.width = 72,
                                             .height = 18,
                                             .x_label = "Matrix blocks (b x b)",
                                             .y_label = "Speed (GFlops)"})
                            .c_str());

    bool ok = true;
    const double v1_in = models[0].gflops(900.0, 640);
    const double v2_in = models[1].gflops(900.0, 640);
    ok &= bench::shape_check("fig3.v2_doubles_v1", v2_in > 1.8 * v1_in,
                             "in-core v2/v1 = " + fixed(v2_in / v1_in, 2));
    const double v2_before = models[1].gflops(cap * 0.8, 640);
    const double v2_after = models[1].gflops(cap * 1.8, 640);
    ok &= bench::shape_check("fig3.memory_cliff", v2_after < 0.65 * v2_before,
                             "v2 " + fixed(v2_before, 0) + " -> " +
                                 fixed(v2_after, 0) + " GFlops across the limit");
    const double v2_ooc = models[1].gflops(3600.0, 640);
    const double v3_ooc = models[2].gflops(3600.0, 640);
    const double gain = v3_ooc / v2_ooc - 1.0;
    ok &= bench::shape_check("fig3.overlap_gain",
                             gain > 0.15 && gain < 0.55,
                             "v3/v2 - 1 = " + fixed(100.0 * gain, 1) +
                                 "% at x=3600 (paper ~30%)");

    // C870 comparison: relative overlap gain strictly smaller.
    core::SimGpuKernelBench c870_v2(node, kC870, sim::KernelVersion::kV2);
    core::SimGpuKernelBench c870_v3(node, kC870, sim::KernelVersion::kV3);
    const double c870_x = node.gpu_model(kC870).capacity_blocks() * 2.5;
    const double c870_gain =
        (c870_x / c870_v3.run(c870_x)) / (c870_x / c870_v2.run(c870_x)) - 1.0;
    ok &= bench::shape_check("fig3.c870_gains_less", c870_gain < gain,
                             "C870 gain " + fixed(100.0 * c870_gain, 1) +
                                 "% < GTX680 gain " + fixed(100.0 * gain, 1) + "%");
    std::printf("\nraw series written to fig3_gpu_kernels.csv\n");
    return ok ? 0 : 1;
}

// google-benchmark micro-benchmarks of the online adaptation loop
// (fpm::adapt): feedback ingest throughput, the cost of one reliable
// window's refine+splice, the end-to-end FEEDBACK wire round trip, and
// the hot-path guard — PARTITION latency with the feedback handler
// installed vs absent, and with concurrent feedback traffic hammering
// the adaptation lock.  The acceptance budget is that feedback routing
// costs the PARTITION path nothing measurable (< 2% on the cached
// round trip), since the partition path never touches adapt state.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "fpm/adapt/engine.hpp"
#include "fpm/adapt/feedback.hpp"
#include "fpm/adapt/refiner.hpp"
#include "fpm/serve/client.hpp"
#include "fpm/serve/model_registry.hpp"
#include "fpm/serve/request_engine.hpp"
#include "fpm/serve/server.hpp"

namespace {

using fpm::core::SpeedFunction;
using fpm::core::SpeedPoint;
using namespace fpm::adapt;
using namespace fpm::serve;

std::vector<SpeedFunction> synthetic_models(std::size_t devices,
                                            std::size_t points_per_model) {
    std::vector<SpeedFunction> models;
    for (std::size_t d = 0; d < devices; ++d) {
        std::vector<SpeedPoint> points;
        const double peak = 50.0 + 20.0 * static_cast<double>(d);
        for (std::size_t p = 0; p < points_per_model; ++p) {
            const double x =
                4.0 + 6000.0 * static_cast<double>(p) /
                          static_cast<double>(points_per_model - 1);
            points.push_back(SpeedPoint{x, peak * x / (x + 20.0)});
        }
        models.emplace_back(std::move(points), "dev" + std::to_string(d));
    }
    return models;
}

struct AdaptFixture {
    ModelRegistry registry;
    RequestEngine engine;

    AdaptFixture() : engine(registry, {.workers = 4, .cache_capacity = 4096}) {
        registry.put("hybrid", synthetic_models(4, 48));
    }
};

AdaptFixture& fixture() {
    static AdaptFixture instance;
    return instance;
}

/// A sample near the model prediction: it accumulates evidence but
/// (deadband) rarely forces a splice, so the bench isolates ingest cost.
FeedbackSample on_model_sample(const ModelRegistry& registry,
                               std::int64_t device, double x) {
    const auto set = registry.get("hybrid");
    const double seconds =
        x / set->models[static_cast<std::size_t>(device)].speed(x);
    return {"hybrid", device, x, seconds};
}

// Pure ingest throughput: Welford update + bucket bookkeeping per
// sample, with reliable windows consumed as they complete.
void BM_AdaptIngest(benchmark::State& state) {
    auto& f = fixture();
    AdaptConfig config;
    config.drift_threshold = 1e9;  // never republish: isolate ingest
    AdaptEngine adapter(f.engine, config);
    const auto sample = on_model_sample(f.registry, 0, 1024.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(adapter.ingest(sample));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdaptIngest);

// One refine step: model prediction, clamp, splice into a fresh
// SpeedFunction — the latency a reliable window adds over plain ingest.
void BM_AdaptRefineSplice(benchmark::State& state) {
    AdaptConfig config;
    config.min_speed_change = 0.0;  // always splice
    const OnlineRefiner refiner(config);
    auto models = synthetic_models(1, 48);
    double wobble = 1.02;
    for (auto _ : state) {
        wobble = wobble > 1.0 ? 0.98 : 1.02;  // alternate around the model
        const double observed = models[0].speed(1024.0) * wobble;
        benchmark::DoNotOptimize(
            refiner.refine(models, 0, 1024.0, observed));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdaptRefineSplice);

// Full FEEDBACK wire round trip: encode, reactor dispatch off the
// event loop, ingest on a pool worker, typed reply.
void BM_SocketFeedbackRoundTrip(benchmark::State& state) {
    auto& f = fixture();
    AdaptConfig config;
    config.drift_threshold = 1e9;
    AdaptEngine adapter(f.engine, config);
    SocketServer server(f.engine);
    server.start();
    {
        ServeClient client("127.0.0.1", server.port());
        const auto sample = on_model_sample(f.registry, 1, 2048.0);
        for (auto _ : state) {
            benchmark::DoNotOptimize(client.report_feedback(sample));
        }
    }
    server.stop();
}
BENCHMARK(BM_SocketFeedbackRoundTrip);

// Hot-path guard, structural half: the cached PARTITION round trip with
// no feedback handler installed (the pre-adapt baseline)...
void BM_SocketPartitionNoFeedback(benchmark::State& state) {
    auto& f = fixture();
    SocketServer server(f.engine);
    server.start();
    {
        ServeClient client("127.0.0.1", server.port());
        for (auto _ : state) {
            const auto reply =
                client.partition({"hybrid", 52, Algorithm::kFpm, true});
            benchmark::DoNotOptimize(reply.blocks.data());
        }
    }
    server.stop();
}
BENCHMARK(BM_SocketPartitionNoFeedback);

// ...vs the same round trip with the adaptation layer installed AND a
// background connection streaming feedback the whole time.  Comparing
// these two is the < 2% acceptance check: the PARTITION path shares
// only the rt pool with feedback, never the adapt mutex.
void BM_SocketPartitionUnderFeedback(benchmark::State& state) {
    auto& f = fixture();
    AdaptConfig config;
    config.drift_threshold = 1e9;
    AdaptEngine adapter(f.engine, config);
    SocketServer server(f.engine);
    server.start();
    std::atomic<bool> stop{false};
    std::thread feeder([&] {
        ServeClient noisy("127.0.0.1", server.port());
        const auto sample = on_model_sample(f.registry, 2, 4096.0);
        while (!stop.load(std::memory_order_relaxed)) {
            noisy.report_feedback(sample);
        }
    });
    {
        ServeClient client("127.0.0.1", server.port());
        for (auto _ : state) {
            const auto reply =
                client.partition({"hybrid", 52, Algorithm::kFpm, true});
            benchmark::DoNotOptimize(reply.blocks.data());
        }
    }
    stop.store(true, std::memory_order_relaxed);
    feeder.join();
    server.stop();
}
BENCHMARK(BM_SocketPartitionUnderFeedback);

} // namespace

BENCHMARK_MAIN();

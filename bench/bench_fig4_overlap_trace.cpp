// Reproduces Fig. 4: the out-of-core kernel's buffer plan (a) and the
// concurrent data transfers / kernel executions on the two GPUs (b), as a
// Gantt trace of the discrete-event schedule.
//
// Shape criteria (paper): on the GTX680 (two DMA engines) host-to-device
// and device-to-host transfers overlap each other and the compute; on the
// Tesla C870 (one DMA engine) all transfers serialise on a single engine
// while still overlapping compute.
#include <cstdio>

#include "bench_common.hpp"
#include "fpm/trace/table.hpp"

using namespace fpm;

int main() {
    sim::HybridNode node(sim::ig_platform(), {});
    bench::print_platform(node);
    std::printf("Fig. 4 — out-of-core plan and overlap schedule (version 3)\n\n");

    bool ok = true;
    for (std::size_t gpu = 0; gpu < node.gpu_count(); ++gpu) {
        const auto& spec = node.gpu_model(gpu).spec();
        const double cap = node.gpu_model(gpu).capacity_blocks();
        const std::int64_t side = 55;  // 3025 blocks: well out of core
        const auto timing = node.gpu_sim(gpu).time_invocation(
            side, side, sim::KernelVersion::kV3);

        std::printf("%s (%u DMA engine%s, capacity %.0f blocks)\n",
                    spec.name.c_str(), spec.dma_engines,
                    spec.dma_engines == 1 ? "" : "s", cap);

        // (a) the tiling plan.
        trace::Table plan_table({"chunk", "rows", "blocks", "upload C",
                                 "download C"});
        for (std::size_t i = 0; i < timing.plan.chunks.size(); ++i) {
            const auto& chunk = timing.plan.chunks[i];
            plan_table.row()
                .cell(static_cast<std::int64_t>(i))
                .cell(chunk.rows())
                .cell(chunk.rows() * side)
                .cell(chunk.skip_upload ? "resident" : "yes")
                .cell(chunk.skip_download ? "deferred" : "yes");
        }
        plan_table.print();

        // (b) the schedule.
        std::printf("\nschedule (B = pivot row, H = upload, C = compute, "
                    "D = download):\n%s",
                    timing.timeline.render_gantt(72).c_str());
        std::printf("makespan %.3f s; engine busy: compute %.3f s, h2d %.3f s,"
                    " d2h %.3f s\n\n",
                    timing.total_s, timing.compute_s, timing.h2d_s,
                    timing.d2h_s);

        // Shape checks per GPU.
        const bool overlapped =
            timing.total_s <
            0.95 * (timing.compute_s + timing.h2d_s + timing.d2h_s);
        ok &= bench::shape_check(
            "fig4." + std::string(spec.dma_engines == 2 ? "gtx680" : "c870") +
                ".overlap",
            overlapped, "makespan < serial sum of engine busy times");
        if (spec.dma_engines == 2) {
            ok &= bench::shape_check("fig4.gtx680.bidirectional",
                                     timing.d2h_s > 0.0,
                                     "d2h runs on its own engine");
        } else {
            ok &= bench::shape_check("fig4.c870.single_engine",
                                     timing.d2h_s == 0.0,
                                     "all transfers share one engine");
        }
    }
    return ok ? 0 : 1;
}

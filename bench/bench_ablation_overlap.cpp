// Ablation A2 — what the overlap machinery buys: kernel version 3 versus
// version 2 across problem sizes, and the effect of the DMA-engine count
// (GTX680 with its two engines versus a hypothetical single-engine GTX680
// versus the real single-engine Tesla C870).
#include <cstdio>

#include "bench_common.hpp"
#include "fpm/trace/csv.hpp"
#include "fpm/trace/table.hpp"

using namespace fpm;

namespace {

double speed(const sim::HybridNode& node, std::size_t gpu, double x,
             sim::KernelVersion v) {
    return bench::to_gflops(x, node.gpu_kernel_time(gpu, x, v));
}

} // namespace

int main() {
    sim::HybridNode node(sim::ig_platform(), {});
    bench::print_platform(node);
    std::printf("Ablation A2 — overlap gain and DMA engine count\n\n");

    // A hypothetical GTX680 with one DMA engine.
    sim::NodeSpec crippled_spec = sim::ig_platform();
    crippled_spec.gpus[1].gpu.dma_engines = 1;
    sim::HybridNode crippled(crippled_spec, {});

    trace::Table table({"x (blocks)", "GTX680 v2", "GTX680 v3", "gain %",
                        "GTX680(1 DMA) v3", "C870 v2", "C870 v3", "gain %"});
    trace::CsvWriter csv("ablation_overlap.csv");
    csv.write_row(std::vector<std::string>{"x", "gtx_v2", "gtx_v3",
                                           "gtx_1dma_v3", "c870_v2", "c870_v3"});

    double gtx_gain_at_3600 = 0.0;
    double crippled_v3_at_3600 = 0.0;
    double full_v3_at_3600 = 0.0;
    for (double x = 1500.0; x <= 4500.0; x += 500.0) {
        const double v2 = speed(node, 1, x, sim::KernelVersion::kV2);
        const double v3 = speed(node, 1, x, sim::KernelVersion::kV3);
        const double v3_single = speed(crippled, 1, x, sim::KernelVersion::kV3);
        const double c2 = speed(node, 0, x, sim::KernelVersion::kV2);
        const double c3 = speed(node, 0, x, sim::KernelVersion::kV3);
        table.row().cell(static_cast<std::int64_t>(x)).cell(v2, 1).cell(v3, 1)
            .cell(100.0 * (v3 / v2 - 1.0), 1).cell(v3_single, 1).cell(c2, 1)
            .cell(c3, 1).cell(100.0 * (c3 / c2 - 1.0), 1);
        csv.write_row(std::vector<double>{x, v2, v3, v3_single, c2, c3});
        if (x == 3500.0 || x == 3600.0) {
            gtx_gain_at_3600 = v3 / v2 - 1.0;
            crippled_v3_at_3600 = v3_single;
            full_v3_at_3600 = v3;
        }
    }
    table.print();
    std::printf("\n");

    bool ok = true;
    ok &= bench::shape_check("ablation_overlap.v3_beats_v2",
                             gtx_gain_at_3600 > 0.15,
                             "GTX680 gain " + fixed(100.0 * gtx_gain_at_3600, 1) +
                                 "% out of core");
    ok &= bench::shape_check(
        "ablation_overlap.second_dma_engine_helps",
        crippled_v3_at_3600 < full_v3_at_3600,
        "1-DMA GTX680 v3 " + fixed(crippled_v3_at_3600, 1) + " < 2-DMA " +
            fixed(full_v3_at_3600, 1) + " GFlops");
    std::printf("\nraw series written to ablation_overlap.csv\n");
    return ok ? 0 : 1;
}

// Ablation A1 — the blocking factor b (paper section V): larger b
// amortises per-iteration communication and boosts the optimised kernels,
// but too-coarse granularity leaves fewer blocks to balance the load with.
// The paper tunes b = 640 for its platform; this bench sweeps b and shows
// the trade-off on the hybrid FPM configuration at a fixed element count.
#include <cstdio>

#include "bench_common.hpp"
#include "fpm/trace/csv.hpp"
#include "fpm/trace/table.hpp"

using namespace fpm;

int main() {
    std::printf("Ablation A1 — blocking factor sweep (fixed matrix of "
                "25600^2 elements, hybrid FPM partitioning)\n\n");

    trace::Table table({"b", "n (blocks)", "exec time (s)", "imbalance %",
                        "comm share %"});
    trace::CsvWriter csv("ablation_blocking.csv");
    csv.write_row(std::vector<std::string>{"b", "n", "exec_s", "imbalance",
                                           "comm_share"});

    constexpr std::int64_t kElements = 25600;  // n = 40 at b = 640
    double best_time = 1e300;
    std::size_t best_b = 0;
    std::vector<double> times;

    for (const std::size_t b : {160UL, 320UL, 640UL, 1280UL, 2560UL, 6400UL}) {
        sim::SimOptions options;
        options.block_size = b;
        sim::HybridNode node(sim::ig_platform(), options);
        const std::int64_t n = kElements / static_cast<std::int64_t>(b);

        bench::HybridPipeline pipeline(
            node, static_cast<double>(n) * static_cast<double>(n) + 16.0);
        const auto blocks = pipeline.fpm_blocks(n);
        const auto result = pipeline.run(blocks, n);

        // Load imbalance across busy devices for this granularity.
        double worst = 0.0;
        double best = 1e300;
        for (std::size_t i = 0; i < blocks.size(); ++i) {
            if (blocks[i] > 0) {
                worst = std::max(worst, result.device_iter_time[i]);
                best = std::min(best, result.device_iter_time[i]);
            }
        }
        const double imbalance = 100.0 * (1.0 - best / worst);
        const double comm_share = 100.0 * result.comm_time / result.total_time;

        table.row().cell(static_cast<std::int64_t>(b)).cell(n)
            .cell(result.total_time, 1).cell(imbalance, 1).cell(comm_share, 2);
        csv.write_row(std::vector<double>{static_cast<double>(b),
                                          static_cast<double>(n),
                                          result.total_time, imbalance,
                                          comm_share});
        times.push_back(result.total_time);
        if (result.total_time < best_time) {
            best_time = result.total_time;
            best_b = b;
        }
    }
    table.print();
    std::printf("\nbest blocking factor on this model: b = %zu\n\n", best_b);

    bool ok = true;
    // The trade-off shape: the optimum is interior — both the finest and
    // the coarsest granularities lose to the best b.
    ok &= bench::shape_check("ablation_blocking.interior_optimum",
                             best_time < times.front() && best_time < times.back(),
                             "finest " + fixed(times.front(), 1) + " s, best " +
                                 fixed(best_time, 1) + " s, coarsest " +
                                 fixed(times.back(), 1) + " s");
    std::printf("\nraw series written to ablation_blocking.csv\n");
    return ok ? 0 : 1;
}

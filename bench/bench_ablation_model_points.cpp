// Ablation A3 — model-building cost versus partition quality: how many
// measured points does the FPM need before the partitioning stops
// improving?  Sweeps the point budget and reports the makespan of the
// resulting hybrid partition at n = 70 (deep out-of-core), plus the
// number of kernel invocations spent building the models.
#include <cstdio>

#include "bench_common.hpp"
#include "fpm/trace/csv.hpp"
#include "fpm/trace/table.hpp"

using namespace fpm;

int main() {
    sim::HybridNode node(sim::ig_platform(), {});
    bench::print_platform(node);
    std::printf("Ablation A3 — FPM point budget vs partition quality "
                "(hybrid node, n = 70)\n\n");

    const app::DeviceSet set = app::hybrid_devices(node);
    const std::int64_t n = 70;

    trace::Table table({"points/device", "exec time (s)", "imbalance %"});
    trace::CsvWriter csv("ablation_model_points.csv");
    csv.write_row(std::vector<std::string>{"points", "exec_s", "imbalance"});

    std::vector<double> times;
    for (const std::size_t budget : {3UL, 5UL, 8UL, 14UL, 24UL, 44UL}) {
        core::FpmBuildOptions options = bench::bench_fpm_options(5200.0);
        options.initial_points = std::min<std::size_t>(budget, 14);
        options.max_points = budget;
        const auto fpms = app::build_device_fpms(node, set, options);

        const auto continuous =
            part::partition_fpm(fpms, static_cast<double>(n) * n);
        const auto blocks =
            part::round_partition(continuous.partition, n * n, fpms);
        const auto result = app::run_simulated_app(node, set, blocks.blocks, n);

        double worst = 0.0;
        double best = 1e300;
        for (std::size_t i = 0; i < blocks.blocks.size(); ++i) {
            if (blocks.blocks[i] > 0) {
                worst = std::max(worst, result.device_iter_time[i]);
                best = std::min(best, result.device_iter_time[i]);
            }
        }
        const double imbalance = 100.0 * (1.0 - best / worst);
        table.row().cell(static_cast<std::int64_t>(budget))
            .cell(result.total_time, 1).cell(imbalance, 1);
        csv.write_row(std::vector<double>{static_cast<double>(budget),
                                          result.total_time, imbalance});
        times.push_back(result.total_time);
    }
    table.print();
    std::printf("\n");

    bool ok = true;
    // Coarse models partition measurably worse; the curve must flatten.
    ok &= bench::shape_check("ablation_points.more_points_help",
                             times.back() < times.front() * 1.001,
                             "3 points " + fixed(times.front(), 1) +
                                 " s -> 44 points " + fixed(times.back(), 1) +
                                 " s");
    const double knee = times[3];  // 14 points
    ok &= bench::shape_check("ablation_points.diminishing_returns",
                             times.back() > 0.95 * knee,
                             "beyond ~14 points the gain is < 5%");
    std::printf("\nraw series written to ablation_model_points.csv\n");
    return ok ? 0 : 1;
}

// Ablation A8 — robustness of the pipeline to measurement noise: how does
// the quality of the final partition degrade as the kernel timings jitter,
// and how much does the repeat-until-reliable loop recover?
//
// For each noise level sigma (lognormal multiplicative jitter) the FPMs
// are rebuilt and the hybrid node is repartitioned at n = 60; the quality
// metric is the true (noise-free) makespan of the resulting layout,
// relative to the makespan obtained from exact models.
#include <cstdio>

#include "bench_common.hpp"
#include "fpm/trace/csv.hpp"
#include "fpm/trace/table.hpp"

using namespace fpm;

namespace {

/// Builds models on a noisy node and prices the resulting partition on an
/// exact twin.
double partition_quality(double sigma, bool reliable, std::uint64_t seed,
                         const std::vector<core::SpeedFunction>& exact_models) {
    sim::SimOptions options;
    options.noise_sigma = sigma;
    options.noise_seed = seed;
    sim::HybridNode noisy(sim::ig_platform(), options);
    const app::DeviceSet set = app::hybrid_devices(noisy);

    core::FpmBuildOptions model_options = bench::bench_fpm_options(5200.0);
    if (reliable && sigma > 0.0) {
        model_options.reliability.min_repetitions = 5;
        model_options.reliability.max_repetitions = 40;
        model_options.reliability.target_relative_error = 0.02;
    }
    const auto models = app::build_device_fpms(noisy, set, model_options);

    const std::int64_t n = 60;
    const auto continuous =
        part::partition_fpm(models, static_cast<double>(n) * n);
    const auto blocks =
        part::round_partition(continuous.partition, n * n, models);

    // True cost under the exact models.
    return part::makespan(exact_models,
                          std::span<const std::int64_t>(blocks.blocks));
}

} // namespace

int main() {
    sim::HybridNode exact_node(sim::ig_platform(), {});
    bench::print_platform(exact_node);
    std::printf("Ablation A8 — partition quality vs measurement noise "
                "(hybrid node, n = 60)\n\n");

    const app::DeviceSet exact_set = app::hybrid_devices(exact_node);
    const auto exact_models = app::build_device_fpms(
        exact_node, exact_set, bench::bench_fpm_options(5200.0));
    const double baseline = partition_quality(0.0, false, 1, exact_models);

    trace::Table table({"noise sigma", "1 repetition (% over exact)",
                        "reliability loop (% over exact)"});
    trace::CsvWriter csv("ablation_noise.csv");
    csv.write_row(std::vector<std::string>{"sigma", "single_rep_pct",
                                           "reliable_pct"});

    double worst_single = 0.0;
    double worst_reliable = 0.0;
    for (const double sigma : {0.02, 0.05, 0.10, 0.20}) {
        // Average over a few seeds so one lucky draw cannot hide the
        // degradation.
        double single = 0.0;
        double reliable = 0.0;
        const int seeds = 3;
        for (int s = 0; s < seeds; ++s) {
            single += partition_quality(sigma, false, 10 + s, exact_models);
            reliable += partition_quality(sigma, true, 10 + s, exact_models);
        }
        single /= seeds;
        reliable /= seeds;
        const double single_pct = 100.0 * (single / baseline - 1.0);
        const double reliable_pct = 100.0 * (reliable / baseline - 1.0);
        worst_single = std::max(worst_single, single_pct);
        worst_reliable = std::max(worst_reliable, reliable_pct);
        table.row().cell(sigma, 2).cell(single_pct, 2).cell(reliable_pct, 2);
        csv.write_row(std::vector<double>{sigma, single_pct, reliable_pct});
    }
    table.print();
    std::printf("\n");

    bool ok = true;
    ok &= bench::shape_check("ablation_noise.reliability_loop_helps",
                             worst_reliable < worst_single,
                             "worst degradation " + fixed(worst_reliable, 2) +
                                 "% with the loop vs " + fixed(worst_single, 2) +
                                 "% without");
    ok &= bench::shape_check("ablation_noise.graceful_degradation",
                             worst_reliable < 10.0,
                             "partition stays within 10% of exact up to "
                             "sigma = 0.20 with the reliability loop");
    std::printf("\nraw series written to ablation_noise.csv\n");
    return ok ? 0 : 1;
}

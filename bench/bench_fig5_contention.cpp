// Reproduces Fig. 5: impact of CPU/GPU resource contention on the speed
// functions when both kernels run simultaneously on one socket, with the
// workload split cores:GPU = 1:10 (GPU in-core) and 1:5 (out-of-core).
//
// Shape criteria (paper): the 5 CPU cores show almost the same speed as
// with the GPU idle; the GPU loses 7-15 %.
#include <cstdio>

#include "bench_common.hpp"
#include "fpm/core/kernel_bench.hpp"
#include "fpm/trace/ascii_chart.hpp"
#include "fpm/trace/csv.hpp"
#include "fpm/trace/table.hpp"

using namespace fpm;

int main() {
    sim::HybridNode node(sim::ig_platform(), {});
    bench::print_platform(node);
    std::printf("Fig. 5 — CPU/GPU resource contention on one socket "
                "(GTX680's socket, 5 compute cores + dedicated core)\n\n");

    constexpr std::size_t kGtx = 1;
    const auto options = bench::bench_fpm_options(1200.0);
    const auto gpu_options = bench::bench_fpm_options(4200.0);

    // CPU side: 5 cores exclusive vs 5 cores with the GPU process busy.
    core::SimCpuKernelBench cpu_alone(node, 1, 5, /*gpu_coactive=*/false);
    core::SimCpuKernelBench cpu_shared(node, 1, 5, /*gpu_coactive=*/true);
    const auto s5_alone = core::build_fpm(cpu_alone, options);
    const auto s5_shared = core::build_fpm(cpu_shared, options);

    // GPU side: exclusive vs 5 co-active CPU cores.
    core::SimGpuKernelBench gpu_alone(node, kGtx, sim::KernelVersion::kV3, 0);
    core::SimGpuKernelBench gpu_shared(node, kGtx, sim::KernelVersion::kV3, 5);
    const auto g_alone = core::build_fpm(gpu_alone, gpu_options);
    const auto g_shared = core::build_fpm(gpu_shared, gpu_options);

    std::printf("(a) speed of 5 cores sharing the socket with the GPU\n");
    trace::Table cpu_table({"Matrix blocks", "CPU-only", "with GPU (1:5/1:10)",
                            "ratio"});
    trace::CsvWriter csv("fig5_contention.csv");
    csv.write_row(std::vector<std::string>{
        "x_blocks", "cpu_alone", "cpu_shared", "gpu_alone", "gpu_shared"});
    for (double x = 100.0; x <= 1200.0; x += 100.0) {
        const double alone = s5_alone.gflops(x, 640);
        const double shared = s5_shared.gflops(x, 640);
        cpu_table.row().cell(static_cast<std::int64_t>(x)).cell(alone, 1)
            .cell(shared, 1).cell(shared / alone, 3);
        csv.write_row(std::vector<double>{x, alone, shared,
                                          g_alone.gflops(x * 10.0 / 3.0, 640),
                                          g_shared.gflops(x * 10.0 / 3.0, 640)});
    }
    cpu_table.print();

    std::printf("\n(b) combined speed of GTX680 + dedicated core\n");
    trace::Table gpu_table({"Matrix blocks", "GPU-only",
                            "with 5 cores (1:5/1:10)", "drop %"});
    trace::Series ga{"GPU-only", '*', {}, {}};
    trace::Series gs{"with CPU cores", 'o', {}, {}};
    for (double x = 300.0; x <= 4200.0; x += 300.0) {
        const double alone = g_alone.gflops(x, 640);
        const double shared = g_shared.gflops(x, 640);
        gpu_table.row().cell(static_cast<std::int64_t>(x)).cell(alone, 1)
            .cell(shared, 1).cell(100.0 * (1.0 - shared / alone), 1);
        ga.xs.push_back(x);
        ga.ys.push_back(alone);
        gs.xs.push_back(x);
        gs.ys.push_back(shared);
    }
    gpu_table.print();
    std::printf("\n%s\n", trace::render_chart({ga, gs},
                                              {.width = 72,
                                               .height = 16,
                                               .x_label = "Matrix blocks (b x b)",
                                               .y_label = "Speed (GFlops)"})
                              .c_str());

    bool ok = true;
    const double cpu_ratio = s5_shared.gflops(800.0, 640) / s5_alone.gflops(800.0, 640);
    ok &= bench::shape_check("fig5.cpu_unaffected", cpu_ratio > 0.95,
                             "cores keep " + fixed(100.0 * cpu_ratio, 1) +
                                 "% of exclusive speed");
    double worst_drop = 0.0;
    double best_drop = 1.0;
    for (double x : {800.0, 2000.0, 3600.0}) {
        const double drop = 1.0 - g_shared.gflops(x, 640) / g_alone.gflops(x, 640);
        worst_drop = std::max(worst_drop, drop);
        best_drop = std::min(best_drop, drop);
    }
    ok &= bench::shape_check("fig5.gpu_drop_band",
                             best_drop > 0.05 && worst_drop < 0.20,
                             "GPU drop " + fixed(100.0 * best_drop, 1) + "-" +
                                 fixed(100.0 * worst_drop, 1) +
                                 "% (paper: 7-15%)");
    std::printf("\nraw series written to fig5_contention.csv\n");
    return ok ? 0 : 1;
}

// Reproduces Fig. 2: speed functions of a socket, s5(x) and s6(x), built
// for the ACML-like kernel in single precision with blocking factor 640.
//
// Shape criteria (paper): speed rises then flattens inside the 60-120
// GFlops band; 6 active cores beat 5; scaling with core count is
// sub-linear because of shared-resource contention.
#include <cstdio>

#include "bench_common.hpp"
#include "fpm/core/kernel_bench.hpp"
#include "fpm/trace/ascii_chart.hpp"
#include "fpm/trace/csv.hpp"
#include "fpm/trace/table.hpp"

using namespace fpm;

int main() {
    sim::HybridNode node(sim::ig_platform(), {});
    bench::print_platform(node);
    std::printf("Fig. 2 — speed functions of a socket: s5(x), s6(x)\n\n");

    // Build the two socket FPMs exactly as the partitioning pipeline does.
    core::SimCpuKernelBench bench5(node, 0, 5);
    core::SimCpuKernelBench bench6(node, 0, 6);
    const auto options = bench::bench_fpm_options(1200.0);
    const core::SpeedFunction s5 = core::build_fpm(bench5, options);
    const core::SpeedFunction s6 = core::build_fpm(bench6, options);

    trace::Table table({"Matrix blocks (b x b)", "s5 (GFlops)", "s6 (GFlops)"});
    trace::Series series5{"s5(x) - 5 cores", '+', {}, {}};
    trace::Series series6{"s6(x) - 6 cores", '*', {}, {}};
    trace::CsvWriter csv("fig2_socket_fpm.csv");
    csv.write_row(std::vector<std::string>{"x_blocks", "s5_gflops", "s6_gflops"});

    for (double x = 50.0; x <= 1200.0; x += 50.0) {
        const double g5 = s5.gflops(x, 640);
        const double g6 = s6.gflops(x, 640);
        table.row().cell(static_cast<std::int64_t>(x)).cell(g5, 1).cell(g6, 1);
        series5.xs.push_back(x);
        series5.ys.push_back(g5);
        series6.xs.push_back(x);
        series6.ys.push_back(g6);
        csv.write_row(std::vector<double>{x, g5, g6});
    }
    table.print();
    std::printf("\n%s\n",
                trace::render_chart({series6, series5},
                                    {.width = 72,
                                     .height = 18,
                                     .x_label = "Matrix blocks (b x b)",
                                     .y_label = "Speed (GFlops)",
                                     .y_min = 40.0})
                    .c_str());

    // Shape checks.
    bool ok = true;
    const double g6_plateau = s6.gflops(900.0, 640);
    const double g5_plateau = s5.gflops(750.0, 640);
    ok &= bench::shape_check("fig2.band", g6_plateau > 60.0 && g6_plateau < 120.0,
                             "s6 plateau " + fixed(g6_plateau, 1) + " GFlops");
    ok &= bench::shape_check("fig2.order", g6_plateau > g5_plateau,
                             "s6 " + fixed(g6_plateau, 1) + " > s5 " +
                                 fixed(g5_plateau, 1));
    const double ramp_ratio = s6.gflops(30.0, 640) / g6_plateau;
    ok &= bench::shape_check("fig2.ramp", ramp_ratio < 0.98,
                             "s6(30)/s6(900) = " + fixed(ramp_ratio, 2));
    // Sub-linear scaling: 6 cores less than 6/5 of 5 cores' speed * 6/5.
    const double scaling = g6_plateau / g5_plateau;
    ok &= bench::shape_check("fig2.sublinear", scaling < 1.2,
                             "s6/s5 = " + fixed(scaling, 3) + " < 6/5");
    std::printf("\nraw series written to fig2_socket_fpm.csv\n");
    return ok ? 0 : 1;
}

// Ablation A7 — single vs double precision: the FPM pipeline adapts the
// partition to the arithmetic.  In single precision the GTX680 dominates
// a socket ~9x in core; in double precision its Kepler-class FP64 rate
// (1/24 of FP32) drops the combined GPU device below a socket, and the
// partitioner shifts the workload to the CPUs.  The Tesla C870 has no
// FP64 at all, so the double-precision platform simply excludes it —
// exactly what a deployment would do.
#include <cstdio>

#include "bench_common.hpp"
#include "fpm/part/fpm_partitioner.hpp"
#include "fpm/part/integer.hpp"
#include "fpm/trace/table.hpp"

using namespace fpm;

namespace {

/// The paper's node minus the FP64-less Tesla C870.
sim::NodeSpec gtx_only_platform() {
    sim::NodeSpec spec = sim::ig_platform();
    spec.gpus.erase(spec.gpus.begin());  // drop the C870 (index 0)
    return spec;
}

struct PrecisionRun {
    std::vector<std::string> names;
    std::vector<std::int64_t> blocks;
    double makespan = 0.0;
    double gpu_share = 0.0;
};

PrecisionRun run(sim::Precision precision, std::int64_t n) {
    sim::SimOptions options;
    options.precision = precision;
    sim::HybridNode node(gtx_only_platform(), options);
    const app::DeviceSet set = app::hybrid_devices(node);

    core::FpmBuildOptions model_options = bench::bench_fpm_options(5200.0);
    const auto models = app::build_device_fpms(node, set, model_options);
    const auto continuous =
        part::partition_fpm(models, static_cast<double>(n) * n);
    const auto blocks =
        part::round_partition(continuous.partition, n * n, models);

    PrecisionRun result;
    result.makespan = part::makespan(
        models, std::span<const std::int64_t>(blocks.blocks));
    for (std::size_t i = 0; i < set.devices.size(); ++i) {
        result.names.push_back(set.devices[i].name);
        result.blocks.push_back(blocks.blocks[i]);
        if (set.devices[i].kind == app::DeviceKind::kGpu) {
            result.gpu_share += static_cast<double>(blocks.blocks[i]);
        }
    }
    result.gpu_share /= static_cast<double>(n) * static_cast<double>(n);
    return result;
}

} // namespace

int main() {
    std::printf("Ablation A7 — precision changes the optimal partition "
                "(GTX680 + 4 sockets, n = 50)\n\n");

    const std::int64_t n = 50;
    const PrecisionRun sp = run(sim::Precision::kSingle, n);
    const PrecisionRun dp = run(sim::Precision::kDouble, n);

    trace::Table table({"device", "SP blocks", "DP blocks"});
    for (std::size_t i = 0; i < sp.names.size(); ++i) {
        table.row().cell(sp.names[i]).cell(sp.blocks[i]).cell(dp.blocks[i]);
    }
    table.print();
    std::printf("\nGPU share of the matrix: %.1f%% in single precision, "
                "%.1f%% in double\n\n",
                100.0 * sp.gpu_share, 100.0 * dp.gpu_share);

    bool ok = true;
    ok &= bench::shape_check("ablation_precision.sp_gpu_heavy",
                             sp.gpu_share > 0.45,
                             "SP: GPU takes " + fixed(100.0 * sp.gpu_share, 1) +
                                 "% of the work");
    ok &= bench::shape_check("ablation_precision.dp_cpu_heavy",
                             dp.gpu_share < 0.25,
                             "DP: GPU falls to " +
                                 fixed(100.0 * dp.gpu_share, 1) +
                                 "% (Kepler FP64 = FP32/24)");
    ok &= bench::shape_check("ablation_precision.partition_adapts",
                             sp.gpu_share > 2.0 * dp.gpu_share,
                             "the FPM pipeline re-balances without any "
                             "code change");
    return ok ? 0 : 1;
}

// google-benchmark micro-benchmarks of the real GEMM substrate: the
// blocked kernel versus the naive oracle across sizes, plus the
// application kernel shape Ci += A(b) x B(b).
#include <benchmark/benchmark.h>

#include <cmath>

#include "fpm/blas/gemm.hpp"
#include "fpm/blas/matrix.hpp"
#include "fpm/common/rng.hpp"

namespace {

using fpm::blas::ConstMatrixView;
using fpm::blas::Matrix;

template <typename T>
Matrix<T> random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
    Matrix<T> m(rows, cols);
    fpm::Rng rng(seed);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            m(r, c) = static_cast<T>(rng.uniform(-1.0, 1.0));
        }
    }
    return m;
}

void BM_GemmNaive(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto a = random_matrix<float>(n, n, 1);
    const auto b = random_matrix<float>(n, n, 2);
    Matrix<float> c(n, n, 0.0F);
    for (auto _ : state) {
        fpm::blas::gemm_naive<float>(a.view(), b.view(), c.view());
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128);

void BM_GemmBlocked(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto a = random_matrix<float>(n, n, 3);
    const auto b = random_matrix<float>(n, n, 4);
    Matrix<float> c(n, n, 0.0F);
    for (auto _ : state) {
        fpm::blas::gemm<float>(a.view(), b.view(), c.view());
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

// The application's representative kernel: a rank-b update of a w x h
// block rectangle (Fig. 1b of the paper) with b = 64.
void BM_KernelUpdate(benchmark::State& state) {
    constexpr std::size_t kBlock = 64;
    const auto blocks = static_cast<std::size_t>(state.range(0));
    const auto side = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(blocks))));
    const std::size_t h = side * kBlock;
    const std::size_t w = (blocks / side) * kBlock;
    const auto a_col = random_matrix<float>(h, kBlock, 5);
    const auto b_row = random_matrix<float>(kBlock, w, 6);
    Matrix<float> c(h, w, 0.0F);
    for (auto _ : state) {
        fpm::blas::gemm<float>(a_col.view(), b_row.view(), c.view());
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(
        state.iterations() * static_cast<std::int64_t>(2 * h * w * kBlock));
}
BENCHMARK(BM_KernelUpdate)->Arg(4)->Arg(16)->Arg(64);

void BM_GemmMultithread(benchmark::State& state) {
    const std::size_t n = 256;
    const auto threads = static_cast<unsigned>(state.range(0));
    const auto a = random_matrix<float>(n, n, 7);
    const auto b = random_matrix<float>(n, n, 8);
    Matrix<float> c(n, n, 0.0F);
    for (auto _ : state) {
        fpm::blas::gemm_multithread<float>(a.view(), b.view(), c.view(),
                                           threads);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmMultithread)->Arg(1)->Arg(2)->Arg(4);

} // namespace

BENCHMARK_MAIN();

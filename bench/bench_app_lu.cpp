// Extension E3 — blocked LU factorisation (Linpack-style, the paper's
// ref [1] motivation) through the FPM pipeline.
//
// The trailing-update GEMM shrinks every step, so the distribution is
// recomputed per step from the same speed functions the matmul pipeline
// built.  Two effects to demonstrate:
//  * FPM-partitioned trailing updates beat the homogeneous distribution;
//  * the serial panel factorisation caps the achievable gain (Amdahl),
//    and its share grows as the factorisation proceeds — so LU profits
//    less from perfect partitioning than the embarrassingly parallel
//    matmul does.
#include <cstdio>

#include "bench_common.hpp"
#include "fpm/app/lu.hpp"
#include "fpm/trace/csv.hpp"
#include "fpm/trace/table.hpp"

using namespace fpm;

int main() {
    sim::HybridNode node(sim::ig_platform(), {});
    bench::print_platform(node);
    std::printf("Extension E3 — blocked LU factorisation, FPM vs homogeneous "
                "trailing updates\n\n");

    bench::HybridPipeline pipeline(node);
    const auto& models = pipeline.fpms();

    trace::Table table({"n (blocks)", "homogeneous (s)", "FPM (s)", "gain %",
                        "panel share %"});
    trace::CsvWriter csv("app_lu.csv");
    csv.write_row(std::vector<std::string>{"n", "even_s", "fpm_s",
                                           "panel_share"});

    double gain_at_70 = 0.0;
    double panel_share_small = 0.0;
    double panel_share_large = 0.0;
    for (const std::int64_t n : {10L, 20L, 40L, 70L}) {
        const auto even = app::lu_simulated_time(models, n, false);
        const auto fpm = app::lu_simulated_time(models, n, true);
        const double gain = 100.0 * (1.0 - fpm.total_time / even.total_time);
        const double panel_share =
            100.0 * fpm.panel_time / fpm.total_time;
        table.row().cell(n).cell(even.total_time, 1).cell(fpm.total_time, 1)
            .cell(gain, 1).cell(panel_share, 1);
        csv.write_row(std::vector<double>{static_cast<double>(n),
                                          even.total_time, fpm.total_time,
                                          panel_share});
        if (n == 70) {
            gain_at_70 = gain;
        }
        if (n == 10) {
            panel_share_small = panel_share;
        }
        if (n == 70) {
            panel_share_large = panel_share;
        }
    }
    table.print();
    std::printf("\n");

    bool ok = true;
    ok &= bench::shape_check("app_lu.fpm_beats_even", gain_at_70 > 20.0,
                             "FPM trailing updates " + fixed(gain_at_70, 1) +
                                 "% faster at n=70");
    ok &= bench::shape_check("app_lu.amdahl_panel",
                             panel_share_small > panel_share_large,
                             "serial panel share falls from " +
                                 fixed(panel_share_small, 1) + "% (n=10) to " +
                                 fixed(panel_share_large, 1) + "% (n=70)");

    // Real miniature factorisation as a smoke check: weights from the
    // FPMs at a representative size.
    std::vector<app::LuDevice> devices;
    for (const auto& model : models) {
        devices.push_back(app::LuDevice{1, model.speed(200.0)});
    }
    blas::Matrix<float> a(12 * 8, 12 * 8);
    Rng rng(3);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        float row_sum = 0.0F;
        for (std::size_t j = 0; j < a.cols(); ++j) {
            a(i, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
            row_sum += std::abs(a(i, j));
        }
        a(i, i) = row_sum + 1.0F;
    }
    const auto original = a;
    app::lu_factor_blocked(a, 8, devices);
    const auto product = app::lu_multiply_factors(a);
    const double err =
        blas::max_abs_diff<float>(product.view(), original.view());
    ok &= bench::shape_check("app_lu.real_factorisation_correct", err < 1e-2,
                             "max |LU - A| = " + fixed(err, 6));
    std::printf("\nraw series written to app_lu.csv\n");
    return ok ? 0 : 1;
}

// Ablation A6 — one-shot area-based FPM partitioning vs the shape-aware
// iterative refinement (Clarke et al., ref [17]): how much does closing
// the loop over actual rectangle shapes buy on the hybrid node?
//
// On this platform rectangles come out near-square, so the paper's
// approximation ("the speed for a given area does not vary with nearly
// square shapes") holds and the gain is small — which is itself the
// result worth demonstrating.  A synthetic strongly-shape-sensitive
// device shows the loop earning its keep when the assumption breaks.
#include <cstdio>

#include "bench_common.hpp"
#include "fpm/part/iterative.hpp"
#include "fpm/trace/table.hpp"

using namespace fpm;

int main() {
    sim::HybridNode node(sim::ig_platform(), {});
    bench::print_platform(node);
    std::printf("Ablation A6 — one-shot vs shape-aware iterative "
                "partitioning\n\n");

    bench::HybridPipeline pipeline(node);
    const app::DeviceSet& set = pipeline.set();
    const auto& models = pipeline.fpms();

    // Shape oracle = the simulator itself.
    const part::RectTimeFn oracle = [&](std::size_t device,
                                        const part::Rect& rect) {
        const app::Device& d = set.devices[device];
        if (d.kind == app::DeviceKind::kCpuSocket) {
            return node.cpu_kernel_time(d.socket, d.cores,
                                        static_cast<double>(rect.area()),
                                        set.gpu_on_socket(d.socket));
        }
        const double factor = node.gpu_contention_factor(
            d.gpu_index, set.cpu_cores_on_socket(d.socket));
        return node.gpu_sim(d.gpu_index)
            .time_invocation(rect.w, rect.h, d.gpu_version, factor)
            .total_s;
    };

    trace::Table table({"n", "one-shot makespan (s)", "iterative (s)",
                        "rounds", "gain %"});
    bool ok = true;
    double worst_gain = 0.0;
    for (const std::int64_t n : {40L, 60L, 80L}) {
        // One-shot: area partition, then price the layout with the oracle.
        const auto blocks = pipeline.fpm_blocks(n);
        const auto layout = part::column_partition(n, blocks);
        double one_shot = 0.0;
        for (std::size_t i = 0; i < layout.rects.size(); ++i) {
            if (layout.rects[i].area() > 0) {
                one_shot = std::max(one_shot, oracle(i, layout.rects[i]));
            }
        }

        const auto refined = part::partition_iterative(models, n, oracle);
        const double gain = 1.0 - refined.makespan / one_shot;
        worst_gain = std::min(worst_gain, gain);
        table.row().cell(n).cell(one_shot, 3).cell(refined.makespan, 3)
            .cell(static_cast<std::int64_t>(refined.rounds))
            .cell(100.0 * gain, 2);
        ok &= refined.makespan <= one_shot + 1e-9;
    }
    table.print();
    std::printf("\n");

    ok &= bench::shape_check("ablation_iterative.never_worse", ok,
                             "iterative <= one-shot at every size");

    // Synthetic shape-sensitive device: +3 % time per block of width.
    const std::vector<core::SpeedFunction> synth = {
        core::SpeedFunction::constant(40.0, "wide-penalised"),
        core::SpeedFunction::constant(20.0, "steady"),
    };
    const part::RectTimeFn synth_oracle = [&](std::size_t device,
                                              const part::Rect& rect) {
        const double base = synth[device].time(static_cast<double>(rect.area()));
        return device == 0 ? base * (1.0 + 0.03 * static_cast<double>(rect.w))
                           : base;
    };
    const std::int64_t n = 30;
    const auto synth_blocks = part::round_partition(
        part::partition_fpm(synth, static_cast<double>(n) * n).partition,
        n * n, synth);
    const auto synth_layout = part::column_partition(n, synth_blocks.blocks);
    double synth_one_shot = 0.0;
    for (std::size_t i = 0; i < synth_layout.rects.size(); ++i) {
        synth_one_shot =
            std::max(synth_one_shot, synth_oracle(i, synth_layout.rects[i]));
    }
    const auto synth_refined = part::partition_iterative(synth, n, synth_oracle);
    const double synth_gain = 1.0 - synth_refined.makespan / synth_one_shot;
    std::printf("synthetic shape-sensitive device: one-shot %.2f s, "
                "iterative %.2f s (gain %.1f%%)\n\n",
                synth_one_shot, synth_refined.makespan, 100.0 * synth_gain);
    ok &= bench::shape_check("ablation_iterative.earns_keep_when_needed",
                             synth_gain > 0.03,
                             fixed(100.0 * synth_gain, 1) +
                                 "% gain on a shape-sensitive device");
    ok &= bench::shape_check(
        "ablation_iterative.small_on_near_square", worst_gain > -0.01,
        "near-square shapes: paper's area-only approximation holds");
    return ok ? 0 : 1;
}

// Reproduces Fig. 6: per-process computation time at matrix size 60 x 60
// blocks under (a) CPM-based and (b) FPM-based partitioning.  Process 0 is
// bound to the Tesla C870 host core (socket 0) and process 6 to the
// GeForce GTX680 host core (socket 1), as in the paper.
//
// Shape criteria (paper): under the CPM the GTX680's process is the lone
// straggler (it was overloaded); under the FPM the profile is near-flat
// and the total computation time is ~40 % lower.
#include <cstdio>

#include "bench_common.hpp"
#include "fpm/trace/csv.hpp"
#include "fpm/trace/table.hpp"

using namespace fpm;

namespace {

void print_bars(const std::vector<double>& times) {
    const double worst = *std::max_element(times.begin(), times.end());
    for (std::size_t rank = 0; rank < times.size(); ++rank) {
        const int width =
            static_cast<int>(times[rank] / worst * 52.0 + 0.5);
        std::printf("  rank %2zu |%-52s| %7.1f s\n", rank,
                    std::string(static_cast<std::size_t>(width), '#').c_str(),
                    times[rank]);
    }
}

} // namespace

int main() {
    sim::HybridNode node(sim::ig_platform(), {});
    bench::print_platform(node);
    std::printf("Fig. 6 — per-process computation time, matrix 60 x 60 blocks\n\n");

    bench::HybridPipeline pipeline(node);
    const std::int64_t n = 60;

    const auto cpm_result = pipeline.run(pipeline.cpm_blocks(n), n);
    const auto fpm_result = pipeline.run(pipeline.fpm_blocks(n), n);
    const auto cpm_times =
        app::per_process_times(pipeline.set(), cpm_result.device_compute_time);
    const auto fpm_times =
        app::per_process_times(pipeline.set(), fpm_result.device_compute_time);

    std::printf("(a) CPM-based partitioning (rank 0 = Tesla C870, rank 6 = "
                "GeForce GTX680)\n");
    print_bars(cpm_times);
    std::printf("\n(b) FPM-based partitioning\n");
    print_bars(fpm_times);

    trace::CsvWriter csv("fig6_per_process.csv");
    csv.write_row(std::vector<std::string>{"rank", "cpm_seconds", "fpm_seconds"});
    for (std::size_t rank = 0; rank < cpm_times.size(); ++rank) {
        csv.write_row(std::vector<double>{static_cast<double>(rank),
                                          cpm_times[rank], fpm_times[rank]});
    }

    bool ok = true;
    // Under the CPM the GTX680 process (rank 6) is the straggler by a wide
    // margin over the median process.
    std::vector<double> sorted = cpm_times;
    std::sort(sorted.begin(), sorted.end());
    const double cpm_median = sorted[sorted.size() / 2];
    const double cpm_worst = sorted.back();
    ok &= bench::shape_check("fig6.cpm_straggler_is_gtx680",
                             cpm_times[6] == cpm_worst,
                             "rank 6 takes " + fixed(cpm_times[6], 1) + " s");
    ok &= bench::shape_check("fig6.cpm_unbalanced",
                             cpm_worst > 1.5 * cpm_median,
                             "straggler/median = " +
                                 fixed(cpm_worst / cpm_median, 2));

    // Under the FPM all busy processes finish within a tight band.
    const double fpm_worst =
        *std::max_element(fpm_times.begin(), fpm_times.end());
    const double fpm_best =
        *std::min_element(fpm_times.begin(), fpm_times.end());
    ok &= bench::shape_check("fig6.fpm_balanced", fpm_best > 0.7 * fpm_worst,
                             "min/max = " + fixed(fpm_best / fpm_worst, 2));

    // Total computation time reduced by ~40 % (paper).
    const double reduction = 1.0 - fpm_worst / cpm_worst;
    ok &= bench::shape_check("fig6.total_reduction",
                             reduction > 0.25 && reduction < 0.60,
                             "computation time reduced by " +
                                 fixed(100.0 * reduction, 1) +
                                 "% (paper ~40%)");
    std::printf("\nraw series written to fig6_per_process.csv\n");
    return ok ? 0 : 1;
}

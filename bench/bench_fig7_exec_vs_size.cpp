// Reproduces Fig. 7: execution time of the application versus matrix size
// for the three partitioning algorithms — homogeneous, CPM-based and
// FPM-based — on the full hybrid configuration.
//
// Shape criteria (paper): homogeneous is worst everywhere (dominated by
// the slowest CPU cores); CPM tracks FPM for small sizes and diverges
// from n = 50 (past the GTX680 memory limit); in the large range the FPM
// cuts ~30 % versus CPM and ~45 % versus homogeneous.
#include <cstdio>

#include "bench_common.hpp"
#include "fpm/trace/ascii_chart.hpp"
#include "fpm/trace/csv.hpp"
#include "fpm/trace/table.hpp"

using namespace fpm;

int main() {
    sim::HybridNode node(sim::ig_platform(), {});
    bench::print_platform(node);
    std::printf("Fig. 7 — execution time vs matrix size for the three "
                "partitioning algorithms\n\n");

    bench::HybridPipeline pipeline(node);

    trace::Table table({"Matrix size n", "Homogeneous (s)", "CPM-based (s)",
                        "FPM-based (s)"});
    trace::Series se{"Homogeneous", 'h', {}, {}};
    trace::Series sc{"CPM-based", 'c', {}, {}};
    trace::Series sf{"FPM-based", 'f', {}, {}};
    trace::CsvWriter csv("fig7_exec_vs_size.csv");
    csv.write_row(std::vector<std::string>{"n", "homogeneous_s", "cpm_s",
                                           "fpm_s"});

    std::vector<std::int64_t> sizes;
    std::vector<double> t_even;
    std::vector<double> t_cpm;
    std::vector<double> t_fpm;
    for (std::int64_t n = 10; n <= 80; n += 10) {
        const double even = pipeline.run(pipeline.even_blocks(n), n).total_time;
        const double cpm = pipeline.run(pipeline.cpm_blocks(n), n).total_time;
        const double fpm = pipeline.run(pipeline.fpm_blocks(n), n).total_time;
        sizes.push_back(n);
        t_even.push_back(even);
        t_cpm.push_back(cpm);
        t_fpm.push_back(fpm);
        table.row().cell(n).cell(even, 1).cell(cpm, 1).cell(fpm, 1);
        se.xs.push_back(static_cast<double>(n));
        se.ys.push_back(even);
        sc.xs.push_back(static_cast<double>(n));
        sc.ys.push_back(cpm);
        sf.xs.push_back(static_cast<double>(n));
        sf.ys.push_back(fpm);
        csv.write_row(std::vector<double>{static_cast<double>(n), even, cpm, fpm});
    }
    table.print();
    std::printf("\n%s\n", trace::render_chart({se, sc, sf},
                                              {.width = 72,
                                               .height = 18,
                                               .x_label = "Matrix size n",
                                               .y_label = "Execution time (s)"})
                              .c_str());

    bool ok = true;
    bool fpm_never_worse = true;
    bool homogeneous_worst_large = true;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        fpm_never_worse &= t_fpm[i] <= t_cpm[i] * 1.02 &&
                           t_fpm[i] <= t_even[i] * 1.02;
        if (sizes[i] >= 40) {
            homogeneous_worst_large &= t_even[i] > t_cpm[i];
        }
    }
    ok &= bench::shape_check("fig7.fpm_never_worse", fpm_never_worse,
                             "FPM <= CPM and <= homogeneous at every size");
    ok &= bench::shape_check("fig7.homogeneous_worst", homogeneous_worst_large,
                             "homogeneous slowest in the large range");

    // CPM tracks FPM at small sizes, diverges at n >= 50.
    const double small_gap = t_cpm[2] / t_fpm[2];  // n = 30
    const double large_gap = t_cpm[6] / t_fpm[6];  // n = 70
    ok &= bench::shape_check("fig7.cpm_tracks_small", small_gap < 1.15,
                             "CPM/FPM = " + fixed(small_gap, 2) + " at n=30");
    ok &= bench::shape_check("fig7.cpm_diverges_large", large_gap > 1.2,
                             "CPM/FPM = " + fixed(large_gap, 2) + " at n=70");

    // Reductions in the large range (paper: ~30 % vs CPM, ~45 % vs even).
    const double vs_cpm = 1.0 - t_fpm[6] / t_cpm[6];
    const double vs_even = 1.0 - t_fpm[6] / t_even[6];
    ok &= bench::shape_check("fig7.reduction_vs_cpm",
                             vs_cpm > 0.18 && vs_cpm < 0.50,
                             fixed(100.0 * vs_cpm, 1) + "% at n=70 (paper ~30%)");
    ok &= bench::shape_check("fig7.reduction_vs_homogeneous",
                             vs_even > 0.30 && vs_even < 0.65,
                             fixed(100.0 * vs_even, 1) + "% at n=70 (paper ~45%)");
    std::printf("\nraw series written to fig7_exec_vs_size.csv\n");
    return ok ? 0 : 1;
}

// google-benchmark micro-benchmarks of fpm::obs: the disabled-tracing
// Span (the <1% overhead budget the instrumented hot paths rely on),
// the enabled-tracing Span, and the metrics write paths (counter add,
// histogram record) under one and many threads.
#include <benchmark/benchmark.h>

#include "fpm/obs/metrics.hpp"
#include "fpm/obs/trace.hpp"

namespace {

using namespace fpm::obs;

// The cost every instrumented scope pays when tracing is off: one
// relaxed load and a branch.
void BM_SpanDisabled(benchmark::State& state) {
    disable_tracing();
    for (auto _ : state) {
        Span span("bench.obs.disabled");
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_SpanDisabled)->Threads(1)->Threads(8);

// Recording cost with tracing on (two clock reads plus a ring append).
void BM_SpanEnabled(benchmark::State& state) {
    if (state.thread_index() == 0) {
        enable_tracing("/tmp/fpmpart_bench_obs_trace.json");
    }
    for (auto _ : state) {
        Span span("bench.obs.enabled", 42);
        benchmark::ClobberMemory();
    }
    if (state.thread_index() == 0) {
        disable_tracing();
    }
}
BENCHMARK(BM_SpanEnabled)->Threads(1)->Threads(8);

void BM_CounterAdd(benchmark::State& state) {
    static Counter counter;
    for (auto _ : state) {
        counter.add();
    }
    benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterAdd)->Threads(1)->Threads(8);

void BM_HistogramRecord(benchmark::State& state) {
    static Histogram histogram;
    double value = 1e-6;
    for (auto _ : state) {
        value = value < 1e-3 ? value * 1.0009765625 : 1e-6;
        histogram.record(value);
    }
    benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_HistogramRecord)->Threads(1)->Threads(8);

// Registry lookup by name — the path instrumentation sites avoid by
// caching the returned reference.
void BM_RegistryLookup(benchmark::State& state) {
    auto& registry = MetricsRegistry::global();
    for (auto _ : state) {
        benchmark::DoNotOptimize(&registry.counter("bench.obs.lookup"));
    }
}
BENCHMARK(BM_RegistryLookup)->Threads(1)->Threads(8);

} // namespace

BENCHMARK_MAIN();

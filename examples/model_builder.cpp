// model_builder: build a functional performance model of THIS machine.
//
// Wraps the library's real blocked GEMM in a KernelBenchmark and builds an
// FPM of the host by timing the application kernel Ci += A(b) x B(b) at a
// series of problem sizes, with the repeat-until-reliable loop doing the
// statistics.  This is exactly what you would do to deploy the
// partitioner on real hardware: one such model per device, then
// part::partition_fpm over them.
//
// Usage: ./examples/model_builder [block_size] [threads] [max_blocks]
//   defaults: block_size=64 threads=2 max_blocks=96
#include <cstdio>
#include <cstdlib>

#include "fpm/core/fpm_builder.hpp"
#include "fpm/core/kernel_bench.hpp"
#include "fpm/core/models.hpp"
#include "fpm/trace/ascii_chart.hpp"
#include "fpm/trace/table.hpp"

int main(int argc, char** argv) {
    using namespace fpm;

    const std::size_t block_size =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
    const unsigned threads =
        argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10)) : 2;
    const double max_blocks =
        argc > 3 ? std::strtod(argv[3], nullptr) : 96.0;

    std::printf("building the FPM of this host: GEMM kernel, b = %zu, "
                "%u thread(s), x in [1, %.0f] blocks\n\n",
                block_size, threads, max_blocks);

    core::RealGemmKernelBench bench(block_size, threads);

    core::FpmBuildOptions options;
    options.x_min = 1.0;
    options.x_max = max_blocks;
    options.initial_points = 8;
    options.max_points = 16;
    options.reliability.min_repetitions = 3;
    options.reliability.max_repetitions = 12;
    options.reliability.target_relative_error = 0.08;
    options.reliability.max_total_seconds = 10.0;

    const core::SpeedFunction model = core::build_fpm(bench, options);

    trace::Table table({"x (blocks)", "kernel time (s)", "speed (GFlop/s)"});
    trace::Series series{"host FPM", '*', {}, {}};
    for (const auto& point : model.points()) {
        table.row()
            .cell(point.x, 1)
            .cell(point.x / point.speed, 4)
            .cell(model.gflops(point.x, block_size), 2);
        series.xs.push_back(point.x);
        series.ys.push_back(model.gflops(point.x, block_size));
    }
    table.print();

    std::printf("\n%s\n", trace::render_chart({series},
                                              {.width = 64,
                                               .height = 14,
                                               .x_label = "blocks",
                                               .y_label = "GFlop/s",
                                               .y_min = 0.0,
                                               .auto_y_min = false})
                              .c_str());

    // For comparison: what the constant model (CPM) of this host would be
    // if calibrated at a small size — the approximation whose failure the
    // paper demonstrates.
    const auto cpm = core::build_cpm(bench, 4.0, options.reliability);
    std::printf("CPM calibrated at x=4: %.2f GFlop/s (the FPM spans %.2f to "
                "%.2f GFlop/s)\n",
                core::SpeedFunction::constant(cpm.speed).gflops(1.0, block_size),
                model.gflops(model.points().front().x, block_size),
                model.gflops(model.points().back().x, block_size));
    return 0;
}

// cluster_partition: two-level FPM partitioning across a heterogeneous
// cluster of hybrid nodes.
//
// Builds the device FPMs of every node of a 3-node heterogeneous cluster
// (full hybrid, CPU-only, small), composes node-level aggregate models,
// balances a matrix across nodes and then across each node's devices, and
// prints the resulting two-level distribution with per-node completion
// times.
//
// Usage: ./examples/cluster_partition [n_blocks]   (default 60)
#include <cstdio>
#include <cstdlib>

#include "fpm/app/cluster_app.hpp"
#include "fpm/part/hierarchical.hpp"
#include "fpm/trace/table.hpp"

int main(int argc, char** argv) {
    using namespace fpm;

    const std::int64_t n = argc > 1 ? std::strtol(argv[1], nullptr, 10) : 60;

    sim::HybridCluster cluster(sim::heterogeneous_cluster(), {});
    std::printf("heterogeneous cluster of %zu nodes:\n", cluster.node_count());
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
        const auto& spec = cluster.node(i).spec();
        std::printf("  %-8s %zu socket(s), %zu GPU(s)\n", spec.hostname.c_str(),
                    spec.sockets.size(), spec.gpus.size());
    }

    auto sets = app::cluster_device_sets(cluster);

    core::FpmBuildOptions model_options;
    model_options.x_min = 4.0;
    model_options.x_max = static_cast<double>(n) * static_cast<double>(n) + 64.0;
    model_options.reliability.min_repetitions = 1;
    model_options.reliability.max_repetitions = 1;
    const auto models = app::cluster_device_fpms(cluster, sets, model_options);

    part::AggregateOptions aggregate_options;
    aggregate_options.x_max = model_options.x_max - 32.0;
    const auto partitioned =
        part::partition_hierarchical(models, n * n, aggregate_options);
    const auto result = app::run_simulated_cluster_app(
        cluster, sets, partitioned.device_blocks, n);

    std::printf("\ntwo-level distribution of %lld x %lld blocks:\n\n",
                static_cast<long long>(n), static_cast<long long>(n));
    trace::Table table({"node", "device", "blocks", "share %"});
    const double total = static_cast<double>(n) * static_cast<double>(n);
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
        table.row()
            .cell(cluster.node(i).spec().hostname)
            .cell("(whole node)")
            .cell(partitioned.node_blocks[i])
            .cell(100.0 * static_cast<double>(partitioned.node_blocks[i]) / total,
                  1);
        for (std::size_t d = 0; d < sets[i].devices.size(); ++d) {
            table.row()
                .cell("")
                .cell(sets[i].devices[d].name)
                .cell(partitioned.device_blocks[i][d])
                .cell(100.0 *
                          static_cast<double>(partitioned.device_blocks[i][d]) /
                          total,
                      1);
        }
    }
    table.print();

    std::printf("\nper-iteration node times: ");
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
        std::printf("%s%.3f s", i ? ", " : "", result.node_iter_time[i]);
    }
    std::printf("\npredicted execution: %.1f s total (%.1f s compute, %.1f s "
                "inter-node communication)\n",
                result.total_time, result.compute_time, result.comm_time);
    return 0;
}

// hybrid_matmul: the paper's application end to end with REAL arithmetic.
//
// Builds a miniature hybrid platform in-process — CPU "sockets" running
// the blocked GEMM on worker threads and "GPUs" emulated by the
// out-of-core executor with a limited device-memory arena — partitions a
// matrix multiplication across them with the FPM algorithm, runs the
// column-based blocked multiplication on a process group, and verifies
// the product against a plain GEMM.
//
// Usage: ./examples/hybrid_matmul [n_blocks] [block_size]
//   defaults: n_blocks=12 block_size=24
#include <cstdio>
#include <cstdlib>

#include "fpm/app/matmul_real.hpp"
#include "fpm/blas/gemm.hpp"
#include "fpm/common/rng.hpp"
#include "fpm/core/speed_function.hpp"
#include "fpm/part/column2d.hpp"
#include "fpm/part/fpm_partitioner.hpp"
#include "fpm/part/integer.hpp"

int main(int argc, char** argv) {
    using namespace fpm;

    const std::int64_t n = argc > 1 ? std::strtol(argv[1], nullptr, 10) : 12;
    const std::size_t b = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 24;
    const std::size_t elems = static_cast<std::size_t>(n) * b;

    std::printf("hybrid matmul: C += A*B, %lld x %lld blocks of %zu x %zu "
                "(matrices %zu x %zu)\n\n",
                static_cast<long long>(n), static_cast<long long>(n), b, b,
                elems, elems);

    // The device set: a fast "GPU" (out-of-core, limited arena), a slow
    // "GPU" and two CPU sockets.  Speed functions here are hand-made to
    // keep the example self-contained; examples/model_builder.cpp shows
    // how to measure them instead.
    std::vector<app::RealDevice> devices(4);
    devices[0] = {1, true, 40.0, sim::KernelVersion::kV3};  // big GPU
    devices[1] = {1, true, 24.0, sim::KernelVersion::kV2};  // small GPU
    devices[2] = {2, false, 0.0, {}};                       // socket, 2 threads
    devices[3] = {1, false, 0.0, {}};                       // socket, 1 thread

    const std::vector<core::SpeedFunction> models = {
        core::SpeedFunction({{4.0, 40.0}, {24.0, 60.0}, {60.0, 25.0}}, "gpu0"),
        core::SpeedFunction({{4.0, 20.0}, {12.0, 28.0}, {40.0, 12.0}}, "gpu1"),
        core::SpeedFunction::constant(16.0, "socket0"),
        core::SpeedFunction::constant(8.0, "socket1"),
    };

    // FPM partition + integer rounding + 2-D layout.
    const auto balanced = part::partition_fpm(models, static_cast<double>(n) * n);
    const auto blocks = part::round_partition(balanced.partition, n * n, models);
    const auto layout = part::column_partition(n, blocks.blocks);

    std::printf("%-9s %7s %12s\n", "device", "blocks", "rectangle");
    for (std::size_t i = 0; i < devices.size(); ++i) {
        std::printf("%-9s %7lld %5lld x %lld\n", models[i].name().c_str(),
                    static_cast<long long>(blocks.blocks[i]),
                    static_cast<long long>(layout.rects[i].w),
                    static_cast<long long>(layout.rects[i].h));
    }

    // Random operands; run the real parallel application.
    Rng rng(2012);
    blas::Matrix<float> a(elems, elems);
    blas::Matrix<float> bm(elems, elems);
    for (std::size_t r = 0; r < elems; ++r) {
        for (std::size_t c = 0; c < elems; ++c) {
            a(r, c) = static_cast<float>(rng.uniform(-1.0, 1.0));
            bm(r, c) = static_cast<float>(rng.uniform(-1.0, 1.0));
        }
    }
    blas::Matrix<float> c(elems, elems, 0.0F);
    const auto report =
        app::run_real_matmul(layout, devices, b, a.view(), bm.view(), c.view());

    std::printf("\nparallel run: %.3f s wall\n", report.seconds);
    for (std::size_t i = 0; i < devices.size(); ++i) {
        std::printf("  %-9s busy %.3f s", models[i].name().c_str(),
                    report.device_compute_seconds[i]);
        if (devices[i].is_gpu) {
            std::printf("  (C traffic: %.0f blocks up, %.0f down)",
                        report.gpu_traffic[i].upload_c_blocks,
                        report.gpu_traffic[i].download_c_blocks);
        }
        std::printf("\n");
    }

    // Verify against a plain GEMM.
    blas::Matrix<float> expected(elems, elems, 0.0F);
    blas::gemm<float>(a.view(), bm.view(), expected.view());
    const double err = blas::max_abs_diff<float>(c.view(), expected.view());
    std::printf("\nmax |C - C_ref| = %.2e -> %s\n", err,
                err < 1e-2 ? "CORRECT" : "WRONG");
    return err < 1e-2 ? 0 : 1;
}

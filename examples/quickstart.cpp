// Quickstart: the whole library in ~60 lines.
//
//  1. describe a hybrid platform (here: the paper's 4-socket + 2-GPU node),
//  2. build a functional performance model (FPM) per device by timing the
//     application kernel,
//  3. run the FPM-based data partitioner,
//  4. lay the shares out as a 2-D column partition and inspect the result.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "fpm/app/device_set.hpp"
#include "fpm/part/column2d.hpp"
#include "fpm/part/fpm_partitioner.hpp"
#include "fpm/part/integer.hpp"

int main() {
    using namespace fpm;

    // 1. The simulated hybrid node from the paper (Table I).  On a real
    //    deployment you would instead wrap your own kernels in a
    //    core::KernelBenchmark (see examples/model_builder.cpp).
    sim::HybridNode node(sim::ig_platform(), {});
    const app::DeviceSet devices = app::hybrid_devices(node);
    std::printf("devices:\n");
    for (const auto& device : devices.devices) {
        std::printf("  - %s\n", device.name.c_str());
    }

    // 2. Build one speed function per device: speed(x) = x / t_kernel(x),
    //    measured over a range of problem sizes with adaptive refinement.
    core::FpmBuildOptions options;
    options.x_min = 4.0;
    options.x_max = 4000.0;
    options.reliability.min_repetitions = 1;
    options.reliability.max_repetitions = 1;  // the simulator is noise-free
    const auto models = app::build_device_fpms(node, devices, options);

    // 3. Balance a 60 x 60-block matrix multiplication: find shares x_i
    //    with sum x_i = 3600 and x_i / s_i(x_i) equal for all devices.
    const std::int64_t n = 60;
    const auto balanced = part::partition_fpm(models, static_cast<double>(n) * n);
    const auto blocks =
        part::round_partition(balanced.partition, n * n, models);
    std::printf("\nbalanced execution time per iteration: %.3f s\n",
                balanced.balanced_time);

    // 4. Column-based 2-D layout: near-square rectangles, minimal
    //    communication volume.
    const auto layout = part::column_partition(n, blocks.blocks);
    std::printf("\n%-18s %8s %14s %10s\n", "device", "blocks", "rectangle",
                "share %");
    for (std::size_t i = 0; i < devices.devices.size(); ++i) {
        const auto& rect = layout.rects[i];
        std::printf("%-18s %8lld %6lld x %-6lld %9.1f%%\n",
                    devices.devices[i].name.c_str(),
                    static_cast<long long>(blocks.blocks[i]),
                    static_cast<long long>(rect.w),
                    static_cast<long long>(rect.h),
                    100.0 * static_cast<double>(blocks.blocks[i]) /
                        static_cast<double>(n * n));
    }
    std::printf("\ntotal communication cost (half-perimeter sum): %lld blocks\n",
                static_cast<long long>(layout.comm_cost()));
    return 0;
}

// stencil_balance: the FPM pipeline on a second application family.
//
// Runs a REAL 5-point Jacobi solve partitioned across a set of in-process
// "devices" of different strengths: the row bands are sized with the FPM
// partitioner from measured per-device sweep rates, and the result is
// verified against the serial reference.  Demonstrates that nothing in
// the pipeline is GEMM-specific — the problem-size parameter here is
// grid rows and the kernel is one sweep.
//
// Usage: ./examples/stencil_balance [rows] [cols] [sweeps]
//   defaults: rows=600 cols=512 sweeps=20
#include <cstdio>
#include <cstdlib>

#include "fpm/app/stencil.hpp"
#include "fpm/common/rng.hpp"
#include "fpm/core/fpm_builder.hpp"
#include "fpm/core/stencil_bench.hpp"
#include "fpm/part/fpm_partitioner.hpp"
#include "fpm/part/integer.hpp"
#include "fpm/trace/table.hpp"

int main(int argc, char** argv) {
    using namespace fpm;

    const std::size_t rows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 600;
    const std::size_t cols = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 512;
    const int sweeps = argc > 3 ? std::atoi(argv[3]) : 20;

    std::printf("Jacobi stencil: %zu x %zu grid, %d sweeps\n\n", rows, cols,
                sweeps);

    // Three devices of different strength: 2 threads, 1 thread, 1 thread.
    const std::vector<unsigned> threads = {2, 1, 1};

    // Measure each device's sweep rate with the real kernel and build its
    // FPM (the reliability loop handles the jitter of a live machine).
    core::FpmBuildOptions options;
    options.x_min = 8.0;
    options.x_max = static_cast<double>(rows);
    options.initial_points = 5;
    options.max_points = 8;
    options.reliability.min_repetitions = 3;
    options.reliability.max_repetitions = 8;
    options.reliability.target_relative_error = 0.15;
    options.reliability.max_total_seconds = 5.0;

    std::vector<core::SpeedFunction> models;
    for (std::size_t i = 0; i < threads.size(); ++i) {
        core::RealStencilBench bench(cols, threads[i]);
        models.push_back(core::build_fpm(bench, options));
    }

    // Partition the interior rows.
    const auto interior = static_cast<std::int64_t>(rows) - 2;
    const auto continuous =
        part::partition_fpm(models, static_cast<double>(interior));
    const auto bands = part::round_partition(continuous.partition, interior,
                                             models);

    trace::Table table({"device", "threads", "rows", "share %"});
    for (std::size_t i = 0; i < threads.size(); ++i) {
        table.row()
            .cell(models[i].name())
            .cell(static_cast<std::int64_t>(threads[i]))
            .cell(bands.blocks[i])
            .cell(100.0 * static_cast<double>(bands.blocks[i]) /
                      static_cast<double>(interior),
                  1);
    }
    table.print();

    // Run for real and verify.
    Rng rng(7);
    blas::Matrix<float> grid(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            grid(r, c) = static_cast<float>(rng.uniform(0.0, 1.0));
        }
    }
    blas::Matrix<float> reference = grid;

    const auto report =
        app::run_real_stencil(bands.blocks, threads, grid, sweeps);
    app::stencil_reference(reference, sweeps);
    const double err =
        blas::max_abs_diff<float>(grid.view(), reference.view());

    std::printf("\nparallel solve: %.3f s wall; per-device busy:", report.seconds);
    for (const double busy : report.device_seconds) {
        std::printf(" %.3f s", busy);
    }
    std::printf("\nmax |grid - reference| = %.2e -> %s\n", err,
                err < 1e-5 ? "CORRECT" : "WRONG");
    return err < 1e-5 ? 0 : 1;
}

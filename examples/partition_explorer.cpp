// partition_explorer: interactive-ish exploration of how the three
// partitioning algorithms distribute work on the simulated hybrid node as
// the problem grows across the GPU memory cliff.
//
// For each matrix size it prints the per-device shares of the
// homogeneous, CPM-based and FPM-based algorithms side by side, with the
// predicted makespan of each, and draws the FPM 2-D layout as ASCII art.
//
// Usage: ./examples/partition_explorer [n1 n2 ...]   (default: 30 50 70)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "fpm/app/device_set.hpp"
#include "fpm/part/column2d.hpp"
#include "fpm/part/fpm_partitioner.hpp"
#include "fpm/part/integer.hpp"
#include "fpm/trace/table.hpp"

namespace {

void draw_layout(const fpm::part::ColumnLayout& layout,
                 const fpm::app::DeviceSet& set) {
    // Scale the n x n block grid to a character canvas.
    const std::size_t canvas_w = 64;
    const std::size_t canvas_h = 24;
    std::vector<std::string> canvas(canvas_h, std::string(canvas_w, ' '));
    const char* glyphs = "12345678";
    for (std::size_t i = 0; i < layout.rects.size(); ++i) {
        const auto& rect = layout.rects[i];
        if (rect.area() == 0) {
            continue;
        }
        const auto scale_col = [&](std::int64_t c) {
            return static_cast<std::size_t>(c * static_cast<std::int64_t>(canvas_w) /
                                            layout.n);
        };
        const auto scale_row = [&](std::int64_t r) {
            return static_cast<std::size_t>(r * static_cast<std::int64_t>(canvas_h) /
                                            layout.n);
        };
        for (std::size_t row = scale_row(rect.row0);
             row < std::max(scale_row(rect.row0 + rect.h), scale_row(rect.row0) + 1);
             ++row) {
            for (std::size_t col = scale_col(rect.col0);
                 col < std::max(scale_col(rect.col0 + rect.w), scale_col(rect.col0) + 1);
                 ++col) {
                if (row < canvas_h && col < canvas_w) {
                    canvas[row][col] = glyphs[i % 8];
                }
            }
        }
    }
    std::printf("  +%s+\n", std::string(canvas_w, '-').c_str());
    for (const auto& row : canvas) {
        std::printf("  |%s|\n", row.c_str());
    }
    std::printf("  +%s+\n  legend:", std::string(canvas_w, '-').c_str());
    for (std::size_t i = 0; i < set.devices.size(); ++i) {
        std::printf("  %c=%s", glyphs[i % 8], set.devices[i].name.c_str());
    }
    std::printf("\n");
}

} // namespace

int main(int argc, char** argv) {
    using namespace fpm;

    std::vector<std::int64_t> sizes;
    for (int i = 1; i < argc; ++i) {
        sizes.push_back(std::strtol(argv[i], nullptr, 10));
    }
    if (sizes.empty()) {
        sizes = {30, 50, 70};
    }

    sim::HybridNode node(sim::ig_platform(), {});
    const app::DeviceSet set = app::hybrid_devices(node);

    core::FpmBuildOptions options;
    options.x_min = 4.0;
    options.x_max = 5200.0;
    options.reliability.min_repetitions = 1;
    options.reliability.max_repetitions = 1;
    const auto fpms = app::build_device_fpms(node, set, options);

    for (const std::int64_t n : sizes) {
        const double total = static_cast<double>(n) * static_cast<double>(n);
        std::printf("\n=== matrix %lld x %lld blocks (%.0f total) ===\n\n",
                    static_cast<long long>(n), static_cast<long long>(n), total);

        const auto even = part::partition_homogeneous(set.devices.size(), total);
        const auto cpm_speeds = app::build_device_cpms(node, set, total);
        const auto cpm = part::partition_cpm(cpm_speeds, total);
        const auto fpm = part::partition_fpm(fpms, total);
        const auto fpm_blocks = part::round_partition(fpm.partition,
                                                      n * n, fpms);

        trace::Table table({"device", "homogeneous", "CPM", "FPM",
                            "FPM time (s)"});
        for (std::size_t i = 0; i < set.devices.size(); ++i) {
            table.row()
                .cell(set.devices[i].name)
                .cell(even.share[i], 0)
                .cell(cpm.share[i], 0)
                .cell(static_cast<std::int64_t>(fpm_blocks.blocks[i]))
                .cell(fpms[i].time(static_cast<double>(fpm_blocks.blocks[i])), 2);
        }
        table.print();
        std::printf("\npredicted makespans: homogeneous %.2f s, CPM %.2f s, "
                    "FPM %.2f s (per kernel sweep)\n",
                    part::makespan(fpms, even.share),
                    part::makespan(fpms, cpm.share),
                    part::makespan(fpms,
                                   std::span<const std::int64_t>(
                                       fpm_blocks.blocks)));

        std::printf("\nFPM column layout:\n");
        draw_layout(part::column_partition(n, fpm_blocks.blocks), set);
    }
    return 0;
}

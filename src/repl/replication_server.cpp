#include "fpm/repl/replication_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

#include "fpm/common/error.hpp"
#include "fpm/fault/fault.hpp"
#include "fpm/obs/metrics.hpp"
#include "fpm/store/wal.hpp"

namespace fpm::repl {

namespace {

/// Process-global replication-server counters.
struct ServerMetrics {
    obs::Counter& frames_sent;
    obs::Counter& snapshots_sent;
    obs::Counter& heartbeats_sent;
    obs::Gauge& sessions;

    static const ServerMetrics& get() {
        static auto& registry = obs::MetricsRegistry::global();
        static const ServerMetrics metrics{
            registry.counter("repl.frames_sent"),
            registry.counter("repl.snapshots_sent"),
            registry.counter("repl.heartbeats_sent"),
            registry.gauge("repl.sessions")};
        return metrics;
    }
};

timeval to_timeval(double seconds) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec =
        static_cast<suseconds_t>((seconds - std::floor(seconds)) * 1e6);
    return tv;
}

/// Thrown (privately) when the follower socket fails: the session ends.
struct SessionTorn {};

void send_all(int fd, const char* data, std::size_t size) {
    std::size_t sent = 0;
    while (sent < size) {
        const ssize_t n =
            ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR) {
            continue;
        }
        if (n <= 0) {
            throw SessionTorn{};
        }
        sent += static_cast<std::size_t>(n);
    }
}

void send_all(int fd, const std::string& data) {
    send_all(fd, data.data(), data.size());
}

/// Reads one '\n'-terminated line (CR stripped); empty read = torn.
std::string read_line(int fd) {
    std::string line;
    char byte;
    for (;;) {
        const ssize_t n = ::recv(fd, &byte, 1, 0);
        if (n < 0 && errno == EINTR) {
            continue;
        }
        if (n <= 0) {
            throw SessionTorn{};
        }
        if (byte == '\n') {
            if (!line.empty() && line.back() == '\r') {
                line.pop_back();
            }
            return line;
        }
        line.push_back(byte);
        if (line.size() > 4096) {
            throw SessionTorn{};  // no REPL line is remotely this long
        }
    }
}

} // namespace

ReplicationServer::ReplicationServer(ReplicationLog& log,
                                     ReplServerConfig config)
    : log_(log), config_(std::move(config)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    FPM_CHECK(listen_fd_ >= 0,
              std::string("socket(): ") + std::strerror(errno));
    try {
        const int one = 1;
        ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(config_.port);
        FPM_CHECK(::inet_pton(AF_INET, config_.bind_address.c_str(),
                              &addr.sin_addr) == 1,
                  "invalid bind address: " + config_.bind_address);
        FPM_CHECK(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                         sizeof addr) == 0,
                  "bind(" + config_.bind_address + ":" +
                      std::to_string(config_.port) +
                      "): " + std::strerror(errno));
        FPM_CHECK(::listen(listen_fd_, config_.backlog) == 0,
                  std::string("listen(): ") + std::strerror(errno));

        sockaddr_in bound{};
        socklen_t len = sizeof bound;
        FPM_CHECK(::getsockname(listen_fd_,
                                reinterpret_cast<sockaddr*>(&bound),
                                &len) == 0,
                  std::string("getsockname(): ") + std::strerror(errno));
        port_ = ntohs(bound.sin_port);
    } catch (...) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw;
    }
    acceptor_ = std::thread([this] { accept_loop(); });
}

ReplicationServer::~ReplicationServer() { stop(); }

std::size_t ReplicationServer::sessions() const {
    std::lock_guard lock(sessions_mutex_);
    std::size_t live = 0;
    for (const auto& session : sessions_) {
        if (!session->done.load(std::memory_order_acquire)) {
            ++live;
        }
    }
    return live;
}

void ReplicationServer::stop() {
    if (stopped_.exchange(true)) {
        return;
    }
    if (listen_fd_ >= 0) {
        ::shutdown(listen_fd_, SHUT_RDWR);
    }
    if (acceptor_.joinable()) {
        acceptor_.join();
    }
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    std::vector<std::unique_ptr<Session>> sessions;
    {
        std::lock_guard lock(sessions_mutex_);
        sessions.swap(sessions_);
    }
    for (auto& session : sessions) {
        // The session thread never closes the fd itself (a concurrent
        // close would race fd reuse); shutdown() wakes it, join() makes
        // the close safe.
        const int fd = session->fd.load(std::memory_order_acquire);
        if (fd >= 0) {
            ::shutdown(fd, SHUT_RDWR);
        }
        if (session->thread.joinable()) {
            session->thread.join();
        }
        if (fd >= 0) {
            ::close(fd);
        }
    }
}

void ReplicationServer::reap_finished_locked() {
    for (auto it = sessions_.begin(); it != sessions_.end();) {
        if ((*it)->done.load(std::memory_order_acquire)) {
            if ((*it)->thread.joinable()) {
                (*it)->thread.join();
            }
            const int fd = (*it)->fd.load(std::memory_order_acquire);
            if (fd >= 0) {
                ::close(fd);
            }
            it = sessions_.erase(it);
        } else {
            ++it;
        }
    }
}

void ReplicationServer::accept_loop() {
    while (!stopped_.load(std::memory_order_relaxed)) {
        pollfd pfd{};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, 200);
        if (ready < 0 && errno == EINTR) {
            continue;
        }
        if (stopped_.load(std::memory_order_relaxed)) {
            return;
        }
        if (ready <= 0) {
            continue;
        }
        const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd < 0) {
            continue;  // racing stop(), or a transient accept failure
        }

        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        if (config_.io_timeout > 0.0) {
            const timeval tv = to_timeval(config_.io_timeout);
            ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
            ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
        }

        std::lock_guard lock(sessions_mutex_);
        reap_finished_locked();
        auto session = std::make_unique<Session>();
        Session& ref = *session;
        ref.fd.store(fd, std::memory_order_release);
        sessions_.push_back(std::move(session));
        ref.thread = std::thread([this, &ref] { run_session(ref); });
    }
}

void ReplicationServer::run_session(Session& session) {
    const int fd = session.fd.load(std::memory_order_acquire);
    ServerMetrics::get().sessions.add(1);
    try {
        // -- handshake ------------------------------------------------
        const std::string hello = read_line(fd);
        static auto& handshake_fault = fault::point("repl.handshake");
        if (handshake_fault.fire()) {
            throw SessionTorn{};  // primary "crashes" before answering
        }
        static const std::string kHello = "REPL HELLO ";
        if (hello.rfind(kHello, 0) != 0) {
            send_all(fd, "ERR internal malformed REPL handshake\n");
            throw SessionTorn{};
        }
        ReplPosition pos;
        try {
            pos = ReplPosition::parse(hello.substr(kHello.size()));
        } catch (const Error&) {
            send_all(fd, "ERR internal malformed REPL position\n");
            throw SessionTorn{};
        }

        store::ModelStore& store = log_.store();
        if (!log_.position_available(pos)) {
            // Fresh follower (0:0) or one standing in a GC'd segment:
            // ship the full compacted state, then stream from the
            // position the snapshot was taken at.
            const store::ReplSnapshot snap = store.replication_snapshot();
            pos = ReplPosition{snap.segment, snap.offset};
            std::string header = "OK REPL SNAP sets=";
            header += std::to_string(snap.payloads.size());
            header += " next=";
            header += std::to_string(snap.next_generation);
            header += " pos=";
            header += pos.to_string();
            header += '\n';
            send_all(fd, header);
            for (const std::string& payload : snap.payloads) {
                const std::string frame = store::encode_frame(payload);
                send_all(fd, "REPL SNAP bytes=" +
                                 std::to_string(frame.size()) + "\n");
                send_all(fd, frame);
            }
            snapshots_sent_.fetch_add(1, std::memory_order_relaxed);
            ServerMetrics::get().snapshots_sent.add(1);
        } else {
            send_all(fd, "OK REPL STREAM pos=" + pos.to_string() + "\n");
        }

        // -- push stream ----------------------------------------------
        static auto& send_fault = fault::point("repl.send");
        std::string payload;
        while (!stopped_.load(std::memory_order_relaxed)) {
            switch (log_.next(pos, payload, config_.heartbeat_interval)) {
            case ReplicationLog::Next::kFrame: {
                if (send_fault.fire()) {
                    throw SessionTorn{};  // "crash" mid-ship
                }
                const std::string frame = store::encode_frame(payload);
                send_all(fd, "REPL FRAME bytes=" +
                                 std::to_string(frame.size()) +
                                 " pos=" + pos.to_string() + "\n");
                send_all(fd, frame);
                frames_sent_.fetch_add(1, std::memory_order_relaxed);
                ServerMetrics::get().frames_sent.add(1);
                break;
            }
            case ReplicationLog::Next::kTimeout:
                send_all(fd, "REPL PING committed=" +
                                 std::to_string(
                                     store.committed_generation()) +
                                 " pos=" + pos.to_string() + "\n");
                ServerMetrics::get().heartbeats_sent.add(1);
                break;
            case ReplicationLog::Next::kGap:
                // The position fell behind a GC: sever so the follower
                // reconnects and handshakes into the snapshot path.
                throw SessionTorn{};
            case ReplicationLog::Next::kStopped:
                throw SessionTorn{};
            }
        }
    } catch (const SessionTorn&) {
        // expected session end
    } catch (...) {
        // any other failure also just ends the session
    }
    // shutdown() tells the peer now (it must not wait out a recv
    // timeout to notice); the fd itself stays open until reap/stop
    // joins this thread and closes it, so no close races fd reuse.
    ::shutdown(fd, SHUT_RDWR);
    ServerMetrics::get().sessions.add(-1);
    session.done.store(true, std::memory_order_release);
}

} // namespace fpm::repl

#include "fpm/repl/replication_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "fpm/common/error.hpp"
#include "fpm/store/wal.hpp"

namespace fpm::repl {

namespace fs = std::filesystem;

namespace {

constexpr std::size_t kFrameHeaderBytes = 8;

std::uint32_t load_u32le(const unsigned char* p) noexcept {
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

enum class ReadFrame {
    kOk,    ///< one intact frame read
    kEnd,   ///< offset is exactly the limit: clean end of data
    kTorn,  ///< short header/payload or CRC mismatch before the limit
};

/// Reads the frame at `offset` of `path`, never looking past `limit`
/// (the committed byte count for the active segment, the file size for
/// a sealed one).  Throws fpm::Error on real I/O failure only.
ReadFrame read_frame_at(const std::string& path, std::uint64_t offset,
                        std::uint64_t limit, std::string& payload,
                        std::uint64_t& consumed) {
    if (offset >= limit) {
        return ReadFrame::kEnd;
    }
    if (offset + kFrameHeaderBytes > limit) {
        return ReadFrame::kTorn;
    }

    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    FPM_CHECK(fd >= 0,
              "open(" + path + "): " + std::strerror(errno));
    struct FdCloser {
        int fd;
        ~FdCloser() { ::close(fd); }
    } closer{fd};

    const auto read_exact = [&](std::uint64_t at, void* dst,
                                std::size_t count) -> bool {
        std::size_t done = 0;
        while (done < count) {
            const ssize_t n =
                ::pread(fd, static_cast<char*>(dst) + done, count - done,
                        static_cast<off_t>(at + done));
            if (n < 0 && errno == EINTR) {
                continue;
            }
            FPM_CHECK(n >= 0,
                      "pread(" + path + "): " + std::strerror(errno));
            if (n == 0) {
                return false;  // file shorter than the limit claims
            }
            done += static_cast<std::size_t>(n);
        }
        return true;
    };

    unsigned char header[kFrameHeaderBytes];
    if (!read_exact(offset, header, sizeof header)) {
        return ReadFrame::kTorn;
    }
    const std::uint32_t length = load_u32le(header);
    const std::uint32_t expected_crc = load_u32le(header + 4);
    const std::uint64_t frame_size = kFrameHeaderBytes + length;
    if (offset + frame_size > limit) {
        return ReadFrame::kTorn;
    }
    payload.resize(length);
    if (length > 0 &&
        !read_exact(offset + kFrameHeaderBytes, payload.data(), length)) {
        return ReadFrame::kTorn;
    }
    if (store::crc32(payload.data(), payload.size()) != expected_crc) {
        return ReadFrame::kTorn;
    }
    consumed = frame_size;
    return ReadFrame::kOk;
}

} // namespace

ReplPosition ReplPosition::parse(const std::string& text) {
    const std::size_t colon = text.find(':');
    FPM_CHECK(colon != std::string::npos && colon > 0 &&
                  colon + 1 < text.size(),
              "malformed replication position: " + text);
    const auto parse_u64 = [&](const std::string& part) {
        errno = 0;
        char* end = nullptr;
        const unsigned long long value =
            std::strtoull(part.c_str(), &end, 10);
        FPM_CHECK(end != part.c_str() && *end == '\0' && errno == 0,
                  "malformed replication position: " + text);
        return static_cast<std::uint64_t>(value);
    };
    ReplPosition pos;
    pos.segment = parse_u64(text.substr(0, colon));
    pos.offset = parse_u64(text.substr(colon + 1));
    return pos;
}

ReplicationLog::ReplicationLog(store::ModelStore& store) : store_(store) {
    store_.set_commit_hook([this] {
        std::lock_guard lock(mutex_);
        ++version_;
        cv_.notify_all();
    });
}

ReplicationLog::~ReplicationLog() {
    stop();
    store_.set_commit_hook(nullptr);
}

void ReplicationLog::stop() {
    std::lock_guard lock(mutex_);
    stopped_ = true;
    cv_.notify_all();
}

bool ReplicationLog::position_available(const ReplPosition& pos) const {
    const auto [active, committed] = store_.wal_position();
    if (pos.segment > active || pos.segment == 0) {
        return false;
    }
    if (pos.segment == active) {
        return pos.offset <= committed;
    }
    std::error_code ec;
    const std::string path = store_.segment_path(pos.segment);
    if (fs::exists(path, ec)) {
        const std::uint64_t size = fs::file_size(path, ec);
        return !ec && pos.offset <= size;
    }
    const auto [seal_segment, seal_offset] = store_.last_seal();
    return pos.segment == seal_segment && pos.offset == seal_offset;
}

ReplicationLog::Next ReplicationLog::next(ReplPosition& pos,
                                          std::string& payload,
                                          double timeout_seconds) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_seconds));

    for (;;) {
        // The version is sampled *before* the commit point: a publish
        // landing between the sample and a later wait bumps it, so the
        // wait predicate is already true — no lost wakeup.
        std::uint64_t seen;
        {
            std::lock_guard lock(mutex_);
            if (stopped_) {
                return Next::kStopped;
            }
            seen = version_;
        }

        const auto [active, committed] = store_.wal_position();
        if (pos.segment > active || pos.segment == 0) {
            return Next::kGap;
        }

        if (pos.segment == active) {
            if (pos.offset > committed) {
                return Next::kGap;
            }
            if (pos.offset < committed) {
                std::uint64_t consumed = 0;
                const ReadFrame result =
                    read_frame_at(store_.segment_path(pos.segment),
                                  pos.offset, committed, payload, consumed);
                if (result != ReadFrame::kOk) {
                    // Corruption inside the committed prefix, or the
                    // segment rotated from under us mid-read: resync.
                    return Next::kGap;
                }
                pos.offset += consumed;
                return Next::kFrame;
            }
            // Caught up to the commit point: wait for the next publish.
            std::unique_lock lock(mutex_);
            const bool woke = cv_.wait_until(lock, deadline, [&] {
                return stopped_ || version_ != seen;
            });
            if (stopped_) {
                return Next::kStopped;
            }
            if (!woke) {
                return Next::kTimeout;
            }
            continue;
        }

        // Sealed (pos.segment < active) segment.
        const std::string path = store_.segment_path(pos.segment);
        std::error_code ec;
        if (!fs::exists(path, ec)) {
            // GC'd.  Only the exact seal point of the most recent
            // rotation resumes seamlessly — the snapshot that triggered
            // the rotation covers precisely what such a follower has
            // already applied.
            const auto [seal_segment, seal_offset] = store_.last_seal();
            if (pos.segment == seal_segment && pos.offset == seal_offset) {
                pos = ReplPosition{pos.segment + 1, 0};
                continue;
            }
            return Next::kGap;
        }
        const std::uint64_t size = fs::file_size(path, ec);
        if (ec) {
            return Next::kGap;  // vanished between exists() and here
        }
        std::uint64_t consumed = 0;
        switch (read_frame_at(path, pos.offset, size, payload, consumed)) {
        case ReadFrame::kOk:
            pos.offset += consumed;
            return Next::kFrame;
        case ReadFrame::kEnd:
        case ReadFrame::kTorn: {
            // End of a sealed segment (a torn tail there is dead bytes
            // recovery would truncate): advance to the next segment
            // that still exists.
            ReplPosition advanced = pos;
            for (std::uint64_t id = pos.segment + 1; id <= active; ++id) {
                if (id == active || fs::exists(store_.segment_path(id), ec)) {
                    advanced = ReplPosition{id, 0};
                    break;
                }
            }
            if (advanced == pos) {
                return Next::kGap;
            }
            pos = advanced;
            continue;
        }
        }
    }
}

} // namespace fpm::repl

/// \file replicator.hpp
/// \brief Replica-side replication client: connect, catch up, tail.
///
/// The Replicator owns one background thread that keeps a replica's
/// registry converged with its primary: it connects to the primary's
/// replication port, sends `REPL HELLO <pos>` with the last position
/// the stream handed it (0:0 on a fresh start — positions are primary
/// WAL coordinates and are not persisted locally), applies whatever the
/// primary answers (a full snapshot transfer or a resumed stream) and
/// then tails FRAME/PING records until stopped or disconnected.
///
/// Applying a record goes through the same machinery a primary publish
/// does, so everything downstream behaves identically on both roles:
///
///  * when the record's generation is exactly the registry's next one
///    (the steady-state streaming case — frames arrive in generation
///    order), ModelRegistry::put() installs it, reproducing the
///    primary's generation bit-for-bit and firing the local store's
///    write-ahead observer, so the replica's own WAL logs the record;
///  * otherwise (snapshot records carry non-contiguous generations;
///    overlap after a reconnect) ModelRegistry::restore() installs the
///    explicit generation and the record is appended to the local store
///    directly;
///  * either way the engine's plan cache is invalidated under the old
///    fingerprint, exactly as ModelPublisher does on the primary —
///    cached plans for the superseded generation can never be served;
///  * records at or below the last applied generation are dropped
///    (reconnect overlap is idempotent).
///
/// After every applied record the installed generation and fingerprint
/// are checked against the ones the primary recorded; a mismatch (or an
/// armed `repl.apply` fault) severs the connection, and the bounded
/// exponential backoff (ServeConfig::backoff_base/backoff_max — the
/// same knobs the serve client retries with) paces the reconnect.  The
/// connection attempt itself uses ServeConfig::connect_timeout and
/// recv_timeout; a primary that stays silent past recv_timeout (it
/// heartbeats every heartbeat_interval when idle) counts as dead.
///
/// Observability: the serve layer's ReplStatus letterbox (role, source,
/// lag, applied generation — surfaced in STATS/HEALTH) plus repl.*
/// counters/gauges/histograms (docs/operations.md).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "fpm/repl/replication_log.hpp"
#include "fpm/serve/client.hpp"
#include "fpm/serve/request_engine.hpp"
#include "fpm/store/model_store.hpp"

namespace fpm::repl {

/// Replica-side knobs.
struct ReplicatorConfig {
    serve::Endpoint source;      ///< the primary's replication endpoint
    /// Transport + backoff knobs: connect_timeout, recv_timeout,
    /// backoff_base, backoff_max are consumed; the rest is ignored.
    serve::ServeConfig transport;
};

/// See file comment.
class Replicator {
public:
    /// `engine` is the replica's serving engine (its registry receives
    /// the replicated sets); `local_store` may be null (no replica-side
    /// durability) and, when set, must already be attach()ed to the
    /// engine's registry so the put() path logs through the observer.
    /// Both must outlive the replicator.  start() begins replication.
    Replicator(serve::RequestEngine& engine, store::ModelStore* local_store,
               ReplicatorConfig config);

    /// stop()s.
    ~Replicator();

    Replicator(const Replicator&) = delete;
    Replicator& operator=(const Replicator&) = delete;

    /// Spawns the replication thread (idempotent).
    void start();

    /// Severs the connection, stops reconnecting and joins the thread.
    /// Idempotent.
    void stop();

    /// Highest generation applied locally.
    [[nodiscard]] std::uint64_t applied_generation() const noexcept {
        return applied_generation_.load(std::memory_order_relaxed);
    }
    /// FRAME records applied (snapshot records included).
    [[nodiscard]] std::uint64_t frames_applied() const noexcept {
        return frames_applied_.load(std::memory_order_relaxed);
    }
    /// Reconnect attempts after a connect/stream/apply failure.
    [[nodiscard]] std::uint64_t reconnects() const noexcept {
        return reconnects_.load(std::memory_order_relaxed);
    }
    /// Full snapshot transfers received.
    [[nodiscard]] std::uint64_t snapshots_received() const noexcept {
        return snapshots_received_.load(std::memory_order_relaxed);
    }
    /// True while a stream is established (handshake done, not torn).
    [[nodiscard]] bool connected() const noexcept {
        return connected_.load(std::memory_order_relaxed);
    }

private:
    class Conn;

    void run();
    void run_once();
    void apply_frame(const std::string& frame, const std::string& origin);
    void apply_record(const store::PublishRecord& record);
    void backoff(int consecutive_failures);

    serve::RequestEngine& engine_;
    store::ModelStore* local_store_;
    const ReplicatorConfig config_;

    std::thread thread_;
    std::atomic<bool> stop_{false};
    std::atomic<int> fd_{-1};  ///< live socket, for stop() to sever
    std::mutex stop_mutex_;
    std::condition_variable stop_cv_;

    ReplPosition position_;  ///< replication-thread only
    std::atomic<std::uint64_t> applied_generation_{0};
    std::atomic<std::uint64_t> frames_applied_{0};
    std::atomic<std::uint64_t> reconnects_{0};
    std::atomic<std::uint64_t> snapshots_received_{0};
    std::atomic<bool> connected_{false};
    bool started_ = false;
};

} // namespace fpm::repl

/// \file replication_server.hpp
/// \brief Primary-side replication listener: WAL shipping over TCP.
///
/// Speaks the v6 REPL verbs (docs/protocol.md) on a dedicated port:
///
///     replica:  REPL HELLO <seg>:<off>\n
///     primary:  OK REPL STREAM pos=<seg>:<off>\n            -- resume
///           or  OK REPL SNAP sets=<k> next=<g> pos=<s>:<o>\n -- fallback
///               k × (REPL SNAP bytes=<m>\n + m frame bytes)
///     then an unbounded push stream of
///               REPL FRAME bytes=<m> pos=<s>:<o>\n + m frame bytes
///     interleaved, when idle, with
///               REPL PING committed=<gen> pos=<s>:<o>\n
///
/// Frame bytes are store WAL frames (length+CRC32 header + publish
/// record payload), so the replica validates the stream with the same
/// code recovery uses.  `pos=` on a FRAME is the position *after* the
/// frame — exactly what the replica sends back in its next HELLO.
///
/// Threading: a dedicated acceptor thread plus one thread per follower
/// session, deliberately *not* the serve reactor pool.  The reactor is
/// shaped for request-reply (read a line, write a line, return to
/// epoll); a replication session is a long-lived half-duplex push
/// stream that blocks in ReplicationLog::next() waiting for commits —
/// parking that wait inside an epoll loop would either busy-poll or
/// require cross-thread wakeup plumbing for, realistically, a handful
/// of replicas.  Thread-per-follower keeps the hot serve path and the
/// replication path fully independent.
///
/// Fault points: `repl.handshake` (drop the connection instead of
/// answering HELLO) and `repl.send` (drop it instead of shipping a
/// frame) — both simulate a primary crash mid-protocol; the replica's
/// reconnect + position resume must make either invisible.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fpm/repl/replication_log.hpp"

namespace fpm::repl {

/// Transport knobs of the replication listener.
struct ReplServerConfig {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;          ///< 0 = ephemeral
    int backlog = 16;
    /// Idle heartbeat cadence: a PING goes out whenever no frame was
    /// committed for this long (also bounds stop() latency).
    double heartbeat_interval = 1.0;
    /// Per-send/recv socket deadline (SO_RCVTIMEO/SO_SNDTIMEO).
    double io_timeout = 5.0;
};

/// See file comment.
class ReplicationServer {
public:
    /// Binds and starts the acceptor immediately; throws fpm::Error
    /// when the listener cannot be set up.  `log` must outlive the
    /// server.
    ReplicationServer(ReplicationLog& log, ReplServerConfig config);

    /// stop()s.
    ~ReplicationServer();

    ReplicationServer(const ReplicationServer&) = delete;
    ReplicationServer& operator=(const ReplicationServer&) = delete;

    /// Stops accepting, severs every follower session and joins all
    /// threads.  Idempotent.
    void stop();

    /// The bound port (resolved when config.port was 0).
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    /// Follower sessions currently connected.
    [[nodiscard]] std::size_t sessions() const;

    /// Lifetime counters.
    [[nodiscard]] std::uint64_t frames_sent() const noexcept {
        return frames_sent_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t snapshots_sent() const noexcept {
        return snapshots_sent_.load(std::memory_order_relaxed);
    }

private:
    struct Session {
        std::atomic<int> fd{-1};
        std::atomic<bool> done{false};
        std::thread thread;
    };

    void accept_loop();
    void run_session(Session& session);
    void reap_finished_locked();

    ReplicationLog& log_;
    const ReplServerConfig config_;

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stopped_{false};
    std::thread acceptor_;

    mutable std::mutex sessions_mutex_;
    std::vector<std::unique_ptr<Session>> sessions_;

    std::atomic<std::uint64_t> frames_sent_{0};
    std::atomic<std::uint64_t> snapshots_sent_{0};
};

} // namespace fpm::repl

/// \file replication_log.hpp
/// \brief Primary-side iterator over the durable store's committed WAL.
///
/// Replication in fpm::repl is WAL shipping: the primary's write-ahead
/// log (fpm::store) is already a total order of every committed publish
/// — an operator LOAD or an adapt republish — framed with the
/// length+CRC32 format recovery validates.  The ReplicationLog turns
/// that on-disk order into a stream: given a *position* (segment id,
/// byte offset), next() returns the committed frame at that position,
/// advancing the position past it, and blocks (bounded by a timeout)
/// when the follower has caught up to the commit point, waking on the
/// store's commit hook the moment the next publish lands.
///
/// Positions are primary WAL coordinates — a replica remembers the
/// position the stream last handed it and resumes there after a
/// disconnect.  Three boundary cases make resumption exact:
///
///  * **segment boundary, segment still on disk** — a sealed (rotated
///    but not yet GC'd) segment is read to its end, then the position
///    advances to the next existing segment at offset 0;
///  * **segment boundary, segment GC'd** — a follower standing exactly
///    at the seal point of the most recently rotated segment
///    (ModelStore::last_seal()) has missed nothing: the snapshot that
///    triggered the rotation covers precisely what the follower already
///    applied, so the position silently advances to the next segment;
///  * **anywhere else in a GC'd segment** — frames are gone for good:
///    next() reports kGap and the server falls back to a full snapshot
///    transfer (ModelStore::replication_snapshot()).
///
/// Locking: next() never holds the log mutex while calling into the
/// store (the store's commit hook — which takes the log mutex — runs
/// after the store mutex is released, so the only ordering either
/// thread ever sees is store-then-log).  Multiple sessions may call
/// next() concurrently with independent positions; the log itself is
/// stateless apart from the wakeup machinery.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

#include "fpm/store/model_store.hpp"

namespace fpm::repl {

/// A primary WAL coordinate: frame boundaries only.
struct ReplPosition {
    std::uint64_t segment = 0;
    std::uint64_t offset = 0;

    [[nodiscard]] std::string to_string() const {
        return std::to_string(segment) + ":" + std::to_string(offset);
    }
    /// Parses "seg:off"; throws fpm::Error on malformed input.
    [[nodiscard]] static ReplPosition parse(const std::string& text);

    friend bool operator==(const ReplPosition& a,
                           const ReplPosition& b) noexcept {
        return a.segment == b.segment && a.offset == b.offset;
    }
};

/// See file comment.
class ReplicationLog {
public:
    enum class Next {
        kFrame,    ///< one committed frame returned, position advanced
        kTimeout,  ///< caught up; nothing committed within the timeout
        kGap,      ///< position unrecoverable: snapshot fallback required
        kStopped,  ///< stop() was called
    };

    /// Installs itself as the store's commit hook.  The store must
    /// outlive the log; destruction clears the hook.
    explicit ReplicationLog(store::ModelStore& store);
    ~ReplicationLog();

    ReplicationLog(const ReplicationLog&) = delete;
    ReplicationLog& operator=(const ReplicationLog&) = delete;

    /// Returns the committed frame payload at `pos`, advancing `pos`
    /// past it (and across segment boundaries, see file comment).
    /// Blocks up to `timeout_seconds` when caught up.  On kGap/kTimeout/
    /// kStopped, `pos` and `payload` are unchanged except that a
    /// seal-point or sealed-segment-end position may have silently
    /// advanced to the next segment.
    Next next(ReplPosition& pos, std::string& payload,
              double timeout_seconds);

    /// Non-consuming handshake probe: can a stream resume from `pos`
    /// without a snapshot transfer?  (True for the commit point itself,
    /// any committed offset of an existing segment, and the last seal
    /// point.)
    [[nodiscard]] bool position_available(const ReplPosition& pos) const;

    /// Wakes every blocked next() with kStopped; further calls return
    /// kStopped immediately.
    void stop();

    [[nodiscard]] store::ModelStore& store() noexcept { return store_; }

private:
    store::ModelStore& store_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::uint64_t version_ = 0;  ///< bumped by the store's commit hook
    bool stopped_ = false;
};

} // namespace fpm::repl

#include "fpm/repl/replicator.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

#include "fpm/common/error.hpp"
#include "fpm/fault/fault.hpp"
#include "fpm/obs/metrics.hpp"
#include "fpm/serve/repl_status.hpp"
#include "fpm/store/wal.hpp"

namespace fpm::repl {

namespace {

/// Process-global replica-side instruments.
struct ReplicaMetrics {
    obs::Counter& frames_applied;
    obs::Counter& snapshots_received;
    obs::Counter& reconnects;
    obs::Counter& heartbeats;
    obs::Gauge& lag_frames;
    obs::Histogram& apply_seconds;

    static const ReplicaMetrics& get() {
        static auto& registry = obs::MetricsRegistry::global();
        static const ReplicaMetrics metrics{
            registry.counter("repl.frames_applied"),
            registry.counter("repl.snapshots_received"),
            registry.counter("repl.reconnects"),
            registry.counter("repl.heartbeats"),
            registry.gauge("repl.lag_frames"),
            registry.histogram("repl.apply_seconds")};
        return metrics;
    }
};

timeval to_timeval(double seconds) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec =
        static_cast<suseconds_t>((seconds - std::floor(seconds)) * 1e6);
    return tv;
}

constexpr std::size_t kFrameHeaderBytes = 8;

std::uint32_t load_u32le(const unsigned char* p) noexcept {
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

/// "key=value" extraction from a REPL control line; throws on absence.
std::string line_field(const std::string& line, const std::string& key) {
    const std::string needle = key + "=";
    std::size_t at = line.find(needle);
    FPM_CHECK(at != std::string::npos,
              "REPL line missing " + key + "=: " + line);
    at += needle.size();
    const std::size_t end = line.find(' ', at);
    return line.substr(at, end == std::string::npos ? std::string::npos
                                                    : end - at);
}

std::uint64_t parse_u64_field(const std::string& line,
                              const std::string& key) {
    const std::string text = line_field(line, key);
    errno = 0;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
    FPM_CHECK(end != text.c_str() && *end == '\0' && errno == 0,
              "malformed " + key + "= in REPL line: " + line);
    return static_cast<std::uint64_t>(value);
}

} // namespace

/// Buffered blocking connection to the primary's replication port.
/// Throws fpm::Error on any transport failure — the run loop treats
/// every throw the same way (sever, back off, reconnect).
class Replicator::Conn {
public:
    Conn(const serve::Endpoint& target, const serve::ServeConfig& transport,
         std::atomic<int>& shared_fd)
        : shared_fd_(shared_fd) {
        fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        FPM_CHECK(fd_ >= 0,
                  std::string("socket(): ") + std::strerror(errno));
        try {
            sockaddr_in addr{};
            addr.sin_family = AF_INET;
            addr.sin_port = htons(target.port);
            FPM_CHECK(::inet_pton(AF_INET, target.host.c_str(),
                                  &addr.sin_addr) == 1,
                      "invalid replication source address: " + target.host);
            connect_with_timeout(addr, transport.connect_timeout);
            const int one = 1;
            ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
            if (transport.recv_timeout > 0.0) {
                const timeval tv = to_timeval(transport.recv_timeout);
                ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
                ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
            }
        } catch (...) {
            ::close(fd_);
            fd_ = -1;
            throw;
        }
        shared_fd_.store(fd_, std::memory_order_release);
    }

    ~Conn() {
        shared_fd_.store(-1, std::memory_order_release);
        if (fd_ >= 0) {
            ::close(fd_);
        }
    }

    Conn(const Conn&) = delete;
    Conn& operator=(const Conn&) = delete;

    void send_all(const std::string& data) {
        std::size_t sent = 0;
        while (sent < data.size()) {
            const ssize_t n = ::send(fd_, data.data() + sent,
                                     data.size() - sent, MSG_NOSIGNAL);
            if (n < 0 && errno == EINTR) {
                continue;
            }
            FPM_CHECK(n > 0, std::string("repl send(): ") +
                                 (n < 0 ? std::strerror(errno)
                                        : "connection closed"));
            sent += static_cast<std::size_t>(n);
        }
    }

    std::string read_line() {
        for (;;) {
            const std::size_t newline = buffer_.find('\n');
            if (newline != std::string::npos) {
                std::string line = buffer_.substr(0, newline);
                buffer_.erase(0, newline + 1);
                if (!line.empty() && line.back() == '\r') {
                    line.pop_back();
                }
                return line;
            }
            fill();
        }
    }

    /// Reads exactly `count` bytes (after any buffered carry-over).
    std::string read_exact(std::size_t count) {
        while (buffer_.size() < count) {
            fill();
        }
        std::string data = buffer_.substr(0, count);
        buffer_.erase(0, count);
        return data;
    }

private:
    void connect_with_timeout(const sockaddr_in& addr, double timeout) {
        if (timeout <= 0.0) {
            FPM_CHECK(::connect(fd_,
                                reinterpret_cast<const sockaddr*>(&addr),
                                sizeof addr) == 0,
                      std::string("repl connect(): ") +
                          std::strerror(errno));
            return;
        }
        const int flags = ::fcntl(fd_, F_GETFL, 0);
        FPM_CHECK(flags >= 0,
                  std::string("fcntl(): ") + std::strerror(errno));
        FPM_CHECK(::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) == 0,
                  std::string("fcntl(): ") + std::strerror(errno));
        const int rc = ::connect(
            fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
        if (rc != 0) {
            FPM_CHECK(errno == EINPROGRESS,
                      std::string("repl connect(): ") +
                          std::strerror(errno));
            pollfd pfd{};
            pfd.fd = fd_;
            pfd.events = POLLOUT;
            int ready;
            do {
                ready = ::poll(&pfd, 1, static_cast<int>(timeout * 1e3));
            } while (ready < 0 && errno == EINTR);
            FPM_CHECK(ready > 0, ready == 0
                                     ? "repl connect(): timed out"
                                     : std::string("poll(): ") +
                                           std::strerror(errno));
            int err = 0;
            socklen_t len = sizeof err;
            FPM_CHECK(::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) ==
                          0,
                      std::string("getsockopt(): ") + std::strerror(errno));
            FPM_CHECK(err == 0, std::string("repl connect(): ") +
                                    std::strerror(err));
        }
        FPM_CHECK(::fcntl(fd_, F_SETFL, flags) == 0,
                  std::string("fcntl(): ") + std::strerror(errno));
    }

    void fill() {
        char chunk[8192];
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR) {
            return;
        }
        FPM_CHECK(n > 0,
                  n == 0 ? std::string("repl recv(): primary closed the "
                                       "connection")
                         : std::string("repl recv(): ") +
                               std::strerror(errno));
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }

    std::atomic<int>& shared_fd_;
    int fd_ = -1;
    std::string buffer_;
};

Replicator::Replicator(serve::RequestEngine& engine,
                       store::ModelStore* local_store,
                       ReplicatorConfig config)
    : engine_(engine), local_store_(local_store),
      config_(std::move(config)) {
    // Everything already recovered locally counts as applied: reconnect
    // overlap and snapshot records at or below this are dropped.
    applied_generation_.store(engine_.registry().next_generation() - 1,
                              std::memory_order_relaxed);
}

Replicator::~Replicator() { stop(); }

void Replicator::start() {
    if (started_) {
        return;
    }
    started_ = true;
    serve::ReplStatus::global().set_role("replica");
    serve::ReplStatus::global().set_source(config_.source.to_string());
    serve::ReplStatus::global().record_applied(
        applied_generation_.load(std::memory_order_relaxed));
    thread_ = std::thread([this] { run(); });
}

void Replicator::stop() {
    if (stop_.exchange(true)) {
        if (thread_.joinable()) {
            thread_.join();
        }
        return;
    }
    {
        std::lock_guard lock(stop_mutex_);
        stop_cv_.notify_all();
    }
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd >= 0) {
        ::shutdown(fd, SHUT_RDWR);  // wake a blocked recv; Conn closes
    }
    if (thread_.joinable()) {
        thread_.join();
    }
}

void Replicator::backoff(int consecutive_failures) {
    double delay = config_.transport.backoff_base;
    for (int i = 1; i < consecutive_failures; ++i) {
        delay *= 2.0;
        if (delay >= config_.transport.backoff_max) {
            break;
        }
    }
    delay = std::min(delay, config_.transport.backoff_max);
    if (delay <= 0.0) {
        return;
    }
    std::unique_lock lock(stop_mutex_);
    stop_cv_.wait_for(lock, std::chrono::duration<double>(delay), [&] {
        return stop_.load(std::memory_order_relaxed);
    });
}

void Replicator::run() {
    int failures = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
        try {
            run_once();
            failures = 0;
        } catch (const std::exception&) {
            // Connect refusal, stream loss, apply failure, injected
            // repl.* fault: all reconverge through reconnect + resume.
        }
        connected_.store(false, std::memory_order_relaxed);
        if (stop_.load(std::memory_order_relaxed)) {
            break;
        }
        reconnects_.fetch_add(1, std::memory_order_relaxed);
        ReplicaMetrics::get().reconnects.add(1);
        backoff(++failures);
    }
}

void Replicator::run_once() {
    Conn conn(config_.source, config_.transport, fd_);

    conn.send_all("REPL HELLO " + position_.to_string() + "\n");
    const std::string greeting = conn.read_line();

    if (greeting.rfind("OK REPL SNAP ", 0) == 0) {
        const std::uint64_t sets = parse_u64_field(greeting, "sets");
        position_ = ReplPosition::parse(line_field(greeting, "pos"));
        for (std::uint64_t i = 0; i < sets; ++i) {
            const std::string header = conn.read_line();
            FPM_CHECK(header.rfind("REPL SNAP ", 0) == 0,
                      "unexpected snapshot record: " + header);
            const std::uint64_t bytes = parse_u64_field(header, "bytes");
            apply_frame(conn.read_exact(bytes), "repl snapshot");
        }
        snapshots_received_.fetch_add(1, std::memory_order_relaxed);
        ReplicaMetrics::get().snapshots_received.add(1);
    } else if (greeting.rfind("OK REPL STREAM ", 0) == 0) {
        position_ = ReplPosition::parse(line_field(greeting, "pos"));
    } else {
        throw Error("unexpected REPL handshake reply: " + greeting);
    }

    connected_.store(true, std::memory_order_relaxed);
    serve::ReplStatus::global().record_contact(
        applied_generation_.load(std::memory_order_relaxed),
        applied_generation_.load(std::memory_order_relaxed));

    while (!stop_.load(std::memory_order_relaxed)) {
        const std::string line = conn.read_line();
        if (line.rfind("REPL FRAME ", 0) == 0) {
            const std::uint64_t bytes = parse_u64_field(line, "bytes");
            const ReplPosition after =
                ReplPosition::parse(line_field(line, "pos"));
            apply_frame(conn.read_exact(bytes), "repl stream");
            position_ = after;
            const std::uint64_t applied =
                applied_generation_.load(std::memory_order_relaxed);
            serve::ReplStatus::global().record_contact(applied, applied);
            ReplicaMetrics::get().lag_frames.set(0);
        } else if (line.rfind("REPL PING ", 0) == 0) {
            const std::uint64_t committed =
                parse_u64_field(line, "committed");
            const std::uint64_t applied =
                applied_generation_.load(std::memory_order_relaxed);
            serve::ReplStatus::global().record_contact(committed, applied);
            ReplicaMetrics::get().lag_frames.set(
                committed > applied
                    ? static_cast<std::int64_t>(committed - applied)
                    : 0);
            ReplicaMetrics::get().heartbeats.add(1);
        } else {
            throw Error("unexpected REPL stream line: " + line);
        }
    }
}

void Replicator::apply_frame(const std::string& frame,
                             const std::string& origin) {
    // The frame is a store WAL frame: validate it with the recovery
    // framing rules before trusting the payload.
    FPM_CHECK(frame.size() >= kFrameHeaderBytes,
              origin + ": short replication frame");
    const auto* header =
        reinterpret_cast<const unsigned char*>(frame.data());
    const std::uint32_t length = load_u32le(header);
    const std::uint32_t expected_crc = load_u32le(header + 4);
    FPM_CHECK(frame.size() == kFrameHeaderBytes + length,
              origin + ": replication frame length mismatch");
    const std::string payload = frame.substr(kFrameHeaderBytes);
    FPM_CHECK(store::crc32(payload.data(), payload.size()) == expected_crc,
              origin + ": replication frame CRC mismatch");

    apply_record(store::decode_publish_record(payload, origin));
}

void Replicator::apply_record(const store::PublishRecord& record) {
    if (record.generation <=
        applied_generation_.load(std::memory_order_relaxed)) {
        return;  // reconnect/snapshot overlap: already applied
    }

    static auto& apply_fault = fault::point("repl.apply");
    if (apply_fault.fire()) {
        throw serve::ServiceError(serve::ErrorCode::kStoreUnavailable,
                                  "injected fault: repl.apply");
    }

    const auto start = std::chrono::steady_clock::now();
    serve::ModelRegistry& registry = engine_.registry();
    const std::shared_ptr<const serve::ModelSet> old =
        registry.find(record.name);

    std::shared_ptr<const serve::ModelSet> installed;
    if (registry.next_generation() == record.generation) {
        // Steady state: put() reproduces the primary's generation and
        // fires the local store's write-ahead observer.
        installed = registry.put(record.name, record.models);
    } else {
        // Snapshot records and post-reconnect overlap carry explicit,
        // possibly non-contiguous generations: restore() installs them
        // verbatim (no observer), so the local store is fed directly.
        installed =
            registry.restore(record.name, record.models, record.generation);
        if (local_store_ != nullptr) {
            serve::ModelSet set;
            set.name = record.name;
            set.models = record.models;
            set.generation = record.generation;
            set.fingerprint = installed->fingerprint;
            local_store_->append(set);
        }
    }
    FPM_CHECK(installed->generation == record.generation,
              "replicated generation mismatch: installed " +
                  std::to_string(installed->generation) + ", primary " +
                  std::to_string(record.generation));
    FPM_CHECK(installed->fingerprint == record.fingerprint,
              "replicated fingerprint mismatch for " + record.name);

    if (old != nullptr) {
        // Same cache hygiene as the primary's publisher: plans computed
        // against the superseded snapshot can never be served again.
        engine_.invalidate_model(record.name, old->fingerprint);
    }

    applied_generation_.store(record.generation,
                              std::memory_order_relaxed);
    frames_applied_.fetch_add(1, std::memory_order_relaxed);
    serve::ReplStatus::global().record_applied(record.generation);
    ReplicaMetrics::get().frames_applied.add(1);
    ReplicaMetrics::get().apply_seconds.record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
}

} // namespace fpm::repl

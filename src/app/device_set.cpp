#include "fpm/app/device_set.hpp"

#include <sstream>

namespace fpm::app {

std::size_t DeviceSet::process_count() const {
    std::size_t n = 0;
    for (const auto& device : devices) {
        n += device.process_count();
    }
    return n;
}

unsigned DeviceSet::cpu_cores_on_socket(std::size_t s) const {
    unsigned cores = 0;
    for (const auto& device : devices) {
        if (device.kind == DeviceKind::kCpuSocket && device.socket == s) {
            cores += device.cores;
        }
    }
    return cores;
}

bool DeviceSet::gpu_on_socket(std::size_t s) const {
    for (const auto& device : devices) {
        if (device.kind == DeviceKind::kGpu && device.socket == s) {
            return true;
        }
    }
    return false;
}

DeviceSet cpu_only_devices(const sim::HybridNode& node) {
    DeviceSet set;
    for (std::size_t s = 0; s < node.socket_count(); ++s) {
        Device device;
        device.kind = DeviceKind::kCpuSocket;
        device.socket = s;
        device.cores = node.spec().sockets[s].cores;
        std::ostringstream name;
        name << "S" << device.cores << "(socket" << s << ")";
        device.name = name.str();
        set.devices.push_back(device);
    }
    return set;
}

DeviceSet single_gpu_devices(const sim::HybridNode& node, std::size_t gpu,
                             sim::KernelVersion version) {
    FPM_CHECK(gpu < node.gpu_count(), "GPU index out of range");
    DeviceSet set;
    Device device;
    device.kind = DeviceKind::kGpu;
    device.gpu_index = gpu;
    device.socket = node.gpu_socket(gpu);
    device.cores = 1;  // the dedicated host core
    device.gpu_version = version;
    device.name = node.gpu_model(gpu).spec().name;
    set.devices.push_back(device);
    return set;
}

DeviceSet hybrid_devices(const sim::HybridNode& node, sim::KernelVersion version) {
    DeviceSet set;

    // GPU devices first: ordering is stable and benches reference them as
    // G1 (fastest-listed GPU) and G2 in the paper's table layout.  We list
    // them in node order.
    std::vector<unsigned> dedicated(node.socket_count(), 0);
    for (std::size_t g = 0; g < node.gpu_count(); ++g) {
        Device device;
        device.kind = DeviceKind::kGpu;
        device.gpu_index = g;
        device.socket = node.gpu_socket(g);
        device.cores = 1;
        device.gpu_version = version;
        device.name = node.gpu_model(g).spec().name;
        set.devices.push_back(device);
        dedicated[device.socket] += 1;
    }

    for (std::size_t s = 0; s < node.socket_count(); ++s) {
        const unsigned total = node.spec().sockets[s].cores;
        FPM_CHECK(dedicated[s] <= total,
                  "socket has fewer cores than attached GPUs");
        const unsigned cores = total - dedicated[s];
        if (cores == 0) {
            continue;
        }
        Device device;
        device.kind = DeviceKind::kCpuSocket;
        device.socket = s;
        device.cores = cores;
        std::ostringstream name;
        name << "S" << cores << "(socket" << s << ")";
        device.name = name.str();
        set.devices.push_back(device);
    }
    return set;
}

std::unique_ptr<core::KernelBenchmark> make_device_bench(sim::HybridNode& node,
                                                         const DeviceSet& set,
                                                         std::size_t device) {
    FPM_CHECK(device < set.devices.size(), "device index out of range");
    const Device& d = set.devices[device];
    if (d.kind == DeviceKind::kCpuSocket) {
        const bool gpu_coactive = set.gpu_on_socket(d.socket);
        return std::make_unique<core::SimCpuKernelBench>(node, d.socket, d.cores,
                                                         gpu_coactive);
    }
    const unsigned coactive = set.cpu_cores_on_socket(d.socket);
    return std::make_unique<core::SimGpuKernelBench>(node, d.gpu_index,
                                                     d.gpu_version, coactive);
}

std::vector<core::SpeedFunction> build_device_fpms(
    sim::HybridNode& node, const DeviceSet& set,
    const core::FpmBuildOptions& options) {
    std::vector<core::SpeedFunction> models;
    models.reserve(set.devices.size());
    for (std::size_t i = 0; i < set.devices.size(); ++i) {
        auto bench = make_device_bench(node, set, i);
        models.push_back(core::build_fpm(*bench, options));
    }
    return models;
}

std::vector<double> build_device_cpms(sim::HybridNode& node, const DeviceSet& set,
                                      double total_area) {
    std::vector<std::unique_ptr<core::KernelBenchmark>> benches;
    std::vector<core::KernelBenchmark*> pointers;
    for (std::size_t i = 0; i < set.devices.size(); ++i) {
        benches.push_back(make_device_bench(node, set, i));
        pointers.push_back(benches.back().get());
    }
    const auto models = core::build_cpm_even_share(pointers, total_area);
    std::vector<double> speeds;
    speeds.reserve(models.size());
    for (const auto& model : models) {
        speeds.push_back(model.speed);
    }
    return speeds;
}

} // namespace fpm::app

#include "fpm/app/stencil.hpp"

#include <numeric>
#include <thread>

#include "fpm/measure/timer.hpp"
#include "fpm/rt/process_group.hpp"

namespace fpm::app {

void stencil_sweep(blas::ConstMatrixView<float> src, blas::MatrixView<float> dst,
                   std::size_t row_begin, std::size_t row_end) {
    FPM_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols(),
              "stencil grids must have equal shapes");
    FPM_CHECK(src.rows() >= 3 && src.cols() >= 3,
              "stencil needs at least a 3x3 grid");
    FPM_CHECK(row_begin >= 1 && row_end <= src.rows() - 1 && row_begin <= row_end,
              "stencil band out of the interior");

    const std::size_t cols = src.cols();
    for (std::size_t r = row_begin; r < row_end; ++r) {
        for (std::size_t c = 1; c + 1 < cols; ++c) {
            dst(r, c) = 0.2F * (src(r, c) + src(r - 1, c) + src(r + 1, c) +
                                src(r, c - 1) + src(r, c + 1));
        }
    }
}

namespace {

void copy_boundary(blas::ConstMatrixView<float> src, blas::MatrixView<float> dst) {
    const std::size_t rows = src.rows();
    const std::size_t cols = src.cols();
    for (std::size_t c = 0; c < cols; ++c) {
        dst(0, c) = src(0, c);
        dst(rows - 1, c) = src(rows - 1, c);
    }
    for (std::size_t r = 0; r < rows; ++r) {
        dst(r, 0) = src(r, 0);
        dst(r, cols - 1) = src(r, cols - 1);
    }
}

} // namespace

void stencil_reference(blas::Matrix<float>& grid, int sweeps) {
    FPM_CHECK(sweeps >= 0, "sweep count must be non-negative");
    blas::Matrix<float> scratch(grid.rows(), grid.cols());
    copy_boundary(grid.view(), scratch.view());
    blas::Matrix<float>* src = &grid;
    blas::Matrix<float>* dst = &scratch;
    for (int sweep = 0; sweep < sweeps; ++sweep) {
        stencil_sweep(src->view(), dst->view(), 1, grid.rows() - 1);
        std::swap(src, dst);
    }
    if (src != &grid) {
        // Odd number of sweeps: move the result back.
        for (std::size_t r = 0; r < grid.rows(); ++r) {
            for (std::size_t c = 0; c < grid.cols(); ++c) {
                grid(r, c) = (*src)(r, c);
            }
        }
    }
}

StencilRunReport run_real_stencil(std::span<const std::int64_t> rows_per_device,
                                  std::span<const unsigned> threads,
                                  blas::Matrix<float>& grid, int sweeps) {
    FPM_CHECK(!rows_per_device.empty(), "need at least one device");
    FPM_CHECK(rows_per_device.size() == threads.size(),
              "rows and threads must match");
    FPM_CHECK(sweeps >= 0, "sweep count must be non-negative");
    FPM_CHECK(grid.rows() >= 3 && grid.cols() >= 3, "grid too small");
    const std::int64_t interior = static_cast<std::int64_t>(grid.rows()) - 2;
    FPM_CHECK(std::accumulate(rows_per_device.begin(), rows_per_device.end(),
                              std::int64_t{0}) == interior,
              "band rows must sum to the interior row count");

    const std::size_t p = rows_per_device.size();
    std::vector<std::size_t> band_begin(p);
    std::size_t cursor = 1;
    for (std::size_t i = 0; i < p; ++i) {
        FPM_CHECK(rows_per_device[i] >= 0, "band sizes must be non-negative");
        band_begin[i] = cursor;
        cursor += static_cast<std::size_t>(rows_per_device[i]);
    }

    blas::Matrix<float> scratch(grid.rows(), grid.cols());
    copy_boundary(grid.view(), scratch.view());

    StencilRunReport report;
    report.device_seconds.assign(p, 0.0);
    measure::WallTimer wall;

    rt::ProcessGroup group(p);
    group.run([&](rt::ProcessContext& context) {
        const std::size_t rank = context.rank();
        const std::size_t begin = band_begin[rank];
        const std::size_t end =
            begin + static_cast<std::size_t>(rows_per_device[rank]);
        double busy = 0.0;

        blas::Matrix<float>* src = &grid;
        blas::Matrix<float>* dst = &scratch;
        for (int sweep = 0; sweep < sweeps; ++sweep) {
            if (end > begin) {
                measure::WallTimer timer;
                const unsigned workers =
                    std::max<unsigned>(1, threads[rank]);
                if (workers == 1 || end - begin < 2 * workers) {
                    stencil_sweep(src->view(), dst->view(), begin, end);
                } else {
                    // Split the band across the device's worker threads.
                    std::vector<std::thread> pool;
                    const std::size_t rows = end - begin;
                    for (unsigned w = 0; w < workers; ++w) {
                        const std::size_t lo = begin + rows * w / workers;
                        const std::size_t hi = begin + rows * (w + 1) / workers;
                        pool.emplace_back([&, lo, hi]() {
                            stencil_sweep(src->view(), dst->view(), lo, hi);
                        });
                    }
                    for (auto& t : pool) {
                        t.join();
                    }
                }
                busy += timer.elapsed();
            }
            // Halo synchronisation: every band must finish before anyone
            // reads neighbour rows of the next sweep.
            context.barrier();
            std::swap(src, dst);
        }
        report.device_seconds[rank] = busy;
    });

    if (sweeps % 2 == 1) {
        // Result lives in scratch; copy back.
        for (std::size_t r = 0; r < grid.rows(); ++r) {
            for (std::size_t c = 0; c < grid.cols(); ++c) {
                grid(r, c) = scratch(r, c);
            }
        }
    }
    report.seconds = wall.elapsed();
    return report;
}

} // namespace fpm::app

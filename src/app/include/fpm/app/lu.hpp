/// \file lu.hpp
/// \brief Third application family: blocked LU factorisation.
///
/// The paper motivates hybrid platforms with Linpack-style workloads
/// (its ref [1] accelerates Linpack with CUDA).  Blocked right-looking
/// LU exercises the partitioner differently from GEMM and the stencil:
/// the bulk of the work is the trailing-submatrix update — a GEMM whose
/// size *shrinks* every step — preceded by a serial panel factorisation
/// on the critical path.  Because the workload changes per step, the
/// distribution is recomputed from the speed models at every iteration
/// (cheap: the partitioner costs microseconds; in shared memory there is
/// no data-migration penalty).
///
/// No pivoting is performed; callers supply diagonally-dominant matrices
/// (the factorisation checks pivots and throws otherwise).  The point
/// here is load balancing, not numerics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fpm/blas/matrix.hpp"
#include "fpm/core/speed_function.hpp"

namespace fpm::app {

/// One device participating in the trailing updates.
struct LuDevice {
    unsigned threads = 1;   ///< GEMM threads for this device's band
    double weight = 1.0;    ///< relative speed (e.g. from an FPM at the
                            ///< current trailing size); > 0
};

/// Report of a factorisation run.
struct LuReport {
    double seconds = 0.0;
    std::size_t steps = 0;
    double panel_seconds = 0.0;   ///< serial panel work (critical path)
    double update_seconds = 0.0;  ///< parallel trailing updates (max band)
};

/// Unblocked in-place LU (no pivoting): A = L\U with unit lower diagonal.
/// Throws fpm::Error on a near-zero pivot.
void lu_reference(blas::MatrixView<float> a);

/// Blocked right-looking LU on whole blocks of size `block`; the trailing
/// update of each step is split into row bands across `devices`
/// proportionally to their weights.  A.rows() == A.cols() must be a
/// multiple of `block`.
LuReport lu_factor_blocked(blas::Matrix<float>& a, std::size_t block,
                           std::span<const LuDevice> devices);

/// Reconstructs L * U from a factorised matrix (for verification).
blas::Matrix<float> lu_multiply_factors(const blas::Matrix<float>& factors);

/// Simulated execution time of the blocked LU on a device population
/// described by GEMM-kernel speed functions (blocks/second): per step,
/// the serial panel runs on the fastest device and the trailing update is
/// FPM-partitioned at its current size.  Used by the E3 bench to compare
/// FPM-based and homogeneous trailing distributions.
struct LuSimResult {
    double total_time = 0.0;
    double panel_time = 0.0;
    double update_time = 0.0;
};
LuSimResult lu_simulated_time(std::span<const core::SpeedFunction> models,
                              std::int64_t n_blocks, bool fpm_partitioning);

} // namespace fpm::app

/// \file stencil.hpp
/// \brief The second application family: iterative 5-point Jacobi stencil.
///
/// Real arithmetic counterpart of fpm::sim::stencil_model.  The grid is
/// partitioned into horizontal bands (the workload is divisible by rows);
/// each sweep every device updates its band from the previous grid, with
/// an iteration barrier in place of the halo exchange (bands read their
/// neighbours' boundary rows from shared memory, exactly like the pivot
/// broadcast of the matmul application).  Boundary cells are Dirichlet
/// (held fixed).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fpm/blas/matrix.hpp"

namespace fpm::app {

/// One sweep over rows [row_begin, row_end) of the interior: dst(r,c) =
/// average of the four neighbours and the cell in src.  Rows 0 and
/// rows-1 and the first/last column are never written.
void stencil_sweep(blas::ConstMatrixView<float> src, blas::MatrixView<float> dst,
                   std::size_t row_begin, std::size_t row_end);

/// Serial reference: `sweeps` Jacobi iterations over the whole grid.
void stencil_reference(blas::Matrix<float>& grid, int sweeps);

/// Report of a parallel run.
struct StencilRunReport {
    double seconds = 0.0;
    std::vector<double> device_seconds;
};

/// Parallel execution: device i owns `rows_per_device[i]` interior rows
/// (contiguous bands, in order; the counts must sum to grid.rows() - 2)
/// and runs its band on `threads[i]` worker threads.  The grid is updated
/// in place after `sweeps` iterations; results are bit-identical to
/// stencil_reference.
StencilRunReport run_real_stencil(std::span<const std::int64_t> rows_per_device,
                                  std::span<const unsigned> threads,
                                  blas::Matrix<float>& grid, int sweeps);

} // namespace fpm::app

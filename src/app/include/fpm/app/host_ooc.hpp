/// \file host_ooc.hpp
/// \brief Host reference executor for the out-of-core GPU kernel plans.
///
/// Executes an OocPlan with real arithmetic: a capacity-limited host-side
/// "device arena" stands in for GPU memory, memcpy stands in for PCIe
/// transfers, and the blocked GEMM stands in for CUBLAS.  The executor
/// maintains resident chunks across invocations, so the tail-reuse and
/// deferred-writeback semantics of kernel versions 2/3 (skip_upload /
/// skip_download, serpentine order) are exercised for real and can be
/// verified numerically against a plain GEMM.
///
/// This is the functional counterpart of fpm::sim::GpuKernelSim: the
/// simulator prices a plan in seconds, this executor proves the plan
/// computes the right numbers and counts its actual traffic.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "fpm/blas/matrix.hpp"
#include "fpm/sim/ooc_plan.hpp"

namespace fpm::app {

/// Transfer counters, in b-by-b blocks.
struct OocTraffic {
    double upload_c_blocks = 0.0;
    double download_c_blocks = 0.0;
    double upload_pivot_blocks = 0.0;
};

/// See file comment.
class HostOocExecutor {
public:
    /// `capacity_blocks` is the simulated device-memory budget.
    HostOocExecutor(std::size_t block_size, double capacity_blocks,
                    sim::KernelVersion version);

    /// One kernel invocation: c_host (h*b x w*b) += a_col (h*b x b) *
    /// b_row (b x w*b).  Alternates serpentine order automatically.
    /// Deferred chunks are NOT written to c_host until flush().
    void invoke(blas::ConstMatrixView<float> a_col,
                blas::ConstMatrixView<float> b_row,
                blas::MatrixView<float> c_host);

    /// Writes every resident chunk back to the host matrix and clears the
    /// residency cache (application epilogue).
    void flush(blas::MatrixView<float> c_host);

    [[nodiscard]] const OocTraffic& traffic() const noexcept { return traffic_; }
    [[nodiscard]] sim::KernelVersion version() const noexcept { return version_; }
    [[nodiscard]] std::size_t resident_chunks() const { return resident_.size(); }

private:
    std::size_t block_size_;
    double capacity_blocks_;
    sim::KernelVersion version_;
    bool reversed_ = false;
    OocTraffic traffic_{};

    /// Resident device copies of C bands, keyed by [row_begin, row_end).
    std::map<std::pair<std::int64_t, std::int64_t>, blas::Matrix<float>> resident_;
};

} // namespace fpm::app

/// \file cluster_app.hpp
/// \brief Simulated execution of the application on a cluster of hybrid
///        nodes (hierarchical-partitioning extension).
///
/// The blocked matrix multiplication runs exactly as on one node, except
/// that the pivot column/row must also cross the interconnect once per
/// iteration.  Per-iteration cost = max over nodes of the node's device
/// makespan, plus the inter-node broadcast of the pivots.
#pragma once

#include <cstdint>
#include <vector>

#include "fpm/app/device_set.hpp"
#include "fpm/sim/cluster.hpp"

namespace fpm::app {

/// Result of a simulated cluster run.
struct ClusterAppResult {
    double total_time = 0.0;
    double compute_time = 0.0;
    double comm_time = 0.0;                 ///< inter-node broadcasts
    std::vector<double> node_iter_time;     ///< per node, one iteration
};

/// Simulates the application on `cluster`.  `sets[i]` describes node i's
/// devices and `device_blocks[i]` their assigned areas (as produced by
/// part::partition_hierarchical); the grand total must be n*n.
ClusterAppResult run_simulated_cluster_app(
    const sim::HybridCluster& cluster, const std::vector<DeviceSet>& sets,
    const std::vector<std::vector<std::int64_t>>& device_blocks,
    std::int64_t n);

/// Device sets of every node of a cluster (hybrid configuration per node).
std::vector<DeviceSet> cluster_device_sets(
    sim::HybridCluster& cluster,
    sim::KernelVersion version = sim::KernelVersion::kV3);

/// Device FPMs of every node (contention-aware, as on the single node).
std::vector<std::vector<core::SpeedFunction>> cluster_device_fpms(
    sim::HybridCluster& cluster, const std::vector<DeviceSet>& sets,
    const core::FpmBuildOptions& options);

} // namespace fpm::app

/// \file matmul_real.hpp
/// \brief Heterogeneous parallel column-based matrix multiplication with
///        real arithmetic (paper section IV, Fig. 1a).
///
/// Executes C += A * B on n x n block matrices, partitioned over a device
/// set by a 2-D column layout: at iteration k the pivot block-column of A
/// and pivot block-row of B are made available to all devices (shared
/// memory stands in for the broadcast) and every device updates its own
/// rectangle of C with one GEMM.  Devices marked as GPUs route their
/// update through a HostOocExecutor, so the out-of-core kernel versions
/// participate in the full pipeline and the final C can be verified
/// against a plain GEMM.
#pragma once

#include <cstdint>
#include <vector>

#include "fpm/app/device_set.hpp"
#include "fpm/app/host_ooc.hpp"
#include "fpm/blas/matrix.hpp"
#include "fpm/part/column2d.hpp"

namespace fpm::app {

/// Per-device execution policy for the real run.
struct RealDevice {
    unsigned threads = 1;   ///< GEMM threads (cores of the socket)
    bool is_gpu = false;    ///< route through the out-of-core executor
    double gpu_capacity_blocks = 0.0;          ///< device-memory stand-in
    sim::KernelVersion gpu_version = sim::KernelVersion::kV3;
};

/// Timing/traffic report of a real run.
struct RealRunReport {
    double seconds = 0.0;
    std::vector<double> device_compute_seconds;
    std::vector<OocTraffic> gpu_traffic;  ///< indexed like devices; zeros for CPUs
};

/// Runs the blocked multiplication.  A is (n*b x n*b), B likewise, C is
/// accumulated in place.  `layout` must cover n x n blocks with one
/// rectangle per entry of `devices`.  Throws fpm::Error on any shape
/// mismatch.  Ranks run concurrently on a ProcessGroup, one per device.
RealRunReport run_real_matmul(const part::ColumnLayout& layout,
                              const std::vector<RealDevice>& devices,
                              std::size_t block_size,
                              blas::ConstMatrixView<float> a,
                              blas::ConstMatrixView<float> b,
                              blas::MatrixView<float> c);

} // namespace fpm::app

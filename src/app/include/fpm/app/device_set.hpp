/// \file device_set.hpp
/// \brief Device configurations of the hybrid node, as the application
///        and the partitioners see them.
///
/// The paper's experiments use three configurations of the node:
///  - CPU-only: four six-core sockets (24 cores);
///  - single GPU + its dedicated core;
///  - hybrid: every GPU plus every socket, where a socket hosting a GPU
///    contributes cores-1 compute cores (one is dedicated to the GPU).
///
/// A Device is the unit the 1-D partitioner balances; it maps 1:1 to a
/// speed function and to a rectangle of the 2-D layout.
#pragma once

#include <string>
#include <vector>

#include "fpm/core/fpm_builder.hpp"
#include "fpm/core/kernel_bench.hpp"
#include "fpm/core/models.hpp"
#include "fpm/sim/node.hpp"

namespace fpm::app {

/// What a device is made of.
enum class DeviceKind { kCpuSocket, kGpu };

/// One schedulable device of the hybrid platform.
struct Device {
    DeviceKind kind = DeviceKind::kCpuSocket;
    std::string name;
    std::size_t socket = 0;       ///< NUMA socket the device lives on
    unsigned cores = 0;           ///< active compute cores (CPU devices)
    std::size_t gpu_index = 0;    ///< which GPU (GPU devices)
    sim::KernelVersion gpu_version = sim::KernelVersion::kV3;

    /// Number of application processes this device hosts (one per core
    /// for sockets; the single dedicated host process for GPUs).
    [[nodiscard]] std::size_t process_count() const {
        return kind == DeviceKind::kCpuSocket ? cores : 1;
    }
};

/// Device set plus how many cores of each socket are co-active (needed
/// for the contention-aware kernel timings).
struct DeviceSet {
    std::vector<Device> devices;

    [[nodiscard]] std::size_t process_count() const;

    /// Cores of socket `s` busy with CPU work in this configuration.
    [[nodiscard]] unsigned cpu_cores_on_socket(std::size_t s) const;

    /// True when a GPU device of this set lives on socket `s`.
    [[nodiscard]] bool gpu_on_socket(std::size_t s) const;
};

/// CPU-only configuration: all sockets, all cores.
DeviceSet cpu_only_devices(const sim::HybridNode& node);

/// One GPU with its dedicated core, nothing else.
DeviceSet single_gpu_devices(const sim::HybridNode& node, std::size_t gpu,
                             sim::KernelVersion version = sim::KernelVersion::kV3);

/// Full hybrid configuration (the paper's 22 cores + 2 GPUs).
DeviceSet hybrid_devices(const sim::HybridNode& node,
                         sim::KernelVersion version = sim::KernelVersion::kV3);

/// Creates the kernel benchmark for one device of the set, reflecting the
/// co-activity of the other devices in the set (contention-aware group
/// measurement, paper section III).
std::unique_ptr<core::KernelBenchmark> make_device_bench(sim::HybridNode& node,
                                                         const DeviceSet& set,
                                                         std::size_t device);

/// Builds the FPM of every device of the set.
std::vector<core::SpeedFunction> build_device_fpms(sim::HybridNode& node,
                                                   const DeviceSet& set,
                                                   const core::FpmBuildOptions& options);

/// Builds even-share CPM constants (blocks/s) for every device of the set,
/// the traditional-model baseline of Tables II/III.
std::vector<double> build_device_cpms(sim::HybridNode& node, const DeviceSet& set,
                                      double total_area);

} // namespace fpm::app

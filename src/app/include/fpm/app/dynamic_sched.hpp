/// \file dynamic_sched.hpp
/// \brief Dynamic (task-queue) load balancing comparator.
///
/// The paper's related-work section contrasts static data partitioning
/// with dynamic algorithms (task scheduling / work stealing, refs [8],
/// [11], [12]): dynamic schedulers need no a-priori models and adapt when
/// the load changes, but pay per-task migration overhead and lose data
/// locality; on dedicated platforms static partitioning is near-optimal.
///
/// This module makes that trade-off measurable on the simulated node: a
/// greedy centralised task queue distributes g x g-block tile updates per
/// application iteration; every task pays a fetch cost (its operands move
/// to whichever device grabbed it — dynamic schedulers cannot pre-place
/// data).  A time-varying speed modulation models a non-dedicated
/// platform; the static runner accepts the same modulation so the two
/// strategies face identical conditions.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fpm/app/device_set.hpp"

namespace fpm::app {

/// External load on a device: rate multiplier (0, 1] as a function of
/// wall-clock time.  Identity when empty.
using SpeedModulation = std::function<double(std::size_t device, double time)>;

/// Options of the dynamic scheduler.
struct DynamicOptions {
    /// Side of a task tile, in blocks: tasks are g x g block updates.
    std::int64_t granularity = 4;
    /// Whether a task's operands must be fetched to the executing device
    /// each time (the data-migration cost dynamic scheduling incurs).
    bool charge_migration = true;
};

/// Result of a (simulated) dynamic run.
struct DynamicResult {
    double total_time = 0.0;
    std::vector<double> device_busy;       ///< per device, whole run
    std::vector<std::int64_t> task_count;  ///< tasks executed per device
};

/// Simulates the application with per-iteration greedy task-queue
/// scheduling over the device set.
DynamicResult run_dynamic_app(const sim::HybridNode& node, const DeviceSet& set,
                              std::int64_t n, const DynamicOptions& options = {},
                              const SpeedModulation& modulation = {});

/// Simulates the statically partitioned application (fixed per-device
/// areas) under the same time-varying modulation, for apples-to-apples
/// comparison with run_dynamic_app.  With an empty modulation this agrees
/// with run_simulated_app's compute time.
double run_static_app_perturbed(const sim::HybridNode& node, const DeviceSet& set,
                                const std::vector<std::int64_t>& areas,
                                std::int64_t n,
                                const SpeedModulation& modulation = {});

} // namespace fpm::app

/// \file matmul_sim.hpp
/// \brief Simulated execution of the heterogeneous parallel matrix
///        multiplication (paper sections IV and VI).
///
/// Given a device set, an integer 1-D partition of the n x n block matrix
/// and the 2-D column layout derived from it, the simulator reproduces the
/// application's timing structure: n iterations, each of which broadcasts
/// the pivot column/row and then updates every device's rectangle in
/// parallel.  Per-iteration compute time of a device comes from the
/// contention-aware kernel models of fpm::sim; the iteration cost is the
/// maximum over devices plus the (optional) communication term.
#pragma once

#include <cstdint>
#include <vector>

#include "fpm/app/device_set.hpp"
#include "fpm/part/column2d.hpp"

namespace fpm::app {

/// Options of a simulated run.
struct SimAppOptions {
    bool include_comm = true;  ///< add the pivot-broadcast communication term
};

/// Result of a simulated run.
struct SimAppResult {
    double total_time = 0.0;    ///< execution time (compute + comm), seconds
    double compute_time = 0.0;  ///< sum over iterations of max device compute
    double comm_time = 0.0;
    std::vector<double> device_compute_time;  ///< per device, whole run
    std::vector<double> device_iter_time;     ///< per device, one iteration
    part::ColumnLayout layout;
};

/// Simulates the application for the given block areas (one per device of
/// the set, summing to n*n).
SimAppResult run_simulated_app(const sim::HybridNode& node, const DeviceSet& set,
                               const std::vector<std::int64_t>& areas,
                               std::int64_t n, const SimAppOptions& options = {});

/// Expands per-device compute times to per-process times in rank order
/// (the paper's Fig. 6 view: one bar per process, sockets contribute one
/// process per core, GPUs their dedicated host process).  Ranks are
/// ordered by socket, with a GPU's host process first on its socket.
std::vector<double> per_process_times(const DeviceSet& set,
                                      const std::vector<double>& device_times);

} // namespace fpm::app

#include "fpm/app/matmul_real.hpp"

#include <memory>

#include "fpm/blas/gemm.hpp"
#include "fpm/measure/timer.hpp"
#include "fpm/rt/process_group.hpp"

namespace fpm::app {

RealRunReport run_real_matmul(const part::ColumnLayout& layout,
                              const std::vector<RealDevice>& devices,
                              std::size_t block_size,
                              blas::ConstMatrixView<float> a,
                              blas::ConstMatrixView<float> b,
                              blas::MatrixView<float> c) {
    const std::size_t bsz = block_size;
    const auto n = layout.n;
    FPM_CHECK(devices.size() == layout.rects.size(),
              "devices must match the layout");
    const auto elems = static_cast<std::size_t>(n) * bsz;
    FPM_CHECK(a.rows() == elems && a.cols() == elems, "A must be n*b square");
    FPM_CHECK(b.rows() == elems && b.cols() == elems, "B must be n*b square");
    FPM_CHECK(c.rows() == elems && c.cols() == elems, "C must be n*b square");

    const std::size_t p = devices.size();
    RealRunReport report;
    report.device_compute_seconds.assign(p, 0.0);
    report.gpu_traffic.assign(p, OocTraffic{});

    // One out-of-core executor per GPU device, persisting residency across
    // iterations (that is the whole point of the tail-reuse scheme).
    std::vector<std::unique_ptr<HostOocExecutor>> executors(p);
    for (std::size_t i = 0; i < p; ++i) {
        if (devices[i].is_gpu && layout.rects[i].area() > 0) {
            executors[i] = std::make_unique<HostOocExecutor>(
                bsz, devices[i].gpu_capacity_blocks, devices[i].gpu_version);
        }
    }

    measure::WallTimer wall;
    rt::ProcessGroup group(p);
    // A rank that fails mid-iteration must keep participating in the
    // remaining barriers — otherwise the surviving ranks deadlock.  The
    // first failure is captured here and rethrown after the join.
    std::exception_ptr rank_error;
    std::mutex error_mutex;
    group.run([&](rt::ProcessContext& context) {
        const std::size_t rank = context.rank();
        const part::Rect rect = layout.rects[rank];
        double busy = 0.0;
        bool failed = false;

        for (std::int64_t k = 0; k < n; ++k) {
            // Pivot column of A restricted to this device's rows; pivot
            // row of B restricted to its columns (shared-memory views in
            // place of the broadcast of Fig. 1a).
            if (rect.area() > 0 && !failed) {
                try {
                    const auto row0 = static_cast<std::size_t>(rect.row0) * bsz;
                    const auto col0 = static_cast<std::size_t>(rect.col0) * bsz;
                    const auto h = static_cast<std::size_t>(rect.h) * bsz;
                    const auto w = static_cast<std::size_t>(rect.w) * bsz;
                    const auto kk = static_cast<std::size_t>(k) * bsz;

                    const auto a_col = a.block(row0, kk, h, bsz);
                    const auto b_row = b.block(kk, col0, bsz, w);
                    auto c_rect = c.block(row0, col0, h, w);

                    measure::WallTimer t;
                    if (executors[rank]) {
                        executors[rank]->invoke(a_col, b_row, c_rect);
                    } else {
                        blas::gemm_multithread<float>(a_col, b_row, c_rect,
                                                      devices[rank].threads);
                    }
                    busy += t.elapsed();
                } catch (...) {
                    failed = true;
                    std::lock_guard lock(error_mutex);
                    if (!rank_error) {
                        rank_error = std::current_exception();
                    }
                }
            }
            // The blocked algorithm synchronises between iterations (the
            // next pivot depends on completed broadcasts).
            context.barrier();
        }

        if (executors[rank] && !failed) {
            const auto row0 = static_cast<std::size_t>(rect.row0) * bsz;
            const auto col0 = static_cast<std::size_t>(rect.col0) * bsz;
            executors[rank]->flush(c.block(row0, col0,
                                           static_cast<std::size_t>(rect.h) * bsz,
                                           static_cast<std::size_t>(rect.w) * bsz));
        }
        report.device_compute_seconds[rank] = busy;
    });
    if (rank_error) {
        std::rethrow_exception(rank_error);
    }

    report.seconds = wall.elapsed();
    for (std::size_t i = 0; i < p; ++i) {
        if (executors[i]) {
            report.gpu_traffic[i] = executors[i]->traffic();
        }
    }
    return report;
}

} // namespace fpm::app

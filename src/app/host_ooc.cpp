#include "fpm/app/host_ooc.hpp"

#include "fpm/blas/gemm.hpp"

namespace fpm::app {

namespace {

void copy_band(blas::ConstMatrixView<float> src, blas::MatrixView<float> dst) {
    FPM_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols(),
              "band shapes must match");
    for (std::size_t r = 0; r < src.rows(); ++r) {
        for (std::size_t c = 0; c < src.cols(); ++c) {
            dst(r, c) = src(r, c);
        }
    }
}

} // namespace

HostOocExecutor::HostOocExecutor(std::size_t block_size, double capacity_blocks,
                                 sim::KernelVersion version)
    : block_size_(block_size), capacity_blocks_(capacity_blocks),
      version_(version) {
    FPM_CHECK(block_size >= 1, "block size must be positive");
    FPM_CHECK(capacity_blocks > 0.0, "capacity must be positive");
}

void HostOocExecutor::invoke(blas::ConstMatrixView<float> a_col,
                             blas::ConstMatrixView<float> b_row,
                             blas::MatrixView<float> c_host) {
    const std::size_t b = block_size_;
    FPM_CHECK(c_host.rows() % b == 0 && c_host.cols() % b == 0,
              "C must be whole blocks");
    FPM_CHECK(a_col.rows() == c_host.rows() && a_col.cols() == b,
              "A(b) must be h blocks by one block");
    FPM_CHECK(b_row.cols() == c_host.cols() && b_row.rows() == b,
              "B(b) must be one block by w blocks");

    sim::OocPlanRequest request;
    request.width_blocks = static_cast<std::int64_t>(c_host.cols() / b);
    request.height_blocks = static_cast<std::int64_t>(c_host.rows() / b);
    request.capacity_blocks = capacity_blocks_;
    request.version = version_;
    request.block_size = static_cast<std::int64_t>(b);
    request.reversed = reversed_;
    const sim::OocPlan plan = sim::build_ooc_plan(request);

    traffic_.upload_pivot_blocks += plan.upload_pivot_blocks();

    for (const auto& chunk : plan.chunks) {
        const auto rows_elems = static_cast<std::size_t>(chunk.rows()) * b;
        const auto row0_elems = static_cast<std::size_t>(chunk.row_begin) * b;
        const auto key = std::make_pair(chunk.row_begin, chunk.row_end);
        const double area =
            static_cast<double>(chunk.rows() * request.width_blocks);

        // "Upload" the C band into its device buffer, unless a resident
        // copy carries it over from the previous iteration.
        auto it = resident_.find(key);
        if (it == resident_.end()) {
            blas::Matrix<float> buffer(rows_elems, c_host.cols());
            copy_band(c_host.block(row0_elems, 0, rows_elems, c_host.cols()),
                      buffer.view());
            it = resident_.emplace(key, std::move(buffer)).first;
            traffic_.upload_c_blocks += area;
        } else if (!chunk.skip_upload) {
            // The plan expected a fresh upload; the resident copy is newer
            // or equal (deferred write-back), so reuse it and still count
            // the planned traffic for faithful accounting.
            traffic_.upload_c_blocks += area;
        }

        // GEMM on the "device": band of C += band of A(b) * B(b).
        blas::gemm<float>(
            a_col.block(row0_elems, 0, rows_elems, b), b_row, it->second.view());

        if (!chunk.skip_download) {
            copy_band(it->second.view(),
                      c_host.block(row0_elems, 0, rows_elems, c_host.cols()));
            traffic_.download_c_blocks += area;
            resident_.erase(it);
        }
    }

    // Residency budget: the device keeps at most two C bands (the two C
    // buffers of the tail-reuse scheme) or the single in-core band.
    FPM_ASSERT(resident_.size() <= (plan.in_core ? 1U : 2U));

    reversed_ = !reversed_;
}

void HostOocExecutor::flush(blas::MatrixView<float> c_host) {
    const std::size_t b = block_size_;
    for (auto& [key, buffer] : resident_) {
        const auto row0_elems = static_cast<std::size_t>(key.first) * b;
        copy_band(buffer.view(),
                  c_host.block(row0_elems, 0, buffer.rows(), c_host.cols()));
        traffic_.download_c_blocks +=
            static_cast<double>(buffer.rows() / b) *
            static_cast<double>(buffer.cols() / b);
    }
    resident_.clear();
}

} // namespace fpm::app

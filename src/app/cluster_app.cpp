#include "fpm/app/cluster_app.hpp"

#include <algorithm>

#include "fpm/sim/gpu_kernel_sim.hpp"

namespace fpm::app {

ClusterAppResult run_simulated_cluster_app(
    const sim::HybridCluster& cluster, const std::vector<DeviceSet>& sets,
    const std::vector<std::vector<std::int64_t>>& device_blocks,
    std::int64_t n) {
    FPM_CHECK(n >= 1, "matrix size must be positive");
    FPM_CHECK(sets.size() == cluster.node_count(),
              "device sets must match the cluster");
    FPM_CHECK(device_blocks.size() == cluster.node_count(),
              "device blocks must match the cluster");

    std::int64_t grand_total = 0;
    for (std::size_t i = 0; i < device_blocks.size(); ++i) {
        FPM_CHECK(device_blocks[i].size() == sets[i].devices.size(),
                  "device blocks must match each node's device set");
        for (const auto blocks : device_blocks[i]) {
            FPM_CHECK(blocks >= 0, "block counts must be non-negative");
            grand_total += blocks;
        }
    }
    FPM_CHECK(grand_total == n * n, "device blocks must sum to n*n");

    ClusterAppResult result;
    result.node_iter_time.assign(cluster.node_count(), 0.0);

    for (std::size_t node_index = 0; node_index < cluster.node_count();
         ++node_index) {
        const sim::HybridNode& node = cluster.node(node_index);
        const DeviceSet& set = sets[node_index];
        double node_time = 0.0;
        for (std::size_t d = 0; d < set.devices.size(); ++d) {
            const std::int64_t area = device_blocks[node_index][d];
            if (area == 0) {
                continue;
            }
            const Device& device = set.devices[d];
            double t = 0.0;
            if (device.kind == DeviceKind::kCpuSocket) {
                t = node.cpu_kernel_time(device.socket, device.cores,
                                         static_cast<double>(area),
                                         set.gpu_on_socket(device.socket));
            } else {
                t = node.gpu_kernel_time(device.gpu_index,
                                         static_cast<double>(area),
                                         device.gpu_version,
                                         set.cpu_cores_on_socket(device.socket));
            }
            node_time = std::max(node_time, t);
        }
        result.node_iter_time[node_index] = node_time;
    }

    const double iter_compute =
        *std::max_element(result.node_iter_time.begin(),
                          result.node_iter_time.end());
    // Inter-node pivot broadcast: one block-column of A and one block-row
    // of B (n blocks each) cross the interconnect every iteration.
    const double iter_comm = cluster.broadcast_time(2.0 * static_cast<double>(n));

    result.compute_time = iter_compute * static_cast<double>(n);
    result.comm_time = iter_comm * static_cast<double>(n);
    result.total_time = result.compute_time + result.comm_time;
    return result;
}

std::vector<DeviceSet> cluster_device_sets(sim::HybridCluster& cluster,
                                           sim::KernelVersion version) {
    std::vector<DeviceSet> sets;
    sets.reserve(cluster.node_count());
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
        sets.push_back(hybrid_devices(cluster.node(i), version));
    }
    return sets;
}

std::vector<std::vector<core::SpeedFunction>> cluster_device_fpms(
    sim::HybridCluster& cluster, const std::vector<DeviceSet>& sets,
    const core::FpmBuildOptions& options) {
    FPM_CHECK(sets.size() == cluster.node_count(),
              "device sets must match the cluster");
    std::vector<std::vector<core::SpeedFunction>> models;
    models.reserve(sets.size());
    for (std::size_t i = 0; i < sets.size(); ++i) {
        models.push_back(build_device_fpms(cluster.node(i), sets[i], options));
    }
    return models;
}

} // namespace fpm::app

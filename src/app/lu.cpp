#include "fpm/app/lu.hpp"

#include <cmath>
#include <numeric>

#include "fpm/blas/gemm.hpp"
#include "fpm/measure/timer.hpp"
#include "fpm/part/fpm_partitioner.hpp"
#include "fpm/part/integer.hpp"
#include "fpm/rt/process_group.hpp"

namespace fpm::app {

namespace {

constexpr float kPivotFloor = 1e-6F;

/// Solve L * X = B in place (L unit lower triangular, from a factorised
/// diagonal block).
void trsm_lower_left_unit(blas::ConstMatrixView<float> l,
                          blas::MatrixView<float> b) {
    const std::size_t n = l.rows();
    for (std::size_t col = 0; col < b.cols(); ++col) {
        for (std::size_t i = 0; i < n; ++i) {
            float sum = b(i, col);
            for (std::size_t k = 0; k < i; ++k) {
                sum -= l(i, k) * b(k, col);
            }
            b(i, col) = sum;  // unit diagonal
        }
    }
}

/// Solve X * U = B in place (U upper triangular).
void trsm_upper_right(blas::ConstMatrixView<float> u,
                      blas::MatrixView<float> b) {
    const std::size_t n = u.rows();
    for (std::size_t row = 0; row < b.rows(); ++row) {
        for (std::size_t j = 0; j < n; ++j) {
            float sum = b(row, j);
            for (std::size_t k = 0; k < j; ++k) {
                sum -= b(row, k) * u(k, j);
            }
            FPM_CHECK(std::fabs(u(j, j)) > kPivotFloor,
                      "LU: near-zero pivot (matrix not diagonally dominant?)");
            b(row, j) = sum / u(j, j);
        }
    }
}

} // namespace

void lu_reference(blas::MatrixView<float> a) {
    FPM_CHECK(a.rows() == a.cols(), "LU needs a square matrix");
    const std::size_t n = a.rows();
    for (std::size_t k = 0; k < n; ++k) {
        FPM_CHECK(std::fabs(a(k, k)) > kPivotFloor,
                  "LU: near-zero pivot (matrix not diagonally dominant?)");
        for (std::size_t i = k + 1; i < n; ++i) {
            a(i, k) /= a(k, k);
            const float lik = a(i, k);
            for (std::size_t j = k + 1; j < n; ++j) {
                a(i, j) -= lik * a(k, j);
            }
        }
    }
}

LuReport lu_factor_blocked(blas::Matrix<float>& a, std::size_t block,
                           std::span<const LuDevice> devices) {
    FPM_CHECK(a.rows() == a.cols(), "LU needs a square matrix");
    FPM_CHECK(block >= 1, "block size must be positive");
    FPM_CHECK(a.rows() % block == 0, "matrix must be whole blocks");
    FPM_CHECK(!devices.empty(), "need at least one device");
    double weight_sum = 0.0;
    for (const auto& device : devices) {
        FPM_CHECK(device.weight > 0.0 && device.threads >= 1,
                  "device weights and threads must be positive");
        weight_sum += device.weight;
    }

    const std::size_t n = a.rows() / block;
    LuReport report;
    measure::WallTimer wall;

    for (std::size_t k = 0; k < n; ++k) {
        const std::size_t k0 = k * block;
        const std::size_t trailing = (n - k - 1) * block;

        // --- serial critical path: panel factorisation + solves --------
        measure::WallTimer panel_timer;
        auto diag = a.block(k0, k0, block, block);
        lu_reference(diag);
        if (trailing > 0) {
            trsm_lower_left_unit(blas::ConstMatrixView<float>(diag),
                                 a.block(k0, k0 + block, block, trailing));
            trsm_upper_right(blas::ConstMatrixView<float>(diag),
                             a.block(k0 + block, k0, trailing, block));
        }
        report.panel_seconds += panel_timer.elapsed();
        if (trailing == 0) {
            break;
        }

        // --- parallel trailing update: row bands by weight --------------
        // Largest-remainder split of the trailing rows.
        const std::size_t p = devices.size();
        std::vector<std::size_t> band(p, 0);
        {
            std::size_t assigned = 0;
            std::vector<std::pair<double, std::size_t>> remainders;
            for (std::size_t d = 0; d < p; ++d) {
                const double exact =
                    static_cast<double>(trailing) * devices[d].weight / weight_sum;
                band[d] = static_cast<std::size_t>(exact);
                assigned += band[d];
                remainders.emplace_back(exact - std::floor(exact), d);
            }
            std::sort(remainders.begin(), remainders.end(),
                      [](const auto& x, const auto& y) { return x.first > y.first; });
            for (std::size_t extra = 0; extra < trailing - assigned; ++extra) {
                band[remainders[extra].second] += 1;
            }
        }

        measure::WallTimer update_timer;
        rt::ProcessGroup group(p);
        const auto l_panel = a.block(k0 + block, k0, trailing, block);
        const auto u_panel = a.block(k0, k0 + block, block, trailing);
        std::vector<std::size_t> begin(p);
        {
            std::size_t cursor = 0;
            for (std::size_t d = 0; d < p; ++d) {
                begin[d] = cursor;
                cursor += band[d];
            }
        }
        group.run([&](rt::ProcessContext& context) {
            const std::size_t rank = context.rank();
            if (band[rank] == 0) {
                return;
            }
            auto c_band = a.block(k0 + block + begin[rank], k0 + block,
                                  band[rank], trailing);
            const auto l_band =
                blas::ConstMatrixView<float>(l_panel).block(begin[rank], 0,
                                                            band[rank], block);
            blas::gemm_multithread<float>(l_band,
                                          blas::ConstMatrixView<float>(u_panel),
                                          c_band, devices[rank].threads, -1.0F);
        });
        report.update_seconds += update_timer.elapsed();
        ++report.steps;
    }

    report.seconds = wall.elapsed();
    return report;
}

blas::Matrix<float> lu_multiply_factors(const blas::Matrix<float>& factors) {
    const std::size_t n = factors.rows();
    FPM_CHECK(n == factors.cols(), "factors must be square");
    blas::Matrix<float> product(n, n, 0.0F);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            // (L * U)(i, j) = sum_{k <= min(i, j)} L(i, k) * U(k, j) with
            // L unit lower triangular and U upper triangular.
            float sum = 0.0F;
            for (std::size_t k = 0; k <= std::min(i, j); ++k) {
                const float l = (k < i) ? factors(i, k) : 1.0F;
                sum += l * factors(k, j);
            }
            product(i, j) = sum;
        }
    }
    return product;
}

LuSimResult lu_simulated_time(std::span<const core::SpeedFunction> models,
                              std::int64_t n_blocks, bool fpm_partitioning) {
    FPM_CHECK(!models.empty(), "need at least one device");
    FPM_CHECK(n_blocks >= 1, "matrix size must be positive");

    // The serial panel runs on the fastest device at small sizes.
    double panel_rate = 0.0;
    for (const auto& model : models) {
        panel_rate = std::max(panel_rate, model.speed(std::min(
                                              8.0, model.max_problem())));
    }

    LuSimResult result;
    for (std::int64_t k = 0; k < n_blocks; ++k) {
        const std::int64_t m = n_blocks - k - 1;
        // Panel: one diagonal block + 2m panel blocks of work (getrf +
        // the two triangular solves), serial.
        result.panel_time += (1.0 + 2.0 * static_cast<double>(m)) / panel_rate;
        if (m == 0) {
            continue;
        }
        const double area = static_cast<double>(m) * static_cast<double>(m);
        if (fpm_partitioning) {
            const auto balanced = part::partition_fpm(models, area);
            result.update_time += balanced.balanced_time;
        } else {
            // Homogeneous distribution: the slowest device dominates.
            const double share = area / static_cast<double>(models.size());
            double worst = 0.0;
            for (const auto& model : models) {
                worst = std::max(
                    worst, model.time(std::min(share, model.max_problem())));
            }
            result.update_time += worst;
        }
    }
    result.total_time = result.panel_time + result.update_time;
    return result;
}

} // namespace fpm::app

#include "fpm/app/dynamic_sched.hpp"

#include <algorithm>
#include <cmath>

#include "fpm/common/math.hpp"
#include "fpm/part/column2d.hpp"

namespace fpm::app {

namespace {

/// Time for `device` to execute one task of `area` blocks starting at
/// wall-clock `now` (kernel time, optional operand fetch, external load).
double task_time(const sim::HybridNode& node, const DeviceSet& set,
                 std::size_t device, double area, std::int64_t side,
                 double now, const DynamicOptions& options,
                 const SpeedModulation& modulation) {
    const Device& d = set.devices[device];
    double t = 0.0;
    if (d.kind == DeviceKind::kCpuSocket) {
        t = node.cpu_kernel_time(d.socket, d.cores, area,
                                 set.gpu_on_socket(d.socket));
    } else {
        const double factor = node.gpu_contention_factor(
            d.gpu_index, set.cpu_cores_on_socket(d.socket));
        t = node.gpu_sim(d.gpu_index)
                .time_invocation(side, side, d.gpu_version, factor)
                .total_s;
    }
    if (options.charge_migration) {
        // The task's C tile plus its pivot slices move to the device that
        // grabbed it: (area + 2*side) blocks through host memory.
        const double bytes =
            (area + 2.0 * static_cast<double>(side)) *
            sim::block_bytes(node.options().block_size, node.options().precision);
        t += node.spec().message_latency_s +
             bytes / (node.spec().host_copy_gbs * 1e9);
    }
    if (modulation) {
        const double m = modulation(device, now);
        FPM_CHECK(m > 0.0 && m <= 1.0, "modulation must be in (0, 1]");
        t /= m;
    }
    return t;
}

} // namespace

DynamicResult run_dynamic_app(const sim::HybridNode& node, const DeviceSet& set,
                              std::int64_t n, const DynamicOptions& options,
                              const SpeedModulation& modulation) {
    FPM_CHECK(n >= 1, "matrix size must be positive");
    FPM_CHECK(options.granularity >= 1, "granularity must be positive");
    FPM_CHECK(!set.devices.empty(), "need at least one device");

    const std::size_t p = set.devices.size();
    const std::int64_t g = std::min(options.granularity, n);
    const std::int64_t tiles_per_side = ceil_div(n, g);

    DynamicResult result;
    result.device_busy.assign(p, 0.0);
    result.task_count.assign(p, 0);

    // Device availability persists across iterations (the queue refills
    // each iteration; a straggling device simply keeps its backlog).
    std::vector<double> free_at(p, 0.0);

    for (std::int64_t iteration = 0; iteration < n; ++iteration) {
        // One task per C tile this iteration.  Greedy list scheduling:
        // every task goes to the device that finishes it earliest.
        for (std::int64_t tr = 0; tr < tiles_per_side; ++tr) {
            for (std::int64_t tc = 0; tc < tiles_per_side; ++tc) {
                const std::int64_t h = std::min(g, n - tr * g);
                const std::int64_t w = std::min(g, n - tc * g);
                const double area = static_cast<double>(h * w);

                std::size_t best = 0;
                double best_done = std::numeric_limits<double>::infinity();
                double best_cost = 0.0;
                for (std::size_t device = 0; device < p; ++device) {
                    const double cost =
                        task_time(node, set, device, area, std::max(w, h),
                                  free_at[device], options, modulation);
                    const double done = free_at[device] + cost;
                    if (done < best_done) {
                        best_done = done;
                        best = device;
                        best_cost = cost;
                    }
                }
                free_at[best] = best_done;
                result.device_busy[best] += best_cost;
                result.task_count[best] += 1;
            }
        }
        // Iteration barrier: the next pivot needs every tile updated.
        const double barrier =
            *std::max_element(free_at.begin(), free_at.end());
        free_at.assign(p, barrier);
    }

    result.total_time = *std::max_element(free_at.begin(), free_at.end());
    return result;
}

double run_static_app_perturbed(const sim::HybridNode& node, const DeviceSet& set,
                                const std::vector<std::int64_t>& areas,
                                std::int64_t n,
                                const SpeedModulation& modulation) {
    FPM_CHECK(areas.size() == set.devices.size(),
              "areas must match the device set");
    FPM_CHECK(n >= 1, "matrix size must be positive");

    const auto layout = part::column_partition(n, areas);
    double now = 0.0;
    for (std::int64_t iteration = 0; iteration < n; ++iteration) {
        double iter_time = 0.0;
        for (std::size_t i = 0; i < set.devices.size(); ++i) {
            const part::Rect& rect = layout.rects[i];
            if (rect.area() == 0) {
                continue;
            }
            const Device& d = set.devices[i];
            double t = 0.0;
            if (d.kind == DeviceKind::kCpuSocket) {
                t = node.cpu_kernel_time(d.socket, d.cores,
                                         static_cast<double>(rect.area()),
                                         set.gpu_on_socket(d.socket));
            } else {
                const double factor = node.gpu_contention_factor(
                    d.gpu_index, set.cpu_cores_on_socket(d.socket));
                t = node.gpu_sim(d.gpu_index)
                        .time_invocation(rect.w, rect.h, d.gpu_version, factor)
                        .total_s;
            }
            if (modulation) {
                const double m = modulation(i, now);
                FPM_CHECK(m > 0.0 && m <= 1.0, "modulation must be in (0, 1]");
                t /= m;
            }
            iter_time = std::max(iter_time, t);
        }
        now += iter_time;
    }
    return now;
}

} // namespace fpm::app

#include "fpm/app/matmul_sim.hpp"

#include <algorithm>
#include <cmath>

#include "fpm/sim/specs.hpp"

namespace fpm::app {

SimAppResult run_simulated_app(const sim::HybridNode& node, const DeviceSet& set,
                               const std::vector<std::int64_t>& areas,
                               std::int64_t n, const SimAppOptions& options) {
    FPM_CHECK(areas.size() == set.devices.size(),
              "areas must match the device set");
    FPM_CHECK(n >= 1, "matrix size must be positive");

    SimAppResult result;
    result.layout = part::column_partition(n, areas);

    const std::size_t p = set.devices.size();
    result.device_iter_time.assign(p, 0.0);
    result.device_compute_time.assign(p, 0.0);

    // Per-iteration compute time of each device; rectangles are fixed
    // across iterations so one evaluation suffices.  The serpentine
    // (reversed) iterations of the out-of-core kernel have identical
    // transfer counts, so their time matches the forward ones.
    for (std::size_t i = 0; i < p; ++i) {
        const part::Rect& rect = result.layout.rects[i];
        if (rect.area() == 0) {
            continue;
        }
        const Device& device = set.devices[i];
        double t = 0.0;
        if (device.kind == DeviceKind::kCpuSocket) {
            t = node.cpu_kernel_time(device.socket, device.cores,
                                     static_cast<double>(rect.area()),
                                     set.gpu_on_socket(device.socket));
        } else {
            const double factor = node.gpu_contention_factor(
                device.gpu_index, set.cpu_cores_on_socket(device.socket));
            const auto timing = node.gpu_sim(device.gpu_index)
                                    .time_invocation(rect.w, rect.h,
                                                     device.gpu_version, factor);
            t = timing.total_s;
        }
        result.device_iter_time[i] = t;
    }

    const double iter_compute =
        result.device_iter_time.empty()
            ? 0.0
            : *std::max_element(result.device_iter_time.begin(),
                                result.device_iter_time.end());

    // Communication: at each iteration every device receives the parts of
    // the pivot column (its h rows) and pivot row (its w columns) it does
    // not own.  The broadcast is a memcpy-speed tree of depth ~log2(P)
    // over the node's processes.
    double iter_comm = 0.0;
    if (options.include_comm && p > 1) {
        const double bb = sim::block_bytes(node.options().block_size,
                                           node.options().precision);
        const double procs = static_cast<double>(set.process_count());
        const double depth = std::max(1.0, std::ceil(std::log2(procs)));
        double worst_bytes = 0.0;
        for (std::size_t i = 0; i < p; ++i) {
            const part::Rect& rect = result.layout.rects[i];
            if (rect.area() == 0) {
                continue;
            }
            worst_bytes = std::max(
                worst_bytes, static_cast<double>(rect.h + rect.w) * bb);
        }
        iter_comm = depth * node.spec().message_latency_s +
                    worst_bytes / (node.spec().host_copy_gbs * 1e9);
    }

    for (std::size_t i = 0; i < p; ++i) {
        result.device_compute_time[i] =
            result.device_iter_time[i] * static_cast<double>(n);
    }
    result.compute_time = iter_compute * static_cast<double>(n);
    result.comm_time = iter_comm * static_cast<double>(n);
    result.total_time = result.compute_time + result.comm_time;
    return result;
}

std::vector<double> per_process_times(const DeviceSet& set,
                                      const std::vector<double>& device_times) {
    FPM_CHECK(device_times.size() == set.devices.size(),
              "device_times must match the device set");

    // Rank order: sockets ascending; within a socket, GPU host processes
    // first (the paper binds rank 0 to the C870 host core on socket 0 and
    // rank 6 to the GTX680 host core on socket 1), then the compute cores.
    std::vector<double> times;
    std::size_t max_socket = 0;
    for (const auto& device : set.devices) {
        max_socket = std::max(max_socket, device.socket);
    }
    for (std::size_t s = 0; s <= max_socket; ++s) {
        for (std::size_t i = 0; i < set.devices.size(); ++i) {
            const Device& device = set.devices[i];
            if (device.socket != s || device.kind != DeviceKind::kGpu) {
                continue;
            }
            times.push_back(device_times[i]);
        }
        for (std::size_t i = 0; i < set.devices.size(); ++i) {
            const Device& device = set.devices[i];
            if (device.socket != s || device.kind != DeviceKind::kCpuSocket) {
                continue;
            }
            // All cores of a socket process equal shares of the socket's
            // rectangle and finish together.
            for (unsigned c = 0; c < device.cores; ++c) {
                times.push_back(device_times[i]);
            }
        }
    }
    return times;
}

} // namespace fpm::app

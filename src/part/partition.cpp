#include "fpm/part/partition.hpp"

#include <algorithm>
#include <numeric>

#include "fpm/common/error.hpp"

namespace fpm::part {

double Partition1D::total() const {
    return std::accumulate(share.begin(), share.end(), 0.0);
}

Partition1D partition_homogeneous(std::size_t devices, double total) {
    FPM_CHECK(devices >= 1, "need at least one device");
    FPM_CHECK(total >= 0.0, "total workload must be non-negative");
    Partition1D p;
    p.share.assign(devices, total / static_cast<double>(devices));
    return p;
}

Partition1D partition_cpm(std::span<const double> speeds, double total) {
    FPM_CHECK(!speeds.empty(), "need at least one device");
    FPM_CHECK(total >= 0.0, "total workload must be non-negative");
    double sum = 0.0;
    for (const double s : speeds) {
        FPM_CHECK(s >= 0.0, "constant speeds must be non-negative");
        sum += s;
    }
    FPM_CHECK(sum > 0.0, "at least one device must have positive speed");

    Partition1D p;
    p.share.reserve(speeds.size());
    for (const double s : speeds) {
        p.share.push_back(total * s / sum);
    }
    return p;
}

namespace {

template <typename Share>
double makespan_impl(std::span<const core::SpeedFunction> models,
                     std::span<const Share> shares) {
    FPM_CHECK(models.size() == shares.size(),
              "models and shares must have equal length");
    double worst = 0.0;
    for (std::size_t i = 0; i < models.size(); ++i) {
        const double x = static_cast<double>(shares[i]);
        FPM_CHECK(x >= 0.0, "shares must be non-negative");
        if (x > 0.0) {
            worst = std::max(worst, models[i].time(x));
        }
    }
    return worst;
}

} // namespace

double makespan(std::span<const core::SpeedFunction> models,
                std::span<const double> shares) {
    return makespan_impl(models, shares);
}

double makespan(std::span<const core::SpeedFunction> models,
                std::span<const std::int64_t> shares) {
    return makespan_impl(models, shares);
}

double imbalance(std::span<const core::SpeedFunction> models,
                 std::span<const double> shares) {
    FPM_CHECK(models.size() == shares.size(),
              "models and shares must have equal length");
    double worst = 0.0;
    double best = std::numeric_limits<double>::infinity();
    bool any = false;
    for (std::size_t i = 0; i < models.size(); ++i) {
        if (shares[i] > 0.0) {
            const double t = models[i].time(shares[i]);
            worst = std::max(worst, t);
            best = std::min(best, t);
            any = true;
        }
    }
    if (!any || worst == 0.0) {
        return 0.0;
    }
    return (worst - best) / worst;
}

} // namespace fpm::part

#include "fpm/part/iterative.hpp"

#include <algorithm>
#include <cmath>

#include "fpm/common/error.hpp"

namespace fpm::part {

namespace {

/// True makespan of a layout under the shape-aware oracle.
double layout_makespan(const ColumnLayout& layout, const RectTimeFn& rect_time) {
    double worst = 0.0;
    for (std::size_t i = 0; i < layout.rects.size(); ++i) {
        const Rect& rect = layout.rects[i];
        if (rect.area() == 0) {
            continue;
        }
        const double t = rect_time(i, rect);
        FPM_CHECK(t > 0.0, "rect_time must be positive for non-empty rects");
        worst = std::max(worst, t);
    }
    return worst;
}

} // namespace

IterativeResult partition_iterative(std::span<const core::SpeedFunction> models,
                                    std::int64_t n, const RectTimeFn& rect_time,
                                    const IterativeOptions& options) {
    FPM_CHECK(!models.empty(), "need at least one device");
    FPM_CHECK(n >= 1, "matrix size must be positive");
    FPM_CHECK(static_cast<bool>(rect_time), "need a shape-aware time oracle");
    FPM_CHECK(options.max_rounds >= 1, "need at least one round");
    FPM_CHECK(options.convergence_tolerance > 0.0, "tolerance must be positive");

    const double total = static_cast<double>(n) * static_cast<double>(n);

    // Working copy of the models; corrections accumulate multiplicatively.
    std::vector<core::SpeedFunction> corrected(models.begin(), models.end());

    IterativeResult best;
    double previous_makespan = std::numeric_limits<double>::infinity();

    for (std::size_t round = 0; round < options.max_rounds; ++round) {
        const auto continuous = partition_fpm(corrected, total, options.fpm);
        const auto blocks =
            round_partition(continuous.partition, n * n, corrected);
        ColumnLayout layout = column_partition(n, blocks.blocks);
        const double makespan = layout_makespan(layout, rect_time);

        if (round == 0 || makespan < best.makespan) {
            best.blocks = blocks;
            best.layout = layout;
            best.makespan = makespan;
        }
        best.rounds = round + 1;

        if (round > 0) {
            const double improvement =
                (previous_makespan - makespan) / previous_makespan;
            if (improvement < options.convergence_tolerance) {
                best.converged = true;
                break;
            }
        }
        previous_makespan = makespan;

        // Fold the observed shape effect of THIS round's layout into the
        // models: if device i ran slower on its actual rectangle than the
        // area model predicted, scale its model down by the observed
        // ratio (clamped, to keep the loop stable).
        for (std::size_t i = 0; i < corrected.size(); ++i) {
            const Rect& rect = layout.rects[i];
            if (rect.area() == 0) {
                continue;
            }
            const double area = static_cast<double>(rect.area());
            const double predicted = corrected[i].time(area);
            if (predicted <= 0.0 || !std::isfinite(predicted)) {
                continue;
            }
            const double actual = rect_time(i, rect);
            const double factor = std::clamp(predicted / actual, 0.5, 2.0);
            corrected[i] = corrected[i].scaled(factor);
        }
    }

    return best;
}

} // namespace fpm::part

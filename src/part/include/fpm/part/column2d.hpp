/// \file column2d.hpp
/// \brief Column-based 2-D matrix partitioning (Clarke et al., ref [17]).
///
/// The application partitions the n x n block matrix over a 2-D
/// arrangement of heterogeneous devices: the matrix is cut into vertical
/// columns, each column is cut into rectangles — one per device — and the
/// area of every rectangle equals the share computed by the 1-D
/// partitioner.  Among all such arrangements the algorithm picks the one
/// minimising the total half-perimeter sum_i (w_i + h_i), which is
/// proportional to the volume of pivot-row/column communication and is
/// minimal when rectangles are "as square as possible" (the paper's
/// phrasing).
///
/// Following Beaumont et al., devices are sorted by area in non-increasing
/// order and an optimal *contiguous* assignment of that order into columns
/// is found by dynamic programming in O(p^2); the result is then rounded
/// to whole blocks with exact-cover guarantees.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fpm/part/integer.hpp"

namespace fpm::part {

/// A device's rectangle in block coordinates: columns [col0, col0 + w) x
/// rows [row0, row0 + h) of the n x n block matrix.
struct Rect {
    std::int64_t col0 = 0;
    std::int64_t row0 = 0;
    std::int64_t w = 0;
    std::int64_t h = 0;

    [[nodiscard]] std::int64_t area() const { return w * h; }
    [[nodiscard]] std::int64_t half_perimeter() const { return w + h; }
};

/// The complete 2-D layout.
struct ColumnLayout {
    std::int64_t n = 0;                        ///< matrix size in blocks
    std::vector<Rect> rects;                   ///< indexed by device
    std::vector<std::vector<std::size_t>> columns;  ///< device ids, top to bottom
    std::vector<std::int64_t> column_widths;

    /// Total half-perimeter of all non-empty rectangles (communication
    /// cost proxy minimised by the algorithm).
    [[nodiscard]] std::int64_t comm_cost() const;

    /// Areas actually assigned after integer rounding.
    [[nodiscard]] std::vector<std::int64_t> actual_areas() const;

    /// Verifies the exact-cover invariant: non-empty rectangles tile the
    /// n x n matrix without overlap.  Throws fpm::LogicError on violation.
    void validate() const;
};

/// Builds the layout for integer areas summing exactly to n*n.  Devices
/// with zero area receive empty rectangles.  Throws fpm::Error when the
/// areas do not sum to n*n.
ColumnLayout column_partition(std::int64_t n, std::span<const std::int64_t> areas);

} // namespace fpm::part

/// \file iterative.hpp
/// \brief Shape-aware iterative 2-D partitioning.
///
/// The 1-D FPM partitioner balances *areas*, but a device's kernel time
/// also depends mildly on the *shape* of its rectangle (a GPU's pivot-row
/// upload and chunk geometry scale with the rectangle's width; the paper
/// leans on the observation that near-square shapes make this negligible).
/// When the column layout hands a device a decidedly non-square rectangle,
/// the area-only balance drifts.
///
/// Following the refinement idea of Clarke et al. (the paper's ref [17]),
/// partition_iterative closes the loop:
///
///   1. partition areas with the FPM algorithm, lay out columns;
///   2. query the true per-device time for the *actual* rectangles;
///   3. fold the deviation into each device's model (multiplicative
///      correction at the assigned size) and repartition;
///   4. stop when the makespan stops improving (or max_rounds).
///
/// The best layout seen across rounds is returned, so the result is never
/// worse than the one-shot area-based partitioning.
#pragma once

#include <functional>

#include "fpm/part/column2d.hpp"
#include "fpm/part/fpm_partitioner.hpp"
#include "fpm/part/integer.hpp"

namespace fpm::part {

/// True execution time of one kernel invocation of device `device` on the
/// rectangle `rect` (seconds).  Must be positive for non-empty rectangles.
using RectTimeFn = std::function<double(std::size_t device, const Rect& rect)>;

/// Options of the refinement loop.
struct IterativeOptions {
    std::size_t max_rounds = 6;
    /// Stop when the relative makespan improvement falls below this.
    double convergence_tolerance = 0.005;
    FpmPartitionOptions fpm{};
};

/// Result of the refinement.
struct IterativeResult {
    IntPartition1D blocks;    ///< best integer partition found
    ColumnLayout layout;      ///< its 2-D layout
    double makespan = 0.0;    ///< true (shape-aware) makespan of `layout`
    std::size_t rounds = 0;   ///< refinement rounds executed
    bool converged = false;   ///< tolerance reached before max_rounds
};

/// Runs the loop; `models` are the area-based FPMs, `rect_time` the
/// shape-aware oracle (simulator or measurement).  Throws fpm::Error on
/// inconsistent inputs.
IterativeResult partition_iterative(std::span<const core::SpeedFunction> models,
                                    std::int64_t n, const RectTimeFn& rect_time,
                                    const IterativeOptions& options = {});

} // namespace fpm::part

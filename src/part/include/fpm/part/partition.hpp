/// \file partition.hpp
/// \brief 1-D data-partition types and the simple partitioners.
///
/// A 1-D partition distributes a total computational workload (matrix
/// area, in blocks) over p devices.  The paper evaluates three families:
///
///  - homogeneous: equal shares (the baseline of Fig. 7);
///  - CPM-based:  shares proportional to constant speeds (refs [1], [2]);
///  - FPM-based:  shares solving x_i / s_i(x_i) = const (refs [5], [6]),
///    implemented in fpm_partitioner.hpp.
#pragma once

#include <span>
#include <vector>

#include "fpm/core/speed_function.hpp"

namespace fpm::part {

/// Continuous 1-D partition: share[i] is the area given to device i.
struct Partition1D {
    std::vector<double> share;

    [[nodiscard]] double total() const;
};

/// Equal distribution of `total` over `devices`.
Partition1D partition_homogeneous(std::size_t devices, double total);

/// Distribution proportional to constant speeds.  Devices with zero speed
/// receive nothing; throws if every speed is zero or any is negative.
Partition1D partition_cpm(std::span<const double> speeds, double total);

/// Parallel completion time of a distribution under the given speed
/// functions: max_i t_i(x_i).  Devices with x_i == 0 cost nothing.
double makespan(std::span<const core::SpeedFunction> models,
                std::span<const double> shares);
double makespan(std::span<const core::SpeedFunction> models,
                std::span<const std::int64_t> shares);

/// Load imbalance of a distribution: (max_i t_i - min over busy i of t_i)
/// divided by max_i t_i; 0 for a perfectly balanced load.
double imbalance(std::span<const core::SpeedFunction> models,
                 std::span<const double> shares);

} // namespace fpm::part

/// \file hierarchical.hpp
/// \brief Two-level (inter-node / intra-node) FPM partitioning.
///
/// The paper's intra-node method descends from the authors' earlier work
/// on heterogeneous multicore *clusters* (ref [6]): there, every node is
/// first characterised by a node-level functional performance model and
/// data is partitioned across nodes, then within each node.  This module
/// implements that hierarchy on top of the 1-D FPM partitioner:
///
///  * aggregate_speed_function() composes the devices of one node into a
///    node-level FPM: the node's speed at size x is x divided by the
///    *balanced* execution time of the optimal intra-node partition of x —
///    i.e. the aggregate is itself built by running the partitioner, so
///    non-linearities of the member devices (a GPU's memory cliff)
///    propagate into the node model;
///  * partition_hierarchical() balances a workload across nodes using the
///    aggregates, then across each node's devices.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "fpm/part/fpm_partitioner.hpp"
#include "fpm/part/integer.hpp"

namespace fpm::part {

/// Options of the aggregate-model construction.
struct AggregateOptions {
    double x_min = 4.0;
    double x_max = 5000.0;
    std::size_t points = 24;
    bool geometric_grid = true;
    FpmPartitionOptions fpm{};
};

/// Builds the node-level FPM of a device group; see file comment.  The
/// aggregate's max_problem is the sum of the members' capacities.
core::SpeedFunction aggregate_speed_function(
    std::span<const core::SpeedFunction> devices, const std::string& name,
    const AggregateOptions& options = {});

/// Result of the two-level partitioning.
struct HierarchicalResult {
    /// Whole blocks per node (sums to the total).
    std::vector<std::int64_t> node_blocks;
    /// Whole blocks per device within each node (each sums to its node's
    /// share).
    std::vector<std::vector<std::int64_t>> device_blocks;
    /// Predicted balanced time of the slowest node.
    double makespan = 0.0;
};

/// Balances `total` whole blocks across nodes and their devices.
/// `node_models[i]` are the device FPMs of node i.  Throws fpm::Error on
/// empty input or insufficient capacity.
HierarchicalResult partition_hierarchical(
    const std::vector<std::vector<core::SpeedFunction>>& node_models,
    std::int64_t total, const AggregateOptions& options = {});

} // namespace fpm::part

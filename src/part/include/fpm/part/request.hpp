/// \file request.hpp
/// \brief The unified partitioning entry point.
///
/// Every consumer of the 1-D partitioners — the CLI tools, the serve
/// subsystem, tests and benches — used to hand-roll the same pipeline
/// (algorithm dispatch → continuous partition → integer rounding →
/// column 2-D layout) and its string→algorithm mapping.  This facade is
/// now the single code path: build a PartitionRequest, call
/// partition(), get a PartitionPlan.  Algorithm and its one
/// to_string()/parse_algorithm() pair live here and nowhere else.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "fpm/core/speed_function.hpp"
#include "fpm/part/column2d.hpp"
#include "fpm/part/fpm_partitioner.hpp"

namespace fpm::part {

/// Partitioning algorithm selector: the paper's FPM, the CPM baseline
/// (each model collapsed to its speed at the even share), and even
/// shares (the homogeneous baseline of Fig. 7).
enum class Algorithm { kFpm, kCpm, kEven };

/// Lower-case wire/CLI name ("fpm", "cpm", "even").
[[nodiscard]] const char* to_string(Algorithm algorithm) noexcept;

/// Inverse of to_string(); nullopt for unknown spellings.
[[nodiscard]] std::optional<Algorithm>
parse_algorithm(std::string_view text) noexcept;

/// One partitioning problem: distribute an n x n block matrix over the
/// devices described by `models`.
struct PartitionRequest {
    std::span<const core::SpeedFunction> models;
    std::int64_t n = 0;  ///< matrix size in blocks (workload = n * n)
    Algorithm algorithm = Algorithm::kFpm;
    bool with_layout = true;  ///< also compute the column 2-D layout
    FpmPartitionOptions options{};  ///< forwarded to the FPM bisection
};

/// The full answer: integer shares plus (optionally) the column-based
/// 2-D layout and the predicted quality metrics.
struct PartitionPlan {
    std::int64_t n = 0;
    Algorithm algorithm = Algorithm::kFpm;
    bool with_layout = true;
    std::vector<std::int64_t> blocks;  ///< per-device block counts
    ColumnLayout layout;        ///< rects empty when !with_layout
    double balanced_time = 0.0; ///< equalised time T (0 for cpm/even)
    double makespan = 0.0;      ///< predicted max_i t_i under the models
    std::int64_t comm_cost = 0; ///< half-perimeter sum (0 without layout)
    std::size_t iterations = 0; ///< FPM bisection steps (0 for cpm/even)
};

/// Runs the full pipeline for `request`.  Throws fpm::Error for n <= 0,
/// an empty model set or an infeasible workload.
[[nodiscard]] PartitionPlan partition(const PartitionRequest& request);

} // namespace fpm::part

/// \file fpm_partitioner.hpp
/// \brief FPM-based geometric data-partitioning (Lastovetsky & Reddy).
///
/// Given speed functions s_1..s_p and a total workload n, the algorithm
/// finds shares x_1..x_p with sum x_i = n such that all devices finish
/// simultaneously: x_i / s_i(x_i) = T for every device with x_i > 0.
/// Geometrically, the solution points (x_i, s_i(x_i)) lie on one straight
/// line through the origin; the algorithm bisects on the execution time T
/// (equivalently, the slope of that line).  Because each device's monotone
/// execution-time envelope x(T) is non-decreasing in T, the total assigned
/// work sum_i x_i(T) is monotone and the bisection converges to any
/// requested tolerance.
///
/// Devices with a finite maximum problem size (a GPU without out-of-core
/// support) simply saturate at that maximum; the algorithm remains correct
/// as long as the total capacity covers n, and throws otherwise.
#pragma once

#include <span>
#include <vector>

#include "fpm/part/partition.hpp"

namespace fpm::part {

/// Options for the geometric bisection.
struct FpmPartitionOptions {
    /// Relative tolerance on the assigned total: |sum x_i - n| <= tol * n.
    double tolerance = 1e-9;
    std::size_t max_iterations = 200;
    /// Grid resolution of the monotone time envelopes.
    std::size_t envelope_samples_per_segment = 8;

    /// Optional fixed per-invocation overhead of each device (seconds):
    /// device i completes x units in c_i + x / s_i(x).  A device whose
    /// overhead alone exceeds the balanced time receives nothing — the
    /// partitioner decides *whether* to use a device, not only how much
    /// to give it (e.g. a GPU whose launch + staging cost dwarfs a tiny
    /// problem).  Empty = no overheads.  Must match the model count when
    /// non-empty.
    std::vector<double> fixed_overheads{};
};

/// Result of the continuous FPM partitioning.
struct FpmPartitionResult {
    Partition1D partition;
    double balanced_time = 0.0;  ///< the equalised execution time T
    std::size_t iterations = 0;  ///< bisection steps used
};

/// Computes the balanced continuous partition.  Throws fpm::Error when the
/// combined capacity of all devices cannot hold `total`.
FpmPartitionResult partition_fpm(std::span<const core::SpeedFunction> models,
                                 double total,
                                 const FpmPartitionOptions& options = {});

} // namespace fpm::part

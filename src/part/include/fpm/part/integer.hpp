/// \file integer.hpp
/// \brief Integer rounding of continuous partitions.
///
/// The application distributes whole b-by-b blocks, so the continuous
/// shares of the partitioners must be rounded to integers that still sum
/// to the total.  Rounding uses the largest-remainder method followed by a
/// local-search refinement that moves single blocks between devices while
/// doing so strictly reduces the makespan under the given speed functions
/// — this absorbs the small imbalance rounding can introduce near a
/// performance cliff.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fpm/part/partition.hpp"

namespace fpm::part {

/// Integer 1-D partition: blocks[i] whole blocks for device i.
struct IntPartition1D {
    std::vector<std::int64_t> blocks;

    [[nodiscard]] std::int64_t total() const;
};

/// Largest-remainder rounding: preserves the sum exactly and each device's
/// count differs from its continuous share by less than 1.
IntPartition1D round_largest_remainder(const Partition1D& partition,
                                       std::int64_t total);

/// Rounding plus makespan-reducing local search under `models`.  Devices
/// never exceed their max_problem(); throws if the continuous partition
/// already violates capacity.
IntPartition1D round_partition(const Partition1D& partition, std::int64_t total,
                               std::span<const core::SpeedFunction> models,
                               std::size_t max_moves = 256);

} // namespace fpm::part

#include "fpm/part/fpm_partitioner.hpp"

#include <algorithm>
#include <cmath>

#include "fpm/common/error.hpp"
#include "fpm/obs/metrics.hpp"
#include "fpm/obs/trace.hpp"

namespace fpm::part {

namespace {

struct FpmMetrics {
    obs::Counter& calls;
    obs::Counter& iterations;
    obs::Counter& unconverged;
    obs::Histogram& iterations_per_call;

    static const FpmMetrics& get() {
        static auto& registry = obs::MetricsRegistry::global();
        static const FpmMetrics metrics{
            registry.counter("part.fpm.calls"),
            registry.counter("part.fpm.iterations"),
            registry.counter("part.fpm.unconverged"),
            registry.histogram("part.fpm.iterations_per_call")};
        return metrics;
    }
};

} // namespace

FpmPartitionResult partition_fpm(std::span<const core::SpeedFunction> models,
                                 double total,
                                 const FpmPartitionOptions& options) {
    obs::Span span("part.fpm_partition",
                   static_cast<std::uint64_t>(std::max(total, 0.0)));
    FPM_CHECK(!models.empty(), "need at least one device");
    FPM_CHECK(total >= 0.0, "total workload must be non-negative");
    FPM_CHECK(options.tolerance > 0.0, "tolerance must be positive");
    FPM_CHECK(options.max_iterations >= 1, "need at least one iteration");
    FPM_CHECK(options.fixed_overheads.empty() ||
                  options.fixed_overheads.size() == models.size(),
              "fixed_overheads must be empty or match the model count");
    for (const double overhead : options.fixed_overheads) {
        FPM_CHECK(overhead >= 0.0, "overheads must be non-negative");
    }
    auto overhead_of = [&](std::size_t i) {
        return options.fixed_overheads.empty() ? 0.0
                                               : options.fixed_overheads[i];
    };

    const std::size_t p = models.size();
    FpmPartitionResult result;
    result.partition.share.assign(p, 0.0);
    if (total == 0.0) {
        return result;
    }

    // Monotone execution-time envelopes, one per device.
    std::vector<core::MonotoneTime> envelopes;
    envelopes.reserve(p);
    double capacity = 0.0;
    for (const auto& model : models) {
        envelopes.emplace_back(model, options.envelope_samples_per_segment);
        capacity += envelopes.back().max_problem();
    }
    FPM_CHECK(capacity >= total,
              "combined device capacity cannot hold the requested workload");

    // A device with fixed overhead c solves x units in c + t_env(x): its
    // share at deadline T is x(max(0, T - c)); a device whose overhead
    // alone exceeds T stays idle.
    auto assigned_at = [&](double t) {
        double sum = 0.0;
        for (std::size_t i = 0; i < envelopes.size(); ++i) {
            const double budget = t - overhead_of(i);
            if (budget > 0.0) {
                sum += envelopes[i].invert(budget);
            }
        }
        return sum;
    };

    // Bracket the balanced time T.  An upper bound: the fastest single
    // device running everything it can hold; grow geometrically until the
    // assignment covers the total.
    double lo = 0.0;
    double hi = 0.0;
    for (std::size_t i = 0; i < models.size(); ++i) {
        const double probe = std::min(total, envelopes[i].max_problem());
        if (probe > 0.0) {
            const double t = models[i].time(probe) + overhead_of(i);
            if (std::isfinite(t)) {
                hi = std::max(hi, t);
            }
        }
    }
    if (hi == 0.0) {
        hi = 1.0;
    }
    std::size_t guard = 0;
    while (assigned_at(hi) < total && guard++ < 128) {
        hi *= 2.0;
    }
    FPM_CHECK(assigned_at(hi) >= total,
              "could not bracket the balanced execution time");

    // Bisection on T; sum_i x_i(T) is monotone non-decreasing.
    double assigned = 0.0;
    bool converged = false;
    for (std::size_t it = 0; it < options.max_iterations; ++it) {
        const double mid = 0.5 * (lo + hi);
        assigned = assigned_at(mid);
        result.iterations = it + 1;
        if (std::fabs(assigned - total) <= options.tolerance * total) {
            hi = mid;
            converged = true;
            break;
        }
        if (assigned < total) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    const FpmMetrics& metrics = FpmMetrics::get();
    metrics.calls.add();
    metrics.iterations.add(result.iterations);
    metrics.iterations_per_call.record(
        static_cast<double>(result.iterations));
    if (!converged) {
        metrics.unconverged.add();
    }

    result.balanced_time = hi;
    double sum = 0.0;
    for (std::size_t i = 0; i < p; ++i) {
        const double budget = hi - overhead_of(i);
        result.partition.share[i] = budget > 0.0 ? envelopes[i].invert(budget)
                                                 : 0.0;
        sum += result.partition.share[i];
    }

    // Normalise the residual rounding of the bisection onto unbounded
    // devices proportionally, so the shares add up to the total exactly.
    if (sum > 0.0) {
        const double scale = total / sum;
        double rescaled = 0.0;
        for (std::size_t i = 0; i < p; ++i) {
            double share = result.partition.share[i] * scale;
            share = std::min(share, envelopes[i].max_problem());
            result.partition.share[i] = share;
            rescaled += share;
        }
        // Any capacity clamping leftovers go to the first device that can
        // take them.
        double leftover = total - rescaled;
        for (std::size_t i = 0; i < p && leftover > 1e-12; ++i) {
            const double room =
                envelopes[i].max_problem() - result.partition.share[i];
            const double take = std::min(room, leftover);
            result.partition.share[i] += take;
            leftover -= take;
        }
    }

    return result;
}

} // namespace fpm::part

#include "fpm/part/integer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "fpm/common/error.hpp"

namespace fpm::part {

std::int64_t IntPartition1D::total() const {
    return std::accumulate(blocks.begin(), blocks.end(), std::int64_t{0});
}

IntPartition1D round_largest_remainder(const Partition1D& partition,
                                       std::int64_t total) {
    FPM_CHECK(!partition.share.empty(), "empty partition");
    FPM_CHECK(total >= 0, "total must be non-negative");

    const std::size_t p = partition.share.size();
    IntPartition1D result;
    result.blocks.assign(p, 0);

    std::int64_t assigned = 0;
    std::vector<std::pair<double, std::size_t>> remainders;
    remainders.reserve(p);
    for (std::size_t i = 0; i < p; ++i) {
        FPM_CHECK(partition.share[i] >= 0.0, "shares must be non-negative");
        const double floor_value = std::floor(partition.share[i]);
        result.blocks[i] = static_cast<std::int64_t>(floor_value);
        assigned += result.blocks[i];
        remainders.emplace_back(partition.share[i] - floor_value, i);
    }

    std::int64_t leftover = total - assigned;
    FPM_CHECK(leftover >= 0, "continuous shares exceed the integer total");
    FPM_CHECK(leftover <= static_cast<std::int64_t>(p),
              "continuous shares fall short of the integer total by more "
              "than one block per device; the partition does not sum to "
              "the total");

    std::sort(remainders.begin(), remainders.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (std::int64_t k = 0; k < leftover; ++k) {
        result.blocks[remainders[static_cast<std::size_t>(k)].second] += 1;
    }
    return result;
}

IntPartition1D round_partition(const Partition1D& partition, std::int64_t total,
                               std::span<const core::SpeedFunction> models,
                               std::size_t max_moves) {
    FPM_CHECK(models.size() == partition.share.size(),
              "models and partition must have equal length");
    IntPartition1D result = round_largest_remainder(partition, total);
    const std::size_t p = result.blocks.size();

    // Repair any capacity violations introduced by remainder assignment.
    auto capacity = [&](std::size_t i) {
        return models[i].max_problem();
    };
    for (std::size_t i = 0; i < p; ++i) {
        while (static_cast<double>(result.blocks[i]) > capacity(i)) {
            // Move one block to the device with the most headroom.
            std::size_t best = p;
            double best_room = 0.0;
            for (std::size_t j = 0; j < p; ++j) {
                const double room =
                    capacity(j) - static_cast<double>(result.blocks[j]);
                if (j != i && room > best_room) {
                    best_room = room;
                    best = j;
                }
            }
            FPM_CHECK(best < p && best_room >= 1.0,
                      "no device has room for the capacity overflow");
            result.blocks[i] -= 1;
            result.blocks[best] += 1;
        }
    }

    // Local search: repeatedly move one block from the straggler to the
    // device whose time grows least, while the makespan strictly improves.
    auto device_time = [&](std::size_t i, std::int64_t blocks) {
        return models[i].time(static_cast<double>(blocks));
    };
    for (std::size_t move = 0; move < max_moves; ++move) {
        // Find the straggler.
        std::size_t worst = p;
        double worst_time = 0.0;
        for (std::size_t i = 0; i < p; ++i) {
            if (result.blocks[i] > 0) {
                const double t = device_time(i, result.blocks[i]);
                if (t > worst_time) {
                    worst_time = t;
                    worst = i;
                }
            }
        }
        if (worst == p) {
            break;
        }

        // Best receiver: minimises its own new time, must stay below the
        // straggler's current time and within capacity.
        std::size_t receiver = p;
        double receiver_time = worst_time;
        for (std::size_t j = 0; j < p; ++j) {
            if (j == worst) {
                continue;
            }
            if (static_cast<double>(result.blocks[j] + 1) > capacity(j)) {
                continue;
            }
            const double t = device_time(j, result.blocks[j] + 1);
            if (t < receiver_time) {
                receiver_time = t;
                receiver = j;
            }
        }
        if (receiver == p) {
            break;  // no strictly improving move exists
        }

        // The move must actually reduce the makespan: the straggler's time
        // shrinks and the receiver stays below the old makespan.
        result.blocks[worst] -= 1;
        result.blocks[receiver] += 1;
        const double new_makespan =
            makespan(models, std::span<const std::int64_t>(result.blocks));
        if (new_makespan >= worst_time) {
            result.blocks[worst] += 1;
            result.blocks[receiver] -= 1;
            break;
        }
    }

    return result;
}

} // namespace fpm::part

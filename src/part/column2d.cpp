#include "fpm/part/column2d.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "fpm/common/error.hpp"

namespace fpm::part {

std::int64_t ColumnLayout::comm_cost() const {
    std::int64_t cost = 0;
    for (const auto& rect : rects) {
        if (rect.area() > 0) {
            cost += rect.half_perimeter();
        }
    }
    return cost;
}

std::vector<std::int64_t> ColumnLayout::actual_areas() const {
    std::vector<std::int64_t> areas;
    areas.reserve(rects.size());
    for (const auto& rect : rects) {
        areas.push_back(rect.area());
    }
    return areas;
}

void ColumnLayout::validate() const {
    std::int64_t covered = 0;
    for (const auto& rect : rects) {
        FPM_ASSERT(rect.w >= 0 && rect.h >= 0);
        if (rect.area() == 0) {
            continue;
        }
        FPM_ASSERT(rect.col0 >= 0 && rect.row0 >= 0);
        FPM_ASSERT(rect.col0 + rect.w <= n);
        FPM_ASSERT(rect.row0 + rect.h <= n);
        covered += rect.area();
    }
    FPM_ASSERT(covered == n * n);

    // Pairwise disjointness of non-empty rectangles.
    for (std::size_t i = 0; i < rects.size(); ++i) {
        if (rects[i].area() == 0) {
            continue;
        }
        for (std::size_t j = i + 1; j < rects.size(); ++j) {
            if (rects[j].area() == 0) {
                continue;
            }
            const bool disjoint_cols = rects[i].col0 + rects[i].w <= rects[j].col0 ||
                                       rects[j].col0 + rects[j].w <= rects[i].col0;
            const bool disjoint_rows = rects[i].row0 + rects[i].h <= rects[j].row0 ||
                                       rects[j].row0 + rects[j].h <= rects[i].row0;
            FPM_ASSERT(disjoint_cols || disjoint_rows);
        }
    }
}

namespace {

/// Largest-remainder split of `total` into parts proportional to weights;
/// every positive-weight part gets at least `minimum` (stolen from the
/// largest parts), provided total >= minimum * positive_weights.
std::vector<std::int64_t> proportional_split(std::span<const double> weights,
                                             std::int64_t total,
                                             std::int64_t minimum) {
    const double weight_sum = std::accumulate(weights.begin(), weights.end(), 0.0);
    FPM_CHECK(weight_sum > 0.0, "proportional split needs positive weight");

    const std::size_t p = weights.size();
    std::vector<std::int64_t> parts(p, 0);
    std::vector<std::pair<double, std::size_t>> remainders;
    std::int64_t assigned = 0;
    for (std::size_t i = 0; i < p; ++i) {
        const double exact =
            static_cast<double>(total) * weights[i] / weight_sum;
        parts[i] = static_cast<std::int64_t>(std::floor(exact));
        assigned += parts[i];
        remainders.emplace_back(exact - std::floor(exact), i);
    }
    std::sort(remainders.begin(), remainders.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (std::int64_t k = 0; k < total - assigned; ++k) {
        parts[remainders[static_cast<std::size_t>(k)].second] += 1;
    }

    // Enforce the minimum for positive weights.
    for (std::size_t i = 0; i < p; ++i) {
        while (weights[i] > 0.0 && parts[i] < minimum) {
            std::size_t donor = p;
            std::int64_t donor_size = minimum;
            for (std::size_t j = 0; j < p; ++j) {
                if (j != i && parts[j] > donor_size) {
                    donor_size = parts[j];
                    donor = j;
                }
            }
            FPM_CHECK(donor < p, "cannot satisfy the minimum part size");
            parts[donor] -= 1;
            parts[i] += 1;
        }
    }
    return parts;
}

} // namespace

ColumnLayout column_partition(std::int64_t n, std::span<const std::int64_t> areas) {
    FPM_CHECK(n >= 1, "matrix size must be positive");
    FPM_CHECK(!areas.empty(), "need at least one device");
    std::int64_t total = 0;
    for (const auto a : areas) {
        FPM_CHECK(a >= 0, "areas must be non-negative");
        total += a;
    }
    FPM_CHECK(total == n * n, "areas must sum exactly to n*n");

    ColumnLayout layout;
    layout.n = n;
    layout.rects.assign(areas.size(), Rect{});

    // Active devices, sorted by area in non-increasing order (Beaumont's
    // contiguity property holds for this order).
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < areas.size(); ++i) {
        if (areas[i] > 0) {
            order.push_back(i);
        }
    }
    FPM_CHECK(!order.empty(), "all areas are zero");
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return areas[a] > areas[b];
    });

    const std::size_t m = order.size();
    const double nf = static_cast<double>(n);

    // Prefix sums of sorted areas for O(1) segment sums.
    std::vector<double> prefix(m + 1, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
        prefix[i + 1] = prefix[i] + static_cast<double>(areas[order[i]]);
    }

    // DP over suffixes: best[i] = minimal half-perimeter cost of laying
    // out sorted devices i..m-1; a column of devices [i, j) of summed area
    // S has width S/n and costs (j - i) * S / n (widths) + n (heights).
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> best(m + 1, kInf);
    std::vector<std::size_t> next(m + 1, m);
    best[m] = 0.0;
    for (std::size_t i = m; i-- > 0;) {
        for (std::size_t j = i + 1; j <= m; ++j) {
            if (static_cast<std::int64_t>(j - i) > n) {
                break;  // a column cannot host more devices than rows
            }
            const double width = (prefix[j] - prefix[i]) / nf;
            const double cost =
                static_cast<double>(j - i) * width + nf + best[j];
            if (cost < best[i]) {
                best[i] = cost;
                next[i] = j;
            }
        }
    }
    FPM_CHECK(std::isfinite(best[0]),
              "no feasible column arrangement (more devices than blocks?)");

    // Recover the column segments.
    std::vector<std::pair<std::size_t, std::size_t>> segments;
    for (std::size_t i = 0; i < m; i = next[i]) {
        segments.emplace_back(i, next[i]);
    }

    // Integer column widths proportional to column areas.
    std::vector<double> column_area;
    column_area.reserve(segments.size());
    for (const auto& [b, e] : segments) {
        column_area.push_back(prefix[e] - prefix[b]);
    }
    layout.column_widths = proportional_split(column_area, n, /*minimum=*/1);

    // Lay out each column: heights proportional to device areas.
    std::int64_t col0 = 0;
    for (std::size_t c = 0; c < segments.size(); ++c) {
        const auto [b, e] = segments[c];
        const std::int64_t width = layout.column_widths[c];

        std::vector<double> weights;
        weights.reserve(e - b);
        for (std::size_t k = b; k < e; ++k) {
            weights.push_back(static_cast<double>(areas[order[k]]));
        }
        const std::vector<std::int64_t> heights =
            proportional_split(weights, n, /*minimum=*/1);

        std::int64_t row0 = 0;
        std::vector<std::size_t> column_devices;
        for (std::size_t k = b; k < e; ++k) {
            const std::size_t device = order[k];
            Rect rect;
            rect.col0 = col0;
            rect.row0 = row0;
            rect.w = width;
            rect.h = heights[k - b];
            layout.rects[device] = rect;
            row0 += rect.h;
            column_devices.push_back(device);
        }
        FPM_ASSERT(row0 == n);
        layout.columns.push_back(std::move(column_devices));
        col0 += width;
    }
    FPM_ASSERT(col0 == n);

    layout.validate();
    return layout;
}

} // namespace fpm::part

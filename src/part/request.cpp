#include "fpm/part/request.hpp"

#include <algorithm>

#include "fpm/common/error.hpp"
#include "fpm/obs/trace.hpp"
#include "fpm/part/integer.hpp"
#include "fpm/part/partition.hpp"

namespace fpm::part {

const char* to_string(Algorithm algorithm) noexcept {
    switch (algorithm) {
    case Algorithm::kFpm:
        return "fpm";
    case Algorithm::kCpm:
        return "cpm";
    case Algorithm::kEven:
        return "even";
    }
    return "?";
}

std::optional<Algorithm> parse_algorithm(std::string_view text) noexcept {
    if (text == "fpm") {
        return Algorithm::kFpm;
    }
    if (text == "cpm") {
        return Algorithm::kCpm;
    }
    if (text == "even") {
        return Algorithm::kEven;
    }
    return std::nullopt;
}

PartitionPlan partition(const PartitionRequest& request) {
    obs::Span span("part.partition", static_cast<std::uint64_t>(request.n));
    FPM_CHECK(request.n > 0, "workload size must be positive");
    FPM_CHECK(!request.models.empty(), "need at least one device");
    const auto& models = request.models;
    const double total =
        static_cast<double>(request.n) * static_cast<double>(request.n);

    Partition1D continuous;
    PartitionPlan plan;
    plan.n = request.n;
    plan.algorithm = request.algorithm;
    plan.with_layout = request.with_layout;
    switch (request.algorithm) {
    case Algorithm::kFpm: {
        auto result = partition_fpm(models, total, request.options);
        continuous = std::move(result.partition);
        plan.balanced_time = result.balanced_time;
        plan.iterations = result.iterations;
        break;
    }
    case Algorithm::kCpm: {
        // The traditional baseline: each model collapses to its speed at
        // the even share.
        std::vector<double> speeds;
        speeds.reserve(models.size());
        const double share = total / static_cast<double>(models.size());
        for (const auto& model : models) {
            speeds.push_back(model.speed(std::min(share, model.max_problem())));
        }
        continuous = partition_cpm(speeds, total);
        break;
    }
    case Algorithm::kEven:
        continuous = partition_homogeneous(models.size(), total);
        break;
    }

    auto rounded = round_partition(continuous, request.n * request.n, models);
    plan.makespan =
        makespan(models, std::span<const std::int64_t>(rounded.blocks));
    if (request.with_layout) {
        plan.layout = column_partition(request.n, rounded.blocks);
        plan.comm_cost = plan.layout.comm_cost();
    }
    plan.blocks = std::move(rounded.blocks);
    return plan;
}

} // namespace fpm::part

#include "fpm/part/hierarchical.hpp"

#include <algorithm>
#include <cmath>

#include "fpm/common/error.hpp"
#include "fpm/common/math.hpp"

namespace fpm::part {

core::SpeedFunction aggregate_speed_function(
    std::span<const core::SpeedFunction> devices, const std::string& name,
    const AggregateOptions& options) {
    FPM_CHECK(!devices.empty(), "need at least one device");
    FPM_CHECK(options.x_min > 0.0 && options.x_max > options.x_min,
              "invalid aggregate range");
    FPM_CHECK(options.points >= 2, "need at least two aggregate points");

    // Combined capacity bounds both the sampling range and the aggregate's
    // own max_problem.
    double capacity = 0.0;
    for (const auto& device : devices) {
        capacity += device.max_problem();
        if (std::isinf(capacity)) {
            capacity = std::numeric_limits<double>::infinity();
            break;
        }
    }
    const double x_max = std::min(options.x_max, capacity);
    FPM_CHECK(x_max > options.x_min,
              "node capacity below the aggregate sampling range");

    std::vector<core::SpeedPoint> points;
    points.reserve(options.points);
    for (std::size_t i = 0; i < options.points; ++i) {
        const double f =
            static_cast<double>(i) / static_cast<double>(options.points - 1);
        const double x = options.geometric_grid
                             ? options.x_min *
                                   std::pow(x_max / options.x_min, f)
                             : lerp(options.x_min, x_max, f);
        const auto balanced = partition_fpm(devices, x, options.fpm);
        FPM_CHECK(balanced.balanced_time > 0.0,
                  "degenerate balanced time in aggregate construction");
        points.push_back(core::SpeedPoint{x, x / balanced.balanced_time});
    }
    // Guard against duplicate x from tight geometric grids.
    points.erase(std::unique(points.begin(), points.end(),
                             [](const auto& a, const auto& b) {
                                 return std::fabs(a.x - b.x) < 1e-9;
                             }),
                 points.end());
    return core::SpeedFunction(std::move(points), name, capacity);
}

HierarchicalResult partition_hierarchical(
    const std::vector<std::vector<core::SpeedFunction>>& node_models,
    std::int64_t total, const AggregateOptions& options) {
    FPM_CHECK(!node_models.empty(), "need at least one node");
    FPM_CHECK(total >= 0, "total must be non-negative");

    const std::size_t nodes = node_models.size();

    // Level 1: aggregate per-node models, partition across nodes.
    std::vector<core::SpeedFunction> aggregates;
    aggregates.reserve(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
        FPM_CHECK(!node_models[i].empty(), "node without devices");
        aggregates.push_back(aggregate_speed_function(
            node_models[i], "node" + std::to_string(i), options));
    }
    const auto inter = partition_fpm(aggregates, static_cast<double>(total),
                                     options.fpm);
    const auto node_blocks =
        round_partition(inter.partition, total, aggregates);

    // Level 2: partition each node's share across its devices.
    HierarchicalResult result;
    result.node_blocks = node_blocks.blocks;
    result.device_blocks.resize(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
        const std::int64_t share = node_blocks.blocks[i];
        if (share == 0) {
            result.device_blocks[i].assign(node_models[i].size(), 0);
            continue;
        }
        const auto intra = partition_fpm(node_models[i],
                                         static_cast<double>(share),
                                         options.fpm);
        result.device_blocks[i] =
            round_partition(intra.partition, share, node_models[i]).blocks;
        result.makespan = std::max(
            result.makespan,
            makespan(node_models[i],
                     std::span<const std::int64_t>(result.device_blocks[i])));
    }
    return result;
}

} // namespace fpm::part

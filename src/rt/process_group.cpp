#include "fpm/rt/process_group.hpp"

#include <algorithm>
#include <mutex>
#include <thread>

namespace fpm::rt {

std::size_t ProcessContext::size() const noexcept {
    return group_.size_;
}

void ProcessContext::barrier() {
    group_.barrier_.arrive_and_wait();
}

double ProcessContext::broadcast(double value, std::size_t root) {
    FPM_CHECK(root < group_.size_, "broadcast root out of range");
    if (rank_ == root) {
        group_.slots_[root] = value;
    }
    group_.barrier_.arrive_and_wait();  // publish
    const double result = group_.slots_[root];
    group_.barrier_.arrive_and_wait();  // consume before the next round
    return result;
}

double ProcessContext::all_reduce_max(double value) {
    group_.slots_[rank_] = value;
    group_.barrier_.arrive_and_wait();
    const double result =
        *std::max_element(group_.slots_.begin(), group_.slots_.end());
    group_.barrier_.arrive_and_wait();
    return result;
}

void ProcessContext::bind_to_core(unsigned core) {
    group_.bindings_[rank_] = static_cast<int>(core);
}

int ProcessContext::bound_core() const {
    return group_.bindings_[rank_];
}

ProcessGroup::ProcessGroup(std::size_t processes)
    : size_(processes), barrier_(processes), slots_(processes, 0.0),
      bindings_(processes, -1) {
    FPM_CHECK(processes >= 1, "process group needs at least one process");
}

void ProcessGroup::run(const std::function<void(ProcessContext&)>& fn) {
    FPM_CHECK(static_cast<bool>(fn), "process group needs a callable");
    std::vector<std::thread> threads;
    threads.reserve(size_);
    std::exception_ptr first_error;
    std::mutex error_mutex;

    for (std::size_t rank = 0; rank < size_; ++rank) {
        threads.emplace_back([this, rank, &fn, &first_error, &error_mutex]() {
            ProcessContext context(*this, rank);
            try {
                fn(context);
            } catch (...) {
                std::lock_guard lock(error_mutex);
                if (!first_error) {
                    first_error = std::current_exception();
                }
            }
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    if (first_error) {
        std::rethrow_exception(first_error);
    }
}

} // namespace fpm::rt

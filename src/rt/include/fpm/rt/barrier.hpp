/// \file barrier.hpp
/// \brief Reusable cyclic barrier.
///
/// The paper's measurement methodology synchronises processes "to minimise
/// the idle computational cycles" and to maximise resource-sharing
/// pressure during group benchmarks; Barrier is that synchronisation
/// point for the in-process SPMD runtime.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "fpm/common/error.hpp"

namespace fpm::rt {

/// Classic generation-counting cyclic barrier.
class Barrier {
public:
    explicit Barrier(std::size_t parties) : parties_(parties), waiting_(0) {
        FPM_CHECK(parties >= 1, "barrier needs at least one party");
    }

    Barrier(const Barrier&) = delete;
    Barrier& operator=(const Barrier&) = delete;

    /// Blocks until all parties arrive; reusable across rounds.
    void arrive_and_wait() {
        std::unique_lock lock(mutex_);
        const std::size_t my_generation = generation_;
        if (++waiting_ == parties_) {
            waiting_ = 0;
            ++generation_;
            cv_.notify_all();
            return;
        }
        cv_.wait(lock, [&]() { return generation_ != my_generation; });
    }

    [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

private:
    const std::size_t parties_;
    std::size_t waiting_;
    std::size_t generation_ = 0;
    std::mutex mutex_;
    std::condition_variable cv_;
};

} // namespace fpm::rt

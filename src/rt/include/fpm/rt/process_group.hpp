/// \file process_group.hpp
/// \brief SPMD "process group" over threads, MPI-style.
///
/// The paper treats the hybrid node as a distributed-memory system with
/// one process per device, bound to cores.  ProcessGroup reproduces that
/// programming model in-process: run() launches p ranks executing the
/// same function, each with a ProcessContext giving rank/size, a group
/// barrier, broadcast, and an all-reduce(max) — the collectives the
/// column-based matrix multiplication needs.
#pragma once

#include <any>
#include <functional>
#include <vector>

#include "fpm/rt/barrier.hpp"

namespace fpm::rt {

class ProcessGroup;

/// Per-rank handle passed to the SPMD function.
class ProcessContext {
public:
    ProcessContext(ProcessGroup& group, std::size_t rank)
        : group_(group), rank_(rank) {}

    [[nodiscard]] std::size_t rank() const noexcept { return rank_; }
    [[nodiscard]] std::size_t size() const noexcept;

    /// Group-wide synchronisation point.
    void barrier();

    /// Broadcast `value` from `root`; every rank receives root's value.
    /// All ranks must call with the same root within the same round.
    double broadcast(double value, std::size_t root);

    /// All-reduce maximum across ranks.
    double all_reduce_max(double value);

    /// Records which core this rank is bound to (bookkeeping that mirrors
    /// the paper's process binding; on a real deployment this would call
    /// pthread_setaffinity_np).
    void bind_to_core(unsigned core);
    [[nodiscard]] int bound_core() const;

private:
    ProcessGroup& group_;
    std::size_t rank_;
};

/// See file comment.
class ProcessGroup {
public:
    explicit ProcessGroup(std::size_t processes);

    [[nodiscard]] std::size_t size() const noexcept { return size_; }

    /// Runs fn(context) on `size` concurrent ranks and joins them all.
    /// The first exception (if any) is rethrown after the join.
    void run(const std::function<void(ProcessContext&)>& fn);

private:
    friend class ProcessContext;

    std::size_t size_;
    Barrier barrier_;
    std::vector<double> slots_;
    std::vector<int> bindings_;
};

} // namespace fpm::rt

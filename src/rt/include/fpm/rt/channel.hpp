/// \file channel.hpp
/// \brief Bounded blocking MPMC channel.
///
/// Message-passing primitive of the in-process runtime; processes exchange
/// pivot metadata and results through channels in the examples and tests
/// (the data itself stays in shared memory, as on a real hybrid node).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "fpm/common/error.hpp"

namespace fpm::rt {

/// Bounded blocking multi-producer/multi-consumer queue.  close() wakes
/// all blocked receivers; receiving from a closed, drained channel yields
/// std::nullopt.
template <typename T>
class Channel {
public:
    explicit Channel(std::size_t capacity = 64) : capacity_(capacity) {
        FPM_CHECK(capacity >= 1, "channel capacity must be positive");
    }

    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    /// Blocks while full; throws if the channel was closed.
    void send(T value) {
        std::unique_lock lock(mutex_);
        not_full_.wait(lock, [&]() { return closed_ || queue_.size() < capacity_; });
        FPM_CHECK(!closed_, "send on a closed channel");
        queue_.push_back(std::move(value));
        not_empty_.notify_one();
    }

    /// Blocks while empty; std::nullopt once closed and drained.
    std::optional<T> receive() {
        std::unique_lock lock(mutex_);
        not_empty_.wait(lock, [&]() { return closed_ || !queue_.empty(); });
        if (queue_.empty()) {
            return std::nullopt;
        }
        T value = std::move(queue_.front());
        queue_.pop_front();
        not_full_.notify_one();
        return value;
    }

    /// Non-blocking receive.
    std::optional<T> try_receive() {
        std::lock_guard lock(mutex_);
        if (queue_.empty()) {
            return std::nullopt;
        }
        T value = std::move(queue_.front());
        queue_.pop_front();
        not_full_.notify_one();
        return value;
    }

    void close() {
        {
            std::lock_guard lock(mutex_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    [[nodiscard]] bool closed() const {
        std::lock_guard lock(mutex_);
        return closed_;
    }

private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> queue_;
    bool closed_ = false;
};

} // namespace fpm::rt

/// \file thread_pool.hpp
/// \brief Fixed-size worker pool with future-returning submission.
///
/// The hybrid node runs one "process" per device (paper section III);
/// in-process we realise them as pool workers.  The pool also provides
/// parallel_for, used by examples and tests for data-parallel sweeps.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "fpm/common/error.hpp"

namespace fpm::rt {

/// See file comment.
class ThreadPool {
public:
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] unsigned size() const noexcept { return workers_count_; }

    /// Schedules `fn` on a worker; the future resolves to its result (or
    /// rethrows its exception).
    template <typename Fn>
    auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
        using Result = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

    /// Runs fn(i) for i in [begin, end) across the pool and waits.
    /// Exceptions from iterations are rethrown (first one wins).
    void parallel_for(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)>& fn);

private:
    /// A queued task plus its enqueue timestamp, so the pool can report
    /// queue-wait time separately from task execution time.
    struct Job {
        std::function<void()> fn;
        std::uint64_t enqueued_ns = 0;
    };

    void enqueue(std::function<void()> job);
    void worker_loop();

    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Job> queue_;
    std::vector<std::thread> workers_;
    unsigned workers_count_ = 0;
    bool stopping_ = false;
};

} // namespace fpm::rt

#include "fpm/rt/thread_pool.hpp"

#include <atomic>

namespace fpm::rt {

ThreadPool::ThreadPool(unsigned threads) : workers_count_(threads) {
    FPM_CHECK(threads >= 1, "thread pool needs at least one worker");
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        workers_.emplace_back([this]() { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void ThreadPool::enqueue(std::function<void()> job) {
    {
        std::lock_guard lock(mutex_);
        FPM_CHECK(!stopping_, "cannot submit to a stopping pool");
        queue_.push_back(std::move(job));
    }
    cv_.notify_one();
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock lock(mutex_);
            cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                return;  // stopping and drained
            }
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
    }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
    FPM_CHECK(static_cast<bool>(fn), "parallel_for needs a callable");
    if (begin >= end) {
        return;
    }
    std::atomic<std::size_t> cursor{begin};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    const std::size_t chunk_workers =
        std::min<std::size_t>(workers_count_, end - begin);
    std::vector<std::future<void>> futures;
    futures.reserve(chunk_workers);
    for (std::size_t w = 0; w < chunk_workers; ++w) {
        futures.push_back(submit([&]() {
            for (;;) {
                const std::size_t i = cursor.fetch_add(1);
                if (i >= end) {
                    return;
                }
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard lock(error_mutex);
                    if (!first_error) {
                        first_error = std::current_exception();
                    }
                }
            }
        }));
    }
    for (auto& future : futures) {
        future.get();
    }
    if (first_error) {
        std::rethrow_exception(first_error);
    }
}

} // namespace fpm::rt

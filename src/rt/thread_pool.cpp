#include "fpm/rt/thread_pool.hpp"

#include <atomic>

#include "fpm/fault/fault.hpp"
#include "fpm/obs/metrics.hpp"
#include "fpm/obs/trace.hpp"

namespace fpm::rt {

namespace {

struct PoolMetrics {
    obs::Gauge& queue_depth;
    obs::Histogram& queue_wait;
    obs::Histogram& task_seconds;

    static const PoolMetrics& get() {
        static auto& registry = obs::MetricsRegistry::global();
        static const PoolMetrics metrics{
            registry.gauge("rt.pool.queue_depth"),
            registry.histogram("rt.pool.queue_wait_seconds"),
            registry.histogram("rt.pool.task_seconds")};
        return metrics;
    }
};

} // namespace

ThreadPool::ThreadPool(unsigned threads) : workers_count_(threads) {
    FPM_CHECK(threads >= 1, "thread pool needs at least one worker");
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        workers_.emplace_back([this]() { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void ThreadPool::enqueue(std::function<void()> job) {
    const PoolMetrics& metrics = PoolMetrics::get();
    {
        std::lock_guard lock(mutex_);
        FPM_CHECK(!stopping_, "cannot submit to a stopping pool");
        queue_.push_back(Job{std::move(job), obs::detail::now_ns()});
        metrics.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
    }
    cv_.notify_one();
}

void ThreadPool::worker_loop() {
    const PoolMetrics& metrics = PoolMetrics::get();
    for (;;) {
        Job job;
        {
            std::unique_lock lock(mutex_);
            cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                return;  // stopping and drained
            }
            job = std::move(queue_.front());
            queue_.pop_front();
            metrics.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
        }
        const std::uint64_t start_ns = obs::detail::now_ns();
        metrics.queue_wait.record(
            static_cast<double>(start_ns - job.enqueued_ns) * 1e-9);
        // Dispatch injection: a delay rule stalls the worker before the
        // job (simulating scheduler pressure).  The job always runs —
        // dropping it would break the promise behind submit() — so a
        // fail rule only counts, which the fault docs call out.
        static auto& dispatch_fault = fault::point("rt.dispatch");
        (void)dispatch_fault.fire();
        {
            obs::Span span("rt.task");
            job.fn();
        }
        metrics.task_seconds.record(
            static_cast<double>(obs::detail::now_ns() - start_ns) * 1e-9);
    }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
    FPM_CHECK(static_cast<bool>(fn), "parallel_for needs a callable");
    if (begin >= end) {
        return;
    }
    std::atomic<std::size_t> cursor{begin};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    const std::size_t chunk_workers =
        std::min<std::size_t>(workers_count_, end - begin);
    std::vector<std::future<void>> futures;
    futures.reserve(chunk_workers);
    for (std::size_t w = 0; w < chunk_workers; ++w) {
        futures.push_back(submit([&]() {
            for (;;) {
                const std::size_t i = cursor.fetch_add(1);
                if (i >= end) {
                    return;
                }
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard lock(error_mutex);
                    if (!first_error) {
                        first_error = std::current_exception();
                    }
                }
            }
        }));
    }
    for (auto& future : futures) {
        future.get();
    }
    if (first_error) {
        std::rethrow_exception(first_error);
    }
}

} // namespace fpm::rt

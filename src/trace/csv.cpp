#include "fpm/trace/csv.hpp"

#include <iomanip>
#include <limits>
#include <sstream>

#include "fpm/common/error.hpp"

namespace fpm::trace {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
    FPM_CHECK(out_.good(), "cannot open CSV file: " + path);
}

std::string CsvWriter::escape(const std::string& cell) {
    const bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes) {
        return cell;
    }
    std::string quoted = "\"";
    for (const char ch : cell) {
        if (ch == '"') {
            quoted += "\"\"";
        } else {
            quoted += ch;
        }
    }
    quoted += '"';
    return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0) {
            out_ << ',';
        }
        out_ << escape(cells[i]);
    }
    out_ << '\n';
    FPM_CHECK(out_.good(), "CSV write failed: " + path_);
}

void CsvWriter::write_row(const std::vector<double>& cells) {
    std::vector<std::string> text;
    text.reserve(cells.size());
    for (const double value : cells) {
        std::ostringstream os;
        // max_digits10 keeps the written value bit-exact on re-parse
        // (persisted models must round-trip losslessly).
        os << std::setprecision(std::numeric_limits<double>::max_digits10)
           << value;
        text.push_back(os.str());
    }
    write_row(text);
}

} // namespace fpm::trace

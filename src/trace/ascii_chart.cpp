#include "fpm/trace/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "fpm/common/error.hpp"
#include "fpm/common/format.hpp"

namespace fpm::trace {

std::string render_chart(const std::vector<Series>& series,
                         const ChartOptions& options) {
    FPM_CHECK(!series.empty(), "chart needs at least one series");
    FPM_CHECK(options.width >= 16 && options.height >= 4,
              "chart canvas too small");

    double x_min = std::numeric_limits<double>::infinity();
    double x_max = -std::numeric_limits<double>::infinity();
    double y_min = options.auto_y_min ? std::numeric_limits<double>::infinity()
                                      : options.y_min;
    double y_max = -std::numeric_limits<double>::infinity();
    for (const auto& s : series) {
        FPM_CHECK(s.xs.size() == s.ys.size(), "series xs/ys length mismatch");
        FPM_CHECK(!s.xs.empty(), "series must have points");
        for (std::size_t i = 0; i < s.xs.size(); ++i) {
            x_min = std::min(x_min, s.xs[i]);
            x_max = std::max(x_max, s.xs[i]);
            if (options.auto_y_min) {
                y_min = std::min(y_min, s.ys[i]);
            }
            y_max = std::max(y_max, s.ys[i]);
        }
    }
    if (x_max == x_min) {
        x_max = x_min + 1.0;
    }
    if (y_max <= y_min) {
        y_max = y_min + 1.0;
    }

    std::vector<std::string> canvas(options.height,
                                    std::string(options.width, ' '));
    auto plot = [&](double x, double y, char mark) {
        const double fx = (x - x_min) / (x_max - x_min);
        const double fy = (y - y_min) / (y_max - y_min);
        const auto col = static_cast<std::size_t>(
            std::round(fx * static_cast<double>(options.width - 1)));
        const auto row_from_bottom = static_cast<std::size_t>(
            std::round(fy * static_cast<double>(options.height - 1)));
        const std::size_t row = options.height - 1 - std::min(row_from_bottom,
                                                              options.height - 1);
        canvas[row][std::min(col, options.width - 1)] = mark;
    };

    for (const auto& s : series) {
        // Dense linear interpolation between points for a line look.
        for (std::size_t i = 0; i + 1 < s.xs.size(); ++i) {
            const int steps = 24;
            for (int k = 0; k <= steps; ++k) {
                const double f = static_cast<double>(k) / steps;
                plot(s.xs[i] + (s.xs[i + 1] - s.xs[i]) * f,
                     s.ys[i] + (s.ys[i + 1] - s.ys[i]) * f, s.mark);
            }
        }
        if (s.xs.size() == 1) {
            plot(s.xs[0], s.ys[0], s.mark);
        }
    }

    std::ostringstream os;
    const std::string top_label = fixed(y_max, 1);
    const std::string bottom_label = fixed(y_min, 1);
    const std::size_t gutter = std::max(top_label.size(), bottom_label.size());

    if (!options.y_label.empty()) {
        os << std::string(gutter + 1, ' ') << options.y_label << '\n';
    }
    for (std::size_t r = 0; r < options.height; ++r) {
        std::string label(gutter, ' ');
        if (r == 0) {
            label = pad_left(top_label, gutter);
        } else if (r == options.height - 1) {
            label = pad_left(bottom_label, gutter);
        }
        os << label << '|' << canvas[r] << '\n';
    }
    os << std::string(gutter, ' ') << '+' << std::string(options.width, '-')
       << '\n';
    os << std::string(gutter + 1, ' ') << pad_right(fixed(x_min, 0), options.width / 2)
       << pad_left(fixed(x_max, 0), options.width - options.width / 2) << '\n';
    if (!options.x_label.empty()) {
        os << std::string(gutter + 1, ' ')
           << pad_left(options.x_label,
                       options.width / 2 + options.x_label.size() / 2)
           << '\n';
    }
    for (const auto& s : series) {
        os << std::string(gutter + 1, ' ') << s.mark << " = " << s.label << '\n';
    }
    return os.str();
}

} // namespace fpm::trace

/// \file csv.hpp
/// \brief Minimal CSV writer (benches dump raw series next to the tables
///        so the paper's figures can be re-plotted externally).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace fpm::trace {

/// RFC-4180-ish CSV writer with quoting of separators/quotes/newlines.
class CsvWriter {
public:
    /// Opens (truncates) `path`; throws fpm::Error on failure.
    explicit CsvWriter(const std::string& path);

    void write_row(const std::vector<std::string>& cells);
    void write_row(const std::vector<double>& cells);

    [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
    std::string path_;
    std::ofstream out_;

    static std::string escape(const std::string& cell);
};

} // namespace fpm::trace

/// \file ascii_chart.hpp
/// \brief Terminal line charts for the figure-reproducing benches.
#pragma once

#include <string>
#include <vector>

namespace fpm::trace {

/// One plotted series.
struct Series {
    std::string label;
    char mark = '*';
    std::vector<double> xs;
    std::vector<double> ys;
};

/// Options of the chart canvas.
struct ChartOptions {
    std::size_t width = 72;   ///< plot columns
    std::size_t height = 20;  ///< plot rows
    std::string x_label;
    std::string y_label;
    double y_min = 0.0;       ///< fixed lower bound (figures start at 0)
    bool auto_y_min = false;
};

/// Renders a multi-series scatter/line chart with axes and a legend.
/// Series with mismatched xs/ys sizes throw fpm::Error.
std::string render_chart(const std::vector<Series>& series,
                         const ChartOptions& options = {});

} // namespace fpm::trace

/// \file table.hpp
/// \brief Aligned plain-text tables for bench output.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fpm::trace {

/// Column-aligned text table; numeric cells are right-aligned, text cells
/// left-aligned.  Used by every bench to print the reproduced paper
/// tables.
class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Adds a row; cells are strings (format numbers with fpm::fixed).
    void add_row(std::vector<std::string> cells);

    /// Convenience: starts a new row builder.
    class RowBuilder {
    public:
        explicit RowBuilder(Table& table) : table_(table) {}
        RowBuilder& cell(const std::string& text);
        RowBuilder& cell(double value, int decimals = 2);
        RowBuilder& cell(std::int64_t value);
        ~RowBuilder();

        RowBuilder(const RowBuilder&) = delete;
        RowBuilder& operator=(const RowBuilder&) = delete;

    private:
        Table& table_;
        std::vector<std::string> cells_;
    };
    RowBuilder row() { return RowBuilder(*this); }

    /// Renders with a header rule and column padding.
    [[nodiscard]] std::string render() const;
    void print(std::ostream& os) const;
    void print() const;  ///< to stdout

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace fpm::trace

#include "fpm/trace/table.hpp"

#include <algorithm>
#include <iostream>
#include <sstream>

#include "fpm/common/error.hpp"
#include "fpm/common/format.hpp"

namespace fpm::trace {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    FPM_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
    FPM_CHECK(cells.size() == headers_.size(),
              "row width must match the header");
    rows_.push_back(std::move(cells));
}

Table::RowBuilder& Table::RowBuilder::cell(const std::string& text) {
    cells_.push_back(text);
    return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(double value, int decimals) {
    cells_.push_back(fixed(value, decimals));
    return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(std::int64_t value) {
    cells_.push_back(std::to_string(value));
    return *this;
}

Table::RowBuilder::~RowBuilder() {
    table_.add_row(std::move(cells_));
}

std::string Table::render() const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto is_numeric = [](const std::string& text) {
        if (text.empty()) {
            return false;
        }
        for (const char ch : text) {
            if ((ch < '0' || ch > '9') && ch != '.' && ch != '-' && ch != '+' &&
                ch != 'e' && ch != 'E') {
                return false;
            }
        }
        return true;
    };

    std::ostringstream os;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << (c == 0 ? "" : "  ") << pad_right(headers_[c], widths[c]);
    }
    os << '\n';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << (c == 0 ? "" : "  ") << std::string(widths[c], '-');
    }
    os << '\n';
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ");
            os << (is_numeric(row[c]) ? pad_left(row[c], widths[c])
                                      : pad_right(row[c], widths[c]));
        }
        os << '\n';
    }
    return os.str();
}

void Table::print(std::ostream& os) const {
    os << render();
}

void Table::print() const {
    print(std::cout);
}

} // namespace fpm::trace

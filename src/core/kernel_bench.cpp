#include "fpm/core/kernel_bench.hpp"

#include <cmath>
#include <sstream>

#include "fpm/blas/gemm.hpp"
#include "fpm/common/rng.hpp"
#include "fpm/measure/timer.hpp"

namespace fpm::core {

SimCpuKernelBench::SimCpuKernelBench(sim::HybridNode& node, std::size_t socket,
                                     unsigned active_cores, bool gpu_coactive)
    : node_(node), socket_(socket), active_cores_(active_cores),
      gpu_coactive_(gpu_coactive) {
    FPM_CHECK(socket < node.socket_count(), "socket index out of range");
    FPM_CHECK(active_cores >= 1 &&
                  active_cores <= node.spec().sockets[socket].cores,
              "active core count out of range");
}

std::string SimCpuKernelBench::name() const {
    std::ostringstream os;
    os << "socket" << socket_ << "/s" << active_cores_;
    if (gpu_coactive_) {
        os << "+gpu";
    }
    return os.str();
}

double SimCpuKernelBench::run(double x) {
    return node_.measure_cpu_kernel(socket_, active_cores_, x, gpu_coactive_);
}

SimGpuKernelBench::SimGpuKernelBench(sim::HybridNode& node, std::size_t gpu,
                                     sim::KernelVersion version,
                                     unsigned coactive_cpu_cores)
    : node_(node), gpu_(gpu), version_(version),
      coactive_cpu_cores_(coactive_cpu_cores) {
    FPM_CHECK(gpu < node.gpu_count(), "GPU index out of range");
}

std::string SimGpuKernelBench::name() const {
    std::ostringstream os;
    os << node_.gpu_model(gpu_).spec().name << "/" << sim::to_string(version_);
    if (coactive_cpu_cores_ > 0) {
        os << "+" << coactive_cpu_cores_ << "cores";
    }
    return os.str();
}

double SimGpuKernelBench::run(double x) {
    return node_.measure_gpu_kernel(gpu_, x, version_, coactive_cpu_cores_);
}

double SimGpuKernelBench::max_problem() const {
    return std::numeric_limits<double>::infinity();
}

RealGemmKernelBench::RealGemmKernelBench(std::size_t block_size, unsigned threads,
                                         std::uint64_t seed)
    : block_size_(block_size), threads_(threads), seed_(seed) {
    FPM_CHECK(block_size >= 1, "block size must be positive");
    FPM_CHECK(threads >= 1, "thread count must be positive");
}

std::string RealGemmKernelBench::name() const {
    std::ostringstream os;
    os << "real-gemm/b" << block_size_ << "/t" << threads_;
    return os.str();
}

double RealGemmKernelBench::run(double x) {
    FPM_CHECK(x >= 1.0, "problem size must be at least one block");
    const auto w = static_cast<std::size_t>(
        std::max(1.0, std::round(std::sqrt(x))));
    const auto h = static_cast<std::size_t>(
        std::ceil(x / static_cast<double>(w)));
    const std::size_t b = block_size_;

    // Ci (h*b x w*b) += A(b) (h*b x b) * B(b) (b x w*b): exactly the
    // paper's representative kernel (Fig. 1b).
    blas::Matrix<float> a(h * b, b);
    blas::Matrix<float> bm(b, w * b);
    blas::Matrix<float> c(h * b, w * b);

    Rng rng(seed_);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) {
            a(i, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
        }
    }
    for (std::size_t i = 0; i < bm.rows(); ++i) {
        for (std::size_t j = 0; j < bm.cols(); ++j) {
            bm(i, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
        }
    }

    measure::WallTimer timer;
    blas::gemm_multithread<float>(a.view(), bm.view(), c.view(), threads_);
    const double elapsed = timer.elapsed();

    // Normalise to the requested (possibly fractional) area.
    const double actual_area = static_cast<double>(w) * static_cast<double>(h);
    return elapsed * (x / actual_area);
}

} // namespace fpm::core

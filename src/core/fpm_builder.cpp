#include "fpm/core/fpm_builder.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "fpm/common/math.hpp"
#include "fpm/obs/metrics.hpp"
#include "fpm/obs/trace.hpp"

namespace fpm::core {

namespace {

struct BuilderMetrics {
    obs::Counter& calls;
    obs::Counter& points;
    obs::Counter& refinements;
    obs::Counter& timings;  ///< reliability-loop repeats, summed

    static const BuilderMetrics& get() {
        static auto& registry = obs::MetricsRegistry::global();
        static const BuilderMetrics metrics{
            registry.counter("core.fpm_build.calls"),
            registry.counter("core.fpm_build.points"),
            registry.counter("core.fpm_build.refinements"),
            registry.counter("core.fpm_build.timings")};
        return metrics;
    }
};

double reliable_speed(KernelBenchmark& bench, double x,
                      const measure::ReliabilityOptions& reliability) {
    obs::Span span("core.reliable_speed",
                   static_cast<std::uint64_t>(std::max(x, 0.0)));
    const auto result = measure::measure_until_reliable(
        [&bench, x]() { return bench.run(x); }, reliability);
    BuilderMetrics::get().timings.add(result.summary.count);
    FPM_CHECK(result.summary.mean > 0.0, "kernel timing must be positive");
    return x / result.summary.mean;
}

} // namespace

SpeedFunction build_fpm(KernelBenchmark& bench, const FpmBuildOptions& options) {
    obs::Span build_span("core.build_fpm");
    const BuilderMetrics& metrics = BuilderMetrics::get();
    metrics.calls.add();
    FPM_CHECK(options.x_min > 0.0, "x_min must be positive");
    FPM_CHECK(options.x_max > options.x_min, "x_max must exceed x_min");
    FPM_CHECK(options.initial_points >= 2, "need at least two initial points");
    FPM_CHECK(options.max_points >= options.initial_points,
              "max_points must cover the initial grid");
    FPM_CHECK(options.refine_tolerance > 0.0, "refine_tolerance must be positive");

    const double x_max = std::min(options.x_max, bench.max_problem());
    FPM_CHECK(x_max > options.x_min,
              "device's maximum problem size is below the requested range");

    // Initial grid.
    std::vector<SpeedPoint> points;
    points.reserve(options.max_points);
    const std::size_t n0 = options.initial_points;
    for (std::size_t i = 0; i < n0; ++i) {
        const double f = static_cast<double>(i) / static_cast<double>(n0 - 1);
        double x = 0.0;
        if (options.geometric_grid) {
            x = options.x_min * std::pow(x_max / options.x_min, f);
        } else {
            x = lerp(options.x_min, x_max, f);
        }
        points.push_back(SpeedPoint{x, reliable_speed(bench, x, options.reliability)});
    }
    std::sort(points.begin(), points.end(),
              [](const SpeedPoint& a, const SpeedPoint& b) { return a.x < b.x; });

    // Adaptive refinement: a work queue of segments to test.  A segment is
    // refined when the midpoint speed deviates from the interpolation by
    // more than the tolerance; both halves are then queued.
    std::deque<std::pair<double, double>> queue;
    for (std::size_t i = 0; i + 1 < points.size(); ++i) {
        queue.emplace_back(points[i].x, points[i + 1].x);
    }

    auto speed_at = [&points](double x) {
        // Interpolate within the current point set (points stays sorted).
        const auto upper = std::upper_bound(
            points.begin(), points.end(), x,
            [](double value, const SpeedPoint& p) { return value < p.x; });
        if (upper == points.begin()) {
            return points.front().speed;
        }
        if (upper == points.end()) {
            return points.back().speed;
        }
        const auto lower = upper - 1;
        const double f = (x - lower->x) / (upper->x - lower->x);
        return lerp(lower->speed, upper->speed, f);
    };

    while (!queue.empty() && points.size() < options.max_points) {
        const auto [lo, hi] = queue.front();
        queue.pop_front();
        const double mid = 0.5 * (lo + hi);
        if (mid - lo < 0.5 || hi - mid < 0.5) {
            continue;  // sub-block resolution reached
        }
        const double predicted = speed_at(mid);
        const double measured = reliable_speed(bench, mid, options.reliability);
        const double deviation =
            std::fabs(measured - predicted) / std::max(measured, 1e-300);
        if (deviation > options.refine_tolerance) {
            metrics.refinements.add();
            points.push_back(SpeedPoint{mid, measured});
            std::sort(points.begin(), points.end(),
                      [](const SpeedPoint& a, const SpeedPoint& b) {
                          return a.x < b.x;
                      });
            queue.emplace_back(lo, mid);
            queue.emplace_back(mid, hi);
        }
    }

    metrics.points.add(points.size());
    return SpeedFunction(std::move(points), bench.name(), bench.max_problem());
}

} // namespace fpm::core

#include "fpm/core/roofline.hpp"

#include <cmath>

namespace fpm::core {

double gemm_intensity(double m, double n, double k, double element_bytes) {
    FPM_CHECK(m > 0.0 && n > 0.0 && k > 0.0, "GEMM dimensions must be positive");
    FPM_CHECK(element_bytes > 0.0, "element size must be positive");
    const double flops = 2.0 * m * n * k;
    const double bytes = (m * k + k * n + 2.0 * m * n) * element_bytes;
    return flops / bytes;
}

double kernel_update_intensity(double area_blocks, double block_size,
                               double element_bytes) {
    FPM_CHECK(area_blocks > 0.0, "area must be positive");
    FPM_CHECK(block_size > 0.0, "block size must be positive");
    // Ci of `area` b-by-b blocks (near-square w = h = sqrt(area)):
    // C(m=h*b, n=w*b) += A(m, b) * B(b, n).
    const double side = std::sqrt(area_blocks);
    const double m = side * block_size;
    const double n = side * block_size;
    return gemm_intensity(m, n, block_size, element_bytes);
}

} // namespace fpm::core

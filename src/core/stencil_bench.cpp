#include "fpm/core/stencil_bench.hpp"

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "fpm/blas/matrix.hpp"
#include "fpm/measure/timer.hpp"

namespace fpm::core {

SimCpuStencilBench::SimCpuStencilBench(sim::HybridNode& node, std::size_t socket,
                                       unsigned active_cores,
                                       sim::StencilSpec spec)
    : node_(node), socket_(socket), active_cores_(active_cores), spec_(spec) {
    FPM_CHECK(socket < node.socket_count(), "socket index out of range");
}

std::string SimCpuStencilBench::name() const {
    std::ostringstream os;
    os << "stencil/socket" << socket_ << "/s" << active_cores_;
    return os.str();
}

double SimCpuStencilBench::run(double x) {
    return sim::stencil_cpu_sweep_time(node_, socket_, active_cores_, x, spec_);
}

SimGpuStencilBench::SimGpuStencilBench(sim::HybridNode& node, std::size_t gpu,
                                       sim::StencilSpec spec)
    : node_(node), gpu_(gpu), spec_(spec) {
    FPM_CHECK(gpu < node.gpu_count(), "GPU index out of range");
}

std::string SimGpuStencilBench::name() const {
    std::ostringstream os;
    os << "stencil/" << node_.gpu_model(gpu_).spec().name;
    return os.str();
}

double SimGpuStencilBench::run(double x) {
    return sim::stencil_gpu_sweep_time(node_, gpu_, x, spec_);
}

RealStencilBench::RealStencilBench(std::size_t cols, unsigned threads)
    : cols_(cols), threads_(threads) {
    FPM_CHECK(cols >= 3, "stencil needs at least three columns");
    FPM_CHECK(threads >= 1, "thread count must be positive");
}

std::string RealStencilBench::name() const {
    std::ostringstream os;
    os << "real-stencil/c" << cols_ << "/t" << threads_;
    return os.str();
}

double RealStencilBench::run(double x) {
    FPM_CHECK(x >= 1.0, "need at least one row");
    const auto rows = static_cast<std::size_t>(std::ceil(x)) + 2;  // + halo

    blas::Matrix<float> src(rows, cols_, 1.0F);
    blas::Matrix<float> dst(rows, cols_, 0.0F);

    // One sweep of the interior, split across threads like a socket's
    // cores would.
    measure::WallTimer timer;
    const std::size_t interior = rows - 2;
    if (threads_ == 1 || interior < 2 * threads_) {
        for (std::size_t r = 1; r + 1 < rows; ++r) {
            for (std::size_t c = 1; c + 1 < cols_; ++c) {
                dst(r, c) = 0.2F * (src(r, c) + src(r - 1, c) + src(r + 1, c) +
                                    src(r, c - 1) + src(r, c + 1));
            }
        }
    } else {
        std::vector<std::thread> pool;
        for (unsigned w = 0; w < threads_; ++w) {
            const std::size_t lo = 1 + interior * w / threads_;
            const std::size_t hi = 1 + interior * (w + 1) / threads_;
            pool.emplace_back([&, lo, hi]() {
                for (std::size_t r = lo; r < hi; ++r) {
                    for (std::size_t c = 1; c + 1 < cols_; ++c) {
                        dst(r, c) =
                            0.2F * (src(r, c) + src(r - 1, c) + src(r + 1, c) +
                                    src(r, c - 1) + src(r, c + 1));
                    }
                }
            });
        }
        for (auto& t : pool) {
            t.join();
        }
    }
    const double elapsed = timer.elapsed();
    return elapsed * (x / static_cast<double>(interior));
}

} // namespace fpm::core

#include "fpm/core/speed_function.hpp"

#include <algorithm>
#include <cmath>

#include "fpm/common/math.hpp"

namespace fpm::core {

SpeedFunction::SpeedFunction(std::vector<SpeedPoint> points, std::string name,
                             double max_problem)
    : points_(std::move(points)), name_(std::move(name)), max_problem_(max_problem) {
    FPM_CHECK(!points_.empty(), "speed function needs at least one point");
    FPM_CHECK(max_problem_ > 0.0, "max_problem must be positive");
    std::sort(points_.begin(), points_.end(),
              [](const SpeedPoint& a, const SpeedPoint& b) { return a.x < b.x; });
    for (std::size_t i = 0; i < points_.size(); ++i) {
        FPM_CHECK(points_[i].x > 0.0, "speed points need positive x");
        FPM_CHECK(points_[i].speed > 0.0, "speed points need positive speed");
        if (i > 0) {
            FPM_CHECK(points_[i].x > points_[i - 1].x,
                      "speed points need strictly increasing x");
        }
    }
}

SpeedFunction SpeedFunction::constant(double speed, std::string name,
                                      double max_problem) {
    FPM_CHECK(speed > 0.0, "constant speed must be positive");
    return SpeedFunction({SpeedPoint{1.0, speed}}, std::move(name), max_problem);
}

double SpeedFunction::speed(double x) const {
    FPM_CHECK(!points_.empty(), "speed function is empty");
    FPM_CHECK(x > 0.0, "problem size must be positive");
    FPM_CHECK(x <= max_problem_ * (1.0 + 1e-12),
              "problem size exceeds the device's maximum");

    if (x <= points_.front().x) {
        return points_.front().speed;
    }
    if (x >= points_.back().x) {
        return points_.back().speed;
    }
    const auto upper = std::upper_bound(
        points_.begin(), points_.end(), x,
        [](double value, const SpeedPoint& p) { return value < p.x; });
    const auto lower = upper - 1;
    const double t = (x - lower->x) / (upper->x - lower->x);
    return lerp(lower->speed, upper->speed, t);
}

double SpeedFunction::time(double x) const {
    FPM_CHECK(x >= 0.0, "problem size must be non-negative");
    if (x == 0.0) {
        return 0.0;
    }
    if (x > max_problem_ * (1.0 + 1e-12)) {
        return std::numeric_limits<double>::infinity();
    }
    return x / speed(x);
}

double SpeedFunction::gflops(double x, std::size_t block_size) const {
    const double b = static_cast<double>(block_size);
    return speed(x) * 2.0 * b * b * b / 1e9;
}

SpeedFunction SpeedFunction::scaled(double factor) const {
    FPM_CHECK(factor > 0.0, "scale factor must be positive");
    std::vector<SpeedPoint> scaled_points = points_;
    for (auto& point : scaled_points) {
        point.speed *= factor;
    }
    return SpeedFunction(std::move(scaled_points), name_, max_problem_);
}

SpeedFunction SpeedFunction::spliced(double x, double speed,
                                     double merge_radius_rel) const {
    FPM_CHECK(x > 0.0, "spliced point needs positive x");
    FPM_CHECK(x <= max_problem_ * (1.0 + 1e-12),
              "spliced point exceeds the device's maximum");
    FPM_CHECK(speed > 0.0, "spliced point needs positive speed");
    FPM_CHECK(merge_radius_rel >= 0.0, "merge radius must be non-negative");

    const double radius = merge_radius_rel * x;
    std::vector<SpeedPoint> merged;
    merged.reserve(points_.size() + 1);
    for (const SpeedPoint& point : points_) {
        if (std::abs(point.x - x) > radius) {
            merged.push_back(point);
        }
    }
    merged.push_back(SpeedPoint{x, speed});
    // The constructor re-sorts and enforces strictly increasing positive
    // x and positive speeds, so a degenerate merge cannot produce an
    // ill-formed interpolant.
    return SpeedFunction(std::move(merged), name_, max_problem_);
}

MonotoneTime::MonotoneTime(const SpeedFunction& fn, std::size_t samples_per_segment) {
    FPM_CHECK(!fn.empty(), "cannot build MonotoneTime from an empty function");
    FPM_CHECK(samples_per_segment >= 1, "need at least one sample per segment");

    const auto& pts = fn.points();
    max_problem_ = fn.max_problem();
    // Beyond the last measured point speed is clamped, so time is linear
    // and invertible in closed form; the sampled grid only needs to reach
    // the larger of the last knot and a finite capacity bound.
    max_x_ = std::isfinite(max_problem_) ? max_problem_ : pts.back().x;
    terminal_speed_ = fn.speed(std::min(pts.back().x, max_x_));

    // Sample grid: knots plus uniform subsamples per segment, extended to
    // max_x_ when the feasible range exceeds the measured range.
    xs_.push_back(0.0);
    ts_.push_back(0.0);
    auto push_sample = [&](double x) {
        if (x <= xs_.back() + 1e-12 || x > max_x_ * (1.0 + 1e-12)) {
            return;
        }
        xs_.push_back(std::min(x, max_x_));
        ts_.push_back(fn.time(xs_.back()));
    };
    for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
        for (std::size_t s = 0; s < samples_per_segment; ++s) {
            const double t = static_cast<double>(s) /
                             static_cast<double>(samples_per_segment);
            push_sample(lerp(pts[i].x, pts[i + 1].x, t));
        }
    }
    push_sample(pts.back().x);
    push_sample(max_x_);
    if (xs_.back() < max_x_) {
        xs_.push_back(max_x_);
        ts_.push_back(fn.time(max_x_));
    }

    // Running-max envelope makes time non-decreasing.
    for (std::size_t i = 1; i < ts_.size(); ++i) {
        ts_[i] = std::max(ts_[i], ts_[i - 1]);
    }
}

double MonotoneTime::time(double x) const {
    FPM_CHECK(x >= 0.0, "problem size must be non-negative");
    if (x > max_x_ * (1.0 + 1e-12)) {
        if (x > max_problem_ * (1.0 + 1e-12)) {
            return std::numeric_limits<double>::infinity();
        }
        // Unbounded device past the sampled grid: linear extrapolation at
        // the terminal (clamped) speed.
        return ts_.back() + (x - max_x_) / terminal_speed_;
    }
    const auto upper = std::upper_bound(xs_.begin(), xs_.end(), x);
    if (upper == xs_.end()) {
        return ts_.back();
    }
    if (upper == xs_.begin()) {
        return ts_.front();
    }
    const std::size_t hi = static_cast<std::size_t>(upper - xs_.begin());
    const std::size_t lo = hi - 1;
    if (xs_[hi] == xs_[lo]) {
        return ts_[hi];
    }
    const double f = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
    return lerp(ts_[lo], ts_[hi], f);
}

double MonotoneTime::max_time() const noexcept {
    return ts_.back();
}

double MonotoneTime::invert(double t) const {
    FPM_CHECK(t >= 0.0, "time must be non-negative");
    if (t >= ts_.back()) {
        if (!std::isfinite(max_problem_)) {
            // Unbounded device: keep growing at the terminal speed.
            return max_x_ + (t - ts_.back()) * terminal_speed_;
        }
        return max_x_;
    }
    // Largest index with ts_ <= t; within flat runs pick the rightmost x.
    const auto upper = std::upper_bound(ts_.begin(), ts_.end(), t);
    const std::size_t hi = static_cast<std::size_t>(upper - ts_.begin());
    if (hi == 0) {
        return 0.0;
    }
    const std::size_t lo = hi - 1;
    if (ts_[hi] == ts_[lo]) {
        return xs_[hi];
    }
    const double f = (t - ts_[lo]) / (ts_[hi] - ts_[lo]);
    return lerp(xs_[lo], xs_[hi], f);
}

} // namespace fpm::core

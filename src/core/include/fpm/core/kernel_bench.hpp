/// \file kernel_bench.hpp
/// \brief Kernel benchmark interface and its simulator / real adapters.
///
/// The FPM is built by timing the application's representative kernel
/// (one blocked GEMM update) at a series of problem sizes.  This interface
/// abstracts "run the kernel once at size x and return the elapsed time";
/// the model builders and the reliability loop sit on top of it.
///
/// Three families of adapters are provided:
///  - SimCpuKernelBench  : socket of the simulated hybrid node,
///  - SimGpuKernelBench  : GPU (+ dedicated core) of the simulated node,
///  - RealGemmKernelBench: actual in-process blocked GEMM, used to build
///    FPMs of the host this library runs on.
#pragma once

#include <limits>
#include <memory>
#include <string>

#include "fpm/sim/node.hpp"

namespace fpm::core {

/// One timed kernel invocation at problem size x (area in blocks).
class KernelBenchmark {
public:
    virtual ~KernelBenchmark() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Runs the kernel once with a Ci of ~x blocks; returns seconds.
    virtual double run(double x) = 0;

    /// Largest feasible problem size (infinity when unbounded).
    [[nodiscard]] virtual double max_problem() const {
        return std::numeric_limits<double>::infinity();
    }
};

/// Benchmarks the ACML-like kernel on `active_cores` cores of one socket
/// of a simulated hybrid node.
class SimCpuKernelBench final : public KernelBenchmark {
public:
    SimCpuKernelBench(sim::HybridNode& node, std::size_t socket,
                      unsigned active_cores, bool gpu_coactive = false);

    [[nodiscard]] std::string name() const override;
    double run(double x) override;

private:
    sim::HybridNode& node_;
    std::size_t socket_;
    unsigned active_cores_;
    bool gpu_coactive_;
};

/// Benchmarks the CUBLAS-like kernel (a given out-of-core version) on one
/// GPU of a simulated hybrid node.
class SimGpuKernelBench final : public KernelBenchmark {
public:
    SimGpuKernelBench(sim::HybridNode& node, std::size_t gpu,
                      sim::KernelVersion version, unsigned coactive_cpu_cores = 0);

    [[nodiscard]] std::string name() const override;
    double run(double x) override;

    /// Versions 1 and 2 without out-of-core tiling would be bounded by the
    /// device memory; our v1/v2 implement tiling, so only a degenerate
    /// sub-block problem is infeasible.  Version selection still changes
    /// the *speed*, which is the effect the paper studies.
    [[nodiscard]] double max_problem() const override;

private:
    sim::HybridNode& node_;
    std::size_t gpu_;
    sim::KernelVersion version_;
    unsigned coactive_cpu_cores_;
};

/// Benchmarks the real in-process blocked GEMM: Ci += A(b) x B(b) with Ci
/// of ~x blocks of size b, run on `threads` threads.
class RealGemmKernelBench final : public KernelBenchmark {
public:
    RealGemmKernelBench(std::size_t block_size, unsigned threads,
                        std::uint64_t seed = 7);

    [[nodiscard]] std::string name() const override;
    double run(double x) override;

private:
    std::size_t block_size_;
    unsigned threads_;
    std::uint64_t seed_;
};

} // namespace fpm::core

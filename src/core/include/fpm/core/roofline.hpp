/// \file roofline.hpp
/// \brief The Roofline model (Williams, Waterman & Patterson — the
///        paper's ref [7]).
///
/// The paper discusses the Roofline as the classic *analytical*
/// alternative to empirical functional performance models: it bounds
/// attainable throughput by min(peak, intensity x bandwidth).  This
/// small utility lets the examples and docs put a device's FPM next to
/// its roofline — and shows why the FPM carries information the roofline
/// cannot (problem-size dependence, memory cliffs, contention).
#pragma once

#include "fpm/common/error.hpp"

namespace fpm::core {

/// One device's roofline: a peak compute rate and a memory bandwidth.
struct Roofline {
    double peak_gflops = 0.0;
    double memory_bandwidth_gbs = 0.0;

    /// Attainable throughput (GFlop/s) at the given arithmetic intensity
    /// (flops per byte moved to/from memory).
    [[nodiscard]] double attainable_gflops(double intensity) const {
        FPM_CHECK(intensity > 0.0, "arithmetic intensity must be positive");
        FPM_CHECK(peak_gflops > 0.0 && memory_bandwidth_gbs > 0.0,
                  "roofline parameters must be positive");
        const double bandwidth_bound = intensity * memory_bandwidth_gbs;
        return bandwidth_bound < peak_gflops ? bandwidth_bound : peak_gflops;
    }

    /// The ridge point: the intensity at which the device becomes
    /// compute-bound.
    [[nodiscard]] double machine_balance() const {
        FPM_CHECK(peak_gflops > 0.0 && memory_bandwidth_gbs > 0.0,
                  "roofline parameters must be positive");
        return peak_gflops / memory_bandwidth_gbs;
    }

    /// Whether a kernel of the given intensity is memory-bound here.
    [[nodiscard]] bool memory_bound(double intensity) const {
        return intensity < machine_balance();
    }
};

/// Arithmetic intensity of a GEMM C(m,n) += A(m,k) * B(k,n) assuming each
/// operand is moved once (the blocked-kernel ideal): 2mnk flops over
/// (mk + kn + 2mn) * element_bytes bytes.
double gemm_intensity(double m, double n, double k, double element_bytes);

/// Intensity of the application kernel: a rank-b update of `area` blocks
/// of size b (the paper's Ci += A(b) x B(b)).
double kernel_update_intensity(double area_blocks, double block_size,
                               double element_bytes);

} // namespace fpm::core

/// \file speed_function.hpp
/// \brief The Functional Performance Model: speed as a function of size.
///
/// The FPM (Lastovetsky & Reddy) represents the absolute speed of a
/// processor as a continuous function s(x) of problem size x, built
/// empirically from kernel timings.  Here x is the matrix area assigned to
/// the device, in b-by-b blocks, and s(x) = x / t_kernel(x) is the number
/// of blocks updated per second by one kernel invocation — proportional to
/// the flop rate (each block update costs 2*b^3 flops).
///
/// The piecewise-linear representation interpolates measured points and
/// clamps outside the measured range.  Devices with a hard maximum problem
/// size (a GPU whose kernel has no out-of-core support) carry a finite
/// max_problem(): time(x) is +infinity beyond it, which the partitioning
/// algorithm honours naturally.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "fpm/common/error.hpp"

namespace fpm::core {

/// One empirical point of the model.
struct SpeedPoint {
    double x = 0.0;      ///< problem size (matrix area in blocks)
    double speed = 0.0;  ///< x / t(x), blocks per second
};

/// Piecewise-linear speed function; see file comment.
class SpeedFunction {
public:
    SpeedFunction() = default;

    /// Points must have strictly increasing positive x and positive speed;
    /// they are sorted internally.  `max_problem` bounds the feasible
    /// problem size (infinity = unbounded).
    explicit SpeedFunction(std::vector<SpeedPoint> points, std::string name = {},
                           double max_problem =
                               std::numeric_limits<double>::infinity());

    /// Builds a constant-speed function (the CPM seen through the same
    /// interface).
    static SpeedFunction constant(double speed, std::string name = {},
                                  double max_problem =
                                      std::numeric_limits<double>::infinity());

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::vector<SpeedPoint>& points() const noexcept {
        return points_;
    }
    [[nodiscard]] double max_problem() const noexcept { return max_problem_; }
    [[nodiscard]] bool empty() const noexcept { return points_.empty(); }

    /// Interpolated speed at x > 0 (clamped extrapolation outside the
    /// measured range).  Throws for x <= 0 or x > max_problem().
    [[nodiscard]] double speed(double x) const;

    /// Execution time of problem size x: x / speed(x); time(0) == 0 and
    /// time(x > max_problem) == +infinity.
    [[nodiscard]] double time(double x) const;

    /// Speed converted to GFlop/s for a given blocking factor b.
    [[nodiscard]] double gflops(double x, std::size_t block_size) const;

    /// A copy with every speed multiplied by `factor` (> 0).  Used by the
    /// iterative shape-aware partitioner to fold measured corrections into
    /// the model.
    [[nodiscard]] SpeedFunction scaled(double factor) const;

    /// A copy with the measured point (x, speed) spliced in: existing
    /// points within `merge_radius_rel * x` of x are replaced by the new
    /// point, everything else is kept, and the result is revalidated
    /// (strictly increasing positive x, positive speeds) — the
    /// monotone-interpolation safety check of the online refiner.  Throws
    /// for x <= 0, x > max_problem(), speed <= 0 or a negative radius.
    [[nodiscard]] SpeedFunction spliced(double x, double speed,
                                        double merge_radius_rel = 0.1) const;

private:
    std::vector<SpeedPoint> points_;
    std::string name_;
    double max_problem_ = std::numeric_limits<double>::infinity();
};

/// Monotone execution-time view of a SpeedFunction.
///
/// The geometric FPM partitioning algorithm needs, for each device, the
/// inverse of its execution-time function: x(T) = the largest problem
/// solvable within time T.  Real measured speed functions can make
/// t(x) = x/s(x) locally non-monotone (e.g. the super-linear speed ramp of
/// a GPU); MonotoneTime samples t on a refined grid, takes the running
/// maximum (the canonical monotone envelope used by the partitioner) and
/// supports O(log n) inversion.
class MonotoneTime {
public:
    /// `samples_per_segment` controls the inversion grid resolution.
    explicit MonotoneTime(const SpeedFunction& fn, std::size_t samples_per_segment = 8);

    /// Monotone (non-decreasing) execution time at x in [0, max_problem].
    /// For unbounded devices, sizes beyond the measured range extrapolate
    /// linearly at the terminal (clamped) speed.
    [[nodiscard]] double time(double x) const;

    /// Largest x with time(x) <= T (0 if nothing fits; never exceeds
    /// max_problem).
    [[nodiscard]] double invert(double t) const;

    /// Capacity bound: the speed function's max_problem() (infinity for
    /// unbounded devices).
    [[nodiscard]] double max_problem() const noexcept { return max_problem_; }

    /// Envelope time at the end of the sampled grid.
    [[nodiscard]] double max_time() const noexcept;

private:
    std::vector<double> xs_;
    std::vector<double> ts_;  // running-max envelope, same length as xs_
    double max_x_ = 0.0;      // end of the sampled grid
    double max_problem_ = 0.0;
    double terminal_speed_ = 0.0;  // clamped speed past the grid
};

} // namespace fpm::core

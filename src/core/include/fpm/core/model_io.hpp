/// \file model_io.hpp
/// \brief Persistence of functional performance models.
///
/// Models are expensive to build (they time real kernels with a
/// reliability loop), so deployments build them once and reuse them — the
/// workflow of the authors' fupermod tooling.  Since format v2 a model
/// file is self-describing: the first line is a versioned magic header,
/// followed by the CSV column header and one measured point per row:
///
///     fpmmodel v2
///     name,max_problem,x,speed
///     cpu,inf,64,1.25e+06
///     ...
///
/// `max_problem` is the literal string `inf` for unbounded devices.
/// Points of one model must be contiguous; models appear in file order.
/// v1 files (headerless — they start directly with the CSV column
/// header) still load; a file claiming a *newer* format version than
/// this build understands is rejected instead of misparsed.
///
/// Malformed input is reported as ParseError, which pinpoints the
/// offending line and CSV column instead of a free-text bool-ish
/// failure; ParseError derives fpm::Error, so existing catch sites keep
/// working.  The stream-based entry points exist for callers that embed
/// model text in larger files (the durable model store's WAL records and
/// snapshots).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fpm/core/speed_function.hpp"

namespace fpm::core {

/// Magic word of the self-describing header ("fpmmodel v<version>").
inline constexpr const char* kModelFileMagic = "fpmmodel";

/// The format version this build writes; readers accept [1, this].
/// v2 added the magic header line; v1 is the headerless CSV.
inline constexpr int kModelFormatVersion = 2;

/// A malformed model file, pinpointed: `line` is 1-based within the
/// input, `column` is the 1-based CSV cell (0 when the whole line is at
/// fault), and `reason` is the bare diagnosis.  what() renders all three.
class ParseError : public Error {
public:
    ParseError(std::string origin, std::size_t line, std::size_t column,
               std::string reason);

    [[nodiscard]] const std::string& origin() const noexcept { return origin_; }
    [[nodiscard]] std::size_t line() const noexcept { return line_; }
    [[nodiscard]] std::size_t column() const noexcept { return column_; }
    [[nodiscard]] const std::string& reason() const noexcept { return reason_; }

private:
    std::string origin_;  ///< path or caller-supplied stream label
    std::size_t line_ = 0;
    std::size_t column_ = 0;
    std::string reason_;
};

/// Writes the models to `out` in the current format (v2 header included).
/// Throws fpm::Error on empty input or a stream failure.
void write_speed_functions(std::ostream& out,
                           const std::vector<SpeedFunction>& models);

/// Reads models from `in` (v2 or headerless v1); `origin` labels
/// ParseError diagnostics (a path, or e.g. "wal record").  Validates the
/// schema and the per-model invariants (via the SpeedFunction
/// constructor).  Throws ParseError on malformed input.
std::vector<SpeedFunction> read_speed_functions(std::istream& in,
                                                const std::string& origin);

/// Writes the models to `path` (truncates).  Throws fpm::Error on I/O
/// failure or empty input.
void save_speed_functions_csv(const std::string& path,
                              const std::vector<SpeedFunction>& models);

/// Reads models back from `path`; see read_speed_functions().  Throws
/// ParseError on malformed input, fpm::Error when the file is missing.
std::vector<SpeedFunction> load_speed_functions_csv(const std::string& path);

} // namespace fpm::core

/// \file model_io.hpp
/// \brief Persistence of functional performance models.
///
/// Models are expensive to build (they time real kernels with a
/// reliability loop), so deployments build them once and reuse them — the
/// workflow of the authors' fupermod tooling.  The on-disk format is a
/// plain CSV, one measured point per row:
///
///     name,max_problem,x,speed
///
/// `max_problem` is the literal string `inf` for unbounded devices.
/// Points of one model must be contiguous; models appear in file order.
#pragma once

#include <string>
#include <vector>

#include "fpm/core/speed_function.hpp"

namespace fpm::core {

/// Writes the models to `path` (truncates).  Throws fpm::Error on I/O
/// failure or empty input.
void save_speed_functions_csv(const std::string& path,
                              const std::vector<SpeedFunction>& models);

/// Reads models back; validates the schema and the per-model invariants
/// (via the SpeedFunction constructor).  Throws fpm::Error on malformed
/// input.
std::vector<SpeedFunction> load_speed_functions_csv(const std::string& path);

} // namespace fpm::core

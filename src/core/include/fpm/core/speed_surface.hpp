/// \file speed_surface.hpp
/// \brief Two-parameter functional performance models.
///
/// The paper defines the problem size as "a set of parameters
/// characterizing the amount and layout of data"; the 1-D SpeedFunction
/// covers the common case where one scalar (area, rows) suffices.  When a
/// device's speed genuinely depends on the *shape* of its piece — e.g. a
/// GPU whose pivot-row traffic and out-of-core chunking follow the
/// rectangle's width — a two-parameter model s(w, h) captures what any
/// area-only model must average away.
///
/// SpeedSurface stores speeds on a rectangular grid of (width, height)
/// sample points with bilinear interpolation and clamped extrapolation,
/// and adapts directly to the shape oracle of the iterative partitioner.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fpm/common/error.hpp"

namespace fpm::core {

/// See file comment.  Speeds are in work units (e.g. blocks) per second
/// for a piece of w x h units.
class SpeedSurface {
public:
    /// `speeds[j * widths.size() + i]` is the speed at (widths[i],
    /// heights[j]).  Axes must be strictly increasing and positive;
    /// speeds positive.
    SpeedSurface(std::vector<double> widths, std::vector<double> heights,
                 std::vector<double> speeds, std::string name = {});

    /// Builds a surface by timing a kernel at every grid point:
    /// `kernel_time(w, h)` returns the seconds of one invocation on a
    /// w x h piece; the stored speed is (w * h) / time.
    static SpeedSurface build(
        const std::function<double(double w, double h)>& kernel_time,
        std::vector<double> widths, std::vector<double> heights,
        std::string name = {});

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::vector<double>& widths() const noexcept {
        return widths_;
    }
    [[nodiscard]] const std::vector<double>& heights() const noexcept {
        return heights_;
    }

    /// Bilinearly interpolated speed at (w, h), clamped outside the grid.
    [[nodiscard]] double speed(double w, double h) const;

    /// Execution time of a w x h piece: (w * h) / speed(w, h).
    [[nodiscard]] double time(double w, double h) const;

    /// The area-only shadow of the surface: the speed at the most square
    /// shape of a given area (what a 1-D FPM built from near-square
    /// benchmarks sees).
    [[nodiscard]] double square_speed(double area) const;

private:
    std::vector<double> widths_;
    std::vector<double> heights_;
    std::vector<double> speeds_;  // heights-major
    std::string name_;

    [[nodiscard]] double at(std::size_t i, std::size_t j) const {
        return speeds_[j * widths_.size() + i];
    }
};

} // namespace fpm::core

/// \file fpm_builder.hpp
/// \brief Empirical construction of functional performance models.
///
/// Builds a SpeedFunction for a device by timing its kernel benchmark over
/// a range of problem sizes.  Two placement strategies compose:
///
///  1. an initial grid (geometric by default, so small sizes — where
///     speed changes fastest — are densely covered);
///  2. adaptive bisection refinement: wherever linear interpolation
///     between neighbouring measurements mispredicts the measured midpoint
///     speed by more than `refine_tolerance`, a new point is inserted.
///     This is what localises the GPU device-memory cliff of Fig. 3
///     without an excessive point budget.
///
/// Every individual timing runs through the repeat-until-reliable loop of
/// fpm::measure, mirroring the paper's measurement methodology.
#pragma once

#include <cstddef>

#include "fpm/core/kernel_bench.hpp"
#include "fpm/core/speed_function.hpp"
#include "fpm/measure/reliable.hpp"

namespace fpm::core {

/// Options for build_fpm().
struct FpmBuildOptions {
    double x_min = 1.0;
    double x_max = 1000.0;
    std::size_t initial_points = 10;
    bool geometric_grid = true;

    /// Relative speed misprediction at a segment midpoint that triggers
    /// refinement of that segment.
    double refine_tolerance = 0.05;

    /// Hard cap on the total number of measured points.
    std::size_t max_points = 40;

    measure::ReliabilityOptions reliability{};
};

/// Builds the FPM of `bench`; throws fpm::Error on inconsistent options.
/// The returned function carries the benchmark's name and max_problem().
SpeedFunction build_fpm(KernelBenchmark& bench, const FpmBuildOptions& options);

} // namespace fpm::core

/// \file stencil_bench.hpp
/// \brief Kernel-benchmark adapters for the stencil application family.
///
/// Same pattern as the GEMM adapters in kernel_bench.hpp, but the problem
/// size x is the number of grid *rows* and the kernel is one Jacobi
/// sweep.  The FPM machinery is unit-agnostic, so everything downstream
/// (builders, partitioners) works unchanged — exactly the generality the
/// paper claims for functional performance models.
#pragma once

#include "fpm/core/kernel_bench.hpp"
#include "fpm/sim/stencil_model.hpp"

namespace fpm::core {

/// One simulated stencil sweep on `active_cores` cores of a socket.
class SimCpuStencilBench final : public KernelBenchmark {
public:
    SimCpuStencilBench(sim::HybridNode& node, std::size_t socket,
                       unsigned active_cores, sim::StencilSpec spec = {});

    [[nodiscard]] std::string name() const override;
    double run(double x) override;

private:
    sim::HybridNode& node_;
    std::size_t socket_;
    unsigned active_cores_;
    sim::StencilSpec spec_;
};

/// One simulated stencil sweep on a GPU (+ dedicated core).
class SimGpuStencilBench final : public KernelBenchmark {
public:
    SimGpuStencilBench(sim::HybridNode& node, std::size_t gpu,
                       sim::StencilSpec spec = {});

    [[nodiscard]] std::string name() const override;
    double run(double x) override;

private:
    sim::HybridNode& node_;
    std::size_t gpu_;
    sim::StencilSpec spec_;
};

/// One real in-process sweep over x rows (used to model this host).
class RealStencilBench final : public KernelBenchmark {
public:
    explicit RealStencilBench(std::size_t cols, unsigned threads = 1);

    [[nodiscard]] std::string name() const override;
    double run(double x) override;

private:
    std::size_t cols_;
    unsigned threads_;
};

} // namespace fpm::core

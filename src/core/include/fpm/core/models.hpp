/// \file models.hpp
/// \brief Baseline performance models: constant (CPM) and linear (LPM).
///
/// The paper compares FPM-based partitioning against the *constant
/// performance model* used by earlier hybrid systems (refs [1], [2]):
/// a single positive number per device, obtained in advance from a
/// measurement at some fixed workload.  Refs [3], [4] approximate the
/// execution time by linear functions of problem size; LinearModel
/// implements that family (t(x) = alpha + beta * x, least-squares fit).
#pragma once

#include <string>
#include <vector>

#include "fpm/core/kernel_bench.hpp"
#include "fpm/core/speed_function.hpp"
#include "fpm/measure/reliable.hpp"

namespace fpm::core {

/// Constant performance model: one speed number (blocks/second).
struct ConstantModel {
    double speed = 0.0;
    std::string name;

    [[nodiscard]] double time(double x) const { return x / speed; }
    [[nodiscard]] SpeedFunction to_speed_function() const {
        return SpeedFunction::constant(speed, name);
    }
};

/// Linear execution-time model: t(x) = alpha + beta * x.
struct LinearModel {
    double alpha = 0.0;  ///< fixed overhead, seconds
    double beta = 0.0;   ///< seconds per block
    std::string name;

    [[nodiscard]] double time(double x) const { return alpha + beta * x; }
    [[nodiscard]] double speed(double x) const { return x / time(x); }

    /// Piecewise-linear sampling of the implied speed function so the
    /// generic FPM partitioner can consume the model.
    [[nodiscard]] SpeedFunction to_speed_function(double x_min, double x_max,
                                                  std::size_t points = 32) const;
};

/// Builds a CPM by timing the kernel at one reference size `x_ref`
/// (repeated until statistically reliable).
ConstantModel build_cpm(KernelBenchmark& bench, double x_ref,
                        const measure::ReliabilityOptions& reliability = {});

/// Builds CPMs for a set of devices the way the paper describes for the
/// traditional approach: "from the speed measurements when some workload
/// is distributed evenly between the processors" — every device is timed
/// at x = total / devices.
std::vector<ConstantModel> build_cpm_even_share(
    const std::vector<KernelBenchmark*>& benches, double total_area,
    const measure::ReliabilityOptions& reliability = {});

/// Least-squares fit of t(x) = alpha + beta * x over `xs` (ref [3] style).
/// alpha is clamped at zero if the fit turns negative (overheads cannot be
/// negative).
LinearModel build_lpm(KernelBenchmark& bench, const std::vector<double>& xs,
                      const measure::ReliabilityOptions& reliability = {});

} // namespace fpm::core

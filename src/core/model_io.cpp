#include "fpm/core/model_io.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

namespace fpm::core {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream stream(line);
    while (std::getline(stream, cell, ',')) {
        cells.push_back(cell);
    }
    return cells;
}

} // namespace

void save_speed_functions_csv(const std::string& path,
                              const std::vector<SpeedFunction>& models) {
    FPM_CHECK(!models.empty(), "nothing to save");
    std::ofstream out(path);
    FPM_CHECK(out.good(), "cannot open model file for writing: " + path);
    // Full precision so a load() reproduces every double bit-for-bit.
    out << std::setprecision(std::numeric_limits<double>::max_digits10);

    out << "name,max_problem,x,speed\n";
    for (const auto& model : models) {
        FPM_CHECK(model.name().find(',') == std::string::npos,
                  "model names must not contain commas");
        for (const auto& point : model.points()) {
            out << model.name() << ',';
            if (std::isfinite(model.max_problem())) {
                out << model.max_problem();
            } else {
                out << "inf";
            }
            out << ',' << point.x << ',' << point.speed << '\n';
        }
    }
    FPM_CHECK(out.good(), "write failed: " + path);
}

std::vector<SpeedFunction> load_speed_functions_csv(const std::string& path) {
    std::ifstream in(path);
    FPM_CHECK(in.good(), "cannot open model file: " + path);

    std::string line;
    FPM_CHECK(static_cast<bool>(std::getline(in, line)),
              "model file is empty: " + path);
    FPM_CHECK(line == "name,max_problem,x,speed",
              "unexpected model file header: " + line);

    std::vector<SpeedFunction> models;
    std::string current_name;
    double current_max = std::numeric_limits<double>::infinity();
    std::vector<SpeedPoint> current_points;

    auto flush = [&]() {
        if (!current_points.empty()) {
            models.emplace_back(std::move(current_points), current_name,
                                current_max);
            current_points = {};
        }
    };

    std::size_t line_number = 1;
    while (std::getline(in, line)) {
        ++line_number;
        if (line.empty()) {
            continue;
        }
        const auto cells = split_csv_line(line);
        FPM_CHECK(cells.size() == 4,
                  "malformed model row at line " + std::to_string(line_number));

        const std::string& name = cells[0];
        if (name != current_name || current_points.empty()) {
            if (name != current_name) {
                flush();
            }
            current_name = name;
            current_max = (cells[1] == "inf")
                              ? std::numeric_limits<double>::infinity()
                              : std::stod(cells[1]);
        }
        try {
            current_points.push_back(
                SpeedPoint{std::stod(cells[2]), std::stod(cells[3])});
        } catch (const std::exception&) {
            throw Error("non-numeric model row at line " +
                        std::to_string(line_number));
        }
    }
    flush();
    FPM_CHECK(!models.empty(), "model file holds no points: " + path);
    return models;
}

} // namespace fpm::core

#include "fpm/core/model_io.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

namespace fpm::core {

namespace {

constexpr const char* kColumnHeader = "name,max_problem,x,speed";

std::vector<std::string> split_csv_line(const std::string& line) {
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream stream(line);
    while (std::getline(stream, cell, ',')) {
        cells.push_back(cell);
    }
    return cells;
}

/// Strict double parse for one CSV cell; throws ParseError pinpointing
/// `column` (1-based cell index) on failure.
double parse_cell(const std::string& text, const std::string& origin,
                  std::size_t line, std::size_t column) {
    const char* begin = text.c_str();
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin || *end != '\0') {
        throw ParseError(origin, line, column,
                         "non-numeric value '" + text + "'");
    }
    return value;
}

/// Parses the `fpmmodel v<N>` magic line; returns 0 when `line` is not a
/// header at all (a v1 file), throws for a recognisable header carrying
/// an unusable version.
int parse_magic(const std::string& line, const std::string& origin) {
    std::istringstream stream(line);
    std::string magic;
    std::string version;
    stream >> magic;
    if (magic != kModelFileMagic) {
        return 0;
    }
    stream >> version;
    if (version.size() < 2 || version[0] != 'v') {
        throw ParseError(origin, 1, 0,
                         "malformed format version '" + version + "'");
    }
    const char* begin = version.c_str() + 1;
    char* end = nullptr;
    const long parsed = std::strtol(begin, &end, 10);
    if (end == begin || *end != '\0' || parsed <= 0) {
        throw ParseError(origin, 1, 0,
                         "malformed format version '" + version + "'");
    }
    if (parsed > kModelFormatVersion) {
        throw ParseError(origin, 1, 0,
                         "unsupported format version v" +
                             std::to_string(parsed) + " (this build reads up "
                             "to v" + std::to_string(kModelFormatVersion) +
                             ")");
    }
    std::string trailing;
    if (stream >> trailing) {
        throw ParseError(origin, 1, 0,
                         "trailing tokens after the format header");
    }
    return static_cast<int>(parsed);
}

} // namespace

ParseError::ParseError(std::string origin, std::size_t line,
                       std::size_t column, std::string reason)
    : Error(origin + ":" + std::to_string(line) +
            (column > 0 ? ":" + std::to_string(column) : std::string{}) +
            ": " + reason),
      origin_(std::move(origin)), line_(line), column_(column),
      reason_(std::move(reason)) {}

void write_speed_functions(std::ostream& out,
                           const std::vector<SpeedFunction>& models) {
    FPM_CHECK(!models.empty(), "nothing to save");
    // Full precision so a load() reproduces every double bit-for-bit.
    out << std::setprecision(std::numeric_limits<double>::max_digits10);

    out << kModelFileMagic << " v" << kModelFormatVersion << '\n';
    out << kColumnHeader << '\n';
    for (const auto& model : models) {
        FPM_CHECK(model.name().find(',') == std::string::npos,
                  "model names must not contain commas");
        for (const auto& point : model.points()) {
            out << model.name() << ',';
            if (std::isfinite(model.max_problem())) {
                out << model.max_problem();
            } else {
                out << "inf";
            }
            out << ',' << point.x << ',' << point.speed << '\n';
        }
    }
    FPM_CHECK(out.good(), "model write failed");
}

std::vector<SpeedFunction> read_speed_functions(std::istream& in,
                                                const std::string& origin) {
    std::string line;
    if (!std::getline(in, line)) {
        throw ParseError(origin, 1, 0, "model input is empty");
    }
    std::size_t line_number = 1;
    const int version = parse_magic(line, origin);
    if (version > 0) {
        // v2+: the magic line is followed by the column header.
        if (!std::getline(in, line)) {
            throw ParseError(origin, 2, 0,
                             "missing column header after the format header");
        }
        ++line_number;
    }
    if (line != kColumnHeader) {
        throw ParseError(origin, line_number, 0,
                         "unexpected column header '" + line + "' (want '" +
                             kColumnHeader + "')");
    }

    std::vector<SpeedFunction> models;
    std::string current_name;
    double current_max = std::numeric_limits<double>::infinity();
    std::vector<SpeedPoint> current_points;
    std::size_t model_first_line = 0;

    auto flush = [&]() {
        if (!current_points.empty()) {
            try {
                models.emplace_back(std::move(current_points), current_name,
                                    current_max);
            } catch (const Error& e) {
                throw ParseError(origin, model_first_line, 0,
                                 "invalid model '" + current_name +
                                     "': " + e.what());
            }
            current_points = {};
        }
    };

    while (std::getline(in, line)) {
        ++line_number;
        if (line.empty()) {
            continue;
        }
        const auto cells = split_csv_line(line);
        if (cells.size() != 4) {
            throw ParseError(origin, line_number, 0,
                             "expected 4 CSV cells, got " +
                                 std::to_string(cells.size()));
        }

        const std::string& name = cells[0];
        if (name != current_name || current_points.empty()) {
            if (name != current_name) {
                flush();
            }
            current_name = name;
            model_first_line = line_number;
            current_max =
                (cells[1] == "inf")
                    ? std::numeric_limits<double>::infinity()
                    : parse_cell(cells[1], origin, line_number, 2);
        }
        current_points.push_back(
            SpeedPoint{parse_cell(cells[2], origin, line_number, 3),
                       parse_cell(cells[3], origin, line_number, 4)});
    }
    flush();
    if (models.empty()) {
        throw ParseError(origin, line_number, 0, "model input holds no points");
    }
    return models;
}

void save_speed_functions_csv(const std::string& path,
                              const std::vector<SpeedFunction>& models) {
    std::ofstream out(path);
    FPM_CHECK(out.good(), "cannot open model file for writing: " + path);
    write_speed_functions(out, models);
    FPM_CHECK(out.good(), "write failed: " + path);
}

std::vector<SpeedFunction> load_speed_functions_csv(const std::string& path) {
    std::ifstream in(path);
    FPM_CHECK(in.good(), "cannot open model file: " + path);
    return read_speed_functions(in, path);
}

} // namespace fpm::core

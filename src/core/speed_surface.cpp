#include "fpm/core/speed_surface.hpp"

#include <algorithm>
#include <cmath>

#include "fpm/common/math.hpp"

namespace fpm::core {

namespace {

/// Index of the grid cell containing `value` and the interpolation
/// fraction within it, with clamping at both ends.
std::pair<std::size_t, double> locate(const std::vector<double>& axis,
                                      double value) {
    if (value <= axis.front()) {
        return {0, 0.0};
    }
    if (value >= axis.back()) {
        return {axis.size() - 2, 1.0};
    }
    const auto upper = std::upper_bound(axis.begin(), axis.end(), value);
    const std::size_t hi = static_cast<std::size_t>(upper - axis.begin());
    const std::size_t lo = hi - 1;
    return {lo, (value - axis[lo]) / (axis[hi] - axis[lo])};
}

} // namespace

SpeedSurface::SpeedSurface(std::vector<double> widths, std::vector<double> heights,
                           std::vector<double> speeds, std::string name)
    : widths_(std::move(widths)), heights_(std::move(heights)),
      speeds_(std::move(speeds)), name_(std::move(name)) {
    FPM_CHECK(widths_.size() >= 2 && heights_.size() >= 2,
              "surface needs at least a 2x2 grid");
    FPM_CHECK(speeds_.size() == widths_.size() * heights_.size(),
              "speed grid size must match the axes");
    for (std::size_t i = 0; i < widths_.size(); ++i) {
        FPM_CHECK(widths_[i] > 0.0, "axis values must be positive");
        if (i > 0) {
            FPM_CHECK(widths_[i] > widths_[i - 1],
                      "axes must be strictly increasing");
        }
    }
    for (std::size_t j = 0; j < heights_.size(); ++j) {
        FPM_CHECK(heights_[j] > 0.0, "axis values must be positive");
        if (j > 0) {
            FPM_CHECK(heights_[j] > heights_[j - 1],
                      "axes must be strictly increasing");
        }
    }
    for (const double s : speeds_) {
        FPM_CHECK(s > 0.0, "speeds must be positive");
    }
}

SpeedSurface SpeedSurface::build(
    const std::function<double(double w, double h)>& kernel_time,
    std::vector<double> widths, std::vector<double> heights, std::string name) {
    FPM_CHECK(static_cast<bool>(kernel_time), "need a kernel timer");
    FPM_CHECK(widths.size() >= 2 && heights.size() >= 2,
              "surface needs at least a 2x2 grid");
    std::vector<double> speeds;
    speeds.reserve(widths.size() * heights.size());
    for (const double h : heights) {
        for (const double w : widths) {
            const double t = kernel_time(w, h);
            FPM_CHECK(t > 0.0, "kernel time must be positive");
            speeds.push_back(w * h / t);
        }
    }
    return SpeedSurface(std::move(widths), std::move(heights), std::move(speeds),
                        std::move(name));
}

double SpeedSurface::speed(double w, double h) const {
    FPM_CHECK(w > 0.0 && h > 0.0, "piece dimensions must be positive");
    const auto [i, fw] = locate(widths_, w);
    const auto [j, fh] = locate(heights_, h);
    const double bottom = lerp(at(i, j), at(i + 1, j), fw);
    const double top = lerp(at(i, j + 1), at(i + 1, j + 1), fw);
    return lerp(bottom, top, fh);
}

double SpeedSurface::time(double w, double h) const {
    return (w * h) / speed(w, h);
}

double SpeedSurface::square_speed(double area) const {
    FPM_CHECK(area > 0.0, "area must be positive");
    const double side = std::sqrt(area);
    return speed(side, side);
}

} // namespace fpm::core

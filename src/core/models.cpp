#include "fpm/core/models.hpp"

#include <cmath>

#include "fpm/common/math.hpp"

namespace fpm::core {

SpeedFunction LinearModel::to_speed_function(double x_min, double x_max,
                                             std::size_t points) const {
    FPM_CHECK(x_min > 0.0 && x_max > x_min, "invalid sampling range");
    FPM_CHECK(points >= 2, "need at least two sample points");
    std::vector<SpeedPoint> pts;
    pts.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double f = static_cast<double>(i) / static_cast<double>(points - 1);
        const double x = lerp(x_min, x_max, f);
        pts.push_back(SpeedPoint{x, speed(x)});
    }
    return SpeedFunction(std::move(pts), name);
}

namespace {

double reliable_time(KernelBenchmark& bench, double x,
                     const measure::ReliabilityOptions& reliability) {
    const auto result = measure::measure_until_reliable(
        [&bench, x]() { return bench.run(x); }, reliability);
    return result.summary.mean;
}

} // namespace

ConstantModel build_cpm(KernelBenchmark& bench, double x_ref,
                        const measure::ReliabilityOptions& reliability) {
    FPM_CHECK(x_ref > 0.0, "reference problem size must be positive");
    FPM_CHECK(x_ref <= bench.max_problem(),
              "reference problem size exceeds the device's maximum");
    const double t = reliable_time(bench, x_ref, reliability);
    ConstantModel model;
    model.speed = x_ref / t;
    model.name = bench.name();
    return model;
}

std::vector<ConstantModel> build_cpm_even_share(
    const std::vector<KernelBenchmark*>& benches, double total_area,
    const measure::ReliabilityOptions& reliability) {
    FPM_CHECK(!benches.empty(), "need at least one device");
    FPM_CHECK(total_area > 0.0, "total area must be positive");
    const double share = total_area / static_cast<double>(benches.size());
    std::vector<ConstantModel> models;
    models.reserve(benches.size());
    for (KernelBenchmark* bench : benches) {
        FPM_CHECK(bench != nullptr, "null benchmark");
        models.push_back(build_cpm(*bench, std::min(share, bench->max_problem()),
                                   reliability));
    }
    return models;
}

LinearModel build_lpm(KernelBenchmark& bench, const std::vector<double>& xs,
                      const measure::ReliabilityOptions& reliability) {
    FPM_CHECK(xs.size() >= 2, "linear fit needs at least two sizes");

    double sum_x = 0.0;
    double sum_t = 0.0;
    double sum_xx = 0.0;
    double sum_xt = 0.0;
    for (const double x : xs) {
        FPM_CHECK(x > 0.0, "problem sizes must be positive");
        const double t = reliable_time(bench, x, reliability);
        sum_x += x;
        sum_t += t;
        sum_xx += x * x;
        sum_xt += x * t;
    }
    const double n = static_cast<double>(xs.size());
    const double denom = n * sum_xx - sum_x * sum_x;
    FPM_CHECK(std::fabs(denom) > 1e-30, "degenerate sample set for linear fit");

    LinearModel model;
    model.beta = (n * sum_xt - sum_x * sum_t) / denom;
    model.alpha = (sum_t - model.beta * sum_x) / n;
    model.name = bench.name();
    FPM_CHECK(model.beta > 0.0,
              "linear fit produced non-increasing time; the device timings "
              "are not usable for an LPM");
    if (model.alpha < 0.0) {
        model.alpha = 0.0;
    }
    return model;
}

} // namespace fpm::core

/// \file wal.hpp
/// \brief Append-only framed record log (the durable store's low layer).
///
/// A log file is a sequence of length+CRC-framed records:
///
///     [u32 payload length (LE)] [u32 CRC-32 of payload (LE)] [payload]
///
/// The framing makes replay self-validating: a crash mid-append leaves a
/// torn tail (a short header, a short payload, or a CRC mismatch) that
/// replay_wal() detects, reports and — in repair mode — truncates away,
/// leaving exactly the committed prefix.  Nothing here interprets
/// payloads; fpm::store::ModelStore layers the publish-record grammar on
/// top and the same framing carries snapshot bodies.
///
/// WalFile is the writer: it tracks the committed byte offset and always
/// writes the next frame there, so a previous failed append (injected
/// `store.append`/`store.fsync` faults, ENOSPC) self-heals — the torn
/// bytes are overwritten or truncated before the next record lands.
/// Appends are atomic at the record level, never the byte level; the
/// caller owns frame-to-frame ordering (one writer, externally locked).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fpm::store {

/// CRC-32 (IEEE 802.3, the zlib polynomial) of `size` bytes.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size) noexcept;

/// Outcome of replaying one log file.
struct ReplayResult {
    std::vector<std::string> payloads;   ///< intact records, in file order
    std::uint64_t truncated_bytes = 0;   ///< torn/corrupt tail dropped
};

/// Reads every intact framed record of `path` (which must exist).  A
/// torn or CRC-corrupt tail ends the replay: its byte count is reported
/// in `truncated_bytes` and, when `repair` is set, physically truncated
/// from the file so subsequent appends extend a clean prefix.  Throws
/// fpm::Error on I/O failure.
[[nodiscard]] ReplayResult replay_wal(const std::string& path, bool repair);

/// See file comment.  Move-only single-writer handle.
class WalFile {
public:
    WalFile() = default;
    ~WalFile();

    WalFile(const WalFile&) = delete;
    WalFile& operator=(const WalFile&) = delete;

    /// Opens (creating if missing) `path` for appending and adopts
    /// `committed` as the valid prefix length — pass the replayed size
    /// after recovery, or 0 for a fresh segment.  Closes any previously
    /// open file.  Throws fpm::Error on failure.
    void open(const std::string& path, std::uint64_t committed);

    /// Appends one framed record after the committed prefix (truncating
    /// any torn bytes a previous failure left).  Fires the
    /// `store.append` fault point: an injected failure writes a
    /// deliberately torn half-frame and throws, simulating a crash
    /// mid-append.  On success the committed offset advances by the
    /// frame size (returned).  Throws serve::ServiceError
    /// (store_unavailable) on injection, fpm::Error on real I/O failure.
    std::uint64_t append(std::string_view payload);

    /// fdatasync()s the file.  Fires the `store.fsync` fault point
    /// before syncing; on injection or failure the caller should
    /// roll back the unsynced record via truncate_to().  Throws
    /// serve::ServiceError (store_unavailable) on injection.
    void fsync();

    /// Truncates the file (and the committed offset) back to `offset` —
    /// the rollback half of append()+fsync().
    void truncate_to(std::uint64_t offset);

    void close() noexcept;

    [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }
    [[nodiscard]] std::uint64_t committed_bytes() const noexcept {
        return committed_;
    }
    [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
    int fd_ = -1;
    std::string path_;
    std::uint64_t committed_ = 0;
};

/// Encodes one frame (header + payload) — exposed for the snapshot
/// writer and the tests' corruption harness.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// fsync()s a directory so a just-created or just-renamed entry is
/// durable.  Best-effort: ignores file systems that reject dir fsync.
void fsync_dir(const std::string& dir);

} // namespace fpm::store

/// \file model_store.hpp
/// \brief Durable model store: WAL + snapshot crash recovery for the
///        partition service.
///
/// FPMs are hours of statistically reliable sweeps per device, and the
/// adaptation loop (fpm::adapt) keeps refining them online — so every
/// published registry generation is expensive state that, before this
/// subsystem, lived only in RAM.  ModelStore makes the published history
/// durable with the classic WAL + checkpoint design:
///
///  * every ModelRegistry::put (an operator LOAD, an adapt republish) is
///    appended to an append-only write-ahead log *before* the registry
///    commits it (the registry's put-observer runs the append with
///    write-ahead veto semantics: a failed append fails the publish and
///    the registry keeps its previous content);
///  * every StoreOptions::snapshot_every appends the full registry
///    content is compacted into a snapshot file (written to a temp name
///    and rename()d into place, so a snapshot is atomically either
///    complete or absent), after which the WAL rotates to a fresh
///    segment and fully-covered old segments and snapshots are deleted
///    (GC);
///  * recover() rebuilds a registry from the newest *valid* snapshot
///    plus the WAL suffix, truncating a torn or CRC-corrupt tail instead
///    of failing — after a kill -9 the reconstructed registry carries
///    the same content fingerprints and the same generation counters as
///    the pre-crash one, so served plans are bit-for-bit identical.
///
/// Layout of the store directory:
///
///     wal-NNNNNN.log          active + not-yet-GC'd log segments
///     snapshot-NNNNNNNNNNNN.fpms   compacted registry at generation N
///     *.tmp                   in-progress snapshot (ignored, removed)
///
/// Durability knob: FsyncPolicy::kAlways fdatasync()s after every append
/// (a crash loses nothing that was acknowledged); kNever leaves flushing
/// to the OS (bounded loss, no fsync stall on the publish path).
///
/// Fault points for chaos drills: `store.append` (torn half-frame +
/// failed publish), `store.fsync` (append rolled back + failed publish),
/// `store.snapshot` (temp file abandoned before rename; appends keep the
/// old segment).  Metrics: store.appended, store.bytes, store.snapshots
/// counters, the store.fsync_seconds histogram and the
/// store.recovered_generation gauge — all surfaced in the STATS wire
/// reply and documented in docs/operations.md.
///
/// Threading: all public methods are safe to call concurrently; the
/// append path is serialized by the registry mutex (observer) plus the
/// store's own mutex.  recover() must run before attach().
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fpm/serve/model_registry.hpp"
#include "fpm/store/wal.hpp"

namespace fpm::store {

/// One WAL/snapshot publish record, decoded.  The encoded form is the
/// unit of both durability and replication: a text header line
/// (`publish <name> <generation> <16-hex fingerprint>`) followed by the
/// core::write_speed_functions body, carried inside a length+CRC WAL
/// frame on disk and on the replication stream alike.
struct PublishRecord {
    std::string name;
    std::uint64_t generation = 0;
    std::uint64_t fingerprint = 0;
    std::vector<core::SpeedFunction> models;
};

/// Renders the publish record for `set` (the WAL frame payload).
[[nodiscard]] std::string encode_publish_record(const serve::ModelSet& set);

/// Parses and validates a publish record; `origin` names the source in
/// error messages.  Throws fpm::Error on a malformed header or when the
/// recomputed model fingerprint disagrees with the recorded one.
[[nodiscard]] PublishRecord decode_publish_record(const std::string& payload,
                                                  const std::string& origin);

/// When the WAL is made durable relative to a publish acknowledgement.
enum class FsyncPolicy {
    kAlways,  ///< fdatasync after every append (default)
    kNever,   ///< leave flushing to the OS page cache
};

/// Parses "always" / "never"; throws fpm::Error on anything else.
[[nodiscard]] FsyncPolicy parse_fsync_policy(std::string_view text);
[[nodiscard]] std::string_view to_string(FsyncPolicy policy) noexcept;

/// See file comment.
struct StoreOptions {
    FsyncPolicy fsync_policy = FsyncPolicy::kAlways;
    /// Appends between automatic compacted snapshots; 0 disables
    /// auto-snapshots (stop() still takes the final one).
    std::uint64_t snapshot_every = 8;
};

/// What recover() reconstructed.
struct RecoveryReport {
    std::uint64_t snapshot_generation = 0;   ///< 0 = no usable snapshot
    std::uint64_t wal_records = 0;           ///< WAL suffix records applied
    std::uint64_t truncated_bytes = 0;       ///< torn tail dropped, in bytes
    std::uint64_t recovered_generation = 0;  ///< highest restored generation
    std::size_t sets = 0;                    ///< model sets reconstructed
};

/// Store-side counters (process-lifetime view also lives in fpm::obs).
struct StoreStats {
    std::uint64_t appended = 0;   ///< WAL records written
    std::uint64_t bytes = 0;      ///< WAL bytes written
    std::uint64_t snapshots = 0;  ///< compacted snapshots taken
    std::uint64_t segment = 0;    ///< active WAL segment id
};

/// A consistent copy of the store's published content, taken under the
/// store mutex for replication snapshot transfer: the encoded publish
/// record of every live set plus the WAL position a stream resuming
/// after this snapshot starts from.
struct ReplSnapshot {
    std::vector<std::string> payloads;     ///< encoded publish records
    std::uint64_t next_generation = 1;     ///< registry counter to resume at
    std::uint64_t segment = 0;             ///< active WAL segment id
    std::uint64_t offset = 0;              ///< committed bytes in that segment
};

/// See file comment.
class ModelStore {
public:
    /// Opens (creating if needed) the store rooted at `dir`.  Throws
    /// fpm::Error when the directory cannot be created.
    explicit ModelStore(std::string dir, StoreOptions options = {});

    /// stop()s: takes the final snapshot unless abandon()ed.
    ~ModelStore();

    ModelStore(const ModelStore&) = delete;
    ModelStore& operator=(const ModelStore&) = delete;

    /// Rebuilds `registry` from the newest valid snapshot plus the WAL
    /// suffix (see file comment); repairs a torn tail in place.  Must be
    /// called before attach(), on a registry with no conflicting
    /// content.  Idempotent per store lifetime only in the trivial
    /// empty-store case; call exactly once.  Throws fpm::Error on
    /// unreadable files (not on torn tails — those truncate).
    RecoveryReport recover(serve::ModelRegistry& registry);

    /// Mirrors the registry's current content into the store and
    /// installs the write-ahead put observer: from here on every put is
    /// logged before it commits.  The store must outlive the registry's
    /// use of the observer; stop()/destruction detaches it.
    void attach(serve::ModelRegistry& registry);

    /// Appends one publish record (called by the put observer; exposed
    /// for direct use in tests/tools).  Throws serve::ServiceError
    /// (store_unavailable) when the append or its fsync fails — the WAL
    /// is rolled back to the previous record boundary first, so a failed
    /// publish leaves no trace.
    void append(const serve::ModelSet& set);

    /// Takes a compacted snapshot now (no-op when nothing was appended
    /// since the last one), rotates the WAL and GCs covered segments.
    /// Throws serve::ServiceError on an injected store.snapshot fault
    /// (the temp file is abandoned; the store keeps appending to the
    /// current segment).
    void snapshot();

    /// Graceful shutdown: detaches from the registry, takes the final
    /// snapshot (best-effort) and closes the log.  Idempotent.
    void stop();

    /// Test hook simulating a crash: detaches and closes *without* the
    /// final snapshot, leaving the on-disk state exactly as a kill -9
    /// would.  The destructor then does nothing.
    void abandon() noexcept;

    [[nodiscard]] RecoveryReport last_recovery() const;
    [[nodiscard]] StoreStats stats() const;
    [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
    [[nodiscard]] const StoreOptions& options() const noexcept {
        return options_;
    }

    // -- replication hooks (consumed by fpm::repl) ---------------------

    /// The file name of WAL segment `id` (`wal-NNNNNN.log`).
    [[nodiscard]] static std::string segment_file_name(std::uint64_t id);

    /// Absolute path of WAL segment `id` inside this store.
    [[nodiscard]] std::string segment_path(std::uint64_t id) const {
        return dir_ + "/" + segment_file_name(id);
    }

    /// The committed WAL position: (active segment id, committed bytes).
    /// Readers tailing the active segment must clamp to this offset —
    /// bytes past it may be a torn frame from an injected append fault.
    [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> wal_position() const;

    /// Highest generation the store has committed (0 when empty).
    [[nodiscard]] std::uint64_t committed_generation() const;

    /// Consistent snapshot of the published content for replication
    /// transfer (see ReplSnapshot).
    [[nodiscard]] ReplSnapshot replication_snapshot() const;

    /// The seal point of the segment retired by the most recent WAL
    /// rotation: (segment id, final committed bytes), or (0, 0) before
    /// any rotation.  A follower standing exactly here has missed
    /// nothing and resumes at the next segment; any other position in a
    /// GC'd segment needs the snapshot fallback.
    [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> last_seal() const;

    /// Installs (or clears, with an empty function) a hook invoked —
    /// outside the store mutex, on the appending thread — after every
    /// committed append and after every snapshot rotation.  The
    /// ReplicationLog uses it to wake tailing sessions; the hook must be
    /// cheap and must not call back into the store.
    void set_commit_hook(std::function<void()> hook);

private:
    void open_segment_locked(std::uint64_t segment_id, std::uint64_t committed);
    void snapshot_locked();
    void detach();
    void fire_commit_hook();

    const std::string dir_;
    const StoreOptions options_;

    mutable std::mutex mutex_;
    serve::ModelRegistry* attached_ = nullptr;
    /// The store's own view of the published content — snapshots are
    /// written from here so the snapshot path never re-enters the
    /// registry (whose mutex is held while the observer runs).
    std::map<std::string, std::shared_ptr<const serve::ModelSet>> mirror_;
    std::uint64_t next_generation_ = 1;
    WalFile wal_;
    std::uint64_t segment_id_ = 0;
    std::uint64_t appends_since_snapshot_ = 0;
    std::uint64_t last_snapshot_generation_ = 0;
    std::uint64_t last_seal_segment_ = 0;
    std::uint64_t last_seal_offset_ = 0;
    bool stopped_ = false;
    RecoveryReport recovery_;
    StoreStats stats_;

    /// Guarded by hook_mutex_ (not mutex_): the hook is copied out and
    /// invoked after the store mutex is released.
    mutable std::mutex hook_mutex_;
    std::function<void()> commit_hook_;
};

} // namespace fpm::store

/// \file model_store.hpp
/// \brief Durable model store: WAL + snapshot crash recovery for the
///        partition service.
///
/// FPMs are hours of statistically reliable sweeps per device, and the
/// adaptation loop (fpm::adapt) keeps refining them online — so every
/// published registry generation is expensive state that, before this
/// subsystem, lived only in RAM.  ModelStore makes the published history
/// durable with the classic WAL + checkpoint design:
///
///  * every ModelRegistry::put (an operator LOAD, an adapt republish) is
///    appended to an append-only write-ahead log *before* the registry
///    commits it (the registry's put-observer runs the append with
///    write-ahead veto semantics: a failed append fails the publish and
///    the registry keeps its previous content);
///  * every StoreOptions::snapshot_every appends the full registry
///    content is compacted into a snapshot file (written to a temp name
///    and rename()d into place, so a snapshot is atomically either
///    complete or absent), after which the WAL rotates to a fresh
///    segment and fully-covered old segments and snapshots are deleted
///    (GC);
///  * recover() rebuilds a registry from the newest *valid* snapshot
///    plus the WAL suffix, truncating a torn or CRC-corrupt tail instead
///    of failing — after a kill -9 the reconstructed registry carries
///    the same content fingerprints and the same generation counters as
///    the pre-crash one, so served plans are bit-for-bit identical.
///
/// Layout of the store directory:
///
///     wal-NNNNNN.log          active + not-yet-GC'd log segments
///     snapshot-NNNNNNNNNNNN.fpms   compacted registry at generation N
///     *.tmp                   in-progress snapshot (ignored, removed)
///
/// Durability knob: FsyncPolicy::kAlways fdatasync()s after every append
/// (a crash loses nothing that was acknowledged); kNever leaves flushing
/// to the OS (bounded loss, no fsync stall on the publish path).
///
/// Fault points for chaos drills: `store.append` (torn half-frame +
/// failed publish), `store.fsync` (append rolled back + failed publish),
/// `store.snapshot` (temp file abandoned before rename; appends keep the
/// old segment).  Metrics: store.appended, store.bytes, store.snapshots
/// counters, the store.fsync_seconds histogram and the
/// store.recovered_generation gauge — all surfaced in the STATS wire
/// reply and documented in docs/operations.md.
///
/// Threading: all public methods are safe to call concurrently; the
/// append path is serialized by the registry mutex (observer) plus the
/// store's own mutex.  recover() must run before attach().
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "fpm/serve/model_registry.hpp"
#include "fpm/store/wal.hpp"

namespace fpm::store {

/// When the WAL is made durable relative to a publish acknowledgement.
enum class FsyncPolicy {
    kAlways,  ///< fdatasync after every append (default)
    kNever,   ///< leave flushing to the OS page cache
};

/// Parses "always" / "never"; throws fpm::Error on anything else.
[[nodiscard]] FsyncPolicy parse_fsync_policy(std::string_view text);
[[nodiscard]] std::string_view to_string(FsyncPolicy policy) noexcept;

/// See file comment.
struct StoreOptions {
    FsyncPolicy fsync_policy = FsyncPolicy::kAlways;
    /// Appends between automatic compacted snapshots; 0 disables
    /// auto-snapshots (stop() still takes the final one).
    std::uint64_t snapshot_every = 8;
};

/// What recover() reconstructed.
struct RecoveryReport {
    std::uint64_t snapshot_generation = 0;   ///< 0 = no usable snapshot
    std::uint64_t wal_records = 0;           ///< WAL suffix records applied
    std::uint64_t truncated_bytes = 0;       ///< torn tail dropped, in bytes
    std::uint64_t recovered_generation = 0;  ///< highest restored generation
    std::size_t sets = 0;                    ///< model sets reconstructed
};

/// Store-side counters (process-lifetime view also lives in fpm::obs).
struct StoreStats {
    std::uint64_t appended = 0;   ///< WAL records written
    std::uint64_t bytes = 0;      ///< WAL bytes written
    std::uint64_t snapshots = 0;  ///< compacted snapshots taken
    std::uint64_t segment = 0;    ///< active WAL segment id
};

/// See file comment.
class ModelStore {
public:
    /// Opens (creating if needed) the store rooted at `dir`.  Throws
    /// fpm::Error when the directory cannot be created.
    explicit ModelStore(std::string dir, StoreOptions options = {});

    /// stop()s: takes the final snapshot unless abandon()ed.
    ~ModelStore();

    ModelStore(const ModelStore&) = delete;
    ModelStore& operator=(const ModelStore&) = delete;

    /// Rebuilds `registry` from the newest valid snapshot plus the WAL
    /// suffix (see file comment); repairs a torn tail in place.  Must be
    /// called before attach(), on a registry with no conflicting
    /// content.  Idempotent per store lifetime only in the trivial
    /// empty-store case; call exactly once.  Throws fpm::Error on
    /// unreadable files (not on torn tails — those truncate).
    RecoveryReport recover(serve::ModelRegistry& registry);

    /// Mirrors the registry's current content into the store and
    /// installs the write-ahead put observer: from here on every put is
    /// logged before it commits.  The store must outlive the registry's
    /// use of the observer; stop()/destruction detaches it.
    void attach(serve::ModelRegistry& registry);

    /// Appends one publish record (called by the put observer; exposed
    /// for direct use in tests/tools).  Throws serve::ServiceError
    /// (store_unavailable) when the append or its fsync fails — the WAL
    /// is rolled back to the previous record boundary first, so a failed
    /// publish leaves no trace.
    void append(const serve::ModelSet& set);

    /// Takes a compacted snapshot now (no-op when nothing was appended
    /// since the last one), rotates the WAL and GCs covered segments.
    /// Throws serve::ServiceError on an injected store.snapshot fault
    /// (the temp file is abandoned; the store keeps appending to the
    /// current segment).
    void snapshot();

    /// Graceful shutdown: detaches from the registry, takes the final
    /// snapshot (best-effort) and closes the log.  Idempotent.
    void stop();

    /// Test hook simulating a crash: detaches and closes *without* the
    /// final snapshot, leaving the on-disk state exactly as a kill -9
    /// would.  The destructor then does nothing.
    void abandon() noexcept;

    [[nodiscard]] RecoveryReport last_recovery() const;
    [[nodiscard]] StoreStats stats() const;
    [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
    [[nodiscard]] const StoreOptions& options() const noexcept {
        return options_;
    }

private:
    void open_segment_locked(std::uint64_t segment_id, std::uint64_t committed);
    void snapshot_locked();
    void detach();

    const std::string dir_;
    const StoreOptions options_;

    mutable std::mutex mutex_;
    serve::ModelRegistry* attached_ = nullptr;
    /// The store's own view of the published content — snapshots are
    /// written from here so the snapshot path never re-enters the
    /// registry (whose mutex is held while the observer runs).
    std::map<std::string, std::shared_ptr<const serve::ModelSet>> mirror_;
    std::uint64_t next_generation_ = 1;
    WalFile wal_;
    std::uint64_t segment_id_ = 0;
    std::uint64_t appends_since_snapshot_ = 0;
    std::uint64_t last_snapshot_generation_ = 0;
    bool stopped_ = false;
    RecoveryReport recovery_;
    StoreStats stats_;
};

} // namespace fpm::store

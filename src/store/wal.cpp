#include "fpm/store/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "fpm/common/error.hpp"
#include "fpm/fault/fault.hpp"
#include "fpm/serve/error.hpp"

namespace fpm::store {

namespace {

/// Frames larger than this are treated as corruption during replay (a
/// real record is a few KiB of model CSV; 1 GiB means a garbage header).
constexpr std::uint32_t kMaxFrameBytes = 1u << 30;
constexpr std::size_t kHeaderBytes = 8;

std::array<std::uint32_t, 256> make_crc_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit) {
            c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        }
        table[i] = c;
    }
    return table;
}

void put_u32_le(std::string& out, std::uint32_t value) {
    out.push_back(static_cast<char>(value & 0xFF));
    out.push_back(static_cast<char>((value >> 8) & 0xFF));
    out.push_back(static_cast<char>((value >> 16) & 0xFF));
    out.push_back(static_cast<char>((value >> 24) & 0xFF));
}

std::uint32_t get_u32_le(const unsigned char* bytes) {
    return static_cast<std::uint32_t>(bytes[0]) |
           (static_cast<std::uint32_t>(bytes[1]) << 8) |
           (static_cast<std::uint32_t>(bytes[2]) << 16) |
           (static_cast<std::uint32_t>(bytes[3]) << 24);
}

void write_all_at(int fd, const char* data, std::size_t size,
                  std::uint64_t offset, const std::string& path) {
    std::size_t written = 0;
    while (written < size) {
        const ssize_t n = ::pwrite(fd, data + written, size - written,
                                   static_cast<off_t>(offset + written));
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            throw Error("pwrite(" + path + "): " + std::strerror(errno));
        }
        written += static_cast<std::size_t>(n);
    }
}

} // namespace

std::uint32_t crc32(const void* data, std::size_t size) noexcept {
    static const auto table = make_crc_table();
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i) {
        c = table[(c ^ bytes[i]) & 0xFF] ^ (c >> 8);
    }
    return c ^ 0xFFFFFFFFu;
}

std::string encode_frame(std::string_view payload) {
    std::string frame;
    frame.reserve(kHeaderBytes + payload.size());
    put_u32_le(frame, static_cast<std::uint32_t>(payload.size()));
    put_u32_le(frame, crc32(payload.data(), payload.size()));
    frame.append(payload.data(), payload.size());
    return frame;
}

ReplayResult replay_wal(const std::string& path, bool repair) {
    const int fd = ::open(path.c_str(), repair ? O_RDWR : O_RDONLY, 0);
    FPM_CHECK(fd >= 0, "cannot open log: " + path + ": " +
                           std::strerror(errno));

    ReplayResult result;
    std::string contents;
    try {
        char chunk[1 << 16];
        for (;;) {
            const ssize_t n = ::read(fd, chunk, sizeof chunk);
            if (n < 0) {
                if (errno == EINTR) {
                    continue;
                }
                throw Error("read(" + path + "): " + std::strerror(errno));
            }
            if (n == 0) {
                break;
            }
            contents.append(chunk, static_cast<std::size_t>(n));
        }

        std::size_t offset = 0;
        const auto* bytes =
            reinterpret_cast<const unsigned char*>(contents.data());
        while (contents.size() - offset >= kHeaderBytes) {
            const std::uint32_t length = get_u32_le(bytes + offset);
            const std::uint32_t expected_crc = get_u32_le(bytes + offset + 4);
            if (length > kMaxFrameBytes ||
                contents.size() - offset - kHeaderBytes < length) {
                break;  // torn or garbage header: tail starts here
            }
            const char* payload = contents.data() + offset + kHeaderBytes;
            if (crc32(payload, length) != expected_crc) {
                break;  // corrupt record: everything from here is suspect
            }
            result.payloads.emplace_back(payload, length);
            offset += kHeaderBytes + length;
        }
        result.truncated_bytes = contents.size() - offset;
        if (result.truncated_bytes > 0 && repair) {
            FPM_CHECK(::ftruncate(fd, static_cast<off_t>(offset)) == 0,
                      "ftruncate(" + path + "): " + std::strerror(errno));
        }
    } catch (...) {
        ::close(fd);
        throw;
    }
    ::close(fd);
    return result;
}

WalFile::~WalFile() { close(); }

void WalFile::open(const std::string& path, std::uint64_t committed) {
    close();
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    FPM_CHECK(fd_ >= 0,
              "cannot open log: " + path + ": " + std::strerror(errno));
    path_ = path;
    committed_ = committed;
}

std::uint64_t WalFile::append(std::string_view payload) {
    FPM_CHECK(fd_ >= 0, "log is not open");

    // Drop any torn bytes a previous failed append left past the
    // committed prefix, so every frame lands on a clean boundary.
    struct stat st{};
    FPM_CHECK(::fstat(fd_, &st) == 0,
              "fstat(" + path_ + "): " + std::strerror(errno));
    if (static_cast<std::uint64_t>(st.st_size) != committed_) {
        truncate_to(committed_);
    }

    const std::string frame = encode_frame(payload);

    static auto& append_fault = fault::point("store.append");
    if (append_fault.fire()) {
        // Simulated crash mid-append: half the frame reaches the disk,
        // then the write "fails".  The torn tail stays until the next
        // append (self-heal above) or a replay repair truncates it —
        // exactly what a kill -9 between two pwrites produces.
        write_all_at(fd_, frame.data(), frame.size() / 2, committed_, path_);
        throw serve::ServiceError(serve::ErrorCode::kStoreUnavailable,
                                  "injected fault: store.append");
    }

    write_all_at(fd_, frame.data(), frame.size(), committed_, path_);
    committed_ += frame.size();
    return frame.size();
}

void WalFile::fsync() {
    FPM_CHECK(fd_ >= 0, "log is not open");
    static auto& fsync_fault = fault::point("store.fsync");
    if (fsync_fault.fire()) {
        throw serve::ServiceError(serve::ErrorCode::kStoreUnavailable,
                                  "injected fault: store.fsync");
    }
    FPM_CHECK(::fdatasync(fd_) == 0,
              "fdatasync(" + path_ + "): " + std::strerror(errno));
}

void WalFile::truncate_to(std::uint64_t offset) {
    FPM_CHECK(fd_ >= 0, "log is not open");
    FPM_CHECK(::ftruncate(fd_, static_cast<off_t>(offset)) == 0,
              "ftruncate(" + path_ + "): " + std::strerror(errno));
    committed_ = offset;
}

void WalFile::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    path_.clear();
    committed_ = 0;
}

void fsync_dir(const std::string& dir) {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) {
        return;
    }
    (void)::fsync(fd);  // some filesystems reject dir fsync; best-effort
    ::close(fd);
}

} // namespace fpm::store

#include "fpm/store/model_store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <vector>

#include "fpm/common/error.hpp"
#include "fpm/core/model_io.hpp"
#include "fpm/fault/fault.hpp"
#include "fpm/obs/metrics.hpp"
#include "fpm/serve/error.hpp"

namespace fpm::store {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace {

constexpr const char* kSnapshotMagic = "fpmstore";
constexpr const char* kSnapshotVersion = "v1";

std::string segment_name(std::uint64_t id) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "wal-%06llu.log",
                  static_cast<unsigned long long>(id));
    return buffer;
}

std::string snapshot_name(std::uint64_t generation) {
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "snapshot-%012llu.fpms",
                  static_cast<unsigned long long>(generation));
    return buffer;
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
    char buffer[20];
    std::snprintf(buffer, sizeof buffer, "%016llx",
                  static_cast<unsigned long long>(fingerprint));
    return buffer;
}

/// Extracts the numeric infix of `wal-NNNNNN.log` / `snapshot-NNN.fpms`
/// file names; returns false for anything else in the directory.
bool parse_numbered_name(const std::string& name, std::string_view prefix,
                         std::string_view suffix, std::uint64_t& value) {
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
        return false;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
        return false;
    }
    value = std::strtoull(digits.c_str(), nullptr, 10);
    return true;
}

void write_file_durably(const std::string& path, const std::string& contents) {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    FPM_CHECK(fd >= 0,
              "cannot create " + path + ": " + std::strerror(errno));
    std::size_t written = 0;
    while (written < contents.size()) {
        const ssize_t n =
            ::write(fd, contents.data() + written, contents.size() - written);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            const std::string reason = std::strerror(errno);
            ::close(fd);
            throw Error("write(" + path + "): " + reason);
        }
        written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        const std::string reason = std::strerror(errno);
        ::close(fd);
        throw Error("fsync(" + path + "): " + reason);
    }
    ::close(fd);
}

} // namespace

std::string encode_publish_record(const serve::ModelSet& set) {
    std::ostringstream out;
    out << "publish " << set.name << ' ' << set.generation << ' '
        << fingerprint_hex(set.fingerprint) << '\n';
    core::write_speed_functions(out, set.models);
    return out.str();
}

PublishRecord decode_publish_record(const std::string& payload,
                                    const std::string& origin) {
    std::istringstream in(payload);
    std::string header;
    FPM_CHECK(std::getline(in, header),
              origin + ": empty publish record");
    std::istringstream fields(header);
    std::string verb;
    std::string fingerprint;
    PublishRecord record;
    fields >> verb >> record.name >> record.generation >> fingerprint;
    FPM_CHECK(verb == "publish" && !record.name.empty() &&
                  record.generation > 0 && fingerprint.size() == 16,
              origin + ": malformed publish header '" + header + "'");
    record.fingerprint = std::strtoull(fingerprint.c_str(), nullptr, 16);
    record.models = core::read_speed_functions(in, origin);

    // The CRC already guards against bit rot; the fingerprint check
    // catches a writer/reader logic mismatch, which must never be
    // silently served.
    FPM_CHECK(serve::fingerprint_models(record.models) == record.fingerprint,
              origin + ": fingerprint mismatch for set '" + record.name + "'");
    return record;
}

FsyncPolicy parse_fsync_policy(std::string_view text) {
    if (text == "always") {
        return FsyncPolicy::kAlways;
    }
    if (text == "never") {
        return FsyncPolicy::kNever;
    }
    throw Error("unknown fsync policy '" + std::string(text) +
                "' (want always|never)");
}

std::string_view to_string(FsyncPolicy policy) noexcept {
    return policy == FsyncPolicy::kAlways ? "always" : "never";
}

ModelStore::ModelStore(std::string dir, StoreOptions options)
    : dir_(std::move(dir)), options_(options) {
    FPM_CHECK(!dir_.empty(), "store directory must not be empty");
    std::error_code ec;
    fs::create_directories(dir_, ec);
    FPM_CHECK(!ec, "cannot create store directory " + dir_ + ": " +
                       ec.message());
}

ModelStore::~ModelStore() {
    try {
        stop();
    } catch (...) {
        // Destructor shutdown is best-effort; WAL records are already
        // durable, only the final compaction is lost.
    }
}

RecoveryReport ModelStore::recover(serve::ModelRegistry& registry) {
    {
        std::lock_guard lock(mutex_);
        FPM_CHECK(!stopped_, "store is stopped");
        FPM_CHECK(!wal_.is_open(),
                  "recover() must run before the store is live");
    }
    // The replay below runs without the store mutex: recover() is
    // guaranteed to precede attach()/append() (checked above and
    // re-checked at commit), and registry.restore() takes the registry
    // mutex — which live put() observers hold while waiting on the store
    // mutex (registry -> store).  Holding the store mutex across
    // restore() would close that cycle into a deadlock.
    std::map<std::string, std::shared_ptr<const serve::ModelSet>> mirror;
    std::uint64_t next_generation = 1;
    std::uint64_t snapshot_generation = 0;

    // Inventory the directory: in-progress snapshot leftovers go away,
    // everything else is sorted for replay.
    std::vector<std::uint64_t> snapshots;
    std::vector<std::uint64_t> segments;
    for (const auto& entry : fs::directory_iterator(dir_)) {
        const std::string name = entry.path().filename().string();
        std::uint64_t value = 0;
        if (name.size() > 4 && name.ends_with(".tmp")) {
            std::error_code ec;
            fs::remove(entry.path(), ec);
        } else if (parse_numbered_name(name, "snapshot-", ".fpms", value)) {
            snapshots.push_back(value);
        } else if (parse_numbered_name(name, "wal-", ".log", value)) {
            segments.push_back(value);
        }
    }
    std::sort(snapshots.rbegin(), snapshots.rend());
    std::sort(segments.begin(), segments.end());

    RecoveryReport report;

    // Newest snapshot that validates end to end wins; an unreadable or
    // torn one (crash during rename on a weaker filesystem) falls back
    // to the next-older.  A snapshot is one framed file: header frame
    // plus one publish record per set, so replay_wal() is the validator.
    for (const std::uint64_t generation : snapshots) {
        const std::string path = dir_ + "/" + snapshot_name(generation);
        try {
            const ReplayResult replay = replay_wal(path, /*repair=*/false);
            FPM_CHECK(replay.truncated_bytes == 0 && !replay.payloads.empty(),
                      "torn snapshot");
            std::istringstream header(replay.payloads.front());
            std::string magic;
            std::string version;
            std::string next_field;
            std::string sets_field;
            header >> magic >> version >> next_field >> sets_field;
            FPM_CHECK(magic == kSnapshotMagic && version == kSnapshotVersion &&
                          next_field.starts_with("next=") &&
                          sets_field.starts_with("sets="),
                      "malformed snapshot header");
            const std::uint64_t next =
                std::strtoull(next_field.c_str() + 5, nullptr, 10);
            const std::uint64_t sets =
                std::strtoull(sets_field.c_str() + 5, nullptr, 10);
            FPM_CHECK(replay.payloads.size() == sets + 1,
                      "snapshot holds " +
                          std::to_string(replay.payloads.size() - 1) +
                          " sets, header promises " + std::to_string(sets));

            std::map<std::string, std::shared_ptr<const serve::ModelSet>>
                restored;
            for (std::size_t i = 1; i < replay.payloads.size(); ++i) {
                PublishRecord record =
                    decode_publish_record(replay.payloads[i], path);
                auto set = registry.restore(record.name,
                                            std::move(record.models),
                                            record.generation);
                restored[set->name] = set;
            }
            mirror = std::move(restored);
            next_generation = std::max<std::uint64_t>(next, 1);
            report.snapshot_generation = generation;
            snapshot_generation = generation;
            break;
        } catch (const Error&) {
            // Fall through to the next-older snapshot; this one stays on
            // disk for post-mortems until the next GC.
        }
    }

    // Replay the WAL suffix.  A torn tail ends recovery at that exact
    // point: later segments cannot exist legitimately (rotation only
    // happens after a successful snapshot), so they are dropped too.
    bool torn = false;
    for (std::size_t i = 0; i < segments.size(); ++i) {
        const std::string path = dir_ + "/" + segment_name(segments[i]);
        if (torn) {
            std::error_code ec;
            const auto size = fs::file_size(path, ec);
            report.truncated_bytes += ec ? 0 : size;
            fs::remove(path, ec);
            continue;
        }
        const ReplayResult replay = replay_wal(path, /*repair=*/true);
        report.truncated_bytes += replay.truncated_bytes;
        torn = replay.truncated_bytes > 0;
        for (const std::string& payload : replay.payloads) {
            PublishRecord record = decode_publish_record(payload, path);
            if (record.generation < next_generation) {
                continue;  // already covered by the snapshot
            }
            auto set = registry.restore(record.name, std::move(record.models),
                                        record.generation);
            mirror[set->name] = set;
            next_generation = record.generation + 1;
            ++report.wal_records;
        }
    }

    // Reopen the newest surviving segment for appending (its replayed,
    // repaired size is the committed prefix), or start segment 1 fresh.
    std::uint64_t active = segments.empty() ? 1 : segments.back();
    if (torn && !segments.empty()) {
        // The torn segment itself was repaired in place and stays active;
        // dropped later segments (if any) were removed above.
        for (auto it = segments.rbegin(); it != segments.rend(); ++it) {
            if (fs::exists(dir_ + "/" + segment_name(*it))) {
                active = *it;
                break;
            }
        }
    }
    struct stat st{};
    const std::string active_path = dir_ + "/" + segment_name(active);
    const std::uint64_t committed =
        ::stat(active_path.c_str(), &st) == 0
            ? static_cast<std::uint64_t>(st.st_size)
            : 0;

    std::lock_guard lock(mutex_);
    FPM_CHECK(!stopped_ && !wal_.is_open(),
              "store went live while recover() was replaying");
    mirror_ = std::move(mirror);
    next_generation_ = next_generation;
    last_snapshot_generation_ = snapshot_generation;
    open_segment_locked(active, committed);
    fsync_dir(dir_);

    report.recovered_generation = next_generation_ - 1;
    report.sets = mirror_.size();
    recovery_ = report;

    static auto& recovered_gauge =
        obs::MetricsRegistry::global().gauge("store.recovered_generation");
    recovered_gauge.set(static_cast<std::int64_t>(report.recovered_generation));
    return report;
}

void ModelStore::attach(serve::ModelRegistry& registry) {
    {
        std::lock_guard lock(mutex_);
        FPM_CHECK(!stopped_, "store is stopped");
        FPM_CHECK(attached_ == nullptr, "store is already attached");
        if (!wal_.is_open()) {
            open_segment_locked(1, 0);
        }
        attached_ = &registry;
    }
    // Content the registry already holds that the log does not (sets
    // loaded before the store existed) is logged now, so attach() is a
    // durability barrier, not just a subscription.
    for (const auto& set : registry.snapshot()) {
        bool logged = false;
        {
            std::lock_guard lock(mutex_);
            const auto it = mirror_.find(set->name);
            logged = it != mirror_.end() &&
                     it->second->generation == set->generation;
        }
        if (!logged) {
            append(*set);
        }
    }
    registry.set_put_observer(
        [this](const serve::ModelSet& set) { this->append(set); });
}

void ModelStore::append(const serve::ModelSet& set) {
    static auto& appended_counter =
        obs::MetricsRegistry::global().counter("store.appended");
    static auto& bytes_counter =
        obs::MetricsRegistry::global().counter("store.bytes");
    static auto& fsync_histogram =
        obs::MetricsRegistry::global().histogram("store.fsync_seconds");

    {
        std::lock_guard lock(mutex_);
        FPM_CHECK(!stopped_, "store is stopped");
        FPM_CHECK(wal_.is_open(), "store log is not open");

        const std::string payload = encode_publish_record(set);
        const std::uint64_t before = wal_.committed_bytes();
        const std::uint64_t frame_size = wal_.append(payload);
        if (options_.fsync_policy == FsyncPolicy::kAlways) {
            const auto start = Clock::now();
            try {
                wal_.fsync();
            } catch (...) {
                // The record is written but not durable: roll it back so
                // a failed publish leaves no trace (the registry veto
                // depends on this — log and registry must agree record
                // for record).
                wal_.truncate_to(before);
                throw;
            }
            fsync_histogram.record(
                std::chrono::duration<double>(Clock::now() - start).count());
        }

        mirror_[set.name] = std::make_shared<const serve::ModelSet>(set);
        next_generation_ = std::max(next_generation_, set.generation + 1);
        ++stats_.appended;
        stats_.bytes += frame_size;
        appended_counter.add(1);
        bytes_counter.add(frame_size);

        ++appends_since_snapshot_;
        if (options_.snapshot_every > 0 &&
            appends_since_snapshot_ >= options_.snapshot_every) {
            try {
                snapshot_locked();
            } catch (...) {
                // The append itself is durable; a failed compaction (full
                // disk, injected store.snapshot fault) retries at the
                // next threshold and must not fail the publish.
            }
        }
    }
    fire_commit_hook();
}

void ModelStore::snapshot() {
    {
        std::lock_guard lock(mutex_);
        FPM_CHECK(!stopped_, "store is stopped");
        snapshot_locked();
    }
    fire_commit_hook();
}

void ModelStore::snapshot_locked() {
    const std::uint64_t generation = next_generation_ - 1;
    if (mirror_.empty() || generation == last_snapshot_generation_) {
        return;  // nothing new to compact
    }

    std::string contents;
    {
        std::ostringstream header;
        header << kSnapshotMagic << ' ' << kSnapshotVersion
               << " next=" << next_generation_ << " sets=" << mirror_.size();
        contents += encode_frame(header.str());
    }
    for (const auto& [name, set] : mirror_) {
        contents += encode_frame(encode_publish_record(*set));
    }

    const std::string final_name = snapshot_name(generation);
    const std::string tmp_path = dir_ + "/" + final_name + ".tmp";
    const std::string final_path = dir_ + "/" + final_name;
    write_file_durably(tmp_path, contents);

    static auto& snapshot_fault = fault::point("store.snapshot");
    if (snapshot_fault.fire()) {
        // Simulated crash between writing the temp file and publishing
        // it: the temp file is left behind exactly as a real crash
        // would, and recovery ignores/removes it.
        throw serve::ServiceError(serve::ErrorCode::kStoreUnavailable,
                                  "injected fault: store.snapshot");
    }

    std::error_code ec;
    fs::rename(tmp_path, final_path, ec);
    FPM_CHECK(!ec, "rename(" + tmp_path + " -> " + final_path +
                       "): " + ec.message());
    fsync_dir(dir_);

    // The snapshot now covers everything: rotate to a fresh segment and
    // drop the old segments and older snapshots it superseded.
    const std::uint64_t old_segment = segment_id_;
    last_seal_segment_ = old_segment;
    last_seal_offset_ = wal_.committed_bytes();
    open_segment_locked(segment_id_ + 1, 0);
    fsync_dir(dir_);
    for (std::uint64_t id = 1; id <= old_segment; ++id) {
        fs::remove(dir_ + "/" + segment_name(id), ec);
    }
    if (last_snapshot_generation_ > 0) {
        fs::remove(dir_ + "/" + snapshot_name(last_snapshot_generation_), ec);
    }

    last_snapshot_generation_ = generation;
    appends_since_snapshot_ = 0;
    ++stats_.snapshots;
    static auto& snapshots_counter =
        obs::MetricsRegistry::global().counter("store.snapshots");
    snapshots_counter.add(1);
}

void ModelStore::stop() {
    detach();
    std::lock_guard lock(mutex_);
    if (stopped_) {
        return;
    }
    if (wal_.is_open()) {
        try {
            snapshot_locked();
        } catch (...) {
            // Best-effort compaction; the WAL already holds everything.
        }
        wal_.close();
    }
    stopped_ = true;
}

void ModelStore::abandon() noexcept {
    detach();
    std::lock_guard lock(mutex_);
    wal_.close();
    stopped_ = true;
}

void ModelStore::detach() {
    serve::ModelRegistry* registry = nullptr;
    {
        std::lock_guard lock(mutex_);
        registry = attached_;
        attached_ = nullptr;
    }
    if (registry != nullptr) {
        // Outside the store mutex: set_put_observer takes the registry
        // mutex, which in-flight observer calls hold while waiting for
        // the store mutex — taking them in the other order would
        // deadlock.
        registry->set_put_observer(nullptr);
    }
}

RecoveryReport ModelStore::last_recovery() const {
    std::lock_guard lock(mutex_);
    return recovery_;
}

StoreStats ModelStore::stats() const {
    std::lock_guard lock(mutex_);
    return stats_;
}

std::string ModelStore::segment_file_name(std::uint64_t id) {
    return segment_name(id);
}

std::pair<std::uint64_t, std::uint64_t> ModelStore::wal_position() const {
    std::lock_guard lock(mutex_);
    return {segment_id_, wal_.is_open() ? wal_.committed_bytes() : 0};
}

std::uint64_t ModelStore::committed_generation() const {
    std::lock_guard lock(mutex_);
    return next_generation_ - 1;
}

ReplSnapshot ModelStore::replication_snapshot() const {
    std::lock_guard lock(mutex_);
    ReplSnapshot snap;
    snap.payloads.reserve(mirror_.size());
    for (const auto& [name, set] : mirror_) {
        snap.payloads.push_back(encode_publish_record(*set));
    }
    snap.next_generation = next_generation_;
    snap.segment = segment_id_;
    snap.offset = wal_.is_open() ? wal_.committed_bytes() : 0;
    return snap;
}

std::pair<std::uint64_t, std::uint64_t> ModelStore::last_seal() const {
    std::lock_guard lock(mutex_);
    return {last_seal_segment_, last_seal_offset_};
}

void ModelStore::set_commit_hook(std::function<void()> hook) {
    std::lock_guard lock(hook_mutex_);
    commit_hook_ = std::move(hook);
}

void ModelStore::fire_commit_hook() {
    std::function<void()> hook;
    {
        std::lock_guard lock(hook_mutex_);
        hook = commit_hook_;
    }
    if (hook) {
        hook();
    }
}

void ModelStore::open_segment_locked(std::uint64_t segment_id,
                                     std::uint64_t committed) {
    wal_.open(dir_ + "/" + segment_name(segment_id), committed);
    segment_id_ = segment_id;
    stats_.segment = segment_id;
}

} // namespace fpm::store

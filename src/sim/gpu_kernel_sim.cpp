#include "fpm/sim/gpu_kernel_sim.hpp"

#include <cmath>

#include "fpm/common/math.hpp"

namespace fpm::sim {

std::pair<std::int64_t, std::int64_t> square_dims(double area_blocks) {
    FPM_CHECK(area_blocks >= 1.0, "area must be at least one block");
    const auto w = static_cast<std::int64_t>(
        std::max(1.0, std::round(std::sqrt(area_blocks))));
    const auto h = static_cast<std::int64_t>(
        std::ceil(area_blocks / static_cast<double>(w)));
    return {w, h};
}

GpuKernelSim::GpuKernelSim(GpuModel model) : model_(std::move(model)) {}

GpuKernelTiming GpuKernelSim::time_invocation(std::int64_t width_blocks,
                                              std::int64_t height_blocks,
                                              KernelVersion version,
                                              double rate_factor,
                                              bool reversed) const {
    FPM_CHECK(rate_factor > 0.0 && rate_factor <= 1.0,
              "rate_factor must be in (0, 1]");

    OocPlanRequest req;
    req.width_blocks = width_blocks;
    req.height_blocks = height_blocks;
    req.capacity_blocks = model_.capacity_blocks();
    req.version = version;
    req.block_size = static_cast<std::int64_t>(model_.block_size());
    req.reversed = reversed;
    const OocPlan plan = build_ooc_plan(req);

    // Version 3 uses the overlapped schedule only when there is something
    // to overlap; the in-core case degenerates to the serial v2 path.
    if (version == KernelVersion::kV3 && !plan.in_core && plan.chunks.size() > 1) {
        return run_overlapped(plan, rate_factor);
    }
    return run_serial(plan, rate_factor);
}

GpuKernelTiming GpuKernelSim::run_serial(const OocPlan& plan,
                                         double rate_factor) const {
    GpuKernelTiming t;
    t.plan = plan;

    const double w = static_cast<double>(plan.request.width_blocks);

    // Resource contention with busy CPU cores slows the kernel (shared
    // device/host pressure) and the transfers (the host memory feeding
    // the DMA is busy) alike, so the whole invocation scales by
    // 1 / rate_factor.
    // Pivot row B(b): uploaded once per invocation.
    t.h2d_s += model_.transfer_time(w, TransferPath::kPageable) / rate_factor;

    for (const auto& chunk : plan.chunks) {
        const double rows = static_cast<double>(chunk.rows());
        const double area = rows * w;
        // Pivot-column part A(b) for this band: always fresh.
        t.h2d_s += model_.transfer_time(rows, TransferPath::kPageable) / rate_factor;
        if (!chunk.skip_upload) {
            t.h2d_s += model_.transfer_time(area, TransferPath::kPageable) / rate_factor;
        }
        t.compute_s += model_.compute_time(area) / rate_factor;
        if (!chunk.skip_download) {
            t.d2h_s += model_.transfer_time(area, TransferPath::kPageable) / rate_factor;
        }
    }

    t.total_s = t.h2d_s + t.compute_s + t.d2h_s;
    return t;
}

GpuKernelTiming GpuKernelSim::run_overlapped(const OocPlan& plan,
                                             double rate_factor) const {
    GpuKernelTiming t;
    t.plan = plan;

    Timeline& tl = t.timeline;
    const auto compute = tl.add_resource("compute");
    const auto h2d = tl.add_resource("h2d");
    // A single DMA engine serialises both directions on one resource.
    const auto d2h =
        (model_.spec().dma_engines >= 2) ? tl.add_resource("d2h") : h2d;

    const double w = static_cast<double>(plan.request.width_blocks);
    const std::size_t n = plan.chunks.size();

    // Pre-compute the transfer durations: in the double-buffered steady
    // state the upload of chunk i+1 and the download of chunk i-1 overlap
    // the compute of chunk i, and that DMA traffic interferes with the
    // kernel (shared device-memory bandwidth).  Each compute op is
    // extended by interference * (overlapping transfer time), so the
    // out-of-core makespan lands near compute + interference * transfers —
    // the saturation the paper's version-3 measurements show.
    std::vector<double> up_time(n, 0.0);
    std::vector<double> down_time(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const auto& chunk = plan.chunks[i];
        const double rows = static_cast<double>(chunk.rows());
        const double area = rows * w;
        up_time[i] = model_.transfer_time(rows, TransferPath::kPinned);
        if (!chunk.skip_upload) {
            up_time[i] += model_.transfer_time(area, TransferPath::kPinned);
        }
        if (!chunk.skip_download) {
            down_time[i] = model_.transfer_time(area, TransferPath::kPinned);
        }
        // Contention with busy CPU cores slows the DMA path too (the host
        // memory feeding the transfers is busy).
        up_time[i] /= rate_factor;
        down_time[i] /= rate_factor;
    }

    // B(b) upload first (buffer B0), pinned path.
    const auto b_up = tl.add_op(
        h2d, model_.transfer_time(w, TransferPath::kPinned) / rate_factor, {},
        "B");

    std::vector<Timeline::OpId> h2d_ops(n);
    std::vector<Timeline::OpId> comp_ops(n);
    std::vector<Timeline::OpId> d2h_ops(n, static_cast<Timeline::OpId>(-1));
    const double interference = model_.spec().copy_compute_interference;

    // Software-pipelined issue order, as a double-buffered host driver
    // would submit its streams: prefetch the uploads of the first two
    // chunks, then per chunk compute -> drain -> prefetch the upload that
    // reuses the drained C buffer.  (A naive in-loop-order submission
    // would make the single shared DMA engine process D_{i-1} before H_i
    // and serialise the whole pipeline.)
    auto submit_upload = [&](std::size_t i) {
        // With two C buffers, the upload of chunk i reuses the buffer
        // drained by chunk i-2.
        std::vector<Timeline::OpId> up_deps = {b_up};
        if (i >= 2 && d2h_ops[i - 2] != static_cast<Timeline::OpId>(-1)) {
            up_deps.push_back(d2h_ops[i - 2]);
        }
        h2d_ops[i] = tl.add_op(h2d, up_time[i], up_deps, "H");
    };
    submit_upload(0);
    if (n > 1) {
        submit_upload(1);
    }

    for (std::size_t i = 0; i < n; ++i) {
        const auto& chunk = plan.chunks[i];
        const double rows = static_cast<double>(chunk.rows());
        const double area = rows * w;

        // Compute, stretched by the interference of the DMA traffic that
        // overlaps it (next chunk's upload, previous chunk's download).
        double overlapping_dma = 0.0;
        if (i + 1 < n) {
            overlapping_dma += up_time[i + 1];
        }
        if (i >= 1) {
            overlapping_dma += down_time[i - 1];
        }
        const double comp_time =
            model_.compute_time(area) / rate_factor +
            interference * overlapping_dma;
        comp_ops[i] = tl.add_op(compute, comp_time, {h2d_ops[i]}, "C");

        if (!chunk.skip_download) {
            d2h_ops[i] = tl.add_op(d2h, down_time[i], {comp_ops[i]}, "D");
        }
        if (i + 2 < n) {
            submit_upload(i + 2);
        }
    }

    t.total_s = tl.makespan();
    t.compute_s = tl.busy_time(compute);
    t.h2d_s = tl.busy_time(h2d);
    t.d2h_s = (d2h == h2d) ? 0.0 : tl.busy_time(d2h);
    return t;
}

std::pair<GpuKernelTiming, double> GpuKernelSim::time_square_update(
    double area_blocks, KernelVersion version, double rate_factor) const {
    auto [w, h] = square_dims(area_blocks);

    // A near-square Ci may be too wide for the device buffers (one band of
    // w blocks plus pivots must fit; versions 2/3 need two bands).  Real
    // out-of-core kernels narrow the tile instead of failing, so clamp the
    // width to the widest feasible band and grow the height.
    const double cap = model_.capacity_blocks();
    const double buffers = (version == KernelVersion::kV1) ? 1.0 : 2.0;
    const auto max_width =
        static_cast<std::int64_t>((cap - buffers) / (buffers + 1.0));
    FPM_CHECK(max_width >= 1,
              "device memory cannot hold even a one-block-wide band");
    if (w > max_width) {
        w = max_width;
        h = static_cast<std::int64_t>(
            std::ceil(area_blocks / static_cast<double>(w)));
    }

    GpuKernelTiming timing = time_invocation(w, h, version, rate_factor);
    return {std::move(timing), static_cast<double>(w) * static_cast<double>(h)};
}

} // namespace fpm::sim

#include "fpm/sim/stencil_model.hpp"

#include <algorithm>

namespace fpm::sim {

namespace {

void check_spec(const StencilSpec& spec) {
    FPM_CHECK(spec.cols >= 1, "stencil needs at least one column");
    FPM_CHECK(spec.flops_per_cell > 0.0 && spec.bytes_per_cell > 0.0,
              "stencil cost parameters must be positive");
    FPM_CHECK(spec.bandwidth_efficiency > 0.0 && spec.bandwidth_efficiency <= 1.0,
              "bandwidth efficiency must be in (0, 1]");
    FPM_CHECK(spec.socket_bandwidth_gbs > 0.0,
              "socket bandwidth must be positive");
}

} // namespace

double stencil_cpu_sweep_time(const HybridNode& node, std::size_t socket,
                              unsigned active_cores, double rows,
                              const StencilSpec& spec) {
    check_spec(spec);
    FPM_CHECK(socket < node.socket_count(), "socket index out of range");
    FPM_CHECK(rows > 0.0, "row count must be positive");
    const SocketSpec& socket_spec = node.spec().sockets[socket];
    FPM_CHECK(active_cores >= 1 && active_cores <= socket_spec.cores,
              "active core count out of range");

    const double cells = rows * static_cast<double>(spec.cols);

    // Compute bound: the cores' aggregate flop rate on streaming code
    // (no GEMM-style register blocking, so roughly 1/4 of GEMM peak).
    const double flop_rate = static_cast<double>(active_cores) *
                             socket_spec.peak_core_gflops_sp * 1e9 * 0.25;
    const double compute_rate = flop_rate / spec.flops_per_cell;

    // Memory bound: the socket's shared DRAM bandwidth.  A single core
    // cannot issue enough outstanding misses to saturate the socket;
    // roughly three cores reach the plateau.
    const double bandwidth_share =
        std::min(1.0, static_cast<double>(active_cores) / 3.0);
    const double memory_rate = spec.socket_bandwidth_gbs * 1e9 *
                               spec.bandwidth_efficiency * bandwidth_share /
                               spec.bytes_per_cell;

    // Small bands pay loop/synchronisation overhead.
    const double ramp = rows / (rows + 2.0);
    const double rate = std::min(compute_rate, memory_rate) * ramp;
    return cells / rate;
}

double stencil_gpu_resident_rows(const HybridNode& node, std::size_t gpu,
                                 const StencilSpec& spec) {
    check_spec(spec);
    const GpuSpec& gpu_spec = node.gpu_model(gpu).spec();
    const double usable_bytes = gpu_spec.device_memory_mib * 1024.0 * 1024.0 *
                                gpu_spec.usable_memory_fraction;
    // Jacobi needs the band twice (read and write grids), single precision.
    const double bytes_per_row = static_cast<double>(spec.cols) * 4.0 * 2.0;
    return usable_bytes / bytes_per_row;
}

double stencil_gpu_sweep_time(const HybridNode& node, std::size_t gpu,
                              double rows, const StencilSpec& spec) {
    check_spec(spec);
    FPM_CHECK(gpu < node.gpu_count(), "GPU index out of range");
    FPM_CHECK(rows > 0.0, "row count must be positive");
    const GpuModel& model = node.gpu_model(gpu);
    const GpuSpec& gpu_spec = model.spec();

    const double cells = rows * static_cast<double>(spec.cols);
    const double resident_rows = stencil_gpu_resident_rows(node, gpu, spec);

    // On-device sweep at device-memory bandwidth.
    const double device_rate = gpu_spec.device_mem_bandwidth_gbs * 1e9 *
                               spec.bandwidth_efficiency / spec.bytes_per_cell;
    const double ramp = rows / (rows + 4.0);
    const double compute =
        gpu_spec.launch_overhead_s + cells / (device_rate * ramp);

    if (rows <= resident_rows) {
        // Resident band: only the halo rows cross PCIe each sweep.
        const double halo_bytes = 2.0 * static_cast<double>(spec.halo_rows) *
                                  static_cast<double>(spec.cols) * 4.0;
        return compute + 2.0 * gpu_spec.pcie_latency_s +
               2.0 * halo_bytes / (gpu_spec.pcie_pinned_gbs * 1e9);
    }

    // Out of core: the non-resident part streams over PCIe every sweep,
    // in and out; transfers overlap compute at best, so the sweep cannot
    // beat the PCIe streaming time.
    const double streamed_rows = rows - resident_rows;
    const double streamed_bytes =
        streamed_rows * static_cast<double>(spec.cols) * 4.0;
    const double pcie_time =
        2.0 * (gpu_spec.pcie_latency_s +
               streamed_bytes / (gpu_spec.pcie_pinned_gbs * 1e9));
    return std::max(compute, pcie_time) +
           0.1 * std::min(compute, pcie_time);  // imperfect overlap
}

} // namespace fpm::sim

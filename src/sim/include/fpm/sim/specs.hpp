/// \file specs.hpp
/// \brief Hardware specifications for the simulated hybrid node.
///
/// The paper's experimental platform (Table I, host `ig.icl.utk.edu`) is a
/// NUMA node with 4 six-core AMD Opteron 8439SE sockets (16 GB each),
/// accelerated by an NVIDIA GeForce GTX680 (2 GiB, two DMA engines,
/// concurrent bidirectional transfers) and a Tesla C870 (1.5 GiB, single
/// DMA engine).  These structs describe that platform for the analytic /
/// discrete-event performance model in fpm::sim.  All rate parameters are
/// calibrated against the paper's published curves; see DESIGN.md section 2
/// and EXPERIMENTS.md for the calibration rationale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fpm/common/error.hpp"

namespace fpm::sim {

/// Floating-point precision of the GEMM workload.  The paper's experiments
/// are single precision; the models scale peak rates for double.
enum class Precision { kSingle, kDouble };

/// Bytes per matrix element for the given precision.
constexpr std::size_t element_bytes(Precision p) {
    return p == Precision::kSingle ? 4 : 8;
}

/// Reference blocking factor at which all rate parameters are calibrated
/// (the paper's b = 640).
inline constexpr double kReferenceBlock = 640.0;

/// Rank-b update efficiency relative to the reference blocking factor:
/// b / (b + half), normalised to 1 at b = 640.
inline double blocking_efficiency(double b, double half) {
    return (b / (b + half)) * ((kReferenceBlock + half) / kReferenceBlock);
}

/// Bytes of one b-by-b matrix block.
constexpr double block_bytes(std::size_t block_size, Precision p) {
    return static_cast<double>(block_size) * static_cast<double>(block_size) *
           static_cast<double>(element_bytes(p));
}

/// One multicore CPU socket (NUMA domain with its own memory).
struct SocketSpec {
    std::string name = "Opteron 8439SE";
    unsigned cores = 6;
    double clock_ghz = 2.8;
    double memory_gib = 16.0;

    /// Peak sustained single-precision GEMM rate of one core (GFlop/s)
    /// with no sharing.  Calibrated so a 6-core socket delivers the
    /// 100-115 GFlop/s band of the paper's Fig. 2.
    double peak_core_gflops_sp = 24.0;

    /// Small-problem ramp: rate scales by x/(x + ramp_half_blocks) where x
    /// is the per-core problem area in blocks.  Models loop/launch overhead
    /// dominating tiny kernels.
    double ramp_half_blocks = 2.0;

    /// Large-problem decline: working sets past the per-core cache share
    /// lose up to `cache_decline_max` of the rate with characteristic
    /// scale `cache_decline_blocks` (gentle hump shape of Fig. 2).
    double cache_decline_max = 0.06;
    double cache_decline_blocks = 80.0;

    /// Shared-resource contention between cores of one socket: the rate of
    /// each of c active cores scales by 1 / (1 + gamma * (c - 1)).
    /// Produces the sub-linear socket scaling the paper reports.
    double contention_gamma = 0.03;

    /// The kernel is a rank-b update (inner GEMM dimension = the blocking
    /// factor b), so its efficiency grows with b: the rate scales by
    /// b / (b + gemm_inner_dim_half), normalised to 1 at the paper's
    /// b = 640.  Drives the granularity trade-off of section V.
    double gemm_inner_dim_half = 96.0;
};

/// One GPU with its dedicated host core and PCIe connection.  The model is
/// for the *combined* device of the paper: GPU + dedicated core + memory
/// transfers.
struct GpuSpec {
    std::string name;
    unsigned cuda_cores = 0;
    double clock_mhz = 0.0;
    double device_memory_mib = 0.0;
    double device_mem_bandwidth_gbs = 0.0;

    /// Fraction of device memory usable for application buffers (the rest
    /// is the CUDA context, alignment slack, etc.).
    double usable_memory_fraction = 0.92;

    /// Peak on-device SGEMM rate (GFlop/s) and small-tile ramp parameter
    /// (same law as SocketSpec::ramp_half_blocks but per kernel tile).
    double peak_gflops_sp = 1040.0;
    double ramp_half_blocks = 15.0;

    /// PCIe characteristics.  Pageable is what synchronous cudaMemcpy from
    /// regular host memory achieves (kernel versions 1 and 2); pinned is
    /// the page-locked bandwidth reached by the async double-buffered
    /// version 3.
    double pcie_pageable_gbs = 2.2;
    double pcie_pinned_gbs = 2.9;
    double pcie_latency_s = 25e-6;

    /// Number of DMA copy engines: 2 means host-to-device and
    /// device-to-host transfers proceed concurrently (GTX680); 1 means all
    /// transfers serialise on one engine (Tesla C870).
    unsigned dma_engines = 2;

    /// Copy/compute interference of the overlapped (version 3) kernel:
    /// each chunk's compute is extended by this fraction of the DMA
    /// traffic scheduled to overlap it, so the out-of-core makespan is
    /// approximately compute + interference * transfers.  This is what the
    /// paper's version-3 measurements imply: the overlap gain saturates
    /// around +30 % on the GTX680 (and less on the single-DMA C870)
    /// rather than hiding transfers completely.
    double copy_compute_interference = 0.55;

    /// Fixed cost of launching one kernel.
    double launch_overhead_s = 20e-6;

    /// Rank-b update efficiency (see SocketSpec::gemm_inner_dim_half);
    /// GPUs need longer inner dimensions to reach peak.
    double gemm_inner_dim_half = 192.0;

    /// Double-precision throughput relative to single precision.
    double dp_ratio = 1.0 / 8.0;
};

/// Placement of one GPU in the node: which socket hosts it and therefore
/// loses one core to the dedicated host process.
struct GpuAttachment {
    GpuSpec gpu;
    unsigned socket_index = 0;
};

/// The whole hybrid node.
struct NodeSpec {
    std::string hostname = "ig.icl.utk.edu";
    std::vector<SocketSpec> sockets;
    std::vector<GpuAttachment> gpus;

    /// GPU slowdown when CPU cores on the same socket compute concurrently
    /// (the 7-15 % effect of the paper's Fig. 5): the GPU rate scales by
    /// 1 - cpu_gpu_interference * active_cores / socket_cores.
    double cpu_gpu_interference = 0.12;

    /// CPU slowdown from a co-located busy GPU host process (the paper
    /// finds cores "not so much affected").
    double gpu_cpu_interference = 0.015;

    /// Intra-node inter-process communication model used by the
    /// application simulator: memcpy-style bandwidth plus a per-message
    /// latency (processes communicate through shared memory).
    double host_copy_gbs = 4.0;
    double message_latency_s = 30e-6;

    [[nodiscard]] unsigned total_cores() const {
        unsigned n = 0;
        for (const auto& s : sockets) {
            n += s.cores;
        }
        return n;
    }

    /// Validates structural consistency (socket indices in range, at least
    /// one socket, GPUs attached to distinct-capable sockets).
    void validate() const;
};

/// Factory for the paper's experimental platform (Table I).
NodeSpec ig_platform();

} // namespace fpm::sim

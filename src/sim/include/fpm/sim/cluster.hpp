/// \file cluster.hpp
/// \brief A cluster of hybrid nodes connected by a network.
///
/// Extends the single-node simulation to the multi-node setting of the
/// authors' earlier work (paper ref [6]): several (possibly different)
/// hybrid nodes exchange pivot rows/columns over an interconnect.  Used
/// by the hierarchical-partitioning extension and its benches.
#pragma once

#include <memory>
#include <vector>

#include "fpm/sim/node.hpp"

namespace fpm::sim {

/// Interconnect between nodes (full bisection assumed).
struct NetworkSpec {
    double bandwidth_gbs = 1.25;  ///< 10 GbE payload rate
    double latency_s = 50e-6;
};

/// The whole cluster.
struct ClusterSpec {
    std::vector<NodeSpec> nodes;
    NetworkSpec network;

    void validate() const;
};

/// N identical copies of the paper's hybrid node.
ClusterSpec homogeneous_hybrid_cluster(std::size_t nodes);

/// A deliberately heterogeneous cluster: one full hybrid node, one
/// CPU-only node (no GPUs), and one under-clocked hybrid node with only
/// the Tesla C870 — the setting where node-level FPMs matter most.
ClusterSpec heterogeneous_cluster();

/// Simulation facade over all nodes of a cluster.
class HybridCluster {
public:
    explicit HybridCluster(ClusterSpec spec, SimOptions options = {});

    [[nodiscard]] const ClusterSpec& spec() const noexcept { return spec_; }
    [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
    [[nodiscard]] HybridNode& node(std::size_t i);
    [[nodiscard]] const HybridNode& node(std::size_t i) const;

    /// Time to broadcast `blocks` blocks to every other node (binomial
    /// tree over the interconnect).
    [[nodiscard]] double broadcast_time(double blocks) const;

private:
    ClusterSpec spec_;
    SimOptions options_;
    std::vector<std::unique_ptr<HybridNode>> nodes_;
};

} // namespace fpm::sim

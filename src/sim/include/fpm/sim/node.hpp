/// \file node.hpp
/// \brief Facade over the simulated hybrid node.
///
/// HybridNode owns the per-socket and per-GPU models plus a deterministic
/// per-device measurement-noise stream, and exposes the two timing entry
/// points the rest of the system needs:
///
///  - time of one CPU kernel invocation on c cores of a socket;
///  - time of one GPU kernel invocation (combined GPU + dedicated core +
///    PCIe transfers) for a given kernel version.
///
/// Cross-device coupling (the paper's section III observations) is
/// expressed through contention factors: cores of one socket contend with
/// each other (inside SocketModel), a GPU slows by 7-15 % when cores of
/// its socket compute concurrently, and CPU cores are nearly unaffected
/// by a busy co-located GPU host process.
#pragma once

#include <cstddef>
#include <vector>

#include "fpm/sim/cpu_model.hpp"
#include "fpm/sim/gpu_kernel_sim.hpp"
#include "fpm/sim/gpu_model.hpp"
#include "fpm/sim/noise.hpp"
#include "fpm/sim/specs.hpp"

namespace fpm::sim {

/// Simulation-wide options.
struct SimOptions {
    Precision precision = Precision::kSingle;
    std::size_t block_size = 640;     ///< the paper's blocking factor b
    double noise_sigma = 0.0;         ///< lognormal measurement jitter
    std::uint64_t noise_seed = 2012;  ///< deterministic seed (CLUSTER 2012)
};

/// See file comment.
class HybridNode {
public:
    HybridNode(NodeSpec spec, SimOptions options = {});

    [[nodiscard]] const NodeSpec& spec() const noexcept { return spec_; }
    [[nodiscard]] const SimOptions& options() const noexcept { return options_; }
    [[nodiscard]] std::size_t socket_count() const { return sockets_.size(); }
    [[nodiscard]] std::size_t gpu_count() const { return gpus_.size(); }
    [[nodiscard]] const SocketModel& socket_model(std::size_t i) const;
    [[nodiscard]] const GpuModel& gpu_model(std::size_t i) const;
    [[nodiscard]] const GpuKernelSim& gpu_sim(std::size_t i) const;

    /// Socket index hosting GPU `i` (its dedicated core lives there).
    [[nodiscard]] unsigned gpu_socket(std::size_t i) const;

    /// --- exact (noise-free) kernel timings ------------------------------

    /// One CPU kernel invocation of `area_blocks` on `active_cores` cores
    /// of socket `socket`; `gpu_coactive` marks a busy GPU host process on
    /// the same socket.
    [[nodiscard]] double cpu_kernel_time(std::size_t socket, unsigned active_cores,
                                         double area_blocks,
                                         bool gpu_coactive = false) const;

    /// One GPU kernel invocation of a near-square update of `area_blocks`
    /// on GPU `gpu`; `coactive_cpu_cores` counts cores of the GPU's socket
    /// that compute concurrently (resource contention, Fig. 5).
    [[nodiscard]] double gpu_kernel_time(std::size_t gpu, double area_blocks,
                                         KernelVersion version,
                                         unsigned coactive_cpu_cores = 0) const;

    /// --- noisy measurements (what a benchmark would observe) ------------

    [[nodiscard]] double measure_cpu_kernel(std::size_t socket, unsigned active_cores,
                                            double area_blocks,
                                            bool gpu_coactive = false);
    [[nodiscard]] double measure_gpu_kernel(std::size_t gpu, double area_blocks,
                                            KernelVersion version,
                                            unsigned coactive_cpu_cores = 0);

    /// GPU rate multiplier when `coactive_cpu_cores` cores of its socket
    /// are busy (1.0 when idle).
    [[nodiscard]] double gpu_contention_factor(std::size_t gpu,
                                               unsigned coactive_cpu_cores) const;

    /// CPU rate multiplier when the co-located GPU host process is busy.
    [[nodiscard]] double cpu_contention_factor(bool gpu_coactive) const;

private:
    NodeSpec spec_;
    SimOptions options_;
    std::vector<SocketModel> sockets_;
    std::vector<GpuModel> gpus_;
    std::vector<GpuKernelSim> gpu_sims_;
    std::vector<NoiseModel> noise_;  // one stream per device (sockets, then GPUs)
};

} // namespace fpm::sim

/// \file cpu_model.hpp
/// \brief Analytic performance model of a multicore CPU socket.
///
/// Models the speed of a socket executing the application's GEMM kernel
/// "simultaneously on its cores" (the group measurement of the paper's
/// section III / ref [6]).  The per-core rate combines:
///   - a small-problem ramp (kernel overheads dominate tiny updates),
///   - a gentle cache-pressure decline for large working sets,
///   - shared-resource contention growing with the number of active cores.
#pragma once

#include "fpm/sim/specs.hpp"

namespace fpm::sim {

/// Performance model of one socket.
class SocketModel {
public:
    SocketModel(SocketSpec spec, Precision precision, std::size_t block_size);

    [[nodiscard]] const SocketSpec& spec() const noexcept { return spec_; }
    [[nodiscard]] std::size_t block_size() const noexcept { return block_size_; }

    /// Rate of one core (flop/s) when `active_cores` cores of this socket
    /// execute the kernel concurrently, each on a sub-problem of
    /// `area_blocks_per_core` blocks.
    [[nodiscard]] double core_rate(double area_blocks_per_core,
                                   unsigned active_cores) const;

    /// Aggregate socket rate (flop/s) for a total problem of `area_blocks`
    /// split evenly over `active_cores` cores.
    [[nodiscard]] double socket_rate(double area_blocks, unsigned active_cores) const;

    /// Time of ONE kernel invocation (Ci += A(b) x B(b), Ci of
    /// `area_blocks` blocks) on `active_cores` cores.
    [[nodiscard]] double kernel_time(double area_blocks, unsigned active_cores) const;

private:
    SocketSpec spec_;
    Precision precision_;
    std::size_t block_size_;
    double peak_core_flops_;  // precision-adjusted peak, flop/s
};

} // namespace fpm::sim

/// \file stencil_model.hpp
/// \brief Performance model of a 5-point stencil sweep (second
///        application family).
///
/// The paper targets "data-parallel scientific applications, such as
/// linear algebra routines, digital signal processing, computational
/// fluid dynamics"; matrix multiplication is only its running example.
/// This model adds a second family — an iterative 5-point Jacobi stencil
/// — whose performance character is the opposite of GEMM:
///
///  * CPUs are *memory-bound*: a socket's sweep rate is capped by its
///    DRAM bandwidth, not its flops;
///  * a GPU is excellent while the grid fits device memory (its HBM/GDDR
///    bandwidth dwarfs the host's), but once the grid exceeds device
///    memory every sweep must stream the grid across PCIe, which is
///    slower than just computing on the host — a far harsher cliff than
///    GEMM's (where compute intensity amortises the traffic).
///
/// The problem size x is the number of grid *rows* assigned to a device
/// (the workload is divisible by rows); the kernel is one sweep over
/// those rows.
#pragma once

#include <cstdint>

#include "fpm/sim/node.hpp"

namespace fpm::sim {

/// Parameters of the stencil workload and its kernel cost model.
struct StencilSpec {
    std::int64_t cols = 16384;      ///< cells per grid row
    double flops_per_cell = 5.0;    ///< 4 adds + 1 multiply
    /// Effective DRAM traffic per cell and sweep (read row + neighbours
    /// from cache, write result): 3 x 4 bytes in single precision.
    double bytes_per_cell = 12.0;
    /// Fraction of nominal bandwidth a tuned stencil sustains.
    double bandwidth_efficiency = 0.65;
    /// Host DRAM bandwidth per socket (GB/s); the Opteron 8439SE's
    /// DDR2-800 channels deliver ~12.8 GB/s nominal.
    double socket_bandwidth_gbs = 12.8;
    /// Extra rows of halo exchanged with each neighbour per sweep.
    std::int64_t halo_rows = 1;
};

/// One sweep over `rows` rows on `active_cores` cores of a socket
/// (memory-bound: cores share the socket's DRAM bandwidth).
double stencil_cpu_sweep_time(const HybridNode& node, std::size_t socket,
                              unsigned active_cores, double rows,
                              const StencilSpec& spec);

/// One sweep over `rows` rows on a GPU (+ dedicated core).  While the
/// grid band fits device memory it is resident and the sweep runs at
/// device-memory bandwidth; beyond that the band streams across PCIe
/// every sweep (in and out), which dominates.
double stencil_gpu_sweep_time(const HybridNode& node, std::size_t gpu,
                              double rows, const StencilSpec& spec);

/// Largest row count whose band (grid + double buffer) fits the GPU's
/// device memory.
double stencil_gpu_resident_rows(const HybridNode& node, std::size_t gpu,
                                 const StencilSpec& spec);

} // namespace fpm::sim

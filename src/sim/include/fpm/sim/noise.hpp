/// \file noise.hpp
/// \brief Measurement-noise model for simulated timings.
///
/// Real benchmarks jitter; the paper's methodology repeats measurements
/// until they are statistically reliable.  To make that machinery do real
/// work against the simulator, every simulated timing can be perturbed by
/// multiplicative lognormal noise drawn from a deterministic per-device
/// stream.
#pragma once

#include "fpm/common/error.hpp"
#include "fpm/common/rng.hpp"

namespace fpm::sim {

/// Multiplicative lognormal jitter: t' = t * exp(N(0, sigma)).
/// sigma = 0 disables noise (exact analytic timings).
class NoiseModel {
public:
    explicit NoiseModel(double sigma = 0.0, std::uint64_t seed = 42)
        : sigma_(sigma), rng_(seed) {
        FPM_CHECK(sigma >= 0.0, "noise sigma must be non-negative");
    }

    [[nodiscard]] double sigma() const noexcept { return sigma_; }

    /// Applies jitter to a timing in seconds.
    double apply(double seconds);

    /// Forks an independent stream for another device.
    NoiseModel split();

private:
    double sigma_;
    Rng rng_;
};

} // namespace fpm::sim

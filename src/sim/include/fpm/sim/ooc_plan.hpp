/// \file ooc_plan.hpp
/// \brief Out-of-core tiling plans for the GPU kernel (paper section V).
///
/// The paper's kernel computes Ci += A(b) x B(b) for a rectangle Ci of
/// w x h blocks.  Three versions are evaluated:
///
///  - **Version 1**: A(b), B(b) and Ci live in host memory; every
///    invocation uploads the pivots and Ci and downloads the updated Ci.
///  - **Version 2**: Ci is resident in device memory while it fits
///    (transfers of Ci excluded entirely); past the device-memory limit the
///    kernel tiles Ci into rectangles updated serially, keeping the last
///    two rectangles resident and reversing the update order every other
///    iteration to save two transfers in each direction per iteration.
///  - **Version 3**: version 2 plus double-buffered overlap of transfers
///    and compute using five device buffers (A0, A1, B0, C0, C1);
///    concurrent bidirectional DMA where the hardware supports it.
///
/// An OocPlan is a pure description (which chunk moves when); it is
/// consumed both by the simulator (fpm::sim::GpuKernelSim) to produce
/// timings and by the host reference executor (fpm::app) to produce
/// numerically-verified results, so its invariants are directly testable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fpm/common/error.hpp"

namespace fpm::sim {

/// GPU kernel implementation version (paper's Fig. 3).
enum class KernelVersion { kV1 = 1, kV2 = 2, kV3 = 3 };

[[nodiscard]] const char* to_string(KernelVersion v);

/// One tile of Ci: a horizontal band of block-rows [row_begin, row_end).
struct OocChunk {
    std::int64_t row_begin = 0;
    std::int64_t row_end = 0;

    /// Chunk is already on the device from the previous iteration
    /// (tail-reuse) -> no host-to-device transfer of C this iteration.
    bool skip_upload = false;

    /// Chunk stays on the device for the next iteration -> no
    /// device-to-host transfer this iteration.
    bool skip_download = false;

    [[nodiscard]] std::int64_t rows() const { return row_end - row_begin; }
};

/// Parameters from which a plan is built.
struct OocPlanRequest {
    std::int64_t width_blocks = 0;    ///< w: columns of Ci in blocks
    std::int64_t height_blocks = 0;   ///< h: rows of Ci in blocks
    double capacity_blocks = 0.0;     ///< usable device memory, in blocks
    KernelVersion version = KernelVersion::kV2;

    /// Paper: "both two dimensions of these rectangles are ensured to be
    /// multiples of 32" elements (CUBLAS memory-alignment sensitivity).
    /// Chunk row boundaries are snapped so that rows * block_size is a
    /// multiple of this value whenever the capacity allows it.
    std::int64_t align_elements = 32;
    std::int64_t block_size = 640;

    /// Whether this iteration updates chunks in reversed order (the paper
    /// alternates every other iteration so the resident tail of the
    /// previous iteration is touched first).
    bool reversed = false;
};

/// A complete tiling plan for one kernel invocation.
struct OocPlan {
    OocPlanRequest request;
    std::vector<OocChunk> chunks;   ///< in update order
    bool in_core = false;           ///< single chunk, C fully resident (v2/v3)
    double chunk_capacity_blocks = 0.0;  ///< area budget per C buffer

    /// --- traffic accounting (blocks) -----------------------------------
    [[nodiscard]] double upload_c_blocks() const;    ///< C host->device
    [[nodiscard]] double download_c_blocks() const;  ///< C device->host
    [[nodiscard]] double upload_pivot_blocks() const;  ///< A parts + B
    [[nodiscard]] double total_area_blocks() const;

    /// Checks structural invariants: chunks tile [0, h) exactly, in order,
    /// without overlap; every chunk fits the per-buffer capacity.
    void validate() const;
};

/// Builds the tiling plan for one kernel invocation.  Throws fpm::Error if
/// even a single aligned chunk cannot fit the device (the problem is
/// infeasible for this GPU).
OocPlan build_ooc_plan(const OocPlanRequest& request);

} // namespace fpm::sim

/// \file gpu_model.hpp
/// \brief Analytic performance primitives of one GPU + PCIe link.
///
/// Provides the building blocks the kernel-version simulators compose:
/// on-device GEMM rate as a function of tile size, device-memory capacity
/// in blocks, and PCIe transfer times for pageable and pinned host memory.
#pragma once

#include "fpm/sim/specs.hpp"

namespace fpm::sim {

/// Which host-memory path a transfer uses (pageable = synchronous
/// cudaMemcpy; pinned = page-locked async path of kernel version 3).
enum class TransferPath { kPageable, kPinned };

/// Performance model of one GPU (with dedicated host core).
class GpuModel {
public:
    GpuModel(GpuSpec spec, Precision precision, std::size_t block_size);

    [[nodiscard]] const GpuSpec& spec() const noexcept { return spec_; }
    [[nodiscard]] std::size_t block_size() const noexcept { return block_size_; }

    /// Usable device memory expressed in b-by-b blocks.
    [[nodiscard]] double capacity_blocks() const;

    /// On-device GEMM rate (flop/s) for a tile of `tile_blocks` blocks.
    [[nodiscard]] double kernel_rate(double tile_blocks) const;

    /// Time to move `blocks` blocks across PCIe in one direction.
    [[nodiscard]] double transfer_time(double blocks, TransferPath path) const;

    /// Compute time of a GEMM update of `tile_blocks` blocks (including
    /// kernel-launch overhead).
    [[nodiscard]] double compute_time(double tile_blocks) const;

private:
    GpuSpec spec_;
    Precision precision_;
    std::size_t block_size_;
    double peak_flops_;  // precision-adjusted, flop/s
};

} // namespace fpm::sim

/// \file gpu_kernel_sim.hpp
/// \brief Simulated timing of one GPU kernel invocation (versions 1-3).
///
/// Composes an OocPlan with the GpuModel rate/transfer primitives:
/// versions 1 and 2 execute the plan serially on the synchronous
/// (pageable) path; version 3 schedules the plan on a Timeline with the
/// device's DMA engines and derated compute, reproducing the overlap
/// behaviour of the paper's Fig. 3 and Fig. 4.
#pragma once

#include <cstdint>
#include <utility>

#include "fpm/sim/gpu_model.hpp"
#include "fpm/sim/ooc_plan.hpp"
#include "fpm/sim/timeline.hpp"

namespace fpm::sim {

/// Timing breakdown of one kernel invocation.
struct GpuKernelTiming {
    double total_s = 0.0;
    double compute_s = 0.0;  ///< busy time of the compute engine
    double h2d_s = 0.0;      ///< busy time of host->device transfers
    double d2h_s = 0.0;      ///< busy time of device->host transfers
    OocPlan plan;
    Timeline timeline;       ///< populated for version 3 only
};

/// Near-square integer dimensions (w, h) with w*h >= area and |w-h| <= 1.
std::pair<std::int64_t, std::int64_t> square_dims(double area_blocks);

/// Simulator for one GPU's kernel invocations.
class GpuKernelSim {
public:
    explicit GpuKernelSim(GpuModel model);

    [[nodiscard]] const GpuModel& model() const noexcept { return model_; }

    /// Times one invocation Ci += A(b) x B(b) for a Ci of w x h blocks.
    /// `rate_factor` scales the on-device compute rate (used for CPU/GPU
    /// resource contention, paper Fig. 5); `reversed` selects the
    /// serpentine order of the tail-reuse optimisation.
    [[nodiscard]] GpuKernelTiming time_invocation(std::int64_t width_blocks,
                                                  std::int64_t height_blocks,
                                                  KernelVersion version,
                                                  double rate_factor = 1.0,
                                                  bool reversed = false) const;

    /// Convenience: times a near-square update of ~`area_blocks` blocks;
    /// returns the timing and the exact integer area simulated.
    [[nodiscard]] std::pair<GpuKernelTiming, double> time_square_update(
        double area_blocks, KernelVersion version, double rate_factor = 1.0) const;

private:
    GpuModel model_;

    [[nodiscard]] GpuKernelTiming run_serial(const OocPlan& plan,
                                             double rate_factor) const;
    [[nodiscard]] GpuKernelTiming run_overlapped(const OocPlan& plan,
                                                 double rate_factor) const;
};

} // namespace fpm::sim

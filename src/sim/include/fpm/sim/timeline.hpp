/// \file timeline.hpp
/// \brief Deterministic list-scheduling timeline for overlap simulation.
///
/// Models the concurrency structure of kernel version 3 (and, generally,
/// any pipelined device schedule): a set of serial *resources* (compute
/// engine, one or two DMA engines) executes *operations* with explicit
/// dependencies.  Operations are scheduled greedily in submission order —
/// exactly the FIFO semantics of CUDA streams — so the makespan is a
/// deterministic function of durations and dependencies.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fpm/common/error.hpp"

namespace fpm::sim {

/// Event-driven schedule builder; see file comment.
class Timeline {
public:
    using ResourceId = std::size_t;
    using OpId = std::size_t;

    /// A scheduled operation (available after its add_op call).
    struct ScheduledOp {
        ResourceId resource = 0;
        double start = 0.0;
        double end = 0.0;
        std::string label;
    };

    /// Registers a serial execution resource (engine).
    ResourceId add_resource(std::string name);

    /// Submits an operation of `duration` seconds on `resource`, starting
    /// no earlier than the completion of every op in `deps` and no earlier
    /// than the resource becomes free.  Returns the op's id.
    OpId add_op(ResourceId resource, double duration, const std::vector<OpId>& deps = {},
                std::string label = {});

    [[nodiscard]] double makespan() const;
    [[nodiscard]] const ScheduledOp& op(OpId id) const;
    [[nodiscard]] const std::vector<ScheduledOp>& ops() const { return ops_; }
    [[nodiscard]] const std::string& resource_name(ResourceId id) const;
    [[nodiscard]] std::size_t resource_count() const { return resources_.size(); }

    /// Total busy time of a resource (for utilisation reporting).
    [[nodiscard]] double busy_time(ResourceId id) const;

    /// Renders a proportional ASCII Gantt chart of the schedule, one row
    /// per resource (used by the overlap-trace bench).
    [[nodiscard]] std::string render_gantt(std::size_t width = 72) const;

private:
    struct Resource {
        std::string name;
        double available = 0.0;
        double busy = 0.0;
    };
    std::vector<Resource> resources_;
    std::vector<ScheduledOp> ops_;
};

} // namespace fpm::sim

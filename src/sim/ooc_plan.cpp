#include "fpm/sim/ooc_plan.hpp"

#include <algorithm>
#include <numeric>

#include "fpm/common/math.hpp"

namespace fpm::sim {

const char* to_string(KernelVersion v) {
    switch (v) {
        case KernelVersion::kV1: return "version 1";
        case KernelVersion::kV2: return "version 2";
        case KernelVersion::kV3: return "version 3";
    }
    return "unknown";
}

namespace {

// Chunk row counts are snapped to a multiple of `m` so that rows*block_size
// is a multiple of align_elements (paper: CUBLAS alignment sensitivity).
std::int64_t alignment_multiple(std::int64_t block_size, std::int64_t align_elements) {
    if (align_elements <= 1) {
        return 1;
    }
    const std::int64_t g = std::gcd(block_size, align_elements);
    return align_elements / g;
}

} // namespace

double OocPlan::upload_c_blocks() const {
    double total = 0.0;
    for (const auto& chunk : chunks) {
        if (!chunk.skip_upload) {
            total += static_cast<double>(chunk.rows() * request.width_blocks);
        }
    }
    return total;
}

double OocPlan::download_c_blocks() const {
    double total = 0.0;
    for (const auto& chunk : chunks) {
        if (!chunk.skip_download) {
            total += static_cast<double>(chunk.rows() * request.width_blocks);
        }
    }
    return total;
}

double OocPlan::upload_pivot_blocks() const {
    return static_cast<double>(request.height_blocks + request.width_blocks);
}

double OocPlan::total_area_blocks() const {
    return static_cast<double>(request.width_blocks * request.height_blocks);
}

void OocPlan::validate() const {
    FPM_CHECK(!chunks.empty(), "plan must contain at least one chunk");

    // Update order is ascending rows for forward plans, descending for
    // reversed plans; either way the bands must tile [0, h) exactly.
    std::vector<OocChunk> sorted = chunks;
    std::sort(sorted.begin(), sorted.end(),
              [](const OocChunk& a, const OocChunk& b) {
                  return a.row_begin < b.row_begin;
              });
    FPM_CHECK(sorted.front().row_begin == 0, "first chunk must start at row 0");
    FPM_CHECK(sorted.back().row_end == request.height_blocks,
              "last chunk must end at the final row");
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        FPM_CHECK(sorted[i].rows() >= 1, "chunks must be non-empty");
        if (i + 1 < sorted.size()) {
            FPM_CHECK(sorted[i].row_end == sorted[i + 1].row_begin,
                      "chunks must be contiguous and non-overlapping");
        }
    }
    if (!in_core) {
        for (const auto& chunk : chunks) {
            FPM_CHECK(static_cast<double>(chunk.rows() * request.width_blocks) <=
                          chunk_capacity_blocks + 1e-9,
                      "chunk exceeds its device buffer capacity");
        }
    }
}

OocPlan build_ooc_plan(const OocPlanRequest& request) {
    FPM_CHECK(request.width_blocks >= 1 && request.height_blocks >= 1,
              "Ci must be at least 1x1 blocks");
    FPM_CHECK(request.capacity_blocks > 0.0, "device capacity must be positive");
    FPM_CHECK(request.block_size >= 1, "block size must be positive");

    const std::int64_t w = request.width_blocks;
    const std::int64_t h = request.height_blocks;
    const double cap = request.capacity_blocks;
    const double area = static_cast<double>(w) * static_cast<double>(h);

    OocPlan plan;
    plan.request = request;

    // In-core: C + pivot column + pivot row resident simultaneously.
    // Applies to versions 2 and 3 only; version 1 streams C regardless.
    const bool fits = area + static_cast<double>(h) + static_cast<double>(w) <= cap;
    if (request.version != KernelVersion::kV1 && fits) {
        plan.in_core = true;
        plan.chunk_capacity_blocks = cap;
        plan.chunks.push_back(OocChunk{0, h, /*skip_upload=*/true,
                                       /*skip_download=*/true});
        plan.validate();
        return plan;
    }

    // Out-of-core: choose the band height (rows per chunk).
    //  - v1 holds one C chunk + its A part + B:  r*w + r + w <= cap
    //  - v2/v3 hold two C buffers + two A parts + B (tail reuse /
    //    double buffering):                     2(r*w + r) + w <= cap
    const double denom = (request.version == KernelVersion::kV1)
                             ? static_cast<double>(w + 1)
                             : 2.0 * static_cast<double>(w + 1);
    std::int64_t rows_per_chunk =
        static_cast<std::int64_t>((cap - static_cast<double>(w)) / denom);
    rows_per_chunk = std::min(rows_per_chunk, h);

    // Alignment snap (downwards), unless that would make the chunk empty.
    const std::int64_t m = alignment_multiple(request.block_size, request.align_elements);
    if (rows_per_chunk >= m) {
        rows_per_chunk = round_down(rows_per_chunk, m);
    }
    FPM_CHECK(rows_per_chunk >= 1,
              "problem is infeasible: even one aligned band of Ci does not fit "
              "the device memory");

    plan.chunk_capacity_blocks = static_cast<double>(rows_per_chunk * w);

    for (std::int64_t r0 = 0; r0 < h; r0 += rows_per_chunk) {
        OocChunk chunk;
        chunk.row_begin = r0;
        chunk.row_end = std::min(h, r0 + rows_per_chunk);
        plan.chunks.push_back(chunk);
    }
    if (request.reversed) {
        std::reverse(plan.chunks.begin(), plan.chunks.end());
    }

    // Tail-reuse residency (versions 2 and 3): the first two chunks in
    // update order are still on the device from the previous (reversed)
    // iteration, and the last two stay for the next one.
    if (request.version != KernelVersion::kV1) {
        const std::size_t n = plan.chunks.size();
        const std::size_t keep = std::min<std::size_t>(2, n);
        for (std::size_t i = 0; i < keep; ++i) {
            plan.chunks[i].skip_upload = true;
            plan.chunks[n - 1 - i].skip_download = true;
        }
    }

    plan.validate();
    return plan;
}

} // namespace fpm::sim

#include "fpm/sim/node.hpp"

namespace fpm::sim {

void NodeSpec::validate() const {
    FPM_CHECK(!sockets.empty(), "node must have at least one socket");
    for (const auto& attachment : gpus) {
        FPM_CHECK(attachment.socket_index < sockets.size(),
                  "GPU attached to a non-existent socket");
        FPM_CHECK(sockets[attachment.socket_index].cores >= 1,
                  "GPU host socket must have at least one core for the "
                  "dedicated host process");
    }
    FPM_CHECK(cpu_gpu_interference >= 0.0 && cpu_gpu_interference < 1.0,
              "cpu_gpu_interference must be in [0, 1)");
    FPM_CHECK(gpu_cpu_interference >= 0.0 && gpu_cpu_interference < 1.0,
              "gpu_cpu_interference must be in [0, 1)");
}

NodeSpec ig_platform() {
    NodeSpec node;
    node.hostname = "ig.icl.utk.edu";

    SocketSpec opteron;
    opteron.name = "AMD Opteron 8439SE";
    opteron.cores = 6;
    opteron.clock_ghz = 2.8;
    opteron.memory_gib = 16.0;
    opteron.peak_core_gflops_sp = 19.0;
    opteron.ramp_half_blocks = 2.0;
    opteron.cache_decline_max = 0.06;
    opteron.cache_decline_blocks = 80.0;
    opteron.contention_gamma = 0.03;
    node.sockets.assign(4, opteron);

    GpuSpec gtx680;
    gtx680.name = "GeForce GTX680";
    gtx680.cuda_cores = 1536;
    gtx680.clock_mhz = 1006.0;
    gtx680.device_memory_mib = 2048.0;
    gtx680.device_mem_bandwidth_gbs = 192.3;
    gtx680.peak_gflops_sp = 1040.0;
    gtx680.ramp_half_blocks = 15.0;
    gtx680.pcie_pageable_gbs = 2.45;
    gtx680.pcie_pinned_gbs = 2.4;
    gtx680.pcie_latency_s = 25e-6;
    gtx680.dma_engines = 2;  // concurrent bidirectional transfers
    gtx680.copy_compute_interference = 0.55;
    gtx680.launch_overhead_s = 20e-6;
    gtx680.dp_ratio = 1.0 / 24.0;  // Kepler GK104 FP64

    GpuSpec c870;
    c870.name = "Tesla C870";
    c870.cuda_cores = 128;
    c870.clock_mhz = 600.0;
    c870.device_memory_mib = 1536.0;
    c870.device_mem_bandwidth_gbs = 76.8;
    c870.peak_gflops_sp = 210.0;
    c870.ramp_half_blocks = 8.0;
    c870.pcie_pageable_gbs = 1.3;
    c870.pcie_pinned_gbs = 1.5;
    c870.pcie_latency_s = 30e-6;
    c870.dma_engines = 1;  // single DMA engine, no concurrent transfers
    c870.copy_compute_interference = 0.70;
    c870.launch_overhead_s = 25e-6;
    c870.dp_ratio = 0.0;  // G80 has no native FP64; modelled as unusable

    // Fig. 6 binds rank 0 (socket 0) to the Tesla C870 host core and
    // rank 6 (socket 1) to the GeForce GTX680 host core.
    node.gpus.push_back(GpuAttachment{c870, 0});
    node.gpus.push_back(GpuAttachment{gtx680, 1});

    node.cpu_gpu_interference = 0.12;
    node.gpu_cpu_interference = 0.015;
    node.host_copy_gbs = 4.0;
    node.message_latency_s = 30e-6;
    return node;
}

HybridNode::HybridNode(NodeSpec spec, SimOptions options)
    : spec_(std::move(spec)), options_(options) {
    spec_.validate();
    FPM_CHECK(options_.block_size > 0, "block size must be positive");

    NoiseModel root(options_.noise_sigma, options_.noise_seed);
    for (const auto& socket_spec : spec_.sockets) {
        sockets_.emplace_back(socket_spec, options_.precision, options_.block_size);
        noise_.push_back(root.split());
    }
    for (const auto& attachment : spec_.gpus) {
        if (options_.precision == Precision::kDouble) {
            FPM_CHECK(attachment.gpu.dp_ratio > 0.0,
                      "GPU '" + attachment.gpu.name +
                          "' does not support double precision");
        }
        gpus_.emplace_back(attachment.gpu, options_.precision, options_.block_size);
        gpu_sims_.emplace_back(gpus_.back());
        noise_.push_back(root.split());
    }
}

const SocketModel& HybridNode::socket_model(std::size_t i) const {
    FPM_CHECK(i < sockets_.size(), "socket index out of range");
    return sockets_[i];
}

const GpuModel& HybridNode::gpu_model(std::size_t i) const {
    FPM_CHECK(i < gpus_.size(), "GPU index out of range");
    return gpus_[i];
}

const GpuKernelSim& HybridNode::gpu_sim(std::size_t i) const {
    FPM_CHECK(i < gpu_sims_.size(), "GPU index out of range");
    return gpu_sims_[i];
}

unsigned HybridNode::gpu_socket(std::size_t i) const {
    FPM_CHECK(i < spec_.gpus.size(), "GPU index out of range");
    return spec_.gpus[i].socket_index;
}

double HybridNode::gpu_contention_factor(std::size_t gpu,
                                         unsigned coactive_cpu_cores) const {
    FPM_CHECK(gpu < gpus_.size(), "GPU index out of range");
    const unsigned socket_cores = spec_.sockets[gpu_socket(gpu)].cores;
    const double share = static_cast<double>(
                             std::min(coactive_cpu_cores, socket_cores)) /
                         static_cast<double>(socket_cores);
    return 1.0 - spec_.cpu_gpu_interference * share;
}

double HybridNode::cpu_contention_factor(bool gpu_coactive) const {
    return gpu_coactive ? 1.0 - spec_.gpu_cpu_interference : 1.0;
}

double HybridNode::cpu_kernel_time(std::size_t socket, unsigned active_cores,
                                   double area_blocks, bool gpu_coactive) const {
    FPM_CHECK(socket < sockets_.size(), "socket index out of range");
    const double base = sockets_[socket].kernel_time(area_blocks, active_cores);
    return base / cpu_contention_factor(gpu_coactive);
}

double HybridNode::gpu_kernel_time(std::size_t gpu, double area_blocks,
                                   KernelVersion version,
                                   unsigned coactive_cpu_cores) const {
    FPM_CHECK(gpu < gpu_sims_.size(), "GPU index out of range");
    const double factor = gpu_contention_factor(gpu, coactive_cpu_cores);
    auto [timing, actual_area] =
        gpu_sims_[gpu].time_square_update(area_blocks, version, factor);
    // Normalise to the requested area so speed(x) = flops(x) / time is
    // consistent for callers sweeping fractional areas.
    return timing.total_s * (area_blocks / actual_area);
}

double HybridNode::measure_cpu_kernel(std::size_t socket, unsigned active_cores,
                                      double area_blocks, bool gpu_coactive) {
    const double t = cpu_kernel_time(socket, active_cores, area_blocks, gpu_coactive);
    return noise_[socket].apply(t);
}

double HybridNode::measure_gpu_kernel(std::size_t gpu, double area_blocks,
                                      KernelVersion version,
                                      unsigned coactive_cpu_cores) {
    const double t = gpu_kernel_time(gpu, area_blocks, version, coactive_cpu_cores);
    return noise_[sockets_.size() + gpu].apply(t);
}

} // namespace fpm::sim

#include "fpm/sim/cpu_model.hpp"

#include <cmath>

#include "fpm/common/math.hpp"

namespace fpm::sim {

SocketModel::SocketModel(SocketSpec spec, Precision precision, std::size_t block_size)
    : spec_(std::move(spec)), precision_(precision), block_size_(block_size) {
    FPM_CHECK(block_size_ > 0, "block size must be positive");
    FPM_CHECK(spec_.cores >= 1, "socket must have at least one core");
    FPM_CHECK(spec_.peak_core_gflops_sp > 0.0, "peak core rate must be positive");
    const double dp_scale = (precision_ == Precision::kSingle) ? 1.0 : 0.5;
    peak_core_flops_ = spec_.peak_core_gflops_sp * 1e9 * dp_scale *
                       blocking_efficiency(static_cast<double>(block_size_),
                                           spec_.gemm_inner_dim_half);
}

double SocketModel::core_rate(double area_blocks_per_core, unsigned active_cores) const {
    FPM_CHECK(area_blocks_per_core > 0.0, "problem area must be positive");
    FPM_CHECK(active_cores >= 1 && active_cores <= spec_.cores,
              "active core count out of range for this socket");

    const double x = area_blocks_per_core;
    const double ramp = x / (x + spec_.ramp_half_blocks);
    const double cache = 1.0 - spec_.cache_decline_max *
                                   (1.0 - std::exp(-x / spec_.cache_decline_blocks));
    const double contention =
        1.0 / (1.0 + spec_.contention_gamma * static_cast<double>(active_cores - 1));
    return peak_core_flops_ * ramp * cache * contention;
}

double SocketModel::socket_rate(double area_blocks, unsigned active_cores) const {
    const double per_core = area_blocks / static_cast<double>(active_cores);
    return static_cast<double>(active_cores) * core_rate(per_core, active_cores);
}

double SocketModel::kernel_time(double area_blocks, unsigned active_cores) const {
    const double flops =
        gemm_update_flops(area_blocks, static_cast<double>(block_size_));
    return flops / socket_rate(area_blocks, active_cores);
}

} // namespace fpm::sim

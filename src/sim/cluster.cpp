#include "fpm/sim/cluster.hpp"

#include <cmath>

namespace fpm::sim {

void ClusterSpec::validate() const {
    FPM_CHECK(!nodes.empty(), "cluster must have at least one node");
    FPM_CHECK(network.bandwidth_gbs > 0.0, "network bandwidth must be positive");
    FPM_CHECK(network.latency_s >= 0.0, "network latency must be non-negative");
    for (const auto& node : nodes) {
        node.validate();
    }
}

ClusterSpec homogeneous_hybrid_cluster(std::size_t nodes) {
    FPM_CHECK(nodes >= 1, "need at least one node");
    ClusterSpec cluster;
    cluster.nodes.assign(nodes, ig_platform());
    for (std::size_t i = 0; i < nodes; ++i) {
        cluster.nodes[i].hostname = "ig" + std::to_string(i);
    }
    return cluster;
}

ClusterSpec heterogeneous_cluster() {
    ClusterSpec cluster;

    // Node 0: the paper's full hybrid node.
    cluster.nodes.push_back(ig_platform());
    cluster.nodes[0].hostname = "hybrid0";

    // Node 1: CPU-only (the GPUs removed).
    NodeSpec cpu_node = ig_platform();
    cpu_node.hostname = "cpu1";
    cpu_node.gpus.clear();
    cluster.nodes.push_back(cpu_node);

    // Node 2: two slower sockets plus only the Tesla C870.
    NodeSpec small_node = ig_platform();
    small_node.hostname = "small2";
    small_node.sockets.resize(2);
    for (auto& socket : small_node.sockets) {
        socket.peak_core_gflops_sp *= 0.7;  // older silicon
    }
    small_node.gpus.erase(small_node.gpus.begin() + 1);  // drop the GTX680
    cluster.nodes.push_back(small_node);

    return cluster;
}

HybridCluster::HybridCluster(ClusterSpec spec, SimOptions options)
    : spec_(std::move(spec)), options_(options) {
    spec_.validate();
    std::uint64_t seed = options_.noise_seed;
    for (const auto& node_spec : spec_.nodes) {
        SimOptions node_options = options_;
        node_options.noise_seed = seed++;
        nodes_.push_back(
            std::make_unique<HybridNode>(node_spec, node_options));
    }
}

HybridNode& HybridCluster::node(std::size_t i) {
    FPM_CHECK(i < nodes_.size(), "node index out of range");
    return *nodes_[i];
}

const HybridNode& HybridCluster::node(std::size_t i) const {
    FPM_CHECK(i < nodes_.size(), "node index out of range");
    return *nodes_[i];
}

double HybridCluster::broadcast_time(double blocks) const {
    FPM_CHECK(blocks >= 0.0, "broadcast size must be non-negative");
    if (nodes_.size() <= 1 || blocks == 0.0) {
        return 0.0;
    }
    const double bytes =
        blocks * block_bytes(options_.block_size, options_.precision);
    const double rounds =
        std::ceil(std::log2(static_cast<double>(nodes_.size())));
    return rounds *
           (spec_.network.latency_s + bytes / (spec_.network.bandwidth_gbs * 1e9));
}

} // namespace fpm::sim

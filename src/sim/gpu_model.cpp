#include "fpm/sim/gpu_model.hpp"

#include "fpm/common/math.hpp"

namespace fpm::sim {

GpuModel::GpuModel(GpuSpec spec, Precision precision, std::size_t block_size)
    : spec_(std::move(spec)), precision_(precision), block_size_(block_size) {
    FPM_CHECK(block_size_ > 0, "block size must be positive");
    FPM_CHECK(spec_.peak_gflops_sp > 0.0, "GPU peak rate must be positive");
    FPM_CHECK(spec_.device_memory_mib > 0.0, "GPU device memory must be positive");
    FPM_CHECK(spec_.dma_engines == 1 || spec_.dma_engines == 2,
              "dma_engines must be 1 or 2");
    FPM_CHECK(spec_.copy_compute_interference >= 0.0 &&
                  spec_.copy_compute_interference < 1.0,
              "copy/compute interference must be in [0, 1)");
    const double dp_scale = (precision_ == Precision::kSingle) ? 1.0 : spec_.dp_ratio;
    peak_flops_ = spec_.peak_gflops_sp * 1e9 * dp_scale *
                  blocking_efficiency(static_cast<double>(block_size_),
                                      spec_.gemm_inner_dim_half);
}

double GpuModel::capacity_blocks() const {
    const double usable_bytes =
        spec_.device_memory_mib * 1024.0 * 1024.0 * spec_.usable_memory_fraction;
    return usable_bytes / block_bytes(block_size_, precision_);
}

double GpuModel::kernel_rate(double tile_blocks) const {
    FPM_CHECK(tile_blocks > 0.0, "tile size must be positive");
    const double ramp = tile_blocks / (tile_blocks + spec_.ramp_half_blocks);
    return peak_flops_ * ramp;
}

double GpuModel::transfer_time(double blocks, TransferPath path) const {
    FPM_CHECK(blocks >= 0.0, "transfer size must be non-negative");
    if (blocks == 0.0) {
        return 0.0;
    }
    const double bytes = blocks * block_bytes(block_size_, precision_);
    const double gbs = (path == TransferPath::kPageable) ? spec_.pcie_pageable_gbs
                                                         : spec_.pcie_pinned_gbs;
    return spec_.pcie_latency_s + bytes / (gbs * 1e9);
}

double GpuModel::compute_time(double tile_blocks) const {
    const double flops =
        gemm_update_flops(tile_blocks, static_cast<double>(block_size_));
    return spec_.launch_overhead_s + flops / kernel_rate(tile_blocks);
}

} // namespace fpm::sim

#include "fpm/sim/noise.hpp"

namespace fpm::sim {

double NoiseModel::apply(double seconds) {
    FPM_CHECK(seconds >= 0.0, "cannot apply noise to negative time");
    if (sigma_ == 0.0) {
        return seconds;
    }
    return seconds * rng_.lognormal(0.0, sigma_);
}

NoiseModel NoiseModel::split() {
    NoiseModel child(sigma_);
    child.rng_ = rng_.split();
    return child;
}

} // namespace fpm::sim

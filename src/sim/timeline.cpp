#include "fpm/sim/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace fpm::sim {

Timeline::ResourceId Timeline::add_resource(std::string name) {
    resources_.push_back(Resource{std::move(name), 0.0, 0.0});
    return resources_.size() - 1;
}

Timeline::OpId Timeline::add_op(ResourceId resource, double duration,
                                const std::vector<OpId>& deps, std::string label) {
    FPM_CHECK(resource < resources_.size(), "unknown resource");
    FPM_CHECK(duration >= 0.0, "op duration must be non-negative");

    double ready = resources_[resource].available;
    for (const OpId dep : deps) {
        FPM_CHECK(dep < ops_.size(), "dependency on an unsubmitted op");
        ready = std::max(ready, ops_[dep].end);
    }

    ScheduledOp op;
    op.resource = resource;
    op.start = ready;
    op.end = ready + duration;
    op.label = std::move(label);
    ops_.push_back(op);

    resources_[resource].available = op.end;
    resources_[resource].busy += duration;
    return ops_.size() - 1;
}

double Timeline::makespan() const {
    double end = 0.0;
    for (const auto& op : ops_) {
        end = std::max(end, op.end);
    }
    return end;
}

const Timeline::ScheduledOp& Timeline::op(OpId id) const {
    FPM_CHECK(id < ops_.size(), "unknown op id");
    return ops_[id];
}

const std::string& Timeline::resource_name(ResourceId id) const {
    FPM_CHECK(id < resources_.size(), "unknown resource");
    return resources_[id].name;
}

double Timeline::busy_time(ResourceId id) const {
    FPM_CHECK(id < resources_.size(), "unknown resource");
    return resources_[id].busy;
}

std::string Timeline::render_gantt(std::size_t width) const {
    const double total = makespan();
    std::ostringstream out;
    if (total <= 0.0 || width < 8) {
        out << "(empty schedule)\n";
        return out.str();
    }

    std::size_t name_width = 0;
    for (const auto& r : resources_) {
        name_width = std::max(name_width, r.name.size());
    }

    for (ResourceId rid = 0; rid < resources_.size(); ++rid) {
        std::string row(width, '.');
        for (const auto& op : ops_) {
            if (op.resource != rid) {
                continue;
            }
            auto col = [&](double t) {
                return static_cast<std::size_t>(
                    std::min<double>(static_cast<double>(width) - 1.0,
                                     std::floor(t / total * static_cast<double>(width))));
            };
            const std::size_t c0 = col(op.start);
            const std::size_t c1 = std::max(c0, col(op.end - 1e-12));
            const char mark = op.label.empty() ? '#' : op.label.front();
            for (std::size_t c = c0; c <= c1; ++c) {
                row[c] = mark;
            }
        }
        out << resources_[rid].name;
        out << std::string(name_width - resources_[rid].name.size() + 2, ' ');
        out << '|' << row << "|\n";
    }
    return out.str();
}

} // namespace fpm::sim

#include "fpm/adapt/drift.hpp"

#include <algorithm>

#include "fpm/common/error.hpp"

namespace fpm::adapt {

DriftDetector::DriftDetector(const AdaptConfig& config) : config_(config) {
    FPM_CHECK(config.drift_threshold > 0.0,
              "drift_threshold must be positive");
    FPM_CHECK(config.cusum_limit > 0.0, "cusum_limit must be positive");
}

DriftDecision DriftDetector::observe(std::int64_t device,
                                     double relative_error) {
    FPM_CHECK(relative_error >= 0.0, "relative error must be non-negative");
    double& s = cusum_[device];
    s = std::max(0.0, s + (relative_error - config_.drift_threshold));
    DriftDecision decision;
    decision.drift = relative_error > config_.drift_threshold;
    decision.republish = s >= config_.cusum_limit;
    decision.cusum = s;
    return decision;
}

void DriftDetector::reset() { cusum_.clear(); }

double DriftDetector::cusum(std::int64_t device) const {
    const auto it = cusum_.find(device);
    return it == cusum_.end() ? 0.0 : it->second;
}

} // namespace fpm::adapt

#include "fpm/adapt/refiner.hpp"

#include <algorithm>
#include <cmath>

#include "fpm/common/error.hpp"

namespace fpm::adapt {

OnlineRefiner::OnlineRefiner(const AdaptConfig& config) : config_(config) {
    FPM_CHECK(config.max_speed_step > 0.0, "max_speed_step must be positive");
    FPM_CHECK(config.merge_radius >= 0.0, "merge_radius must be non-negative");
    FPM_CHECK(config.min_speed_change >= 0.0,
              "min_speed_change must be non-negative");
}

RefineResult OnlineRefiner::refine(std::vector<core::SpeedFunction>& models,
                                   std::size_t device, double x,
                                   double observed_speed) const {
    FPM_CHECK(device < models.size(), "device index out of range");
    FPM_CHECK(x > 0.0, "problem size must be positive");
    FPM_CHECK(observed_speed > 0.0, "observed speed must be positive");

    const core::SpeedFunction& model = models[device];
    const double anchor = std::min(x, model.max_problem());
    const double predicted = model.speed(anchor);

    RefineResult result;
    result.model_speed = predicted;
    result.relative_error =
        std::abs(observed_speed - predicted) / predicted;

    // Bounded update: one window moves the model by at most
    // max_speed_step relative to the current prediction.
    const double lo = predicted * (1.0 - config_.max_speed_step);
    const double hi = predicted * (1.0 + config_.max_speed_step);
    const double target = std::clamp(observed_speed, std::max(lo, 1e-300), hi);
    result.applied_speed = target;

    // Deadband: below min_speed_change the splice would only churn the
    // published version without changing any plan materially.
    if (std::abs(target - predicted) / predicted < config_.min_speed_change) {
        return result;
    }

    // Propagate the (already clamped) ratio to the knots below the
    // anchor before splicing the measured point itself.  Feedback only
    // ever arrives at the device's current operating point, and a
    // rebalance moves a slowed device *down* in x — exactly into the
    // region the model has no fresh evidence for.  Left at their stale
    // values those knots let the partitioner sidestep the corrected
    // point round after round; scaling them by the measured ratio
    // extrapolates the shift (throttling and contention are
    // multiplicative across sizes), stays bounded by max_speed_step,
    // and windows at the smaller sizes correct any over-extrapolation
    // as soon as plans land there.
    const double ratio = target / predicted;
    std::vector<core::SpeedPoint> points = model.points();
    for (core::SpeedPoint& point : points) {
        if (point.x < anchor) {
            point.speed *= ratio;
        }
    }
    const core::SpeedFunction rescaled(std::move(points), model.name(),
                                       model.max_problem());
    models[device] = rescaled.spliced(anchor, target, config_.merge_radius);
    result.applied = true;
    return result;
}

} // namespace fpm::adapt

/// \file feedback.hpp
/// \brief Streaming accumulation of served-execution samples.
///
/// The paper builds FPMs from offline sweeps that repeat each point
/// "until the results are statistically reliable"; the ingestor applies
/// the same bar to runtime feedback.  Samples are bucketed per (device,
/// geometric size-region), each bucket keeps Welford streaming stats of
/// the observed speed s = x / t, and a bucket is *reliable* once it
/// meets measure::is_reliable — at which point the refiner may fold its
/// mean into the model and the bucket is consumed (bounded staleness:
/// evidence never lingers half-used).
#pragma once

#include <cstdint>
#include <map>

#include "fpm/adapt/adapt_config.hpp"
#include "fpm/measure/reliable.hpp"

namespace fpm::adapt {

/// One (device, size-region) accumulation bucket.
struct BucketKey {
    std::int64_t device = 0;
    std::int64_t region = 0;  ///< floor(log(x) / log(1 + resolution))

    auto operator<=>(const BucketKey&) const = default;
};

/// Outcome of ingesting one sample.
struct IngestResult {
    BucketKey key;
    std::uint64_t samples = 0;  ///< bucket sample count after this add
    bool reliable = false;      ///< bucket meets the CI criterion now
    bool forced = false;        ///< accepted only because max_samples hit
    double x = 0.0;             ///< bucket mean problem size
    double speed = 0.0;         ///< bucket mean observed speed
};

/// See file comment.  Not thread-safe: AdaptEngine serialises access.
class FeedbackIngestor {
public:
    /// Throws fpm::Error on inconsistent config (min > max, non-positive
    /// resolution/target, zero bucket budget).
    explicit FeedbackIngestor(const AdaptConfig& config);

    /// Ingests one measurement (x > 0 blocks in `seconds` > 0 wall time)
    /// and reports the owning bucket's state.  When the bucket budget is
    /// exhausted the bucket with the least evidence is dropped first.
    IngestResult add(std::int64_t device, double problem_size,
                     double seconds);

    /// Drops a bucket after its mean was folded into the model, so the
    /// next window accumulates fresh evidence.
    void consume(const BucketKey& key);

    [[nodiscard]] std::size_t buckets() const noexcept {
        return buckets_.size();
    }
    [[nodiscard]] std::uint64_t total_samples() const noexcept {
        return total_;
    }

    /// Forgets everything (a hot reload invalidated the evidence).
    void clear();

private:
    struct Bucket {
        measure::RunningStats speed;
        measure::RunningStats size;
    };

    AdaptConfig config_;
    measure::ReliabilityOptions reliability_;
    std::map<BucketKey, Bucket> buckets_;
    std::uint64_t total_ = 0;
};

} // namespace fpm::adapt

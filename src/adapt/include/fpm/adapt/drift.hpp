/// \file drift.hpp
/// \brief Decides when refinement warrants republishing a model.
///
/// A single reliable window disagreeing with the model is weather; a
/// run of them is climate.  The detector combines a per-window relative
/// -error threshold (instantaneous drift signal) with a per-device CUSUM
/// of the excess error over consecutive reliable windows: the cumulative
/// sum s := max(0, s + (err - threshold)) rises only while windows keep
/// exceeding the threshold and decays back to zero when the model fits
/// again, so a republish fires on *sustained* disagreement rather than
/// one noisy measurement.
#pragma once

#include <cstdint>
#include <map>

#include "fpm/adapt/adapt_config.hpp"

namespace fpm::adapt {

/// Outcome of one reliable-window observation.
struct DriftDecision {
    bool drift = false;      ///< this window exceeded drift_threshold
    bool republish = false;  ///< CUSUM crossed cusum_limit
    double cusum = 0.0;      ///< accumulator after this observation
};

/// See file comment.  Not thread-safe: AdaptEngine serialises access.
class DriftDetector {
public:
    /// Throws fpm::Error for non-positive threshold or limit.
    explicit DriftDetector(const AdaptConfig& config);

    /// Feeds the relative model error of one reliable window for
    /// `device` (err = |observed - predicted| / predicted, >= 0).
    DriftDecision observe(std::int64_t device, double relative_error);

    /// Clears every accumulator — called after a successful republish
    /// (the new model is the baseline) or a hot reload.
    void reset();

    [[nodiscard]] double cusum(std::int64_t device) const;

private:
    AdaptConfig config_;
    std::map<std::int64_t, double> cusum_;
};

} // namespace fpm::adapt

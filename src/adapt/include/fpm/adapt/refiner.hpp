/// \file refiner.hpp
/// \brief Splices reliable feedback windows into working speed models.
///
/// One refinement folds a bucket mean (x, observed speed) into the
/// device's piecewise-linear SpeedFunction via SpeedFunction::spliced,
/// under two guards: the *bounded update* (the model speed at x moves by
/// at most AdaptConfig::max_speed_step per window, so an outlier window
/// cannot rewrite the model in one step — sustained drift converges over
/// a few windows instead) and the *deadband* (changes below
/// min_speed_change are skipped entirely).  The splice itself
/// revalidates strict monotonicity of the knots, which is the
/// monotone-interpolation safety check.
#pragma once

#include <cstddef>
#include <vector>

#include "fpm/adapt/adapt_config.hpp"
#include "fpm/core/speed_function.hpp"

namespace fpm::adapt {

/// Outcome of one refinement attempt.
struct RefineResult {
    bool applied = false;         ///< the model was actually updated
    double model_speed = 0.0;     ///< model prediction before refining
    double applied_speed = 0.0;   ///< speed written (after clamping)
    double relative_error = 0.0;  ///< |observed - model| / model
};

/// See file comment.  Stateless apart from the config; thread-safe.
class OnlineRefiner {
public:
    /// Throws fpm::Error for a non-positive max_speed_step, negative
    /// merge_radius or negative min_speed_change.
    explicit OnlineRefiner(const AdaptConfig& config);

    /// Refines models[device] with the bucket mean (x, observed_speed).
    /// x beyond the device's max_problem() is clamped to it (the model
    /// cannot learn outside its own domain).  Throws fpm::Error for an
    /// out-of-range device or non-positive inputs.
    RefineResult refine(std::vector<core::SpeedFunction>& models,
                        std::size_t device, double x,
                        double observed_speed) const;

private:
    AdaptConfig config_;
};

} // namespace fpm::adapt

/// \file engine.hpp
/// \brief Online FPM refinement from served-execution feedback.
///
/// The paper closes its loop offline: benchmark the kernel, fit the
/// functional performance models, partition.  AdaptEngine closes the
/// same loop *online* against a running partition service.  Clients
/// report real execution times for the sub-problems a served plan gave
/// them (the FEEDBACK verb); the engine buckets them per (device,
/// size-region) with the library's statistical-reliability bar
/// (FeedbackIngestor), splices reliable windows into a working copy of
/// the set's speed functions under bounded-update and monotonicity
/// guards (OnlineRefiner), watches the model error for sustained drift
/// (DriftDetector), and when the CUSUM crosses its limit atomically
/// hot-publishes the refined models as a new registry version and
/// invalidates every cached plan derived from the old content
/// (ModelPublisher).  The next PARTITION after a republish is computed
/// from models that match what the hardware is doing *now*.
///
/// Threading: the engine installs itself as the RequestEngine's
/// feedback handler, so ingestion runs on the rt pool's worker threads
/// — never on the reactor's event loop, never on the PARTITION hot
/// path.  All per-set state lives behind one mutex inside a
/// shared_ptr'd Impl that the handler closure co-owns: destroying the
/// AdaptEngine uninstalls the handler, while feedback already in
/// flight finishes safely against the still-alive Impl.
///
/// External reloads: every ingest first compares the registry
/// snapshot's fingerprint to the one the working models were synced
/// from.  On mismatch (an operator RELOAD, or another publisher) the
/// working copy, buckets and CUSUM are rebuilt from the new snapshot —
/// stale evidence never refines a model it was not measured against
/// (bounded staleness).
///
/// Fault points: `adapt.ingest` (sample rejected before any state
/// changes), `adapt.refine` (bucket retained, so the next sample
/// retries the splice — self-healing), `adapt.publish` (registry left
/// on the previous version).  Metrics: adapt.samples, adapt.reliable,
/// adapt.drift, adapt.republished counters and the adapt.model_version
/// gauge, all surfaced in the STATS wire reply.
#pragma once

#include <cstdint>
#include <memory>

#include "fpm/adapt/adapt_config.hpp"
#include "fpm/serve/request_engine.hpp"

namespace fpm::adapt {

/// Aggregate adaptation counters (a stats() snapshot, not live state).
struct AdaptStats {
    std::uint64_t samples = 0;      ///< feedback samples ingested
    std::uint64_t reliable = 0;     ///< buckets that reached reliability
    std::uint64_t refined = 0;      ///< splices actually applied
    std::uint64_t drift = 0;        ///< windows flagged as drift
    std::uint64_t republished = 0;  ///< hot republishes performed
    std::uint64_t resyncs = 0;      ///< external reloads detected
    std::uint64_t model_version = 0;  ///< latest published generation
};

/// See file comment.
class AdaptEngine {
public:
    /// Installs the feedback handler on `engine`; throws fpm::Error on
    /// an inconsistent config.  The engine must outlive this object.
    AdaptEngine(serve::RequestEngine& engine, AdaptConfig config);

    /// Uninstalls the handler.  In-flight feedback finishes against the
    /// shared implementation; subsequent FEEDBACK answers
    /// `ERR feedback not enabled`.
    ~AdaptEngine();

    AdaptEngine(const AdaptEngine&) = delete;
    AdaptEngine& operator=(const AdaptEngine&) = delete;

    /// Ingests one sample synchronously (test/tool entry point; the
    /// serve path goes through RequestEngine::submit_feedback_async).
    serve::FeedbackReply ingest(const serve::FeedbackSample& sample);

    [[nodiscard]] AdaptStats stats() const;

    [[nodiscard]] const AdaptConfig& config() const noexcept {
        return config_;
    }

private:
    struct Impl;
    serve::RequestEngine& engine_;
    AdaptConfig config_;
    std::shared_ptr<Impl> impl_;
};

} // namespace fpm::adapt

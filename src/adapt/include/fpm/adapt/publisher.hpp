/// \file publisher.hpp
/// \brief Atomic hot-publish of a refined model set.
///
/// Publishing is the commit point of the adaptation loop: the working
/// models (registry snapshot + applied refinements) become the new
/// immutable registry snapshot in one ModelRegistry::put, and every
/// cached answer derived from the *previous* content is invalidated —
/// plan-cache entries by old fingerprint and the reload-surviving
/// stale-plan entries by set name — via RequestEngine::invalidate_model.
/// In-flight requests holding the old snapshot keep it alive; new
/// requests see only the new version.  The `adapt.publish` fault point
/// fires before the registry swap, so an injected failure leaves the
/// previous version fully intact.
///
/// Durability rides on the registry's put observer: when a
/// fpm::store::ModelStore is attached, ModelRegistry::put write-ahead
/// logs the candidate before committing, so publish() is also the WAL
/// commit point of the adaptation loop — a store append failure
/// (store.append/store.fsync faults, full disk) vetoes the publish and
/// the previous version keeps serving.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fpm/core/speed_function.hpp"
#include "fpm/serve/model_registry.hpp"
#include "fpm/serve/request_engine.hpp"

namespace fpm::adapt {

/// See file comment.  Stateless; thread-safe given the engine is.
class ModelPublisher {
public:
    explicit ModelPublisher(serve::RequestEngine& engine) : engine_(engine) {}

    /// Replaces set `name` with `models`, invalidates plans computed
    /// from `old_fingerprint`, and returns the new snapshot.  Throws
    /// fpm::Error (without touching the registry) when the adapt.publish
    /// fault point fires.
    std::shared_ptr<const serve::ModelSet>
    publish(const std::string& name, std::vector<core::SpeedFunction> models,
            std::uint64_t old_fingerprint);

private:
    serve::RequestEngine& engine_;
};

} // namespace fpm::adapt

/// \file adapt_config.hpp
/// \brief The one typed knob set of the online adaptation layer.
///
/// Mirrors serve_config.hpp's role for fpm::adapt: AdaptEngine, the
/// fpmpart_serve `--adapt-*` flags and the tests all consume the same
/// struct, and every knob must be documented in docs/adaptation.md
/// (enforced by test_docs).  The reliability knobs deliberately mirror
/// measure::ReliabilityOptions — the online path accepts a feedback
/// bucket under the same statistical criterion the offline benchmarking
/// sweeps use.
#pragma once

#include <cstddef>

namespace fpm::adapt {

/// See file comment.  Ratios are dimensionless fractions.
struct AdaptConfig {
    // -- bucket reliability (measure::ReliabilityOptions criteria) ----
    /// Samples a (device, size-region) bucket needs before its mean can
    /// be accepted (>= 1; 1 accepts the first sample).
    std::size_t min_samples = 3;
    /// Hard cap per bucket: at this count the bucket is accepted even if
    /// the precision target was not met (a noisy device still beats a
    /// frozen model).
    std::size_t max_samples = 25;
    /// Accept once the 95 % CI half-width of the bucket's mean speed is
    /// within this fraction of the mean.
    double target_relative_error = 0.05;

    // -- size-region bucketing ----------------------------------------
    /// Geometric width of a size region: problem sizes within a factor
    /// of (1 + bucket_resolution) share a bucket.
    double bucket_resolution = 0.25;
    /// Staleness/memory bound per model set: beyond this many live
    /// buckets the one with the least evidence is dropped.
    std::size_t max_buckets = 64;

    // -- refiner ------------------------------------------------------
    /// Existing model points within this fraction of the spliced x are
    /// replaced by the measured point (keeps knots strictly increasing).
    double merge_radius = 0.1;
    /// Bounded update: one refinement moves the model speed at x by at
    /// most this fraction of its current value, so a single bad window
    /// cannot fold an outlier straight into the model.
    double max_speed_step = 0.5;
    /// Refinements smaller than this fraction are skipped entirely —
    /// no splice, no republish pressure (anti-churn deadband).
    double min_speed_change = 0.02;

    // -- drift detection ----------------------------------------------
    /// A reliable window whose observed speed differs from the model by
    /// more than this fraction counts as drift.
    double drift_threshold = 0.1;
    /// CUSUM limit: consecutive-window excess error (relative error
    /// minus drift_threshold, clamped at zero) accumulates per device;
    /// crossing this total triggers a republish.
    double cusum_limit = 0.25;
};

} // namespace fpm::adapt

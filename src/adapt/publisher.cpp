#include "fpm/adapt/publisher.hpp"

#include "fpm/common/error.hpp"
#include "fpm/fault/fault.hpp"

namespace fpm::adapt {

std::shared_ptr<const serve::ModelSet>
ModelPublisher::publish(const std::string& name,
                        std::vector<core::SpeedFunction> models,
                        std::uint64_t old_fingerprint) {
    static auto& publish_fault = fault::point("adapt.publish");
    if (publish_fault.fire()) {
        throw Error("injected fault: adapt.publish");
    }
    auto snapshot = engine_.registry().put(name, std::move(models));
    engine_.invalidate_model(name, old_fingerprint);
    return snapshot;
}

} // namespace fpm::adapt

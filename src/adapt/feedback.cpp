#include "fpm/adapt/feedback.hpp"

#include <cmath>
#include <limits>

#include "fpm/common/error.hpp"

namespace fpm::adapt {

FeedbackIngestor::FeedbackIngestor(const AdaptConfig& config)
    : config_(config) {
    FPM_CHECK(config.min_samples >= 1, "min_samples must be >= 1");
    FPM_CHECK(config.max_samples >= config.min_samples,
              "max_samples must be >= min_samples");
    FPM_CHECK(config.target_relative_error > 0.0,
              "target_relative_error must be positive");
    FPM_CHECK(config.bucket_resolution > 0.0,
              "bucket_resolution must be positive");
    FPM_CHECK(config.max_buckets >= 1, "max_buckets must be >= 1");
    reliability_.min_repetitions = config.min_samples;
    reliability_.max_repetitions = config.max_samples;
    reliability_.target_relative_error = config.target_relative_error;
}

IngestResult FeedbackIngestor::add(std::int64_t device, double problem_size,
                                   double seconds) {
    FPM_CHECK(device >= 0, "device index must be non-negative");
    FPM_CHECK(problem_size > 0.0, "problem size must be positive");
    FPM_CHECK(seconds > 0.0, "measured time must be positive");

    const std::int64_t region = static_cast<std::int64_t>(std::floor(
        std::log(problem_size) / std::log1p(config_.bucket_resolution)));
    const BucketKey key{device, region};

    if (buckets_.find(key) == buckets_.end() &&
        buckets_.size() >= config_.max_buckets) {
        // Evidence budget: drop the thinnest bucket to admit the new one.
        auto victim = buckets_.begin();
        for (auto it = buckets_.begin(); it != buckets_.end(); ++it) {
            if (it->second.speed.count() < victim->second.speed.count()) {
                victim = it;
            }
        }
        buckets_.erase(victim);
    }

    Bucket& bucket = buckets_[key];
    bucket.speed.add(problem_size / seconds);
    bucket.size.add(problem_size);
    ++total_;

    IngestResult result;
    result.key = key;
    result.samples = bucket.speed.count();
    result.x = bucket.size.mean();
    result.speed = bucket.speed.mean();
    const measure::Summary summary = bucket.speed.summary();
    if (measure::is_reliable(summary, reliability_)) {
        result.reliable = true;
    } else if (summary.count >= config_.max_samples) {
        result.reliable = true;
        result.forced = true;
    }
    return result;
}

void FeedbackIngestor::consume(const BucketKey& key) { buckets_.erase(key); }

void FeedbackIngestor::clear() { buckets_.clear(); }

} // namespace fpm::adapt

#include "fpm/adapt/engine.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "fpm/adapt/drift.hpp"
#include "fpm/adapt/feedback.hpp"
#include "fpm/adapt/publisher.hpp"
#include "fpm/adapt/refiner.hpp"
#include "fpm/common/error.hpp"
#include "fpm/fault/fault.hpp"
#include "fpm/obs/metrics.hpp"

namespace fpm::adapt {

namespace {

/// Process-global adaptation instruments.  protocol.cpp reads these by
/// name for the STATS reply, which keeps fpm::serve free of any adapt
/// dependency (adapt links serve, never the reverse).
struct AdaptMetrics {
    obs::Counter& samples;
    obs::Counter& reliable;
    obs::Counter& drift;
    obs::Counter& republished;
    obs::Gauge& model_version;

    static AdaptMetrics& instance() {
        static auto& registry = obs::MetricsRegistry::global();
        static AdaptMetrics metrics{
            registry.counter("adapt.samples"),
            registry.counter("adapt.reliable"),
            registry.counter("adapt.drift"),
            registry.counter("adapt.republished"),
            registry.gauge("adapt.model_version"),
        };
        return metrics;
    }
};

} // namespace

/// All mutable adaptation state.  Shared (not owned) with the feedback
/// handler closure so in-flight ingests survive ~AdaptEngine.
struct AdaptEngine::Impl {
    /// Working state for one model set.
    struct SetState {
        /// Fingerprint of the registry snapshot `working` was copied
        /// from; a mismatch on ingest means an external reload happened
        /// and all evidence is stale.
        std::uint64_t synced_fingerprint = 0;
        std::vector<core::SpeedFunction> working;
        FeedbackIngestor ingestor;
        DriftDetector drift;
        /// True once a refinement was applied but not yet published.
        bool dirty = false;

        explicit SetState(const AdaptConfig& config)
            : ingestor(config), drift(config) {}
    };

    Impl(serve::RequestEngine& request_engine, const AdaptConfig& cfg)
        : engine(request_engine), config(cfg), refiner(cfg),
          publisher(request_engine) {}

    serve::FeedbackReply ingest(const serve::FeedbackSample& sample);

    serve::RequestEngine& engine;
    AdaptConfig config;
    OnlineRefiner refiner;
    ModelPublisher publisher;

    mutable std::mutex mutex;
    std::map<std::string, SetState> sets;
    std::uint64_t refined = 0;
    std::uint64_t resyncs = 0;
};

serve::FeedbackReply
AdaptEngine::Impl::ingest(const serve::FeedbackSample& sample) {
    static auto& ingest_fault = fault::point("adapt.ingest");
    if (ingest_fault.fire()) {
        throw Error("injected fault: adapt.ingest");
    }
    FPM_CHECK(!sample.model_set.empty(), "model set name must not be empty");
    FPM_CHECK(sample.device >= 0, "device index must be non-negative");
    FPM_CHECK(sample.problem_size > 0.0, "problem size must be positive");
    FPM_CHECK(sample.seconds > 0.0, "measured time must be positive");

    auto snapshot = engine.registry().get(sample.model_set);
    FPM_CHECK(static_cast<std::size_t>(sample.device) <
                  snapshot->models.size(),
              "device index out of range for set '" + sample.model_set + "'");

    auto& metrics = AdaptMetrics::instance();

    std::lock_guard<std::mutex> lock(mutex);
    auto [it, inserted] = sets.try_emplace(sample.model_set, config);
    SetState& state = it->second;
    if (inserted || state.synced_fingerprint != snapshot->fingerprint) {
        // External reload (or first contact): the working copy and all
        // accumulated evidence describe content that no longer exists.
        if (!inserted) {
            ++resyncs;
        }
        state.working = snapshot->models;
        state.synced_fingerprint = snapshot->fingerprint;
        state.ingestor.clear();
        state.drift.reset();
        state.dirty = false;
    }

    serve::FeedbackReply reply;
    reply.model_set = sample.model_set;
    reply.device = sample.device;
    reply.version = snapshot->generation;

    const IngestResult ingested =
        state.ingestor.add(sample.device, sample.problem_size, sample.seconds);
    metrics.samples.add();
    reply.samples = ingested.samples;
    if (!ingested.reliable) {
        return reply;
    }

    reply.reliable = true;
    metrics.reliable.add();

    // Refine under the adapt.refine fault *before* consuming the
    // bucket: an injected failure keeps the evidence, so the next
    // sample simply retries the splice (self-healing).
    static auto& refine_fault = fault::point("adapt.refine");
    if (refine_fault.fire()) {
        throw Error("injected fault: adapt.refine");
    }
    const RefineResult refinement =
        refiner.refine(state.working, static_cast<std::size_t>(sample.device),
                       ingested.x, ingested.speed);
    state.ingestor.consume(ingested.key);
    if (refinement.applied) {
        state.dirty = true;
        ++refined;
    }

    // Drift is judged against the *served* snapshot, not the working
    // copy.  Refinements accumulate silently in `working`; the CUSUM's
    // question is whether the plans still being served match the
    // hardware — were it fed the working-model error instead, a splice
    // would zero the error at the operating point and the corrected
    // model could sit unpublished forever.
    const auto& served =
        snapshot->models[static_cast<std::size_t>(sample.device)];
    const double served_speed =
        served.speed(std::min(ingested.x, served.max_problem()));
    const double served_error =
        std::abs(ingested.speed - served_speed) / served_speed;

    const DriftDecision decision =
        state.drift.observe(sample.device, served_error);
    if (decision.drift) {
        reply.drift = true;
        metrics.drift.add();
    }
    if (decision.republish && state.dirty) {
        auto published = publisher.publish(sample.model_set, state.working,
                                           snapshot->fingerprint);
        state.synced_fingerprint = published->fingerprint;
        state.dirty = false;
        state.drift.reset();
        reply.republished = true;
        reply.version = published->generation;
        metrics.republished.add();
        metrics.model_version.set(
            static_cast<std::int64_t>(published->generation));
    }
    return reply;
}

AdaptEngine::AdaptEngine(serve::RequestEngine& engine, AdaptConfig config)
    : engine_(engine), config_(config),
      impl_(std::make_shared<Impl>(engine, config)) {
    engine_.set_feedback_handler(
        [impl = impl_](const serve::FeedbackSample& sample) {
            return impl->ingest(sample);
        });
}

AdaptEngine::~AdaptEngine() { engine_.set_feedback_handler(nullptr); }

serve::FeedbackReply AdaptEngine::ingest(const serve::FeedbackSample& sample) {
    return impl_->ingest(sample);
}

AdaptStats AdaptEngine::stats() const {
    auto& metrics = AdaptMetrics::instance();
    AdaptStats stats;
    stats.samples = metrics.samples.value();
    stats.reliable = metrics.reliable.value();
    stats.drift = metrics.drift.value();
    stats.republished = metrics.republished.value();
    stats.model_version =
        static_cast<std::uint64_t>(metrics.model_version.value());
    std::lock_guard<std::mutex> lock(impl_->mutex);
    stats.refined = impl_->refined;
    stats.resyncs = impl_->resyncs;
    return stats;
}

} // namespace fpm::adapt

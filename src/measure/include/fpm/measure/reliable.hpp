/// \file reliable.hpp
/// \brief Repeat-until-statistically-reliable measurement driver.
///
/// Implements the repetition policy of the paper's section III(iii):
/// "experiments are repeated multiple times until the results are
/// statistically reliable".  A measurement is accepted once the 95 %
/// confidence interval of the mean is within `target_relative_error`
/// of the mean, subject to min/max repetition bounds.
#pragma once

#include <cstddef>
#include <functional>

#include "fpm/measure/stats.hpp"

namespace fpm::measure {

/// Options controlling the reliability loop.
struct ReliabilityOptions {
    std::size_t min_repetitions = 3;
    std::size_t max_repetitions = 25;
    double target_relative_error = 0.025;  ///< ci95 half-width / mean
    double max_total_seconds = 60.0;       ///< budget guard for slow kernels
};

/// Result of a reliable measurement: the accepted summary plus whether the
/// precision target was met before hitting the repetition/time budget.
struct ReliableResult {
    Summary summary;
    bool converged = false;
};

/// The acceptance criterion shared by the measurement loop below and the
/// online adaptation path (fpm::adapt ingests served-execution samples
/// against the same statistical bar): a summary is reliable once it has
/// at least `min_repetitions` observations and its 95 % CI half-width is
/// within `target_relative_error` of the mean.  A single observation is
/// accepted only under a single-repetition policy (min_repetitions == 1),
/// since no CI can be formed from one sample.
[[nodiscard]] bool is_reliable(const Summary& summary,
                               const ReliabilityOptions& options);

/// Repeatedly invokes `sample` (which returns one timing in seconds) until
/// the relative confidence-interval target is met.  Throws fpm::Error if
/// options are inconsistent or `sample` returns a non-positive value.
ReliableResult measure_until_reliable(const std::function<double()>& sample,
                                      const ReliabilityOptions& options = {});

} // namespace fpm::measure

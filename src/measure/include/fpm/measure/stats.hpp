/// \file stats.hpp
/// \brief Streaming statistics and confidence intervals.
///
/// The paper repeats every speed measurement "multiple times until the
/// results are statistically reliable".  RunningStats implements Welford's
/// numerically-stable streaming mean/variance, and Summary derives the
/// Student-t confidence interval used by the reliability loop.
#pragma once

#include <cstddef>

namespace fpm::measure {

/// Point summary of a sample: count, mean, standard deviation and the
/// half-width of the 95 % confidence interval of the mean.
struct Summary {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;       ///< sample standard deviation (n-1 denominator)
    double ci95_half = 0.0;    ///< t_{0.975,n-1} * stddev / sqrt(n)
    double min = 0.0;
    double max = 0.0;

    /// Relative precision of the mean estimate: ci95_half / mean
    /// (0 when mean is 0 or fewer than two samples were seen).
    [[nodiscard]] double relative_error() const;
};

/// Welford streaming accumulator.
class RunningStats {
public:
    void add(double value);
    void clear();

    [[nodiscard]] std::size_t count() const { return count_; }
    [[nodiscard]] double mean() const { return mean_; }
    [[nodiscard]] double variance() const;  ///< sample variance, 0 if count < 2
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const { return min_; }
    [[nodiscard]] double max() const { return max_; }
    [[nodiscard]] Summary summary() const;

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Two-sided 97.5 % quantile of Student's t distribution with `df`
/// degrees of freedom (exact table for small df, normal limit beyond).
double student_t_975(std::size_t df);

} // namespace fpm::measure

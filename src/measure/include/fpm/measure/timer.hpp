/// \file timer.hpp
/// \brief Monotonic wall-clock timing.
///
/// The paper's measurement methodology (section III) times kernels with a
/// host-side synchronous wall clock; WallTimer is that clock.
#pragma once

#include <chrono>

namespace fpm::measure {

/// Monotonic wall-clock timer with double-precision seconds readout.
class WallTimer {
public:
    WallTimer() noexcept { reset(); }

    /// Restarts the timer at the current instant.
    void reset() noexcept { start_ = clock::now(); }

    /// Seconds elapsed since construction or the last reset().
    [[nodiscard]] double elapsed() const noexcept {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

/// Accumulates elapsed time into a target double on destruction; handy for
/// attributing time to phases inside the application drivers.
class ScopedTimer {
public:
    explicit ScopedTimer(double& accumulator) noexcept : accumulator_(accumulator) {}
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;
    ~ScopedTimer() { accumulator_ += timer_.elapsed(); }

private:
    double& accumulator_;
    WallTimer timer_;
};

} // namespace fpm::measure

#include "fpm/measure/reliable.hpp"

#include "fpm/common/error.hpp"
#include "fpm/measure/timer.hpp"

namespace fpm::measure {

bool is_reliable(const Summary& summary, const ReliabilityOptions& options) {
    if (summary.count < options.min_repetitions) {
        return false;
    }
    // A single-repetition policy (min_repetitions == 1) accepts the first
    // sample: no CI can be formed from one observation.
    return summary.count == 1 ||
           summary.relative_error() <= options.target_relative_error;
}

ReliableResult measure_until_reliable(const std::function<double()>& sample,
                                      const ReliabilityOptions& options) {
    FPM_CHECK(static_cast<bool>(sample), "sample callback must be callable");
    FPM_CHECK(options.min_repetitions >= 1, "min_repetitions must be >= 1");
    FPM_CHECK(options.max_repetitions >= options.min_repetitions,
              "max_repetitions must be >= min_repetitions");
    FPM_CHECK(options.target_relative_error > 0.0,
              "target_relative_error must be positive");
    FPM_CHECK(options.max_total_seconds > 0.0, "max_total_seconds must be positive");

    RunningStats stats;
    WallTimer budget;
    ReliableResult result;

    for (std::size_t rep = 0; rep < options.max_repetitions; ++rep) {
        const double t = sample();
        FPM_CHECK(t > 0.0, "sample returned a non-positive timing");
        stats.add(t);

        const Summary s = stats.summary();
        if (is_reliable(s, options)) {
            result.summary = s;
            result.converged = true;
            return result;
        }
        if (budget.elapsed() > options.max_total_seconds) {
            break;
        }
    }

    result.summary = stats.summary();
    result.converged = false;
    return result;
}

} // namespace fpm::measure

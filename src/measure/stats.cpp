#include "fpm/measure/stats.hpp"

#include <array>
#include <cmath>

namespace fpm::measure {

double Summary::relative_error() const {
    if (count < 2 || mean == 0.0) {
        return 0.0;
    }
    return ci95_half / std::fabs(mean);
}

void RunningStats::add(double value) {
    ++count_;
    if (count_ == 1) {
        min_ = max_ = value;
    } else {
        if (value < min_) min_ = value;
        if (value > max_) max_ = value;
    }
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

void RunningStats::clear() {
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

double RunningStats::variance() const {
    if (count_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const {
    return std::sqrt(variance());
}

Summary RunningStats::summary() const {
    Summary s;
    s.count = count_;
    s.mean = mean_;
    s.stddev = stddev();
    s.min = min_;
    s.max = max_;
    if (count_ >= 2) {
        s.ci95_half = student_t_975(count_ - 1) * s.stddev /
                      std::sqrt(static_cast<double>(count_));
    }
    return s;
}

double student_t_975(std::size_t df) {
    // Exact two-sided 95 % critical values for df = 1..30; the normal
    // quantile 1.960 is within 0.5 % beyond df = 40.
    static constexpr std::array<double, 31> kTable = {
        0.0,    // df = 0 (unused)
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
        2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
        2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
    if (df == 0) {
        return 0.0;
    }
    if (df < kTable.size()) {
        return kTable[df];
    }
    if (df <= 40) {
        return 2.021;
    }
    if (df <= 60) {
        return 2.000;
    }
    if (df <= 120) {
        return 1.980;
    }
    return 1.960;
}

} // namespace fpm::measure

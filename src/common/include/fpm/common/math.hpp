/// \file math.hpp
/// \brief Small numeric helpers used across fpmpart.
#pragma once

#include <cmath>
#include <cstdint>

#include "fpm/common/error.hpp"

namespace fpm {

/// Ceiling division for non-negative integers.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
    return (a + b - 1) / b;
}

/// Rounds `value` up to the next multiple of `multiple` (multiple > 0).
constexpr std::int64_t round_up(std::int64_t value, std::int64_t multiple) {
    return ceil_div(value, multiple) * multiple;
}

/// Rounds `value` down to the previous multiple of `multiple` (multiple > 0).
constexpr std::int64_t round_down(std::int64_t value, std::int64_t multiple) {
    return (value / multiple) * multiple;
}

/// Relative/absolute tolerance comparison for doubles.
inline bool almost_equal(double a, double b, double rel = 1e-9, double abs = 1e-12) {
    const double diff = std::fabs(a - b);
    if (diff <= abs) {
        return true;
    }
    return diff <= rel * std::fmax(std::fabs(a), std::fabs(b));
}

/// Linear interpolation between a and b at parameter t in [0, 1].
constexpr double lerp(double a, double b, double t) {
    return a + (b - a) * t;
}

/// GEMM flop count for an update of `area` b-by-b blocks with a pivot of
/// width b: each element of C receives 2*b flops (b multiplies + b adds).
inline double gemm_update_flops(double area_blocks, double block_size) {
    return 2.0 * area_blocks * block_size * block_size * block_size;
}

} // namespace fpm

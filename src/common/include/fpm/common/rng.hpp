/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation.
///
/// Everything in fpmpart that needs randomness (measurement noise in the
/// simulator, synthetic matrix data, property-test inputs) draws from this
/// generator so that every run of every test and bench is reproducible
/// from a single seed.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace fpm {

/// xoshiro256** 1.0 generator (Blackman & Vigna, public domain algorithm).
/// Satisfies std::uniform_random_bit_generator, so it can be used with
/// <random> distributions as well as the convenience members below.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the state from a single 64-bit value via splitmix64, which
    /// guarantees a non-zero, well-mixed state for any seed.
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() noexcept;

    /// Uniform double in [0, 1).
    double uniform() noexcept;

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept;

    /// Uniform integer in [lo, hi] (inclusive).
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

    /// Standard normal variate (Marsaglia polar method).
    double normal() noexcept;

    /// Normal variate with the given mean and standard deviation.
    double normal(double mean, double stddev) noexcept;

    /// Lognormal variate: exp(N(mu, sigma)).
    double lognormal(double mu, double sigma) noexcept;

    /// Forks an independent stream (jump-free split via re-seeding from
    /// the parent's output); used to give each simulated device its own
    /// noise stream.
    Rng split() noexcept;

private:
    std::array<std::uint64_t, 4> state_{};
    bool has_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

} // namespace fpm

/// \file format.hpp
/// \brief Small string-formatting helpers shared by benches and tracing.
#pragma once

#include <cstdint>
#include <string>

namespace fpm {

/// Formats a byte count with a binary unit suffix, e.g. "1.50 GiB".
std::string human_bytes(std::uint64_t bytes);

/// Formats a floating-point value with a fixed number of decimals.
std::string fixed(double value, int decimals = 2);

/// Formats a rate in GFlop/s with one decimal, e.g. "951.2 GF/s".
std::string gflops(double gigaflops_per_second);

/// Formats a duration in seconds adaptively (us / ms / s).
std::string seconds(double secs);

/// Left/right pads a string with spaces to the requested width.
std::string pad_left(const std::string& text, std::size_t width);
std::string pad_right(const std::string& text, std::size_t width);

} // namespace fpm

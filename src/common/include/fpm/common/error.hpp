/// \file error.hpp
/// \brief Error handling primitives for fpmpart.
///
/// All fpmpart libraries report precondition violations and runtime failures
/// by throwing fpm::Error (a std::runtime_error).  Internal invariants that
/// indicate a bug in the library itself use FPM_ASSERT, which throws
/// fpm::LogicError so that tests can exercise failure paths without
/// aborting the process.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace fpm {

/// Runtime error raised on invalid arguments or unsatisfiable requests
/// (for example: partitioning zero devices, benchmarking a problem size
/// that exceeds every device's capacity).
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// Logic error raised when an internal invariant of the library fails.
class LogicError : public std::logic_error {
public:
    explicit LogicError(const std::string& what_arg) : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const std::string& message,
                                      const std::source_location& loc);
[[noreturn]] void throw_assert_failure(const char* expr, const std::source_location& loc);
} // namespace detail

} // namespace fpm

/// Validate a caller-supplied precondition; throws fpm::Error on failure.
#define FPM_CHECK(expr, message)                                                        \
    do {                                                                                \
        if (!(expr)) {                                                                  \
            ::fpm::detail::throw_check_failure(#expr, (message),                        \
                                               std::source_location::current());       \
        }                                                                               \
    } while (false)

/// Validate an internal invariant; throws fpm::LogicError on failure.
#define FPM_ASSERT(expr)                                                                \
    do {                                                                                \
        if (!(expr)) {                                                                  \
            ::fpm::detail::throw_assert_failure(#expr,                                  \
                                                std::source_location::current());      \
        }                                                                               \
    } while (false)
